(* psc — the pseudosphere calculator.

   A command-line front end for the library: build pseudospheres and
   protocol complexes, measure their topology, search for decision maps,
   print Mayer-Vietoris derivations, evaluate the paper's bounds, and
   export 1-skeletons to Graphviz. *)

open Psph_topology
open Psph_model
open Pseudosphere
open Psph_agreement
open Cmdliner

(* ------------------------------------------------------------------ *)
(* shared helpers                                                      *)
(* ------------------------------------------------------------------ *)

let inputs n = List.init (n + 1) (fun i -> (i, i mod 2))

let input_simplex n = Input_complex.simplex_of_inputs (inputs n)

let describe ?(show_facets = false) ?(integral = false) ?dot ?svg ?save name c =
  Format.printf "%s: %a@." name Complex.pp_summary c;
  let b = Homology.betti c in
  Format.printf "betti: (%s)@."
    (String.concat "," (List.map string_of_int (Array.to_list b)));
  Format.printf "connectivity: %d@." (Homology.connectivity c);
  if integral then
    Format.printf "integral homology: %s@."
      (String.concat ", "
         (Array.to_list (Array.map Homology_z.group_to_string (Homology_z.homology c))));
  if show_facets then
    List.iter (fun s -> Format.printf "  %a@." Simplex.pp s) (Complex.facets c);
  Option.iter
    (fun path ->
      Render.save_svg path c;
      Format.printf "wrote SVG to %s@." path)
    svg;
  Option.iter
    (fun path ->
      Complex_io.save path c;
      Format.printf "saved complex to %s@." path)
    save;
  Option.iter
    (fun path ->
      Render.save_dot path c;
      Format.printf "wrote 1-skeleton to %s@." path)
    dot

(* ------------------------------------------------------------------ *)
(* flags                                                               *)
(* ------------------------------------------------------------------ *)

(* every subcommand takes --trace FILE: the run executes with a JSONL
   channel sink installed, so spans and events from every layer (serve,
   engine, pool, homology, models, sim) land in one file *)
let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a JSON-lines span/event trace of this run to $(docv) (see \
           docs/OBSERVABILITY.md).")

let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path -> Psph_obs.Obs.with_trace_file path f

let n_arg =
  Arg.(value & opt int 2 & info [ "n" ] ~docv:"N" ~doc:"Dimension: $(docv)+1 processes.")

let f_arg = Arg.(value & opt int 1 & info [ "f" ] ~docv:"F" ~doc:"Failure budget.")

let k_arg =
  Arg.(value & opt int 1 & info [ "k" ] ~docv:"K" ~doc:"Failures per round (sync/semi).")

let r_arg = Arg.(value & opt int 1 & info [ "r" ] ~docv:"R" ~doc:"Number of rounds.")

let p_arg =
  Arg.(value & opt int 2 & info [ "p" ] ~docv:"P" ~doc:"Microrounds per round (semi).")

let task_k_arg =
  Arg.(value & opt int 1 & info [ "task-k" ] ~docv:"K" ~doc:"k of the k-set agreement task.")

let values_arg =
  Arg.(value & opt int 2 & info [ "values" ] ~docv:"V" ~doc:"Size of the input domain.")

let facets_arg = Arg.(value & flag & info [ "facets" ] ~doc:"Print all facets.")

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE" ~doc:"Export the 1-skeleton as Graphviz.")

let over_inputs_arg =
  Arg.(
    value & flag
    & info [ "over-inputs" ]
        ~doc:"Build over the whole input complex instead of a fixed input simplex.")

let integral_arg =
  Arg.(value & flag & info [ "integral" ] ~doc:"Also print integral homology (SNF).")

let svg_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "svg" ] ~docv:"FILE" ~doc:"Render the complex as SVG.")

let save_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save" ] ~docv:"FILE" ~doc:"Serialize the complex to a file.")

(* model-owned extension parameters (Byzantine budget, adversary class,
   ...) become real flags on the model's generated subcommand: one
   [--name VALUE] per declared parameter, parsed by the parameter's own
   parser so enum names ("--adv rooted") work as well as codes *)
let ext_term (module M : Model_complex.MODEL) =
  List.fold_left
    (fun acc ep ->
      let { Model_complex.ep_name; ep_doc; ep_default; ep_parse; ep_show } =
        ep
      in
      let arg =
        Arg.(
          value
          & opt (some string) None
          & info [ ep_name ]
              ~docv:(String.uppercase_ascii ep_name)
              ~doc:
                (Printf.sprintf "%s (default %s)." ep_doc (ep_show ep_default)))
      in
      Term.(
        const (fun entries v ->
            match v with
            | None -> entries
            | Some s -> (
                match ep_parse s with
                | Ok i -> entries @ [ (ep_name, i) ]
                | Error msg ->
                    Format.eprintf "psc: model %s: %s@." M.name msg;
                    Stdlib.exit 2))
        $ acc $ arg))
    (Term.const []) M.ext_params

(* the shared model-parameterized commands can't generate per-model flags
   (the model is itself a flag), so they take repeatable --ext NAME=VALUE
   pairs validated against the chosen model's declaration *)
let ext_kv_arg =
  Arg.(
    value & opt_all string []
    & info [ "ext" ] ~docv:"NAME=VALUE"
        ~doc:
          "A model-owned extension parameter (e.g. $(b,--ext t=2), $(b,--ext \
           adv=rooted)); repeatable.  Valid names depend on $(b,--model) — \
           see $(b,psc models).")

let parse_ext (module M : Model_complex.MODEL) kvs =
  List.map
    (fun kv ->
      match String.index_opt kv '=' with
      | None ->
          Format.eprintf "psc: --ext expects NAME=VALUE, got %S@." kv;
          exit 2
      | Some i -> (
          let name = String.sub kv 0 i in
          let v = String.sub kv (i + 1) (String.length kv - i - 1) in
          match
            List.find_opt
              (fun ep -> ep.Model_complex.ep_name = name)
              M.ext_params
          with
          | None ->
              Format.eprintf "psc: model %s has no extension parameter %S%s@."
                M.name name
                (match M.ext_params with
                | [] -> ""
                | ps ->
                    Printf.sprintf " (available: %s)"
                      (String.concat ", "
                         (List.map (fun ep -> ep.Model_complex.ep_name) ps)));
              exit 2
          | Some ep -> (
              match ep.ep_parse v with
              | Ok i -> (name, i)
              | Error msg ->
                  Format.eprintf "psc: model %s: %s@." M.name msg;
                  exit 2)))
    kvs

(* any registered model; cmdliner's enum errors with the available list *)
let model_arg =
  let alts =
    List.map (fun m -> (Model_complex.name_of m, m)) (Model_complex.all ())
  in
  Arg.(
    value
    & opt (enum alts) (Model_complex.get "sync")
    & info [ "model" ] ~docv:"MODEL"
        ~doc:
          (Printf.sprintf "One of %s."
             (String.concat ", " (Model_complex.names ()))))

(* ------------------------------------------------------------------ *)
(* commands                                                            *)
(* ------------------------------------------------------------------ *)

let pseudosphere_cmd =
  let run trace n values facets integral dot svg save =
    with_trace trace @@ fun () ->
    let ps =
      Psph.uniform ~base:(Simplex.proc_simplex n)
        (List.init values (fun i -> Label.Int i))
    in
    Format.printf "%a@." Psph.pp ps;
    Format.printf "facet count (closed form): %d@." (Psph.facet_count ps);
    describe ~show_facets:facets ~integral ?dot ?svg ?save "complex"
      (Psph.realize ~vertex:Psph.default_vertex ps)
  in
  Cmd.v
    (Cmd.info "pseudosphere" ~doc:"Build psi(P^n; {0..V-1}) (Definition 3).")
    Term.(
      const run $ trace_arg $ n_arg $ values_arg $ facets_arg $ integral_arg
      $ dot_arg $ svg_arg $ save_arg)

(* fail like a flag parse error: message plus the registered alternatives *)
let validated (module M : Model_complex.MODEL) spec =
  match M.validate spec with
  | Ok spec -> spec
  | Error msg ->
      Format.eprintf "psc: model %s: %s@." M.name msg;
      exit 2

let build_complex ((module M : Model_complex.MODEL) as m) spec ~values ~over =
  let spec = validated m spec in
  if over then
    M.over_inputs spec
      (Input_complex.make ~n:spec.Model_complex.n
         ~values:(Value.domain (values - 1)))
  else M.rounds spec (input_simplex spec.Model_complex.n)

(* one subcommand per registered model, generated from the registry *)
let model_cmd ((module M : Model_complex.MODEL) as m) =
  let run trace n f k p r ext values over facets integral dot svg save =
    with_trace trace @@ fun () ->
    let spec = validated m { Model_complex.n; f; k; p; r; ext } in
    let c = build_complex m spec ~values ~over in
    describe ~show_facets:facets ~integral ?dot ?svg ?save M.name c;
    match M.expected_connectivity spec ~m:n with
    | Some conn ->
        Format.printf "the paper claims connectivity >= %d@." conn
    | None -> ()
  in
  Cmd.v (Cmd.info M.name ~doc:M.doc)
    Term.(
      const run $ trace_arg $ n_arg $ f_arg $ k_arg $ p_arg $ r_arg
      $ ext_term m $ values_arg $ over_inputs_arg $ facets_arg $ integral_arg
      $ dot_arg $ svg_arg $ save_arg)

let models_cmd =
  let run trace list =
    with_trace trace @@ fun () ->
    if list then List.iter print_endline (Model_complex.names ())
    else
      List.iter
        (fun (module M : Model_complex.MODEL) ->
          Format.printf "%-8s %s@." M.name M.doc;
          List.iter
            (fun ep ->
              Format.printf "         --%s: %s (default %s)@."
                ep.Model_complex.ep_name ep.ep_doc (ep.ep_show ep.ep_default))
            M.ext_params)
        (Model_complex.all ())
  in
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"Print bare names, one per line.")
  in
  Cmd.v
    (Cmd.info "models" ~doc:"List the registered message-passing models.")
    Term.(const run $ trace_arg $ list_arg)

let decide_cmd =
  let run trace model n f k p r ext task_k =
    with_trace trace @@ fun () ->
    let values = task_k + 1 in
    let spec =
      { Model_complex.n; f; k; p; r; ext = parse_ext model ext }
    in
    let c = build_complex model spec ~values ~over:true in
    Format.printf "complex: %a@." Complex.pp_summary c;
    match Decision.solve ~complex:c ~allowed:Task.allowed ~k:task_k () with
    | Decision.Solution _ -> Format.printf "a %d-set decision map EXISTS@." task_k
    | Decision.Impossible ->
        Format.printf "NO %d-set decision map exists (exhaustive search)@." task_k
    | Decision.Unknown -> Format.printf "search budget exhausted@."
  in
  Cmd.v
    (Cmd.info "decide"
       ~doc:"Search for a k-set agreement decision map on a protocol complex.")
    Term.(
      const run $ trace_arg $ model_arg $ n_arg $ f_arg $ k_arg $ p_arg $ r_arg
      $ ext_kv_arg $ task_k_arg)

let bound_cmd =
  let run trace n f k c1 c2 d =
    with_trace trace @@ fun () ->
    Format.printf "Corollary 13 (async): %d-set agreement with f=%d is %s@." k f
      (if Lower_bound.corollary13_impossible ~f ~k then "impossible"
       else "not excluded");
    Format.printf "Theorem 18 (sync): %d rounds@."
      (Lower_bound.theorem18_rounds ~n ~f ~k);
    Format.printf "Corollary 22 (semi, wait-free): time %.2f@."
      (Lower_bound.corollary22_time ~f ~k ~c1 ~c2 ~d)
  in
  let c1_arg = Arg.(value & opt int 1 & info [ "c1" ] ~doc:"Min step interval.") in
  let c2_arg = Arg.(value & opt int 2 & info [ "c2" ] ~doc:"Max step interval.") in
  let d_arg = Arg.(value & opt int 10 & info [ "d" ] ~doc:"Max message delay.") in
  Cmd.v
    (Cmd.info "bound" ~doc:"Evaluate the paper's closed-form lower bounds.")
    Term.(const run $ trace_arg $ n_arg $ f_arg $ k_arg $ c1_arg $ c2_arg $ d_arg)

let mv_cmd =
  let run trace ((module M : Model_complex.MODEL) as model) n f k p ext =
    with_trace trace @@ fun () ->
    let spec =
      validated model
        { Model_complex.n; f; k; p; r = 1; ext = parse_ext model ext }
    in
    match M.pseudosphere_decomposition with
    | None ->
        Format.eprintf
          "psc: model %s is not a union of pseudospheres (no decomposition)@."
          M.name;
        exit 2
    | Some pieces ->
        let pss = pieces spec (input_simplex n) in
        let proof = Mayer_vietoris.union_connectivity pss in
        Format.printf "%a@.@." Mayer_vietoris.pp proof;
        Format.printf "derived connectivity >= %d (%d inference steps)@."
          (Mayer_vietoris.conn proof) (Mayer_vietoris.size proof);
        Format.printf "numeric validation: %b@." (Mayer_vietoris.validate pss proof)
  in
  Cmd.v
    (Cmd.info "mv"
       ~doc:"Print a Mayer-Vietoris connectivity derivation (Theorem 2).")
    Term.(
      const run $ trace_arg $ model_arg $ n_arg $ f_arg $ k_arg $ p_arg
      $ ext_kv_arg)

let solver_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("auto", Psph_engine.Engine.Auto);
             ("symbolic", Psph_engine.Engine.Symbolic_only);
             ("numeric", Psph_engine.Engine.Numeric_only);
             ("check", Psph_engine.Engine.Check) ])
        Psph_engine.Engine.Auto
    & info [ "solver" ] ~docv:"TIER"
        ~doc:
          "Solver policy: $(b,auto) (warm cache, then symbolic, then \
           numeric), $(b,symbolic) (Theorem 2 + Corollary 6 or a round \
           lemma; fails when no derivation applies), $(b,numeric) \
           (Morse-precollapsed elimination), or $(b,check) (compute \
           numerically and verify the symbolic lower bound holds; exits \
           nonzero on disagreement).")

let connectivity_cmd =
  let run trace psph ((module M : Model_complex.MODEL) as model) n f k p r ext
      values mode =
    with_trace trace @@ fun () ->
    let spec =
      if psph then Psph_engine.Engine.Psph { n; values }
      else begin
        let spec =
          validated model
            { Model_complex.n; f; k; p; r; ext = parse_ext model ext }
        in
        Psph_engine.Engine.Model { model = M.name; params = spec }
      end
    in
    let engine = Psph_engine.Engine.create ~domains:0 () in
    (match Psph_engine.Engine.eval_conn ~mode engine spec with
    | res ->
        Format.printf "connectivity: %d%s@." res.answer.connectivity
          (match res.solver.tier with
          | Psph_engine.Engine.Symbolic -> " (lower bound)"
          | Psph_engine.Engine.Cached | Psph_engine.Engine.Numeric -> "");
        Format.printf "tier: %s@."
          (match res.solver.tier with
          | Psph_engine.Engine.Cached -> "cached"
          | Psph_engine.Engine.Symbolic -> "symbolic"
          | Psph_engine.Engine.Numeric -> "numeric");
        Option.iter (Format.printf "rule: %s@.") res.solver.rule;
        Option.iter (Format.printf "steps: %d@.") res.solver.steps;
        Option.iter
          (Format.printf "cells removed by Morse precollapse: %d@.")
          res.solver.cells_removed;
        Option.iter
          (Format.printf "checked: numeric satisfies symbolic lower bound %d@.")
          res.solver.checked;
        Format.printf "key: %s@." (Psph_engine.Key.to_hex res.key)
    | exception (Failure m | Invalid_argument m) ->
        Psph_engine.Engine.shutdown engine;
        Format.eprintf "psc: connectivity: %s@." m;
        exit 1);
    Psph_engine.Engine.shutdown engine
  in
  let psph_arg =
    Arg.(
      value & flag
      & info [ "psph" ]
          ~doc:
            "Query the uniform pseudosphere psi(P^n; {0..V-1}) instead of a \
             model's protocol complex.")
  in
  Cmd.v
    (Cmd.info "connectivity"
       ~doc:
         "Answer a connectivity query through the tiered solver (symbolic \
          Mayer-Vietoris / round lemmas, or Morse-reduced numeric \
          elimination), printing which tier answered and its provenance.")
    Term.(
      const run $ trace_arg $ psph_arg $ model_arg $ n_arg $ f_arg $ k_arg
      $ p_arg $ r_arg $ ext_kv_arg $ values_arg $ solver_arg)

let run_cmd =
  let run trace n f crash_round victim heard =
    with_trace trace @@ fun () ->
    let protocol = Protocols.flood_consensus ~f in
    let plan =
      if victim < 0 then [] else [ (crash_round, victim, Pid.Set.of_list heard) ]
    in
    let report =
      Runner.run_sync ~protocol ~inputs:(inputs n)
        ~schedule:(Runner.crash_schedule ~plan) ~max_rounds:(f + 3)
    in
    List.iter
      (fun (q, round, v) ->
        Format.printf "%a decides %d in round %d@." Pid.pp q v round)
      report.Runner.decisions
  in
  let crash_round_arg =
    Arg.(value & opt int 1 & info [ "crash-round" ] ~doc:"Round of the crash.")
  in
  let victim_arg =
    Arg.(value & opt int (-1) & info [ "victim" ] ~doc:"Pid to crash (-1: none).")
  in
  let heard_arg =
    Arg.(
      value & opt (list int) []
      & info [ "heard-by" ] ~doc:"Pids still receiving the final send.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run flooding consensus under a crash plan.")
    Term.(
      const run $ trace_arg $ n_arg $ f_arg $ crash_round_arg $ victim_arg
      $ heard_arg)

(* HOST:PORT addresses for the net subcommands *)
let addr_conv =
  let parse s =
    match Psph_net.Addr.parse s with
    | Ok a -> Ok a
    | Error m -> Error (`Msg m)
  in
  Arg.conv
    (parse, fun ppf a -> Format.pp_print_string ppf (Psph_net.Addr.to_string a))

(* stderr, so the stdout protocol stream stays parseable *)
let dump_metrics_stderr () =
  prerr_endline (Psph_obs.Jsonl.to_string (Psph_obs.Obs.snapshot_json ()))

(* graceful stop on SIGINT/SIGTERM: ask the server to drain, remember the
   conventional 128+signal exit code for after the drain completes *)
let stop_server_on_signals server code =
  let graceful signum exit_code =
    Sys.set_signal signum
      (Sys.Signal_handle
         (fun _ ->
           code := exit_code;
           Psph_net.Server.request_stop server))
  in
  graceful Sys.sigint 130;
  graceful Sys.sigterm 143

let reactor_threads_arg =
  Arg.(
    value & opt int 2
    & info [ "reactor-threads" ] ~docv:"N"
        ~doc:
          "Event-loop threads multiplexing the TCP connections (see \
           docs/NET.md).")

(* route handlers block on backend sockets, so they must not run on the
   reactor loops: give each request its own thread, bounded; past the
   bound, run inline (the loop briefly backpressures, which is the
   point) *)
let threaded_dispatch = Psph_net.Server.threaded_dispatch

let serve_cmd =
  let run trace metrics listen max_conns deadline_ms domains cache_size persist
      par_threshold reactor_threads warm_from =
    let code =
      with_trace trace @@ fun () ->
      let engine =
        Psph_engine.Engine.create ~domains ~capacity:cache_size ?persist
          ~par_threshold ()
      in
      (* warm before accepting traffic, so the first requests already hit;
         best-effort — a dead peer must not stop the server from starting *)
      (match warm_from with
      | None -> ()
      | Some peer -> (
          match Psph_net.Replica.warm_from engine peer with
          | Ok n ->
              Format.eprintf "psc serve: warmed %d entries from %s:%d@." n
                peer.Psph_net.Addr.host peer.Psph_net.Addr.port
          | Error m ->
              Format.eprintf "psc serve: warm-from %s:%d failed: %s@."
                peer.Psph_net.Addr.host peer.Psph_net.Addr.port m));
      match listen with
      | None ->
          (* Ctrl-C must not lose unflushed store writes: flush and dump
             metrics before dying nonzero *)
          let bail exit_code =
            Sys.Signal_handle
              (fun _ ->
                (try Psph_engine.Engine.flush engine with _ -> ());
                if metrics then dump_metrics_stderr ();
                exit exit_code)
          in
          Sys.set_signal Sys.sigint (bail 130);
          Sys.set_signal Sys.sigterm (bail 143);
          Psph_engine.Serve.run engine stdin stdout;
          Psph_engine.Engine.shutdown engine;
          if metrics then dump_metrics_stderr ();
          0
      | Some addr -> (
          let deadline_s =
            Option.map (fun ms -> float_of_int ms /. 1000.) deadline_ms
          in
          let handler = Psph_engine.Serve.handle_line engine in
          match
            Psph_net.Server.listen ~max_conns ?deadline_s
              ~reactor_threads:(max 1 reactor_threads)
              ~bin_handler:(Psph_net.Codec.handle ~json:handler engine)
              ?dispatch:
                (if domains > 0 then Some (Psph_engine.Engine.dispatch engine)
                 else None)
              ~handler addr
          with
          | Error m ->
              Format.eprintf "psc: serve: %s@." m;
              exit 1
          | Ok server ->
              let code = ref 0 in
              stop_server_on_signals server code;
              (* readiness line on stderr (CI waits for it; stdout stays
                 protocol-clean in both transports) *)
              Format.eprintf "psc serve: listening on %s:%d@." addr.Psph_net.Addr.host
                (Psph_net.Server.port server);
              Psph_net.Server.serve server;
              Psph_engine.Engine.shutdown engine;
              if metrics then dump_metrics_stderr ();
              !code)
    in
    if code <> 0 then exit code
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "On exit, print the full metrics snapshot (counters, gauges, \
             histograms, span totals) as one JSON object on stderr.")
  in
  let domains_arg =
    Arg.(
      value & opt int 2
      & info [ "domains" ] ~docv:"D"
          ~doc:"Worker domains for parallel evaluation (0: sequential).")
  in
  let cache_arg =
    Arg.(
      value & opt int 4096
      & info [ "cache-size" ] ~docv:"N" ~doc:"Memo store capacity (LRU entries).")
  in
  let persist_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "persist" ] ~docv:"FILE"
          ~doc:"Load the memo store from $(docv) on start and write it back on exit.")
  in
  let par_threshold_arg =
    Arg.(
      value & opt int 2048
      & info [ "par-threshold" ] ~docv:"S"
          ~doc:
            "Fan a single query's per-dimension rank jobs onto the pool once \
             the complex has at least $(docv) simplexes.")
  in
  let listen_arg =
    Arg.(
      value
      & opt (some addr_conv) None
      & info [ "listen" ] ~docv:"HOST:PORT"
          ~doc:
            "Serve the same protocol over TCP (length-prefixed JSONL frames, \
             see docs/NET.md) instead of stdin/stdout.  Port 0 picks a free \
             port (announced on stderr).")
  in
  let max_conns_arg =
    Arg.(
      value & opt int 64
      & info [ "max-conns" ] ~docv:"N"
          ~doc:"Bound on concurrent TCP connections (excess waits in the backlog).")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Per-request deadline for TCP requests: a request whose handler \
             runs longer is answered with an error instead of its late result.")
  in
  let warm_from_arg =
    Arg.(
      value
      & opt (some addr_conv) None
      & info [ "warm-from" ] ~docv:"HOST:PORT"
          ~doc:
            "Before accepting traffic, stream the memo cache of a running \
             $(b,psc serve --listen) peer (its $(b,snapshot) op, chunked) \
             into this server's cache.  Best-effort: an unreachable peer is \
             reported on stderr and the server starts cold.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve topology queries over JSON lines on stdin/stdout — or over \
          TCP with $(b,--listen) (ops: betti, connectivity, psph, \
          model-complex, batch, models, stats, metrics, snapshot, populate; \
          see docs/ENGINE.md and docs/NET.md).")
    Term.(
      const run $ trace_arg $ metrics_arg $ listen_arg $ max_conns_arg
      $ deadline_arg $ domains_arg $ cache_arg $ persist_arg
      $ par_threshold_arg $ reactor_threads_arg $ warm_from_arg)

let connect_arg =
  Arg.(
    required
    & opt (some addr_conv) None
    & info [ "connect" ] ~docv:"HOST:PORT" ~doc:"Server (or router) to talk to.")

let timeout_ms_arg =
  Arg.(
    value & opt int 5000
    & info [ "timeout-ms" ] ~docv:"MS" ~doc:"Per-attempt request timeout.")

let retries_arg =
  Arg.(
    value & opt int 3
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Retries on retryable failures (refused connection, timeout, torn \
           frame), with exponential backoff and jitter.")

let codec_arg =
  Arg.(
    value
    & opt (enum [ ("json", `Json); ("binary", `Binary) ]) `Json
    & info [ "codec" ] ~docv:"CODEC"
        ~doc:
          "Wire codec to request at the protocol-v2 handshake: $(b,json) or \
           $(b,binary).  Negotiated, never assumed — a server without the \
           binary codec (or a v1 server) gets JSON transparently.")

let pipeline_depth_arg =
  Arg.(
    value & opt int 1
    & info [ "pipeline-depth" ] ~docv:"N"
        ~doc:
          "Keep up to $(docv) requests in flight per connection (protocol \
           v2 pipelining; 1 = classic request/response).")

let query_cmd =
  let run trace connect timeout_ms retries codec pipeline_depth =
    let code =
      with_trace trace @@ fun () ->
      let client =
        Psph_net.Client.create ~timeout_ms ~retries ~codec
          ~pipeline_depth:(max 1 pipeline_depth) connect
      in
      let failures = ref 0 in
      let error_line e =
        Psph_obs.Jsonl.to_string
          (Psph_obs.Jsonl.Obj
             [
               ("ok", Psph_obs.Jsonl.Bool false);
               ("error", Psph_obs.Jsonl.Str (Psph_net.Client.error_message e));
             ])
      in
      let emit = function
        | Ok resp -> print_endline resp
        | Error e ->
            incr failures;
            print_endline (error_line e)
      in
      (* responses stay in input order either way; pipelining just reads
         stdin in chunks so up to pipeline-depth requests share the wire.
         The plain default keeps the line-at-a-time loop, so interactive
         sessions still see each answer before typing the next query *)
      let chunk =
        if codec = `Json && pipeline_depth <= 1 then 1 else 4 * pipeline_depth
      in
      let rec loop () =
        let rec take k acc =
          if k = 0 then List.rev acc
          else
            match input_line stdin with
            | exception End_of_file -> List.rev acc
            | line when String.trim line = "" -> take k acc
            | line -> take (k - 1) (line :: acc)
        in
        match take chunk [] with
        | [] -> ()
        | [ line ] ->
            emit (Psph_net.Client.request client line);
            flush stdout;
            loop ()
        | lines ->
            List.iter emit (Psph_net.Client.pipeline client lines);
            flush stdout;
            loop ()
      in
      loop ();
      Psph_net.Client.close client;
      if !failures > 0 then 1 else 0
    in
    if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Send JSON-lines requests from stdin to a TCP $(b,psc serve \
          --listen) (or $(b,psc route)) endpoint, one response per line on \
          stdout, optionally pipelined ($(b,--pipeline-depth)) and over the \
          compact binary codec ($(b,--codec binary)).  Exits nonzero if any \
          request failed at the transport layer (server-side \
          {\"ok\":false,...} responses pass through).")
    Term.(
      const run $ trace_arg $ connect_arg $ timeout_ms_arg $ retries_arg
      $ codec_arg $ pipeline_depth_arg)

(* the router's backend links default to a real window: fanning a batch
   out is the point of the command *)
let route_pipeline_depth_arg =
  Arg.(
    value & opt int 16
    & info [ "pipeline-depth" ] ~docv:"N"
        ~doc:
          "In-flight requests per backend connection (protocol v2 \
           pipelining, negotiated per backend).")

let route_cmd =
  let run trace listen backends max_conns replicas vnodes read_fallback
      timeout_ms retries check_period_ms codec pipeline_depth reactor_threads =
    let code =
      with_trace trace @@ fun () ->
      let router =
        Psph_net.Router.create ~vnodes ~replication:replicas ~read_fallback
          ~timeout_ms ~retries ~check_period_ms ~codec
          ~pipeline_depth:(max 1 pipeline_depth)
          backends
      in
      Psph_net.Router.start_health_checks router;
      match
        Psph_net.Server.listen ~max_conns
          ~reactor_threads:(max 1 reactor_threads)
          ~dispatch:(threaded_dispatch ())
          ~handler:(Psph_net.Router.route router)
          listen
      with
      | Error m ->
          Format.eprintf "psc: route: %s@." m;
          exit 1
      | Ok server ->
          let code = ref 0 in
          stop_server_on_signals server code;
          Format.eprintf "psc route: listening on %s:%d, %d backends@."
            listen.Psph_net.Addr.host
            (Psph_net.Server.port server)
            (List.length backends);
          Psph_net.Server.serve server;
          Psph_net.Router.stop router;
          !code
    in
    if code <> 0 then exit code
  in
  let listen_arg =
    Arg.(
      required
      & opt (some addr_conv) None
      & info [ "listen" ] ~docv:"HOST:PORT" ~doc:"Address to accept clients on.")
  in
  let backend_arg =
    Arg.(
      non_empty
      & opt_all addr_conv []
      & info [ "backend" ] ~docv:"HOST:PORT"
          ~doc:
            "A backend $(b,psc serve --listen) endpoint; repeatable.  \
             Requests shard across backends by content key (docs/NET.md).")
  in
  let max_conns_arg =
    Arg.(
      value & opt int 64
      & info [ "max-conns" ] ~docv:"N" ~doc:"Bound on concurrent client connections.")
  in
  let replicas_arg =
    Arg.(
      value & opt int 1
      & info [ "replicas" ] ~docv:"R"
          ~doc:
            "Replication factor: each key's answers are kept warm on the \
             first $(docv) distinct backends of its ring walk (populate \
             hints push cache misses to the other owners asynchronously).")
  in
  let vnodes_arg =
    Arg.(
      value & opt int 64
      & info [ "vnodes" ] ~docv:"N"
          ~doc:"Virtual nodes per backend on the consistent-hash ring.")
  in
  let read_fallback_arg =
    Arg.(
      value & flag
      & info [ "read-fallback" ]
          ~doc:
            "Count reads served by a non-primary owner after primary failure \
             in the net.router.replica.* metrics (fallback_read/fallback_hit); \
             the failover itself always happens.")
  in
  let check_period_arg =
    Arg.(
      value & opt int 1000
      & info [ "check-period-ms" ] ~docv:"MS"
          ~doc:"Interval between backend health probes.")
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:
         "Shard serve-protocol requests across several $(b,psc serve \
          --listen) backends by consistent hashing on the query's content \
          key, with health checks, failover, and a degraded \
          {\"ok\":false,\"error\":\"no backend\"} answer when nothing is \
          reachable (see docs/NET.md).  With $(b,--replicas) R > 1 each \
          key's answers are replicated onto R backends and reads fail over \
          onto the warm replicas.  Backend links pipeline \
          ($(b,--pipeline-depth)) and can use the binary codec \
          ($(b,--codec binary)); hot-op batches fan out across shards in \
          parallel.")
    Term.(
      const run $ trace_arg $ listen_arg $ backend_arg $ max_conns_arg
      $ replicas_arg $ vnodes_arg $ read_fallback_arg $ timeout_ms_arg
      $ retries_arg $ check_period_arg $ codec_arg $ route_pipeline_depth_arg
      $ reactor_threads_arg)

let sim_cmd =
  let run trace c1 c2 d n until slow_solo after_step validate =
    with_trace trace @@ fun () ->
    if c1 < 1 || c2 < c1 || d < 1 then begin
      Format.eprintf "psc: sim needs 1 <= c1 <= c2 and d >= 1@.";
      exit 2
    end;
    let cfg = { Sim.c1; c2; d } in
    let adv =
      match slow_solo with
      | None -> Sim.lockstep cfg
      | Some survivor ->
          let after_step =
            match after_step with
            | Some s -> s
            | None -> Sim.microrounds cfg (* one full round, then alone *)
          in
          Sim.slow_solo cfg ~survivor ~after_step
    in
    let t = Sim.run cfg ~n adv ~until in
    Pid.Map.iter
      (fun q events ->
        let steps, recvs =
          List.fold_left
            (fun (s, r) -> function
              | Sim.Stepped _ -> (s + 1, r)
              | Sim.Received _ -> (s, r + 1))
            (0, 0) events
        in
        Format.printf "%a: %d steps, %d receives@." Pid.pp q steps recvs)
      t;
    if validate then
      match Trace_check.validate cfg t with
      | [] -> Format.printf "trace satisfies the timing model@."
      | violations ->
          List.iter
            (fun v -> Format.eprintf "violation: %a@." Trace_check.pp_violation v)
            violations;
          exit 1
  in
  let c1_arg = Arg.(value & opt int 1 & info [ "c1" ] ~doc:"Min step interval.") in
  let c2_arg = Arg.(value & opt int 2 & info [ "c2" ] ~doc:"Max step interval.") in
  let d_arg = Arg.(value & opt int 4 & info [ "d" ] ~doc:"Max message delay.") in
  let until_arg =
    Arg.(value & opt int 20 & info [ "until" ] ~docv:"T" ~doc:"Simulate through time $(docv).")
  in
  let slow_solo_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "slow-solo" ] ~docv:"PID"
          ~doc:
            "Use the slow-solo adversary: everyone else crashes after \
             $(b,--after-step) and $(docv) continues at the slowest legal pace.")
  in
  let after_step_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "after-step" ] ~docv:"S"
          ~doc:
            "Step after which the slow-solo crash happens (default: one full \
             round of microrounds).")
  in
  let validate_arg =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "Re-check the produced trace against the timing-model axioms \
             (step intervals, delivery bound, FIFO, no spoofing); exit \
             non-zero and print each violation if any fail.")
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:
         "Run the semi-synchronous discrete-event simulator (Section 8) and \
          optionally validate the trace against the model's axioms.")
    Term.(
      const run $ trace_arg $ c1_arg $ c2_arg $ d_arg $ n_arg $ until_arg
      $ slow_solo_arg $ after_step_arg $ validate_arg)

(* ------------------------------------------------------------------ *)
(* load + chaos: the traffic/adversity harness (lib/load, docs/LOAD.md) *)
(* ------------------------------------------------------------------ *)

(* "LO:HI" millisecond spans for the chaos delay; a bare integer means
   a fixed delay, 0:0 means off *)
let span_conv =
  let parse s =
    let num x =
      match int_of_string_opt x with
      | Some v when v >= 0 -> Ok v
      | _ -> Error (`Msg "expected nonnegative integers LO:HI")
    in
    match String.index_opt s ':' with
    | None -> Result.map (fun v -> (v, v)) (num s)
    | Some i -> (
        match
          ( num (String.sub s 0 i),
            num (String.sub s (i + 1) (String.length s - i - 1)) )
        with
        | Ok lo, Ok hi when lo <= hi -> Ok (lo, hi)
        | Ok _, Ok _ -> Error (`Msg "expected LO <= HI")
        | (Error _ as e), _ | _, (Error _ as e) -> e)
  in
  Arg.conv (parse, fun ppf (lo, hi) -> Format.fprintf ppf "%d:%d" lo hi)

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Seed for every random choice (arrival times, key skew, chaos \
           schedule).  The same seed replays the same schedule.")

let faults_of (dlo, dhi) throttle reset torn corrupt =
  {
    Psph_load.Chaos.delay_ms = (if dhi = 0 then None else Some (dlo, dhi));
    throttle_bps = (if throttle > 0 then Some throttle else None);
    reset_ppc = reset;
    torn_ppc = torn;
    corrupt_ppc = corrupt;
  }

let load_cmd =
  let run trace connect soak out rate conns pipeline_depth codec duration
      keyspace zipf seed timeout_ms retries backends replicas warm_s slo_ms
      warm_floor no_kill delay throttle reset torn corrupt =
    let lcfg =
      {
        Psph_load.Loadgen.rate;
        conns;
        pipeline_depth = max 1 pipeline_depth;
        codec;
        duration_s = duration;
        keyspace;
        zipf;
        seed;
        timeout_ms;
        retries;
      }
    in
    let code =
      with_trace trace @@ fun () ->
      if soak then begin
        let cfg =
          {
            Psph_load.Soak.backends;
            replicas;
            load = lcfg;
            faults = faults_of delay throttle reset torn corrupt;
            seed;
            warm_s;
            slo_p99_ms = slo_ms;
            warm_floor;
            kill_backend = not no_kill;
            converge_timeout_s = 20.;
            make_backend = (fun i -> Psph_load.Soak.spawn_backend i);
          }
        in
        match Psph_load.Soak.run cfg with
        | Error m ->
            Format.eprintf "psc load: soak: %s@." m;
            1
        | Ok r ->
            Psph_load.Soak.print_summary stdout r;
            flush stdout;
            Option.iter
              (fun path ->
                Psph_obs.Jsonl.write_atomic path (fun oc ->
                    output_string oc
                      (Psph_obs.Jsonl.to_string (Psph_load.Soak.to_json r));
                    output_char oc '\n');
                Format.eprintf "psc load: wrote %s@." path)
              out;
            if Psph_load.Soak.passed r then 0 else 1
      end
      else
        match connect with
        | None ->
            Format.eprintf
              "psc load: --connect HOST:PORT required (or --soak)@.";
            1
        | Some addr ->
            let st = Psph_load.Loadgen.run lcfg addr in
            let completed = Psph_load.Loadgen.completed st in
            let p pct = 1000. *. Psph_load.Loadgen.percentile st.latencies pct in
            Printf.printf
              "load seed %d: %d sent, %d ok (%d cached), %d server-err, %d \
               timeout, %d conn, %d proto\n"
              seed st.sent st.ok st.cached
              (List.fold_left (fun a (_, n) -> a + n) 0 st.server_errors)
              st.timeouts st.conn_errors st.proto_errors;
            Printf.printf "  %.1f req/s, p50 %.2fms p99 %.2fms over %.1fs\n"
              (float_of_int completed /. st.wall_s)
              (p 50.) (p 99.) st.wall_s;
            Option.iter
              (fun path ->
                Psph_obs.Jsonl.write_atomic path (fun oc ->
                    output_string oc
                      (Psph_obs.Jsonl.to_string
                         (Psph_obs.Jsonl.Obj
                            [
                              ("seed", Psph_obs.Jsonl.int seed);
                              ("sent", Psph_obs.Jsonl.int st.sent);
                              ("ok", Psph_obs.Jsonl.int st.ok);
                              ("cached", Psph_obs.Jsonl.int st.cached);
                              ( "rps",
                                Psph_obs.Jsonl.Num
                                  (float_of_int completed /. st.wall_s) );
                              ("p50_ms", Psph_obs.Jsonl.Num (p 50.));
                              ("p99_ms", Psph_obs.Jsonl.Num (p 99.));
                            ]));
                    output_char oc '\n');
                Format.eprintf "psc load: wrote %s@." path)
              out;
            if st.sent > 0 && completed = st.sent && st.unresolved = 0 then 0
            else 1
    in
    if code <> 0 then exit code
  in
  let connect_opt_arg =
    Arg.(
      value
      & opt (some addr_conv) None
      & info [ "connect" ] ~docv:"HOST:PORT"
          ~doc:"Server or router to drive (ignored with $(b,--soak)).")
  in
  let soak_arg =
    Arg.(
      value & flag
      & info [ "soak" ]
          ~doc:
            "Run the full invariant-checked soak: spawn backends, chaos \
             proxies, a replicated router and the generator, inject the \
             seeded fault timeline, and exit nonzero if any invariant \
             fails (see docs/LOAD.md).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write results as JSON (tmp+rename) to $(docv).")
  in
  let rate_arg =
    Arg.(
      value & opt float 500.
      & info [ "rate" ] ~docv:"R"
          ~doc:
            "Open-loop arrival rate, requests/second across all \
             connections.  The schedule never slows down for a struggling \
             server; latency is measured from intended arrival.")
  in
  let conns_arg =
    Arg.(
      value & opt int 4
      & info [ "conns" ] ~docv:"N" ~doc:"Generator connections (one thread each).")
  in
  let load_depth_arg =
    Arg.(
      value & opt int 16
      & info [ "pipeline-depth" ] ~docv:"N"
          ~doc:"In-flight requests per generator connection.")
  in
  let load_codec_arg =
    Arg.(
      value
      & opt (enum [ ("json", `Json); ("binary", `Binary) ]) `Binary
      & info [ "codec" ] ~docv:"CODEC"
          ~doc:"Codec to request at the v2 handshake (negotiated).")
  in
  let duration_arg =
    Arg.(
      value & opt float 10.
      & info [ "duration" ] ~docv:"SECONDS"
          ~doc:"Length of the run ($(b,--soak): of each measured phase).")
  in
  let keyspace_arg =
    Arg.(
      value & opt int 64
      & info [ "keyspace" ] ~docv:"K"
          ~doc:
            "Distinct keys in the query table (drawn from the model \
             registry's spec space).")
  in
  let zipf_arg =
    Arg.(
      value & opt float 1.0
      & info [ "zipf" ] ~docv:"S"
          ~doc:"Zipf skew exponent over the key table; 0 = uniform.")
  in
  let load_timeout_arg =
    Arg.(
      value & opt int 2000
      & info [ "timeout-ms" ] ~docv:"MS" ~doc:"Per-attempt request timeout.")
  in
  let load_retries_arg =
    Arg.(
      value & opt int 2
      & info [ "retries" ] ~docv:"N" ~doc:"Retries on retryable failures.")
  in
  let backends_arg =
    Arg.(
      value & opt int 2
      & info [ "backends" ] ~docv:"N"
          ~doc:"($(b,--soak)) Backend processes to spawn.")
  in
  let soak_replicas_arg =
    Arg.(
      value & opt int 2
      & info [ "replicas" ] ~docv:"R"
          ~doc:"($(b,--soak)) Replication factor of the router's memo tier.")
  in
  let warm_arg =
    Arg.(
      value & opt float 3.
      & info [ "warm" ] ~docv:"SECONDS"
          ~doc:
            "($(b,--soak)) Warmup phase: uniform skew, fills every key and \
             lets populate hints replicate before measuring.")
  in
  let slo_arg =
    Arg.(
      value & opt float 250.
      & info [ "slo-ms" ] ~docv:"MS"
          ~doc:"($(b,--soak)) p99 SLO for the clean and recovery phases.")
  in
  let warm_floor_arg =
    Arg.(
      value & opt float 0.7
      & info [ "warm-floor" ] ~docv:"RATE"
          ~doc:
            "($(b,--soak)) Minimum recovery-phase cached-hit rate — the \
             replicas-stayed-warm invariant.")
  in
  let no_kill_arg =
    Arg.(
      value & flag
      & info [ "no-kill" ]
          ~doc:
            "($(b,--soak)) Skip the mid-chaos SIGKILL + restart of one \
             backend.")
  in
  let chaos_delay_arg =
    Arg.(
      value
      & opt span_conv (2, 20)
      & info [ "chaos-delay" ] ~docv:"LO:HI"
          ~doc:
            "($(b,--soak)) Added per-chunk latency range in ms during the \
             chaos phase; 0:0 disables.")
  in
  let chaos_throttle_arg =
    Arg.(
      value & opt int 0
      & info [ "chaos-throttle-bps" ] ~docv:"BPS"
          ~doc:"($(b,--soak)) Bandwidth cap per direction; 0 disables.")
  in
  let chaos_reset_arg =
    Arg.(
      value & opt int 20
      & info [ "chaos-reset-ppc" ] ~docv:"PPC"
          ~doc:
            "($(b,--soak)) Connection resets per thousand forwarded chunks.")
  in
  let chaos_torn_arg =
    Arg.(
      value & opt int 5
      & info [ "chaos-torn-ppc" ] ~docv:"PPC"
          ~doc:"($(b,--soak)) Torn frames per thousand forwarded chunks.")
  in
  let chaos_corrupt_arg =
    Arg.(
      value & opt int 0
      & info [ "chaos-corrupt-ppc" ] ~docv:"PPC"
          ~doc:
            "($(b,--soak)) Single-byte corruptions per thousand forwarded \
             chunks.")
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Open-loop load generator for a serve/route endpoint — or, with \
          $(b,--soak), the full invariant-checked chaos soak: cluster + \
          chaos proxies + generator, exit nonzero on any violated \
          invariant.  See docs/LOAD.md.")
    Term.(
      const run $ trace_arg $ connect_opt_arg $ soak_arg $ out_arg $ rate_arg
      $ conns_arg $ load_depth_arg $ load_codec_arg $ duration_arg
      $ keyspace_arg $ zipf_arg $ seed_arg $ load_timeout_arg
      $ load_retries_arg $ backends_arg $ soak_replicas_arg $ warm_arg
      $ slo_arg $ warm_floor_arg $ no_kill_arg $ chaos_delay_arg
      $ chaos_throttle_arg $ chaos_reset_arg $ chaos_torn_arg
      $ chaos_corrupt_arg)

let chaos_cmd =
  let run trace listen upstream seed delay throttle reset torn corrupt
      disabled partition_every partition_for =
    let code =
      with_trace trace @@ fun () ->
      let faults = faults_of delay throttle reset torn corrupt in
      match Psph_load.Chaos.create ~seed ~faults ~upstream listen with
      | Error m ->
          Format.eprintf "psc chaos: %s@." m;
          1
      | Ok proxy ->
          Psph_load.Chaos.set_enabled proxy (not disabled);
          Format.eprintf "psc chaos: %s -> %s, seed %d, faults %s@."
            (Psph_net.Addr.to_string (Psph_load.Chaos.addr proxy))
            (Psph_net.Addr.to_string upstream)
            seed
            (if disabled then "disabled" else "enabled");
          let stop = ref false in
          let on_sig _ = stop := true in
          Sys.set_signal Sys.sigint (Sys.Signal_handle on_sig);
          Sys.set_signal Sys.sigterm (Sys.Signal_handle on_sig);
          let last_partition = ref (Psph_obs.Obs.monotonic ()) in
          while not !stop do
            Thread.delay 0.1;
            if
              partition_every > 0.
              && Psph_obs.Obs.monotonic () -. !last_partition
                 >= partition_every
            then begin
              Format.eprintf "psc chaos: partition for %.1fs@." partition_for;
              Psph_load.Chaos.set_partition proxy Psph_load.Chaos.Full;
              Thread.delay partition_for;
              Psph_load.Chaos.set_partition proxy
                Psph_load.Chaos.No_partition;
              Format.eprintf "psc chaos: partition healed@.";
              last_partition := Psph_obs.Obs.monotonic ()
            end
          done;
          Psph_load.Chaos.stop proxy;
          dump_metrics_stderr ();
          0
    in
    if code <> 0 then exit code
  in
  let listen_arg =
    Arg.(
      required
      & opt (some addr_conv) None
      & info [ "listen" ] ~docv:"HOST:PORT" ~doc:"Address to listen on.")
  in
  let upstream_arg =
    Arg.(
      required
      & opt (some addr_conv) None
      & info [ "upstream" ] ~docv:"HOST:PORT"
          ~doc:"Real server the proxy forwards to.")
  in
  let delay_arg =
    Arg.(
      value & opt span_conv (0, 0)
      & info [ "delay" ] ~docv:"LO:HI"
          ~doc:"Added per-chunk latency range in ms; 0:0 disables.")
  in
  let throttle_arg =
    Arg.(
      value & opt int 0
      & info [ "throttle-bps" ] ~docv:"BPS"
          ~doc:"Bandwidth cap per direction; 0 disables.")
  in
  let reset_arg =
    Arg.(
      value & opt int 0
      & info [ "reset-ppc" ] ~docv:"PPC"
          ~doc:"Connection resets per thousand forwarded chunks.")
  in
  let torn_arg =
    Arg.(
      value & opt int 0
      & info [ "torn-ppc" ] ~docv:"PPC"
          ~doc:"Torn frames (truncate then reset) per thousand chunks.")
  in
  let corrupt_arg =
    Arg.(
      value & opt int 0
      & info [ "corrupt-ppc" ] ~docv:"PPC"
          ~doc:"Single-byte corruptions per thousand chunks.")
  in
  let disabled_arg =
    Arg.(
      value & flag
      & info [ "start-disabled" ]
          ~doc:"Start as a transparent relay (faults off).")
  in
  let partition_every_arg =
    Arg.(
      value & opt float 0.
      & info [ "partition-every" ] ~docv:"SECONDS"
          ~doc:"Open a full partition periodically; 0 = never.")
  in
  let partition_for_arg =
    Arg.(
      value & opt float 1.
      & info [ "partition-for" ] ~docv:"SECONDS"
          ~doc:"Length of each periodic partition.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a standalone fault-injecting TCP proxy in front of a serve or \
          route endpoint, with a seeded reproducible fault schedule.  \
          SIGINT/SIGTERM stops it and dumps chaos.* metrics to stderr.  See \
          docs/LOAD.md.")
    Term.(
      const run $ trace_arg $ listen_arg $ upstream_arg $ seed_arg
      $ delay_arg $ throttle_arg $ reset_arg $ torn_arg $ corrupt_arg
      $ disabled_arg $ partition_every_arg $ partition_for_arg)

let () =
  let doc = "pseudosphere calculator (Herlihy-Rajsbaum-Tuttle, PODC 1998)" in
  let info = Cmd.info "psc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          (List.map model_cmd (Model_complex.all ())
          @ [ pseudosphere_cmd; models_cmd; decide_cmd; bound_cmd; mv_cmd;
              connectivity_cmd; run_cmd; sim_cmd; serve_cmd; query_cmd;
              route_cmd; load_cmd; chaos_cmd ])))
