(* Regenerate every figure and formal result of Herlihy-Rajsbaum-Tuttle,
   "Unifying Synchronous and Asynchronous Message-Passing Models" (PODC'98).

   Each section prints the paper's claim next to the measured outcome; the
   whole output is recorded in EXPERIMENTS.md.  Run a subset with
   `dune exec bin/experiments.exe -- F1 L11 ...`. *)

open Psph_topology
open Psph_model
open Pseudosphere
open Psph_agreement

let section id title = Format.printf "@.== %s: %s@." id title

let row fmt = Format.printf fmt

let checks = ref 0

let failures = ref 0

let ok b =
  incr checks;
  if b then "ok"
  else begin
    incr failures;
    "FAIL"
  end

let fvec c =
  Complex.f_vector c |> Array.to_list |> List.map string_of_int
  |> String.concat ","

let betti c =
  Homology.betti c |> Array.to_list |> List.map string_of_int |> String.concat ","

let inputs n = List.init (n + 1) (fun i -> (i, i mod 2))

let input_simplex n = Input_complex.simplex_of_inputs (inputs n)

(* ------------------------------------------------------------------ *)

let f1 () =
  section "F1" "Figure 1 - the three-process binary pseudosphere";
  let ps = Psph.binary 2 in
  let c = Psph.realize ~vertex:Psph.default_vertex ps in
  row "  psi(S^2;{0,1}): f=(%s) chi=%d betti=(%s)@." (fvec c) (Complex.euler c)
    (betti c);
  row "  paper: topologically a 2-sphere  -> betti (1,0,1): %s@."
    (ok (betti c = "1,0,1"));
  row "  octahedron counts (6,12,8): %s@." (ok (fvec c = "6,12,8"))

let f2 () =
  section "F2" "Figure 2 - psi(S^1;{0,1}) and psi(S^0;{0,1,2})";
  let square =
    Psph.realize ~vertex:Psph.default_vertex
      (Psph.uniform ~base:(Simplex.proc_simplex 1) [ Label.Int 0; Label.Int 1 ])
  in
  row "  psi(S^1;{0,1}): f=(%s) betti=(%s) -> a circle: %s@." (fvec square)
    (betti square)
    (ok (betti square = "1,1"));
  let three =
    Psph.realize ~vertex:Psph.default_vertex
      (Psph.uniform ~base:(Simplex.proc_simplex 0)
         [ Label.Int 0; Label.Int 1; Label.Int 2 ])
  in
  row "  psi(S^0;{0,1,2}): f=(%s) -> three isolated vertices: %s@." (fvec three)
    (ok (fvec three = "3"));
  row "  Cor 6 degrees: square is 0-connected %s, points are (-1)-connected %s@."
    (ok (Homology.is_k_connected square 0))
    (ok (Homology.is_k_connected three (-1)))

let f3 () =
  section "F3" "Figure 3 - one-round synchronous complex, 3 processes, <=1 failure";
  let s = input_simplex 2 in
  List.iter
    (fun k ->
      let c = Sync_complex.one_round_failing s k in
      row "  exactly K=%a fail: f=(%s)@." Pid.Set.pp k (fvec c))
    (Failure.subsets_of_size_at_most (Pid.Set.of_list [ 0; 1; 2 ]) 1);
  let c = Sync_complex.one_round ~k:1 s in
  row "  union S^1(S^2): f=(%s) chi=%d@." (fvec c) (Complex.euler c);
  row "  paper: failure-free triangle + three single-failure pseudospheres,@.";
  row "  0-connected (Lemma 16): %s@." (ok (Homology.is_k_connected c 0))

let l4 () =
  section "L4" "Lemma 4 - pseudosphere algebra";
  let base = Simplex.proc_simplex 2 in
  let single =
    Psph.realize ~vertex:Psph.default_vertex (Psph.uniform ~base [ Label.Int 9 ])
  in
  row "  (1) singleton values: psi(S;{u}) ~ S: %s@."
    (ok (Simplicial_map.are_isomorphic single (Complex.of_simplex base)));
  let with_empty =
    Psph.create ~base ~values:(fun p -> if p = 1 then [] else [ Label.Int 0; Label.Int 1 ])
  in
  let without =
    Psph.create
      ~base:(Simplex.without_ids (Pid.Set.singleton 1) base)
      ~values:(fun _ -> [ Label.Int 0; Label.Int 1 ])
  in
  row "  (2) empty value set deletes the vertex: %s@."
    (ok (Complex.equal (Psph.realize with_empty) (Psph.realize without)));
  let a = Psph.uniform ~base [ Label.Int 0; Label.Int 1 ] in
  let b = Psph.uniform ~base [ Label.Int 1; Label.Int 2 ] in
  row "  (3) intersection law: %s@."
    (ok
       (Complex.equal
          (Complex.inter (Psph.realize a) (Psph.realize b))
          (Psph.realize (Psph.inter a b))))

let c6c8 () =
  section "C6/C8" "Corollaries 6 and 8 - pseudosphere connectivity";
  List.iter
    (fun (m, sizes) ->
      let ps =
        Psph.create ~base:(Simplex.proc_simplex m) ~values:(fun p ->
            List.init (List.nth sizes p) (fun i -> Label.Int i))
      in
      let c = Psph.realize ps in
      row "  m=%d sizes=(%s): (m-1)=%d-connected: %s@." m
        (String.concat "," (List.map string_of_int sizes))
        (m - 1)
        (ok (Homology.is_k_connected c (m - 1))))
    [ (1, [ 2; 2 ]); (2, [ 2; 2; 2 ]); (2, [ 1; 2; 3 ]); (3, [ 2; 1; 2; 1 ]) ];
  (* Cor 8: union over value families with common intersection *)
  let base = Simplex.proc_simplex 2 in
  let family =
    [ [ Label.Int 0; Label.Int 1 ]; [ Label.Int 0; Label.Int 2 ]; [ Label.Int 0; Label.Int 3 ] ]
  in
  let pss = List.map (fun us -> Psph.uniform ~base us) family in
  let union = Mayer_vietoris.union_realize pss in
  row "  Cor 8: union of psi(S^2;A_i), /\\A_i = {0}: (m-1)=1-connected: %s@."
    (ok (Homology.is_k_connected union 1))

let l11 () =
  section "L11" "Lemma 11 - A^1(S) is a single pseudosphere";
  List.iter
    (fun (n, f) ->
      let s = input_simplex n in
      let a1 = Async_complex.one_round ~n ~f s in
      let en = Enumerated.async ~n ~f ~r:1 (inputs n) in
      row
        "  n=%d f=%d: facets=%d simplices=%d | explicit iso: %s | = enumerated \
         executions: %s@."
        n f
        (List.length (Complex.facets a1))
        (Complex.num_simplices a1)
        (ok (Async_complex.lemma11_holds ~n ~f s))
        (ok (Complex.equal a1 en)))
    [ (1, 1); (2, 1); (2, 2); (3, 1) ]

let l12 () =
  section "L12/C13" "Lemma 12 & Corollary 13 - asynchronous connectivity and k-set impossibility";
  List.iter
    (fun (n, f, r) ->
      let c = Async_complex.rounds ~n ~f ~r (input_simplex n) in
      let claimed = Async_complex.lemma12_expected_connectivity ~m:n ~n ~f in
      row "  A^%d(S^%d) f=%d: simplices=%d claimed conn>=%d: %s@." r n f
        (Complex.num_simplices c) claimed
        (ok (Homology.is_k_connected c claimed)))
    [ (1, 1, 1); (2, 1, 1); (2, 2, 1); (2, 1, 2); (2, 2, 2); (3, 1, 1) ];
  List.iter
    (fun (n, f, k, r) ->
      let chk = Lower_bound.async_check ~n ~f ~k ~r ~values:(Value.domain k) in
      row "  %a  -> %s@." Lower_bound.pp_check chk (ok (Lower_bound.holds chk)))
    [ (2, 1, 1, 1); (2, 1, 1, 2); (2, 2, 2, 1); (2, 1, 2, 1) ]

let l14_18 () =
  section "L14-L17/T18" "Synchronous model";
  let s2 = input_simplex 2 in
  List.iter
    (fun (n, k) ->
      let s = input_simplex n in
      row "  L14 n=%d |K|=%d: iso %s@." n (Pid.Set.cardinal k)
        (ok (Sync_complex.lemma14_holds s k)))
    [ (2, Pid.Set.singleton 2); (2, Pid.Set.of_list [ 0; 1 ]); (3, Pid.Set.of_list [ 1; 3 ]) ];
  let all_k = Failure.subsets_of_size_at_most (Pid.Set.of_list [ 0; 1; 2 ]) 2 in
  let rec prefixes acc = function
    | [] -> []
    | k :: rest -> List.rev (k :: acc) :: prefixes (k :: acc) rest
  in
  let pref_ok =
    List.for_all
      (fun p -> List.length p < 2 || Sync_complex.lemma15_holds s2 p)
      (prefixes [] all_k)
  in
  row "  L15 intersection identity over every prefix (n=2, k<=2): %s@." (ok pref_ok);
  List.iter
    (fun (n, k, r) ->
      let c = Sync_complex.rounds ~k ~r (input_simplex n) in
      let claimed = Sync_complex.lemma16_expected_connectivity ~m:n ~n ~k in
      let applies = n >= (r * k) + k in
      row "  L16/17 S^%d(S^%d) k=%d: simplices=%d %s@." r n k
        (Complex.num_simplices c)
        (if applies then
           Printf.sprintf "claimed conn>=%d: %s" claimed
             (ok (Homology.is_k_connected c claimed))
         else "hypothesis n >= rk+k fails (no claim)"))
    [ (2, 1, 1); (3, 1, 1); (4, 1, 1); (4, 2, 1); (3, 1, 2) ];
  row "  T18 round lower bounds (n, f, k -> rounds):@.";
  List.iter
    (fun (n, f, k) ->
      row "    n=%d f=%d k=%d -> %d@." n f k (Lower_bound.theorem18_rounds ~n ~f ~k))
    [ (3, 1, 1); (4, 2, 1); (5, 2, 1); (5, 4, 2); (2, 1, 1); (2, 2, 2) ];
  (* decision search at and past the bound *)
  List.iter
    (fun (n, k_round, k_task, r) ->
      let chk = Lower_bound.sync_check ~n ~k_round ~k_task ~r ~values:(Value.domain k_task) in
      row "  %a  -> %s@." Lower_bound.pp_check chk (ok (Lower_bound.holds chk)))
    [ (2, 1, 1, 1); (2, 1, 1, 2); (3, 1, 1, 1) ];
  (* matching upper bounds, exhaustively verified *)
  let v1 =
    Runner.check_sync_exhaustive ~protocol:(Protocols.flood_consensus ~f:1)
      ~k_task:1 ~total_crashes:1 ~inputs:(inputs 2) ~max_rounds:3
  in
  row "  upper bound: flooding consensus f=1 in %d rounds, exhaustive check: %s@."
    2
    (ok (v1 = []));
  let v2 =
    Runner.check_sync_exhaustive ~protocol:(Protocols.sync_kset ~f:2 ~k:2)
      ~k_task:2 ~total_crashes:2 ~inputs:(inputs 2) ~max_rounds:4
  in
  row "  upper bound: 2-set agreement f=2 in %d rounds, exhaustive check: %s@."
    (Protocols.sync_kset_rounds ~f:2 ~k:2)
    (ok (v2 = []))

let l19_22 () =
  section "L19-L21/C22" "Semi-synchronous model";
  let s2 = input_simplex 2 in
  List.iter
    (fun (n, p, pat) ->
      row "  L19 n=%d p=%d F=%a: iso %s@." n p Failure.pp_pattern pat
        (ok (Semi_sync_complex.lemma19_holds ~p ~n (input_simplex n) pat)))
    [
      (2, 2, Failure.pattern [ (2, 1) ]);
      (2, 2, Failure.pattern [ (1, 1); (2, 2) ]);
      (2, 3, Failure.pattern [ (0, 2) ]);
    ];
  let pats = Semi_sync_complex.pseudospheres ~k:1 ~p:2 ~n:2 s2 |> List.map fst in
  let rec prefixes acc = function
    | [] -> []
    | x :: rest -> List.rev (x :: acc) :: prefixes (x :: acc) rest
  in
  let pref_ok =
    List.for_all
      (fun pr -> List.length pr < 2 || Semi_sync_complex.lemma20_holds ~p:2 ~n:2 s2 pr)
      (prefixes [] pats)
  in
  row "  L20 intersection identity over every ordered prefix (n=2, k=1, p=2): %s@."
    (ok pref_ok);
  List.iter
    (fun (n, k, p, r) ->
      let c = Semi_sync_complex.rounds ~k ~p ~n ~r (input_simplex n) in
      let claimed = Semi_sync_complex.lemma21_expected_connectivity ~m:n ~n ~k in
      let applies = n >= (r + 1) * k in
      row "  L21 M^%d(S^%d) k=%d p=%d: simplices=%d %s@." r n k p
        (Complex.num_simplices c)
        (if applies then
           Printf.sprintf "claimed conn>=%d: %s" claimed
             (ok (Homology.is_k_connected c claimed))
         else "hypothesis n >= (r+1)k fails (no claim)"))
    [ (2, 1, 2, 1); (3, 1, 2, 1); (2, 1, 3, 1); (1, 1, 2, 1) ];
  row "  C22 wait-free time bounds (f, k, C=c2/c1, d=10):@.";
  List.iter
    (fun (f, k, c2) ->
      row "    f=%d k=%d C=%d -> %.1f@." f k c2
        (Lower_bound.corollary22_time ~f ~k ~c1:1 ~c2 ~d:10))
    [ (2, 1, 2); (3, 1, 2); (4, 2, 2); (2, 1, 3); (4, 1, 4) ];
  (* the stretch, realized in the timed simulator *)
  let cfg = { Sim.c1 = 1; c2 = 3; d = 3 } in
  let r = 1 in
  let after_step = r * Sim.microrounds cfg in
  let solo = Sim.run cfg ~n:2 (Sim.slow_solo cfg ~survivor:0 ~after_step) ~until:30 in
  let fast = Sim.run cfg ~n:2 (Sim.lockstep cfg) ~until:30 in
  let cc = cfg.Sim.c2 / cfg.Sim.c1 in
  let t_solo = (r * cfg.Sim.d) + (cc * cfg.Sim.d) in
  let t_fast = (r + 1) * cfg.Sim.d in
  row
    "  stretch: slow-solo at rd+Cd-eps indistinguishable from lockstep at \
     (r+1)d-eps: %s@."
    (ok (Sim.indistinguishable_to 0 (solo, t_solo) (fast, t_fast)));
  (* timeout protocol in the simulator vs the bound *)
  let f = 1 in
  let protocol = Protocols.semi_sync_consensus ~f in
  let cfg2 = { Sim.c1 = 1; c2 = 2; d = 10 } in
  let ds =
    Sim.decision_time cfg2 ~n:2 (Sim.lockstep cfg2) ~protocol ~inputs:(inputs 2)
      ~horizon:100
  in
  let bound = Lower_bound.corollary22_time ~f ~k:1 ~c1:1 ~c2:2 ~d:10 in
  List.iter
    (fun (q, t, v) ->
      row "  protocol decision: %a t=%d v=%d (bound %.1f): %s@." Pid.pp q t v bound
        (ok (float_of_int t >= bound)))
    ds

let mv () =
  section "T2/T5/T7" "Mayer-Vietoris engine - replaying the connectivity proofs";
  List.iter
    (fun (name, pss, claimed) ->
      let proof = Mayer_vietoris.union_connectivity pss in
      row "  %s: derived conn>=%d (claimed %d), proof steps=%d, numeric check: %s@."
        name (Mayer_vietoris.conn proof) claimed (Mayer_vietoris.size proof)
        (ok (Mayer_vietoris.validate pss proof && Mayer_vietoris.conn proof >= claimed)))
    [
      ( "async A^1 n=2 f=1 (Cor 6 axiom)",
        [ Async_complex.pseudosphere ~n:2 ~f:1 (input_simplex 2) ],
        1 );
      ( "sync S^1 n=2 k=1 (Lemma 16)",
        List.map snd (Sync_complex.pseudospheres ~k:1 (input_simplex 2)),
        0 );
      ( "sync S^1 n=3 k=1 (Lemma 16)",
        List.map snd (Sync_complex.pseudospheres ~k:1 (input_simplex 3)),
        1 );
      ( "sync S^1 n=4 k=2 (Lemma 16)",
        List.map snd (Sync_complex.pseudospheres ~k:2 (input_simplex 4)),
        1 );
      ( "semi M^1 n=2 k=1 p=2 (Lemma 21)",
        List.map snd (Semi_sync_complex.pseudospheres ~k:1 ~p:2 ~n:2 (input_simplex 2)),
        0 );
      ( "semi M^1 n=2 k=1 p=3 (Lemma 21)",
        List.map snd (Semi_sync_complex.pseudospheres ~k:1 ~p:3 ~n:2 (input_simplex 2)),
        0 );
    ];
  (* print one full derivation *)
  let pss = List.map snd (Sync_complex.pseudospheres ~k:1 (input_simplex 2)) in
  row "  sample derivation (sync n=2 k=1):@.%a@." Mayer_vietoris.pp
    (Mayer_vietoris.union_connectivity pss)

let sperner () =
  section "T9/C10" "Sperner machinery and the decision-search correspondence";
  let base = Simplex.of_list [ Vertex.anon 0; Vertex.anon 1; Vertex.anon 2 ] in
  let allowed = Sperner.barycentric_allowed base in
  let chi v = List.fold_left min max_int (allowed v) in
  List.iter
    (fun iters ->
      let b = Subdivision.barycentric_iter iters (Complex.of_simplex base) in
      row "  sd^%d(triangle): %d facets, panchromatic count %d (odd: %s)@." iters
        (List.length (Complex.facets b))
        (Sperner.count_panchromatic chi 2 b)
        (ok (Sperner.lemma_holds ~allowed chi 2 b)))
    [ 1; 2 ];
  (* Cor 10 correspondence: (k-1)-connected complexes defeat k-set maps *)
  List.iter
    (fun (n, f, k) ->
      let ic = Input_complex.make ~n ~values:(Value.domain k) in
      let c = Async_complex.over_inputs ~n ~f ~r:1 ic in
      let connected = Homology.is_k_connected c (k - 1) in
      let impossible =
        Decision.solve ~complex:c ~allowed:Task.allowed ~k () = Decision.Impossible
      in
      row "  async n=%d f=%d: (k-1)=%d-connected: %b, %d-set map impossible: %b -> %s@."
        n f (k - 1) connected k impossible
        (ok (connected = impossible)))
    [ (2, 1, 1); (2, 2, 2) ]

let t5t7 () =
  section "T5/T7" "Theorems 5 and 7 as observed instances";
  let init_label v = View.to_label (View.init v) in
  List.iter
    (fun (name, op, c, n, vals) ->
      let inst =
        Connectivity_theorems.check_theorem5 ~op ~c ~base:(input_simplex n)
          ~values:(fun _ -> List.map init_label vals)
      in
      row "  T5 %s: hypothesis %s, conclusion %s (%d faces checked)@." name
        (ok inst.Connectivity_theorems.hypothesis_holds)
        (ok inst.Connectivity_theorems.conclusion_holds)
        inst.Connectivity_theorems.faces_checked)
    [
      ("async n=2 f=1 c=1", Async_complex.one_round ~n:2 ~f:1, 1, 2, [ 0; 1 ]);
      ("async n=2 f=2 c=0", Async_complex.one_round ~n:2 ~f:2, 0, 2, [ 0; 1 ]);
      ("identity c=0 (Cor 6)", Complex.of_simplex, 0, 2, [ 0; 1; 2 ]);
    ];
  let inst =
    Connectivity_theorems.check_theorem7 ~op:Complex.of_simplex ~c:0
      ~base:(input_simplex 2)
      ~families:[ [ init_label 0; init_label 1 ]; [ init_label 0; init_label 2 ] ]
  in
  row "  T7 identity on psi unions with common value: hypothesis %s, conclusion %s@."
    (ok inst.Connectivity_theorems.hypothesis_holds)
    (ok inst.Connectivity_theorems.conclusion_holds)

let knowledge () =
  section "KNOW" "Knowledge reading of similarity (Section 1)";
  let inputs = [ (0, 0); (1, 1); (2, 1) ] in
  let s = Input_complex.simplex_of_inputs inputs in
  let c1 = Sync_complex.one_round ~k:1 s in
  let fact0 = Knowledge.fact_value_present 0 in
  let fact1 = Knowledge.fact_value_present 1 in
  (match Complex.facets c1 with
  | facet :: _ ->
      row "  S^1 is connected: %b@." (Complex.is_connected c1);
      row "  value 0 (held once) is common knowledge nowhere: %s@."
        (ok (not (Knowledge.common_knowledge_at c1 facet fact0)));
      row "  value 1 (held twice, f=1) is common knowledge: %s@."
        (ok (Knowledge.common_knowledge_at c1 facet fact1))
  | [] -> ());
  let e1 = Knowledge.iterate_everyone_knows c1 1 fact1 in
  let e2 = Knowledge.iterate_everyone_knows c1 2 fact1 in
  let count phi = List.length (List.filter phi (Complex.facets c1)) in
  row "  facets where E^1(value 1): %d, E^2(value 1): %d (of %d)@." (count e1)
    (count e2)
    (List.length (Complex.facets c1))

let iis () =
  section "IIS" "The iterated immediate snapshot bridge (Section 6 / [BG97])";
  let s2 = input_simplex 2 in
  row "  one-round IIS complex = standard chromatic subdivision: %s@."
    (ok (Iis_complex.isomorphic_to_chromatic s2));
  row "  facets = Fubini(3) = 13: %s@."
    (ok (List.length (Complex.facets (Iis_complex.one_round s2)) = 13));
  row "  IIS complex = enumerated shared-memory executions: %s@."
    (ok
       (Complex.equal
          (Iis_complex.rounds ~r:1 s2)
          (Iis_complex.enumerated ~r:1 (inputs 2))));
  row "  wait-free IIS is a subcomplex of wait-free A^1: %s@."
    (ok (Iis_complex.subcomplex_of_async ~n:2 s2));
  let iis_betti =
    Homology.reduced_betti (Iis_complex.one_round s2) |> Array.to_list
    |> List.map string_of_int |> String.concat ","
  in
  let a1_betti =
    Homology.reduced_betti (Async_complex.one_round ~n:2 ~f:2 s2)
    |> Array.to_list |> List.map string_of_int |> String.concat ","
  in
  row "  IIS reduced betti (%s): contractible; A^1 wait-free (%s): wedge of spheres@."
    iis_betti a1_betti;
  row "  (the paper's message-passing analog keeps holes the snapshot model fills)@."

let scale () =
  section "SCALE" "Larger instances of the lemma grids";
  let c = Sync_complex.one_round ~k:2 (input_simplex 5) in
  row "  S^1(S^5) k=2: %d simplices, 1-connected (Lemma 16): %s@."
    (Complex.num_simplices c)
    (ok (Homology.is_k_connected c 1));
  let c6 = Sync_complex.one_round ~k:3 (input_simplex 6) in
  row "  S^1(S^6) k=3: %d simplices, 2-connected (Lemma 16): %s@."
    (Complex.num_simplices c6)
    (ok (Homology.is_k_connected c6 2));
  let a = Async_complex.one_round ~n:4 ~f:1 (input_simplex 4) in
  row "  A^1(S^4) f=1: %d simplices, 0-connected (Lemma 12): %s@."
    (Complex.num_simplices a)
    (ok (Homology.is_k_connected a 0));
  let awf = Async_complex.one_round ~n:3 ~f:3 (input_simplex 3) in
  row "  A^1(S^3) wait-free: %d simplices, 2-connected (Lemma 12): %s@."
    (Complex.num_simplices awf)
    (ok (Homology.is_k_connected awf 2));
  let m = Semi_sync_complex.one_round ~k:2 ~p:2 ~n:4 (input_simplex 4) in
  row "  M^1(S^4) k=2 p=2: %d simplices, 1-connected (Lemma 21): %s@."
    (Complex.num_simplices m)
    (ok (Homology.is_k_connected m 1));
  let s3 = input_simplex 3 in
  let all_k = Failure.subsets_of_size_at_most (Pid.Set.of_list [ 0; 1; 2; 3 ]) 1 in
  let rec prefixes acc = function
    | [] -> []
    | k :: rest -> List.rev (k :: acc) :: prefixes (k :: acc) rest
  in
  row "  L15 on S^3 (every prefix, k<=1): %s@."
    (ok
       (List.for_all
          (fun pfx -> List.length pfx < 2 || Sync_complex.lemma15_holds s3 pfx)
          (prefixes [] all_k)))

let extensions () =
  section "EXT" "Extensions beyond the paper's letter";
  (* Gafni's round-by-round suspicion structures (Related Work) *)
  List.iter
    (fun (n, f) ->
      row "  RRFD async structure recovers A^1 (n=%d f=%d): %s@." n f
        (ok (Rrfd.agrees_with_async ~n ~f (input_simplex n))))
    [ (2, 1); (2, 2); (3, 1) ];
  List.iter
    (fun (n, k) ->
      row "  RRFD sync structure recovers S^1_K (n=%d |K|=%d): %s@." n
        (Pid.Set.cardinal k)
        (ok (Rrfd.agrees_with_sync (input_simplex n) k)))
    [ (2, Pid.Set.singleton 0); (3, Pid.Set.of_list [ 1; 2 ]) ];
  (* Awerbuch's synchronizer (Related Work) *)
  let delays ~src ~dst ~round = 1 + ((src + (2 * dst) + (3 * round)) mod 5) in
  let result =
    Synchronizer.run ~n:3 ~rounds:3 ~max_delay:5 ~delays ~inputs:(inputs 3)
  in
  let reference =
    Synchronizer.synchronous_reference ~n:3 ~rounds:3 ~inputs:(inputs 3)
  in
  row "  synchronizer reproduces synchronous views over skewed delays: %s@."
    (ok (Synchronizer.correct result ~reference));
  row "  synchronizer round r completes by r * max_delay: %s@."
    (ok (Synchronizer.within_time_bound result ~max_delay:5));
  (* integral homology: the complexes are torsion-free, closing the gap
     between Z/2 and topological connectivity evidence *)
  let s2 = input_simplex 2 in
  List.iter
    (fun (name, c) ->
      let groups =
        Homology_z.homology c |> Array.to_list
        |> List.map Homology_z.group_to_string
        |> String.concat ", "
      in
      row "  integral homology of %s: (%s) torsion-free: %s@." name groups
        (ok (Homology_z.is_torsion_free c)))
    [
      ("A^1(S^2) f=1", Async_complex.one_round ~n:2 ~f:1 s2);
      ("S^1(S^2) k=1", Sync_complex.one_round ~k:1 s2);
      ("M^1(S^2) k=1 p=2", Semi_sync_complex.one_round ~k:1 ~p:2 ~n:2 s2);
    ];
  (* shellability certifies the wedge-of-spheres homotopy type *)
  row "  binary pseudosphere psi(P^2;{0,1}) is shellable: %s@."
    (ok
       (Shelling.is_shellable
          (Psph.realize ~vertex:Psph.default_vertex (Psph.binary 2))));
  row "  A^1(S^1) f=1 is shellable: %s@."
    (ok
       (Shelling.is_shellable
          (Async_complex.one_round ~n:1 ~f:1 (input_simplex 1))));
  (* early-deciding consensus *)
  let early = Protocols.early_deciding_consensus ~n:2 ~f:2 in
  let free =
    Runner.run_sync ~protocol:early ~inputs:(inputs 2)
      ~schedule:(Runner.crash_schedule ~plan:[]) ~max_rounds:5
  in
  row "  early-deciding consensus, failure-free: decides in round %d (vs f+1 = 3)@."
    free.Runner.rounds_used;
  let checked =
    Runner.check_sync_exhaustive ~protocol:early ~k_task:1 ~total_crashes:2
      ~inputs:(inputs 2) ~max_rounds:5
  in
  row "  early-deciding consensus, exhaustive safety (f=2): %s@." (ok (checked = []));
  (* trace validation *)
  let cfg = { Sim.c1 = 1; c2 = 3; d = 3 } in
  let t = Sim.run cfg ~n:2 (Sim.slow_solo cfg ~survivor:0 ~after_step:3) ~until:30 in
  row "  simulator traces validate against the timing axioms: %s@."
    (ok (Trace_check.validate cfg t = []))

let sections =
  [
    ("F1", f1); ("F2", f2); ("F3", f3); ("L4", l4); ("C6C8", c6c8); ("L11", l11);
    ("L12", l12); ("L14_18", l14_18); ("L19_22", l19_22); ("MV", mv);
    ("T9", sperner); ("T5T7", t5t7); ("KNOW", knowledge); ("IIS", iis);
    ("SCALE", scale); ("EXT", extensions);
  ]

let () =
  let requested = List.tl (Array.to_list Sys.argv) in
  let run (name, f) =
    if requested = [] || List.exists (fun r -> String.uppercase_ascii r = name) requested
    then f ()
  in
  Format.printf
    "Pseudosphere reproduction - Herlihy, Rajsbaum, Tuttle (PODC 1998)@.";
  List.iter run sections;
  Format.printf "@.%d checks, %d failures.@." !checks !failures;
  if !failures > 0 then exit 1
