(* Walk through the paper's three figures, printing every construction.

   Run with: dune exec examples/figures.exe *)

open Psph_topology
open Psph_model
open Pseudosphere

let show name c =
  Format.printf "%s@.  %a@." name Complex.pp_summary c;
  List.iter (fun s -> Format.printf "  %a@." Simplex.pp s) (Complex.facets c);
  Format.printf "@."

let () =
  (* -------- Figure 1: three-process binary pseudosphere ------------- *)
  Format.printf "Figure 1 - constructing psi(P^2; {0,1})@.@.";
  (* left: the bare process triangle *)
  show "the base simplex (P, Q, R):" (Complex.of_simplex (Simplex.proc_simplex 2));
  (* centre: two copies labelled with constants *)
  let constant v =
    Psph.realize ~vertex:Psph.default_vertex
      (Psph.uniform ~base:(Simplex.proc_simplex 2) [ Label.Int v ])
  in
  show "all-zero copy:" (constant 0);
  show "all-one copy:" (constant 1);
  (* right: the full pseudosphere *)
  let full = Psph.realize ~vertex:Psph.default_vertex (Psph.binary 2) in
  show "every combination - the pseudosphere (an octahedral 2-sphere):" full;

  (* -------- Figure 2: two smaller pseudospheres --------------------- *)
  Format.printf "Figure 2 - psi(S^1;{0,1}) and psi(S^0;{0,1,2})@.@.";
  show "psi(S^1;{0,1}) - a 4-cycle (1-sphere):"
    (Psph.realize ~vertex:Psph.default_vertex
       (Psph.uniform ~base:(Simplex.proc_simplex 1) [ Label.Int 0; Label.Int 1 ]));
  show "psi(S^0;{0,1,2}) - three isolated vertices:"
    (Psph.realize ~vertex:Psph.default_vertex
       (Psph.uniform ~base:(Simplex.proc_simplex 0)
          [ Label.Int 0; Label.Int 1; Label.Int 2 ]));

  (* -------- Figure 3: one-round synchronous protocol complex -------- *)
  Format.printf
    "Figure 3 - one-round synchronous executions of P, Q, R with at most one \
     failure@.@.";
  let s = Input_complex.simplex_of_inputs [ (0, 0); (1, 0); (2, 0) ] in
  (* Vertices are printed as (process, heard set): the Lemma 14 labels. *)
  let plainify c =
    Complex.map
      (fun v ->
        match v with
        | Vertex.Proc (q, l) -> (
            match View.of_label l with
            | View.Round { heard; _ } ->
                Vertex.proc q (Label.Pid_set (Pid.Set.of_list (List.map fst heard)))
            | _ -> v)
        | _ -> v)
      c
  in
  show "executions in which no process fails (one simplex):"
    (plainify (Sync_complex.one_round_failing s Pid.Set.empty));
  show "executions in which R (= P2) alone fails (a pseudosphere):"
    (plainify (Sync_complex.one_round_failing s (Pid.Set.singleton 2)));
  show "the whole one-faulty complex (union of four pseudospheres):"
    (plainify (Sync_complex.one_round ~k:1 s))
