(* The model registry in action: every registered message-passing model,
   driven through one generic loop — no per-model match anywhere.

   For each model: build the one- and two-round protocol complexes over
   the standard input simplex, measure them, compare against the paper's
   claimed connectivity, and — where the model is a union of pseudospheres
   (async, sync, semi; not IIS, which is a subdivision) — machine-check
   the Lemma 11/14/19 decomposition generically.

   Run with: dune exec examples/registry_tour.exe *)

open Psph_topology
open Pseudosphere

let inputs n = List.init (n + 1) (fun i -> (i, i mod 2))

let input_simplex n = Input_complex.simplex_of_inputs (inputs n)

let () =
  Format.printf "registered models: %s@.@."
    (String.concat ", " (Model_complex.names ()));
  List.iter
    (fun ((module M : Model_complex.MODEL) as m) ->
      let spec =
        match M.validate { Model_complex.default_spec with n = 2 } with
        | Ok spec -> spec
        | Error msg -> failwith (M.name ^ ": " ^ msg)
      in
      let s = input_simplex spec.Model_complex.n in
      Format.printf "%s — %s@." M.name M.doc;
      Format.printf "  canonical spec: %s@." (Model_complex.encode m spec);
      List.iter
        (fun r ->
          let c = M.rounds { spec with Model_complex.r } s in
          Format.printf "  r=%d: %a  connectivity %d%s@." r Complex.pp_summary c
            (Homology.connectivity c)
            (match
               M.expected_connectivity { spec with Model_complex.r } ~m:2
             with
            | Some conn -> Printf.sprintf " (paper claims >= %d)" conn
            | None -> " (no claim at these parameters)"))
        [ 1; 2 ];
      (match M.pseudosphere_decomposition with
      | Some pieces ->
          Format.printf
            "  pseudosphere decomposition: %d pieces; union isomorphic to one \
             round: %b@."
            (List.length (pieces spec s))
            (Model_complex.decomposition_holds m spec s)
      | None ->
          Format.printf "  not a union of pseudospheres (a subdivision)@.");
      Format.printf "@.")
    (Model_complex.all ())
