(* Quickstart: build a pseudosphere, inspect it, and measure its topology.

   Run with: dune exec examples/quickstart.exe *)

open Psph_topology
open Pseudosphere

let () =
  (* A pseudosphere assigns to each process of a base simplex an
     independent set of values (Definition 3 of the paper).  Assigning
     binary values to three processes gives the octahedron — a 2-sphere. *)
  let ps = Psph.binary 2 in
  Format.printf "symbolic form:   %a@." Psph.pp ps;

  let complex = Psph.realize ~vertex:Psph.default_vertex ps in
  Format.printf "realized:        %a@." Complex.pp_summary complex;
  Format.printf "facets:          %d (one per value assignment)@."
    (List.length (Complex.facets complex));

  (* Z/2 Betti numbers certify the homotopy type: (1, 0, 1) is a 2-sphere. *)
  let betti = Homology.betti complex in
  Format.printf "betti numbers:   %a@."
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       Format.pp_print_int)
    (Array.to_list betti);

  (* Corollary 6: an m-dimensional pseudosphere is (m-1)-connected. *)
  Format.printf "connectivity:    %d (Corollary 6 promises >= %d)@."
    (Homology.connectivity complex)
    (Psph.connectivity_bound ps);

  (* The pseudosphere algebra of Lemma 4 is available symbolically. *)
  let base = Simplex.proc_simplex 2 in
  let a = Psph.uniform ~base [ Label.Int 0; Label.Int 1 ] in
  let b = Psph.uniform ~base [ Label.Int 1; Label.Int 2 ] in
  let i = Psph.inter a b in
  Format.printf "intersection:    %a@." Psph.pp i;
  Format.printf "Lemma 4.3 check: %b@."
    (Complex.equal
       (Complex.inter (Psph.realize a) (Psph.realize b))
       (Psph.realize i))
