(* Synchronous flooding consensus under crash injection, next to the
   Theorem 18 lower bound.

   Run with: dune exec examples/sync_consensus_demo.exe *)

open Psph_topology
open Psph_model
open Psph_agreement

let print_report name (report : Runner.report) =
  Format.printf "%s:@." name;
  List.iter
    (fun (q, round, v) ->
      Format.printf "  %a decides %d in round %d@." Pid.pp q v round)
    report.Runner.decisions;
  Format.printf "@."

let () =
  let inputs = [ (0, 3); (1, 1); (2, 4); (3, 5) ] in
  let f = 2 in
  let protocol = Protocols.flood_consensus ~f in
  Format.printf
    "4 processes, inputs (3, 1, 4, 5), up to f = %d crashes.@.\
     Theorem 18: consensus needs %d rounds; flooding uses f + 1 = %d.@.@." f
    (Lower_bound.theorem18_rounds ~n:3 ~f ~k:1)
    (f + 1);

  (* Failure-free run: everyone floods, the minimum (1) wins. *)
  print_report "failure-free"
    (Runner.run_sync ~protocol ~inputs ~schedule:(Runner.crash_schedule ~plan:[])
       ~max_rounds:6);

  (* The classic chain of deaths: in each round the crashing process
     whispers the minimum to exactly one successor before dying. *)
  let plan =
    [ (1, 1, Pid.Set.singleton 0) (* P1 (holding 1) dies, only P0 hears *);
      (2, 0, Pid.Set.singleton 2) (* P0 dies, only P2 hears *) ]
  in
  print_report "chain of whispered minima"
    (Runner.run_sync ~protocol ~inputs ~schedule:(Runner.crash_schedule ~plan)
       ~max_rounds:6);

  (* A process that decides too early would violate agreement: exhaustive
     check over every <= f-crash execution. *)
  let hasty = Protocol.decide_after_rounds f in
  let violations =
    Runner.check_sync_exhaustive ~protocol:hasty ~k_task:1 ~total_crashes:f
      ~inputs:[ (0, 0); (1, 1); (2, 2) ] ~max_rounds:4
  in
  Format.printf "deciding after only f rounds: %s@."
    (if violations = [] then "no violation found (unexpected!)"
     else
       String.concat ", "
         (List.map (Format.asprintf "%a" Runner.pp_violation) violations));

  let violations =
    Runner.check_sync_exhaustive ~protocol ~k_task:1 ~total_crashes:f
      ~inputs:[ (0, 0); (1, 1); (2, 2) ] ~max_rounds:4
  in
  Format.printf "flooding with f + 1 rounds: %s@."
    (if violations = [] then "verified over every execution" else "violated!")
