(* The k-set agreement lower bounds, witnessed by exhaustive search on the
   protocol complexes the paper constructs.

   Run with: dune exec examples/kset_impossibility.exe *)

open Psph_topology
open Psph_model
open Pseudosphere
open Psph_agreement

let verdict = function
  | Decision.Solution _ -> "a decision map exists"
  | Decision.Impossible -> "no decision map exists"
  | Decision.Unknown -> "search budget exhausted"

let () =
  Format.printf
    "Corollary 13: asynchronous f-resilient k-set agreement is impossible for \
     k <= f.@.@.";
  List.iter
    (fun (n, f, k) ->
      let ic = Input_complex.make ~n ~values:(Value.domain k) in
      let complex = Async_complex.over_inputs ~n ~f ~r:1 ic in
      let d = Decision.solve ~complex ~allowed:Task.allowed ~k () in
      Format.printf
        "  %d processes, f = %d, %d-set agreement, 1 round: %s (conn = %d)@."
        (n + 1) f k (verdict d)
        (Homology.connectivity ~cap:k complex))
    [ (2, 1, 1); (2, 2, 2); (2, 1, 2) ];

  Format.printf
    "@.Theorem 18: synchronous k-set agreement needs floor(f/k) + 1 rounds.@.@.";
  List.iter
    (fun (n, k_round, r) ->
      let ic = Input_complex.make ~n ~values:(Value.domain k_round) in
      let complex = Sync_complex.over_inputs ~k:k_round ~r ic in
      let d = Decision.solve ~complex ~allowed:Task.allowed ~k:k_round () in
      Format.printf "  %d processes, k = %d, r = %d rounds: %s@." (n + 1) k_round
        r (verdict d))
    [ (2, 1, 1); (2, 1, 2); (3, 1, 1) ];

  Format.printf
    "@.The Mayer-Vietoris engine derives the connectivity behind the bound:@.@.";
  let s = Input_complex.simplex_of_inputs [ (0, 0); (1, 1); (2, 0) ] in
  let pss = List.map snd (Sync_complex.pseudospheres ~k:1 s) in
  let proof = Mayer_vietoris.union_connectivity pss in
  Format.printf "%a@.@." Mayer_vietoris.pp proof;
  Format.printf "derived: S^1 is %d-connected; verified numerically: %b@."
    (Mayer_vietoris.conn proof)
    (Mayer_vietoris.validate pss proof)
