(* Regenerate the paper's figures as SVG files.

   Run with: dune exec examples/render_figures.exe
   Output:   figure1.svg figure2a.svg figure2b.svg figure3.svg iis.svg *)

open Psph_topology
open Psph_model
open Pseudosphere

let plainify c =
  (* replace full-view labels by heard-set labels for short captions *)
  Complex.map
    (fun v ->
      match v with
      | Vertex.Proc (q, l) -> (
          match View.of_label l with
          | View.Round { heard; _ } ->
              Vertex.proc q (Label.Pid_set (Pid.Set.of_list (List.map fst heard)))
          | _ -> v
          | exception Invalid_argument _ -> v)
      | _ -> v)
    c

let write name c =
  Render.save_svg name c;
  Format.printf "wrote %-14s %a@." name Complex.pp_summary c

let () =
  (* Figure 1: the binary pseudosphere on three processes *)
  write "figure1.svg" (Psph.realize ~vertex:Psph.default_vertex (Psph.binary 2));

  (* Figure 2: psi(S^1;{0,1}) and psi(S^0;{0,1,2}) *)
  write "figure2a.svg"
    (Psph.realize ~vertex:Psph.default_vertex
       (Psph.uniform ~base:(Simplex.proc_simplex 1) [ Label.Int 0; Label.Int 1 ]));
  write "figure2b.svg"
    (Psph.realize ~vertex:Psph.default_vertex
       (Psph.uniform ~base:(Simplex.proc_simplex 0)
          [ Label.Int 0; Label.Int 1; Label.Int 2 ]));

  (* Figure 3: the one-round one-faulty synchronous complex *)
  let s = Input_complex.simplex_of_inputs [ (0, 0); (1, 0); (2, 0) ] in
  write "figure3.svg" (plainify (Sync_complex.one_round ~k:1 s));

  (* bonus: the chromatic subdivision = one-round IIS complex *)
  write "iis.svg" (plainify (Iis_complex.one_round s))
