(* The semi-synchronous time lower bound (Corollary 22) in the timed
   simulator: the stretch argument, and a timeout protocol's decision time.

   Run with: dune exec examples/semi_sync_timing.exe *)

open Psph_topology
open Psph_model
open Psph_agreement

let () =
  let cfg = { Sim.c1 = 1; c2 = 3; d = 3 } in
  let p = Sim.microrounds cfg in
  Format.printf
    "timing: c1 = %d, c2 = %d, d = %d  ->  p = %d microrounds/round, C = %.1f@.@."
    cfg.Sim.c1 cfg.Sim.c2 cfg.Sim.d p (Sim.uncertainty cfg);

  (* -------- the stretch ------------------------------------------- *)
  let r = 1 in
  let after_step = r * p in
  Format.printf
    "Round %d ends at time %d.  Now kill everyone except P0, silently,@." r
    (r * cfg.Sim.d);
  Format.printf "and let P0 run as slowly as the model allows (every c2).@.@.";
  let solo = Sim.run cfg ~n:2 (Sim.slow_solo cfg ~survivor:0 ~after_step) ~until:40 in
  let fast = Sim.run cfg ~n:2 (Sim.lockstep cfg) ~until:40 in
  let c = cfg.Sim.c2 / cfg.Sim.c1 in
  let t_solo = (r * cfg.Sim.d) + (c * cfg.Sim.d) in
  let t_fast = (r + 1) * cfg.Sim.d in
  Format.printf
    "P0's observations in the stretched run up to rd + Cd = %d are exactly@."
    t_solo;
  Format.printf
    "its observations in the failure-free run up to (r+1)d = %d: %b@.@." t_fast
    (Sim.indistinguishable_to 0 (solo, t_solo) (fast, t_fast));
  Format.printf
    "Since no decision is possible at (r+1)d - eps (the complex M^%d is@." r;
  Format.printf
    "(k-1)-connected), none is possible at rd + Cd - eps either:@.";
  Format.printf "  Corollary 22 bound = rd + Cd = %.1f@.@."
    (Lower_bound.corollary22_time ~f:2 ~k:1 ~c1:cfg.Sim.c1 ~c2:cfg.Sim.c2
       ~d:cfg.Sim.d);

  (* -------- a timeout protocol ------------------------------------- *)
  let f = 1 in
  let protocol = Protocols.semi_sync_consensus ~f in
  Format.printf "Timeout consensus (decide min after f + 1 = %d rounds):@."
    (f + 1);
  let ds =
    Sim.decision_time cfg ~n:2 (Sim.lockstep cfg) ~protocol
      ~inputs:[ (0, 7); (1, 2); (2, 5) ] ~horizon:60
  in
  let bound =
    Lower_bound.corollary22_time ~f ~k:1 ~c1:cfg.Sim.c1 ~c2:cfg.Sim.c2 ~d:cfg.Sim.d
  in
  List.iter
    (fun (q, t, v) ->
      Format.printf "  %a decides %d at time %d (lower bound %.1f)@." Pid.pp q v
        t bound)
    ds;

  (* crash P1 (the minimum holder) mid-round and watch agreement hold *)
  Format.printf "@.With P1 crashing at microround 1 of round 1, heard by P0 only:@.";
  let crash = { Sim.at_step = 1; deliver_final_to = Pid.Set.singleton 0 } in
  let adv = Sim.lockstep_with_crashes cfg [ (1, crash) ] in
  let ds = Sim.decision_time cfg ~n:2 adv ~protocol ~inputs:[ (0, 7); (1, 2); (2, 5) ] ~horizon:60 in
  List.iter
    (fun (q, t, v) -> Format.printf "  %a decides %d at time %d@." Pid.pp q v t)
    ds
