(* "Unifying" in action: the same one-round complexes through three lenses.

   1. Gafni's round-by-round suspicion structures: one constructor, three
      models (Related Work, Section 2).
   2. Awerbuch's synchronizer: synchronous protocols on an asynchronous
      network, failure-free (the translation approach).
   3. Knowledge: what processes know, and why connectivity blocks
      agreement (Section 1's similarity relation).

   Run with: dune exec examples/unification.exe *)

open Psph_topology
open Psph_model
open Pseudosphere
open Psph_agreement

let inputs = [ (0, 0); (1, 1); (2, 1) ]

let s = Input_complex.simplex_of_inputs inputs

let () =
  (* ---- one abstraction, three models ------------------------------ *)
  Format.printf "Round-by-round suspicion structures:@.";
  Format.printf
    "  async (suspect up to f):        RRFD complex = A^1:   %b@."
    (Rrfd.agrees_with_async ~n:2 ~f:1 s);
  Format.printf
    "  sync (suspect a subset of K):   RRFD complex = S^1_K: %b@."
    (Rrfd.agrees_with_sync s (Pid.Set.singleton 2));
  let alive = Simplex.ids s in
  let async_c = Rrfd.one_round s (Rrfd.async_structure ~n:2 ~f:1 ~alive) in
  Format.printf
    "  the structure IS the pseudosphere value assignment: %d facets = 3^3@.@."
    (List.length (Complex.facets async_c));

  (* ---- the synchronizer ------------------------------------------- *)
  Format.printf "Synchronizer (asynchronous network, skewed delays):@.";
  let delays ~src ~dst ~round = 1 + ((src + (2 * dst) + round) mod 4) in
  let result = Synchronizer.run ~n:2 ~rounds:3 ~max_delay:4 ~delays ~inputs in
  let reference = Synchronizer.synchronous_reference ~n:2 ~rounds:3 ~inputs in
  Format.printf "  views equal the synchronous execution: %b@."
    (Synchronizer.correct result ~reference);
  Pid.Map.iter
    (fun q times ->
      Format.printf "  %a finished rounds at times %s (bound: r * %d)@." Pid.pp q
        (String.concat ", " (List.map string_of_int times))
        4)
    result.Synchronizer.finish_times;
  Format.printf "@.";

  (* ---- knowledge --------------------------------------------------- *)
  Format.printf "Knowledge in the one-round synchronous complex (<=1 crash):@.";
  let c1 = Sync_complex.one_round ~k:1 s in
  let fact0 = Knowledge.fact_value_present 0 in
  let fact1 = Knowledge.fact_value_present 1 in
  let heard_all =
    List.find
      (fun v ->
        match v with
        | Vertex.Proc (q, l) ->
            q = 1 && Pid.Set.cardinal (View.heard_pids (View.of_label l)) = 3
        | _ -> false)
      (Complex.vertices c1)
  in
  Format.printf "  P1 heard everyone: knows value 0 is present: %b@."
    (Knowledge.knows c1 heard_all fact0);
  (match Complex.facets c1 with
  | facet :: _ ->
      Format.printf "  but common knowledge of value 0: %b  (complex is connected: %b)@."
        (Knowledge.common_knowledge_at c1 facet fact0)
        (Complex.is_connected c1);
      Format.printf "  common knowledge of value 1 (held twice): %b@."
        (Knowledge.common_knowledge_at c1 facet fact1)
  | [] -> ());
  Format.printf
    "  the connected component is exactly the obstruction Theorem 9 turns@.";
  Format.printf "  into the k-set agreement impossibility.@."
