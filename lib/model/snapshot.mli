(** One-shot immediate snapshot objects (Borowsky–Gafni).

    Section 6 notes that the paper's asynchronous round structure "looks
    something like a message-passing analog of the executions arising in
    the iterated immediate snapshot model" [BG97].  This module supplies
    that shared-memory substrate so the analogy can be checked: an
    immediate-snapshot execution is an ordered partition
    [(B_1, ..., B_m)] of the participating processes — the processes of
    block [B_j] write concurrently and then snapshot, seeing exactly
    [B_1 U ... U B_j].

    The resulting view sets satisfy the classical immediate-snapshot
    axioms, which {!valid_views} checks:
    - self-inclusion: [p in S_p];
    - containment: the [S_p] are totally ordered by inclusion;
    - immediacy: [p in S_q] implies [S_p subseteq S_q]. *)

open Psph_topology

type schedule = Pid.t list list
(** An ordered partition of the participants into nonempty blocks. *)

val schedules : Pid.Set.t -> schedule list
(** All immediate-snapshot schedules of the given participants. *)

val schedule_count : int -> int
(** Number of schedules of [m] processes (the Fubini numbers: 1, 1, 3, 13,
    75, 541, ...). *)

val views_of_schedule : schedule -> Pid.Set.t Pid.Map.t
(** Per participant, the set of processes its snapshot saw. *)

val valid_views : Pid.Set.t Pid.Map.t -> bool
(** The three immediate-snapshot axioms. *)

val apply : Execution.global -> schedule -> Execution.global
(** One immediate-snapshot round on full-information states: each
    participant's new view records the states of the processes it saw. *)

val run : rounds:int -> Execution.global -> Execution.global list
(** All iterated immediate-snapshot executions (full participation,
    wait-free). *)
