open Psph_topology

let subsets_of_size univ k =
  let elems = Pid.Set.elements univ in
  let rec choose k = function
    | _ when k = 0 -> [ [] ]
    | [] -> []
    | x :: rest ->
        List.map (fun s -> x :: s) (choose (k - 1) rest) @ choose k rest
  in
  choose k elems
  |> List.map Pid.Set.of_list
  |> List.sort Pid.Set.compare_lex

let subsets_of_size_at_most univ k =
  List.concat_map (fun i -> subsets_of_size univ i) (List.init (k + 1) (fun i -> i))

let power_set univ = subsets_of_size_at_most univ (Pid.Set.cardinal univ)

type pattern = { failed : Pid.Set.t; at : int Pid.Map.t }

let pattern assoc =
  let failed = Pid.Set.of_list (List.map fst assoc) in
  if Pid.Set.cardinal failed <> List.length assoc then
    invalid_arg "Failure.pattern: duplicate pids";
  { failed; at = Pid.Map.of_seq (List.to_seq assoc) }

let pp_pattern ppf { at; _ } =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       (fun ppf (q, m) -> Format.fprintf ppf "%a@@%d" Pid.pp q m))
    (Pid.Map.bindings at)

let all_patterns ~p k =
  (* reverse-lex: first pattern fails everyone at microround p, last at 1 *)
  let pids = Pid.Set.elements k in
  let rec build = function
    | [] -> [ [] ]
    | q :: rest ->
        let tails = build rest in
        List.concat_map
          (fun m -> List.map (fun tl -> (q, m) :: tl) tails)
          (List.init p (fun i -> p - i))
  in
  List.map pattern (build pids)

let compare_pattern a b =
  (* reverse-lexicographic on the failure microrounds, aligned by pid *)
  let la = Pid.Map.bindings a.at and lb = Pid.Map.bindings b.at in
  let rec loop x y =
    match (x, y) with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | (p, m) :: x', (q, n) :: y' ->
        let c = Pid.compare p q in
        if c <> 0 then c
        else
          let c = Int.compare n m (* reverse: larger microround first *) in
          if c <> 0 then c else loop x' y'
  in
  loop la lb

let base_view ~p ~n ~alive { failed; _ } =
  Array.init (n + 1) (fun j ->
      if Pid.Set.mem j failed then -1 (* placeholder, filled per choice *)
      else if Pid.Set.mem j alive then p
      else 0)

let views ~p ~n ~alive ({ failed; at } as pat) =
  if not (Pid.Set.subset failed alive) then
    invalid_arg "Failure.views: failure set must be alive at round start";
  let base = base_view ~p ~n ~alive pat in
  let choices =
    Pid.Set.fold
      (fun q acc ->
        let m = Pid.Map.find q at in
        List.concat_map
          (fun v ->
            List.map
              (fun mu ->
                let v' = Array.copy v in
                v'.(q) <- mu;
                v')
              [ m - 1; m ])
          acc)
      failed [ base ]
  in
  choices

let views_up ~p ~n ~alive ({ failed; at } as pat) j =
  if not (Pid.Set.mem j failed) then
    invalid_arg "Failure.views_up: pid not in failure set";
  let mj = Pid.Map.find j at in
  List.filter (fun v -> v.(j) = mj) (views ~p ~n ~alive pat)
