(** A minimal priority queue (pairing heap) used by the discrete-event
    simulator.  Elements are ordered by an integer key; ties are broken by
    insertion order, making simulation runs deterministic. *)

type 'a t

val empty : 'a t

val is_empty : 'a t -> bool

val push : int -> 'a -> 'a t -> 'a t
(** [push key x q]: insert [x] with priority [key] (smaller pops first). *)

val pop : 'a t -> ((int * 'a) * 'a t) option
(** Remove the minimum-key, earliest-inserted element. *)

val size : 'a t -> int
