open Psph_topology

type delays = src:Pid.t -> dst:Pid.t -> round:int -> int

type result = {
  views : View.t Pid.Map.t;
  finish_times : int list Pid.Map.t;
}

type event = Deliver of { src : Pid.t; dst : Pid.t; round : int; state : View.t }

let clamp lo hi x = max lo (min hi x)

let run ~n ~rounds ~max_delay ~delays ~inputs =
  let views = Array.make (n + 1) (View.init 0) in
  List.iter (fun (q, v) -> views.(q) <- View.init v) inputs;
  let finish = Array.make (n + 1) [] in
  let current_round = Array.make (n + 1) 1 in
  (* mailbox.(q): per round, the (src, state) pairs received so far *)
  let mailbox : (int, (Pid.t * View.t) list) Hashtbl.t array =
    Array.init (n + 1) (fun _ -> Hashtbl.create 8)
  in
  let queue = ref Pqueue.empty in
  let send time q round =
    List.iter
      (fun dst ->
        let dt = clamp 1 max_delay (delays ~src:q ~dst ~round) in
        queue :=
          Pqueue.push (time + dt)
            (Deliver { src = q; dst; round; state = views.(q) })
            !queue)
      (Pid.all n)
  in
  (* everyone starts round 1 at time 0 *)
  List.iter (fun q -> send 0 q 1) (Pid.all n);
  let try_advance time q =
    let r = current_round.(q) in
    if r <= rounds then begin
      let inbox = Option.value ~default:[] (Hashtbl.find_opt mailbox.(q) r) in
      if List.length inbox = n + 1 then begin
        (* round complete: fold into the view, advance, send round r+1 *)
        views.(q) <- View.round ~prev:views.(q) ~heard:inbox;
        finish.(q) <- time :: finish.(q);
        current_round.(q) <- r + 1;
        if r + 1 <= rounds then send time q (r + 1)
      end
    end
  in
  let rec loop () =
    match Pqueue.pop !queue with
    | None -> ()
    | Some ((time, Deliver { src; dst; round; state }), rest) ->
        queue := rest;
        let inbox = Option.value ~default:[] (Hashtbl.find_opt mailbox.(dst) round) in
        Hashtbl.replace mailbox.(dst) round ((src, state) :: inbox);
        try_advance time dst;
        loop ()
  in
  loop ();
  {
    views =
      List.fold_left
        (fun m q -> Pid.Map.add q views.(q) m)
        Pid.Map.empty (Pid.all n);
    finish_times =
      List.fold_left
        (fun m q -> Pid.Map.add q (List.rev finish.(q)) m)
        Pid.Map.empty (Pid.all n);
  }

let synchronous_reference ~n ~rounds ~inputs =
  let g0 = Execution.initial inputs in
  let all = Pid.universe n in
  let sched = { Round_schedule.failed = Pid.Set.empty; heard_faulty = Pid.Map.empty } in
  let sched =
    {
      sched with
      Round_schedule.heard_faulty =
        Pid.Set.fold (fun q m -> Pid.Map.add q Pid.Set.empty m) all Pid.Map.empty;
    }
  in
  let rec loop r g = if r >= rounds then g else loop (r + 1) (Execution.apply_sync g sched) in
  loop 0 g0

let correct result ~reference =
  Pid.Map.for_all
    (fun q view ->
      match Pid.Map.find_opt q reference with
      | Some v -> View.equal v view
      | None -> false)
    result.views

let within_time_bound result ~max_delay =
  Pid.Map.for_all
    (fun _ times ->
      List.for_all2
        (fun t r -> t <= r * max_delay)
        times
        (List.init (List.length times) (fun i -> i + 1)))
    result.finish_times
