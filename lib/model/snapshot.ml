open Psph_topology

type schedule = Pid.t list list

let schedules participants =
  Psph_topology.Subdivision.ordered_partitions (Pid.Set.elements participants)

let rec schedule_count m =
  if m <= 0 then 1
  else begin
    let binom n k =
      let rec loop acc i = if i > k then acc else loop (acc * (n - i + 1) / i) (i + 1) in
      loop 1 1
    in
    let total = ref 0 in
    for j = 1 to m do
      total := !total + (binom m j * schedule_count (m - j))
    done;
    !total
  end

let views_of_schedule schedule =
  let rec loop seen acc = function
    | [] -> acc
    | block :: rest ->
        let seen = Pid.Set.union seen (Pid.Set.of_list block) in
        let acc =
          List.fold_left (fun acc q -> Pid.Map.add q seen acc) acc block
        in
        loop seen acc rest
  in
  loop Pid.Set.empty Pid.Map.empty schedule

let valid_views views =
  let bindings = Pid.Map.bindings views in
  let self_inclusion = List.for_all (fun (q, s) -> Pid.Set.mem q s) bindings in
  let containment =
    List.for_all
      (fun (_, s1) ->
        List.for_all
          (fun (_, s2) -> Pid.Set.subset s1 s2 || Pid.Set.subset s2 s1)
          bindings)
      bindings
  in
  let immediacy =
    List.for_all
      (fun (p, sp) ->
        List.for_all
          (fun (_, sq) -> (not (Pid.Set.mem p sq)) || Pid.Set.subset sp sq)
          (List.filter (fun (q, _) -> not (Pid.equal p q)) bindings))
      bindings
  in
  self_inclusion && containment && immediacy

let apply g schedule =
  let views = views_of_schedule schedule in
  Pid.Map.mapi
    (fun q prev ->
      let seen = Pid.Map.find q views in
      let heard =
        Pid.Set.elements seen |> List.map (fun r -> (r, Pid.Map.find r g))
      in
      View.round ~prev ~heard)
    g

let rec run ~rounds g =
  if rounds <= 0 then [ g ]
  else
    schedules (Execution.alive g)
    |> List.concat_map (fun schedule -> run ~rounds:(rounds - 1) (apply g schedule))
