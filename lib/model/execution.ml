open Psph_topology

type global = View.t Pid.Map.t

let initial assoc =
  List.fold_left
    (fun m (q, v) -> Pid.Map.add q (View.init v) m)
    Pid.Map.empty assoc

let alive g = Pid.Map.fold (fun q _ acc -> Pid.Set.add q acc) g Pid.Set.empty

let apply_async g (sched : Round_schedule.async) =
  Pid.Map.mapi
    (fun q prev ->
      let heard_set = Pid.Map.find q sched in
      let heard =
        Pid.Set.elements heard_set |> List.map (fun r -> (r, Pid.Map.find r g))
      in
      View.round ~prev ~heard)
    g

let apply_sync g (sched : Round_schedule.sync) =
  let survivors = Pid.Set.diff (alive g) sched.failed in
  Pid.Set.fold
    (fun q acc ->
      let prev = Pid.Map.find q g in
      let heard_set =
        Pid.Set.union survivors (Pid.Map.find q sched.heard_faulty)
      in
      let heard =
        Pid.Set.elements heard_set |> List.map (fun r -> (r, Pid.Map.find r g))
      in
      Pid.Map.add q (View.round ~prev ~heard) acc)
    survivors Pid.Map.empty

let apply_semi ~p ~n g (sched : Round_schedule.semi) =
  ignore n;
  let survivors = Pid.Set.diff (alive g) sched.pat.Failure.failed in
  Pid.Set.fold
    (fun q acc ->
      let prev = Pid.Map.find q g in
      let vec = Pid.Map.find q sched.choice in
      let heard =
        Array.to_list (Array.mapi (fun r mu -> (r, mu)) vec)
        |> List.filter_map (fun (r, mu) ->
               if mu >= 1 then Some (r, mu, Pid.Map.find r g) else None)
      in
      Pid.Map.add q (View.timed_round ~p ~prev ~heard) acc)
    survivors Pid.Map.empty

let rec run_async ~n ~f ~rounds g =
  if rounds <= 0 then [ g ]
  else
    Round_schedule.async_schedules ~n ~f ~alive:(alive g)
    |> List.concat_map (fun sched ->
           run_async ~n ~f ~rounds:(rounds - 1) (apply_async g sched))

let rec run_sync ~k ~rounds g =
  if rounds <= 0 then [ g ]
  else
    Round_schedule.sync_schedules ~k ~alive:(alive g)
    |> List.concat_map (fun sched ->
           run_sync ~k ~rounds:(rounds - 1) (apply_sync g sched))

let rec run_semi ~k ~p ~n ~rounds g =
  if rounds <= 0 then [ g ]
  else
    Round_schedule.semi_schedules ~k ~p ~n ~alive:(alive g)
    |> List.concat_map (fun sched ->
           run_semi ~k ~p ~n ~rounds:(rounds - 1) (apply_semi ~p ~n g sched))

let pp_global ppf g =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf (q, v) ->
         Format.fprintf ppf "%a: %a" Pid.pp q View.pp v))
    (Pid.Map.bindings g)
