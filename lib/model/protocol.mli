(** Protocols.

    Section 4: a protocol is determined by its message function and its
    decision function, and without loss of generality every protocol is a
    full-information protocol — each process always sends its entire local
    state.  A protocol is therefore just a named decision function on
    views. *)

type t = {
  name : string;
  decide : View.t -> Value.t option;
      (** [None] while undecided; once [Some v], the process halts with
          decision [v]. *)
}

val make : name:string -> decide:(View.t -> Value.t option) -> t

val min_seen : View.t -> Value.t
(** The smallest input value present in a view — the canonical decision
    rule of flooding protocols.  @raise Invalid_argument on an impossible
    empty view. *)

val decide_after_rounds : int -> t
(** The protocol that decides [min_seen] once the view contains the given
    number of rounds: with [f + 1] rounds this is synchronous flooding
    consensus, with [floor (f/k) + 1] rounds it is the synchronous k-set
    agreement protocol matching Theorem 18. *)

val full_information_never_decide : t
(** The bare full-information protocol with no decision rule (used to build
    protocol complexes). *)
