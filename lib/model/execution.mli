(** Executions: applying round schedules to full-information states.

    A global state is a map from alive processes to their views.  Applying
    a schedule produces the next global state; iterating over all schedules
    enumerates the paper's well-behaved round-based executions. *)

open Psph_topology

type global = View.t Pid.Map.t
(** The local states of the currently alive processes. *)

val initial : (Pid.t * Value.t) list -> global
(** Initial global state from an input assignment. *)

val apply_async : global -> Round_schedule.async -> global
(** One asynchronous round: every alive process receives the states of its
    heard set. *)

val apply_sync : global -> Round_schedule.sync -> global
(** One synchronous round: the schedule's [failed] processes disappear;
    each survivor receives the states of all survivors plus its heard
    subset of [failed]. *)

val apply_semi : p:int -> n:int -> global -> Round_schedule.semi -> global
(** One semi-synchronous round: the pattern's processes disappear; each
    survivor folds its chosen view vector into a {!View.Timed_round}. *)

val run_async : n:int -> f:int -> rounds:int -> global -> global list
(** All global states reachable after the given number of asynchronous
    rounds (every process alive at the start participates throughout). *)

val run_sync : k:int -> rounds:int -> global -> global list
(** All global states reachable when at most [k] processes crash per
    round. *)

val run_semi : k:int -> p:int -> n:int -> rounds:int -> global -> global list
(** Semi-synchronous analogue of {!run_sync}. *)

val alive : global -> Pid.Set.t

val pp_global : Format.formatter -> global -> unit
