(** Seeded random adversaries.

    Property tests sample the execution space beyond the canned lockstep /
    slow-solo adversaries: a seeded PRNG picks step intervals in [[c1, c2]],
    message delays in [[1, d]], and an optional crash per process.  Every
    generated trace must satisfy {!Trace_check.validate} — that is the
    property the test-suite checks. *)

open Psph_topology

val make : seed:int -> ?crash_probability:float -> Sim.config -> n:int -> Sim.adversary
(** A deterministic pseudo-random adversary for the given seed.
    [crash_probability] (default 0.3) is the chance, per process, of being
    assigned a crash (at a random step within the first three rounds, with
    a random subset of destinations receiving the final send). *)

val schedules_sync : seed:int -> k:int -> alive:Pid.Set.t -> Round_schedule.sync
(** A uniformly random synchronous one-round schedule with at most [k]
    crashes (for spot-checking formula membership without full
    enumeration). *)

val schedules_semi :
  seed:int -> k:int -> p:int -> n:int -> alive:Pid.Set.t -> Round_schedule.semi
(** A random semi-synchronous one-round schedule. *)
