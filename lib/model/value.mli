(** Input values.

    Each process starts with an input value from a finite set [V]
    (Section 4).  Values are small integers; [domain k] is the canonical
    [k+1]-element domain used by the k-set agreement experiments. *)

type t = int

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_label : t -> Psph_topology.Label.t

val of_label : Psph_topology.Label.t -> t
(** @raise Invalid_argument if the label is not an [Int]. *)

val domain : int -> t list
(** [domain k] is [[0; ...; k]]: the [k + 1] values of Theorem 9. *)

module Set : Stdlib.Set.S with type elt = t
