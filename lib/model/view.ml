open Psph_topology

type t =
  | Init of Value.t
  | Round of { prev : t; heard : (Pid.t * t) list }
  | Timed_round of { p : int; prev : t; heard : (Pid.t * int * t) list }

let init v = Init v

let check_distinct_senders senders =
  let sorted = List.sort_uniq Pid.compare senders in
  if List.length sorted <> List.length senders then
    invalid_arg "View: duplicate senders in heard list"

let round ~prev ~heard =
  check_distinct_senders (List.map fst heard);
  let heard = List.sort (fun (p, _) (q, _) -> Pid.compare p q) heard in
  Round { prev; heard }

let timed_round ~p ~prev ~heard =
  check_distinct_senders (List.map (fun (q, _, _) -> q) heard);
  List.iter
    (fun (_, mu, _) ->
      if mu < 0 || mu > p then invalid_arg "View.timed_round: mu out of range")
    heard;
  let heard = List.sort (fun (q, _, _) (r, _, _) -> Pid.compare q r) heard in
  Timed_round { p; prev; heard }

let rank = function Init _ -> 0 | Round _ -> 1 | Timed_round _ -> 2

let rec compare a b =
  match (a, b) with
  | Init v, Init w -> Value.compare v w
  | Round a', Round b' ->
      let c = compare a'.prev b'.prev in
      if c <> 0 then c else compare_heard a'.heard b'.heard
  | Timed_round a', Timed_round b' ->
      let c = Int.compare a'.p b'.p in
      if c <> 0 then c
      else
        let c = compare a'.prev b'.prev in
        if c <> 0 then c else compare_timed a'.heard b'.heard
  | (Init _ | Round _ | Timed_round _), _ -> Int.compare (rank a) (rank b)

and compare_heard x y =
  match (x, y) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | (p, s) :: x', (q, t) :: y' ->
      let c = Pid.compare p q in
      if c <> 0 then c
      else
        let c = compare s t in
        if c <> 0 then c else compare_heard x' y'

and compare_timed x y =
  match (x, y) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | (p, m, s) :: x', (q, n, t) :: y' ->
      let c = Pid.compare p q in
      if c <> 0 then c
      else
        let c = Int.compare m n in
        if c <> 0 then c
        else
          let c = compare s t in
          if c <> 0 then c else compare_timed x' y'

let equal a b = compare a b = 0

let rec pp ppf = function
  | Init v -> Format.fprintf ppf "in:%a" Value.pp v
  | Round { prev; heard } ->
      Format.fprintf ppf "(%a|%a)" pp prev
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
           (fun ppf (p, s) -> Format.fprintf ppf "%a<-%a" Pid.pp p pp s))
        heard
  | Timed_round { p; prev; heard } ->
      Format.fprintf ppf "(%a|p%d|%a)" pp prev p
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
           (fun ppf (q, mu, s) -> Format.fprintf ppf "%a@@%d<-%a" Pid.pp q mu pp s))
        heard

let rec rounds = function
  | Init _ -> 0
  | Round { prev; _ } | Timed_round { prev; _ } -> 1 + rounds prev

let rec input = function
  | Init v -> v
  | Round { prev; _ } | Timed_round { prev; _ } -> input prev

let heard_pids = function
  | Init _ -> Pid.Set.empty
  | Round { heard; _ } -> Pid.Set.of_list (List.map fst heard)
  | Timed_round { heard; _ } ->
      Pid.Set.of_list (List.map (fun (q, _, _) -> q) heard)

let rec seen_values = function
  | Init v -> Value.Set.singleton v
  | Round { prev; heard } ->
      List.fold_left
        (fun acc (_, s) -> Value.Set.union acc (seen_values s))
        (seen_values prev) heard
  | Timed_round { prev; heard; _ } ->
      List.fold_left
        (fun acc (_, _, s) -> Value.Set.union acc (seen_values s))
        (seen_values prev) heard

let rec seen_pids = function
  | Init _ -> Pid.Set.empty
  | Round { prev; heard } ->
      List.fold_left
        (fun acc (q, s) -> Pid.Set.add q (Pid.Set.union acc (seen_pids s)))
        (seen_pids prev) heard
  | Timed_round { prev; heard; _ } ->
      List.fold_left
        (fun acc (q, _, s) -> Pid.Set.add q (Pid.Set.union acc (seen_pids s)))
        (seen_pids prev) heard

let rec to_label = function
  | Init v -> Label.Pair (Label.Int 0, Value.to_label v)
  | Round { prev; heard } ->
      let heard_l =
        Label.List
          (List.map (fun (q, s) -> Label.Pair (Label.Pid q, to_label s)) heard)
      in
      Label.Pair (Label.Int 1, Label.Pair (to_label prev, heard_l))
  | Timed_round { p; prev; heard } ->
      let heard_l =
        Label.List
          (List.map
             (fun (q, mu, s) -> Label.List [ Label.Pid q; Label.Int mu; to_label s ])
             heard)
      in
      Label.Pair (Label.Int 2, Label.Pair (Label.Int p, Label.Pair (to_label prev, heard_l)))

let rec of_label = function
  | Label.Pair (Label.Int 0, v) -> Init (Value.of_label v)
  | Label.Pair (Label.Int 1, Label.Pair (prev, Label.List heard)) ->
      let heard =
        List.map
          (function
            | Label.Pair (Label.Pid q, s) -> (q, of_label s)
            | _ -> invalid_arg "View.of_label: malformed heard entry")
          heard
      in
      Round { prev = of_label prev; heard }
  | Label.Pair
      (Label.Int 2, Label.Pair (Label.Int p, Label.Pair (prev, Label.List heard))) ->
      let heard =
        List.map
          (function
            | Label.List [ Label.Pid q; Label.Int mu; s ] -> (q, mu, of_label s)
            | _ -> invalid_arg "View.of_label: malformed timed heard entry")
          heard
      in
      Timed_round { p; prev = of_label prev; heard }
  | _ -> invalid_arg "View.of_label: not a view label"
