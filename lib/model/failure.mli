(** Crash failures.

    Sections 7 and 8 of the paper parameterise executions by the set [K] of
    processes failing in a round and — in the semi-synchronous model — by a
    {e failure pattern} [F] mapping each process of [K] to the microround in
    which it fails.  A view consistent with [F] records, per sender, the
    microround of the last message received: [F(Pj) - 1] or [F(Pj)] for a
    faulty sender, [p] for a live one, and [0] for a process that never
    sent. *)

open Psph_topology

val subsets_of_size_at_most : Pid.Set.t -> int -> Pid.Set.t list
(** All subsets of cardinality [<= k], in the paper's size-then-lex order
    (Lemma 15): empty set first, then singletons, then pairs, ... *)

val subsets_of_size : Pid.Set.t -> int -> Pid.Set.t list
(** All subsets of exactly the given cardinality, lexicographically. *)

val power_set : Pid.Set.t -> Pid.Set.t list
(** All subsets ([2^K]), in size-then-lex order. *)

(** Semi-synchronous failure patterns. *)
type pattern = {
  failed : Pid.Set.t;  (** the set [K] *)
  at : int Pid.Map.t;  (** microround of failure, in [1..p], for each of [K] *)
}

val pattern : (Pid.t * int) list -> pattern

val pp_pattern : Format.formatter -> pattern -> unit

val all_patterns : p:int -> Pid.Set.t -> pattern list
(** All failure patterns for a fixed failure set [K], in the paper's
    reverse-lexicographic order: the first pattern fails every process at
    microround [p], the last at microround 1. *)

val views : p:int -> n:int -> alive:Pid.Set.t -> pattern -> int array list
(** The view set [[F]] (Section 8): all vectors [(mu_0, ..., mu_n)] with
    [mu_j = p] for [j] in [alive \ K], [mu_j] in [{F(j) - 1, F(j)}] for [j]
    in [K], and [mu_j = 0] for processes outside [alive] (failed before the
    round).  [alive] includes [K]. *)

val views_up : p:int -> n:int -> alive:Pid.Set.t -> pattern -> Pid.t -> int array list
(** The view set [[F ^ j]]: the subset of [[F]] in which [mu_j = F(j)]
    (process [j]'s final message {e is} delivered).
    @raise Invalid_argument if [j] is not in the pattern's failure set. *)

val compare_pattern : pattern -> pattern -> int
(** Reverse-lexicographic order on patterns over the same failure set (the
    order used to sequence the pseudospheres of Section 8). *)
