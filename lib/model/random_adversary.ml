open Psph_topology

let make ~seed ?(crash_probability = 0.3) (cfg : Sim.config) ~n =
  let st = Random.State.make [| seed |] in
  (* precompute per-process crash plans so the adversary is a pure
     function of (pid, step) *)
  let crash_of =
    List.map
      (fun q ->
        if Random.State.float st 1.0 < crash_probability then begin
          let at_step = 1 + Random.State.int st (3 * Sim.microrounds cfg) in
          let dsts =
            List.filter
              (fun r -> (not (Pid.equal r q)) && Random.State.bool st)
              (Pid.all n)
          in
          (q, Some { Sim.at_step; deliver_final_to = Pid.Set.of_list dsts })
        end
        else (q, None))
      (Pid.all n)
  in
  (* hash-based deterministic choices per (pid, step) *)
  let pick lo hi q step salt =
    let h = Hashtbl.hash (seed, q, step, salt) in
    lo + (h mod (hi - lo + 1))
  in
  {
    Sim.step_interval = (fun q step -> pick cfg.Sim.c1 cfg.Sim.c2 q step 0);
    delay = (fun ~src ~dst ~step -> pick 1 cfg.Sim.d src (step + (1000 * dst)) 1);
    crash = (fun q -> Option.join (List.assoc_opt q crash_of));
  }

let random_subset st set =
  Pid.Set.filter (fun _ -> Random.State.bool st) set

let schedules_sync ~seed ~k ~alive =
  let st = Random.State.make [| seed |] in
  let candidates = Pid.Set.elements alive in
  let failed =
    List.filter (fun _ -> Random.State.int st (List.length candidates) < k) candidates
    |> List.filteri (fun i _ -> i < k)
    |> Pid.Set.of_list
  in
  let failed =
    if Pid.Set.cardinal failed >= Pid.Set.cardinal alive then Pid.Set.empty
    else failed
  in
  let survivors = Pid.Set.diff alive failed in
  {
    Round_schedule.failed;
    heard_faulty =
      Pid.Set.fold
        (fun q m -> Pid.Map.add q (random_subset st failed) m)
        survivors Pid.Map.empty;
  }

let schedules_semi ~seed ~k ~p ~n ~alive =
  let st = Random.State.make [| seed; 17 |] in
  let sync = schedules_sync ~seed:(seed * 31) ~k ~alive in
  let failed = sync.Round_schedule.failed in
  let pat =
    Failure.pattern
      (List.map (fun q -> (q, 1 + Random.State.int st p)) (Pid.Set.elements failed))
  in
  let survivors = Pid.Set.diff alive failed in
  let choice =
    Pid.Set.fold
      (fun q m ->
        let options = Failure.views ~p ~n ~alive pat in
        let i = Random.State.int st (List.length options) in
        Pid.Map.add q (List.nth options i) m)
      survivors Pid.Map.empty
  in
  { Round_schedule.pat; choice }
