type t = { name : string; decide : View.t -> Value.t option }

let make ~name ~decide = { name; decide }

let min_seen view =
  match Value.Set.min_elt_opt (View.seen_values view) with
  | Some v -> v
  | None -> invalid_arg "Protocol.min_seen: view contains no input value"

let decide_after_rounds r =
  {
    name = Printf.sprintf "flood-decide-after-%d" r;
    decide = (fun view -> if View.rounds view >= r then Some (min_seen view) else None);
  }

let full_information_never_decide =
  { name = "full-information"; decide = (fun _ -> None) }
