open Psph_obs
open Psph_topology

type config = { c1 : int; c2 : int; d : int }

let microrounds cfg = (cfg.d + cfg.c1 - 1) / cfg.c1

let uncertainty cfg = float_of_int cfg.c2 /. float_of_int cfg.c1

type crash_spec = { at_step : int; deliver_final_to : Pid.Set.t }

type adversary = {
  step_interval : Pid.t -> int -> int;
  delay : src:Pid.t -> dst:Pid.t -> step:int -> int;
  crash : Pid.t -> crash_spec option;
}

type obs_event =
  | Stepped of { time : int; step : int }
  | Received of { time : int; src : Pid.t; sent_step : int }

type trace = obs_event list Pid.Map.t

type event = EStep of Pid.t * int | EDeliver of { src : Pid.t; dst : Pid.t; sent_step : int }

let clamp lo hi x = max lo (min hi x)

let run cfg ~n adv ~until =
  Obs.with_span "sim.run"
    ~attrs:
      [
        ("n", Jsonl.int n);
        ("until", Jsonl.int until);
        ("c1", Jsonl.int cfg.c1);
        ("c2", Jsonl.int cfg.c2);
        ("d", Jsonl.int cfg.d);
      ]
  @@ fun _ ->
  let traces = Array.make (n + 1) [] in
  let crashed = Array.make (n + 1) false in
  (* FIFO watermark per channel *)
  let last_delivery = Hashtbl.create 64 in
  let queue = ref Pqueue.empty in
  let schedule t ev = if t <= until then queue := Pqueue.push t ev !queue in
  List.iter
    (fun q ->
      let dt = clamp cfg.c1 cfg.c2 (adv.step_interval q 1) in
      schedule dt (EStep (q, 1)))
    (Pid.all n);
  let send time src step dsts =
    List.iter
      (fun dst ->
        let requested = time + clamp 0 cfg.d (adv.delay ~src ~dst ~step) in
        let channel = (src, dst) in
        let watermark =
          Option.value ~default:0 (Hashtbl.find_opt last_delivery channel)
        in
        let delivery = max requested watermark in
        Hashtbl.replace last_delivery channel delivery;
        if delivery <= until then
          queue := Pqueue.push delivery (EDeliver { src; dst; sent_step = step }) !queue)
      dsts
  in
  let rec loop () =
    match Pqueue.pop !queue with
    | None -> ()
    | Some ((time, ev), rest) ->
        queue := rest;
        (match ev with
        | EStep (q, step) ->
            if not crashed.(q) then begin
              (* trace-only: a no-op unless a sink is recording *)
              Obs.event "sim.step"
                ~attrs:
                  [
                    ("pid", Jsonl.int q);
                    ("step", Jsonl.int step);
                    ("time", Jsonl.int time);
                  ];
              traces.(q) <- Stepped { time; step } :: traces.(q);
              let others = List.filter (fun r -> not (Pid.equal r q)) (Pid.all n) in
              (match adv.crash q with
              | Some { at_step; deliver_final_to } when step = at_step ->
                  crashed.(q) <- true;
                  send time q step
                    (List.filter (fun r -> Pid.Set.mem r deliver_final_to) others)
              | Some _ | None ->
                  send time q step others;
                  let dt = clamp cfg.c1 cfg.c2 (adv.step_interval q (step + 1)) in
                  schedule (time + dt) (EStep (q, step + 1)))
            end
        | EDeliver { src; dst; sent_step } ->
            if not crashed.(dst) then begin
              Obs.event "sim.deliver"
                ~attrs:
                  [
                    ("src", Jsonl.int src);
                    ("dst", Jsonl.int dst);
                    ("sent_step", Jsonl.int sent_step);
                    ("time", Jsonl.int time);
                  ];
              traces.(dst) <- Received { time; src; sent_step } :: traces.(dst)
            end);
        loop ()
  in
  loop ();
  List.fold_left
    (fun m q -> Pid.Map.add q (List.rev traces.(q)) m)
    Pid.Map.empty (Pid.all n)

let round_end_after cfg t =
  (* the smallest multiple of d that is >= t *)
  (t + cfg.d - 1) / cfg.d * cfg.d

let lockstep cfg =
  {
    step_interval = (fun _ _ -> cfg.c1);
    delay =
      (fun ~src:_ ~dst:_ ~step ->
        (* sent at time step * c1; deliver at the end of that round *)
        let sent = step * cfg.c1 in
        let boundary = round_end_after cfg sent in
        boundary - sent);
    crash = (fun _ -> None);
  }

let lockstep_with_crashes cfg crashes =
  let base = lockstep cfg in
  { base with crash = (fun q -> List.assoc_opt q crashes) }

let slow_solo cfg ~survivor ~after_step =
  (* everyone completes step [after_step] (e.g. the last microround of a
     round), then every process except [survivor] dies silently while the
     survivor continues as slowly as allowed *)
  let base = lockstep cfg in
  {
    base with
    step_interval =
      (fun q step ->
        if Pid.equal q survivor && step > after_step then cfg.c2 else cfg.c1);
    crash =
      (fun q ->
        if Pid.equal q survivor then None
        else Some { at_step = after_step + 1; deliver_final_to = Pid.Set.empty });
  }

let untimed events =
  List.map
    (function
      | Stepped { step; _ } -> ("step", None, step)
      | Received { src; sent_step; _ } -> ("recv", Some src, sent_step))
    events

let observations_before trace q time =
  match Pid.Map.find_opt q trace with
  | None -> []
  | Some evs ->
      List.filter
        (function
          | Stepped { time = t; _ } | Received { time = t; _ } -> t < time)
        evs

let indistinguishable_to q (t1, time1) (t2, time2) =
  untimed (observations_before t1 q time1) = untimed (observations_before t2 q time2)

let decision_time cfg ~n adv ~protocol ~inputs ~horizon =
  let p = microrounds cfg in
  let trace = run cfg ~n adv ~until:horizon in
  let views =
    ref
      (List.fold_left
         (fun m (q, v) -> Pid.Map.add q (View.init v) m)
         Pid.Map.empty inputs)
  in
  let decisions = ref [] in
  let decided = ref Pid.Set.empty in
  let rounds = horizon / cfg.d in
  let stepped_during q lo hi =
    match Pid.Map.find_opt q trace with
    | None -> false
    | Some evs ->
        List.exists
          (function
            | Stepped { time; _ } -> time > lo && time <= hi
            | Received _ -> false)
          evs
  in
  for r = 1 to rounds do
    let lo = (r - 1) * cfg.d and hi = r * cfg.d in
    (* a process that took no step during the round has crashed: it stops
       computing views and never decides *)
    let start_views = !views in
    let alive_views =
      Pid.Map.filter (fun q _ -> stepped_during q lo hi) start_views
    in
    let next =
      Pid.Map.mapi
        (fun q prev ->
          let received =
            observations_before trace q (hi + 1)
            |> List.filter_map (function
                 | Received { time; src; sent_step } when time > lo && time <= hi ->
                     Some (src, sent_step)
                 | Received _ | Stepped _ -> None)
          in
          (* keep, per sender, the last step heard; convert to microround *)
          let last_per_src =
            List.fold_left
              (fun m (src, step) ->
                Pid.Map.update src
                  (function None -> Some step | Some s -> Some (max s step))
                  m)
              Pid.Map.empty received
          in
          let heard =
            Pid.Map.bindings last_per_src
            |> List.filter_map (fun (src, step) ->
                   match Pid.Map.find_opt src start_views with
                   | None -> None
                   | Some state ->
                       let mu = clamp 1 p (step - ((r - 1) * p)) in
                       Some (src, mu, state))
          in
          View.timed_round ~p ~prev ~heard)
        alive_views
    in
    views := next;
    Pid.Map.iter
      (fun q view ->
        if not (Pid.Set.mem q !decided) then
          match protocol.Protocol.decide view with
          | Some value ->
              decided := Pid.Set.add q !decided;
              decisions := (q, hi, value) :: !decisions
          | None -> ())
      !views
  done;
  List.rev !decisions
