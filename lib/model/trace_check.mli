(** Validation of simulator traces against the timing model's axioms.

    Section 8 constrains executions: consecutive steps of a process are
    between [c1] and [c2] apart, messages arrive at most [d] after being
    sent, and channels are FIFO (Section 4).  The simulator enforces these
    by construction; this module re-checks them on the {e output}, so
    adversary implementations (including user-supplied ones) cannot
    silently violate the model. *)

open Psph_topology

type violation = {
  process : Pid.t;
  message : string;
}

val pp_violation : Format.formatter -> violation -> unit

val check_step_intervals : Sim.config -> Sim.trace -> violation list
(** Every gap between consecutive [Stepped] events is in [[c1, c2]], and
    the first step happens within [[c1, c2]] of time 0. *)

val check_delivery_bound : Sim.config -> Sim.trace -> violation list
(** Every [Received] event arrives no more than [d] after the sender's
    recorded step (requires the sender's steps to be present in the
    trace). *)

val check_fifo : Sim.trace -> violation list
(** Per channel, received messages appear in increasing sent-step order. *)

val check_no_spoofing : Sim.trace -> violation list
(** Every received message corresponds to a step its sender actually
    took. *)

val validate : Sim.config -> Sim.trace -> violation list
(** All checks; [[]] means the trace satisfies the model. *)
