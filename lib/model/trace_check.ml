open Psph_topology

type violation = { process : Pid.t; message : string }

let pp_violation ppf v =
  Format.fprintf ppf "%a: %s" Pid.pp v.process v.message

let steps_of events =
  List.filter_map
    (function
      | Sim.Stepped { time; step } -> Some (step, time)
      | Sim.Received _ -> None)
    events

let check_step_intervals cfg trace =
  Pid.Map.fold
    (fun q events acc ->
      let steps = steps_of events in
      let rec walk prev_time = function
        | [] -> []
        | (step, time) :: rest ->
            let gap = time - prev_time in
            if gap < cfg.Sim.c1 || gap > cfg.Sim.c2 then
              {
                process = q;
                message =
                  Printf.sprintf "step %d: interval %d outside [%d,%d]" step gap
                    cfg.Sim.c1 cfg.Sim.c2;
              }
              :: walk time rest
            else walk time rest
      in
      walk 0 steps @ acc)
    trace []

let sender_step_times trace =
  (* (src, step) -> time *)
  let tbl = Hashtbl.create 256 in
  Pid.Map.iter
    (fun q events ->
      List.iter
        (function
          | Sim.Stepped { time; step } -> Hashtbl.replace tbl (q, step) time
          | Sim.Received _ -> ())
        events)
    trace;
  tbl

let check_delivery_bound cfg trace =
  let sent = sender_step_times trace in
  Pid.Map.fold
    (fun q events acc ->
      List.filter_map
        (function
          | Sim.Received { time; src; sent_step } -> (
              match Hashtbl.find_opt sent (src, sent_step) with
              | None -> None (* spoofing is reported separately *)
              | Some t when time - t > cfg.Sim.d ->
                  Some
                    {
                      process = q;
                      message =
                        Printf.sprintf
                          "message from %s step %d delivered after %d > d = %d"
                          (Format.asprintf "%a" Pid.pp src)
                          sent_step (time - t) cfg.Sim.d;
                    }
              | Some t when time < t ->
                  Some
                    {
                      process = q;
                      message = "message delivered before it was sent";
                    }
              | Some _ -> None)
          | Sim.Stepped _ -> None)
        events
      @ acc)
    trace []

let check_fifo trace =
  Pid.Map.fold
    (fun q events acc ->
      let last = Hashtbl.create 8 in
      List.filter_map
        (function
          | Sim.Received { src; sent_step; _ } ->
              let prev = Option.value ~default:0 (Hashtbl.find_opt last src) in
              Hashtbl.replace last src sent_step;
              if sent_step <= prev then
                Some
                  {
                    process = q;
                    message =
                      Printf.sprintf "FIFO violation on channel from %s"
                        (Format.asprintf "%a" Pid.pp src);
                  }
              else None
          | Sim.Stepped _ -> None)
        events
      @ acc)
    trace []

let check_no_spoofing trace =
  let sent = sender_step_times trace in
  Pid.Map.fold
    (fun q events acc ->
      List.filter_map
        (function
          | Sim.Received { src; sent_step; _ } ->
              if Hashtbl.mem sent (src, sent_step) then None
              else
                Some
                  {
                    process = q;
                    message =
                      Printf.sprintf "received a message %s never sent"
                        (Format.asprintf "%a" Pid.pp src);
                  }
          | Sim.Stepped _ -> None)
        events
      @ acc)
    trace []

let validate cfg trace =
  check_step_intervals cfg trace
  @ check_delivery_bound cfg trace
  @ check_fifo trace
  @ check_no_spoofing trace
