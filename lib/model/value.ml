type t = int

let compare = Int.compare

let equal = Int.equal

let pp = Format.pp_print_int

let to_label v = Psph_topology.Label.Int v

let of_label = function
  | Psph_topology.Label.Int v -> v
  | _ -> invalid_arg "Value.of_label: not an Int label"

let domain k = List.init (k + 1) (fun i -> i)

module Set = Stdlib.Set.Make (Int)
