(** Discrete-event simulator for the semi-synchronous timing model.

    Section 8: the time between two consecutive steps of a process is at
    least [c1] and at most [c2], and a message is delivered at most [d]
    after it is sent.  The synchronous model is the limiting case
    [c1 = c2] with fixed delivery time, and the asynchronous model the case
    of unbounded intervals.

    The simulator executes the full-information protocol: at every step a
    process sends its state to every other process (a process always knows
    its own state, so self-messages carry no information and are elided).  The adversary chooses each step
    interval (clamped to [[c1, c2]]), each message delay (clamped to
    [[0, d]], with FIFO order enforced per channel; a delay of 0 models the
    paper's delivery exactly at a round boundary), and crashes.  A crash
    at step [s] lets the final send reach only a chosen subset of
    destinations — exactly the semi-synchronous failure-pattern semantics
    of Section 8.

    The output is, per process, the chronological list of observable
    events.  Two executions are indistinguishable to a process up to given
    times when its untimed observation prefixes coincide — the relation
    driving the time-stretching argument of Corollary 22.

    Observability: {!run} executes inside a [sim.run] span (attrs: [n],
    [until], [c1], [c2], [d]) and emits a [sim.step] / [sim.deliver]
    trace event per simulated event — no-ops unless an {!Psph_obs.Obs}
    sink is recording. *)

open Psph_topology

type config = { c1 : int; c2 : int; d : int }
(** Timing constants (integers; think of [c1] as the tick). *)

val microrounds : config -> int
(** [p = ceil (d / c1)], the number of microrounds per round. *)

val uncertainty : config -> float
(** [C = c2 /. c1]. *)

type crash_spec = {
  at_step : int;  (** the process crashes while taking this step (1-based) *)
  deliver_final_to : Pid.Set.t;
      (** destinations still receiving the send of step [at_step] *)
}

type adversary = {
  step_interval : Pid.t -> int -> int;
      (** interval before a process's [n]th step (1-based); clamped to
          [[c1, c2]] *)
  delay : src:Pid.t -> dst:Pid.t -> step:int -> int;
      (** requested delivery delay for the message sent at the source's
          given step; clamped to [[0, d]] and raised as needed to keep the
          channel FIFO *)
  crash : Pid.t -> crash_spec option;
}

type obs_event =
  | Stepped of { time : int; step : int }
  | Received of { time : int; src : Pid.t; sent_step : int }

type trace = obs_event list Pid.Map.t
(** Chronological observations per process. *)

val run : config -> n:int -> adversary -> until:int -> trace
(** Simulate processes [P0 ... Pn] from time 0 to [until] (inclusive). *)

val lockstep : config -> adversary
(** The failure-free round-structured adversary of Section 8: every process
    steps every [c1] ticks, and every message is delivered at the end of
    the round ([the next multiple of d]). *)

val lockstep_with_crashes : config -> (Pid.t * crash_spec) list -> adversary
(** {!lockstep} plus the given crashes. *)

val slow_solo : config -> survivor:Pid.t -> after_step:int -> adversary
(** The Corollary-22 "stretch" adversary: every process completes step
    [after_step] (set it to [r * microrounds] so round [r] finishes
    cleanly), then every process except [survivor] dies silently and the
    survivor steps as slowly as possible (every [c2] ticks). *)

val untimed : obs_event list -> (string * Pid.t option * int) list
(** Forget absolute times, keeping the order and content of observations —
    the indistinguishability alphabet. *)

val observations_before : trace -> Pid.t -> int -> obs_event list
(** A process's observations strictly before the given time. *)

val indistinguishable_to :
  Pid.t -> trace * int -> trace * int -> bool
(** [indistinguishable_to q (t1, time1) (t2, time2)]: are [q]'s untimed
    observation prefixes before [time1] in the first run and before [time2]
    in the second identical?  (The paper's similarity relation, Section 1.) *)

val decision_time :
  config -> n:int -> adversary -> protocol:Protocol.t ->
  inputs:(Pid.t * Value.t) list -> horizon:int -> (Pid.t * int * Value.t) list
(** Run a full-information protocol under the adversary: at the end of each
    round (multiples of [d]) surviving processes fold their messages into
    views; a process that took no step during a round is considered crashed
    and stops deciding.  The result lists each decided process with its
    decision time and value.  [horizon] bounds simulated time. *)
