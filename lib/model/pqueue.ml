(* Pairing heap keyed by (key, seq); seq preserves FIFO order among equal
   keys.  The seq counter lives in the queue value to keep the structure
   purely functional from the caller's point of view. *)

type 'a heap = Empty | Node of (int * int * 'a) * 'a heap list

type 'a t = { heap : 'a heap; next_seq : int; size : int }

let empty = { heap = Empty; next_seq = 0; size = 0 }

let is_empty q = q.size = 0

let key_le (k1, s1, _) (k2, s2, _) = k1 < k2 || (k1 = k2 && s1 <= s2)

let merge a b =
  match (a, b) with
  | Empty, h | h, Empty -> h
  | Node (ka, ca), Node (kb, cb) ->
      if key_le ka kb then Node (ka, b :: ca) else Node (kb, a :: cb)

let rec merge_pairs = function
  | [] -> Empty
  | [ h ] -> h
  | a :: b :: rest -> merge (merge a b) (merge_pairs rest)

let push key x q =
  {
    heap = merge (Node ((key, q.next_seq, x), [])) q.heap;
    next_seq = q.next_seq + 1;
    size = q.size + 1;
  }

let pop q =
  match q.heap with
  | Empty -> None
  | Node ((key, _, x), children) ->
      Some
        ( (key, x),
          { heap = merge_pairs children; next_seq = q.next_seq; size = q.size - 1 } )

let size q = q.size
