(** An Awerbuch-style synchronizer (Related Work, Section 2).

    Awerbuch's synchronizer lets synchronous protocols run in asynchronous
    systems in the absence of faults: each process buffers incoming round-r
    messages and advances to round r+1 once it holds a round-r message from
    every process.  This module implements the simplest ("alpha"-like,
    all-to-all) variant on top of an asynchronous network with
    adversary-chosen per-message delays, and checks the two classical
    properties on concrete runs:

    - {e correctness}: the views computed equal the synchronous failure-free
      views (the translation approach the paper contrasts itself with);
    - {e time}: process [q] finishes round [r] by time [r * max_delay]. *)

open Psph_topology

type delays = src:Pid.t -> dst:Pid.t -> round:int -> int
(** Requested delay for each message, clamped to [[1, max_delay]]. *)

type result = {
  views : View.t Pid.Map.t;  (** full-information views after [rounds] *)
  finish_times : int list Pid.Map.t;
      (** per process, the time it completed each round (index 0 = round 1) *)
}

val run :
  n:int ->
  rounds:int ->
  max_delay:int ->
  delays:delays ->
  inputs:(Pid.t * Value.t) list ->
  result
(** Simulate the synchronizer over an asynchronous network. *)

val synchronous_reference :
  n:int -> rounds:int -> inputs:(Pid.t * Value.t) list -> View.t Pid.Map.t
(** The failure-free synchronous views the synchronizer must reproduce. *)

val correct : result -> reference:View.t Pid.Map.t -> bool

val within_time_bound : result -> max_delay:int -> bool
(** Every round [r] completes by [r * max_delay] at every process. *)
