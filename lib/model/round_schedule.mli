(** One-round delivery schedules for the three timing models.

    A schedule fixes everything the adversary controls in one round:
    in the {e asynchronous} model, which [>= n - f + 1] same-round messages
    each process receives (Section 6); in the {e synchronous} model, which
    processes crash and which of their messages are still delivered to each
    survivor (Section 7); in the {e semi-synchronous} model, the failure
    pattern [F] and, per survivor, a view from [[F]] (Section 8).

    Enumerating all schedules for small systems yields exactly the
    well-behaved executions whose global states the paper's pseudosphere
    formulas describe; the [Enumerated] cross-checks in the core library
    verify those isomorphisms (Lemmas 11, 14, 19). *)

open Psph_topology

type async = Pid.Set.t Pid.Map.t
(** Per alive process, the set of processes heard from this round
    (including itself). *)

type sync = {
  failed : Pid.Set.t;  (** exactly the processes crashing this round *)
  heard_faulty : Pid.Set.t Pid.Map.t;
      (** per survivor, the subset of [failed] whose last message arrived *)
}

type semi = {
  pat : Failure.pattern;
  choice : int array Pid.Map.t;
      (** per survivor, a view vector from [[pat]] *)
}

val async_schedules : n:int -> f:int -> alive:Pid.Set.t -> async list
(** All asynchronous one-round schedules: every alive process hears from a
    set [M] with [self in M], [M subset alive] and [|M| >= n - f + 1].
    Empty if [|alive| < n - f + 1]. *)

val async_count : n:int -> f:int -> alive_count:int -> int
(** Closed-form count of {!async_schedules}. *)

val sync_schedules : k:int -> alive:Pid.Set.t -> sync list
(** All synchronous one-round schedules with at most [k] crashes, grouped
    in the paper's size-then-lex order of failure sets. *)

val sync_schedules_for : failed:Pid.Set.t -> alive:Pid.Set.t -> sync list
(** The synchronous schedules in which exactly [failed] crashes. *)

val sync_count : k:int -> alive_count:int -> int
(** Closed-form count of {!sync_schedules}. *)

val semi_schedules : k:int -> p:int -> n:int -> alive:Pid.Set.t -> semi list
(** All semi-synchronous one-round schedules with at most [k] crashes and
    [p] microrounds, ordered by failure set then by pattern (reverse-lex),
    as in Section 8. *)

val semi_schedules_for :
  pat:Failure.pattern -> p:int -> n:int -> alive:Pid.Set.t -> semi list
(** The semi-synchronous schedules with exactly the given failure pattern. *)

val semi_count : k:int -> p:int -> alive_count:int -> int
(** Closed-form count of {!semi_schedules}. *)

type digraph = Pid.Set.t Pid.Map.t
(** A per-round communication digraph of a directed dynamic network
    (Rincon Galeana et al.), as in-neighborhoods: [digraph p] is the set
    of processes [p] receives from this round, always including [p]
    itself.  The same shape as {!async}, but chosen by a message
    adversary rather than a failure discipline. *)

val digraphs : alive:Pid.Set.t -> digraph list
(** Every communication digraph on [alive]: each process independently
    hears from any subset of the others (plus itself). *)

val reachable_from : digraph -> Pid.t -> Pid.Set.t
(** Forward reachability along edges [u -> v] ([u] in [v]'s
    in-neighborhood). *)

val rooted : digraph -> bool
(** Some process reaches every process — the weakest adversary class
    under which broadcast (and hence consensus) stays solvable. *)

val strongly_connected : digraph -> bool
(** Every process reaches every process. *)

val digraph_count : alive_count:int -> int
(** Closed-form count of {!digraphs}. *)
