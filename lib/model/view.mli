(** Full-information local states.

    A process's local state is its input value and the sequence of messages
    received so far (Section 4).  In a full-information protocol every
    message carries the sender's entire state, so after each round a state
    is the previous state plus the (sender, sender-state) pairs received.
    In the semi-synchronous model each received record additionally carries
    the microround of the sender's last message (Section 8).

    Views are the vertex decorations of every protocol complex: two
    vertices are equal exactly when the corresponding local states are
    indistinguishable. *)

open Psph_topology

type t =
  | Init of Value.t  (** initial state: the input value *)
  | Round of { prev : t; heard : (Pid.t * t) list }
      (** synchronous / asynchronous round: states received, sorted by
          sender (always includes the process itself) *)
  | Timed_round of { p : int; prev : t; heard : (Pid.t * int * t) list }
      (** semi-synchronous round with [p] microrounds: [(sender, mu,
          state)] with [mu] the microround of the sender's last received
          message ([mu = p] for a process heard all round) *)

val init : Value.t -> t

val round : prev:t -> heard:(Pid.t * t) list -> t
(** Sorts [heard] by sender.  @raise Invalid_argument on duplicate
    senders. *)

val timed_round : p:int -> prev:t -> heard:(Pid.t * int * t) list -> t
(** Sorts [heard] by sender.  @raise Invalid_argument on duplicate senders
    or [mu] outside [0..p]. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val rounds : t -> int
(** Number of completed rounds. *)

val input : t -> Value.t
(** The process's own input value. *)

val heard_pids : t -> Pid.Set.t
(** Senders heard from in the most recent round (empty for [Init]). *)

val seen_values : t -> Value.Set.t
(** All input values present in the state, transitively: the values the
    process "knows".  For a full-information protocol this is exactly
    [vals] of the inputs it can safely decide on. *)

val seen_pids : t -> Pid.Set.t
(** All processes whose state occurs in the view, transitively. *)

val to_label : t -> Label.t
(** Injective encoding into the universal label type, so views can decorate
    complex vertices. *)

val of_label : Label.t -> t
(** Inverse of {!to_label}.  @raise Invalid_argument on foreign labels. *)
