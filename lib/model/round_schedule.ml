open Psph_topology

type async = Pid.Set.t Pid.Map.t

type sync = { failed : Pid.Set.t; heard_faulty : Pid.Set.t Pid.Map.t }

type semi = { pat : Failure.pattern; choice : int array Pid.Map.t }

(* cartesian product of per-pid option lists, as maps *)
let product_map (options : (Pid.t * 'a list) list) : 'a Pid.Map.t list =
  List.fold_left
    (fun acc (q, opts) ->
      List.concat_map (fun m -> List.map (fun o -> Pid.Map.add q o m) opts) acc)
    [ Pid.Map.empty ] options

let binom n k =
  if k < 0 || k > n then 0
  else begin
    let rec loop acc i = if i > k then acc else loop (acc * (n - i + 1) / i) (i + 1) in
    loop 1 1
  end

let async_schedules ~n ~f ~alive =
  let need = n - f + 1 in
  if Pid.Set.cardinal alive < need then []
  else begin
    let options_for q =
      let others = Pid.Set.remove q alive in
      Failure.power_set others
      |> List.filter_map (fun m ->
             let m = Pid.Set.add q m in
             if Pid.Set.cardinal m >= need then Some m else None)
    in
    product_map (List.map (fun q -> (q, options_for q)) (Pid.Set.elements alive))
  end

let async_count ~n ~f ~alive_count =
  let need = n - f + 1 in
  if alive_count < need then 0
  else begin
    let per_proc = ref 0 in
    for j = need - 1 to alive_count - 1 do
      (* hear from j other processes plus self *)
      per_proc := !per_proc + binom (alive_count - 1) j
    done;
    let total = ref 1 in
    for _ = 1 to alive_count do
      total := !total * !per_proc
    done;
    !total
  end

let sync_schedules_for ~failed ~alive =
  let survivors = Pid.Set.diff alive failed in
  let options = Failure.power_set failed in
  product_map (List.map (fun q -> (q, options)) (Pid.Set.elements survivors))
  |> List.map (fun heard_faulty -> { failed; heard_faulty })

let sync_schedules ~k ~alive =
  Failure.subsets_of_size_at_most alive k
  |> List.concat_map (fun failed ->
         if Pid.Set.cardinal failed = Pid.Set.cardinal alive then []
         else sync_schedules_for ~failed ~alive)

let pow b e =
  let rec loop acc i = if i >= e then acc else loop (acc * b) (i + 1) in
  loop 1 0

let sync_count ~k ~alive_count =
  let total = ref 0 in
  for j = 0 to min k (alive_count - 1) do
    total := !total + binom alive_count j * pow (pow 2 j) (alive_count - j)
  done;
  !total

let semi_schedules_for ~pat ~p ~n ~alive =
  let survivors = Pid.Set.diff alive pat.Failure.failed in
  let options = Failure.views ~p ~n ~alive pat in
  product_map (List.map (fun q -> (q, options)) (Pid.Set.elements survivors))
  |> List.map (fun choice -> { pat; choice })

let semi_schedules ~k ~p ~n ~alive =
  Failure.subsets_of_size_at_most alive k
  |> List.concat_map (fun failed ->
         if Pid.Set.cardinal failed = Pid.Set.cardinal alive then []
         else
           Failure.all_patterns ~p failed
           |> List.concat_map (fun pat -> semi_schedules_for ~pat ~p ~n ~alive))

(* ------------------------------------------------------------------ *)
(* directed dynamic networks: one communication digraph per round      *)
(* ------------------------------------------------------------------ *)

type digraph = Pid.Set.t Pid.Map.t

let digraphs ~alive =
  let options_for q =
    let others = Pid.Set.remove q alive in
    Failure.power_set others |> List.map (fun m -> Pid.Set.add q m)
  in
  product_map (List.map (fun q -> (q, options_for q)) (Pid.Set.elements alive))

let digraph_nodes g = Pid.Map.fold (fun v _ acc -> Pid.Set.add v acc) g Pid.Set.empty

(* forward reachability over edges u -> v (u in the in-neighborhood of v):
   grow the seen set with every node hearing from it until a fixpoint *)
let reachable_from g u =
  let nodes = digraph_nodes g in
  let rec loop seen =
    let grow =
      Pid.Set.filter
        (fun v ->
          (not (Pid.Set.mem v seen))
          && not (Pid.Set.is_empty (Pid.Set.inter (Pid.Map.find v g) seen)))
        nodes
    in
    if Pid.Set.is_empty grow then seen else loop (Pid.Set.union seen grow)
  in
  if Pid.Set.mem u nodes then loop (Pid.Set.singleton u) else Pid.Set.empty

let rooted g =
  let nodes = digraph_nodes g in
  Pid.Set.exists (fun u -> Pid.Set.equal (reachable_from g u) nodes) nodes

let strongly_connected g =
  let nodes = digraph_nodes g in
  Pid.Set.for_all (fun u -> Pid.Set.equal (reachable_from g u) nodes) nodes

let digraph_count ~alive_count =
  (* each process independently picks a subset of the others to hear *)
  pow (pow 2 (alive_count - 1)) alive_count

let semi_count ~k ~p ~alive_count =
  let total = ref 0 in
  for j = 0 to min k (alive_count - 1) do
    (* choose the failure set, a pattern (p^j), then per survivor a view
       from [F] (2^j views) *)
    total := !total + binom alive_count j * pow p j * pow (pow 2 j) (alive_count - j)
  done;
  !total
