(** Invariant-checked soak runs: cluster + chaos proxies + generator.

    {!run} assembles the whole topology in one process tree — N
    backends (child [psc serve] processes via {!spawn_backend}, or
    anything else through [make_backend]), one {!Chaos} proxy {e per
    backend}, a replicated {!Psph_net.Router} pointed at the proxies, a
    front {!Psph_net.Server}, and the open-loop {!Loadgen} driving the
    front — then runs warm / clean / chaos / recovery phases and checks
    invariants at exit:

    - {b no_silent_loss} — every generated request in every phase ended
      in exactly one taxonomy bucket; zero "internal:" markers.
    - {b prober_converged} — after the last heal every backend is alive
      again within [converge_timeout_s].
    - {b warm_floor} — recovery-phase cached-hit rate at or above
      [warm_floor]: replicas kept the killed backend's keys warm.
    - {b p99_slo} — clean and recovery phases meet [slo_p99_ms] (the
      chaos phase is reported, never judged).

    The chaos timeline inside the chaos phase, at fractions of the
    phase duration: faults on at 0, a half-open partition on one proxy
    at 1/4, healed at 1/2, one backend SIGKILLed at 1/2 (when
    [kill_backend] and at least two backends) and restarted at 3/4.
    All randomness — fault schedule, arrival times, key skew — derives
    from [seed], which is printed and recorded in the result. *)

open Psph_net

type backend = {
  baddr : Addr.t;
  kill : unit -> unit;  (** abrupt death (SIGKILL for child processes) *)
  restart : unit -> unit;  (** come back on the same address, cold *)
  shutdown : unit -> unit;  (** graceful teardown at end of run *)
}

type config = {
  backends : int;
  replicas : int;
  load : Loadgen.config;
      (** [duration_s] is the length of each measured phase *)
  faults : Chaos.faults;  (** active during the chaos phase *)
  seed : int;
  warm_s : float;
  slo_p99_ms : float;
  warm_floor : float;
  kill_backend : bool;
  converge_timeout_s : float;
  make_backend : int -> (backend, string) result;
}

type phase = {
  p_name : string;
  p_stats : Loadgen.stats;
  p_rps : float;
  p_p50_ms : float;
  p_p99_ms : float;
}

type invariant = { i_name : string; i_ok : bool; i_detail : string }

type result = {
  phases : phase list;  (** clean, chaos, recovery *)
  invariants : invariant list;
  seed : int;
  chaos : (string * int) list;  (** [chaos.*] counter deltas for the run *)
  converge_s : float;  (** post-heal convergence time; -1 if never *)
}

val passed : result -> bool

val spawn_backend :
  ?psc:string -> ?args:string list -> int -> (backend, string) Stdlib.result
(** A [make_backend] that spawns [psc serve --listen 127.0.0.1:<free>]
    as a child process ([psc] defaults to [Sys.executable_name] — right
    when the caller {e is} psc) and waits until it answers
    [{"op":"models"}].  [kill] is a real SIGKILL, which is what makes
    the soak's failover claims honest. *)

val run : config -> (result, string) Stdlib.result
(** Blocks for the whole soak (roughly [warm_s + 3 * duration_s] plus
    convergence waits).  [Error] only on harness failures (a backend or
    proxy that never came up); invariant violations are reported in the
    result, not as [Error] — check {!passed}. *)

val to_json : result -> Psph_obs.Jsonl.t
(** The BENCH_load.json payload: per-phase throughput/latency, chaos
    counter deltas, invariant verdicts, seed. *)

val print_summary : out_channel -> result -> unit
