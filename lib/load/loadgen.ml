(* Open-loop load generator speaking wire protocol v2.

   Open-loop means the arrival schedule is fixed before the system
   answers anything: each connection draws Poisson inter-arrival gaps
   from a seeded RNG and every request has an *intended* start time that
   never shifts, however slowly the server responds.  Latency is
   measured from the intended start to the response (the wrk2
   coordinated-omission correction), so a stalled server shows up as
   honest multi-second latencies instead of a politely slowed generator
   hiding the stall.

   Each of [conns] worker threads owns one pipelined client.  The worker
   loop accumulates arrivals that have come due, fires them as one
   eval_many batch (bounded, so a backlog after a stall drains in
   chunks), and sleeps until the next intended arrival when nothing is
   due.  The key space is drawn from the model registry's spec space:
   psph shapes, every registered model at its default spec, and salted
   facet queries to pad out the requested keyspace — all hot ops, so a
   binary-codec connection never touches JSON.  Key choice per request
   is zipf(s)-skewed (s = 0 is uniform) over that table.

   Every request ends in exactly one taxonomy bucket — ok (hit or
   miss), server error (a well-formed {"ok":false}/Failed answer), or a
   transport error (timeout / connection / protocol) — which is what
   lets the soak harness assert "no silent loss" by arithmetic. *)

open Psph_obs
open Psph_net

type config = {
  rate : float;
  conns : int;
  pipeline_depth : int;
  codec : [ `Json | `Binary ];
  duration_s : float;
  keyspace : int;
  zipf : float;
  seed : int;
  timeout_ms : int;
  retries : int;
}

let default_config =
  {
    rate = 500.;
    conns = 4;
    pipeline_depth = 16;
    codec = `Binary;
    duration_s = 10.;
    keyspace = 64;
    zipf = 1.0;
    seed = 1;
    timeout_ms = 2000;
    retries = 2;
  }

type stats = {
  sent : int;
  ok : int;
  cached : int;
  server_errors : (string * int) list;
  timeouts : int;
  conn_errors : int;
  proto_errors : int;
  unresolved : int;
  latencies : float array;
  wall_s : float;
}

let completed s =
  s.ok
  + List.fold_left (fun a (_, n) -> a + n) 0 s.server_errors
  + s.timeouts + s.conn_errors + s.proto_errors

(* ------------------------------------------------------------------ *)
(* key space: queries drawn from the registry's spec space             *)
(* ------------------------------------------------------------------ *)

let queries ~keyspace =
  let base =
    List.concat_map
      (fun n ->
        List.map
          (fun values -> Codec.Psph { n; values })
          [ 2; 3; 4 ])
      [ 1; 2; 3 ]
    @ List.map
        (fun m ->
          Codec.Model
            {
              model = Pseudosphere.Model_complex.name_of m;
              spec =
                {
                  Pseudosphere.Model_complex.default_spec with
                  n = 2;
                  r = 1;
                };
            })
        (Pseudosphere.Model_complex.all ())
  in
  let facet i =
    (* salted so the load keys never collide with other traffic *)
    let s = 9000 + i in
    Codec.Facets
      [
        Printf.sprintf "0:i%d ; 1:i%d" s (s + 1);
        Printf.sprintf "1:i%d ; 2:i%d" (s + 1) (s + 2);
      ]
  in
  let nbase = List.length base in
  let qs =
    if nbase >= keyspace then List.filteri (fun i _ -> i < keyspace) base
    else base @ List.init (keyspace - nbase) facet
  in
  Array.of_list qs

(* zipf(s) over ranks 0..k-1 as a cumulative table; s = 0 is uniform *)
let zipf_cdf ~k ~s =
  let w = Array.init k (fun i -> 1. /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0. w in
  let cdf = Array.make k 0. in
  let acc = ref 0. in
  for i = 0 to k - 1 do
    acc := !acc +. (w.(i) /. total);
    cdf.(i) <- !acc
  done;
  cdf.(k - 1) <- 1.;
  cdf

let sample_rank cdf rng =
  let u = Random.State.float rng 1. in
  (* first index with cdf.(i) >= u *)
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

(* ------------------------------------------------------------------ *)
(* workers                                                             *)
(* ------------------------------------------------------------------ *)

type metrics = {
  m_sent : Obs.counter;
  m_ok : Obs.counter;
  m_cached : Obs.counter;
  m_server_err : Obs.counter;
  m_timeout : Obs.counter;
  m_conn : Obs.counter;
  m_proto : Obs.counter;
  m_latency : Obs.histogram;
}

let make_metrics prefix =
  let c n = Obs.counter (prefix ^ "." ^ n) in
  {
    m_sent = c "sent";
    m_ok = c "ok";
    m_cached = c "cached";
    m_server_err = c "err.server";
    m_timeout = c "err.timeout";
    m_conn = c "err.connection";
    m_proto = c "err.protocol";
    m_latency = Obs.histogram (prefix ^ ".latency_s");
  }

type acc = {
  mutable a_sent : int;
  mutable a_ok : int;
  mutable a_cached : int;
  mutable a_server : (string * int) list;
  mutable a_timeout : int;
  mutable a_conn : int;
  mutable a_proto : int;
  mutable a_unresolved : int;
  mutable a_lat : float list;
}

let bucket_server acc msg =
  let key = if String.length msg > 60 then String.sub msg 0 60 else msg in
  let n = try List.assoc key acc.a_server with Not_found -> 0 in
  acc.a_server <- (key, n + 1) :: List.remove_assoc key acc.a_server

let worker cfg m addr qtab cdf wi acc =
  let rng = Random.State.make [| cfg.seed; wi |] in
  let client =
    Client.create ~metrics:"load.client" ~timeout_ms:cfg.timeout_ms
      ~retries:cfg.retries ~codec:cfg.codec
      ~pipeline_depth:cfg.pipeline_depth addr
  in
  let per_conn_rate = cfg.rate /. float_of_int (max 1 cfg.conns) in
  let mean_gap = 1. /. Float.max per_conn_rate 1e-6 in
  let draw_gap () =
    (* exponential inter-arrival: Poisson arrivals per connection *)
    let u = Random.State.float rng 1. in
    -.mean_gap *. log (1. -. u)
  in
  let t0 = Obs.monotonic () in
  let deadline = t0 +. cfg.duration_s in
  let next_arrival = ref (t0 +. draw_gap ()) in
  let batch_cap = max (4 * cfg.pipeline_depth) 64 in
  (* due arrivals, newest first: (intended_time, want, query) *)
  let due = ref [] in
  let ndue = ref 0 in
  let fire () =
    let items = List.rev !due in
    due := [];
    ndue := 0;
    let intended = Array.of_list (List.map (fun (t, _, _) -> t) items) in
    let reqs = List.map (fun (_, w, q) -> (w, q)) items in
    let lat = Array.make (Array.length intended) nan in
    let results =
      Client.eval_many
        ~on_latency:(fun i _service_s ->
          (* corrected latency: intended arrival -> response, so queueing
             behind a stalled server is charged to the server *)
          lat.(i) <- Obs.monotonic () -. intended.(i))
        client reqs
    in
    List.iteri
      (fun i r ->
        acc.a_sent <- acc.a_sent + 1;
        Obs.incr m.m_sent;
        match r with
        | Ok (Codec.Result { cached; _ }) ->
            acc.a_ok <- acc.a_ok + 1;
            Obs.incr m.m_ok;
            if cached then begin
              acc.a_cached <- acc.a_cached + 1;
              Obs.incr m.m_cached
            end;
            let l =
              if Float.is_nan lat.(i) then Obs.monotonic () -. intended.(i)
              else lat.(i)
            in
            acc.a_lat <- l :: acc.a_lat;
            Obs.observe m.m_latency l
        | Ok (Codec.Failed { message; _ }) ->
            Obs.incr m.m_server_err;
            bucket_server acc message
        | Error Client.Timeout ->
            acc.a_timeout <- acc.a_timeout + 1;
            Obs.incr m.m_timeout
        | Error (Client.Connection msg) ->
            acc.a_conn <- acc.a_conn + 1;
            Obs.incr m.m_conn;
            (* "internal:" marks a client-side accounting bug, not a
               network condition — the soak invariant wants zero *)
            if String.length msg >= 9 && String.sub msg 0 9 = "internal:"
            then acc.a_unresolved <- acc.a_unresolved + 1
        | Error (Client.Protocol _) ->
            acc.a_proto <- acc.a_proto + 1;
            Obs.incr m.m_proto)
      results
  in
  let rec loop () =
    let now = Obs.monotonic () in
    (* pull every arrival that has come due, up to the batch cap *)
    while !next_arrival <= now && !next_arrival < deadline && !ndue < batch_cap
    do
      let q = qtab.(sample_rank cdf rng) in
      due := (!next_arrival, Codec.Both, q) :: !due;
      incr ndue;
      next_arrival := !next_arrival +. draw_gap ()
    done;
    if !ndue > 0 then begin
      fire ();
      loop ()
    end
    else if !next_arrival < deadline then begin
      Thread.delay (Float.min (!next_arrival -. now) 0.05);
      loop ()
    end
  in
  loop ();
  Client.close client

let percentile lats p =
  let n = Array.length lats in
  if n = 0 then 0.
  else begin
    let a = Array.copy lats in
    Array.sort compare a;
    let idx =
      int_of_float (ceil (p /. 100. *. float_of_int n)) - 1
    in
    a.(max 0 (min (n - 1) idx))
  end

let run ?(metrics = "load") cfg addr =
  let m = make_metrics metrics in
  let qtab = queries ~keyspace:cfg.keyspace in
  let cdf = zipf_cdf ~k:(Array.length qtab) ~s:cfg.zipf in
  let accs =
    Array.init cfg.conns (fun _ ->
        {
          a_sent = 0;
          a_ok = 0;
          a_cached = 0;
          a_server = [];
          a_timeout = 0;
          a_conn = 0;
          a_proto = 0;
          a_unresolved = 0;
          a_lat = [];
        })
  in
  let t0 = Obs.monotonic () in
  let threads =
    Array.to_list
      (Array.mapi
         (fun wi acc ->
           Thread.create (fun () -> worker cfg m addr qtab cdf wi acc) ())
         accs)
  in
  List.iter Thread.join threads;
  let wall = Obs.monotonic () -. t0 in
  let merge f = Array.fold_left (fun a acc -> a + f acc) 0 accs in
  let server_errors =
    Array.fold_left
      (fun tbl acc ->
        List.fold_left
          (fun tbl (k, n) ->
            let prev = try List.assoc k tbl with Not_found -> 0 in
            (k, prev + n) :: List.remove_assoc k tbl)
          tbl acc.a_server)
      [] accs
  in
  let latencies =
    Array.of_list (Array.fold_left (fun l a -> a.a_lat @ l) [] accs)
  in
  {
    sent = merge (fun a -> a.a_sent);
    ok = merge (fun a -> a.a_ok);
    cached = merge (fun a -> a.a_cached);
    server_errors;
    timeouts = merge (fun a -> a.a_timeout);
    conn_errors = merge (fun a -> a.a_conn);
    proto_errors = merge (fun a -> a.a_proto);
    unresolved = merge (fun a -> a.a_unresolved);
    latencies;
    wall_s = wall;
  }
