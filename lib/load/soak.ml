(* Invariant-checked soak runs: cluster + chaos proxies + load
   generator in one harness.

   Topology: N backends (child processes in `psc load --soak`,
   in-process servers in the test suite — the [make_backend] hook
   decides), each fronted by its own chaos proxy; a replicated Router
   pointed at the *proxies*; a front Server exposing the router; the
   open-loop generator driving the front over TCP.  Everything the
   router says to a backend — requests, probes, populate hints,
   rebalance streams — crosses a proxy, so chaos reaches every internal
   protocol, not just the client path.

   Phases: warm (uniform skew, fills every key and lets populate hints
   replicate) -> clean (measured baseline) -> chaos (faults on; a
   half-open partition opens and heals; one backend is SIGKILLed and
   later restarted) -> heal (wait for the prober to re-converge) ->
   recovery (measured, everything healed).

   Invariants, checked from the generator's taxonomy and the router's
   liveness view at exit:

   - no silent loss: every generated request ended in exactly one
     taxonomy bucket (ok / server error / timeout / connection /
     protocol), and zero were flagged "internal:" (client accounting
     bug) — in every phase, chaos included.
   - prober convergence: after the last heal, every backend returns to
     alive within a bounded window.
   - warm floor: recovery-phase cached-hit rate stays above a floor —
     the replicas kept the killed backend's keys warm, and the restarted
     backend re-warms from traffic.
   - p99 SLO: clean and recovery phases meet the declared p99 bound
     (the chaos phase is reported, not judged — latency under injected
     5-50 ms delays is the experiment, not a regression).

   The chaos seed is printed and recorded in the result; re-running
   with the same seed replays the same per-connection fault schedule
   (see Chaos). *)

open Psph_obs
open Psph_net

type backend = {
  baddr : Addr.t;
  kill : unit -> unit;
  restart : unit -> unit;
  shutdown : unit -> unit;
}

type config = {
  backends : int;
  replicas : int;
  load : Loadgen.config;  (* duration_s = length of each measured phase *)
  faults : Chaos.faults;
  seed : int;
  warm_s : float;
  slo_p99_ms : float;
  warm_floor : float;
  kill_backend : bool;
  converge_timeout_s : float;
  make_backend : int -> (backend, string) result;
}

type phase = {
  p_name : string;
  p_stats : Loadgen.stats;
  p_rps : float;
  p_p50_ms : float;
  p_p99_ms : float;
}

type invariant = { i_name : string; i_ok : bool; i_detail : string }

type result = {
  phases : phase list;
  invariants : invariant list;
  seed : int;
  chaos : (string * int) list;
  converge_s : float;
}

let passed r = List.for_all (fun i -> i.i_ok) r.invariants

(* ------------------------------------------------------------------ *)
(* child-process backends (psc load --soak)                            *)
(* ------------------------------------------------------------------ *)

let free_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let p =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> 0
  in
  Unix.close fd;
  p

let wait_ready addr timeout_s =
  let c = Client.create ~timeout_ms:500 ~retries:0 addr in
  let deadline = Obs.monotonic () +. timeout_s in
  let rec go () =
    match Client.request c {|{"op":"models"}|} with
    | Ok _ ->
        Client.close c;
        true
    | Error _ ->
        if Obs.monotonic () > deadline then begin
          Client.close c;
          false
        end
        else begin
          Thread.delay 0.1;
          go ()
        end
  in
  go ()

(* reap without risking an infinite hang on a child that ignores TERM:
   poll WNOHANG for a grace period, then SIGKILL and reap for real *)
let reap pid grace_s =
  let deadline = Obs.monotonic () +. grace_s in
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if Obs.monotonic () > deadline then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (try Unix.waitpid [] pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0))
        end
        else begin
          Thread.delay 0.05;
          go ()
        end
    | _ -> ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  in
  go ()

let spawn_backend ?(psc = Sys.executable_name) ?(args = []) _i =
  let port = free_port () in
  let baddr = { Addr.host = "127.0.0.1"; port } in
  let argv =
    Array.of_list ([ psc; "serve"; "--listen"; Addr.to_string baddr ] @ args)
  in
  let start () = Unix.create_process psc argv Unix.stdin Unix.stdout Unix.stderr in
  let pid = ref (start ()) in
  if not (wait_ready baddr 15.) then begin
    (try Unix.kill !pid Sys.sigkill with Unix.Unix_error _ -> ());
    reap !pid 0.;
    Error (Printf.sprintf "backend %s did not come up" (Addr.to_string baddr))
  end
  else
    Ok
      {
        baddr;
        kill =
          (fun () ->
            (try Unix.kill !pid Sys.sigkill with Unix.Unix_error _ -> ());
            reap !pid 0.);
        restart =
          (fun () ->
            pid := start ();
            ignore (wait_ready baddr 15.));
        shutdown =
          (fun () ->
            (try Unix.kill !pid Sys.sigterm with Unix.Unix_error _ -> ());
            reap !pid 5.);
      }

(* ------------------------------------------------------------------ *)
(* the run                                                             *)
(* ------------------------------------------------------------------ *)

let chaos_counter_names =
  [
    "conns"; "chunks"; "bytes"; "resets"; "torn"; "corrupted"; "delayed";
    "throttled"; "frozen"; "upstream_down";
  ]

let chaos_snapshot () =
  List.map
    (fun n -> (n, Obs.counter_value (Obs.counter ("chaos." ^ n))))
    chaos_counter_names

let mk_phase name (st : Loadgen.stats) =
  let ms a p = 1000. *. Loadgen.percentile a p in
  {
    p_name = name;
    p_stats = st;
    p_rps =
      (if st.wall_s > 0. then float_of_int (Loadgen.completed st) /. st.wall_s
       else 0.);
    p_p50_ms = ms st.latencies 50.;
    p_p99_ms = ms st.latencies 99.;
  }

let all_alive router = List.for_all snd (Router.backends router)

let wait_converged router timeout_s =
  let t0 = Obs.monotonic () in
  let deadline = t0 +. timeout_s in
  let rec go () =
    if all_alive router then Some (Obs.monotonic () -. t0)
    else if Obs.monotonic () > deadline then None
    else begin
      Thread.delay 0.05;
      go ()
    end
  in
  go ()

let note fmt =
  Format.kasprintf
    (fun s ->
      Obs.event ("soak." ^ s);
      Format.eprintf "soak: %s@." s)
    fmt

let run cfg =
  if cfg.backends < 1 then Error "soak: need at least one backend"
  else begin
    let cleanup = ref [] in
    let defer f = cleanup := f :: !cleanup in
    let finish () = List.iter (fun f -> try f () with _ -> ()) !cleanup in
    match
      (* backends first; fail fast if any refuses to come up *)
      let rec spawn i acc =
        if i >= cfg.backends then Ok (List.rev acc)
        else
          match cfg.make_backend i with
          | Error _ as e -> e
          | Ok b ->
              defer (fun () -> b.shutdown ());
              spawn (i + 1) (b :: acc)
      in
      spawn 0 []
    with
    | Error m ->
        finish ();
        Error m
    | Ok backends -> (
        let chaos0 = chaos_snapshot () in
        (* one proxy per backend, seeded per index for reproducibility *)
        let proxies =
          List.mapi
            (fun i b ->
              match
                Chaos.create ~seed:(cfg.seed + i) ~faults:cfg.faults
                  ~upstream:b.baddr
                  { Addr.host = "127.0.0.1"; port = 0 }
              with
              | Ok p ->
                  defer (fun () -> Chaos.stop p);
                  Some p
              | Error m ->
                  Format.eprintf "soak: proxy %d: %s@." i m;
                  None)
            backends
        in
        if List.exists Option.is_none proxies then begin
          finish ();
          Error "soak: failed to start a chaos proxy"
        end
        else begin
          let proxies = List.filter_map Fun.id proxies in
          let router =
            Router.create ~metrics:"soak.router" ~replication:cfg.replicas
              ~read_fallback:true ~timeout_ms:1500 ~retries:0
              ~check_period_ms:250 ~codec:`Binary
              (List.map Chaos.addr proxies)
          in
          defer (fun () -> Router.stop router);
          Router.start_health_checks router;
          match
            Server.listen ~metrics:"soak.front" ~max_conns:256
              ~dispatch:(Server.threaded_dispatch ())
              ~handler:(Router.route router)
              { Addr.host = "127.0.0.1"; port = 0 }
          with
          | Error m ->
              finish ();
              Error ("soak: front server: " ^ m)
          | Ok front ->
              defer (fun () -> Server.stop front);
              Server.start front;
              let front_addr =
                { Addr.host = "127.0.0.1"; port = Server.port front }
              in
              note "topology: %d backends, R=%d, front %s, seed %d"
                cfg.backends cfg.replicas
                (Addr.to_string front_addr)
                cfg.seed;
              (* warm: uniform skew so every key is computed and every
                 populate hint has time to land *)
              note "phase warm (%.1fs)" cfg.warm_s;
              let _warm =
                Loadgen.run ~metrics:"load"
                  { cfg.load with duration_s = cfg.warm_s; zipf = 0. }
                  front_addr
              in
              note "phase clean (%.1fs)" cfg.load.duration_s;
              let clean = Loadgen.run ~metrics:"load" cfg.load front_addr in
              (* chaos: faults on, then a scripted adversity timeline on
                 a driver thread while the generator keeps firing *)
              note "phase chaos (%.1fs)" cfg.load.duration_s;
              let d = cfg.load.duration_s in
              let victim_proxy =
                List.nth proxies (min 1 (List.length proxies - 1))
              in
              let victim_backend = List.hd backends in
              let do_kill = cfg.kill_backend && cfg.backends > 1 in
              let driver =
                Thread.create
                  (fun () ->
                    List.iter (fun p -> Chaos.set_enabled p true) proxies;
                    note "chaos on (faults enabled on %d proxies)"
                      (List.length proxies);
                    Thread.delay (0.25 *. d);
                    Chaos.set_partition victim_proxy Chaos.Half_open;
                    note "half-open partition opened";
                    Thread.delay (0.25 *. d);
                    Chaos.set_partition victim_proxy Chaos.No_partition;
                    note "partition healed";
                    if do_kill then begin
                      victim_backend.kill ();
                      note "backend 0 SIGKILLed"
                    end;
                    Thread.delay (0.25 *. d);
                    if do_kill then begin
                      victim_backend.restart ();
                      note "backend 0 restarted"
                    end)
                  ()
              in
              let chaos_phase =
                Loadgen.run ~metrics:"load" cfg.load front_addr
              in
              Thread.join driver;
              List.iter
                (fun p ->
                  Chaos.set_enabled p false;
                  Chaos.set_partition p Chaos.No_partition)
                proxies;
              note "chaos off; waiting for prober convergence";
              let converge = wait_converged router cfg.converge_timeout_s in
              let converge_s =
                match converge with Some s -> s | None -> -1.
              in
              (match converge with
              | Some s -> note "prober converged in %.2fs" s
              | None ->
                  note "prober did NOT converge within %.1fs"
                    cfg.converge_timeout_s);
              note "phase recovery (%.1fs)" cfg.load.duration_s;
              let recovery = Loadgen.run ~metrics:"load" cfg.load front_addr in
              let chaos1 = chaos_snapshot () in
              let chaos_counts =
                List.map
                  (fun (n, v) ->
                    (n, v - (try List.assoc n chaos0 with Not_found -> 0)))
                  chaos1
              in
              finish ();
              let phases =
                [
                  mk_phase "clean" clean;
                  mk_phase "chaos" chaos_phase;
                  mk_phase "recovery" recovery;
                ]
              in
              let inv name ok detail =
                { i_name = name; i_ok = ok; i_detail = detail }
              in
              let loss_inv =
                let lost =
                  List.map
                    (fun p ->
                      ( p.p_name,
                        p.p_stats.Loadgen.sent - Loadgen.completed p.p_stats,
                        p.p_stats.Loadgen.unresolved ))
                    phases
                in
                let bad =
                  List.filter (fun (_, l, u) -> l <> 0 || u <> 0) lost
                in
                inv "no_silent_loss"
                  (bad = [])
                  (if bad = [] then
                     Printf.sprintf
                       "every request taxonomized in all %d phases (%d total)"
                       (List.length phases)
                       (List.fold_left
                          (fun a p -> a + p.p_stats.Loadgen.sent)
                          0 phases)
                   else
                     String.concat "; "
                       (List.map
                          (fun (n, l, u) ->
                            Printf.sprintf
                              "%s: %d unaccounted, %d unresolved" n l u)
                          bad))
              in
              let converge_inv =
                inv "prober_converged"
                  (converge <> None)
                  (match converge with
                  | Some s ->
                      Printf.sprintf "all backends alive %.2fs after heal" s
                  | None ->
                      Printf.sprintf "not converged after %.1fs"
                        cfg.converge_timeout_s)
              in
              let warm_inv =
                let rate =
                  if recovery.Loadgen.ok = 0 then 0.
                  else
                    float_of_int recovery.Loadgen.cached
                    /. float_of_int recovery.Loadgen.ok
                in
                inv "warm_floor"
                  (rate >= cfg.warm_floor)
                  (Printf.sprintf "recovery cached-hit rate %.3f (floor %.2f)"
                     rate cfg.warm_floor)
              in
              let slo_inv =
                let bad =
                  List.filter
                    (fun p ->
                      p.p_name <> "chaos" && p.p_p99_ms > cfg.slo_p99_ms)
                    phases
                in
                inv "p99_slo"
                  (bad = [])
                  (String.concat ", "
                     (List.map
                        (fun p ->
                          Printf.sprintf "%s p99 %.1fms" p.p_name p.p_p99_ms)
                        phases)
                  ^ Printf.sprintf " (SLO %.0fms on clean phases)"
                      cfg.slo_p99_ms)
              in
              Ok
                {
                  phases;
                  invariants = [ loss_inv; converge_inv; warm_inv; slo_inv ];
                  seed = cfg.seed;
                  chaos = chaos_counts;
                  converge_s;
                }
        end)
  end

(* ------------------------------------------------------------------ *)
(* reporting                                                           *)
(* ------------------------------------------------------------------ *)

let phase_json p =
  let st = p.p_stats in
  Jsonl.Obj
    [
      ("name", Jsonl.Str p.p_name);
      ("sent", Jsonl.int st.Loadgen.sent);
      ("ok", Jsonl.int st.Loadgen.ok);
      ("cached", Jsonl.int st.Loadgen.cached);
      ( "server_errors",
        Jsonl.int
          (List.fold_left (fun a (_, n) -> a + n) 0 st.Loadgen.server_errors)
      );
      ("timeouts", Jsonl.int st.Loadgen.timeouts);
      ("conn_errors", Jsonl.int st.Loadgen.conn_errors);
      ("proto_errors", Jsonl.int st.Loadgen.proto_errors);
      ("rps", Jsonl.Num p.p_rps);
      ("p50_ms", Jsonl.Num p.p_p50_ms);
      ("p99_ms", Jsonl.Num p.p_p99_ms);
      ("wall_s", Jsonl.Num st.Loadgen.wall_s);
    ]

let to_json r =
  Jsonl.Obj
    [
      ("seed", Jsonl.int r.seed);
      ("phases", Jsonl.Arr (List.map phase_json r.phases));
      ( "invariants",
        Jsonl.Arr
          (List.map
             (fun i ->
               Jsonl.Obj
                 [
                   ("name", Jsonl.Str i.i_name);
                   ("ok", Jsonl.Bool i.i_ok);
                   ("detail", Jsonl.Str i.i_detail);
                 ])
             r.invariants) );
      ( "chaos",
        Jsonl.Obj (List.map (fun (n, v) -> (n, Jsonl.int v)) r.chaos) );
      ("converge_s", Jsonl.Num r.converge_s);
      ("passed", Jsonl.Bool (passed r));
    ]

let print_summary oc r =
  Printf.fprintf oc "soak seed %d\n" r.seed;
  List.iter
    (fun p ->
      Printf.fprintf oc
        "  %-8s %6d sent  %6d ok  %5.1f%% cached  %8.1f req/s  p50 %6.1fms  p99 %6.1fms\n"
        p.p_name p.p_stats.Loadgen.sent p.p_stats.Loadgen.ok
        (if p.p_stats.Loadgen.ok = 0 then 0.
         else
           100.
           *. float_of_int p.p_stats.Loadgen.cached
           /. float_of_int p.p_stats.Loadgen.ok)
        p.p_rps p.p_p50_ms p.p_p99_ms)
    r.phases;
  List.iter
    (fun (n, v) -> if v > 0 then Printf.fprintf oc "  chaos.%s = %d\n" n v)
    r.chaos;
  List.iter
    (fun i ->
      Printf.fprintf oc "  [%s] %s: %s\n"
        (if i.i_ok then "ok" else "FAIL")
        i.i_name i.i_detail)
    r.invariants;
  Printf.fprintf oc "invariants: %s\n" (if passed r then "ok" else "FAILED")
