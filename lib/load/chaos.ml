(* Fault-injecting TCP man-in-the-middle.

   One listening socket, one upstream address; every accepted connection
   gets a matching upstream connection and two pump threads shoveling
   bytes, one per direction.  Faults apply per forwarded chunk, drawn
   from a per-connection-per-direction RNG seeded as
   [(seed, conn_index, direction)] — so the fault sequence each
   connection experiences is a pure function of the printed seed, however
   the OS interleaves the pumps.

   Fault menu (all per-chunk probabilities in parts-per-thousand, all
   gated on the [enabled] switch so a soak can run clean phases through
   the same proxy):

   - reset: close both sides with SO_LINGER 0, which makes the kernel
     send RST instead of FIN — the peer sees ECONNRESET mid-request,
     exactly what a crashed backend looks like.
   - torn frame: forward a strict prefix of the chunk, then reset.  The
     receiver's Frame reader is left mid-frame, which is the torn-frame
     case the client taxonomy classifies as retryable.
   - corruption: flip one byte (XOR with a nonzero mask) before
     forwarding.  Downstream this surfaces as a desynced or oversized
     frame; Frame.reader poisons rather than raising (see the fuzz
     tests).
   - delay: sleep a uniform [lo, hi] ms before forwarding.
   - throttle: pace each direction to a byte budget per second.

   Partitions are not per-chunk faults but a mode switch: [Full] freezes
   both directions, [Half_open] freezes only upstream->client (requests
   keep arriving at the backend, responses never come back — the
   nastier case).  Frozen pumps hold their chunk and deliver it after
   heal, so a healed connection resumes with an intact byte stream; the
   peer experiences the partition as unbounded latency, which is what
   makes timeouts (not parse errors) the symptom.  New connections are
   still accepted during a partition — TCP connect succeeding while data
   goes nowhere is precisely what distinguishes a partition from a dead
   host. *)

open Psph_obs
open Psph_net

type faults = {
  delay_ms : (int * int) option;
  throttle_bps : int option;
  reset_ppc : int;
  torn_ppc : int;
  corrupt_ppc : int;
}

let no_faults =
  { delay_ms = None; throttle_bps = None; reset_ppc = 0; torn_ppc = 0;
    corrupt_ppc = 0 }

type partition = No_partition | Half_open | Full

type metrics = {
  conns : Obs.counter;
  chunks : Obs.counter;
  bytes : Obs.counter;
  resets : Obs.counter;
  torn : Obs.counter;
  corrupted : Obs.counter;
  delayed : Obs.counter;
  throttled : Obs.counter;
  frozen : Obs.counter;
  upstream_down : Obs.counter;
}

(* both pumps share the pair; whoever decrements [live] to zero closes *)
type pair = {
  cfd : Unix.file_descr;
  ufd : Unix.file_descr;
  live : int Atomic.t;
  id : int;
}

type t = {
  lfd : Unix.file_descr;
  port : int;
  host : string;
  upstream : Addr.t;
  seed : int;
  faults : faults;
  enabled : bool Atomic.t;
  part : partition Atomic.t;
  stopping : bool Atomic.t;
  pairs : (int, pair) Hashtbl.t;
  pairs_lock : Mutex.t;
  mutable threads : Thread.t list;
  threads_lock : Mutex.t;
  m : metrics;
}

let make_metrics prefix =
  let c n = Obs.counter (prefix ^ "." ^ n) in
  {
    conns = c "conns";
    chunks = c "chunks";
    bytes = c "bytes";
    resets = c "resets";
    torn = c "torn";
    corrupted = c "corrupted";
    delayed = c "delayed";
    throttled = c "throttled";
    frozen = c "frozen";
    upstream_down = c "upstream_down";
  }

let port t = t.port

let addr t = { Addr.host = t.host; port = t.port }

let set_enabled t b = Atomic.set t.enabled b

let enabled t = Atomic.get t.enabled

let set_partition t p = Atomic.set t.part p

let partition t = Atomic.get t.part

(* RST, not FIN: linger time 0 discards the send queue and resets *)
let hard_close fd =
  (try Unix.setsockopt_optint fd Unix.SO_LINGER (Some 0) with Unix.Unix_error _ -> ());
  try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let leave t pair =
  if Atomic.fetch_and_add pair.live (-1) = 1 then begin
    (try Unix.close pair.cfd with Unix.Unix_error _ -> ());
    (try Unix.close pair.ufd with Unix.Unix_error _ -> ());
    Mutex.lock t.pairs_lock;
    Hashtbl.remove t.pairs pair.id;
    Mutex.unlock t.pairs_lock
  end

let reset_pair t pair =
  Obs.incr t.m.resets;
  hard_close pair.cfd;
  hard_close pair.ufd

exception Reset

(* hold the chunk while this direction is partitioned; deliver on heal *)
let wait_thaw t dir =
  let frozen () =
    match Atomic.get t.part with
    | No_partition -> false
    | Full -> true
    | Half_open -> dir = `U2c
  in
  if frozen () then begin
    Obs.incr t.m.frozen;
    while frozen () && not (Atomic.get t.stopping) do
      Thread.delay 0.01
    done
  end

let write_all fd buf n =
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd buf !off (n - !off)
  done

let pump t pair dir src dst rng =
  let buf = Bytes.create 16384 in
  let f = t.faults in
  (try
     let continue = ref true in
     while !continue && not (Atomic.get t.stopping) do
       match Unix.read src buf 0 (Bytes.length buf) with
       | 0 ->
           (* half-close: propagate EOF downstream, keep the other
              direction flowing until it ends on its own *)
           (try Unix.shutdown dst Unix.SHUTDOWN_SEND
            with Unix.Unix_error _ -> ());
           continue := false
       | n ->
           Obs.incr t.m.chunks;
           Obs.incr ~by:n t.m.bytes;
           wait_thaw t dir;
           if not (Atomic.get t.enabled) then write_all dst buf n
           else begin
             let roll ppc = ppc > 0 && Random.State.int rng 1000 < ppc in
             if roll f.reset_ppc then begin
               reset_pair t pair;
               raise Reset
             end;
             let torn = roll f.torn_ppc && n > 1 in
             let n =
               if torn then begin
                 Obs.incr t.m.torn;
                 (* a strict prefix goes out, then the reset below
                    leaves the receiver mid-frame *)
                 1 + Random.State.int rng (n - 1)
               end
               else n
             in
             if roll f.corrupt_ppc then begin
               Obs.incr t.m.corrupted;
               let i = Random.State.int rng n in
               let mask = 1 + Random.State.int rng 255 in
               Bytes.set buf i
                 (Char.chr (Char.code (Bytes.get buf i) lxor mask))
             end;
             (match f.delay_ms with
             | Some (lo, hi) ->
                 Obs.incr t.m.delayed;
                 let ms = lo + Random.State.int rng (max 1 (hi - lo + 1)) in
                 Thread.delay (float_of_int ms /. 1000.)
             | None -> ());
             (match f.throttle_bps with
             | Some bps when bps > 0 ->
                 Obs.incr t.m.throttled;
                 Thread.delay (float_of_int n /. float_of_int bps)
             | _ -> ());
             write_all dst buf n;
             if torn then begin
               reset_pair t pair;
               raise Reset
             end
           end
     done
   with
  | Reset -> ()
  | Unix.Unix_error _ | Sys_error _ -> ());
  leave t pair

let spawn t f =
  let th = Thread.create f () in
  Mutex.lock t.threads_lock;
  t.threads <- th :: t.threads;
  Mutex.unlock t.threads_lock

let accept_loop t =
  let next_id = ref 0 in
  while not (Atomic.get t.stopping) do
    match Unix.accept t.lfd with
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> Thread.delay 0.01
    | cfd, _ -> (
        if Atomic.get t.stopping then
          try Unix.close cfd with Unix.Unix_error _ -> ()
        else
          match Addr.resolve t.upstream with
          | Error _ ->
              Obs.incr t.m.upstream_down;
              hard_close cfd;
              (try Unix.close cfd with Unix.Unix_error _ -> ())
          | Ok sa -> (
              let ufd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
              match Unix.connect ufd sa with
              | exception Unix.Unix_error (_, _, _) ->
                  (* backend gone: a reset is what the client would have
                     gotten from the dead host's kernel anyway *)
                  Obs.incr t.m.upstream_down;
                  (try Unix.close ufd with Unix.Unix_error _ -> ());
                  hard_close cfd;
                  (try Unix.close cfd with Unix.Unix_error _ -> ())
              | () ->
                  Obs.incr t.m.conns;
                  (try Unix.setsockopt cfd Unix.TCP_NODELAY true
                   with Unix.Unix_error _ -> ());
                  (try Unix.setsockopt ufd Unix.TCP_NODELAY true
                   with Unix.Unix_error _ -> ());
                  let id = !next_id in
                  incr next_id;
                  let pair = { cfd; ufd; live = Atomic.make 2; id } in
                  Mutex.lock t.pairs_lock;
                  Hashtbl.replace t.pairs id pair;
                  Mutex.unlock t.pairs_lock;
                  let rng_for dir =
                    Random.State.make
                      [| t.seed; id; (match dir with `C2u -> 0 | `U2c -> 1) |]
                  in
                  spawn t (fun () ->
                      pump t pair `C2u cfd ufd (rng_for `C2u));
                  spawn t (fun () ->
                      pump t pair `U2c ufd cfd (rng_for `U2c))))
  done

let kill_connections t =
  Mutex.lock t.pairs_lock;
  let pairs = Hashtbl.fold (fun _ p acc -> p :: acc) t.pairs [] in
  Mutex.unlock t.pairs_lock;
  List.iter (fun p -> reset_pair t p) pairs

let create ?(metrics = "chaos") ?(backlog = 64) ~seed ~faults ~upstream listen
    =
  match Addr.resolve listen with
  | Error m -> Error m
  | Ok sa -> (
      let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt lfd Unix.SO_REUSEADDR true;
      match
        Unix.bind lfd sa;
        Unix.listen lfd backlog
      with
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close lfd with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "chaos: bind %s: %s" (Addr.to_string listen)
               (Unix.error_message e))
      | () ->
          let port =
            match Unix.getsockname lfd with
            | Unix.ADDR_INET (_, p) -> p
            | _ -> listen.Addr.port
          in
          let t =
            {
              lfd;
              port;
              host = listen.Addr.host;
              upstream;
              seed;
              faults;
              enabled = Atomic.make false;
              part = Atomic.make No_partition;
              stopping = Atomic.make false;
              pairs = Hashtbl.create 16;
              pairs_lock = Mutex.create ();
              threads = [];
              threads_lock = Mutex.create ();
              m = make_metrics metrics;
            }
          in
          spawn t (fun () -> accept_loop t);
          Ok t)

let stop t =
  if not (Atomic.get t.stopping) then begin
    Atomic.set t.stopping true;
    (* unblock the accept loop and every pump *)
    (try Unix.shutdown t.lfd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.lfd with Unix.Unix_error _ -> ());
    (* tear down live pairs without counting them as injected resets *)
    Mutex.lock t.pairs_lock;
    let pairs = Hashtbl.fold (fun _ p acc -> p :: acc) t.pairs [] in
    Mutex.unlock t.pairs_lock;
    List.iter
      (fun p ->
        hard_close p.cfd;
        hard_close p.ufd)
      pairs;
    let threads =
      Mutex.lock t.threads_lock;
      let ths = t.threads in
      t.threads <- [];
      Mutex.unlock t.threads_lock;
      ths
    in
    List.iter Thread.join threads
  end
