(** Open-loop load generator for the framed serve protocol (wire v2).

    [conns] worker threads each own one pipelined {!Psph_net.Client}
    (binary codec when the peer grants it) and fire requests on a
    Poisson arrival schedule drawn from a seeded RNG — {b open-loop}:
    the schedule is independent of how fast the server answers, and
    each request's latency is measured from its {e intended} arrival
    time to its response (the wrk2-style coordinated-omission
    correction), so a stalled server shows up as large latencies, not
    as a silently slowed generator.

    The key space is drawn from the model registry's spec space: psph
    shapes, every registered model at a small default spec, plus salted
    facet queries padding out [keyspace] distinct keys.  Key choice is
    zipf([zipf])-skewed over that table ([zipf = 0.] is uniform) —
    skew concentrated on few keys stresses one shard of a routed
    cluster.

    Outcomes are taxonomized exhaustively — ok (with the server's
    cached flag), server-side error answers, and transport errors
    (timeout / connection / protocol) — and counted under
    [<metrics>.*] (default [load.*]) plus a [latency_s] histogram.
    [stats.sent = ok + server + transport] by construction; the soak
    harness turns that arithmetic into the "no silent loss"
    invariant. *)

open Psph_net

type config = {
  rate : float;  (** total target req/s across all connections *)
  conns : int;
  pipeline_depth : int;
  codec : [ `Json | `Binary ];
  duration_s : float;
  keyspace : int;  (** distinct keys in the query table *)
  zipf : float;  (** skew exponent; 0. = uniform *)
  seed : int;
  timeout_ms : int;  (** per-attempt client timeout *)
  retries : int;
}

val default_config : config
(** 500 req/s over 4 connections, depth 16, binary codec, 10 s,
    64 keys, zipf 1.0. *)

type stats = {
  sent : int;
  ok : int;
  cached : int;  (** ok answers the server marked as cache hits *)
  server_errors : (string * int) list;  (** error message -> count *)
  timeouts : int;
  conn_errors : int;
  proto_errors : int;
  unresolved : int;
      (** connection errors flagged "internal:" — a client accounting
          bug, not a network condition; soak asserts zero *)
  latencies : float array;  (** corrected seconds, ok requests only *)
  wall_s : float;
}

val completed : stats -> int
(** [ok + server_errors + timeouts + conn_errors + proto_errors] — the
    requests that ended in a taxonomy bucket.  No silent loss iff this
    equals [sent]. *)

val queries : keyspace:int -> (Codec.query) array
(** The registry-derived key table, deterministic for a given
    [keyspace] — exposed for tests. *)

val zipf_cdf : k:int -> s:float -> float array
(** Cumulative zipf([s]) table over ranks [0..k-1]; [s = 0.] is
    uniform.  Exposed for tests. *)

val sample_rank : float array -> Random.State.t -> int
(** Draw a rank from a {!zipf_cdf} table — deterministic for a given
    RNG state. *)

val percentile : float array -> float -> float
(** [percentile lats p] with [p] in [0..100]; 0. on an empty array. *)

val run : ?metrics:string -> config -> Addr.t -> stats
(** Run the full schedule against one address and block until every
    worker drains.  Wall time is [duration_s] plus however long the
    final in-flight requests take to resolve. *)
