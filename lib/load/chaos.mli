(** Fault-injecting TCP man-in-the-middle ("chaos proxy").

    Sits between a client and a server — in the soak harness, between
    the {!Psph_net.Router} and each backend — forwarding bytes in both
    directions while injecting faults from a {b seeded, reproducible
    schedule}: each connection's fault sequence is drawn from an RNG
    seeded with [(seed, connection_index, direction)], so a printed seed
    replays the same per-connection schedule regardless of thread
    interleaving.

    Per-chunk faults (probabilities in parts-per-thousand, active only
    while {!set_enabled} is on):

    - [reset_ppc] — close both sides with [SO_LINGER 0] so the kernel
      sends RST: peers see [ECONNRESET] mid-request.
    - [torn_ppc] — forward a strict prefix of the chunk, then reset:
      the receiver's frame reader is left mid-frame.
    - [corrupt_ppc] — XOR one byte with a nonzero mask before
      forwarding.
    - [delay_ms = Some (lo, hi)] — sleep a uniform [lo..hi] ms before
      forwarding each chunk.
    - [throttle_bps] — pace each direction to a byte budget per second.

    Partitions are a mode, not a probability: {!Full} freezes both
    directions, {!Half_open} freezes only server-to-client (requests
    arrive, responses vanish).  Frozen chunks are {e held} and delivered
    on heal, so the byte stream stays intact and the peer experiences
    the partition as unbounded latency — timeouts, not parse errors.
    New connections are accepted during a partition (connect succeeding
    while data goes nowhere is what distinguishes a partition from a
    dead host).

    Everything injected is counted under [<metrics>.*] (default
    [chaos.*]): [conns], [chunks], [bytes], [resets], [torn],
    [corrupted], [delayed], [throttled], [frozen], [upstream_down]. *)

open Psph_net

type faults = {
  delay_ms : (int * int) option;
  throttle_bps : int option;
  reset_ppc : int;
  torn_ppc : int;
  corrupt_ppc : int;
}

val no_faults : faults
(** Everything off — the proxy is a transparent TCP relay. *)

type partition = No_partition | Half_open | Full

type t

val create :
  ?metrics:string ->
  ?backlog:int ->
  seed:int ->
  faults:faults ->
  upstream:Addr.t ->
  Addr.t ->
  (t, string) result
(** [create ~seed ~faults ~upstream listen] binds [listen] (port 0 lets
    the kernel pick — read it back with {!port}) and starts the accept
    loop on a background thread.  Faults start {e disabled};
    {!set_enabled} turns the schedule on.  If the upstream refuses a
    connection the client side is reset and [upstream_down] counted. *)

val port : t -> int

val addr : t -> Addr.t
(** The listen address with the bound port filled in — what a router
    should be pointed at. *)

val set_enabled : t -> bool -> unit

val enabled : t -> bool

val set_partition : t -> partition -> unit

val partition : t -> partition

val kill_connections : t -> unit
(** Reset every live connection now (counted under [resets]) — an
    instant storm, independent of the per-chunk schedule. *)

val stop : t -> unit
(** Close the listener, tear down every connection (not counted as
    injected resets) and join all proxy threads.  Idempotent. *)
