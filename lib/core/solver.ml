open Psph_topology

type symbolic = {
  connectivity : int;
  rule : string;
  steps : int;
  proof : Mayer_vietoris.proof option;
}

(* The canonical input assignment every front end (engine, psc, benches)
   uses for an n-dimensional query: process i starts with value i mod 2.
   The symbolic tier never realizes a complex, but the decomposition is
   taken over this simplex so the derivation talks about exactly the
   complex the numeric tier would build. *)
let standard_inputs n = List.init (n + 1) (fun i -> (i, i mod 2))
let standard_input n = Input_complex.simplex_of_inputs (standard_inputs n)

(* The Mayer–Vietoris recursion splits prefix/last and recurses on both the
   prefix and its intersections with the last piece — worst-case
   exponential in the number of pieces.  Up to this cap the derivation is
   sub-millisecond; beyond it the solver falls through to the closed-form
   lemma tier instead of risking a blow-up. *)
let mv_piece_cap = 20

let pieces (module M : Model_complex.MODEL) (spec : Model_complex.spec) =
  match M.pseudosphere_decomposition with
  | Some d when spec.r = 1 -> Some (d spec (standard_input spec.n))
  | _ -> None

let lemma_tier (module M : Model_complex.MODEL) (spec : Model_complex.spec) =
  match M.expected_connectivity spec ~m:spec.n with
  | Some c ->
      Some
        { connectivity = c; rule = M.connectivity_lemma; steps = 1; proof = None }
  | None -> None

let of_mv_pieces ps =
  let proof = Mayer_vietoris.union_connectivity ps in
  {
    connectivity = Mayer_vietoris.conn proof;
    rule = "Theorem 2 + Corollary 6";
    steps = Mayer_vietoris.size proof;
    proof = Some proof;
  }

let symbolic_model ((module M : Model_complex.MODEL) as m) spec =
  match M.validate spec with
  | Error msg -> invalid_arg (Printf.sprintf "Solver: %s model: %s" M.name msg)
  | Ok spec ->
      if spec.r = 0 then
        (* rounds with r = 0 is the solid input simplex: contractible *)
        Some
          {
            connectivity = spec.n;
            rule = "solid input simplex (r=0)";
            steps = 1;
            proof = None;
          }
      else begin
        let mv =
          match pieces m spec with
          | Some ps when List.length ps <= mv_piece_cap -> Some (of_mv_pieces ps)
          | _ -> None
        in
        match mv with Some _ -> mv | None -> lemma_tier m spec
      end

let symbolic_psph ~n ~values =
  if n < 0 || values < 0 then None
  else begin
    let ps =
      Psph.uniform
        ~base:(Simplex.proc_simplex n)
        (List.init values (fun v -> Label.Int v))
    in
    Some
      {
        connectivity = Psph.connectivity_bound ps;
        rule = "Corollary 6";
        steps = 1;
        proof = None;
      }
  end
