open Psph_topology
open Psph_model

let pseudosphere_pattern ~p ~n s pat =
  let alive = Simplex.ids s in
  let k = pat.Failure.failed in
  let values _ =
    if Pid.Set.is_empty (Pid.Set.diff alive k) then []
    else
      Failure.views ~p ~n ~alive pat
      |> List.map (fun vec -> Label.Vec vec)
  in
  Psph.create ~base:(Simplex.without_ids k s) ~values

let pseudospheres ~k ~p ~n s =
  Failure.subsets_of_size_at_most (Simplex.ids s) k
  |> List.concat_map (fun fk ->
         Failure.all_patterns ~p fk
         |> List.filter_map (fun pat ->
                let ps = pseudosphere_pattern ~p ~n s pat in
                if Psph.is_empty ps then None else Some (pat, ps)))

let view_vertex ~p s q base_label = function
  | Label.Vec vec ->
      let prev = View.of_label base_label in
      let heard =
        Array.to_list (Array.mapi (fun r mu -> (r, mu)) vec)
        |> List.filter_map (fun (r, mu) ->
               if mu >= 1 then
                 match Simplex.label_of r s with
                 | Some l -> Some (r, mu, View.of_label l)
                 | None ->
                     invalid_arg "Semi_sync_complex: heard pid outside simplex"
               else None)
      in
      Vertex.proc q (View.to_label (View.timed_round ~p ~prev ~heard))
  | _ -> invalid_arg "Semi_sync_complex: value is not a view vector"

let one_round_pattern ~p ~n s pat =
  Psph.realize ~vertex:(view_vertex ~p s) (pseudosphere_pattern ~p ~n s pat)

let one_round ~k ~p ~n s =
  List.fold_left
    (fun acc (_, ps) -> Complex.union acc (Psph.realize ~vertex:(view_vertex ~p s) ps))
    Complex.empty (pseudospheres ~k ~p ~n s)

(* As in the synchronous model, recursion must visit the facets of every
   [M^1_{K,F}] separately (see Carrier.compose). *)
let rounds ~k ~p ~n ~r s =
  Carrier.compose r s ~branches:(fun s ->
      List.map
        (fun (_, ps) -> Psph.realize ~vertex:(view_vertex ~p s) ps)
        (pseudospheres ~k ~p ~n s))

let over_inputs ~k ~p ~n ~r inputs = Carrier.over_facets (rounds ~k ~p ~n ~r) inputs

let lemma19_rhs ~p ~n s pat =
  Psph.realize ~vertex:Psph.default_vertex (pseudosphere_pattern ~p ~n s pat)

let lemma19_map ~n = function
  | Vertex.Proc (q, l) -> (
      match View.of_label l with
      | View.Timed_round { heard; _ } ->
          let vec = Array.make (n + 1) 0 in
          List.iter (fun (r, mu, _) -> vec.(r) <- mu) heard;
          Vertex.proc q (Label.Vec vec)
      | View.Init _ | View.Round _ ->
          invalid_arg "Semi_sync_complex.lemma19_map: not a timed view")
  | (Vertex.Anon _ | Vertex.Bary _) as v -> v

let lemma19_holds ~p ~n s pat =
  let lhs = one_round_pattern ~p ~n s pat in
  let rhs = lemma19_rhs ~p ~n s pat in
  Simplicial_map.is_isomorphism_via (lemma19_map ~n) lhs rhs

let realize_intrinsic ~p s pss =
  List.fold_left
    (fun acc ps -> Complex.union acc (Psph.realize ~vertex:(view_vertex ~p s) ps))
    Complex.empty pss

let lemma20_lhs ~p ~n s pats =
  match List.rev pats with
  | [] -> Complex.empty
  | pt :: prefix_rev ->
      let prefix = List.rev prefix_rev in
      let left =
        realize_intrinsic ~p s (List.map (pseudosphere_pattern ~p ~n s) prefix)
      in
      let right = realize_intrinsic ~p s [ pseudosphere_pattern ~p ~n s pt ] in
      Complex.inter left right

let lemma20_rhs ~p ~n s pats =
  match List.rev pats with
  | [] -> Complex.empty
  | pt :: _ ->
      let kt = pt.Failure.failed in
      let piece j =
        let alive = Simplex.ids s in
        let values _ =
          Failure.views_up ~p ~n ~alive pt j |> List.map (fun vec -> Label.Vec vec)
        in
        Psph.create ~base:(Simplex.without_ids kt s) ~values
      in
      realize_intrinsic ~p s (List.map piece (Pid.Set.elements kt))

let lemma20_holds ~p ~n s pats =
  Complex.equal (lemma20_lhs ~p ~n s pats) (lemma20_rhs ~p ~n s pats)

let lemma21_expected_connectivity ~m ~n ~k = m - (n - k) - 1

let corollary22_time ~f ~k ~c1 ~c2 ~d =
  let r = ((f + k - 1) / k) - 1 in
  let c = float_of_int c2 /. float_of_int c1 in
  (float_of_int r *. float_of_int d) +. (c *. float_of_int d)
