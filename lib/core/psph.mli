(** Pseudospheres (Section 5 of the paper).

    Definition 3: given a simplex [S = (x_0, ..., x_m)] and finite value
    sets [U_0, ..., U_m], the pseudosphere [psi(S; U_0, ..., U_m)] has a
    vertex [(x_i, u)] for every [u in U_i], and a set of vertices spans a
    simplex iff their base vertices [x_i] are distinct.

    The type {!t} is the {e symbolic} form — the base simplex plus the
    per-vertex value sets.  {!realize} produces the actual complex.
    Symbolic forms support the algebra of Lemma 4 exactly (deleting empty
    value sets, componentwise intersection), which is what the
    Mayer–Vietoris engine manipulates. *)

open Psph_topology

type t
(** A pseudosphere in symbolic form.  Value sets are kept sorted and
    deduplicated; base vertices with empty value sets are retained until
    {!normalize} (Lemma 4.2 says deleting them does not change the
    complex). *)

val create : base:Simplex.t -> values:(Pid.t -> Label.t list) -> t
(** [create ~base ~values]: the pseudosphere over the chromatic simplex
    [base], assigning to the vertex coloured [p] the value set [values p].
    @raise Invalid_argument if [base] is not chromatic. *)

val uniform : base:Simplex.t -> Label.t list -> t
(** All base vertices get the same value set — the paper's [psi(S; U)]. *)

val base : t -> Simplex.t

val values : t -> (Pid.t * Label.t list) list
(** Per base pid, the sorted value list. *)

val normalize : t -> t
(** Remove base vertices whose value set is empty (Lemma 4.2: the complex
    is unchanged). *)

val dim : t -> int
(** Dimension of the realized complex: (number of nonempty value sets) - 1. *)

val is_empty : t -> bool
(** No base vertex has a value. *)

val connectivity_bound : t -> int
(** Corollary 6: a pseudosphere of dimension [m] (with nonempty value
    sets) is [(m - 1)]-connected; returns [dim - 1] ([-2] when empty). *)

val inter : t -> t -> t
(** Lemma 4.3: [psi(S0; U) /\ psi(S1; V) = psi(S0 /\ S1; U /\ V)]
    (componentwise).  The result is not normalized. *)

val subsumes : t -> t -> bool
(** [subsumes a b]: does [a]'s realization contain [b]'s?  (Base contains
    base and value sets contain value sets, after normalization.) *)

val equal : t -> t -> bool
(** Equality of normalized symbolic forms (implies equal realizations). *)

type vertex_builder = Pid.t -> Label.t -> Label.t -> Vertex.t
(** [builder pid base_label value] constructs a realized vertex. *)

val default_vertex : vertex_builder
(** [(p, _, u) -> Proc (p, u)]: the paper's plain labelling, which forgets
    the base label. *)

val paired_vertex : vertex_builder
(** [(p, b, u) -> Proc (p, Pair (b, u))]: keeps the base label, so
    realizations of pseudospheres over distinct faces of a common simplex
    intersect exactly as Lemma 4.3 predicts. *)

val realize : ?vertex:vertex_builder -> t -> Complex.t
(** Build the complex.  Facets are the choice tuples: one value per
    (nonempty) base vertex.  Defaults to {!paired_vertex}. *)

val facet_count : t -> int
(** Product of the nonempty value-set sizes (0 if empty pseudosphere). *)

val simplex_count : t -> int
(** Number of nonempty simplices: [prod (1 + |U_i|) - 1]. *)

val binary : int -> t
(** [binary n]: the [n]-dimensional binary pseudosphere
    [psi(P^n; {0, 1})] of Figure 1 — topologically an [n]-sphere. *)

val pp : Format.formatter -> t -> unit
