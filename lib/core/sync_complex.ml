open Psph_topology
open Psph_model

(* Intrinsic value labels: the full heard set (survivors plus a subset of
   K).  Distinct failure sets producing the same heard set share vertices,
   exactly as in Figure 3. *)
let heard_sets s k =
  let survivors = Pid.Set.diff (Simplex.ids s) k in
  Failure.power_set k |> List.map (fun a -> Pid.Set.union survivors a)

let pseudosphere_failing s k =
  let alive = Simplex.ids s in
  let values _ =
    if Pid.Set.is_empty (Pid.Set.diff alive k) then []
    else List.map (fun m -> Label.Pid_set m) (heard_sets s k)
  in
  Psph.create ~base:(Simplex.without_ids k s) ~values

let pseudospheres ~k s =
  Failure.subsets_of_size_at_most (Simplex.ids s) k
  |> List.filter_map (fun fk ->
         let ps = pseudosphere_failing s fk in
         if Psph.is_empty ps then None else Some (fk, ps))

let view_vertex s p base_label = function
  | Label.Pid_set m ->
      let prev = View.of_label base_label in
      let heard =
        Pid.Set.elements m
        |> List.map (fun q ->
               match Simplex.label_of q s with
               | Some l -> (q, View.of_label l)
               | None -> invalid_arg "Sync_complex: heard pid outside simplex")
      in
      Vertex.proc p (View.to_label (View.round ~prev ~heard))
  | _ -> invalid_arg "Sync_complex: value is not a pid set"

let one_round_failing s k =
  Psph.realize ~vertex:(view_vertex s) (pseudosphere_failing s k)

let one_round ~k s =
  List.fold_left
    (fun acc (_, ps) -> Complex.union acc (Psph.realize ~vertex:(view_vertex s) ps))
    Complex.empty (pseudospheres ~k s)

(* The model is not monotone: recursion must visit the facets of every
   S^1_K separately (see Carrier.compose). *)
let rounds ~k ~r s =
  Carrier.compose r s ~branches:(fun s ->
      List.map
        (fun (_, ps) -> Psph.realize ~vertex:(view_vertex s) ps)
        (pseudospheres ~k s))

let over_inputs ~k ~r inputs = Carrier.over_facets (rounds ~k ~r) inputs

let lemma14_rhs s k =
  Psph.realize
    ~vertex:(fun p _ -> function
      | Label.Pid_set m -> Vertex.proc p (Label.Pid_set (Pid.Set.diff k m))
      | _ -> assert false)
    (pseudosphere_failing s k)

let lemma14_map ~k = function
  | Vertex.Proc (p, l) -> (
      match View.of_label l with
      | View.Round { heard; _ } ->
          let m = Pid.Set.of_list (List.map fst heard) in
          Vertex.proc p (Label.Pid_set (Pid.Set.diff k m))
      | View.Init _ | View.Timed_round _ ->
          invalid_arg "Sync_complex.lemma14_map: not a one-round view")
  | (Vertex.Anon _ | Vertex.Bary _) as v -> v

let lemma14_holds s k =
  let lhs = one_round_failing s k and rhs = lemma14_rhs s k in
  Simplicial_map.is_isomorphism_via (lemma14_map ~k) lhs rhs

let realize_intrinsic s pss =
  List.fold_left
    (fun acc ps -> Complex.union acc (Psph.realize ~vertex:(view_vertex s) ps))
    Complex.empty pss

let lemma15_lhs s ks =
  match List.rev ks with
  | [] -> Complex.empty
  | kt :: prefix_rev ->
      let prefix = List.rev prefix_rev in
      let left = realize_intrinsic s (List.map (pseudosphere_failing s) prefix) in
      let right = realize_intrinsic s [ pseudosphere_failing s kt ] in
      Complex.inter left right

let lemma15_rhs s ks =
  match List.rev ks with
  | [] -> Complex.empty
  | kt :: _ ->
      let survivors = Pid.Set.diff (Simplex.ids s) kt in
      let piece p =
        (* psi(S \ K_t; 2^{K_t - {P}}): in the paper's labels the value is
           the subset of K_t a survivor MISSED (Lemma 14's map), so the
           piece for P consists of the states in which every survivor heard
           P's final message *)
        let values _ =
          Failure.power_set (Pid.Set.remove p kt)
          |> List.map (fun a ->
                 Label.Pid_set (Pid.Set.union survivors (Pid.Set.add p a)))
        in
        Psph.create ~base:(Simplex.without_ids kt s) ~values
      in
      realize_intrinsic s (List.map piece (Pid.Set.elements kt))

let lemma15_holds s ks = Complex.equal (lemma15_lhs s ks) (lemma15_rhs s ks)

let lemma16_expected_connectivity ~m ~n ~k = m - (n - k) - 1

let theorem18_lower_bound ~n ~f ~k =
  if n > f + k then (f / k) + 1 else f / k
