open Psph_topology

type t = {
  base : Simplex.t;
  values : (Pid.t * Label.t list) list;
      (* aligned with ids of base, sorted by pid; value lists sorted,
         deduplicated *)
}

let create ~base ~values =
  if not (Simplex.is_chromatic base) then
    invalid_arg "Psph.create: base simplex is not chromatic";
  let vals =
    Pid.Set.elements (Simplex.ids base)
    |> List.map (fun p -> (p, List.sort_uniq Label.compare (values p)))
  in
  { base; values = vals }

let uniform ~base us = create ~base ~values:(fun _ -> us)

let base t = t.base

let values t = t.values

let normalize t =
  let keep = List.filter (fun (_, us) -> us <> []) t.values in
  let keep_pids = Pid.Set.of_list (List.map fst keep) in
  { base = Simplex.restrict_ids keep_pids t.base; values = keep }

let dim t = List.length (List.filter (fun (_, us) -> us <> []) t.values) - 1

let is_empty t = dim t < 0

let connectivity_bound t = dim t - 1

let inter a b =
  let common = Simplex.inter a.base b.base in
  let lookup vals p = match List.assoc_opt p vals with Some us -> us | None -> [] in
  let values p =
    let ua = lookup a.values p and ub = lookup b.values p in
    List.filter (fun u -> List.exists (Label.equal u) ub) ua
  in
  create ~base:common ~values

let subsumes a b =
  let a = normalize a and b = normalize b in
  Simplex.subset b.base a.base
  && List.for_all
       (fun (p, us) ->
         match List.assoc_opt p a.values with
         | None -> false
         | Some us' -> List.for_all (fun u -> List.exists (Label.equal u) us') us)
       b.values

let equal a b =
  let a = normalize a and b = normalize b in
  Simplex.equal a.base b.base
  && List.length a.values = List.length b.values
  && List.for_all2
       (fun (p, us) (q, vs) ->
         Pid.equal p q
         && List.length us = List.length vs
         && List.for_all2 Label.equal us vs)
       a.values b.values

type vertex_builder = Pid.t -> Label.t -> Label.t -> Vertex.t

let default_vertex p _base u = Vertex.proc p u

let paired_vertex p base u = Vertex.proc p (Label.Pair (base, u))

let realize ?(vertex = paired_vertex) t =
  let t = normalize t in
  let base_label p =
    match Simplex.label_of p t.base with Some l -> l | None -> assert false
  in
  (* facets: one value per base vertex *)
  let rec facets = function
    | [] -> [ [] ]
    | (p, us) :: rest ->
        let tails = facets rest in
        List.concat_map
          (fun u -> List.map (fun tl -> vertex p (base_label p) u :: tl) tails)
          us
  in
  Complex.of_facets (List.map Simplex.of_list (facets t.values))

let facet_count t =
  let t = normalize t in
  if is_empty t then 0
  else List.fold_left (fun acc (_, us) -> acc * List.length us) 1 t.values

let simplex_count t =
  let t = normalize t in
  List.fold_left (fun acc (_, us) -> acc * (1 + List.length us)) 1 t.values - 1

let binary n =
  uniform ~base:(Simplex.proc_simplex n) [ Label.Int 0; Label.Int 1 ]

let pp ppf t =
  Format.fprintf ppf "psi(%a; %a)" Simplex.pp t.base
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (fun ppf (p, us) ->
         Format.fprintf ppf "%a:{%a}" Pid.pp p
           (Format.pp_print_list
              ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
              Label.pp)
           us))
    t.values
