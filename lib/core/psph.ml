open Psph_topology

type t = {
  base : Simplex.t;
  values : (Pid.t * Label.t list) list;
      (* aligned with ids of base, sorted by pid; value lists sorted,
         deduplicated *)
}

let create ~base ~values =
  if not (Simplex.is_chromatic base) then
    invalid_arg "Psph.create: base simplex is not chromatic";
  let vals =
    Pid.Set.elements (Simplex.ids base)
    |> List.map (fun p -> (p, List.sort_uniq Label.compare (values p)))
  in
  { base; values = vals }

let uniform ~base us = create ~base ~values:(fun _ -> us)

let base t = t.base

let values t = t.values

let normalize t =
  let keep = List.filter (fun (_, us) -> us <> []) t.values in
  let keep_pids = Pid.Set.of_list (List.map fst keep) in
  { base = Simplex.restrict_ids keep_pids t.base; values = keep }

let dim t = List.length (List.filter (fun (_, us) -> us <> []) t.values) - 1

let is_empty t = dim t < 0

let connectivity_bound t = dim t - 1

(* [us] and [vs] sorted (and deduplicated) by Label.compare: intersection
   and containment are single merge walks, not quadratic scans *)
let rec inter_labels us vs =
  match (us, vs) with
  | [], _ | _, [] -> []
  | u :: us', v :: vs' ->
      let c = Label.compare u v in
      if c = 0 then u :: inter_labels us' vs'
      else if c < 0 then inter_labels us' vs
      else inter_labels us vs'

let rec sub_labels us vs =
  (* us subseteq vs *)
  match (us, vs) with
  | [], _ -> true
  | _ :: _, [] -> false
  | u :: us', v :: vs' ->
      let c = Label.compare u v in
      if c = 0 then sub_labels us' vs'
      else if c > 0 then sub_labels us vs'
      else false

let inter a b =
  let common = Simplex.inter a.base b.base in
  let ids = Simplex.ids common in
  (* both value lists are sorted by pid: one merge walk aligns them, keeping
     exactly the pids of the common base (ids common subseteq both pid
     lists, so every survivor is produced) *)
  let rec walk va vb =
    match (va, vb) with
    | [], _ | _, [] -> []
    | (p, us) :: va', (q, vs) :: vb' ->
        let c = Pid.compare p q in
        if c < 0 then walk va' vb
        else if c > 0 then walk va vb'
        else
          let rest = walk va' vb' in
          if Pid.Set.mem p ids then (p, inter_labels us vs) :: rest else rest
  in
  { base = common; values = walk a.values b.values }

let subsumes a b =
  let a = normalize a and b = normalize b in
  Simplex.subset b.base a.base
  &&
  (* both value lists sorted by pid: advance through a.values looking for
     each pid of b.values in turn *)
  let rec walk vb va =
    match (vb, va) with
    | [], _ -> true
    | _ :: _, [] -> false
    | (p, us) :: vb', (q, vs) :: va' ->
        let c = Pid.compare p q in
        if c = 0 then sub_labels us vs && walk vb' va'
        else if c > 0 then walk vb va'
        else false
  in
  walk b.values a.values

let equal a b =
  let a = normalize a and b = normalize b in
  Simplex.equal a.base b.base
  && List.length a.values = List.length b.values
  && List.for_all2
       (fun (p, us) (q, vs) ->
         Pid.equal p q
         && List.length us = List.length vs
         && List.for_all2 Label.equal us vs)
       a.values b.values

type vertex_builder = Pid.t -> Label.t -> Label.t -> Vertex.t

let default_vertex p _base u = Vertex.proc p u

let paired_vertex p base u = Vertex.proc p (Label.Pair (base, u))

let realize ?(vertex = paired_vertex) t =
  let t = normalize t in
  let base_label p =
    match Simplex.label_of p t.base with Some l -> l | None -> assert false
  in
  (* The face closure of a pseudosphere is itself a product: a simplex
     picks, for each process independently, either one of its vertices or
     nothing.  Enumerating that product builds the whole closure directly —
     no per-facet 2^d face expansion, no set-membership rechecks.  Vertices
     of distinct processes are ordered by pid regardless of label, so with
     each per-process vertex list pre-sorted, a product assembled in pid
     order is strictly sorted and needs no re-sort. *)
  let cols =
    List.map
      (fun (p, us) ->
        List.sort_uniq Vertex.compare (List.map (fun u -> vertex p (base_label p) u) us))
      t.values
  in
  let rec faces = function
    | [] -> [ [] ]
    | vxs :: rest ->
        let tails = faces rest in
        List.fold_left
          (fun acc v -> List.fold_left (fun acc tl -> (v :: tl) :: acc) acc tails)
          tails vxs
  in
  Complex.of_closure (List.rev_map Simplex.of_sorted_list (faces cols))

let facet_count t =
  let t = normalize t in
  if is_empty t then 0
  else List.fold_left (fun acc (_, us) -> acc * List.length us) 1 t.values

let simplex_count t =
  let t = normalize t in
  List.fold_left (fun acc (_, us) -> acc * (1 + List.length us)) 1 t.values - 1

let binary n =
  uniform ~base:(Simplex.proc_simplex n) [ Label.Int 0; Label.Int 1 ]

let pp ppf t =
  Format.fprintf ppf "psi(%a; %a)" Simplex.pp t.base
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (fun ppf (p, us) ->
         Format.fprintf ppf "%a:{%a}" Pid.pp p
           (Format.pp_print_list
              ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
              Label.pp)
           us))
    t.values
