(** Round-by-round suspicion structures (Gafni's unification, Section 2).

    Gafni's round-by-round failure detector presents every timing model the
    same way: in each round a process receives the states of the processes
    it does {e not} suspect, and the models differ only in which suspect
    sets the detector may output.  In pseudosphere terms a suspicion
    structure {e is} a value assignment: the paper's Lemmas 11 and 14 fall
    out as instances.

    This module makes that precise and machine-checked: a {!structure}
    assigns each process its set of allowed suspect sets; {!one_round}
    builds the corresponding complex; and the [agrees_*] checks verify that
    the asynchronous and synchronous one-round complexes are exactly the
    RRFD complexes for the appropriate structures. *)

open Psph_topology

type structure = Pid.t -> Pid.Set.t list
(** For each process, the suspect sets the detector may output in this
    round (each a set of {e other} processes). *)

val async_structure : n:int -> f:int -> alive:Pid.Set.t -> structure
(** Asynchronous f-resilience: any suspect set of size at most [f] not
    containing oneself (so at least [n - f + 1] states are received). *)

val sync_structure : alive:Pid.Set.t -> failed:Pid.Set.t -> structure
(** Synchronous round with failure set [K]: suspects are exactly a subset
    of [K] (live processes are never suspected, crashed ones may still be
    heard). *)

val one_round : Simplex.t -> structure -> Complex.t
(** One RRFD round from the global state [S]: each process's new view
    records the states of the unsuspected processes.  Suspect sets leaving
    fewer than one heard process are allowed but vacuous (a process always
    hears itself). *)

val agrees_with_async : n:int -> f:int -> Simplex.t -> bool
(** [one_round s (async_structure ...)] equals
    [Async_complex.one_round ~n ~f s].  The "at most f suspects" detector
    matches the "at least n - f + 1 messages" rule only under full
    participation.  @raise Invalid_argument on a proper face of [P^n]. *)

val agrees_with_sync : Simplex.t -> Pid.Set.t -> bool
(** [one_round (S \ K) (sync_structure ...)] equals
    [Sync_complex.one_round_failing s k]. *)
