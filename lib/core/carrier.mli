(** Applying a round operator across a complex.

    The paper's iterated constructions "replace each simplex of the
    one-round complex with the complex produced by the remaining rounds"
    (Section 1).  In the asynchronous model the construction is monotone —
    the complex of a face is a subcomplex of the complex of a facet — so
    the union over the facets of [A^1] already contains the union over all
    simplexes and {!iterate} folds over facets.  (The synchronous and
    semi-synchronous models are NOT monotone in this sense; their [rounds]
    functions recurse over the facets of each per-failure-set pseudosphere
    instead.) *)

open Psph_topology

val over_facets : (Simplex.t -> Complex.t) -> Complex.t -> Complex.t
(** Union of the operator applied to every facet. *)

val iterate : (Simplex.t -> Complex.t) -> int -> Simplex.t -> Complex.t
(** [iterate step r s]: apply the one-round operator [r] times, starting
    from the single simplex [s].  [iterate step 0 s] is the solid [s]. *)

val compose : branches:(Simplex.t -> Complex.t list) -> int -> Simplex.t -> Complex.t
(** [compose ~branches r s]: the generic [(r, state)]-memoized
    round-composition operator shared by every registered model.
    [branches s] lists the one-round complexes whose facets are each
    recursed on {e separately} — the union of branch facets is not enough
    for the non-monotone models, where an exact-failure facet can be a
    face of the failure-free facet yet have continuations of its own.
    For a monotone model, pass a single branch (the one-round complex).
    Results are memoized on [(r, Intern.simplex_id s)], collapsing the
    exponentially many recursion branches that revisit the same (round,
    global-state) pair.  [compose ~branches 0 s] is the solid [s]. *)
