(** The iterated immediate snapshot protocol complex (Borowsky–Gafni).

    The wait-free one-round IIS complex of a simplex [S] is the standard
    chromatic subdivision of [S]; iterating gives the IIS model's protocol
    complexes.  Section 6 of the paper presents its asynchronous
    message-passing round as "something like a message-passing analog" of
    this model; the bridge results here make the analogy exact and
    machine-checked:

    - the IIS complex coincides with the complex enumerated from
      shared-memory immediate-snapshot executions ({!Psph_model.Snapshot});
    - it is isomorphic to the standard chromatic subdivision;
    - it is a {e subcomplex} of the wait-free one-round message-passing
      complex [A^1] with [f = n] (a snapshot view is a legal heard set);
    - unlike [A^1] it is contractible (a subdivision), not merely
      [(f-1)]-connected. *)

open Psph_topology

val one_round : Simplex.t -> Complex.t
(** The one-round wait-free IIS complex with full-view vertex labels. *)

val rounds : r:int -> Simplex.t -> Complex.t
(** Iterated: apply to every facet, union ([r = 0] is the solid input). *)

val over_inputs : r:int -> Complex.t -> Complex.t

val enumerated : r:int -> (Pid.t * Psph_model.Value.t) list -> Complex.t
(** The same complex from the operational semantics. *)

val isomorphic_to_chromatic : Simplex.t -> bool
(** [one_round s] is isomorphic to
    [Subdivision.chromatic_of_simplex s]. *)

val subcomplex_of_async : n:int -> Simplex.t -> bool
(** [one_round s] is a subcomplex of the wait-free
    [Async_complex.one_round ~n ~f:n s]. *)
