(** Executable forms of Theorems 5 and 7.

    Theorem 5: if a protocol [P] (viewed as a map from simplexes to
    complexes) sends every face [S^l] of [S^m] to an [(l - c - 1)]-connected
    complex, then [P(psi(S^m; U_0, ..., U_m))] is [(m - c - 1)]-connected
    for all nonempty value sets.  Theorem 7 extends this to unions
    [U_i psi(S^m; A_i)] with a common nonempty intersection.

    These are statements about {e any} model of computation; this module
    checks both hypothesis and conclusion numerically for a given one-round
    operator on a given instance, so each experiment row is an observed
    instance of the theorem (hypothesis verified, conclusion verified). *)

open Psph_topology

type operator = Simplex.t -> Complex.t
(** A "protocol" in the theorem's sense. *)

type instance = {
  hypothesis_holds : bool;
      (** every face [S^l] maps to an [(l - c - 1)]-connected complex *)
  conclusion_holds : bool;
      (** the image of the pseudosphere (or union) is
          [(m - c - 1)]-connected *)
  faces_checked : int;
}

val check_theorem5 :
  op:operator -> c:int -> base:Simplex.t -> values:(Pid.t -> Label.t list) ->
  instance
(** Apply the operator to every facet of [psi(base; values)] and measure.
    The pseudosphere image is the union of the operator over the
    pseudosphere's facets.  The value labels replace the base labels
    wholesale (plain labelling), so for the protocol-complex operators the
    base should be an input simplex and the values encoded initial
    views. *)

val check_theorem7 :
  op:operator -> c:int -> base:Simplex.t -> families:Label.t list list ->
  instance
(** Theorem 7 on [U_i psi(base; A_i)]; requires the [A_i] to have a
    nonempty intersection.  @raise Invalid_argument otherwise. *)

val holds : instance -> bool
(** The theorem's implication was observed: hypothesis implies
    conclusion.  (Vacuously true when the hypothesis fails.) *)
