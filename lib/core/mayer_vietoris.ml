open Psph_topology

type proof =
  | Empty
  | Axiom of { ps : Psph.t; conn : int }
  | Disjoint of { left : proof; right : proof }
  | Glue of { conn : int; left : proof; right : proof; inter : proof }

let conn = function
  | Empty -> -2
  | Axiom { conn; _ } -> conn
  | Disjoint _ -> -1
  | Glue { conn; _ } -> conn

(* Drop pseudospheres subsumed by another element: the union is unchanged
   and derivations stay small. *)
let prune ?(subsume = true) pss =
  let pss = List.filter (fun ps -> not (Psph.is_empty ps)) pss in
  (* dedupe equal elements, keeping first occurrences *)
  let deduped =
    List.fold_left
      (fun acc ps ->
        if List.exists (Psph.equal ps) acc then acc else ps :: acc)
      [] pss
    |> List.rev
  in
  if not subsume then deduped
  else
    (* drop elements strictly subsumed by another remaining element *)
    List.filter
      (fun ps ->
        not
          (List.exists
             (fun other -> (not (Psph.equal other ps)) && Psph.subsumes other ps)
             deduped))
      deduped

let rec union_connectivity ?(prune_subsumed = true) pss =
  match prune ~subsume:prune_subsumed pss with
  | [] -> Empty
  | [ ps ] -> Axiom { ps; conn = Psph.connectivity_bound ps }
  | pss -> (
      let rec split_last acc = function
        | [] -> assert false
        | [ x ] -> (List.rev acc, x)
        | x :: rest -> split_last (x :: acc) rest
      in
      let prefix, last = split_last [] pss in
      let left = union_connectivity ~prune_subsumed prefix in
      let right = Axiom { ps = last; conn = Psph.connectivity_bound last } in
      let inters =
        prune ~subsume:prune_subsumed (List.map (fun ps -> Psph.inter ps last) prefix)
      in
      match inters with
      | [] -> Disjoint { left; right }
      | _ :: _ ->
          let inter = union_connectivity ~prune_subsumed inters in
          let c = min (min (conn left) (conn right)) (conn inter + 1) in
          Glue { conn = c; left; right; inter })

let union_realize ?vertex pss =
  List.fold_left
    (fun acc ps -> Complex.union acc (Psph.realize ?vertex ps))
    Complex.empty pss

let validate ?vertex pss proof =
  let c = union_realize ?vertex pss in
  Homology.is_k_connected c (conn proof)

let rec size = function
  | Empty -> 0
  | Axiom _ -> 1
  | Disjoint { left; right } -> 1 + size left + size right
  | Glue { left; right; inter; _ } -> 1 + size left + size right + size inter

let rec pp ppf = function
  | Empty -> Format.fprintf ppf "empty (conn -2)"
  | Axiom { ps; conn } ->
      Format.fprintf ppf "@[<h>Cor6: %a is %d-connected@]" Psph.pp ps conn
  | Disjoint { left; right } ->
      Format.fprintf ppf
        "@[<v 2>disjoint pieces: union is (-1)-connected@,left: %a@,right: %a@]"
        pp left pp right
  | Glue { conn; left; right; inter } ->
      Format.fprintf ppf
        "@[<v 2>Thm2: union is %d-connected@,K: %a@,L: %a@,K/\\L: %a@]" conn pp
        left pp right pp inter
