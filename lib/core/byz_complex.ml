open Psph_topology
open Psph_model

(* What a survivor believes process [q] sent this round.  Version 0 is the
   value a correct [q] would have sent — deliberately the same label, so
   the execution in which an accused process behaved correctly is a face
   of the failure-free execution (the gluing the connectivity argument
   needs).  Versions >= 1 are forgeries, tagged so they can never collide
   with an honest label (honest multi-round labels pair a base with a
   heard *list*, never with a bare [Int]). *)
let claim s q v =
  match Simplex.label_of q s with
  | None -> invalid_arg "Byz_complex: claimed pid outside simplex"
  | Some l -> if v = 0 then l else Label.Pair (l, Label.Int v)

let value_label entries =
  Label.List
    (List.sort compare
       (List.map (fun (q, c) -> Label.Pair (Label.Pid q, c)) entries))

(* all ways the accused set [ks] can present itself to one survivor: each
   accused process independently stays silent or is heard with one of
   [versions] claims (version 0 = the honest value) *)
let assignments s ks ~versions =
  Pid.Set.fold
    (fun q acc ->
      let opts = None :: List.init versions (fun v -> Some (q, claim s q v)) in
      List.concat_map
        (fun partial ->
          List.map
            (fun o -> match o with None -> partial | Some e -> e :: partial)
            opts)
        acc)
    ks [ [] ]

(* one piece per accused set K: the pseudosphere over S \ K whose value
   sets enumerate, per survivor independently, which of K it heard and
   with which claims — survivors are always heard, honestly *)
let pseudosphere_accusing s ks ~versions =
  let alive = Simplex.ids s in
  let survivors = Pid.Set.diff alive ks in
  let values _ =
    if Pid.Set.is_empty survivors then []
    else begin
      let truthful =
        List.map (fun q -> (q, claim s q 0)) (Pid.Set.elements survivors)
      in
      List.map
        (fun extra -> value_label (truthful @ extra))
        (assignments s ks ~versions)
    end
  in
  Psph.create ~base:(Simplex.without_ids ks s) ~values

(* the adversary's remaining exposure budget is determined by the state
   itself: processes exposed in earlier rounds have left the simplex, so
   [spent = (n + 1) - |alive|] — which keeps [Carrier.compose]'s
   per-simplex memoization sound *)
let accusation_sets ~n ~k ~t s =
  let alive = Simplex.ids s in
  let spent = n + 1 - Pid.Set.cardinal alive in
  let cap = min k (max 0 (t - spent)) in
  Failure.subsets_of_size_at_most alive cap
  |> List.filter (fun ks -> Pid.Set.cardinal ks < Pid.Set.cardinal alive)

let pseudospheres ~n ~k ~t ~versions s =
  accusation_sets ~n ~k ~t s
  |> List.filter_map (fun ks ->
         let ps = pseudosphere_accusing s ks ~versions in
         if Psph.is_empty ps then None else Some (ks, ps))

(* realized with the paired vertex builder, so a vertex carries its full
   information: previous state plus everything heard (with claims) *)
let one_round ~n ~k ~t ~versions s =
  List.fold_left
    (fun acc (_, ps) -> Complex.union acc (Psph.realize ps))
    Complex.empty
    (pseudospheres ~n ~k ~t ~versions s)

let rounds ~n ~k ~t ~versions ~r s =
  Carrier.compose r s ~branches:(fun s ->
      List.map (fun (_, ps) -> Psph.realize ps) (pseudospheres ~n ~k ~t ~versions s))

let over_inputs ~n ~k ~t ~versions ~r inputs =
  Carrier.over_facets (rounds ~n ~k ~t ~versions ~r) inputs

(* the Mendes-Herlihy shape: for r <= ceil(t/k) rounds (budget not yet
   exhausted) and n >= rk + k, the r-round complex over an m-simplex is
   (m - (n - k_r) - 1)-connected, where k_r = min(k, t - (r-1)k) is the
   worst-case exposure budget left for the last round.  At m = n and
   k | t this is exactly (k - 1)-connectivity for ceil(t/k) rounds. *)
let expected_connectivity ~m ~n ~k ~t ~r =
  if k >= 1 && r >= 1 && ((r - 1) * k) < t && n >= (r * k) + k then
    Some (m - (n - min k (t - ((r - 1) * k))) - 1)
  else None
