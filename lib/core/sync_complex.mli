(** The synchronous protocol complex (Section 7).

    One round from input simplex [S] in which exactly the processes of [K]
    crash: every survivor receives the state of every survivor, plus the
    states of an arbitrary subset of [K] (a crashing process's last sends
    reach some processes and not others).  Lemma 14:
    [S^1_K(S) ~ psi(S \ K; 2^K)].  The one-round complex [S^1(S)] is the
    union over all [K] with [|K| <= k]; its intersections are unions of
    pseudospheres (Lemma 15), giving connectivity (Lemma 16) and, iterated,
    Lemma 17 and the Theorem 18 round lower bound for k-set agreement. *)

open Psph_topology

val one_round_failing : Simplex.t -> Pid.Set.t -> Complex.t
(** [S^1_K(S)]: the executions in which exactly [K] fails.  Empty if [K]
    contains every process of [S]. *)

val one_round : k:int -> Simplex.t -> Complex.t
(** [S^1(S)]: union over failure sets of size [<= k] (proper subsets of
    [ids S]). *)

val rounds : k:int -> r:int -> Simplex.t -> Complex.t
(** [S^r(S)]: at most [k] crashes per round, iterated substitution. *)

val over_inputs : k:int -> r:int -> Complex.t -> Complex.t

val pseudospheres : k:int -> Simplex.t -> (Pid.Set.t * Psph.t) list
(** The symbolic decomposition of [S^1(S)] with {e intrinsic} value labels:
    for failure set [K] the value set of every survivor is
    [{survivors + A | A subset of K}] (encoded as [Pid_set]), so shared
    global states coincide across different [K].  Ordered by the paper's
    size-then-lex order on [K]. *)

val pseudosphere_failing : Simplex.t -> Pid.Set.t -> Psph.t
(** The single symbolic pseudosphere for failure set [K]. *)

val lemma14_rhs : Simplex.t -> Pid.Set.t -> Complex.t
(** [psi(S \ K; 2^K)] with the paper's labels: the subset of [K] a
    survivor did {e not} hear from. *)

val lemma14_map : k:Pid.Set.t -> Vertex.t -> Vertex.t
(** [L (P_i, M) = (x_i, K - ids M)] from the proof of Lemma 14. *)

val lemma14_holds : Simplex.t -> Pid.Set.t -> bool

val lemma15_lhs : Simplex.t -> Pid.Set.t list -> Complex.t
(** For the ordered failure sets [K_0 < ... < K_t], the intersection
    [(U_{i<t} S^1_{K_i}) /\ S^1_{K_t}] (computed on realized complexes). *)

val lemma15_rhs : Simplex.t -> Pid.Set.t list -> Complex.t
(** The paper's right-hand side: [U_{P in K_t} psi(S \ K_t; 2^{K_t - P})]
    — realized with intrinsic labels so it can be compared with
    {!lemma15_lhs} directly. *)

val lemma15_holds : Simplex.t -> Pid.Set.t list -> bool

val lemma16_expected_connectivity : m:int -> n:int -> k:int -> int
(** Lemma 16/17: [S^r(S^m)] is [(m - (n - k) - 1)]-connected (one round
    needs [n >= 2k]; [r] rounds need [n >= rk + k]). *)

val theorem18_lower_bound : n:int -> f:int -> k:int -> int
(** The Theorem 18 round lower bound for synchronous f-resilient k-set
    agreement with [n + 1] processes: [floor (f/k) + 1] when [n > f + k],
    and [floor (f/k)] when [n <= f + k]. *)
