(** The symbolic connectivity tier.

    The paper never eliminates a boundary matrix: connectivity of a round
    complex is derived symbolically — Corollary 6 bounds each pseudosphere,
    Theorem 2 glues them along the ordered prefix intersections, and the
    closed-form lemmas (12, 16/17, 21) extend the bound to [r] rounds.
    This module packages those derivations as a solver tier: given a
    registered model and spec (or a raw pseudosphere query) it produces a
    connectivity {e lower bound} in O(formula) time, without realizing the
    complex — the fast path the query engine tries before falling back to
    Morse-reduced numeric elimination.

    Because every rule here bounds from below, a numeric cross-check must
    assert [numeric >= symbolic], not equality: e.g. the async one-round
    complex at [f >= 1] is contractible while its pseudosphere-union bound
    is [n - 1]. *)

type symbolic = {
  connectivity : int;  (** the derived lower bound *)
  rule : string;
      (** which rule concluded it: ["Theorem 2 + Corollary 6"], a lemma
          citation from {!Model_complex.MODEL.connectivity_lemma},
          ["Corollary 6"], or ["solid input simplex (r=0)"] *)
  steps : int;  (** proof size: {!Mayer_vietoris.size}, or 1 for a lemma *)
  proof : Mayer_vietoris.proof option;
      (** the full derivation when the Mayer–Vietoris tier answered *)
}

val standard_inputs : int -> (Psph_topology.Pid.t * Psph_model.Value.t) list
(** [[ (i, i mod 2) ]] for [i = 0..n] — the canonical input assignment all
    front ends use for an [n]-dimensional query. *)

val standard_input : int -> Psph_topology.Simplex.t
(** {!standard_inputs} as an input simplex (the engine's build base). *)

val mv_piece_cap : int
(** Largest decomposition (piece count) the Mayer–Vietoris tier derives;
    above it the recursion's worst-case exponential cost outweighs the
    symbolic win and the solver falls through to the lemma tier. *)

val pieces :
  Model_complex.model -> Model_complex.spec -> Psph.t list option
(** The model's pseudosphere decomposition over {!standard_input}, when
    registered and [spec.r = 1] (the decomposition describes one round). *)

val symbolic_model :
  Model_complex.model -> Model_complex.spec -> symbolic option
(** Try the symbolic tiers for a model query, best rule first: [r = 0] is
    the solid (contractible) input; at [r = 1] a registered decomposition
    of at most {!mv_piece_cap} pieces gets a full Theorem 2 + Corollary 6
    derivation; otherwise the model's closed-form lemma, when its
    hypothesis holds.  [None] when no rule applies.
    @raise Invalid_argument when the spec fails the model's [validate]. *)

val symbolic_psph : n:int -> values:int -> symbolic option
(** Corollary 6 for the uniform pseudosphere [psi(P^n; {0..values-1})]:
    connectivity [>= n - 1] (exactly [-2] when empty), computed without
    realizing the [values^(n+1)]-facet complex. *)
