open Psph_topology
open Psph_model

type adversary = Rooted | Strong | All

let adversary_of_int = function
  | 0 -> Some Rooted
  | 1 -> Some Strong
  | 2 -> Some All
  | _ -> None

let int_of_adversary = function Rooted -> 0 | Strong -> 1 | All -> 2

let adversary_name = function
  | Rooted -> "rooted"
  | Strong -> "strong"
  | All -> "all"

let adversary_of_string = function
  | "rooted" -> Some Rooted
  | "strong" -> Some Strong
  | "all" -> Some All
  | _ -> None

let allowed adv g =
  match adv with
  | All -> true
  | Rooted -> Round_schedule.rooted g
  | Strong -> Round_schedule.strongly_connected g

let heard_label s qs =
  Label.List
    (List.map
       (fun q ->
         match Simplex.label_of q s with
         | Some l -> Label.Pair (Label.Pid q, l)
         | None -> invalid_arg "Dyn_net_complex: in-neighbor outside simplex")
       (Pid.Set.elements qs))

(* full-information state after one round under digraph [g]: each process
   keeps its previous state and records the (pid, state) pairs it heard *)
let facet_of s g =
  Simplex.of_procs
    (Pid.Map.fold
       (fun p qs acc ->
         match Simplex.label_of p s with
         | None -> acc
         | Some prev -> (p, Label.Pair (prev, heard_label s qs)) :: acc)
       g [])

let digraphs_of adv s =
  Round_schedule.digraphs ~alive:(Simplex.ids s) |> List.filter (allowed adv)

let one_round adv s =
  Complex.of_facets (List.map (facet_of s) (digraphs_of adv s))

let rounds adv ~r s =
  Carrier.compose r s ~branches:(fun s ->
      List.map (fun g -> Complex.of_simplex (facet_of s g)) (digraphs_of adv s))

let over_inputs adv ~r inputs = Carrier.over_facets (rounds adv ~r) inputs

(* No process ever leaves the carrier in a dynamic network, so the r-round
   complex over an m-simplex keeps every facet at dimension m.  For the
   rooted and unrestricted classes it is connected (0-connected): the
   digraph in which some root broadcasts and nothing else is delivered
   gives each non-root a vertex shared with every other rooted digraph
   having the same root-silence, and varying one in-neighborhood at a time
   walks any digraph to such a star while staying rooted; across rounds
   the shared faces glue the pieces.  The strong class has no such
   one-edge-at-a-time path through shared solo vertices, so no symbolic
   claim is made and the solver falls back to the numeric tier. *)
let expected_connectivity adv ~m:_ ~r =
  if r = 0 then None (* solver's r = 0 tier already answers *)
  else match adv with Rooted | All -> Some 0 | Strong -> None
