open Psph_topology
open Psph_model

let simplex_of_inputs assoc =
  Simplex.of_procs
    (List.map (fun (p, v) -> (p, View.to_label (View.init v))) assoc)

let pseudosphere ~n ~values =
  Psph.create
    ~base:(Simplex.proc_simplex n)
    ~values:(fun _ -> List.map (fun v -> View.to_label (View.init v)) values)

let make ~n ~values =
  (* base labels are Unit; the realized vertex keeps only the view label *)
  Psph.realize ~vertex:Psph.default_vertex (pseudosphere ~n ~values)

let plain ~n ~values =
  Psph.realize ~vertex:Psph.default_vertex
    (Psph.create
       ~base:(Simplex.proc_simplex n)
       ~values:(fun _ -> List.map Value.to_label values))

let binary n = plain ~n ~values:[ 0; 1 ]
