open Psph_topology
open Psph_model

(* Heard-set options for an alive process: subsets [M] of the alive set
   with [self in M] and [|M| >= n - f + 1].  Only subsets of feasible size
   are enumerated (in the same size-then-lex order the filtered power set
   produced), instead of generating all 2^|others| and filtering. *)
let heard_options ~n ~f ~alive self =
  let others = Pid.Set.remove self alive in
  let card = Pid.Set.cardinal others in
  let lo = max 0 (n - f) in
  if card < lo then []
  else
    List.init (card - lo + 1) (fun i -> lo + i)
    |> List.concat_map (fun size -> Failure.subsets_of_size others size)
    |> List.map (fun m -> Pid.Set.add self m)

let pseudosphere ~n ~f s =
  let alive = Simplex.ids s in
  let values p =
    if Pid.Set.cardinal alive < n - f + 1 then []
    else List.map (fun m -> Label.Pid_set m) (heard_options ~n ~f ~alive p)
  in
  Psph.create ~base:s ~values

let view_vertex s p base_label = function
  | Label.Pid_set m ->
      let prev = View.of_label base_label in
      let heard =
        Pid.Set.elements m
        |> List.map (fun q ->
               match Simplex.label_of q s with
               | Some l -> (q, View.of_label l)
               | None -> invalid_arg "Async_complex: heard pid outside simplex")
      in
      Vertex.proc p (View.to_label (View.round ~prev ~heard))
  | _ -> invalid_arg "Async_complex: value is not a pid set"

let one_round ~n ~f s =
  Psph.realize ~vertex:(view_vertex s) (pseudosphere ~n ~f s)

(* Monotone (a face's complex is a subcomplex of a facet's), so a single
   branch suffices; the shared operator adds (r, state) memoization. *)
let rounds ~n ~f ~r s =
  Carrier.compose r s ~branches:(fun s -> [ one_round ~n ~f s ])

let over_inputs ~n ~f ~r inputs = Carrier.over_facets (rounds ~n ~f ~r) inputs

let lemma11_map = function
  | Vertex.Proc (p, l) -> (
      match View.of_label l with
      | View.Round { heard; _ } ->
          let m = Pid.Set.of_list (List.map fst heard) in
          Vertex.proc p (Label.Pid_set (Pid.Set.remove p m))
      | View.Init _ | View.Timed_round _ ->
          invalid_arg "Async_complex.lemma11_map: not a one-round view")
  | (Vertex.Anon _ | Vertex.Bary _) as v -> v

let lemma11_rhs ~n ~f s =
  (* plain labelling with self removed, as in the paper's statement *)
  Psph.realize
    ~vertex:(fun p _ -> function
      | Label.Pid_set m -> Vertex.proc p (Label.Pid_set (Pid.Set.remove p m))
      | _ -> assert false)
    (pseudosphere ~n ~f s)

let lemma11_holds ~n ~f s =
  let lhs = one_round ~n ~f s and rhs = lemma11_rhs ~n ~f s in
  Simplicial_map.is_isomorphism_via lemma11_map lhs rhs

let lemma12_expected_connectivity ~m ~n ~f = m - (n - f) - 1

let corollary13_impossible ~f ~k = k <= f
