(** Input complexes.

    "Because any process can start with any input from V, the input complex
    to k-set agreement is the pseudosphere [psi(P^n; V)]" (Section 5).
    Vertices carry initial full-information views so the protocol-complex
    constructions can be applied directly to input simplexes. *)

open Psph_topology
open Psph_model

val simplex_of_inputs : (Pid.t * Value.t) list -> Simplex.t
(** The input simplex for a fixed assignment: vertex labels are encoded
    initial views. *)

val make : n:int -> values:Value.t list -> Complex.t
(** [psi(P^n; V)] with initial-view vertex labels: every assignment of
    values to the [n + 1] processes is a facet. *)

val pseudosphere : n:int -> values:Value.t list -> Psph.t
(** The symbolic form of {!make}. *)

val plain : n:int -> values:Value.t list -> Complex.t
(** Same complex with bare [Int] labels (used for figures and display). *)

val binary : int -> Complex.t
(** [plain] with values [{0, 1}] — Figure 1's construction. *)
