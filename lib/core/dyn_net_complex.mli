(** Directed dynamic networks under a message adversary
    (Rincon Galeana-Kuznetsov-Rieutord-Schmid, PAPERS.md).

    Each round the adversary picks one communication digraph from its
    class; a process receives exactly from its in-neighborhood (always
    including itself) and the full-information protocol records what it
    heard.  Unlike the crash models there is no failure discipline and no
    process ever leaves the carrier — the adversary classes restrict the
    {e shape} of each round's digraph instead:

    - {!Rooted}: some process reaches everyone (broadcastable rounds);
    - {!Strong}: every process reaches everyone;
    - {!All}: unrestricted — any digraph with self-loops. *)

open Psph_topology
open Psph_model

type adversary = Rooted | Strong | All

val adversary_of_int : int -> adversary option
val int_of_adversary : adversary -> int
val adversary_name : adversary -> string
val adversary_of_string : string -> adversary option

val allowed : adversary -> Round_schedule.digraph -> bool
(** Whether the class permits this round digraph. *)

val facet_of : Simplex.t -> Round_schedule.digraph -> Simplex.t
(** The global state after one round under digraph [g]: process [p]'s new
    label pairs its previous state with the sorted [(pid, state)] list of
    its in-neighborhood. *)

val one_round : adversary -> Simplex.t -> Complex.t
(** One facet per digraph the adversary may choose. *)

val rounds : adversary -> r:int -> Simplex.t -> Complex.t
(** [r]-fold composition via {!Carrier.compose}. *)

val over_inputs : adversary -> r:int -> Complex.t -> Complex.t

val expected_connectivity : adversary -> m:int -> r:int -> int option
(** [Some 0] (connected) for {!Rooted} and {!All} at [r >= 1] — rooted
    digraphs glue through the star rounds in which only a root speaks;
    [None] for {!Strong}, which the solver resolves numerically. *)
