(** The asynchronous protocol complex (Section 6).

    One round: each process sends its state to all, and receives at least
    [n - f + 1] of the messages sent that round (including its own) —
    the most it can count on when up to [f] processes may fail.  Lemma 11:
    the one-round complex from input simplex [S] is the single pseudosphere
    [psi(S; 2^{P - P_0}_{>= n - f}, ...)], vertices labelled by the sets of
    {e other} processes heard from.

    The [r]-round complex iterates the construction, with vertices carrying
    full-information views so that states reached from different
    intermediate global states stay distinct.

    All constructors take the system dimension [n] ([n + 1] processes) and
    failure budget [f] explicitly; the input simplex may be a face of
    [P^n] (the participating set), in which case the complex is empty when
    fewer than [n - f + 1] processes participate. *)

open Psph_topology

val one_round : n:int -> f:int -> Simplex.t -> Complex.t
(** [A^1(S)]: vertex labels are encoded one-round views. *)

val rounds : n:int -> f:int -> r:int -> Simplex.t -> Complex.t
(** [A^r(S)] by iterated substitution; [r = 0] gives the solid input
    simplex. *)

val over_inputs : n:int -> f:int -> r:int -> Complex.t -> Complex.t
(** [P(I)]: union of [A^r(S)] over the facets [S] of an input complex. *)

val pseudosphere : n:int -> f:int -> Simplex.t -> Psph.t
(** Lemma 11's right-hand side in symbolic form: value sets are the
    heard-sets (encoded as [Pid_set] of the senders {e including} the
    receiver), which makes vertex labels intrinsic. *)

val lemma11_rhs : n:int -> f:int -> Simplex.t -> Complex.t
(** The realization of {!pseudosphere} with the paper's plain labelling:
    vertex [(P_i, ids(M) - {P_i})]. *)

val lemma11_map : Vertex.t -> Vertex.t
(** The explicit vertex map [L (P_i, M) = (x_i, ids(M) - {P_i})] from the
    proof of Lemma 11. *)

val lemma11_holds : n:int -> f:int -> Simplex.t -> bool
(** Check that {!lemma11_map} is an isomorphism from {!one_round} onto
    {!lemma11_rhs} — the machine-checked Lemma 11. *)

val lemma12_expected_connectivity : m:int -> n:int -> f:int -> int
(** The connectivity lower bound asserted by Lemma 12 for [A^r(S^m)]:
    [m - (n - f) - 1]. *)

val corollary13_impossible : f:int -> k:int -> bool
(** Corollary 13: asynchronous f-resilient k-set agreement is impossible
    iff [k <= f]. *)
