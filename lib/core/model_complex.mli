(** The first-class model registry.

    The paper's whole point is that the asynchronous, synchronous and
    semi-synchronous round complexes are {e one} construction — unions of
    pseudospheres — viewed through different failure disciplines.  This
    module makes that unification first-class: a {!MODEL} signature
    packaging a model's name, parameter discipline and complex
    constructors, and a registry through which every consumer (the query
    engine, [psc serve], the [psc] subcommands, benches, examples and
    tests) reaches all models generically.  Registering a new model makes
    it reachable from all of them with zero consumer-side edits — the
    {!section-instances} below register [async], [sync], [semi], [iis],
    [byz] and [dyn] this way.

    All models draw their common parameters from one {!spec} record; each
    model's [normalize] zeroes the fields it ignores, so the canonical
    {!encode} of two specs differing only in an irrelevant parameter
    coincide — the property the engine's spec-level memo table relies on.
    Parameters that only one adversary family needs ride in the open
    {!ext} payload instead: a model {e declares} its extension parameters
    ({!MODEL.ext_params}) and [normalize] canonicalizes the payload
    (declared order, defaults filled, unknown keys dropped), so extension
    values flow through cache keys, the wire codec and the CLI without
    widening the common record for everyone. *)

open Psph_topology

type ext = (string * int) list
(** A model-owned extension payload: ordered [(name, value)] pairs.
    Canonical after [normalize]: declared order, every declared key
    present, nothing else. *)

type spec = { n : int; f : int; k : int; p : int; r : int; ext : ext }
(** The common core of every model's parameters: dimension [n] ([n + 1]
    processes), failure budget [f] (async), failures per round [k]
    (sync/semi/byz), microrounds per round [p] (semi), rounds [r] — plus
    the model-owned {!ext} payload (Byzantine corruption budget,
    adversary class, ...).  A model reads only the fields its [normalize]
    keeps. *)

val default_spec : spec
(** [{ n = 2; f = 1; k = 1; p = 2; r = 1; ext = [] }] — the [psc] flag
    defaults. *)

val pp_spec : Format.formatter -> spec -> unit

(** {2 Extension parameters} *)

type ext_param = {
  ep_name : string;  (** key in {!ext}, CLI flag name, wire field name *)
  ep_doc : string;  (** one-line help for the generated [psc] flag *)
  ep_default : int;  (** value filled in by [normalize] when absent *)
  ep_parse : string -> (int, string) result;
      (** parse a CLI/wire string form (enum names or integers) *)
  ep_show : int -> string;  (** human-readable rendering of a value *)
}
(** One declared extension parameter.  The declaration is what lets every
    generic tier handle the parameter without knowing the model: [psc]
    generates a flag per [ep_name], [serve] and the router accept the key
    in JSON requests, the codec packs canonical payloads into the binary
    layout, and {!encode} appends [,name=value] pairs to the cache key. *)

val int_param : name:string -> doc:string -> default:int -> ext_param
(** A plain integer-valued parameter. *)

val enum_param :
  name:string -> doc:string -> choices:(string * int) list -> default:int ->
  ext_param
(** A named-choice parameter; [ep_parse] accepts the choice names and
    their integer codes, [ep_show] prints the name. *)

val canonical_ext : ext_param list -> ext -> ext
(** Canonicalize a payload against a declaration: declared order,
    defaults filled in, unknown keys dropped.  Models call this from
    [normalize]. *)

val ext_value : spec -> string -> default:int -> int
(** Look up an extension value by name, falling back to [default]. *)

module type MODEL = sig
  val name : string
  (** Registry key and CLI/wire name ([async], [sync], ...). *)

  val doc : string
  (** One-line description, used for the generated [psc] subcommand. *)

  val ext_params : ext_param list
  (** The model-owned parameters, in canonical payload order.  [[]] for
      models fully described by the common record. *)

  val normalize : spec -> spec
  (** Zero the common parameters this model ignores and canonicalize the
      extension payload.  Idempotent; two specs with equal [normalize]
      images denote the same complex. *)

  val validate : spec -> (spec, string) result
  (** Range-check the relevant parameters (including extension values)
      and return the normalized spec, or a human-readable error. *)

  val one_round : spec -> Simplex.t -> Complex.t
  (** The one-round protocol complex over an input simplex. *)

  val rounds : spec -> Simplex.t -> Complex.t
  (** The [spec.r]-round complex ([r = 0] gives the solid input), built
      with the shared {!Carrier.compose} round-composition operator. *)

  val over_inputs : spec -> Complex.t -> Complex.t
  (** Union of {!rounds} over the facets of an input complex. *)

  val pseudosphere_decomposition : (spec -> Simplex.t -> Psph.t list) option
  (** The model's symbolic decomposition: pseudospheres (with intrinsic
      value labels) whose union realizes the one-round complex up to the
      relabelling {!intrinsic_map} — Lemmas 11, 14 and 19 in one shape.
      [None] for models that are not pseudosphere unions (IIS: a
      subdivision, hence contractible, unlike any pseudosphere union) or
      whose pieces carry intrinsic labels already ([byz], [dyn]). *)

  val expected_connectivity : spec -> m:int -> int option
  (** The model's connectivity lower bound for the [spec.r]-round complex
      over an [m]-simplex, when the relevant lemma's hypothesis holds
      (Lemmas 12, 16/17, 21; the Mendes-Herlihy ceil(t/k)-round bound;
      rooted-adversary connectedness); [None] when it does not apply. *)

  val connectivity_lemma : string
  (** Human-readable citation for {!expected_connectivity} ("Lemma 12",
      "Lemma 16/17", ...), surfaced as solver provenance when the lemma
      tier answers a query. *)
end

type model = (module MODEL)

(** {2 Registry} *)

val register : model -> unit
(** Make a model reachable from every registry consumer.  Listing order is
    registration order.
    @raise Invalid_argument on a duplicate name. *)

val names : unit -> string list
(** Registered names, in registration order. *)

val all : unit -> model list

val find : string -> model option

val get : string -> model
(** @raise Invalid_argument on an unknown name, listing the available
    models in the message. *)

val name_of : model -> string

val ext_params_of : model -> ext_param list
(** The model's extension declaration, for generic consumers (CLI flag
    generation, request validation, codec layout). *)

(** {2 Canonical encoding and the generic lemma check} *)

val encode : model -> spec -> string
(** A canonical, {!Psph_engine.Key}-feedable encoding of [(model, spec)]:
    the model name plus the {e normalized} parameter vector, followed by
    [,name=value] for each canonical extension entry.  Specs differing
    only in parameters the model ignores encode identically, so a cache
    keyed on [encode] can never be mis-keyed by an irrelevant parameter;
    models with an empty payload encode exactly as before extensions
    existed, so pre-existing cache keys stay valid. *)

val intrinsic_map : n:int -> Vertex.t -> Vertex.t
(** The generic Lemma 11/14/19 vertex relabelling: a full-information
    one-round view becomes the intrinsic pseudosphere value that produced
    it — the heard pid-set for untimed rounds, the length-[n + 1]
    microround vector for timed rounds.
    @raise Invalid_argument on an initial (round-0) view. *)

val decomposition_holds : model -> spec -> Simplex.t -> bool
(** The machine-checked unification statement, one model at a time: the
    union of the realized {!MODEL.pseudosphere_decomposition} (plain
    labels) is isomorphic, via {!intrinsic_map}, to the model's
    [one_round] complex.  Vacuously [true] for models without a
    decomposition. *)
