(** The Byzantine synchronous protocol complex (Mendes-Herlihy).

    The adversary owns a total corruption budget of [t] processes and may
    {e expose} at most [k] of them per round.  A round from input simplex
    [S] in which the set [K] is exposed: every survivor receives the
    honest state of every survivor, and, independently per survivor, each
    process of [K] is either silent or heard with one of [versions]
    claimed values (version 0 being what a correct process would have
    sent — so honest-looking behaviour glues the piece onto the
    failure-free execution, and with [versions >= 2] two survivors can be
    shown {e different} values: equivocation).  Exposed processes leave
    the simplex, which is how the budget is tracked across rounds.

    Each piece is a genuine pseudosphere over [S \ K], so the one-round
    complex is a union of pseudospheres exactly as in the crash models;
    the connectivity claim is the Mendes-Herlihy bound: the protocol
    complex stays (k-1)-connected for [ceil(t/k)] rounds. *)

open Psph_topology

val claim : Simplex.t -> Pid.t -> int -> Label.t
(** [claim s q v]: the value a survivor believes [q] sent — [q]'s honest
    label for [v = 0], a tagged forgery for [v >= 1]. *)

val pseudosphere_accusing : Simplex.t -> Pid.Set.t -> versions:int -> Psph.t
(** The symbolic piece for exposed set [K]: base [S \ K], each survivor's
    value set enumerating (heard subset of [K]) x (claim versions). *)

val pseudospheres :
  n:int -> k:int -> t:int -> versions:int -> Simplex.t ->
  (Pid.Set.t * Psph.t) list
(** The decomposition of one round from [s]: one nonempty piece per
    exposed set allowed by the remaining budget (at most [min k (t -
    spent)] processes, where [spent = (n + 1) - |ids s|]). *)

val one_round : n:int -> k:int -> t:int -> versions:int -> Simplex.t -> Complex.t

val rounds :
  n:int -> k:int -> t:int -> versions:int -> r:int -> Simplex.t -> Complex.t
(** [r] rounds via {!Carrier.compose}; the per-round exposure cap shrinks
    as the budget is spent (exposed processes have left the simplex). *)

val over_inputs :
  n:int -> k:int -> t:int -> versions:int -> r:int -> Complex.t -> Complex.t

val expected_connectivity :
  m:int -> n:int -> k:int -> t:int -> r:int -> int option
(** The Mendes-Herlihy bound over an [m]-simplex:
    [Some (m - (n - min k (t - (r-1)k)) - 1)] while the budget lasts
    ([r <= ceil(t/k)]) and [n >= rk + k]; [None] otherwise. *)
