open Psph_topology

type operator = Simplex.t -> Complex.t

type instance = {
  hypothesis_holds : bool;
  conclusion_holds : bool;
  faces_checked : int;
}

let hypothesis_on_faces ~op ~c base =
  (* every nonempty face S^l of the base must map to an (l - c - 1)-
     connected complex *)
  let faces =
    List.filter (fun f -> not (Simplex.is_empty f)) (Simplex.faces base)
  in
  let ok =
    List.for_all
      (fun face ->
        let l = Simplex.dim face in
        Homology.is_k_connected (op face) (l - c - 1))
      faces
  in
  (ok, List.length faces)

let image_of_union ~op complexes =
  List.fold_left
    (fun acc cx ->
      List.fold_left
        (fun acc facet -> Complex.union acc (op facet))
        acc (Complex.facets cx))
    Complex.empty complexes

let check_theorem5 ~op ~c ~base ~values =
  let hypothesis_holds, faces_checked = hypothesis_on_faces ~op ~c base in
  let ps = Psph.create ~base ~values in
  let image = image_of_union ~op [ Psph.realize ~vertex:Psph.default_vertex ps ] in
  let m = Psph.dim ps in
  let conclusion_holds = Homology.is_k_connected image (m - c - 1) in
  { hypothesis_holds; conclusion_holds; faces_checked }

let check_theorem7 ~op ~c ~base ~families =
  let common =
    match families with
    | [] -> []
    | first :: rest ->
        List.fold_left
          (fun acc family -> List.filter (fun u -> List.exists (Label.equal u) family) acc)
          first rest
  in
  if common = [] then
    invalid_arg "Connectivity_theorems.check_theorem7: empty common intersection";
  let hypothesis_holds, faces_checked = hypothesis_on_faces ~op ~c base in
  let pss = List.map (fun family -> Psph.uniform ~base family) families in
  let image =
    image_of_union ~op
      (List.map (Psph.realize ~vertex:Psph.default_vertex) pss)
  in
  let m = Simplex.dim base in
  let conclusion_holds = Homology.is_k_connected image (m - c - 1) in
  { hypothesis_holds; conclusion_holds; faces_checked }

let holds i = (not i.hypothesis_holds) || i.conclusion_holds
