open Psph_topology
open Psph_model

let of_globals globals =
  Complex.of_facets
    (List.map
       (fun g ->
         Simplex.of_procs
           (List.map (fun (q, view) -> (q, View.to_label view)) (Pid.Map.bindings g)))
       globals)

let async ~n ~f ~r inputs =
  of_globals (Execution.run_async ~n ~f ~rounds:r (Execution.initial inputs))

let sync ~k ~r inputs =
  of_globals (Execution.run_sync ~k ~rounds:r (Execution.initial inputs))

let semi ~k ~p ~n ~r inputs =
  of_globals (Execution.run_semi ~k ~p ~n ~rounds:r (Execution.initial inputs))
