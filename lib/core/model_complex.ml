open Psph_obs
open Psph_topology
open Psph_model

type spec = { n : int; f : int; k : int; p : int; r : int }

let default_spec = { n = 2; f = 1; k = 1; p = 2; r = 1 }

let pp_spec ppf { n; f; k; p; r } =
  Format.fprintf ppf "n=%d f=%d k=%d p=%d r=%d" n f k p r

module type MODEL = sig
  val name : string
  val doc : string
  val normalize : spec -> spec
  val validate : spec -> (spec, string) result
  val one_round : spec -> Simplex.t -> Complex.t
  val rounds : spec -> Simplex.t -> Complex.t
  val over_inputs : spec -> Complex.t -> Complex.t
  val pseudosphere_decomposition : (spec -> Simplex.t -> Psph.t list) option
  val expected_connectivity : spec -> m:int -> int option
  val connectivity_lemma : string
end

type model = (module MODEL)

(* ------------------------------------------------------------------ *)
(* registry                                                            *)
(* ------------------------------------------------------------------ *)

let registry : (string, model) Hashtbl.t = Hashtbl.create 8

(* registration order drives every listing (CLI enums, serve, benches) *)
let order : string list ref = ref []

let name_of (module M : MODEL) = M.name

let encode_with (module M : MODEL) spec =
  let { n; f; k; p; r } = M.normalize spec in
  Printf.sprintf "%s:n=%d,f=%d,k=%d,p=%d,r=%d" M.name n f k p r

(* every registered model's complex constructions run inside
   [model.one_round] / [model.rounds] spans carrying the canonical spec,
   so model cost is attributed in traces no matter which front end (psc,
   serve, engine, tests) asked — models register plain code and get
   instrumentation for free *)
let instrument ((module M : MODEL) : model) : model =
  (module struct
    include M

    let one_round spec s =
      Obs.with_span "model.one_round"
        ~attrs:[ ("spec", Jsonl.Str (encode_with (module M) spec)) ]
        (fun _ -> M.one_round spec s)

    let rounds spec s =
      Obs.with_span "model.rounds"
        ~attrs:[ ("spec", Jsonl.Str (encode_with (module M) spec)) ]
        (fun _ -> M.rounds spec s)

    let over_inputs spec c =
      Obs.with_span "model.over_inputs"
        ~attrs:[ ("spec", Jsonl.Str (encode_with (module M) spec)) ]
        (fun _ -> M.over_inputs spec c)
  end)

let register ((module M : MODEL) as m) =
  if Hashtbl.mem registry M.name then
    invalid_arg ("Model_complex.register: duplicate model " ^ M.name);
  Hashtbl.replace registry M.name (instrument m);
  order := !order @ [ M.name ]

let names () = !order

let find name = Hashtbl.find_opt registry name

let get name =
  match find name with
  | Some m -> m
  | None ->
      invalid_arg
        (Printf.sprintf "unknown model %S (available: %s)" name
           (String.concat ", " (names ())))

let all () = List.map (fun n -> Hashtbl.find registry n) !order

let encode = encode_with

(* ------------------------------------------------------------------ *)
(* the generic Lemma 11/14/19 relabelling                              *)
(* ------------------------------------------------------------------ *)

let intrinsic_map ~n = function
  | Vertex.Proc (q, l) -> (
      match View.of_label l with
      | View.Round { heard; _ } ->
          Vertex.proc q (Label.Pid_set (Pid.Set.of_list (List.map fst heard)))
      | View.Timed_round { heard; _ } ->
          let vec = Array.make (n + 1) 0 in
          List.iter (fun (j, mu, _) -> vec.(j) <- mu) heard;
          Vertex.proc q (Label.Vec vec)
      | View.Init _ ->
          invalid_arg "Model_complex.intrinsic_map: not a one-round view")
  | (Vertex.Anon _ | Vertex.Bary _) as v -> v

let decomposition_holds (module M : MODEL) spec s =
  match M.pseudosphere_decomposition with
  | None -> true
  | Some pieces ->
      let lhs = M.one_round spec s in
      let rhs =
        List.fold_left
          (fun acc ps ->
            Complex.union acc (Psph.realize ~vertex:Psph.default_vertex ps))
          Complex.empty (pieces spec s)
      in
      Simplicial_map.is_isomorphism_via (intrinsic_map ~n:spec.n) lhs rhs

(* ------------------------------------------------------------------ *)
(* shared validation                                                   *)
(* ------------------------------------------------------------------ *)

let check_common spec =
  if spec.n < 0 then Error "n must be >= 0"
  else if spec.r < 0 then Error "r must be >= 0"
  else Ok spec

let ( let* ) r f = Result.bind r f

(* ------------------------------------------------------------------ *)
(* instances                                                           *)
(* ------------------------------------------------------------------ *)

module Async_model = struct
  let name = "async"
  let doc = "Build the asynchronous complex A^r (Section 6)."
  let normalize spec = { spec with k = 0; p = 0 }

  let validate spec =
    let* spec = check_common spec in
    if spec.f < 0 then Error "f must be >= 0" else Ok (normalize spec)

  let one_round { n; f; _ } s = Async_complex.one_round ~n ~f s
  let rounds { n; f; r; _ } s = Async_complex.rounds ~n ~f ~r s
  let over_inputs { n; f; r; _ } c = Async_complex.over_inputs ~n ~f ~r c

  let pseudosphere_decomposition =
    Some (fun { n; f; _ } s -> [ Async_complex.pseudosphere ~n ~f s ])

  (* Lemma 12: no hypothesis beyond the parameters themselves *)
  let expected_connectivity { n; f; _ } ~m =
    Some (Async_complex.lemma12_expected_connectivity ~m ~n ~f)

  let connectivity_lemma = "Lemma 12"
end

module Sync_model = struct
  let name = "sync"
  let doc = "Build the synchronous complex S^r (Section 7)."
  let normalize spec = { spec with f = 0; p = 0 }

  let validate spec =
    let* spec = check_common spec in
    if spec.k < 0 then Error "k must be >= 0" else Ok (normalize spec)

  let one_round { k; _ } s = Sync_complex.one_round ~k s
  let rounds { k; r; _ } s = Sync_complex.rounds ~k ~r s
  let over_inputs { k; r; _ } c = Sync_complex.over_inputs ~k ~r c

  let pseudosphere_decomposition =
    Some (fun { k; _ } s -> List.map snd (Sync_complex.pseudospheres ~k s))

  (* Lemma 16/17: needs n >= rk + k *)
  let expected_connectivity { n; k; r; _ } ~m =
    if n >= (r * k) + k then
      Some (Sync_complex.lemma16_expected_connectivity ~m ~n ~k)
    else None

  let connectivity_lemma = "Lemma 16/17"
end

module Semi_sync_model = struct
  let name = "semi"
  let doc = "Build the semi-synchronous complex M^r (Section 8)."
  let normalize spec = { spec with f = 0 }

  let validate spec =
    let* spec = check_common spec in
    if spec.k < 0 then Error "k must be >= 0"
    else if spec.p < 1 then Error "p must be >= 1"
    else Ok (normalize spec)

  let one_round { n; k; p; _ } s = Semi_sync_complex.one_round ~k ~p ~n s
  let rounds { n; k; p; r; _ } s = Semi_sync_complex.rounds ~k ~p ~n ~r s
  let over_inputs { n; k; p; r; _ } c = Semi_sync_complex.over_inputs ~k ~p ~n ~r c

  let pseudosphere_decomposition =
    Some
      (fun { n; k; p; _ } s ->
        List.map snd (Semi_sync_complex.pseudospheres ~k ~p ~n s))

  (* Lemma 21: needs n >= (r + 1) k *)
  let expected_connectivity { n; k; r; _ } ~m =
    if n >= (r + 1) * k then
      Some (Semi_sync_complex.lemma21_expected_connectivity ~m ~n ~k)
    else None

  let connectivity_lemma = "Lemma 21"
end

(* The extensibility proof: the wait-free iterated-immediate-snapshot
   model, registered as a fourth instance.  Nothing outside this block
   knows about it, yet it is reachable from psc, psc serve, the engine
   cache, benches and the generic tests. *)
module Iis_model = struct
  let name = "iis"
  let doc = "Build the iterated immediate snapshot complex (Borowsky-Gafni)."
  let normalize spec = { spec with f = 0; k = 0; p = 0 }
  let validate spec = Result.map normalize (check_common spec)
  let one_round _ s = Iis_complex.one_round s
  let rounds { r; _ } s = Iis_complex.rounds ~r s
  let over_inputs { r; _ } c = Iis_complex.over_inputs ~r c

  (* a chromatic subdivision, not a union of pseudospheres *)
  let pseudosphere_decomposition = None

  (* a subdivision of the input simplex is contractible *)
  let expected_connectivity _ ~m = Some m

  let connectivity_lemma = "subdivision contractible"
end

let () =
  register (module Async_model);
  register (module Sync_model);
  register (module Semi_sync_model);
  register (module Iis_model)
