open Psph_obs
open Psph_topology
open Psph_model

type ext = (string * int) list

type spec = { n : int; f : int; k : int; p : int; r : int; ext : ext }

let default_spec = { n = 2; f = 1; k = 1; p = 2; r = 1; ext = [] }

let pp_spec ppf { n; f; k; p; r; ext } =
  Format.fprintf ppf "n=%d f=%d k=%d p=%d r=%d" n f k p r;
  List.iter (fun (key, v) -> Format.fprintf ppf " %s=%d" key v) ext

(* ------------------------------------------------------------------ *)
(* model-owned extension parameters                                    *)
(* ------------------------------------------------------------------ *)

type ext_param = {
  ep_name : string;
  ep_doc : string;
  ep_default : int;
  ep_parse : string -> (int, string) result;
  ep_show : int -> string;
}

let int_param ~name ~doc ~default =
  {
    ep_name = name;
    ep_doc = doc;
    ep_default = default;
    ep_parse =
      (fun s ->
        match int_of_string_opt s with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "%s: expected an integer, got %S" name s));
    ep_show = string_of_int;
  }

let enum_param ~name ~doc ~choices ~default =
  let parse s =
    match List.assoc_opt s choices with
    | Some v -> Ok v
    | None -> (
        match int_of_string_opt s with
        | Some v when List.exists (fun (_, i) -> i = v) choices -> Ok v
        | _ ->
            Error
              (Printf.sprintf "%s: expected one of %s" name
                 (String.concat "|" (List.map fst choices))))
  in
  let show v =
    match List.find_opt (fun (_, i) -> i = v) choices with
    | Some (nm, _) -> nm
    | None -> string_of_int v
  in
  { ep_name = name; ep_doc = doc; ep_default = default; ep_parse = parse;
    ep_show = show }

(* declared order, defaults filled in, unknown keys dropped — so every
   canonical ext of a model has the same shape and [encode] stays
   injective on what the model actually reads *)
let canonical_ext params ext =
  List.map
    (fun p ->
      ( p.ep_name,
        match List.assoc_opt p.ep_name ext with
        | Some v -> v
        | None -> p.ep_default ))
    params

let ext_value spec name ~default =
  match List.assoc_opt name spec.ext with Some v -> v | None -> default

module type MODEL = sig
  val name : string
  val doc : string
  val ext_params : ext_param list
  val normalize : spec -> spec
  val validate : spec -> (spec, string) result
  val one_round : spec -> Simplex.t -> Complex.t
  val rounds : spec -> Simplex.t -> Complex.t
  val over_inputs : spec -> Complex.t -> Complex.t
  val pseudosphere_decomposition : (spec -> Simplex.t -> Psph.t list) option
  val expected_connectivity : spec -> m:int -> int option
  val connectivity_lemma : string
end

type model = (module MODEL)

(* ------------------------------------------------------------------ *)
(* registry                                                            *)
(* ------------------------------------------------------------------ *)

let registry : (string, model) Hashtbl.t = Hashtbl.create 8

(* registration order drives every listing (CLI enums, serve, benches) *)
let order : string list ref = ref []

let name_of (module M : MODEL) = M.name

let ext_params_of (module M : MODEL) = M.ext_params

let encode_with (module M : MODEL) spec =
  let { n; f; k; p; r; ext } = M.normalize spec in
  let base = Printf.sprintf "%s:n=%d,f=%d,k=%d,p=%d,r=%d" M.name n f k p r in
  (* models without extensions keep the exact historical key format, so
     existing on-disk memo stores and warmed replicas stay valid *)
  match ext with
  | [] -> base
  | ext ->
      base
      ^ String.concat ""
          (List.map (fun (key, v) -> Printf.sprintf ",%s=%d" key v) ext)

(* every registered model's complex constructions run inside
   [model.one_round] / [model.rounds] spans carrying the canonical spec,
   so model cost is attributed in traces no matter which front end (psc,
   serve, engine, tests) asked — models register plain code and get
   instrumentation for free *)
let instrument ((module M : MODEL) : model) : model =
  (module struct
    include M

    let one_round spec s =
      Obs.with_span "model.one_round"
        ~attrs:[ ("spec", Jsonl.Str (encode_with (module M) spec)) ]
        (fun _ -> M.one_round spec s)

    let rounds spec s =
      Obs.with_span "model.rounds"
        ~attrs:[ ("spec", Jsonl.Str (encode_with (module M) spec)) ]
        (fun _ -> M.rounds spec s)

    let over_inputs spec c =
      Obs.with_span "model.over_inputs"
        ~attrs:[ ("spec", Jsonl.Str (encode_with (module M) spec)) ]
        (fun _ -> M.over_inputs spec c)
  end)

let register ((module M : MODEL) as m) =
  if Hashtbl.mem registry M.name then
    invalid_arg ("Model_complex.register: duplicate model " ^ M.name);
  Hashtbl.replace registry M.name (instrument m);
  order := !order @ [ M.name ]

let names () = !order

let find name = Hashtbl.find_opt registry name

let get name =
  match find name with
  | Some m -> m
  | None ->
      invalid_arg
        (Printf.sprintf "unknown model %S (available: %s)" name
           (String.concat ", " (names ())))

let all () = List.map (fun n -> Hashtbl.find registry n) !order

let encode = encode_with

(* ------------------------------------------------------------------ *)
(* the generic Lemma 11/14/19 relabelling                              *)
(* ------------------------------------------------------------------ *)

let intrinsic_map ~n = function
  | Vertex.Proc (q, l) -> (
      match View.of_label l with
      | View.Round { heard; _ } ->
          Vertex.proc q (Label.Pid_set (Pid.Set.of_list (List.map fst heard)))
      | View.Timed_round { heard; _ } ->
          let vec = Array.make (n + 1) 0 in
          List.iter (fun (j, mu, _) -> vec.(j) <- mu) heard;
          Vertex.proc q (Label.Vec vec)
      | View.Init _ ->
          invalid_arg "Model_complex.intrinsic_map: not a one-round view")
  | (Vertex.Anon _ | Vertex.Bary _) as v -> v

let decomposition_holds (module M : MODEL) spec s =
  match M.pseudosphere_decomposition with
  | None -> true
  | Some pieces ->
      let lhs = M.one_round spec s in
      let rhs =
        List.fold_left
          (fun acc ps ->
            Complex.union acc (Psph.realize ~vertex:Psph.default_vertex ps))
          Complex.empty (pieces spec s)
      in
      Simplicial_map.is_isomorphism_via (intrinsic_map ~n:spec.n) lhs rhs

(* ------------------------------------------------------------------ *)
(* shared validation                                                   *)
(* ------------------------------------------------------------------ *)

let check_common spec =
  if spec.n < 0 then Error "n must be >= 0"
  else if spec.r < 0 then Error "r must be >= 0"
  else Ok spec

let ( let* ) r f = Result.bind r f

(* ------------------------------------------------------------------ *)
(* instances                                                           *)
(* ------------------------------------------------------------------ *)

module Async_model = struct
  let name = "async"
  let doc = "Build the asynchronous complex A^r (Section 6)."
  let ext_params = []
  let normalize spec = { spec with k = 0; p = 0; ext = [] }

  let validate spec =
    let* spec = check_common spec in
    if spec.f < 0 then Error "f must be >= 0" else Ok (normalize spec)

  let one_round { n; f; _ } s = Async_complex.one_round ~n ~f s
  let rounds { n; f; r; _ } s = Async_complex.rounds ~n ~f ~r s
  let over_inputs { n; f; r; _ } c = Async_complex.over_inputs ~n ~f ~r c

  let pseudosphere_decomposition =
    Some (fun { n; f; _ } s -> [ Async_complex.pseudosphere ~n ~f s ])

  (* Lemma 12: no hypothesis beyond the parameters themselves *)
  let expected_connectivity { n; f; _ } ~m =
    Some (Async_complex.lemma12_expected_connectivity ~m ~n ~f)

  let connectivity_lemma = "Lemma 12"
end

module Sync_model = struct
  let name = "sync"
  let doc = "Build the synchronous complex S^r (Section 7)."
  let ext_params = []
  let normalize spec = { spec with f = 0; p = 0; ext = [] }

  let validate spec =
    let* spec = check_common spec in
    if spec.k < 0 then Error "k must be >= 0" else Ok (normalize spec)

  let one_round { k; _ } s = Sync_complex.one_round ~k s
  let rounds { k; r; _ } s = Sync_complex.rounds ~k ~r s
  let over_inputs { k; r; _ } c = Sync_complex.over_inputs ~k ~r c

  let pseudosphere_decomposition =
    Some (fun { k; _ } s -> List.map snd (Sync_complex.pseudospheres ~k s))

  (* Lemma 16/17: needs n >= rk + k *)
  let expected_connectivity { n; k; r; _ } ~m =
    if n >= (r * k) + k then
      Some (Sync_complex.lemma16_expected_connectivity ~m ~n ~k)
    else None

  let connectivity_lemma = "Lemma 16/17"
end

module Semi_sync_model = struct
  let name = "semi"
  let doc = "Build the semi-synchronous complex M^r (Section 8)."
  let ext_params = []
  let normalize spec = { spec with f = 0; ext = [] }

  let validate spec =
    let* spec = check_common spec in
    if spec.k < 0 then Error "k must be >= 0"
    else if spec.p < 1 then Error "p must be >= 1"
    else Ok (normalize spec)

  let one_round { n; k; p; _ } s = Semi_sync_complex.one_round ~k ~p ~n s
  let rounds { n; k; p; r; _ } s = Semi_sync_complex.rounds ~k ~p ~n ~r s
  let over_inputs { n; k; p; r; _ } c = Semi_sync_complex.over_inputs ~k ~p ~n ~r c

  let pseudosphere_decomposition =
    Some
      (fun { n; k; p; _ } s ->
        List.map snd (Semi_sync_complex.pseudospheres ~k ~p ~n s))

  (* Lemma 21: needs n >= (r + 1) k *)
  let expected_connectivity { n; k; r; _ } ~m =
    if n >= (r + 1) * k then
      Some (Semi_sync_complex.lemma21_expected_connectivity ~m ~n ~k)
    else None

  let connectivity_lemma = "Lemma 21"
end

(* The extensibility proof: the wait-free iterated-immediate-snapshot
   model, registered as a fourth instance.  Nothing outside this block
   knows about it, yet it is reachable from psc, psc serve, the engine
   cache, benches and the generic tests. *)
module Iis_model = struct
  let name = "iis"
  let doc = "Build the iterated immediate snapshot complex (Borowsky-Gafni)."
  let ext_params = []
  let normalize spec = { spec with f = 0; k = 0; p = 0; ext = [] }
  let validate spec = Result.map normalize (check_common spec)
  let one_round _ s = Iis_complex.one_round s
  let rounds { r; _ } s = Iis_complex.rounds ~r s
  let over_inputs { r; _ } c = Iis_complex.over_inputs ~r c

  (* a chromatic subdivision, not a union of pseudospheres *)
  let pseudosphere_decomposition = None

  (* a subdivision of the input simplex is contractible *)
  let expected_connectivity _ ~m = Some m

  let connectivity_lemma = "subdivision contractible"
end

(* The Byzantine synchronous model (Mendes-Herlihy): [k] exposures per
   round out of a total corruption budget [t], with per-receiver
   equivocation.  The first instance exercising the extension payload. *)
module Byz_model = struct
  let name = "byz"
  let doc = "Build the Byzantine synchronous complex (Mendes-Herlihy)."

  let ext_params =
    [
      int_param ~name:"t" ~doc:"total Byzantine corruption budget" ~default:1;
      enum_param ~name:"equiv" ~doc:"equivocation mode"
        ~choices:[ ("none", 0); ("binary", 1) ]
        ~default:1;
    ]

  let normalize spec =
    { spec with f = 0; p = 0; ext = canonical_ext ext_params spec.ext }

  let params spec =
    let t = ext_value spec "t" ~default:1 in
    let equiv = ext_value spec "equiv" ~default:1 in
    (t, 1 + equiv)

  let validate spec =
    let* spec = check_common spec in
    let spec = normalize spec in
    let t = ext_value spec "t" ~default:1 in
    let equiv = ext_value spec "equiv" ~default:1 in
    if spec.k < 0 then Error "k must be >= 0"
    else if t < 0 then Error "t must be >= 0"
    else if equiv < 0 || equiv > 1 then
      Error "equiv must be none (0) or binary (1)"
    else Ok spec

  let one_round ({ n; k; _ } as spec) s =
    let t, versions = params spec in
    Byz_complex.one_round ~n ~k ~t ~versions s

  let rounds ({ n; k; r; _ } as spec) s =
    let t, versions = params spec in
    Byz_complex.rounds ~n ~k ~t ~versions ~r s

  let over_inputs ({ n; k; r; _ } as spec) c =
    let t, versions = params spec in
    Byz_complex.over_inputs ~n ~k ~t ~versions ~r c

  (* the pieces are pseudospheres but their value labels are already
     intrinsic (claim lists), not full-information views, so the generic
     Lemma 11/14/19 relabelling does not apply *)
  let pseudosphere_decomposition = None

  let expected_connectivity ({ n; k; r; _ } as spec) ~m =
    let t, _ = params spec in
    Byz_complex.expected_connectivity ~m ~n ~k ~t ~r

  let connectivity_lemma = "Mendes-Herlihy ceil(t/k)-round bound"
end

(* Directed dynamic networks: no failures at all, just a per-round
   communication digraph drawn from an adversary class. *)
module Dyn_net_model = struct
  let name = "dyn"
  let doc = "Build the directed dynamic-network complex (message adversary)."

  let ext_params =
    [
      enum_param ~name:"adv" ~doc:"message-adversary class"
        ~choices:[ ("rooted", 0); ("strong", 1); ("all", 2) ]
        ~default:0;
    ]

  let normalize spec =
    { spec with f = 0; k = 0; p = 0; ext = canonical_ext ext_params spec.ext }

  let adversary spec =
    Dyn_net_complex.adversary_of_int (ext_value spec "adv" ~default:0)

  let adv_exn spec =
    match adversary spec with
    | Some a -> a
    | None -> invalid_arg "dyn: invalid adversary class"

  let validate spec =
    let* spec = check_common spec in
    let spec = normalize spec in
    match adversary spec with
    | Some _ -> Ok spec
    | None -> Error "adv must be rooted (0), strong (1) or all (2)"

  let one_round spec s = Dyn_net_complex.one_round (adv_exn spec) s
  let rounds ({ r; _ } as spec) s = Dyn_net_complex.rounds (adv_exn spec) ~r s

  let over_inputs ({ r; _ } as spec) c =
    Dyn_net_complex.over_inputs (adv_exn spec) ~r c

  let pseudosphere_decomposition = None

  let expected_connectivity ({ r; _ } as spec) ~m =
    Dyn_net_complex.expected_connectivity (adv_exn spec) ~m ~r

  let connectivity_lemma = "rooted-adversary connectedness"
end

let () =
  register (module Async_model);
  register (module Sync_model);
  register (module Semi_sync_model);
  register (module Iis_model);
  register (module Byz_model);
  register (module Dyn_net_model)
