open Psph_topology
open Psph_model

let view_of s q seen =
  let prev =
    match Simplex.label_of q s with
    | Some l -> View.of_label l
    | None -> invalid_arg "Iis_complex: pid outside simplex"
  in
  let heard =
    Pid.Set.elements seen
    |> List.map (fun r ->
           match Simplex.label_of r s with
           | Some l -> (r, View.of_label l)
           | None -> invalid_arg "Iis_complex: seen pid outside simplex")
  in
  View.round ~prev ~heard

let one_round s =
  let participants = Simplex.ids s in
  let facets =
    Snapshot.schedules participants
    |> List.map (fun schedule ->
           let views = Snapshot.views_of_schedule schedule in
           Simplex.of_list
             (List.map
                (fun (q, seen) ->
                  Vertex.proc q (View.to_label (view_of s q seen)))
                (Pid.Map.bindings views)))
  in
  Complex.of_facets facets

let rounds ~r s = Carrier.compose r s ~branches:(fun s -> [ one_round s ])

let over_inputs ~r inputs = Carrier.over_facets (rounds ~r) inputs

let enumerated ~r inputs =
  Enumerated.of_globals (Snapshot.run ~rounds:r (Execution.initial inputs))

let isomorphic_to_chromatic s =
  let iis = one_round s in
  let chromatic = Subdivision.chromatic_of_simplex s in
  (* the chromatic subdivision labels a vertex with (base label, seen ids);
     map the IIS full view down to that form *)
  let mu = function
    | Vertex.Proc (q, l) -> (
        match View.of_label l with
        | View.Round { heard; _ } ->
            let seen = Pid.Set.of_list (List.map fst heard) in
            let base =
              match Simplex.label_of q s with Some b -> b | None -> Label.Unit
            in
            Vertex.proc q (Label.Pair (base, Label.Pid_set seen))
        | View.Init _ | View.Timed_round _ -> Vertex.proc q l)
    | v -> v
  in
  Simplicial_map.is_isomorphism_via mu iis chromatic

let subcomplex_of_async ~n s =
  Complex.subcomplex (one_round s) (Async_complex.one_round ~n ~f:n s)
