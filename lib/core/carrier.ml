open Psph_obs
open Psph_topology

let over_facets step c =
  List.fold_left
    (fun acc s -> Complex.union acc (step s))
    Complex.empty (Complex.facets c)

let iterate step r s =
  let rec loop k c =
    if k <= 0 then c
    else begin
      (* trace-only round marker; the sink check keeps the null-sink path
         from paying for the simplex count (Set cardinal is O(n)) *)
      if Obs.current_sink () <> Obs.Null then
        Obs.event "model.round"
          ~attrs:
            [
              ("round", Jsonl.int (r - k + 1));
              ("simplices", Jsonl.int (Complex.num_simplices c));
            ];
      loop (k - 1) (over_facets step c)
    end
  in
  loop r (Complex.of_simplex s)

(* The r-round iteration must recurse on the facets of every branch
   complex separately, not on the facets of their union: a facet of one
   branch may be a mere face of another branch's facet (e.g. an exact-K
   synchronous facet in which every survivor heard all of K is a face of
   the failure-free facet), yet its continuations are real executions.

   Distinct branches of the recursion reach identical (round, state)
   pairs — e.g. the failure-free facet of every branch in which all
   survivors heard everything — so results are memoized per call on
   [(r, Intern.simplex_id s)] (the branch generator is fixed for the
   whole call). *)
let compose ~branches r s =
  let memo : (int * int, Complex.t) Hashtbl.t = Hashtbl.create 97 in
  let rec go r s =
    if r <= 0 then Complex.of_simplex s
    else
      let key = (r, Intern.simplex_id s) in
      match Hashtbl.find_opt memo key with
      | Some c -> c
      | None ->
          (* one trace event per distinct (rounds-remaining, state) node
             actually expanded; memo hits are silent *)
          Obs.event "model.round" ~attrs:[ ("remaining", Jsonl.int r) ];
          let c =
            List.fold_left
              (fun acc b ->
                List.fold_left
                  (fun acc t -> Complex.union acc (go (r - 1) t))
                  acc (Complex.facets b))
              Complex.empty (branches s)
          in
          Hashtbl.add memo key c;
          c
  in
  go r s
