open Psph_topology

let over_facets step c =
  List.fold_left
    (fun acc s -> Complex.union acc (step s))
    Complex.empty (Complex.facets c)

let iterate step r s =
  let rec loop r c = if r <= 0 then c else loop (r - 1) (over_facets step c) in
  loop r (Complex.of_simplex s)
