(** The Mayer–Vietoris connectivity engine.

    This module replays the paper's actual proof technique: Theorem 2 ("if
    K and L are k-connected and K /\ L is nonempty and (k-1)-connected,
    then K U L is k-connected"), applied inductively to unions of
    pseudospheres whose pairwise intersections are computed by Lemma 4.3
    and are again pseudospheres — so the whole derivation is a finite
    combinatorial object.

    {!union_connectivity} builds the derivation for an ordered list of
    pseudospheres (the order matters, as in Lemmas 15 and 20: the paper
    orders failure sets size-then-lex and failure patterns reverse-lex so
    that each prefix intersection stays highly connected), and returns a
    {!proof} tree whose every leaf is an instance of Corollary 6 and every
    node an instance of Theorem 2.  {!validate} re-checks the conclusion
    numerically with the homology engine. *)

open Psph_topology

type proof =
  | Empty  (** the empty complex; connectivity [-2] by convention *)
  | Axiom of { ps : Psph.t; conn : int }
      (** Corollary 6: a pseudosphere of dimension [m] is
          [(m-1)]-connected *)
  | Disjoint of { left : proof; right : proof }
      (** nonempty pieces with empty intersection: the union is exactly
          [(-1)]-connected *)
  | Glue of { conn : int; left : proof; right : proof; inter : proof }
      (** Theorem 2 *)

val conn : proof -> int
(** The connectivity lower bound concluded by the derivation. *)

val union_connectivity : ?prune_subsumed:bool -> Psph.t list -> proof
(** Derive a connectivity lower bound for the union of the given
    pseudospheres, splitting prefix/last as the paper does.
    [prune_subsumed] (default [true]) drops pseudospheres contained in
    another before recursing — an optimisation that leaves the union (and
    so the conclusion) unchanged; disabling it is the ablation benchmarked
    in [bench/main.ml]. *)

val union_realize : ?vertex:Psph.vertex_builder -> Psph.t list -> Complex.t
(** The actual union complex (for numeric validation). *)

val validate : ?vertex:Psph.vertex_builder -> Psph.t list -> proof -> bool
(** Does the realized union satisfy the derived homological
    connectivity? *)

val size : proof -> int
(** Number of inference steps (axioms + glue + disjoint nodes). *)

val pp : Format.formatter -> proof -> unit
(** Render the derivation as an indented proof tree. *)
