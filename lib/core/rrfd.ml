open Psph_topology
open Psph_model

type structure = Pid.t -> Pid.Set.t list

let async_structure ~n ~f ~alive q =
  ignore n;
  let others = Pid.Set.remove q alive in
  Failure.power_set others |> List.filter (fun s -> Pid.Set.cardinal s <= f)

let sync_structure ~alive ~failed q =
  ignore alive;
  ignore q;
  Failure.power_set failed

let realize_round ~universe ~base structure =
  (* [universe] is the global state supplying heard states; [base] the
     simplex of processes taking the round (its vertices are a subset of
     the universe's) *)
  let alive = Simplex.ids universe in
  let values q =
    structure q
    |> List.map (fun suspects -> Label.Pid_set (Pid.Set.diff alive suspects))
    |> List.sort_uniq Label.compare
  in
  let ps = Psph.create ~base ~values in
  let vertex q base_label = function
    | Label.Pid_set heard_set ->
        let prev = View.of_label base_label in
        let heard =
          Pid.Set.elements heard_set
          |> List.map (fun r ->
                 match Simplex.label_of r universe with
                 | Some l -> (r, View.of_label l)
                 | None -> invalid_arg "Rrfd: heard pid outside simplex")
        in
        Vertex.proc q (View.to_label (View.round ~prev ~heard))
    | _ -> assert false
  in
  Psph.realize ~vertex ps

let one_round s structure = realize_round ~universe:s ~base:s structure

let agrees_with_async ~n ~f s =
  let alive = Simplex.ids s in
  if Pid.Set.cardinal alive < n + 1 then
    (* the f-suspects reading of the detector matches the paper's
       "receive at least n - f + 1 messages" only under full
       participation *)
    invalid_arg "Rrfd.agrees_with_async: requires full participation"
  else
    Complex.equal
      (one_round s (async_structure ~n ~f ~alive))
      (Async_complex.one_round ~n ~f s)

let agrees_with_sync s k =
  let alive = Simplex.ids s in
  let survivors_simplex = Simplex.without_ids k s in
  if Pid.Set.is_empty (Pid.Set.diff alive k) then
    Complex.is_empty (Sync_complex.one_round_failing s k)
  else
    Complex.equal
      (realize_round ~universe:s ~base:survivors_simplex
         (sync_structure ~alive ~failed:k))
      (Sync_complex.one_round_failing s k)
