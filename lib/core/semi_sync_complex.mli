(** The semi-synchronous protocol complex (Section 8).

    Round structure: each round takes time [d]; processes step in lockstep
    every [c1], giving [p = ceil (d / c1)] microrounds per round; all
    messages are delivered at the end of the round.  A view is the vector
    [(mu_0, ..., mu_n)] of last-received microrounds: [p] for live senders,
    [F(P_j) - 1] or [F(P_j)] for a sender failing at microround [F(P_j)],
    and [0] for silent processes.

    Lemma 19: the executions with failure pattern [F] on failure set [K]
    form the pseudosphere [M^1_{K,F}(S) = psi(S \ K; [F])].  The one-round
    complex is the union over [K] (size-then-lex) and [F] (reverse-lex);
    intersections are unions of the [[F ^ j]] pseudospheres (Lemma 20),
    giving the connectivity of Lemma 21 and the Corollary 22 wait-free time
    lower bound [(ceil (f/k) - 1) * d + C * d]. *)

open Psph_topology
open Psph_model

val one_round_pattern : p:int -> n:int -> Simplex.t -> Failure.pattern -> Complex.t
(** [M^1_{K,F}(S)] with full-view vertex labels. *)

val one_round : k:int -> p:int -> n:int -> Simplex.t -> Complex.t
(** [M^1(S)]: union over failure sets of size [<= k] and patterns. *)

val rounds : k:int -> p:int -> n:int -> r:int -> Simplex.t -> Complex.t
(** [M^r(S)]. *)

val over_inputs : k:int -> p:int -> n:int -> r:int -> Complex.t -> Complex.t

val pseudosphere_pattern :
  p:int -> n:int -> Simplex.t -> Failure.pattern -> Psph.t
(** Symbolic [psi(S \ K; [F])], value labels the intrinsic view vectors
    ([Label.Vec]). *)

val pseudospheres :
  k:int -> p:int -> n:int -> Simplex.t -> (Failure.pattern * Psph.t) list
(** The symbolic decomposition of [M^1(S)] in the paper's order (by [K]
    size-then-lex, then by [F] reverse-lex). *)

val lemma19_rhs : p:int -> n:int -> Simplex.t -> Failure.pattern -> Complex.t
(** [psi(S \ K; [F])] with plain view-vector labels. *)

val lemma19_map : n:int -> Vertex.t -> Vertex.t
(** The vertex map of Lemma 19: a full view becomes its microround
    vector (over the [n + 1]-process universe). *)

val lemma19_holds : p:int -> n:int -> Simplex.t -> Failure.pattern -> bool

val lemma20_lhs :
  p:int -> n:int -> Simplex.t -> Failure.pattern list -> Complex.t
(** For patterns ordered as in the paper, the intersection of the prefix
    union with the last pseudosphere. *)

val lemma20_rhs :
  p:int -> n:int -> Simplex.t -> Failure.pattern list -> Complex.t
(** [U_{j in K_t} psi(S \ K_t; [F_t ^ j])]. *)

val lemma20_holds : p:int -> n:int -> Simplex.t -> Failure.pattern list -> bool

val lemma21_expected_connectivity : m:int -> n:int -> k:int -> int
(** Lemma 21: [M^r(S^m)] is [(m - (n - k) - 1)]-connected when
    [n >= (r + 1) k]. *)

val corollary22_time : f:int -> k:int -> c1:int -> c2:int -> d:int -> float
(** The wait-free time lower bound: [r * d + C * d] with
    [r = ceil (f / k) - 1] the largest round count the connectivity
    argument sustains ([f >= (r + 1) k]) and [C = c2 / c1].  (The
    corollary's printed statement reads [floor (f/k) d + C d]; the bound
    actually derived in the text is [r d + C d] with [n = (r + 1) k], which
    is what we implement — the two agree whenever [k] does not divide
    [f].) *)
