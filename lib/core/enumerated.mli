(** Protocol complexes built by brute-force enumeration of executions.

    The pseudosphere constructions ({!Async_complex}, {!Sync_complex},
    {!Semi_sync_complex}) are formulas.  This module derives the same
    complexes from an independent operational semantics — enumerating every
    round schedule of {!Psph_model.Round_schedule} and applying it with
    {!Psph_model.Execution} — and the test suite checks the two agree
    {e exactly} (equal complexes, not merely isomorphic).  This is the
    machine-checked content of Lemmas 11, 14 and 19 plus their [r]-round
    iterations. *)

open Psph_topology
open Psph_model

val of_globals : Execution.global list -> Complex.t
(** One facet per reachable global state: vertices are (pid, encoded
    view). *)

val async : n:int -> f:int -> r:int -> (Pid.t * Value.t) list -> Complex.t
(** All [r]-round asynchronous executions from the given inputs. *)

val sync : k:int -> r:int -> (Pid.t * Value.t) list -> Complex.t
(** All [r]-round synchronous executions with at most [k] crashes per
    round. *)

val semi : k:int -> p:int -> n:int -> r:int -> (Pid.t * Value.t) list -> Complex.t
(** All [r]-round semi-synchronous executions. *)
