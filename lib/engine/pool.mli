(** A fixed-size [Domain] worker pool with a FIFO job queue.

    Workers are spawned eagerly at {!create} and live until {!shutdown}.
    Jobs are closures; {!submit} returns a future settled with the job's
    value or exception.  A pool of zero domains degenerates to inline
    execution, and a submit from inside a worker also runs inline, so
    nested fan-out (a query job spawning per-dimension rank jobs) cannot
    deadlock the queue.

    All accounting flows through the {!Psph_obs.Obs} registry under the
    [metrics] name prefix: counters [<metrics>.jobs] (dequeued) and
    [<metrics>.inline], gauges [<metrics>.queue_depth] and
    [<metrics>.busy] (worker utilization), histogram [<metrics>.job_s].
    Each queued job runs in a [<metrics>.job] span parented to the span
    current at submit time, so traces stay nested across domains. *)

type t

type 'a future

val create : ?metrics:string -> domains:int -> unit -> t
(** Spawn [max 0 domains] worker domains.  [metrics] (default ["pool"])
    prefixes the registered metric and span names. *)

val size : t -> int
(** Number of worker domains. *)

val jobs_run : t -> int
(** Current value of the shared [<metrics>.jobs] counter (jobs dequeued
    by workers; inline runs are counted under [<metrics>.inline]). *)

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a job (or run it inline, see above).
    @raise Invalid_argument after {!shutdown}. *)

val await : 'a future -> 'a
(** Block until settled; re-raises the job's exception. *)

val run_all : t -> (unit -> 'a) list -> 'a list
(** Submit all, then await all, preserving order. *)

val shutdown : t -> unit
(** Drain the queue, stop and join every worker.  Idempotent. *)
