(** A fixed-size [Domain] worker pool with a FIFO job queue.

    Workers are spawned eagerly at {!create} and live until {!shutdown}.
    Jobs are closures; {!submit} returns a future settled with the job's
    value or exception.  A pool of zero domains degenerates to inline
    execution, and a submit from inside a worker also runs inline, so
    nested fan-out (a query job spawning per-dimension rank jobs) cannot
    deadlock the queue. *)

type t

type 'a future

val create : domains:int -> t
(** Spawn [max 0 domains] worker domains. *)

val size : t -> int
(** Number of worker domains. *)

val jobs_run : t -> int
(** Jobs dequeued by workers so far (inline runs are not counted). *)

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a job (or run it inline, see above).
    @raise Invalid_argument after {!shutdown}. *)

val await : 'a future -> 'a
(** Block until settled; re-raises the job's exception. *)

val run_all : t -> (unit -> 'a) list -> 'a list
(** Submit all, then await all, preserving order. *)

val shutdown : t -> unit
(** Drain the queue, stop and join every worker.  Idempotent. *)
