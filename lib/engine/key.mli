(** Canonical content addresses for complexes.

    [of_complex] hashes the full simplex set in canonical order with the
    pure structural vertex hash from {!Psph_topology.Intern}, so
    structurally equal complexes get equal keys regardless of construction
    history or process — the property the memo store's cache slots and
    on-disk persistence both rely on.  (Hashing the set rather than the
    facets skips the expensive maximality extraction; see key.ml.)  Keys
    are 124 bits (two 62-bit halves); collisions are treated as
    impossible. *)

open Psph_topology

type t

val of_complex : Complex.t -> t

val of_string : string -> t
(** Key a canonical spec string (the same two-accumulator fold over its
    bytes).  Identifies answers derived symbolically, without realizing
    the complex the string denotes. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val to_hex : t -> string
(** 32 lowercase hex digits; the wire and on-disk representation. *)

val of_hex_opt : string -> t option
