(* The `psc serve` request/response loop: one JSON document per line on
   stdin, one response per line on stdout (JSON Lines).  Request shapes:

     {"op":"betti",         "facets":["0:i0 ; 1:i1", ...], "id":7}
     {"op":"connectivity",  "facets":[...]}
     {"op":"connectivity",  "model":"sync", "n":6, "k":1, "r":1}
     {"op":"connectivity",  "n":2, "values":3}
     {"op":"psph",          "n":2, "values":3}
     {"op":"model-complex", "model":"sync", "n":3, "k":1, "r":2}
     {"op":"batch",         "requests":[ <any of the above> ]}
     {"op":"models"}
     {"op":"stats"}
     {"op":"metrics"}
     {"op":"snapshot",      "cursor":0, "limit":512}
     {"op":"populate",      "entries":["<hex> <conn> <betti csv>", ...]}

   "model" accepts any name registered in Model_complex (the "models" op
   lists them); an unknown name errors with the available list.

   Connectivity-answering requests additionally accept a "solver" field
   ("auto"|"symbolic"|"numeric"|"check", default auto) selecting the
   solver tier; the model/psph forms of "connectivity" are the ones the
   symbolic tier can answer without realizing the complex.  Every
   successful answer carries a "solver" object (tier + provenance).

   "facets" entries are Complex_io simplex strings.  Numeric model
   parameters default like the psc flags (f=1, k=1, p=2, r=1).  Responses
   echo "id" when present, carry "ok", and on success the canonical "key",
   the requested measurements, "cached", and "solver".  A batch response
   holds "results" in request order; its members are evaluated in
   parallel on the engine's pool.

   Robustness: [handle_line] never raises.  Expected failures (parse
   errors, bad requests, invalid parameters) and unexpected handler
   exceptions alike produce {"ok":false,"error":...} — echoing the
   request's "id" when one was parsed — and the loop keeps going.  One
   bad request must not kill the server.

   Observability: each line runs in a [serve.request] span carrying a
   process-wide request counter and the parsed op name, and its wall time
   lands in a per-op [serve.op.<op>] histogram ("invalid" when no op was
   parsed).  The [metrics] op — and a "metrics" field on [stats] —
   returns the full {!Obs.snapshot_json}. *)

open Psph_obs
open Psph_topology

exception Bad_request of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad_request s)) fmt

let int_field ?default req name =
  match Jsonl.member name req with
  | Some v -> (
      match Jsonl.to_int_opt v with
      | Some i -> i
      | None -> bad "field %S must be an integer" name)
  | None -> (
      match default with
      | Some d -> d
      | None -> bad "missing integer field %S" name)

(* which measurements a request asks for *)
type want = Betti | Connectivity | Both

(* which solver tier the request asks for ("solver" field, default auto) *)
let mode_of_request req =
  match Option.bind (Jsonl.member "solver" req) Jsonl.to_string_opt with
  | None | Some "auto" -> Engine.Auto
  | Some "symbolic" -> Engine.Symbolic_only
  | Some "numeric" -> Engine.Numeric_only
  | Some "check" -> Engine.Check
  | Some s -> bad "unknown solver mode %S (auto|symbolic|numeric|check)" s

(* a model's declared extension parameters, read from the request by
   declared name: integers directly, or strings through the parameter's
   own parser (enum names like "adv":"rooted").  Absent keys are left for
   the model's [normalize] to default. *)
let ext_of req m =
  List.filter_map
    (fun ep ->
      let name = ep.Pseudosphere.Model_complex.ep_name in
      match Jsonl.member name req with
      | None -> None
      | Some v -> (
          match Jsonl.to_int_opt v with
          | Some i -> Some (name, i)
          | None -> (
              match Jsonl.to_string_opt v with
              | None -> bad "field %S must be an integer or string" name
              | Some s -> (
                  match ep.ep_parse s with
                  | Ok i -> Some (name, i)
                  | Error e -> bad "%s" e))))
    (Pseudosphere.Model_complex.ext_params_of m)

let model_spec_of req =
  let model, m =
    match Option.bind (Jsonl.member "model" req) Jsonl.to_string_opt with
    | None -> bad "missing string field \"model\""
    | Some name -> (
        match Pseudosphere.Model_complex.find name with
        | Some m -> (name, m)
        | None ->
            bad "unknown model %S (available: %s)" name
              (String.concat ", " (Pseudosphere.Model_complex.names ())))
  in
  let d = Pseudosphere.Model_complex.default_spec in
  Engine.Model
    {
      model;
      params =
        {
          Pseudosphere.Model_complex.n = int_field req "n";
          f = int_field ~default:d.Pseudosphere.Model_complex.f req "f";
          k = int_field ~default:d.k req "k";
          p = int_field ~default:d.p req "p";
          r = int_field ~default:d.r req "r";
          ext = ext_of req m;
        };
    }

let spec_of_request req =
  match Option.bind (Jsonl.member "op" req) Jsonl.to_string_opt with
  | None -> bad "missing \"op\""
  | Some (("betti" | "connectivity") as op) -> (
      match Option.bind (Jsonl.member "facets" req) Jsonl.to_list_opt with
      | Some facets ->
          let simplexes =
            List.map
              (fun f ->
                match Jsonl.to_string_opt f with
                | None -> bad "facets entries must be strings"
                | Some s -> (
                    try Complex_io.simplex_of_string s
                    with Failure m -> bad "bad facet: %s" m))
              facets
          in
          ( Engine.Explicit (Complex.of_facets simplexes),
            if op = "betti" then Betti else Connectivity )
      | None when op = "connectivity" && Jsonl.member "model" req <> None ->
          (* the solver-routed symbolic forms: a registered model ... *)
          (model_spec_of req, Connectivity)
      | None when op = "connectivity" && Jsonl.member "values" req <> None ->
          (* ... or a uniform pseudosphere *)
          ( Engine.Psph { n = int_field req "n"; values = int_field req "values" },
            Connectivity )
      | None ->
          if op = "connectivity" then
            bad "connectivity needs \"facets\", \"model\", or \"n\"+\"values\""
          else bad "%s needs a \"facets\" array" op)
  | Some "psph" ->
      ( Engine.Psph { n = int_field req "n"; values = int_field req "values" },
        Both )
  | Some "model-complex" -> (model_spec_of req, Both)
  | Some op -> bad "unknown op %S" op

(* want=Connectivity goes through the tiered solver; Betti needs the
   numeric tier, so those wants only honour mode=check *)
let eval_request engine (spec, want) mode =
  match want with
  | Connectivity -> Engine.eval_conn ~mode engine spec
  | Betti | Both -> Engine.eval ~mode engine spec

let result_fields want (r : Engine.result) =
  [ ("ok", Jsonl.Bool true); ("key", Jsonl.Str (Key.to_hex r.key)) ]
  @ (match want with
    | Betti -> [ ("betti", Jsonl.int_array r.answer.betti) ]
    | Connectivity -> [ ("connectivity", Jsonl.int r.answer.connectivity) ]
    | Both ->
        [
          ("betti", Jsonl.int_array r.answer.betti);
          ("connectivity", Jsonl.int r.answer.connectivity);
        ])
  @ [
      ("cached", Jsonl.Bool r.cached);
      ("solver", Jsonl.Obj (Engine.provenance_fields r.solver));
    ]

let with_id req fields =
  match Jsonl.member "id" req with
  | Some id -> ("id", id) :: fields
  | None -> fields

let error_response ?req msg =
  let fields = [ ("ok", Jsonl.Bool false); ("error", Jsonl.Str msg) ] in
  Jsonl.Obj (match req with Some r -> with_id r fields | None -> fields)

let stats_response engine =
  let s = Engine.stats engine in
  Jsonl.Obj
    [
      ("ok", Jsonl.Bool true);
      ( "stats",
        Jsonl.Obj
          [
            ("hits", Jsonl.int s.Engine.hits);
            ("misses", Jsonl.int s.misses);
            ("evictions", Jsonl.int s.evictions);
            ("cache_len", Jsonl.int s.cache_len);
            ("jobs", Jsonl.int s.jobs);
            ("queries", Jsonl.int s.queries);
            ("domains", Jsonl.int s.domains);
            ("build_s", Jsonl.Num s.build_s);
            ("compute_s", Jsonl.Num s.compute_s);
          ] );
      ("metrics", Obs.snapshot_json ());
    ]

let metrics_response () =
  Jsonl.Obj [ ("ok", Jsonl.Bool true); ("metrics", Obs.snapshot_json ()) ]

(* "models" keeps its original shape (an array of names — the router's
   health probe and old clients parse it); extension declarations ride in
   a separate "params" object so new clients can discover model-owned
   flags without a schema bump *)
let models_response () =
  let ext_fields m =
    List.map
      (fun ep ->
        ( ep.Pseudosphere.Model_complex.ep_name,
          Jsonl.Obj
            [
              ("doc", Jsonl.Str ep.Pseudosphere.Model_complex.ep_doc);
              ("default", Jsonl.int ep.ep_default);
            ] ))
      (Pseudosphere.Model_complex.ext_params_of m)
  in
  Jsonl.Obj
    [
      ("ok", Jsonl.Bool true);
      ( "models",
        Jsonl.Arr
          (List.map
             (fun n -> Jsonl.Str n)
             (Pseudosphere.Model_complex.names ())) );
      ( "params",
        Jsonl.Obj
          (List.filter_map
             (fun name ->
               match Pseudosphere.Model_complex.find name with
               | Some m when Pseudosphere.Model_complex.ext_params_of m <> [] ->
                   Some (name, Jsonl.Obj (ext_fields m))
               | _ -> None)
             (Pseudosphere.Model_complex.names ())) );
    ]

(* the replication tier's wire ops (docs/NET.md "Replication &
   rebalance"): [snapshot] pages the memo cache out in store-line form
   for a warming peer, [populate] loads finished answers in.  Paging
   sorts by store line so a cursor stays meaningful across requests on
   a stable cache; a churning cache costs the warming peer some
   entries, never correctness (content addressing — see Engine.warm). *)
let snapshot_response engine req =
  let cursor = max 0 (int_field ~default:0 req "cursor") in
  let limit = min 4096 (max 1 (int_field ~default:512 req "limit")) in
  let lines =
    List.sort compare
      (List.map
         (fun (k, e) -> Store.entry_to_line k e)
         (Engine.snapshot engine))
  in
  let total = List.length lines in
  let page = List.filteri (fun i _ -> i >= cursor && i < cursor + limit) lines in
  let next = min total (cursor + limit) in
  Jsonl.Obj
    (with_id req
       [
         ("ok", Jsonl.Bool true);
         ("total", Jsonl.int total);
         ("cursor", Jsonl.int cursor);
         ("next", Jsonl.int next);
         ("done", Jsonl.Bool (next >= total));
         ("entries", Jsonl.Arr (List.map (fun l -> Jsonl.Str l) page));
       ])

let populate_response engine req =
  match Option.bind (Jsonl.member "entries" req) Jsonl.to_list_opt with
  | None -> bad "populate needs an \"entries\" array"
  | Some lines ->
      let parsed =
        List.filter_map
          (fun l -> Option.bind (Jsonl.to_string_opt l) Store.entry_of_line)
          lines
      in
      let loaded = Engine.warm engine parsed in
      Jsonl.Obj
        (with_id req
           [
             ("ok", Jsonl.Bool true);
             ("loaded", Jsonl.int loaded);
             ("skipped", Jsonl.int (List.length lines - loaded));
           ])

let handle_request engine req =
  match Option.bind (Jsonl.member "op" req) Jsonl.to_string_opt with
  | Some "stats" -> stats_response engine
  | Some "metrics" -> metrics_response ()
  | Some "models" -> models_response ()
  | Some "snapshot" -> snapshot_response engine req
  | Some "populate" -> populate_response engine req
  | Some "batch" ->
      let requests =
        match Option.bind (Jsonl.member "requests" req) Jsonl.to_list_opt with
        | Some rs -> rs
        | None -> bad "batch needs a \"requests\" array"
      in
      (* parse everything first so one bad member fails its slot, not the
         whole batch; then evaluate the good ones in parallel.  Evaluation
         errors (invalid parameters, a failed solver check) also fail only
         their slot, rendered exactly as the top-level error would be —
         the router splices batch members verbatim, so a member response
         must be byte-identical to its top-level counterpart. *)
      let parsed =
        List.map
          (fun r ->
            try Ok (r, spec_of_request r, mode_of_request r)
            with Bad_request m -> Error (r, m))
          requests
      in
      let thunks =
        List.filter_map
          (function
            | Ok (_, sw, mode) ->
                Some
                  (fun () ->
                    try Ok (eval_request engine sw mode)
                    with Invalid_argument m | Failure m -> Error m)
            | Error _ -> None)
          parsed
      in
      let results = Engine.run_all engine thunks in
      let rec zip parsed results =
        match (parsed, results) with
        | [], _ -> []
        | Error (r, m) :: tl, results -> error_response ~req:r m :: zip tl results
        | Ok (r, (_, want), _) :: tl, res :: results ->
            (match res with
            | Ok res -> Jsonl.Obj (with_id r (result_fields want res))
            | Error m -> error_response ~req:r m)
            :: zip tl results
        | Ok _ :: _, [] -> assert false
      in
      Jsonl.Obj
        [ ("ok", Jsonl.Bool true); ("results", Jsonl.Arr (zip parsed results)) ]
  | _ ->
      let sw = spec_of_request req in
      let mode = mode_of_request req in
      Jsonl.Obj
        (with_id req (result_fields (snd sw) (eval_request engine sw mode)))

(* process-wide request counter; attached to every [serve.request] span so
   a trace's requests stay distinguishable even without client "id"s *)
let request_ids = Atomic.make 0

let requests_c = lazy (Obs.counter "serve.requests")

let handle_line engine line =
  let rid = Atomic.fetch_and_add request_ids 1 in
  Obs.incr (Lazy.force requests_c);
  Obs.with_span "serve.request"
    ~attrs:[ ("request", Jsonl.int rid) ]
    (fun sp ->
      let t0 = Obs.monotonic () in
      let op = ref "invalid" in
      let response =
        match Jsonl.of_string line with
        | exception Jsonl.Parse_error m -> error_response ("parse error: " ^ m)
        | exception e ->
            (* e.g. Stack_overflow from pathologically nested input *)
            error_response ("parse error: " ^ Printexc.to_string e)
        | req -> (
            (match Option.bind (Jsonl.member "op" req) Jsonl.to_string_opt with
            | Some o -> op := o
            | None -> ());
            try handle_request engine req with
            | Bad_request m -> error_response ~req m
            | Invalid_argument m | Failure m -> error_response ~req m
            | e ->
                (* a handler bug or resource blow-up must answer this
                   request, not kill the serve loop *)
                error_response ~req ("internal error: " ^ Printexc.to_string e))
      in
      Obs.set_attr sp "op" (Jsonl.Str !op);
      Obs.observe (Obs.histogram ("serve.op." ^ !op)) (Obs.monotonic () -. t0);
      Jsonl.to_string response)

let run engine ic oc =
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line when String.trim line = "" -> loop ()
    | line ->
        output_string oc (handle_line engine line);
        output_char oc '\n';
        flush oc;
        loop ()
  in
  loop ();
  Engine.flush engine
