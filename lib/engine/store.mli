(** On-disk persistence for cached query answers.

    A line-oriented text format ([<hex key> <connectivity> <betti CSV>]);
    {!load} skips malformed lines, so partial writes degrade to cache
    misses.  Writes go through a temp file and rename, so readers never
    observe a half-written store.

    Write/load latency and per-line load outcomes are reported through
    the {!Psph_obs.Obs} registry: histograms [store.save_s] and
    [store.load_s], counters [store.loaded] and [store.skipped], and a
    [store.save] span carrying the entry count. *)

type entry = { betti : int array; connectivity : int }

val entry_to_line : Key.t -> entry -> string

val entry_of_line : string -> (Key.t * entry) option

val save : string -> (Key.t * entry) list -> unit

val load : string -> (Key.t * entry) list
(** [[]] when the file does not exist. *)
