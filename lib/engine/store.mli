(** On-disk persistence for cached query answers.

    A line-oriented text format ([<hex key> <connectivity> <betti CSV>]);
    {!load} skips malformed lines, so partial writes degrade to cache
    misses.  Writes go through a temp file and rename, so readers never
    observe a half-written store. *)

type entry = { betti : int array; connectivity : int }

val entry_to_line : Key.t -> entry -> string

val entry_of_line : string -> (Key.t * entry) option

val save : string -> (Key.t * entry) list -> unit

val load : string -> (Key.t * entry) list
(** [[]] when the file does not exist. *)
