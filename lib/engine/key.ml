(* A canonical content address for complexes.

   Two complexes that are structurally equal (same simplex set) must map to
   the same key no matter how they were built, so the key is derived by
   folding over the whole simplex set in its canonical [Simplex.compare]
   order, hashing each vertex with [Intern.vertex_hash] — the pure
   structural hash, not the process-local intern id, so keys survive
   serialization and are stable across processes (the on-disk store
   depends on this).

   Hashing every simplex rather than just the facets is deliberate: the
   simplex set determines the complex (and vice versa), and extracting
   facets means maximality tests that cost as much as the homology the
   cache is trying to avoid, whereas one fold over the set is linear in
   its size.  The fold touches no memo field, so concurrent keying of a
   shared complex value is write-free.

   Two independent 62-bit accumulators with distinct odd multipliers keep
   the collision probability negligible at any realistic cache size; a
   collision would silently alias two cache slots, so "negligible" is the
   requirement. *)

open Psph_topology

type t = { h1 : int; h2 : int }

let equal a b = a.h1 = b.h1 && a.h2 = b.h2

let compare a b =
  match Int.compare a.h1 b.h1 with 0 -> Int.compare a.h2 b.h2 | c -> c

let hash a = a.h1 lxor (a.h2 * 0x9e3779b1)

let of_complex c =
  let h1 = ref 0x811c9dc5 and h2 = ref 0x2545f491 in
  Complex.iter
    (fun s ->
      (* simplex separator: keeps [{01},{2}] distinct from [{012}] *)
      h1 := (!h1 * 0x01000193) lxor 0x3b;
      h2 := (!h2 * 0x9e3779b1) lxor 0x67;
      Array.iter
        (fun v ->
          let vh = Intern.vertex_hash 0x811c9dc5 v in
          h1 := (!h1 * 0x01000193) lxor (vh land max_int);
          h2 := (!h2 * 0x9e3779b1) lxor (vh land max_int))
        (Simplex.vertex_array s))
    c;
  { h1 = !h1 land max_int; h2 = !h2 land max_int }

(* Same double-accumulator scheme over a canonical spec string — used to
   give symbolic (never-realized) answers a stable identifier without
   building the complex the string denotes.  The byte fold can collide
   with [of_complex] keys only accidentally (the two populations never
   share a cache: symbolic answers are not cached). *)
let of_string s =
  let h1 = ref 0x811c9dc5 and h2 = ref 0x2545f491 in
  String.iter
    (fun ch ->
      let b = Char.code ch in
      h1 := (!h1 * 0x01000193) lxor b;
      h2 := (!h2 * 0x9e3779b1) lxor b)
    s;
  { h1 = !h1 land max_int; h2 = !h2 land max_int }

let to_hex k = Printf.sprintf "%016x%016x" k.h1 k.h2

let of_hex_opt s =
  if String.length s <> 32 then None
  else
    match
      ( int_of_string_opt ("0x" ^ String.sub s 0 16),
        int_of_string_opt ("0x" ^ String.sub s 16 16) )
    with
    | Some h1, Some h2 when h1 >= 0 && h2 >= 0 -> Some { h1; h2 }
    | _ -> None
