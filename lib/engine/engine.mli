(** The query engine: canonicalized, cached, batched, parallel topology
    queries.

    Millions of pseudosphere/protocol-complex questions repeat structure —
    the same [psi(S^m; U)] shapes recur across models, rounds and failure
    budgets — so evaluation goes content-address first: build the complex,
    derive its canonical {!Key.t}, and only compute homology on a miss.
    Misses run their per-dimension boundary-rank eliminations on a
    {!Pool.t} of worker domains when the complex is large enough to pay
    for the fan-out; batches additionally evaluate independent queries in
    parallel.  Every {!eval} runs in an [engine.query] span carrying the
    content key and hit/miss outcome (see docs/OBSERVABILITY.md).  See
    docs/ENGINE.md for policies and the wire protocol. *)

open Psph_topology
open Pseudosphere

type spec =
  | Explicit of Complex.t  (** an already-built complex *)
  | Psph of { n : int; values : int }
      (** [psi(P^n; {0..values-1})] with the paper's plain labelling *)
  | Model of { model : string; params : Model_complex.spec }
      (** the [params.r]-round protocol complex of the named registered
          model over the standard input simplex ([i mod 2] inputs), as in
          the [psc] model subcommands.  The model's own [normalize]
          decides which parameters matter, so any model registered in
          {!Model_complex} is reachable — and correctly cache-keyed —
          with no engine edits. *)

type answer = { betti : int array; connectivity : int }

type tier = Cached | Symbolic | Numeric
(** Which solver tier produced an answer: a warm cache slot, a symbolic
    derivation ({!Pseudosphere.Solver} — Theorem 2 + Corollary 6 or a
    closed-form round lemma, no complex realized), or numeric Bitmat
    elimination (Morse-precollapsed unless the engine was created with
    [~morse:false]). *)

type provenance = {
  tier : tier;
  rule : string option;
      (** symbolic: the rule that concluded the bound (e.g. ["Theorem 2 +
          Corollary 6"], ["Lemma 16/17"]) *)
  steps : int option;  (** symbolic: derivation size *)
  cells_removed : int option;
      (** numeric: simplices eliminated by the Morse precollapse *)
  checked : int option;
      (** {!mode} [Check]: the symbolic lower bound the numeric answer was
          verified against *)
}

type mode = Auto | Symbolic_only | Numeric_only | Check
(** Solver policy for a query.  [Auto] prefers a warm cache slot, then the
    symbolic tier (connectivity only), then numeric elimination.
    [Symbolic_only]/[Numeric_only] force one tier.  [Check] computes
    numerically and asserts the symbolic {e lower bound} holds
    ([numeric >= symbolic] — the derivations are one-sided, so equality is
    not required), failing the query otherwise. *)

type result = { key : Key.t; answer : answer; cached : bool; solver : provenance }

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  cache_len : int;
  jobs : int;  (** jobs dequeued by pool workers *)
  queries : int;
  domains : int;
  build_s : float;  (** wall time spent building + keying complexes *)
  compute_s : float;  (** wall time spent in homology on cache misses *)
}
(** A read of the {!Psph_obs.Obs} registry ([engine.cache.*],
    [engine.pool.*], [engine.queries], [engine.build_s],
    [engine.compute_s]) plus this engine's cache length.  The registry is
    process-global, so with several engines in one process the counters
    aggregate across them. *)

type t

val create :
  ?domains:int ->
  ?capacity:int ->
  ?persist:string ->
  ?par_threshold:int ->
  ?morse:bool ->
  unit ->
  t
(** [domains] defaults to [min 4 (recommended_domain_count - 1)], at least
    1; pass [0] for a purely sequential engine.  [capacity] (default 4096)
    bounds the LRU.  [persist] names a {!Store} file loaded now and
    written by {!flush}/{!shutdown}.  [par_threshold] (default 2048) is
    the simplex count above which a single query's rank computations are
    fanned out per dimension — measured {e after} the Morse precollapse,
    since that is what elimination chews on.  [morse] (default [true])
    enables the discrete-Morse precollapse on numeric misses; disabling it
    is the ablation benched in bench/main.ml. *)

val build : spec -> Complex.t
(** The complex a spec denotes (no caching, no homology).
    @raise Invalid_argument on invalid parameters or an unknown model
    name (the message lists the registered models). *)

val eval : ?mode:mode -> t -> spec -> result
(** Betti numbers need the numeric tier, so [mode] (default [Auto]) only
    distinguishes [Check] (cross-check connectivity against the symbolic
    bound; raises [Failure] on violation) here; [Symbolic_only] raises
    [Invalid_argument]. *)

val eval_conn : ?mode:mode -> t -> spec -> result
(** Answer a connectivity query through the tiered solver.  Under [Auto] a
    recognized spec (psph, or a registered model) whose symbolic
    derivation applies is answered in O(formula) without realizing the
    complex: [result.answer.betti] is [[||]], [result.key] identifies the
    canonical spec string ({!Key.of_string}), and [result.solver] carries
    the rule and proof size.  Symbolic answers are {e lower bounds} and
    are never cached (they cost nothing to rederive); numeric answers
    share the ordinary content-addressed slots, so the cache stays
    tier-irrelevant.  [Symbolic_only] raises [Failure] when no derivation
    applies. *)

val eval_batch : t -> spec list -> result list
(** Evaluate independent queries of a batch in parallel on the pool,
    preserving order.  Duplicate specs within a batch may race to compute
    the same key; both arrive at the same answer and the cache coalesces
    them. *)

val run_all : t -> (unit -> 'a) list -> 'a list
(** Run independent thunks in parallel on the pool (inline when
    sequential), preserving order — how the serve layer evaluates a batch
    whose members mix wants and solver modes. *)

val provenance_fields : provenance -> (string * Psph_obs.Jsonl.t) list
(** The wire rendering of a provenance (the "solver" response field), in
    fixed field order: [tier], then [rule]/[steps]/[cells_removed]/
    [checked] when present.  Shared by Serve and the binary codec's JSON
    mirror so the two renderings stay byte-identical. *)

val dispatch : t -> (unit -> unit) -> unit
(** Run [f] on the engine's worker pool without awaiting it — inline
    when the engine is sequential ([domains = 0]) or the pool is already
    shut down.  The network server uses this to keep its event loops
    free of CPU-bound handler work; [f] must handle its own errors. *)

val warm : t -> (Key.t * Store.entry) list -> int
(** Insert finished answers straight into the memo cache (the wire-side
    counterpart of the [persist] load at {!create}): how a backend comes
    up warm from a peer's snapshot and how [populate] hints land.
    Content addressing makes this safe — an entry under a key can only
    ever be that key's answer.  Returns the number of entries loaded. *)

val snapshot : t -> (Key.t * Store.entry) list
(** The memo cache as store entries, MRU first — what {!flush} writes,
    exported for streaming to a warming peer (the [snapshot] wire op). *)

val stats : t -> stats

val flush : t -> unit
(** Write the persistent store, if configured (atomic rename). *)

val shutdown : t -> unit
(** {!flush}, then stop and join the worker domains. *)
