(** The query engine: canonicalized, cached, batched, parallel topology
    queries.

    Millions of pseudosphere/protocol-complex questions repeat structure —
    the same [psi(S^m; U)] shapes recur across models, rounds and failure
    budgets — so evaluation goes content-address first: build the complex,
    derive its canonical {!Key.t}, and only compute homology on a miss.
    Misses run their per-dimension boundary-rank eliminations on a
    {!Pool.t} of worker domains when the complex is large enough to pay
    for the fan-out; batches additionally evaluate independent queries in
    parallel.  Every {!eval} runs in an [engine.query] span carrying the
    content key and hit/miss outcome (see docs/OBSERVABILITY.md).  See
    docs/ENGINE.md for policies and the wire protocol. *)

open Psph_topology
open Pseudosphere

type spec =
  | Explicit of Complex.t  (** an already-built complex *)
  | Psph of { n : int; values : int }
      (** [psi(P^n; {0..values-1})] with the paper's plain labelling *)
  | Model of { model : string; params : Model_complex.spec }
      (** the [params.r]-round protocol complex of the named registered
          model over the standard input simplex ([i mod 2] inputs), as in
          the [psc] model subcommands.  The model's own [normalize]
          decides which parameters matter, so any model registered in
          {!Model_complex} is reachable — and correctly cache-keyed —
          with no engine edits. *)

type answer = { betti : int array; connectivity : int }

type result = { key : Key.t; answer : answer; cached : bool }

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  cache_len : int;
  jobs : int;  (** jobs dequeued by pool workers *)
  queries : int;
  domains : int;
  build_s : float;  (** wall time spent building + keying complexes *)
  compute_s : float;  (** wall time spent in homology on cache misses *)
}
(** A read of the {!Psph_obs.Obs} registry ([engine.cache.*],
    [engine.pool.*], [engine.queries], [engine.build_s],
    [engine.compute_s]) plus this engine's cache length.  The registry is
    process-global, so with several engines in one process the counters
    aggregate across them. *)

type t

val create :
  ?domains:int ->
  ?capacity:int ->
  ?persist:string ->
  ?par_threshold:int ->
  unit ->
  t
(** [domains] defaults to [min 4 (recommended_domain_count - 1)], at least
    1; pass [0] for a purely sequential engine.  [capacity] (default 4096)
    bounds the LRU.  [persist] names a {!Store} file loaded now and
    written by {!flush}/{!shutdown}.  [par_threshold] (default 2048) is
    the simplex count above which a single query's rank computations are
    fanned out per dimension. *)

val build : spec -> Complex.t
(** The complex a spec denotes (no caching, no homology).
    @raise Invalid_argument on invalid parameters or an unknown model
    name (the message lists the registered models). *)

val eval : t -> spec -> result

val eval_batch : t -> spec list -> result list
(** Evaluate independent queries of a batch in parallel on the pool,
    preserving order.  Duplicate specs within a batch may race to compute
    the same key; both arrive at the same answer and the cache coalesces
    them. *)

val dispatch : t -> (unit -> unit) -> unit
(** Run [f] on the engine's worker pool without awaiting it — inline
    when the engine is sequential ([domains = 0]) or the pool is already
    shut down.  The network server uses this to keep its event loops
    free of CPU-bound handler work; [f] must handle its own errors. *)

val warm : t -> (Key.t * Store.entry) list -> int
(** Insert finished answers straight into the memo cache (the wire-side
    counterpart of the [persist] load at {!create}): how a backend comes
    up warm from a peer's snapshot and how [populate] hints land.
    Content addressing makes this safe — an entry under a key can only
    ever be that key's answer.  Returns the number of entries loaded. *)

val snapshot : t -> (Key.t * Store.entry) list
(** The memo cache as store entries, MRU first — what {!flush} writes,
    exported for streaming to a warming peer (the [snapshot] wire op). *)

val stats : t -> stats

val flush : t -> unit
(** Write the persistent store, if configured (atomic rename). *)

val shutdown : t -> unit
(** {!flush}, then stop and join the worker domains. *)
