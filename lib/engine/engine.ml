(* The query engine: canonicalize -> cache -> (maybe) parallelize.

   A query names a complex either explicitly or symbolically (pseudosphere
   or protocol-complex parameters).  Evaluation is content-addressed: the
   complex's canonical {!Key.t} selects the slot in the LRU memo store, so
   structurally-equal queries coalesce no matter how they were phrased.
   On a miss the reduced-homology ranks are computed — per-dimension rank
   jobs go to the Domain pool when the complex is large enough to pay for
   the fan-out — and the answer (Betti vector + connectivity) is cached
   under the key.

   Symbolic specs get a second, cheaper canonicalization layer in front:
   a normalized spec (model specs canonicalized by the registered model's
   own [normalize], via [Model_complex.encode]) maps to the content
   key of the complex it denotes, so a repeated [psph]/[model-complex]
   query skips construction and keying entirely and goes straight to the
   content slot.  This front table is what makes a warm cache fast —
   building the complex just to hash it costs more than the lookup it
   guards — while the content key underneath still unifies a symbolic
   query with an [Explicit] copy of the same complex.  The front table is
   unbounded but tiny (a handful of ints per distinct spec ever seen); the
   bounded LRU holds the actual answers, and a spec whose answer was
   evicted just recomputes and re-enters.

   Observability: every [eval] runs in an [engine.query] root span
   carrying the content key and the hit/miss outcome, so a trace can tell
   a cache hit from a cold compute at a glance; build and compute wall
   time go to the [engine.build_s] / [engine.compute_s] histograms, the
   query count to the [engine.queries] counter, and the cache and pool
   report themselves under [engine.cache.*] / [engine.pool.*].  There is
   no private timing state left in this module — [stats] is a read of the
   {!Obs} registry, which also means it aggregates across every engine
   instance in the process.

   Thread-safety: the engine lock guards both tables.  The underlying
   computations are safe to run on worker domains because [Intern]'s
   tables are mutex-guarded and everything else on the path is immutable
   (a racing duplicate miss computes the same answer twice and the second
   [Lru.add] is a no-op overwrite — wasteful, never wrong). *)

open Psph_obs
open Psph_topology
open Pseudosphere

type spec =
  | Explicit of Complex.t
  | Psph of { n : int; values : int }
  | Model of { model : string; params : Model_complex.spec }

type answer = { betti : int array; connectivity : int }

(* which solver tier produced an answer, and what it did along the way —
   carried into wire responses as the "solver" field *)
type tier = Cached | Symbolic | Numeric

type provenance = {
  tier : tier;
  rule : string option;  (* symbolic: the rule that concluded the bound *)
  steps : int option;  (* symbolic: proof size *)
  cells_removed : int option;  (* numeric: Morse-eliminated simplices *)
  checked : int option;  (* check mode: the symbolic bound verified against *)
}

type mode = Auto | Symbolic_only | Numeric_only | Check

type result = { key : Key.t; answer : answer; cached : bool; solver : provenance }

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  cache_len : int;
  jobs : int;
  queries : int;
  domains : int;
  build_s : float;
  compute_s : float;
}

(* canonical form of a symbolic spec: model specs go through the model's
   own [normalize] (via [Model_complex.encode]), so parameters a model
   ignores can never mis-key the cache — the model owns its discipline,
   the engine just asks.
   @raise Invalid_argument on an unknown model name. *)
type spec_key = SPsph of int * int | SModel of string

let spec_key_of = function
  | Explicit _ -> None
  | Psph { n; values } -> Some (SPsph (n, values))
  | Model { model; params } ->
      Some (SModel (Model_complex.encode (Model_complex.get model) params))

let queries_c = lazy (Obs.counter "engine.queries")

let symbolic_hits_c = lazy (Obs.counter "solver.symbolic_hit")

let cells_removed_c = lazy (Obs.counter "solver.collapse.cells_removed")

let build_h = lazy (Obs.histogram "engine.build_s")

let compute_h = lazy (Obs.histogram "engine.compute_s")

type t = {
  pool : Pool.t;
  cache : (Key.t, answer) Lru.t;
  spec_memo : (spec_key, Key.t) Hashtbl.t;
  lock : Mutex.t;
  persist : string option;
  par_threshold : int;
  morse : bool;
}

let default_domains () =
  min 4 (max 1 (Domain.recommended_domain_count () - 1))

let create ?domains ?(capacity = 4096) ?persist ?(par_threshold = 2048)
    ?(morse = true) () =
  let domains = match domains with Some d -> d | None -> default_domains () in
  let t =
    {
      pool = Pool.create ~metrics:"engine.pool" ~domains ();
      cache = Lru.create ~metrics:"engine.cache" ~capacity ();
      spec_memo = Hashtbl.create 64;
      lock = Mutex.create ();
      persist;
      par_threshold;
      morse;
    }
  in
  Option.iter
    (fun path ->
      List.iter
        (fun (key, (e : Store.entry)) ->
          Lru.add t.cache key
            { betti = e.Store.betti; connectivity = e.Store.connectivity })
        (Store.load path))
    persist;
  t

(* ------------------------------------------------------------------ *)
(* building complexes from specs                                       *)
(* ------------------------------------------------------------------ *)

let input_simplex = Solver.standard_input

let build = function
  | Explicit c -> c
  | Psph { n; values } ->
      if n < 0 || values < 0 then invalid_arg "Engine: psph needs n, values >= 0";
      Psph.realize ~vertex:Psph.default_vertex
        (Psph.uniform ~base:(Simplex.proc_simplex n)
           (List.init values (fun i -> Label.Int i)))
  | Model { model; params } -> (
      let (module M : Model_complex.MODEL) = Model_complex.get model in
      match M.validate params with
      | Error msg -> invalid_arg (Printf.sprintf "Engine: %s model: %s" model msg)
      | Ok params -> M.rounds params (input_simplex params.Model_complex.n))

(* ------------------------------------------------------------------ *)
(* evaluation                                                          *)
(* ------------------------------------------------------------------ *)

(* provenance constructors *)
let no_prov tier =
  { tier; rule = None; steps = None; cells_removed = None; checked = None }

let cached_prov = no_prov Cached

let numeric_prov removed = { (no_prov Numeric) with cells_removed = Some removed }

let symbolic_prov (s : Solver.symbolic) =
  {
    (no_prov Symbolic) with
    rule = Some s.Solver.rule;
    steps = Some s.Solver.steps;
  }

(* the wire rendering of a provenance, shared by Serve (JSON) and the
   binary Codec's JSON mirror so the two stay byte-identical *)
let provenance_fields p =
  [
    ( "tier",
      Jsonl.Str
        (match p.tier with
        | Cached -> "cached"
        | Symbolic -> "symbolic"
        | Numeric -> "numeric") );
  ]
  @ (match p.rule with Some r -> [ ("rule", Jsonl.Str r) ] | None -> [])
  @ (match p.steps with Some s -> [ ("steps", Jsonl.int s) ] | None -> [])
  @ (match p.cells_removed with
    | Some n -> [ ("cells_removed", Jsonl.int n) ]
    | None -> [])
  @ match p.checked with Some b -> [ ("checked", Jsonl.int b) ] | None -> []

(* Betti vector and connectivity from the boundary ranks, mirroring
   [Homology.reduced_betti]/[betti]/[connectivity] (the property tests in
   test/test_engine.ml hold this mirror to the original).  [c] is the
   complex the ranks were computed on — possibly a Morse core — while
   [dim] is the original complex's dimension: the core's reduced homology
   equals the original's in every dimension (zero above the core's), so
   the Betti vector is padded and the connectivity search still runs to
   the original dimension. *)
let answer_of_ranks ?dim c r =
  let cdim = Complex.dim c in
  let dim = match dim with None -> cdim | Some d -> d in
  if dim < 0 then { betti = [||]; connectivity = -2 }
  else begin
    let reduced =
      Array.init (dim + 1) (fun d ->
          if d > cdim then 0
          else
            Complex.count_of_dim c d - r.(d)
            - (if d + 1 <= cdim then r.(d + 1) else 0))
    in
    let betti = Array.copy reduced in
    betti.(0) <- betti.(0) + 1;
    let rec conn k =
      if k > dim then dim else if reduced.(k) <> 0 then k - 1 else conn (k + 1)
    in
    { betti; connectivity = conn 0 }
  end

(* Morse-precollapse (unless disabled), then eliminate over the critical
   core; the fan-out decision reads the post-collapse size, since that is
   what elimination will chew on.  Returns the answer plus the number of
   cells the collapse removed. *)
let compute t c =
  let core, removed = if t.morse then Collapse.reduce c else (c, 0) in
  if removed > 0 then Obs.incr ~by:removed (Lazy.force cells_removed_c);
  let r, jobs = Homology.rank_jobs core in
  if
    Pool.size t.pool > 1
    && List.length jobs > 1
    && Complex.num_simplices core >= t.par_threshold
  then begin
    let futures = List.map (fun (d, job) -> (d, Pool.submit t.pool job)) jobs in
    List.iter (fun (d, fut) -> r.(d) <- Pool.await fut) futures
  end
  else List.iter (fun (d, job) -> r.(d) <- job ()) jobs;
  (answer_of_ranks ~dim:(Complex.dim c) core r, removed)

(* slow path: build the complex, derive its content key, consult the LRU.
   [sk_opt] is the caller's spec key, recorded so the next occurrence of
   the same spec takes the fast path. *)
let eval_uncached t sk_opt spec =
  let t0 = Obs.monotonic () in
  let c = build spec in
  let key = Key.of_complex c in
  let t1 = Obs.monotonic () in
  Obs.observe (Lazy.force build_h) (t1 -. t0);
  Mutex.lock t.lock;
  Option.iter (fun sk -> Hashtbl.replace t.spec_memo sk key) sk_opt;
  let hit = Lru.find_opt t.cache key in
  Mutex.unlock t.lock;
  match hit with
  | Some answer -> { key; answer; cached = true; solver = cached_prov }
  | None ->
      let answer, removed =
        Obs.time (Lazy.force compute_h) (fun () -> compute t c)
      in
      Mutex.lock t.lock;
      Lru.add t.cache key answer;
      Mutex.unlock t.lock;
      { key; answer; cached = false; solver = numeric_prov removed }

(* the spec-memo fast path: a warm slot answers without building *)
let cache_probe t spec =
  match spec_key_of spec with
  | None -> None
  | Some sk ->
      Mutex.lock t.lock;
      let fast =
        match Hashtbl.find_opt t.spec_memo sk with
        | None -> None
        | Some key -> (
            match Lru.find_opt t.cache key with
            | Some answer -> Some { key; answer; cached = true; solver = cached_prov }
            | None ->
                (* the answer was evicted; drop the binding and rebuild *)
                Hashtbl.remove t.spec_memo sk;
                None)
      in
      Mutex.unlock t.lock;
      fast

let eval_numeric t spec =
  match cache_probe t spec with
  | Some r -> r
  | None -> eval_uncached t (spec_key_of spec) spec

(* ------------------------------------------------------------------ *)
(* the symbolic tier                                                   *)
(* ------------------------------------------------------------------ *)

let symbolic_of_spec = function
  | Explicit _ -> None
  | Psph { n; values } -> Solver.symbolic_psph ~n ~values
  | Model { model; params } ->
      Solver.symbolic_model (Model_complex.get model) params

(* symbolic answers carry a key derived from the canonical spec string —
   the complex is never realized, so there is no content key to give *)
let symbolic_key = function
  | Explicit c -> Key.of_complex c
  | Psph { n; values } -> Key.of_string (Printf.sprintf "psph:n=%d,values=%d" n values)
  | Model { model; params } ->
      Key.of_string (Model_complex.encode (Model_complex.get model) params)

let symbolic_result spec (s : Solver.symbolic) =
  Obs.incr (Lazy.force symbolic_hits_c);
  {
    key = symbolic_key spec;
    answer = { betti = [||]; connectivity = s.Solver.connectivity };
    cached = false;
    solver = symbolic_prov s;
  }

(* check mode: the numeric answer must satisfy the symbolic lower bound.
   Symbolic rules bound connectivity from below (Theorem 2 derivations
   and the round lemmas are one-sided), so the assertion is [>=], not
   equality — e.g. the one-round async complex at f >= 1 is contractible
   while its pseudosphere-union bound is n - 1. *)
let check_against_symbolic spec (r : result) =
  match symbolic_of_spec spec with
  | None -> r
  | Some s ->
      if r.answer.connectivity < s.Solver.connectivity then
        failwith
          (Printf.sprintf
             "solver check failed: numeric connectivity %d violates symbolic \
              lower bound %d (%s)"
             r.answer.connectivity s.Solver.connectivity s.Solver.rule)
      else
        { r with solver = { r.solver with checked = Some s.Solver.connectivity } }

(* ------------------------------------------------------------------ *)
(* entry points                                                        *)
(* ------------------------------------------------------------------ *)

let with_query_span f =
  Obs.with_span "engine.query" (fun sp ->
      Obs.incr (Lazy.force queries_c);
      let r = f () in
      (* attrs only reach a live sink; skip the hex rendering otherwise —
         cache hits are cheap enough for this to show up *)
      if Obs.current_sink () <> Obs.Null then begin
        Obs.set_attr sp "key" (Jsonl.Str (Key.to_hex r.key));
        Obs.set_attr sp "cached" (Jsonl.Bool r.cached)
      end;
      r)

let eval ?(mode = Auto) t spec =
  with_query_span (fun () ->
      match mode with
      | Auto | Numeric_only -> eval_numeric t spec
      | Check -> check_against_symbolic spec (eval_numeric t spec)
      | Symbolic_only ->
          invalid_arg
            "Engine: Betti numbers require the numeric tier; --solver \
             symbolic answers connectivity queries only")

let eval_conn ?(mode = Auto) t spec =
  with_query_span (fun () ->
      match mode with
      | Numeric_only -> eval_numeric t spec
      | Check -> check_against_symbolic spec (eval_numeric t spec)
      | Symbolic_only -> (
          match symbolic_of_spec spec with
          | Some s -> symbolic_result spec s
          | None ->
              failwith
                "no symbolic derivation applies to this query (try --solver \
                 auto)")
      | Auto -> (
          (* a warm numeric slot is exact and free; prefer it, then the
             O(formula) symbolic tier, then numeric elimination *)
          match cache_probe t spec with
          | Some r -> r
          | None -> (
              match symbolic_of_spec spec with
              | Some s -> symbolic_result spec s
              | None -> eval_numeric t spec)))

let eval_batch t specs =
  if Pool.size t.pool = 0 then List.map (eval t) specs
  else Pool.run_all t.pool (List.map (fun spec () -> eval t spec) specs)

let run_all t thunks =
  if Pool.size t.pool = 0 then List.map (fun f -> f ()) thunks
  else Pool.run_all t.pool thunks

let dispatch t f =
  if Pool.size t.pool = 0 then f ()
  else
    (* fire-and-forget: the job carries its own completion path (the
       serve transport writes the response), so nobody awaits the
       future.  A pool torn down mid-request degrades to inline. *)
    match Pool.submit t.pool f with
    | (_ : unit Pool.future) -> ()
    | exception Invalid_argument _ -> f ()

(* replication support: warming inserts finished answers straight into
   the memo cache (content addressing makes a stale peer entry
   harmless — it can only be the same answer), snapshot exports the
   cache in store-entry form for streaming to a peer.  Both are what
   [create]/[flush] already do against the on-disk store, aimed at the
   wire instead. *)
let warm t entries =
  Mutex.lock t.lock;
  let n =
    List.fold_left
      (fun n (key, (e : Store.entry)) ->
        Lru.add t.cache key
          { betti = e.Store.betti; connectivity = e.Store.connectivity };
        n + 1)
      0 entries
  in
  Mutex.unlock t.lock;
  n

let snapshot t =
  Mutex.lock t.lock;
  let entries =
    List.map
      (fun (key, a) ->
        (key, { Store.betti = a.betti; connectivity = a.connectivity }))
      (Lru.to_list t.cache)
  in
  Mutex.unlock t.lock;
  entries

let stats t =
  Mutex.lock t.lock;
  let cache_len = Lru.length t.cache in
  Mutex.unlock t.lock;
  {
    hits = Lru.hits t.cache;
    misses = Lru.misses t.cache;
    evictions = Lru.evictions t.cache;
    cache_len;
    jobs = Pool.jobs_run t.pool;
    queries = Obs.counter_value (Lazy.force queries_c);
    domains = Pool.size t.pool;
    build_s = (Obs.histogram_stats (Lazy.force build_h)).Obs.sum;
    compute_s = (Obs.histogram_stats (Lazy.force compute_h)).Obs.sum;
  }

let flush t =
  Option.iter
    (fun path ->
      Mutex.lock t.lock;
      let entries =
        List.map
          (fun (key, a) ->
            (key, { Store.betti = a.betti; connectivity = a.connectivity }))
          (Lru.to_list t.cache)
      in
      Mutex.unlock t.lock;
      Store.save path entries)
    t.persist

let shutdown t =
  flush t;
  Pool.shutdown t.pool
