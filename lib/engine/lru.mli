(** A size-bounded least-recently-used memo table.

    Lookup promotes to most-recently-used; insertion beyond capacity evicts
    the least-recently-used entry.  Hit/miss/eviction accounting flows
    through the {!Psph_obs.Obs} registry under the [metrics] name prefix
    ([<metrics>.hits], [<metrics>.misses], [<metrics>.evictions]) — there
    are no private counters, so instances created with the same prefix
    share totals.  Keys are hashed structurally (polymorphic [Hashtbl]);
    use key types whose structural equality is semantic equality, like
    {!Key.t}.  Not thread-safe: callers serialize access. *)

type ('k, 'v) t

val create : ?metrics:string -> capacity:int -> unit -> ('k, 'v) t
(** [metrics] (default ["lru"]) prefixes the registered counter names.
    @raise Invalid_argument if [capacity < 1]. *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Counts a hit (and promotes) or a miss. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or overwrite, promoting to MRU; evicts the LRU entry when the
    table is full. *)

val length : ('k, 'v) t -> int

val capacity : ('k, 'v) t -> int

val hits : ('k, 'v) t -> int
(** Current value of the shared [<metrics>.hits] counter (likewise below). *)

val misses : ('k, 'v) t -> int

val evictions : ('k, 'v) t -> int

val to_list : ('k, 'v) t -> ('k * 'v) list
(** Entries in MRU-to-LRU order (used to flush the persistent store). *)
