(** A size-bounded least-recently-used memo table.

    Lookup promotes to most-recently-used; insertion beyond capacity evicts
    the least-recently-used entry.  Hit/miss/eviction counters feed the
    engine's [stats] report.  Keys are hashed structurally (polymorphic
    [Hashtbl]); use key types whose structural equality is semantic
    equality, like {!Key.t}.  Not thread-safe: callers serialize access. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** @raise Invalid_argument if [capacity < 1]. *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Counts a hit (and promotes) or a miss. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or overwrite, promoting to MRU; evicts the LRU entry when the
    table is full. *)

val length : ('k, 'v) t -> int

val capacity : ('k, 'v) t -> int

val hits : ('k, 'v) t -> int

val misses : ('k, 'v) t -> int

val evictions : ('k, 'v) t -> int

val to_list : ('k, 'v) t -> ('k * 'v) list
(** Entries in MRU-to-LRU order (used to flush the persistent store). *)
