(* A size-bounded LRU memo table: hashtable for lookup, intrusive
   doubly-linked list for recency order.  Not thread-safe on its own; the
   engine serializes access under its lock (cache operations are tiny next
   to the homology computations they memoize, so one lock is plenty).

   Hit/miss/eviction accounting lives in the {!Obs} registry under the
   [metrics] prefix, not in private fields: instances sharing a prefix
   share the counters, and the serve [metrics] op sees them for free. *)

open Psph_obs

type ('k, 'v) node = {
  nkey : 'k;
  mutable nvalue : 'v;
  mutable prev : ('k, 'v) node option; (* towards MRU *)
  mutable next : ('k, 'v) node option; (* towards LRU *)
}

type ('k, 'v) t = {
  capacity : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable mru : ('k, 'v) node option;
  mutable lru : ('k, 'v) node option;
  hits : Obs.counter;
  misses : Obs.counter;
  evictions : Obs.counter;
}

let create ?(metrics = "lru") ~capacity () =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be positive";
  {
    capacity;
    tbl = Hashtbl.create (min capacity 1024);
    mru = None;
    lru = None;
    hits = Obs.counter (metrics ^ ".hits");
    misses = Obs.counter (metrics ^ ".misses");
    evictions = Obs.counter (metrics ^ ".evictions");
  }

let length t = Hashtbl.length t.tbl

let capacity t = t.capacity

let hits t = Obs.counter_value t.hits

let misses t = Obs.counter_value t.misses

let evictions t = Obs.counter_value t.evictions

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.mru <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.lru <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.prev <- None;
  n.next <- t.mru;
  (match t.mru with Some m -> m.prev <- Some n | None -> t.lru <- Some n);
  t.mru <- Some n

let find_opt t k =
  match Hashtbl.find_opt t.tbl k with
  | None ->
      Obs.incr t.misses;
      None
  | Some n ->
      Obs.incr t.hits;
      if t.mru != Some n then begin
        unlink t n;
        push_front t n
      end;
      Some n.nvalue

let evict_lru t =
  match t.lru with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl n.nkey;
      Obs.incr t.evictions

let add t k v =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
      n.nvalue <- v;
      if t.mru != Some n then begin
        unlink t n;
        push_front t n
      end
  | None ->
      if Hashtbl.length t.tbl >= t.capacity then evict_lru t;
      let n = { nkey = k; nvalue = v; prev = None; next = None } in
      Hashtbl.add t.tbl k n;
      push_front t n

let to_list t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some n -> walk ((n.nkey, n.nvalue) :: acc) n.next
  in
  walk [] t.mru
