(* A fixed-size Domain worker pool with a plain FIFO job queue guarded by
   one mutex and one condition variable.  No work stealing: jobs here are
   coarse (a whole query, or one dimension's boundary-matrix elimination),
   so a single contended queue is nowhere near the bottleneck.

   Deadlock safety: [submit] called from inside a worker runs the job
   inline instead of enqueuing.  Without this, a query job that fans out
   per-dimension rank jobs and awaits them could fill every worker with
   waiters and leave nobody to run the inner jobs.

   Observability: queue depth and busy-worker gauges, dequeued/inline job
   counters and a per-job latency histogram are registered in {!Obs} under
   the [metrics] prefix.  Each queued job runs inside a [<metrics>.job]
   span whose parent is the span that was current at [submit] time — the
   bridge that keeps a worker's rank eliminations nested under the request
   that asked for them. *)

open Psph_obs

type job = { run : unit -> unit }

type metrics = {
  span_name : string;
  jobs : Obs.counter;  (** dequeued by a worker *)
  inline : Obs.counter;  (** ran inline: zero domains or nested submit *)
  depth : Obs.gauge;  (** jobs currently queued *)
  busy : Obs.gauge;  (** workers currently running a job *)
  job_s : Obs.histogram;  (** per-dequeued-job wall time *)
}

type t = {
  m : Mutex.t;
  nonempty : Condition.t;
  queue : job Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
  mutable worker_ids : Domain.id list;
  metrics : metrics;
}

type 'a state = Pending | Done of 'a | Failed of exn

type 'a future = { fm : Mutex.t; fc : Condition.t; mutable state : 'a state }

let size t = Array.length t.workers

let jobs_run t = Obs.counter_value t.metrics.jobs

let in_worker t = List.mem (Domain.self ()) t.worker_ids

let rec worker_loop t =
  Mutex.lock t.m;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.nonempty t.m
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.m (* stopping: drain done *)
  else begin
    let job = Queue.pop t.queue in
    Mutex.unlock t.m;
    Obs.incr t.metrics.jobs;
    Obs.gauge_add t.metrics.depth (-1.0);
    Obs.gauge_add t.metrics.busy 1.0;
    Fun.protect ~finally:(fun () -> Obs.gauge_add t.metrics.busy (-1.0))
      (fun () -> Obs.time t.metrics.job_s job.run);
    worker_loop t
  end

let create ?(metrics = "pool") ~domains () =
  let t =
    {
      m = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [||];
      worker_ids = [];
      metrics =
        {
          span_name = metrics ^ ".job";
          jobs = Obs.counter (metrics ^ ".jobs");
          inline = Obs.counter (metrics ^ ".inline");
          depth = Obs.gauge (metrics ^ ".queue_depth");
          busy = Obs.gauge (metrics ^ ".busy");
          job_s = Obs.histogram (metrics ^ ".job_s");
        };
    }
  in
  let n = max 0 domains in
  let workers = Array.init n (fun _ -> Domain.spawn (fun () -> worker_loop t)) in
  t.workers <- workers;
  t.worker_ids <- Array.to_list (Array.map Domain.get_id workers);
  t

let run_inline t f =
  Obs.incr t.metrics.inline;
  match f () with
  | v -> { fm = Mutex.create (); fc = Condition.create (); state = Done v }
  | exception e ->
      { fm = Mutex.create (); fc = Condition.create (); state = Failed e }

let submit t f =
  if Array.length t.workers = 0 || in_worker t then run_inline t f
  else begin
    let fut = { fm = Mutex.create (); fc = Condition.create (); state = Pending } in
    (* re-root the job's spans under whatever span is submitting, so the
       trace nests request -> pool job -> the work, across domains *)
    let parent = Obs.current_span_id () in
    let run () =
      let outcome =
        match
          Obs.with_parent parent (fun () ->
              Obs.with_span t.metrics.span_name (fun _ -> f ()))
        with
        | v -> Done v
        | exception e -> Failed e
      in
      Mutex.lock fut.fm;
      fut.state <- outcome;
      Condition.broadcast fut.fc;
      Mutex.unlock fut.fm
    in
    Mutex.lock t.m;
    if t.stopping then begin
      Mutex.unlock t.m;
      invalid_arg "Pool.submit: pool is shut down"
    end;
    Queue.push { run } t.queue;
    Obs.gauge_add t.metrics.depth 1.0;
    Condition.signal t.nonempty;
    Mutex.unlock t.m;
    fut
  end

let await fut =
  Mutex.lock fut.fm;
  let rec settled () =
    (* match, not (=): polymorphic equality on ['a state] could dive into
       arbitrary payloads *)
    match fut.state with
    | Pending ->
        Condition.wait fut.fc fut.fm;
        settled ()
    | s -> s
  in
  let state = settled () in
  Mutex.unlock fut.fm;
  match state with Done v -> v | Failed e -> raise e | Pending -> assert false

let run_all t fs = List.map (submit t) fs |> List.map await

let shutdown t =
  Mutex.lock t.m;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.m;
  Array.iter Domain.join t.workers;
  t.workers <- [||];
  t.worker_ids <- []
