(* A fixed-size Domain worker pool with a plain FIFO job queue guarded by
   one mutex and one condition variable.  No work stealing: jobs here are
   coarse (a whole query, or one dimension's boundary-matrix elimination),
   so a single contended queue is nowhere near the bottleneck.

   Deadlock safety: [submit] called from inside a worker runs the job
   inline instead of enqueuing.  Without this, a query job that fans out
   per-dimension rank jobs and awaits them could fill every worker with
   waiters and leave nobody to run the inner jobs. *)

type job = { run : unit -> unit }

type t = {
  m : Mutex.t;
  nonempty : Condition.t;
  queue : job Queue.t;
  mutable stopping : bool;
  mutable jobs_run : int;
  mutable workers : unit Domain.t array;
  mutable worker_ids : Domain.id list;
}

type 'a state = Pending | Done of 'a | Failed of exn

type 'a future = { fm : Mutex.t; fc : Condition.t; mutable state : 'a state }

let size t = Array.length t.workers

let jobs_run t =
  Mutex.lock t.m;
  let n = t.jobs_run in
  Mutex.unlock t.m;
  n

let in_worker t = List.mem (Domain.self ()) t.worker_ids

let rec worker_loop t =
  Mutex.lock t.m;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.nonempty t.m
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.m (* stopping: drain done *)
  else begin
    let job = Queue.pop t.queue in
    t.jobs_run <- t.jobs_run + 1;
    Mutex.unlock t.m;
    job.run ();
    worker_loop t
  end

let create ~domains =
  let t =
    {
      m = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      jobs_run = 0;
      workers = [||];
      worker_ids = [];
    }
  in
  let n = max 0 domains in
  let workers = Array.init n (fun _ -> Domain.spawn (fun () -> worker_loop t)) in
  t.workers <- workers;
  t.worker_ids <- Array.to_list (Array.map Domain.get_id workers);
  t

let run_inline f =
  match f () with
  | v -> { fm = Mutex.create (); fc = Condition.create (); state = Done v }
  | exception e -> { fm = Mutex.create (); fc = Condition.create (); state = Failed e }

let submit t f =
  if Array.length t.workers = 0 || in_worker t then run_inline f
  else begin
    let fut = { fm = Mutex.create (); fc = Condition.create (); state = Pending } in
    let run () =
      let outcome = match f () with v -> Done v | exception e -> Failed e in
      Mutex.lock fut.fm;
      fut.state <- outcome;
      Condition.broadcast fut.fc;
      Mutex.unlock fut.fm
    in
    Mutex.lock t.m;
    if t.stopping then begin
      Mutex.unlock t.m;
      invalid_arg "Pool.submit: pool is shut down"
    end;
    Queue.push { run } t.queue;
    Condition.signal t.nonempty;
    Mutex.unlock t.m;
    fut
  end

let await fut =
  Mutex.lock fut.fm;
  let rec settled () =
    (* match, not (=): polymorphic equality on ['a state] could dive into
       arbitrary payloads *)
    match fut.state with
    | Pending ->
        Condition.wait fut.fc fut.fm;
        settled ()
    | s -> s
  in
  let state = settled () in
  Mutex.unlock fut.fm;
  match state with Done v -> v | Failed e -> raise e | Pending -> assert false

let run_all t fs = List.map (submit t) fs |> List.map await

let shutdown t =
  Mutex.lock t.m;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.m;
  Array.iter Domain.join t.workers;
  t.workers <- [||];
  t.worker_ids <- []
