(* On-disk persistence for the memo store, in the spirit of [Complex_io]:
   a plain line-oriented text format, one cached answer per line,

     <32-hex key> <connectivity> <betti CSV, or "-" when empty>

   e.g. "00ab..ff 0 1,0,1".  Loading is tolerant: malformed lines are
   skipped, so a truncated file (crash mid-flush) costs cache warmth, not
   correctness — content addressing guarantees a stale or corrupt entry
   can only be dropped, never mismatched.

   Persistence latency and load outcomes are reported through {!Obs}:
   [store.save_s] (write latency histogram, inside a [store.save] span),
   [store.load_s], and the [store.loaded] / [store.skipped] counters. *)

open Psph_obs

type entry = { betti : int array; connectivity : int }

let save_s = lazy (Obs.histogram "store.save_s")

let load_s = lazy (Obs.histogram "store.load_s")

let loaded_lines = lazy (Obs.counter "store.loaded")

let skipped_lines = lazy (Obs.counter "store.skipped")

let entry_to_line key e =
  Printf.sprintf "%s %d %s" (Key.to_hex key) e.connectivity
    (if Array.length e.betti = 0 then "-"
     else String.concat "," (Array.to_list (Array.map string_of_int e.betti)))

let entry_of_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ hex; conn; betti ] -> (
      match (Key.of_hex_opt hex, int_of_string_opt conn) with
      | Some key, Some connectivity -> (
          if betti = "-" then Some (key, { betti = [||]; connectivity })
          else
            let parts = String.split_on_char ',' betti in
            let ints = List.filter_map int_of_string_opt parts in
            if List.length ints = List.length parts then
              Some (key, { betti = Array.of_list ints; connectivity })
            else None)
      | _ -> None)
  | _ -> None

let save path entries =
  Obs.with_span "store.save"
    ~attrs:[ ("entries", Jsonl.int (List.length entries)) ]
    (fun _ ->
      Obs.time (Lazy.force save_s) (fun () ->
          let tmp = path ^ ".tmp" in
          let oc = open_out tmp in
          List.iter
            (fun (key, e) ->
              output_string oc (entry_to_line key e);
              output_char oc '\n')
            entries;
          close_out oc;
          Sys.rename tmp path))

let load path =
  if not (Sys.file_exists path) then []
  else
    Obs.time (Lazy.force load_s) (fun () ->
        let ic = open_in path in
        let rec loop acc =
          match input_line ic with
          | line ->
              loop
                (match entry_of_line line with
                | Some e ->
                    Obs.incr (Lazy.force loaded_lines);
                    e :: acc
                | None ->
                    Obs.incr (Lazy.force skipped_lines);
                    acc)
          | exception End_of_file -> List.rev acc
        in
        let entries = loop [] in
        close_in ic;
        entries)
