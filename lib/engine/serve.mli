(** The [psc serve] JSON-lines front end.

    One request object per input line, one response object per output
    line.  Ops: [betti], [connectivity], [psph], [model-complex], [batch]
    (members evaluated in parallel), [models], [stats], [metrics]
    (the full {!Psph_obs.Obs.snapshot_json} of counters, gauges,
    histograms and span totals; [stats] carries the same snapshot in a
    "metrics" field), and the replication pair [snapshot] (page the memo
    cache out in {!Store} line format, [cursor]/[limit] chunked) /
    [populate] (load finished answers in) that cache warming and the
    router's populate hints ride (docs/NET.md).  The full wire protocol
    is specified in docs/ENGINE.md and docs/OBSERVABILITY.md.

    Every request runs in a [serve.request] span (attrs: a process-wide
    request counter and the op name) and is timed into a per-op
    [serve.op.<op>] histogram.

    Malformed requests — and any unexpected exception a handler raises —
    produce [{"ok":false,"error":...}] responses, echoing the request's
    ["id"] when one was parsed, and the loop continues. *)

val handle_line : Engine.t -> string -> string
(** Process one request line, returning the response line (no trailing
    newline).  Never raises.  This is the transport-independent core:
    {!run} drives it from stdio and [Psph_net.Server] drives the same
    function over TCP (see docs/NET.md). *)

val run : Engine.t -> in_channel -> out_channel -> unit
(** Serve until EOF (responses flushed per line), then {!Engine.flush}. *)
