(** The [psc serve] JSON-lines front end.

    One request object per input line, one response object per output
    line.  Ops: [betti], [connectivity], [psph], [model-complex], [batch]
    (members evaluated in parallel), [stats].  Malformed requests produce
    [{"ok":false,"error":...}] responses and the loop continues.  The full
    wire protocol is specified in docs/ENGINE.md. *)

val handle_line : Engine.t -> string -> string
(** Process one request line, returning the response line (no trailing
    newline).  Never raises on malformed input. *)

val run : Engine.t -> in_channel -> out_channel -> unit
(** Serve until EOF (responses flushed per line), then {!Engine.flush}. *)
