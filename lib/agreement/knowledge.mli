(** Knowledge over protocol complexes.

    Section 1 credits the notion of indistinguishability/similarity to the
    knowledge literature [FLP85, HM90]: two global states are similar to a
    process when its local state is the same in both.  In simplicial terms
    this is the protocol complex itself, and the standard epistemic
    operators have crisp geometric readings:

    - a {e fact} is a property of global states (facets);
    - process [P] {e knows} a fact at its vertex [v] iff the fact holds in
      every facet containing [v];
    - {e everyone knows} a fact at a facet iff every vertex of the facet
      knows it; iterating gives [E^k];
    - a fact is {e common knowledge} at a facet iff it holds at every facet
      of the connected component — which is why connectivity is the
      obstruction to agreement.

    The module implements those operators and the classical corollary: in a
    connected protocol complex, a fact that fails somewhere is nowhere
    common knowledge (and consensus needs common knowledge of the decision
    value's presence). *)

open Psph_topology

type fact = Simplex.t -> bool
(** A property of global states (evaluated on facets). *)

val knows : Complex.t -> Vertex.t -> fact -> bool
(** [knows c v phi]: [phi] holds at every facet of [c] containing [v]. *)

val everyone_knows : Complex.t -> Simplex.t -> fact -> bool
(** Every vertex of the facet knows the fact. *)

val iterate_everyone_knows : Complex.t -> int -> fact -> fact
(** [E^k phi] as a fact on facets ([k = 0] is [phi] itself). *)

val common_knowledge_at : Complex.t -> Simplex.t -> fact -> bool
(** The fact holds at every facet of the connected component of the given
    facet. *)

val fact_value_present : Psph_model.Value.t -> fact
(** "Some process in this global state has seen input [v]" — the fact whose
    common knowledge consensus on [v] requires. *)

val component_facets : Complex.t -> Simplex.t -> Simplex.t list
(** All facets sharing the given facet's connected component. *)
