open Psph_topology
open Pseudosphere

let corollary13_impossible ~f ~k = k <= f

let theorem18_rounds ~n ~f ~k = Sync_complex.theorem18_lower_bound ~n ~f ~k

let corollary22_time = Semi_sync_complex.corollary22_time

type check = {
  label : string;
  connectivity : int;
  expected_connectivity : int;
  decision : Decision.verdict;
  impossible_expected : bool;
}

let pp_verdict ppf = function
  | Decision.Solution _ -> Format.pp_print_string ppf "solvable"
  | Decision.Impossible -> Format.pp_print_string ppf "impossible"
  | Decision.Unknown -> Format.pp_print_string ppf "unknown"

let pp_check ppf c =
  Format.fprintf ppf "%s: conn=%d (claimed >= %d), decision=%a (expected %s)"
    c.label c.connectivity c.expected_connectivity pp_verdict c.decision
    (if c.impossible_expected then "impossible" else "solvable")

let holds c =
  c.connectivity >= c.expected_connectivity
  &&
  match (c.decision, c.impossible_expected) with
  | Decision.Impossible, true | Decision.Solution _, false -> true
  | Decision.Impossible, false | Decision.Solution _, true | Decision.Unknown, _
    ->
      false

let measure ~label ~complex ~k_task ~expected_connectivity ~impossible_expected =
  let connectivity = Homology.connectivity ~cap:(k_task + 1) complex in
  let decision =
    Decision.solve ~complex ~allowed:Task.allowed ~k:k_task ()
  in
  { label; connectivity; expected_connectivity; decision; impossible_expected }

let async_check ~n ~f ~k ~r ~values =
  let inputs = Input_complex.make ~n ~values in
  let complex = Async_complex.over_inputs ~n ~f ~r inputs in
  measure
    ~label:(Printf.sprintf "async n=%d f=%d k=%d r=%d" n f k r)
    ~complex ~k_task:k
    ~expected_connectivity:(Async_complex.lemma12_expected_connectivity ~m:n ~n ~f)
    ~impossible_expected:(corollary13_impossible ~f ~k)

let sync_check ~n ~k_round ~k_task ~r ~values =
  let inputs = Input_complex.make ~n ~values in
  let complex = Sync_complex.over_inputs ~k:k_round ~r inputs in
  (* Theorem 18's complex sustains impossibility while n >= rk + k *)
  let impossible_expected = n >= (r * k_round) + k_round && k_task <= k_round in
  measure
    ~label:(Printf.sprintf "sync n=%d k=%d r=%d task=%d-set" n k_round r k_task)
    ~complex ~k_task
    ~expected_connectivity:
      (if n >= (r * k_round) + k_round then
         Sync_complex.lemma16_expected_connectivity ~m:n ~n ~k:k_round
       else -2)
    ~impossible_expected

let semi_check ~n ~k_round ~k_task ~p ~r ~values =
  let inputs = Input_complex.make ~n ~values in
  let complex = Semi_sync_complex.over_inputs ~k:k_round ~p ~n ~r inputs in
  let impossible_expected = n >= (r + 1) * k_round && k_task <= k_round in
  measure
    ~label:
      (Printf.sprintf "semi n=%d k=%d p=%d r=%d task=%d-set" n k_round p r k_task)
    ~complex ~k_task
    ~expected_connectivity:
      (if n >= (r + 1) * k_round then
         Semi_sync_complex.lemma21_expected_connectivity ~m:n ~n ~k:k_round
       else -2)
    ~impossible_expected
