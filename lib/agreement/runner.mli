(** Protocol execution and verification harness.

    Runs full-information protocols over the round-based models with
    failure injection, records decisions, and — for small systems —
    exhaustively checks the task properties over {e every} well-behaved
    execution, making the upper-bound claims as machine-checked as the
    lower bounds. *)

open Psph_topology
open Psph_model

type report = {
  rounds_used : int;  (** max rounds before every survivor decided *)
  decisions : (Pid.t * int * Value.t) list;
      (** (process, decision round, value) *)
}

val run_sync :
  protocol:Protocol.t ->
  inputs:(Pid.t * Value.t) list ->
  schedule:(round:int -> alive:Pid.Set.t -> Round_schedule.sync) ->
  max_rounds:int ->
  report
(** Execute one synchronous execution with the given per-round failure
    schedule. *)

val crash_schedule :
  plan:(int * Pid.t * Pid.Set.t) list ->
  round:int -> alive:Pid.Set.t -> Round_schedule.sync
(** A schedule from a crash plan: [(round, victim, still_delivered_to)]
    triples. *)

type violation = Agreement_violated | Validity_violated | Termination_violated

val pp_violation : Format.formatter -> violation -> unit

val check_sync_exhaustive :
  protocol:Protocol.t ->
  k_task:int ->
  total_crashes:int ->
  inputs:(Pid.t * Value.t) list ->
  max_rounds:int ->
  violation list
(** Run the protocol over {e all} synchronous executions with at most
    [total_crashes] crashes overall and check k-set agreement's three
    properties on each ([[]] means fully verified).  Exponential — use
    small systems. *)

val run_async_with :
  protocol:Protocol.t ->
  inputs:(Pid.t * Value.t) list ->
  schedule:(round:int -> Round_schedule.async) ->
  rounds:int ->
  report
(** Drive an asynchronous execution for a fixed number of rounds (decided
    processes are reported; undecided ones are absent). *)
