open Psph_topology
open Psph_model

let output_vertex p v = Vertex.proc p (Value.to_label v)

let kset_output ~n ~k ~values =
  (* facets: choose <= k values and a surjection-ish assignment; simplest:
     enumerate value tuples with <= k distinct entries *)
  let pids = Pid.all n in
  let rec tuples = function
    | [] -> [ [] ]
    | _ :: rest ->
        let tails = tuples rest in
        List.concat_map (fun v -> List.map (fun tl -> v :: tl) tails) values
  in
  let facets =
    tuples pids
    |> List.filter (fun tuple ->
           Value.Set.cardinal (Value.Set.of_list tuple) <= k)
    |> List.map (fun tuple ->
           Simplex.of_list (List.map2 output_vertex pids tuple))
  in
  Complex.of_facets facets

let consensus_output ~n ~values = kset_output ~n ~k:1 ~values

type verdict =
  | Map of Vertex.t Vertex.Map.t
  | Impossible
  | Unknown

exception Out_of_budget

let solve ?(budget = 20_000_000) ~complex ~output ~carrier () =
  let vertices = Array.of_list (Complex.vertices complex) in
  let nv = Array.length vertices in
  if nv = 0 then Map Vertex.Map.empty
  else begin
    let index =
      let m = ref Vertex.Map.empty in
      Array.iteri (fun i v -> m := Vertex.Map.add v i !m) vertices;
      !m
    in
    (* domain: output vertices with the same colour, allowed by the
       carrier, and actually present in the output complex *)
    let domains =
      Array.map
        (fun v ->
          match Vertex.pid v with
          | None -> [||]
          | Some p ->
              carrier v
              |> List.filter_map (fun value ->
                     let w = output_vertex p value in
                     if Complex.mem_vertex w output then Some w else None)
              |> Array.of_list)
        vertices
    in
    let facets =
      Complex.facets complex
      |> List.map (fun s ->
             Simplex.vertices s
             |> List.map (fun v -> Vertex.Map.find v index)
             |> Array.of_list)
      |> Array.of_list
    in
    let facets_of = Array.make nv [] in
    Array.iteri
      (fun fi f -> Array.iter (fun vi -> facets_of.(vi) <- fi :: facets_of.(vi)) f)
      facets;
    let order = Array.init nv (fun i -> i) in
    Array.sort
      (fun a b ->
        let c = Int.compare (Array.length domains.(a)) (Array.length domains.(b)) in
        if c <> 0 then c
        else Int.compare (List.length facets_of.(b)) (List.length facets_of.(a)))
      order;
    let assignment = Array.make nv None in
    let nodes = ref 0 in
    let facet_ok fi =
      (* the image of the assigned part must be a simplex of the output *)
      let image =
        Array.to_list facets.(fi)
        |> List.filter_map (fun vi -> assignment.(vi))
      in
      Complex.mem (Simplex.of_list image) output || image = []
    in
    let rec go pos =
      incr nodes;
      if !nodes > budget then raise Out_of_budget;
      if pos >= nv then true
      else begin
        let vi = order.(pos) in
        Array.exists
          (fun w ->
            assignment.(vi) <- Some w;
            let consistent = List.for_all facet_ok facets_of.(vi) in
            if consistent && go (pos + 1) then true
            else begin
              assignment.(vi) <- None;
              false
            end)
          domains.(vi)
      end
    in
    match go 0 with
    | true ->
        let map =
          Array.to_seq (Array.mapi (fun i v -> (vertices.(i), v)) assignment)
          |> Seq.filter_map (fun (v, a) ->
                 match a with Some w -> Some (v, w) | None -> None)
          |> Vertex.Map.of_seq
        in
        Map map
    | false -> Impossible
    | exception Out_of_budget -> Unknown
  end

let agrees_with_decision ~complex ~n ~k ~values =
  let output = kset_output ~n ~k ~values in
  let a =
    match solve ~complex ~output ~carrier:Task.allowed () with
    | Map _ -> `S
    | Impossible -> `I
    | Unknown -> `U
  in
  let b =
    match Decision.solve ~complex ~allowed:Task.allowed ~k () with
    | Decision.Solution _ -> `S
    | Decision.Impossible -> `I
    | Decision.Unknown -> `U
  in
  a = b
