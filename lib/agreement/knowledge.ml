open Psph_topology
open Psph_model

type fact = Simplex.t -> bool

let facets_containing c v =
  List.filter (fun s -> Simplex.mem v s) (Complex.facets c)

let knows c v phi = List.for_all phi (facets_containing c v)

let everyone_knows c facet phi =
  List.for_all (fun v -> knows c v phi) (Simplex.vertices facet)

let iterate_everyone_knows c k phi =
  let rec go k (phi : fact) : fact =
    if k <= 0 then phi else go (k - 1) (fun facet -> everyone_knows c facet phi)
  in
  go k phi

let component_facets c facet =
  match Simplex.vertices facet with
  | [] -> []
  | v :: _ ->
      let comps = Complex.connected_components c in
      let comp =
        List.find_opt (fun vs -> Vertex.Set.mem v vs) comps
        |> Option.value ~default:Vertex.Set.empty
      in
      List.filter
        (fun s ->
          match Simplex.vertices s with
          | w :: _ -> Vertex.Set.mem w comp
          | [] -> false)
        (Complex.facets c)

let common_knowledge_at c facet phi = List.for_all phi (component_facets c facet)

let fact_value_present target facet =
  List.exists
    (fun v ->
      match v with
      | Vertex.Proc (_, l) -> Value.Set.mem target (View.seen_values (View.of_label l))
      | Vertex.Anon _ | Vertex.Bary _ -> false)
    (Simplex.vertices facet)
