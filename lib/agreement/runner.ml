open Psph_topology
open Psph_model

type report = {
  rounds_used : int;
  decisions : (Pid.t * int * Value.t) list;
}

let collect_decisions protocol globals_per_round =
  (* globals_per_round: (round, global) in increasing round order *)
  let decided = ref Pid.Set.empty in
  let decisions = ref [] in
  List.iter
    (fun (round, g) ->
      Pid.Map.iter
        (fun q view ->
          if not (Pid.Set.mem q !decided) then
            match protocol.Protocol.decide view with
            | Some value ->
                decided := Pid.Set.add q !decided;
                decisions := (q, round, value) :: !decisions
            | None -> ())
        g)
    globals_per_round;
  List.rev !decisions

let run_sync ~protocol ~inputs ~schedule ~max_rounds =
  let g0 = Execution.initial inputs in
  let rec loop round g acc =
    if round > max_rounds then List.rev acc
    else begin
      let sched = schedule ~round ~alive:(Execution.alive g) in
      let g' = Execution.apply_sync g sched in
      loop (round + 1) g' ((round, g') :: acc)
    end
  in
  let history = loop 1 g0 [] in
  let decisions = collect_decisions protocol history in
  let rounds_used =
    List.fold_left (fun acc (_, r, _) -> max acc r) 0 decisions
  in
  { rounds_used; decisions }

let crash_schedule ~plan ~round ~alive =
  let victims =
    List.filter_map
      (fun (r, q, _) -> if r = round && Pid.Set.mem q alive then Some q else None)
      plan
  in
  let failed = Pid.Set.of_list victims in
  let survivors = Pid.Set.diff alive failed in
  let heard_faulty =
    Pid.Set.fold
      (fun q acc ->
        let heard =
          List.fold_left
            (fun h (r, victim, dsts) ->
              if r = round && Pid.Set.mem victim failed && Pid.Set.mem q dsts then
                Pid.Set.add victim h
              else h)
            Pid.Set.empty plan
        in
        Pid.Map.add q heard acc)
      survivors Pid.Map.empty
  in
  { Round_schedule.failed; heard_faulty }

type violation = Agreement_violated | Validity_violated | Termination_violated

let pp_violation ppf = function
  | Agreement_violated -> Format.pp_print_string ppf "agreement violated"
  | Validity_violated -> Format.pp_print_string ppf "validity violated"
  | Termination_violated -> Format.pp_print_string ppf "termination violated"

let check_sync_exhaustive ~protocol ~k_task ~total_crashes ~inputs ~max_rounds =
  let input_values = Value.Set.of_list (List.map snd inputs) in
  let violations = ref [] in
  let note v = if not (List.mem v !violations) then violations := v :: !violations in
  let rec explore round g decided budget =
    (* decided: pid -> value for processes that have decided *)
    let decided =
      Pid.Map.fold
        (fun q view acc ->
          if Pid.Map.mem q acc then acc
          else
            match protocol.Protocol.decide view with
            | Some value -> Pid.Map.add q value acc
            | None -> acc)
        g decided
    in
    let chosen =
      Pid.Map.fold (fun _ v acc -> Value.Set.add v acc) decided Value.Set.empty
    in
    if Value.Set.cardinal chosen > k_task then note Agreement_violated;
    if not (Value.Set.subset chosen input_values) then note Validity_violated;
    if round >= max_rounds then begin
      (* every survivor must have decided by the horizon *)
      let undecided =
        Pid.Map.exists (fun q _ -> not (Pid.Map.mem q decided)) g
      in
      if undecided then note Termination_violated
    end
    else
      List.iter
        (fun sched ->
          let crashed = Pid.Set.cardinal sched.Round_schedule.failed in
          explore (round + 1)
            (Execution.apply_sync g sched)
            decided (budget - crashed))
        (Round_schedule.sync_schedules ~k:budget ~alive:(Execution.alive g))
  in
  explore 0 (Execution.initial inputs) Pid.Map.empty total_crashes;
  List.rev !violations

let run_async_with ~protocol ~inputs ~schedule ~rounds =
  let g0 = Execution.initial inputs in
  let rec loop round g acc =
    if round > rounds then List.rev acc
    else begin
      let g' = Execution.apply_async g (schedule ~round) in
      loop (round + 1) g' ((round, g') :: acc)
    end
  in
  let history = loop 1 g0 [] in
  let decisions = collect_decisions protocol history in
  let rounds_used = List.fold_left (fun acc (_, r, _) -> max acc r) 0 decisions in
  { rounds_used; decisions }
