open Psph_topology
open Psph_model

type t = { name : string; n : int; k : int; values : Value.t list }

let kset ~n ~k ~values =
  { name = Printf.sprintf "%d-set agreement" k; n; k; values }

let consensus ~n ~values = { (kset ~n ~k:1 ~values) with name = "consensus" }

let input_complex t = Pseudosphere.Input_complex.make ~n:t.n ~values:t.values

let allowed v =
  match v with
  | Vertex.Proc (_, l) -> Value.Set.elements (View.seen_values (View.of_label l))
  | Vertex.Anon _ | Vertex.Bary _ -> []

let valid_decision_map t complex map =
  let validity =
    List.for_all
      (fun v -> List.exists (Value.equal (map v)) (allowed v))
      (Complex.vertices complex)
  in
  let agreement =
    List.for_all
      (fun s ->
        let decisions =
          List.fold_left
            (fun acc v -> Value.Set.add (map v) acc)
            Value.Set.empty (Simplex.vertices s)
        in
        Value.Set.cardinal decisions <= t.k)
      (Complex.facets complex)
  in
  validity && agreement
