open Psph_topology
open Psph_model

let flood_consensus ~f =
  { (Protocol.decide_after_rounds (f + 1)) with name = "flood-consensus" }

let sync_kset_rounds ~f ~k = (f / k) + 1

let sync_kset ~f ~k =
  {
    (Protocol.decide_after_rounds (sync_kset_rounds ~f ~k)) with
    name = Printf.sprintf "sync-%d-set" k;
  }

let early_deciding_consensus ~n ~f =
  ignore n;
  Protocol.make ~name:"early-deciding-consensus" ~decide:(fun view ->
      (* decide once the heard set is stable across two consecutive rounds
         (no new failure observed), or unconditionally at round f + 1 *)
      let r = View.rounds view in
      let stable =
        match view with
        | View.Round { prev; heard } ->
            Pid.Set.equal
              (Pid.Set.of_list (List.map fst heard))
              (View.heard_pids prev)
            && View.rounds prev >= 1
        | View.Init _ | View.Timed_round _ -> false
      in
      if (r >= 2 && stable) || r >= f + 1 then Some (Protocol.min_seen view)
      else None)

let semi_sync_consensus ~f =
  { (Protocol.decide_after_rounds (f + 1)) with name = "semi-sync-consensus" }

let async_never_terminating_adversary ~n ~victim =
  List.fold_left
    (fun acc q ->
      let heard =
        if Pid.equal q victim then Pid.universe n
        else Pid.Set.remove victim (Pid.universe n)
      in
      Pid.Map.add q heard acc)
    Pid.Map.empty (Pid.all n)

let certainty_consensus ~n =
  Protocol.make ~name:"certainty-consensus" ~decide:(fun view ->
      let seen = View.seen_pids view in
      if Pid.Set.cardinal seen >= n + 1 then Some (Protocol.min_seen view)
      else None)
