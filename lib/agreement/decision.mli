(** Exhaustive decision-map search.

    Theorems 9/10 and Corollaries 13/18/22 assert that no decision map
    exists on sufficiently connected protocol complexes.  This module
    decides the question {e directly} on concrete complexes: a backtracking
    constraint search over vertex assignments with validity domains
    ({!Task.allowed}) and the per-facet "at most [k] distinct values"
    constraint.  [Impossible] results are exhaustive-search certificates of
    the paper's lower bounds at the tested sizes; [Solution] results
    witness solvability (e.g. one round beyond the bound). *)

open Psph_topology
open Psph_model

type verdict =
  | Solution of Value.t Vertex.Map.t
  | Impossible
  | Unknown  (** node budget exhausted *)

val solve :
  ?budget:int ->
  ?forward_check:bool ->
  complex:Complex.t ->
  allowed:(Vertex.t -> Value.t list) ->
  k:int ->
  unit ->
  verdict
(** Search for a decision map.  [budget] bounds the number of search nodes
    (default 20 million).  [forward_check] (default [true]) prunes branches
    in which a saturated facet leaves some unassigned vertex without a
    compatible value; disabling it is the ablation benchmarked in
    [bench/main.ml]. *)

val solvable :
  ?budget:int ->
  ?forward_check:bool ->
  complex:Complex.t ->
  allowed:(Vertex.t -> Value.t list) ->
  k:int ->
  unit ->
  bool option
(** [Some true] / [Some false] when the search completes, [None] on budget
    exhaustion. *)

val solve_general :
  ?budget:int ->
  complex:Complex.t ->
  domains:(Vertex.t -> Value.t list) ->
  partial_ok:(Value.t list -> bool) ->
  unit ->
  verdict
(** Task-agnostic search: [partial_ok] is a monotone predicate on the
    values assigned so far within one facet (it may return [false] only
    when no completion can be valid).  [solve_general] with
    {!kset_constraint} agrees with {!solve}; {!distinct_constraint} gives
    renaming-style tasks. *)

val kset_constraint : int -> Value.t list -> bool
(** "At most k distinct values." *)

val distinct_constraint : Value.t list -> bool
(** "Pairwise distinct values." *)

val consensus_components_solvable :
  complex:Complex.t -> allowed:(Vertex.t -> Value.t list) -> bool
(** Fast exact decision for [k = 1]: a consensus map exists iff every
    connected component's vertices share a common allowed value.  Used as a
    cross-check of {!solve}. *)
