(** Executable agreement protocols: the upper bounds matching the paper's
    lower bounds.

    All are full-information protocols (the paper's normal form), differing
    only in their decision rules. *)

open Psph_model

val flood_consensus : f:int -> Protocol.t
(** Synchronous flooding consensus: decide the minimum seen input after
    [f + 1] rounds.  Matches the [f/1 + 1] round bound of Theorem 18 with
    [k = 1]. *)

val sync_kset : f:int -> k:int -> Protocol.t
(** Synchronous k-set agreement: decide the minimum seen input after
    [floor (f/k) + 1] rounds — the protocol that makes Theorem 18 tight
    (Chaudhuri et al.). *)

val sync_kset_rounds : f:int -> k:int -> int
(** The number of rounds {!sync_kset} runs: [floor (f/k) + 1]. *)

val early_deciding_consensus : n:int -> f:int -> Protocol.t
(** Early-stopping flooding consensus: decide the minimum seen value at the
    first round [r >= 2] whose heard set equals the previous round's (a
    round revealing no new failure), or unconditionally at round [f + 1].
    Decides in [min (f' + 2, f + 1)] rounds when [f'] crashes actually
    occur — round 2 in failure-free runs — and is exhaustively verified
    safe by the test-suite.  (The naive rule "decide when fewer than [r]
    failures are observed" is {e unsafe}: a process that received a
    crashing minimum-holder's last message sees a seemingly failure-free
    round, decides, and can die before relaying — the exhaustive checker
    found exactly that execution.) *)

val semi_sync_consensus : f:int -> Protocol.t
(** Timeout-based semi-synchronous consensus on the round-structured
    executions: decide the minimum seen value after [f + 1] rounds (time
    [(f + 1) d]).  Corollary 22 with [k = 1] lower-bounds any such protocol
    by [(f - 1) d + C d], so this simple protocol is within [2d - Cd] of
    optimal. *)

val async_never_terminating_adversary :
  n:int -> victim:Psph_topology.Pid.t -> Round_schedule.async
(** A one-round asynchronous schedule (for [f >= 1]) in which nobody hears
    from [victim]; repeating it forever keeps any "wait until certain"
    consensus protocol undecided — the executable face of Corollary 13 /
    FLP. *)

val certainty_consensus : n:int -> Protocol.t
(** The natural-but-doomed asynchronous protocol: decide the minimum seen
    input once the view contains {e every} process's input.  Safe, but the
    adversary of {!async_never_terminating_adversary} starves it forever. *)
