open Psph_topology
open Psph_model

type verdict = Solution of Value.t Vertex.Map.t | Impossible | Unknown

exception Out_of_budget

let solve ?(budget = 20_000_000) ?(forward_check = true) ~complex ~allowed ~k () =
  let vertices = Array.of_list (Complex.vertices complex) in
  let nv = Array.length vertices in
  if nv = 0 then Solution Vertex.Map.empty
  else begin
    let index =
      let m = ref Vertex.Map.empty in
      Array.iteri (fun i v -> m := Vertex.Map.add v i !m) vertices;
      !m
    in
    let domains = Array.map (fun v -> Array.of_list (allowed v)) vertices in
    (* facets as index arrays; per vertex, the facets containing it *)
    let facets =
      Complex.facets complex
      |> List.map (fun s ->
             Simplex.vertices s
             |> List.map (fun v -> Vertex.Map.find v index)
             |> Array.of_list)
      |> Array.of_list
    in
    let facets_of = Array.make nv [] in
    Array.iteri
      (fun fi f -> Array.iter (fun vi -> facets_of.(vi) <- fi :: facets_of.(vi)) f)
      facets;
    (* order: most constrained (smallest domain), then most facets *)
    let order = Array.init nv (fun i -> i) in
    Array.sort
      (fun a b ->
        let c = Int.compare (Array.length domains.(a)) (Array.length domains.(b)) in
        if c <> 0 then c
        else Int.compare (List.length facets_of.(b)) (List.length facets_of.(a)))
      order;
    let assignment = Array.make nv None in
    let nodes = ref 0 in
    let facet_ok fi =
      (* distinct assigned values <= k, and if exactly k, every unassigned
         vertex in the facet can still take one of them *)
      let distinct = ref Value.Set.empty in
      Array.iter
        (fun vi ->
          match assignment.(vi) with
          | Some value -> distinct := Value.Set.add value !distinct
          | None -> ())
        facets.(fi);
      let d = Value.Set.cardinal !distinct in
      if d > k then false
      else if d < k || not forward_check then true
      else
        Array.for_all
          (fun vi ->
            match assignment.(vi) with
            | Some _ -> true
            | None ->
                Array.exists (fun u -> Value.Set.mem u !distinct) domains.(vi))
          facets.(fi)
    in
    let rec go pos =
      incr nodes;
      if !nodes > budget then raise Out_of_budget;
      if pos >= nv then true
      else begin
        let vi = order.(pos) in
        let ok =
          Array.exists
            (fun value ->
              assignment.(vi) <- Some value;
              let consistent = List.for_all facet_ok facets_of.(vi) in
              if consistent && go (pos + 1) then true
              else begin
                assignment.(vi) <- None;
                false
              end)
            domains.(vi)
        in
        ok
      end
    in
    match go 0 with
    | true ->
        let map =
          Array.to_seq (Array.mapi (fun i v -> (vertices.(i), v)) assignment)
          |> Seq.filter_map (fun (v, a) ->
                 match a with Some value -> Some (v, value) | None -> None)
          |> Vertex.Map.of_seq
        in
        Solution map
    | false -> Impossible
    | exception Out_of_budget -> Unknown
  end

let solvable ?budget ?forward_check ~complex ~allowed ~k () =
  match solve ?budget ?forward_check ~complex ~allowed ~k () with
  | Solution _ -> Some true
  | Impossible -> Some false
  | Unknown -> None

(* Generalized search: the per-facet constraint is an arbitrary monotone
   predicate on the multiset of values assigned so far ("monotone" meaning
   it may only return false when no completion of the partial assignment
   can be valid — e.g. "at most k distinct", "pairwise distinct").  Slower
   than [solve] (no k-specific forward checking) but task-agnostic. *)
let solve_general ?(budget = 20_000_000) ~complex ~domains ~partial_ok () =
  let vertices = Array.of_list (Complex.vertices complex) in
  let nv = Array.length vertices in
  if nv = 0 then Solution Vertex.Map.empty
  else begin
    let index =
      let m = ref Vertex.Map.empty in
      Array.iteri (fun i v -> m := Vertex.Map.add v i !m) vertices;
      !m
    in
    let doms = Array.map (fun v -> Array.of_list (domains v)) vertices in
    let facets =
      Complex.facets complex
      |> List.map (fun s ->
             Simplex.vertices s
             |> List.map (fun v -> Vertex.Map.find v index)
             |> Array.of_list)
      |> Array.of_list
    in
    let facets_of = Array.make nv [] in
    Array.iteri
      (fun fi f -> Array.iter (fun vi -> facets_of.(vi) <- fi :: facets_of.(vi)) f)
      facets;
    let order = Array.init nv (fun i -> i) in
    Array.sort
      (fun a b ->
        let c = Int.compare (Array.length doms.(a)) (Array.length doms.(b)) in
        if c <> 0 then c
        else Int.compare (List.length facets_of.(b)) (List.length facets_of.(a)))
      order;
    let assignment = Array.make nv None in
    let nodes = ref 0 in
    let facet_ok fi =
      let assigned =
        Array.to_list facets.(fi)
        |> List.filter_map (fun vi -> assignment.(vi))
      in
      partial_ok assigned
    in
    let rec go pos =
      incr nodes;
      if !nodes > budget then raise Out_of_budget;
      if pos >= nv then true
      else begin
        let vi = order.(pos) in
        Array.exists
          (fun value ->
            assignment.(vi) <- Some value;
            let consistent = List.for_all facet_ok facets_of.(vi) in
            if consistent && go (pos + 1) then true
            else begin
              assignment.(vi) <- None;
              false
            end)
          doms.(vi)
      end
    in
    match go 0 with
    | true ->
        let map =
          Array.to_seq (Array.mapi (fun i v -> (vertices.(i), v)) assignment)
          |> Seq.filter_map (fun (v, a) ->
                 match a with Some value -> Some (v, value) | None -> None)
          |> Vertex.Map.of_seq
        in
        Solution map
    | false -> Impossible
    | exception Out_of_budget -> Unknown
  end

let kset_constraint k assigned =
  Value.Set.cardinal (Value.Set.of_list assigned) <= k

let distinct_constraint assigned =
  let s = Value.Set.of_list assigned in
  Value.Set.cardinal s = List.length assigned

let consensus_components_solvable ~complex ~allowed =
  Complex.connected_components complex
  |> List.for_all (fun comp ->
         let common =
           Vertex.Set.fold
             (fun v acc ->
               let dom = Value.Set.of_list (allowed v) in
               match acc with
               | None -> Some dom
               | Some so_far -> Some (Value.Set.inter so_far dom))
             comp None
         in
         match common with
         | None -> true
         | Some values -> not (Value.Set.is_empty values))
