(** Tasks as output complexes and carrier-preserving simplicial maps.

    In the topological formulation (Herlihy–Shavit's asynchronous
    computability theorem, which Section 2 says the pseudosphere
    construction simplifies), a task is an {e output complex} [O] plus a
    {e carrier map} assigning to each input simplex the subcomplex of legal
    outputs, and a protocol solves the task iff there is a colour- and
    carrier-preserving simplicial map from its protocol complex to [O].

    A decision map in the paper's sense (Section 4) is exactly such a map
    into the k-set agreement output complex, so {!solve} strictly
    generalizes {!Decision.solve}; the test-suite checks the two agree on
    k-set instances. *)

open Psph_topology
open Psph_model

val kset_output : n:int -> k:int -> values:Value.t list -> Complex.t
(** The k-set agreement output complex: vertices [(P, v)], facets all
    chromatic [n]-simplexes carrying at most [k] distinct values. *)

val consensus_output : n:int -> values:Value.t list -> Complex.t
(** [kset_output ~k:1]: one disjoint monochrome simplex per value. *)

val output_vertex : Pid.t -> Value.t -> Vertex.t
(** The vertex [(P, v)] of an output complex. *)

type verdict =
  | Map of Vertex.t Vertex.Map.t  (** protocol vertex -> output vertex *)
  | Impossible
  | Unknown

val solve :
  ?budget:int ->
  complex:Complex.t ->
  output:Complex.t ->
  carrier:(Vertex.t -> Value.t list) ->
  unit ->
  verdict
(** Search for a colour-preserving simplicial map from the protocol complex
    to [output] sending each vertex [(P, view)] to some [(P, v)] with [v]
    allowed by the carrier, such that every facet's image is a simplex of
    [output]. *)

val agrees_with_decision :
  complex:Complex.t -> n:int -> k:int -> values:Value.t list -> bool
(** The carrier-map search and {!Decision.solve} return the same
    solvability verdict on the k-set task. *)
