(** Decision tasks (Section 4).

    In the k-set agreement task processes must (1) decide after finitely
    many steps, (2) decide some process's input value, and (3) collectively
    choose at most [k] distinct values.  [k = 1] is consensus. *)

open Psph_topology
open Psph_model

type t = {
  name : string;
  n : int;  (** [n + 1] processes *)
  k : int;  (** at most [k] distinct decisions *)
  values : Value.t list;  (** the input domain [V] *)
}

val kset : n:int -> k:int -> values:Value.t list -> t

val consensus : n:int -> values:Value.t list -> t

val input_complex : t -> Complex.t
(** [psi(P^n; V)] with initial-view labels. *)

val allowed : Vertex.t -> Value.t list
(** The decision values a protocol vertex may legally choose: the input
    values present in its full-information view.  (For a full-information
    protocol this equals the intersection of [vals S] over the input
    simplexes [S] whose executions can produce the view, which is the
    paper's validity condition.) *)

val valid_decision_map : t -> Complex.t -> (Vertex.t -> Value.t) -> bool
(** Does the map satisfy validity (every vertex decides a seen input) and
    k-agreement (every facet carries at most [k] distinct decisions)? *)
