(** The paper's lower bounds, as formulas and as machine checks.

    Each check builds the protocol complex the paper analyses, measures its
    homological connectivity against the lemma's claim, and runs the
    decision-map search to witness (im)possibility directly. *)

open Psph_model

val corollary13_impossible : f:int -> k:int -> bool
(** Asynchronous f-resilient k-set agreement is impossible iff [k <= f]. *)

val theorem18_rounds : n:int -> f:int -> k:int -> int
(** Synchronous round lower bound (Theorem 18). *)

val corollary22_time : f:int -> k:int -> c1:int -> c2:int -> d:int -> float
(** Semi-synchronous wait-free time lower bound (Corollary 22). *)

type check = {
  label : string;
  connectivity : int;  (** measured homological connectivity *)
  expected_connectivity : int;  (** the lemma's lower bound *)
  decision : Decision.verdict;  (** search outcome on the complex *)
  impossible_expected : bool;  (** does the paper predict impossibility? *)
}

val pp_check : Format.formatter -> check -> unit

val holds : check -> bool
(** Connectivity at least as claimed, and the search verdict matches the
    prediction (an [Unknown] verdict fails). *)

val async_check : n:int -> f:int -> k:int -> r:int -> values:Value.t list -> check
(** Lemma 12 + Corollary 13 on [A^r] over the full input complex. *)

val sync_check : n:int -> k_round:int -> k_task:int -> r:int -> values:Value.t list -> check
(** Lemma 16/17 + Theorem 18 on [S^r] (at most [k_round] crashes per
    round), asking for a [k_task]-set agreement map. *)

val semi_check :
  n:int -> k_round:int -> k_task:int -> p:int -> r:int -> values:Value.t list -> check
(** Lemma 21 + Corollary 22 on [M^r]. *)
