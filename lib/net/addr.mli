(** "HOST:PORT" endpoint addresses for the TCP transport.

    The one address syntax shared by [psc serve --listen], [psc query
    --connect] and [psc route --backend]: a host (dotted quad or name)
    and a decimal port, separated by the last [':'].  Resolution happens
    at connect/bind time, so an address can be parsed and carried around
    without the resolver. *)

type t = { host : string; port : int }

val parse : string -> (t, string) result
(** Split and validate "HOST:PORT" (port in 0..65535; 0 means "let the
    kernel pick" and is only meaningful for listening). *)

val to_string : t -> string

val resolve : t -> (Unix.sockaddr, string) result
(** [inet_addr_of_string] first, then [gethostbyname]. *)
