type t = { host : string; port : int }

let parse s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "address %S is not HOST:PORT" s)
  | Some i -> (
      let host = String.sub s 0 i in
      let port_s = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port_s with
      | Some port when host <> "" && port >= 0 && port <= 0xffff ->
          Ok { host; port }
      | _ -> Error (Printf.sprintf "address %S is not HOST:PORT" s))

let to_string { host; port } = Printf.sprintf "%s:%d" host port

let resolve { host; port } =
  match Unix.inet_addr_of_string host with
  | ip -> Ok (Unix.ADDR_INET (ip, port))
  | exception _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
          Error (Printf.sprintf "cannot resolve host %S" host)
      | { Unix.h_addr_list; _ } -> Ok (Unix.ADDR_INET (h_addr_list.(0), port))
      | exception e ->
          Error
            (Printf.sprintf "cannot resolve host %S: %s" host
               (Printexc.to_string e)))
