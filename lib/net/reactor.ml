(* Event loops for the v2 server.

   Ownership discipline: every descriptor belongs to exactly one loop
   thread, which performs all reads, all writes and the close.  Other
   threads only ever (a) append to a connection's output buffer under
   its lock and (b) poke the owning loop through its self-pipe.  That
   keeps the hot path lock-light — one small mutex around buffer
   appends — and makes the shutdown story tractable: a loop that stops
   spinning can flush and close everything it owns without negotiating
   with handler threads. *)

open Psph_obs

type user = ..
type user += No_user

type failure = Oversized of int | Torn

type metrics = {
  loops_g : Obs.gauge;
  conns_g : Obs.gauge;
  wakeups : Obs.counter;
  frames : Obs.counter;
  frames_per_read : Obs.histogram;
}

type conn = {
  fd : Unix.file_descr;
  reader : Frame.reader;
  lk : Mutex.t;  (** guards the output state and flags below *)
  obuf : Buffer.t;  (** bytes queued by [send], not yet staged *)
  mutable ohead : string;  (** bytes staged for writing *)
  mutable opos : int;  (** how much of [ohead] is already written *)
  mutable closing : bool;  (** flush-then-close requested *)
  mutable rclosed : bool;  (** no more reads (EOF, error, or closing) *)
  mutable dead : bool;  (** descriptor closed, deregistered *)
  mutable u : user;
  owner : loop;
}

and loop = {
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  llk : Mutex.t;  (** guards [incoming] and [nwake] *)
  mutable incoming : conn list;
  mutable nwake : bool;  (** a wake byte is already in the pipe *)
  mutable lconns : conn list;  (** loop-private; only the loop touches it *)
  mutable lthread : Thread.t option;
  mutable ltid : int;  (** Thread.id of the loop thread, -1 before start *)
  wakeups : Obs.counter;  (** shared across loops; here so [send] needs no [t] *)
}

type t = {
  loops : loop array;
  rr : int Atomic.t;
  on_frame : conn -> string -> unit;
  on_failure : conn -> failure -> unit;
  on_eof : (conn -> unit) option;  (** None = close on EOF *)
  on_close : conn -> unit;
  max_frame : int;
  reading : bool Atomic.t;
  stopping : bool Atomic.t;
  nconns : int Atomic.t;
  m : metrics;
}

let user c = c.u
let set_user c u = c.u <- u
let active t = Atomic.get t.nconns

(* ------------------------------------------------------------------ *)
(* waking a loop                                                       *)
(* ------------------------------------------------------------------ *)

(* from the loop's own thread this is a no-op: the loop flushes output
   opportunistically before its next select, no pipe poke needed *)
let wake loop =
  if loop.ltid <> Thread.id (Thread.self ()) then begin
    Mutex.lock loop.llk;
    if not loop.nwake then begin
      loop.nwake <- true;
      Obs.incr loop.wakeups;
      (* the pipe is nonblocking: a full pipe means a wake is already
         pending, which is just as good as ours *)
      (try ignore (Unix.write loop.wake_w (Bytes.make 1 'w') 0 1)
       with Unix.Unix_error _ -> ())
    end;
    Mutex.unlock loop.llk
  end

(* ------------------------------------------------------------------ *)
(* per-connection output                                               *)
(* ------------------------------------------------------------------ *)

let opending c = String.length c.ohead - c.opos + Buffer.length c.obuf

let send c bytes =
  Mutex.lock c.lk;
  let accepted = not (c.closing || c.dead) in
  if accepted then Buffer.add_string c.obuf bytes;
  Mutex.unlock c.lk;
  if accepted then wake c.owner

let close c =
  Mutex.lock c.lk;
  let fresh = not (c.closing || c.dead) in
  if fresh then begin
    c.closing <- true;
    c.rclosed <- true
  end;
  Mutex.unlock c.lk;
  if fresh then wake c.owner

(* loop thread only: close the descriptor and deregister *)
let do_close t c =
  if not c.dead then begin
    c.dead <- true;
    (try Unix.close c.fd with _ -> ());
    c.owner.lconns <- List.filter (fun o -> o != c) c.owner.lconns;
    Atomic.decr t.nconns;
    Obs.gauge_add t.m.conns_g (-1.0);
    try t.on_close c with _ -> ()
  end

(* loop thread only: stage + write what we can without blocking; on a
   write error the peer is gone and buffered output is undeliverable *)
let write_step t c =
  Mutex.lock c.lk;
  if c.opos >= String.length c.ohead && Buffer.length c.obuf > 0 then begin
    c.ohead <- Buffer.contents c.obuf;
    c.opos <- 0;
    Buffer.clear c.obuf
  end;
  let s = c.ohead and off = c.opos in
  Mutex.unlock c.lk;
  let len = String.length s - off in
  if len > 0 then begin
    match Unix.write_substring c.fd s off len with
    | n -> c.opos <- c.opos + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
    | exception Unix.Unix_error (_, _, _) -> do_close t c
  end

(* ------------------------------------------------------------------ *)
(* per-connection input                                                *)
(* ------------------------------------------------------------------ *)

let drain_frames t c =
  let delivered = ref 0 in
  let rec go () =
    if not (c.closing || c.dead) then
      match Frame.next c.reader with
      | Some payload ->
          incr delivered;
          Obs.incr t.m.frames;
          (try t.on_frame c payload with _ -> ());
          go ()
      | None -> ()
  in
  go ();
  !delivered

let eof t c =
  c.rclosed <- true;
  if Frame.pending c.reader > 0 then (try t.on_failure c Torn with _ -> ());
  match t.on_eof with
  | Some f -> ( try f c with _ -> close c)
  | None -> close c

let read_step t buf c =
  match Unix.read c.fd buf 0 (Bytes.length buf) with
  | 0 -> eof t c
  | n -> (
      match Frame.feed c.reader buf 0 n with
      | () -> Obs.observe t.m.frames_per_read (float_of_int (drain_frames t c))
      | exception Frame.Oversized len ->
          (* the stream is desynced past this point: report, let the
             layer above answer, and take no more input *)
          c.rclosed <- true;
          (try t.on_failure c (Oversized len) with _ -> ()))
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error (_, _, _) -> eof t c

(* ------------------------------------------------------------------ *)
(* the loop                                                            *)
(* ------------------------------------------------------------------ *)

let drain_wake_pipe loop =
  let b = Bytes.create 64 in
  let rec go () =
    match Unix.read loop.wake_r b 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ();
  (* reset after draining: a byte written between the drain and the
     reset stays in the pipe, so the next select still wakes — wakes are
     never lost, at worst duplicated *)
  Mutex.lock loop.llk;
  loop.nwake <- false;
  Mutex.unlock loop.llk

let adopt_incoming loop =
  Mutex.lock loop.llk;
  let fresh = loop.incoming in
  loop.incoming <- [];
  Mutex.unlock loop.llk;
  loop.lconns <- List.rev_append fresh loop.lconns

(* best-effort flush of everything still buffered, bounded so a peer
   that stopped reading cannot wedge shutdown *)
let final_flush t loop =
  let deadline = Obs.monotonic () +. 2.0 in
  let rec go () =
    let waiting =
      List.filter
        (fun c ->
          if not c.dead then write_step t c;
          (not c.dead) && opending c > 0)
        loop.lconns
    in
    if waiting <> [] && Obs.monotonic () < deadline then begin
      (match Unix.select [] (List.map (fun c -> c.fd) waiting) [] 0.05 with
      | _ -> ()
      | exception Unix.Unix_error _ -> ());
      go ()
    end
  in
  go ()

let loop_main t loop =
  loop.ltid <- Thread.id (Thread.self ());
  let buf = Bytes.create 65536 in
  let rec spin () =
    if Atomic.get t.stopping then begin
      adopt_incoming loop;
      final_flush t loop;
      List.iter (fun c -> do_close t c) loop.lconns
    end
    else begin
      adopt_incoming loop;
      (* close what asked for it and has nothing left to flush *)
      List.iter
        (fun c -> if c.closing && not c.dead && opending c = 0 then do_close t c)
        loop.lconns;
      let reading = Atomic.get t.reading in
      let rds, wrs =
        List.fold_left
          (fun (rds, wrs) c ->
            if c.dead then (rds, wrs)
            else
              ( (if reading && not c.rclosed then c.fd :: rds else rds),
                if opending c > 0 then c.fd :: wrs else wrs ))
          ([ loop.wake_r ], [])
          loop.lconns
      in
      (match Unix.select rds wrs [] 0.5 with
      | rrds, rwrs, _ ->
          if List.memq loop.wake_r rrds then drain_wake_pipe loop;
          List.iter
            (fun c ->
              if (not c.dead) && List.memq c.fd rrds then read_step t buf c)
            loop.lconns;
          (* opportunistic flush: responses produced by the reads above
             (and by handler threads meanwhile) go out in this same
             iteration instead of waiting for another select round *)
          List.iter
            (fun c ->
              if (not c.dead) && (opending c > 0 || List.memq c.fd rwrs) then
                write_step t c)
            loop.lconns
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) ->
          (* a descriptor died under us between iterations: find it the
             slow way and drop it *)
          List.iter
            (fun c ->
              if not c.dead then
                match Unix.fstat c.fd with
                | _ -> ()
                | exception Unix.Unix_error _ -> do_close t c)
            loop.lconns);
      spin ()
    end
  in
  spin ()

(* ------------------------------------------------------------------ *)
(* lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let create ?(metrics = "net.reactor") ?(loops = 2)
    ?(max_frame = Frame.max_frame_default) ~on_frame ?on_failure ?on_eof
    ?on_close () =
  let loops = max 1 loops in
  let m =
    {
      loops_g = Obs.gauge (metrics ^ ".loops");
      conns_g = Obs.gauge (metrics ^ ".conns");
      wakeups = Obs.counter (metrics ^ ".wakeups");
      frames = Obs.counter (metrics ^ ".frames");
      frames_per_read = Obs.histogram (metrics ^ ".frames_per_read");
    }
  in
  let mk_loop _ =
    let wake_r, wake_w = Unix.pipe ~cloexec:true () in
    Unix.set_nonblock wake_r;
    Unix.set_nonblock wake_w;
    {
      wake_r;
      wake_w;
      llk = Mutex.create ();
      incoming = [];
      nwake = false;
      lconns = [];
      lthread = None;
      ltid = -1;
      wakeups = m.wakeups;
    }
  in
  Obs.gauge_set m.loops_g (float_of_int loops);
  {
    loops = Array.init loops mk_loop;
    rr = Atomic.make 0;
    on_frame;
    on_failure = Option.value on_failure ~default:(fun _ _ -> ());
    on_eof;
    on_close = Option.value on_close ~default:(fun _ -> ());
    max_frame;
    reading = Atomic.make true;
    stopping = Atomic.make false;
    nconns = Atomic.make 0;
    m;
  }

let start t =
  Array.iter
    (fun loop ->
      if loop.lthread = None then
        loop.lthread <- Some (Thread.create (fun () -> loop_main t loop) ()))
    t.loops

let add t ?(user = No_user) fd =
  if Atomic.get t.stopping then invalid_arg "Reactor.add: stopped";
  Unix.set_nonblock fd;
  (* small frames must not sit in Nagle's buffer waiting for an ACK *)
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  let loop = t.loops.(Atomic.fetch_and_add t.rr 1 mod Array.length t.loops) in
  let c =
    {
      fd;
      reader = Frame.reader ~max_frame:t.max_frame ();
      lk = Mutex.create ();
      obuf = Buffer.create 256;
      ohead = "";
      opos = 0;
      closing = false;
      rclosed = false;
      dead = false;
      u = user;
      owner = loop;
    }
  in
  Atomic.incr t.nconns;
  Obs.gauge_add t.m.conns_g 1.0;
  Mutex.lock loop.llk;
  loop.incoming <- c :: loop.incoming;
  Mutex.unlock loop.llk;
  wake loop;
  c

let stop_reading t =
  Atomic.set t.reading false;
  Array.iter wake t.loops

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    Array.iter wake t.loops;
    Array.iter
      (fun loop ->
        (match loop.lthread with
        | Some th ->
            Thread.join th;
            loop.lthread <- None
        | None ->
            (* never started: close whatever was queued *)
            adopt_incoming loop;
            List.iter (fun c -> do_close t c) loop.lconns);
        (try Unix.close loop.wake_r with _ -> ());
        try Unix.close loop.wake_w with _ -> ())
      t.loops
  end
