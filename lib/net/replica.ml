(* Replication mechanics for the sharded memo tier: the async populate
   queue, the store-entry <-> wire translations, and snapshot-stream
   cache warming.  Placement itself lives in {!Ring}; the policy (who
   owns what, when to hint) lives in {!Router} — this module is the
   machinery both lean on.

   The populate worker is deliberately lossy: hints are an optimization
   (a dropped hint costs one recompute on some future failover), so a
   full queue drops and counts instead of slowing the request path. *)

open Psph_obs
open Psph_engine

type metrics = {
  populate : Obs.counter;
  populate_drop : Obs.counter;
  populate_fail : Obs.counter;
  fallback_read : Obs.counter;
  fallback_hit : Obs.counter;
  rebalanced : Obs.counter;
  warm_entries : Obs.counter;
  warm_s : Obs.histogram;
}

let make_metrics prefix =
  {
    populate = Obs.counter (prefix ^ ".populate");
    populate_drop = Obs.counter (prefix ^ ".populate_drop");
    populate_fail = Obs.counter (prefix ^ ".populate_fail");
    fallback_read = Obs.counter (prefix ^ ".fallback_read");
    fallback_hit = Obs.counter (prefix ^ ".fallback_hit");
    rebalanced = Obs.counter (prefix ^ ".rebalanced");
    warm_entries = Obs.counter (prefix ^ ".warm_entries");
    warm_s = Obs.histogram (prefix ^ ".warm_s");
  }

type t = {
  queue : (unit -> unit) Queue.t;
  queue_cap : int;
  lock : Mutex.t;
  cond : Condition.t;
  mutable worker : Thread.t option;
  mutable stopping : bool;
  m : metrics;
}

let create ?(metrics = "net.replica") ?(queue_cap = 1024) () =
  {
    queue = Queue.create ();
    queue_cap = max 1 queue_cap;
    lock = Mutex.create ();
    cond = Condition.create ();
    worker = None;
    stopping = false;
    m = make_metrics metrics;
  }

let worker_loop t =
  let rec go () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.cond t.lock
    done;
    let job = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
    let stop = t.stopping in
    Mutex.unlock t.lock;
    match job with
    | Some job ->
        (try job () with _ -> Obs.incr t.m.populate_fail);
        go ()
    | None -> if not stop then go ()
  in
  go ()

let start t =
  Mutex.lock t.lock;
  if t.worker = None && not t.stopping then
    t.worker <- Some (Thread.create worker_loop t);
  Mutex.unlock t.lock

let stop t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Queue.clear t.queue;
  Condition.broadcast t.cond;
  let w = t.worker in
  t.worker <- None;
  Mutex.unlock t.lock;
  Option.iter Thread.join w

let async t job =
  start t;
  Mutex.lock t.lock;
  let accepted = (not t.stopping) && Queue.length t.queue < t.queue_cap in
  if accepted then begin
    Queue.add job t.queue;
    Condition.signal t.cond
  end;
  Mutex.unlock t.lock;
  if accepted then Obs.incr t.m.populate else Obs.incr t.m.populate_drop;
  accepted

let fallback_read t ~cached =
  Obs.incr t.m.fallback_read;
  if cached then Obs.incr t.m.fallback_hit

let populate_failed t = Obs.incr t.m.populate_fail

let rebalanced t n = if n > 0 then Obs.incr ~by:n t.m.rebalanced

(* ------------------------------------------------------------------ *)
(* wire translations                                                   *)
(* ------------------------------------------------------------------ *)

(* connectivity is determined by the Betti vector (mirror of
   Engine.answer_of_ranks: reduced ranks are the Betti numbers except
   beta_0 - 1): derive it when the response didn't carry one *)
let connectivity_of_betti betti =
  let dim = Array.length betti - 1 in
  if dim < 0 then -2
  else begin
    let reduced d = if d = 0 then betti.(0) - 1 else betti.(d) in
    let rec conn k =
      if k > dim then dim else if reduced k <> 0 then k - 1 else conn (k + 1)
    in
    conn 0
  end

let entry_of_response line =
  match Jsonl.of_string_opt line with
  | Some (Jsonl.Obj _ as o) when Jsonl.member "ok" o = Some (Jsonl.Bool true)
    -> (
      let hex = Option.bind (Jsonl.member "key" o) Jsonl.to_string_opt in
      let betti =
        match Option.bind (Jsonl.member "betti" o) Jsonl.to_list_opt with
        | None -> None
        | Some vs ->
            let ints = List.filter_map Jsonl.to_int_opt vs in
            if List.length ints = List.length vs then
              Some (Array.of_list ints)
            else None
      in
      match (Option.bind hex Key.of_hex_opt, betti) with
      | Some key, Some betti ->
          let connectivity =
            match
              Option.bind (Jsonl.member "connectivity" o) Jsonl.to_int_opt
            with
            | Some c -> c
            | None -> connectivity_of_betti betti
          in
          Some (key, { Store.betti; connectivity })
      | _ -> None)
  | _ -> None

let populate_line entries =
  Jsonl.to_string
    (Jsonl.Obj
       [
         ("op", Jsonl.Str "populate");
         ( "entries",
           Jsonl.Arr
             (List.map
                (fun (key, e) -> Jsonl.Str (Store.entry_to_line key e))
                entries) );
       ])

(* ------------------------------------------------------------------ *)
(* snapshot streaming                                                  *)
(* ------------------------------------------------------------------ *)

let snapshot_line ~cursor ~limit =
  Printf.sprintf {|{"op":"snapshot","cursor":%d,"limit":%d}|} cursor limit

let fetch_entries ?(chunk = 512) client =
  let chunk = max 1 chunk in
  let rec go cursor acc =
    match Client.request client (snapshot_line ~cursor ~limit:chunk) with
    | Error e -> Error (Client.error_message e)
    | Ok resp -> (
        match Jsonl.of_string_opt resp with
        | Some (Jsonl.Obj _ as o)
          when Jsonl.member "ok" o = Some (Jsonl.Bool true) -> (
            let entries =
              match
                Option.bind (Jsonl.member "entries" o) Jsonl.to_list_opt
              with
              | None -> []
              | Some lines ->
                  List.filter_map
                    (fun l ->
                      Option.bind (Jsonl.to_string_opt l) Store.entry_of_line)
                    lines
            in
            let acc = List.rev_append entries acc in
            let finished =
              Jsonl.member "done" o = Some (Jsonl.Bool true)
              || entries = []
            in
            match
              Option.bind (Jsonl.member "next" o) Jsonl.to_int_opt
            with
            | Some next when (not finished) && next > cursor -> go next acc
            | _ -> Ok (List.rev acc))
        | Some (Jsonl.Obj _ as o) ->
            let msg =
              match
                Option.bind (Jsonl.member "error" o) Jsonl.to_string_opt
              with
              | Some m -> m
              | None -> "snapshot refused"
            in
            Error msg
        | _ -> Error "unparseable snapshot response")
  in
  go 0 []

let warm_from ?(metrics = "net.replica") ?chunk ?(timeout_ms = 5000)
    ?(retries = 3) engine peer =
  let m = make_metrics metrics in
  let client = Client.create ~metrics:(metrics ^ ".warm") ~timeout_ms ~retries peer in
  let t0 = Obs.monotonic () in
  let result =
    match fetch_entries ?chunk client with
    | Error _ as e -> e
    | Ok entries ->
        let loaded = Engine.warm engine entries in
        Obs.incr ~by:loaded m.warm_entries;
        Ok loaded
  in
  Client.close client;
  Obs.observe m.warm_s (Obs.monotonic () -. t0);
  result
