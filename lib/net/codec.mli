(** The compact binary codec for the hot query ops (wire protocol v2).

    JSON-lines is the serve protocol's lingua franca, but parsing and
    printing a JSON envelope dominates the cost of a cache-hit query once
    the transport pipelines.  This codec gives [betti]/[connectivity]/
    [psph]/[model-complex] requests and their responses a fixed binary
    layout inside the existing {!Frame}s — negotiated per connection at
    the hello handshake (see docs/NET.md "Wire protocol v2"), never
    assumed.

    Every payload starts with a one-byte tag.  Tag [0x00] is the JSON
    escape hatch: the rest of the payload is a plain JSON-lines document,
    so ops without a binary layout ([batch], [stats], [models], ...) flow
    over a binary connection unchanged.  Integers are big-endian;
    request ids are unsigned 32-bit and chosen by the client
    ({!Client.pipeline} keys its in-flight window on them).

    {v
    request   0x01 psph    id:u32 want:u8 n:u16 values:u16
              0x02 facets  id:u32 want:u8 count:u16 (len:u16 bytes)*count
              0x03 model   id:u32 want:u8 nlen:u8 name n:u16 f:u16 k:u16 p:u16 r:u16
              0x04 model+  id:u32 want:u8 nlen:u8 name n:u16 f:u16 k:u16 p:u16 r:u16
                           extcount:u8 (klen:u8 key value:u16)*extcount
    response  0x80 result  id:u32 flags:u8 klen:u8 key [conn:i32]
                           [count:u16 betti:u32*] [solver]
              0x81 error   id:u32 mlen:u16 message
    v}

    Tag [0x04] is the model layout plus a flagged extension block carrying
    a spec's model-owned parameters (Byzantine budget [t], adversary
    class, ...).  Encoders emit it only when the payload is non-empty —
    extension-free specs still encode as [0x03], byte-identical to
    protocol v2 before extensions existed.

    [want] is 0 = both, 1 = betti only, 2 = connectivity only; facet
    entries are {!Psph_topology.Complex_io} simplex strings; response
    [flags] has bit 0 = cached, bit 1 = betti present, bit 2 =
    connectivity present, bit 3 = solver provenance present.  The
    [solver] block is [tier:u8] (0 cached, 1 symbolic, 2 numeric) then a
    presence byte (bit 0 rule, bit 1 steps, bit 2 cells_removed, bit 3
    checked) then the present fields in that order: rule as [len:u16 +
    bytes], steps and cells_removed as u32, checked as i32 (a
    connectivity bound, so it can be negative).  Decoders never raise:
    corrupt or truncated payloads come back as [Error _], and {!handle}
    answers them with a well-formed binary error response. *)

open Psph_obs

type want = Both | Betti | Connectivity

type query =
  | Psph of { n : int; values : int }
  | Facets of string list  (** {!Psph_topology.Complex_io} simplex strings *)
  | Model of { model : string; spec : Pseudosphere.Model_complex.spec }

type request = { id : int; want : want; query : query }

type reply =
  | Result of {
      id : int;
      key : string;  (** canonical content key, lowercase hex *)
      cached : bool;
      betti : int array option;
      connectivity : int option;
      solver : Psph_engine.Engine.provenance option;
          (** which solver tier answered; [None] only for replies parsed
              from a peer that predates the provenance field *)
    }
  | Failed of { id : int; message : string }

val max_id : int
(** Largest encodable request id ([2{^32} - 1]). *)

val encode_request : request -> string
(** @raise Invalid_argument when a field exceeds its wire range (psph
    parameters and model parameters are u16, model names 255 bytes,
    facet strings 65535 bytes, ids u32).  {!query_of_json} only produces
    encodable queries. *)

val decode_request : string -> (request, string) result

val request_with_id : string -> int -> string
(** [request_with_id payload id] is [payload] (an {!encode_request}
    result) re-addressed to [id] — a copy plus four byte stores, so a
    pipelining client can stamp fresh transport ids onto a pre-encoded
    request template without re-encoding.  Payloads too short to carry
    an id (never produced by {!encode_request}) come back unchanged. *)

val encode_reply : reply -> string

val decode_reply : string -> (reply, string) result

val escape_json : string -> string
(** Wrap a JSON-lines document in the [0x00] escape tag. *)

val unescape_json : string -> string option
(** The JSON document of an escape-tagged payload, [None] otherwise. *)

val request_id_of_payload : string -> int
(** Best-effort id of a possibly-corrupt binary request payload (0 when
    even the id bytes are missing) — lets the server address an error
    reply for a request it could not decode. *)

val json_line_of_query : ?id:Jsonl.t -> want -> query -> string
(** The JSON-lines request equivalent to a binary query — the client's
    fallback when the server granted only JSON (or is a v1 server).
    Inverse of {!query_of_json} on its image; combinations that image
    never produces map to the nearest op. *)

val reply_of_json : string -> reply option
(** Parse a serve-shaped JSON response line back into a {!reply}
    ([None] when the line is not one).  [id] is the response's "id"
    member when it is an in-range integer, else 0. *)

val query_of_json : Jsonl.t -> (want * query) option
(** Translate a parsed hot-op JSON request to its binary query, [None]
    when the request is not a hot op or does not fit the codec's wire
    ranges (the caller then falls back to the JSON escape, preserving
    exact JSON semantics — including error messages — for the oddballs). *)

val json_of_reply : id:Jsonl.t option -> reply -> string
(** The serve-shaped JSON line of a reply — byte-identical to what
    {!Psph_engine.Serve.handle_line} answers for the equivalent JSON
    request — with the transport id replaced by [id] ([None] omits it,
    mirroring a request that carried no "id"). *)

val handle :
  json:(string -> string) -> Psph_engine.Engine.t -> string -> string
(** The binary server handler: decode, evaluate on the engine
    (connectivity-only queries through the tiered
    {!Psph_engine.Engine.eval_conn}), encode.
    Escape-tagged payloads go through [json] (in production
    {!Psph_engine.Serve.handle_line}) and come back escape-tagged.
    Never raises; corrupt input is answered with a binary error reply. *)
