(** The event-loop core of the v2 server: a small fixed pool of loop
    threads multiplexing many nonblocking sockets with [Unix.select].

    Each accepted descriptor is pinned to one loop (round-robin), which
    owns all reads, writes and the final close for it; a per-connection
    {!Frame.reader} accumulates whatever the socket delivers and
    [on_frame] fires for every completed payload {e on the loop thread}.
    Handlers must therefore not block — CPU-bound work belongs on the
    engine's pool (see {!Server}'s [dispatch]) — but they may call
    {!send} and {!close} freely, from any thread: output is buffered per
    connection and flushed by the owning loop, which a cross-thread send
    wakes through a self-pipe.

    The connection limit, protocol semantics, and response ordering all
    live a layer up in {!Server}; the reactor only moves bytes.  Its own
    health is visible as [<prefix>.loops] / [<prefix>.conns] gauges, a
    [<prefix>.wakeups] counter (cross-thread pokes), a [<prefix>.frames]
    counter and a [<prefix>.frames_per_read] histogram — the last being
    the pipelining-efficiency signal: how many requests each [read]
    syscall carried (docs/NET.md catalogues all of them). *)

type t

type conn

type user = ..
(** One slot of caller state per connection ({!Server} hangs its
    per-connection protocol record here); an extensible variant so the
    reactor stays ignorant of the layer above. *)

type user += No_user

type failure =
  | Oversized of int
      (** the peer advertised a frame over [max_frame]; the byte stream
          is desynced and the connection must be closed after answering *)
  | Torn  (** the peer hung up mid-frame *)

val create :
  ?metrics:string ->
  ?loops:int ->
  ?max_frame:int ->
  on_frame:(conn -> string -> unit) ->
  ?on_failure:(conn -> failure -> unit) ->
  ?on_eof:(conn -> unit) ->
  ?on_close:(conn -> unit) ->
  unit ->
  t
(** [loops] (default 2) event-loop threads, started by {!start}.
    [on_eof] fires when the peer stops sending (default: {!close} the
    connection — override to finish in-flight responses first; the peer
    may have only shut down its write side).  [on_close] fires exactly
    once per connection, after its descriptor is closed. *)

val start : t -> unit

val add : t -> ?user:user -> Unix.file_descr -> conn
(** Hand a descriptor to the reactor (it becomes nonblocking and, for
    TCP sockets, gets [TCP_NODELAY]).  [user] is attached before the
    loop can possibly deliver a frame. *)

val user : conn -> user

val set_user : conn -> user -> unit

val send : conn -> string -> unit
(** Queue bytes (already framed) for the connection; a no-op once the
    connection is closing or closed.  Thread-safe. *)

val close : conn -> unit
(** Graceful close: stop reading, flush queued output, then close the
    descriptor.  Thread-safe, idempotent. *)

val active : t -> int
(** Connections currently registered (including those still flushing). *)

val stop_reading : t -> unit
(** Stop issuing reads on every connection — frames already buffered
    still deliver; used by the server's drain. *)

val stop : t -> unit
(** Flush remaining output (bounded effort), close every connection and
    join the loop threads.  Further {!add}s are rejected with
    [Invalid_argument]. *)
