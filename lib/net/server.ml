(* The accept loop: one listening socket, one handler systhread per
   connection, all feeding one line handler (in production,
   [Serve.handle_line engine] — the engine's Domain pool does the heavy
   lifting; these threads mostly block on sockets).

   Stop protocol: [request_stop] must be callable from a SIGINT/SIGTERM
   handler, i.e. possibly from *inside* the accept thread with the server
   lock in any state.  So the stopping flag is an Atomic (no lock), the
   listening socket is shutdown immediately (wakes/aborts the accept), and
   everything that needs the lock — waking idle connections so the drain
   can finish — happens on the normal-context drain path in [serve]. *)

open Psph_obs

type handler = string -> string

type metrics = {
  accepted : Obs.counter;
  closed : Obs.counter;
  requests : Obs.counter;
  frame_errors : Obs.counter;  (** oversized/garbage framing from a peer *)
  torn : Obs.counter;  (** peer died mid-frame *)
  deadline_exceeded : Obs.counter;
  active : Obs.gauge;
  request_s : Obs.histogram;
}

type t = {
  lsock : Unix.file_descr;
  port : int;
  handler : handler;
  max_conns : int;
  deadline_s : float option;
  max_frame : int;
  lock : Mutex.t;
  cond : Condition.t;  (** connection closes (drain completion) *)
  conns : (int, Unix.file_descr) Hashtbl.t;
  mutable next_conn : int;
  stopping : bool Atomic.t;
  mutable server_thread : Thread.t option;
  m : metrics;
}

let make_metrics prefix =
  {
    accepted = Obs.counter (prefix ^ ".accepted");
    closed = Obs.counter (prefix ^ ".closed");
    requests = Obs.counter (prefix ^ ".requests");
    frame_errors = Obs.counter (prefix ^ ".frame_errors");
    torn = Obs.counter (prefix ^ ".torn");
    deadline_exceeded = Obs.counter (prefix ^ ".deadline_exceeded");
    active = Obs.gauge (prefix ^ ".active");
    request_s = Obs.histogram (prefix ^ ".request_s");
  }

(* a response written to a peer that already hung up must fail with
   EPIPE (the handler thread just closes that connection), not deliver
   SIGPIPE, whose default action kills the whole server *)
let ignore_sigpipe =
  lazy (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())

let listen ?(metrics = "net.server") ?(backlog = 64) ?(max_conns = 64)
    ?deadline_s ?(max_frame = Frame.max_frame_default) ~handler addr =
  Lazy.force ignore_sigpipe;
  match Addr.resolve addr with
  | Error _ as e -> e
  | Ok sockaddr -> (
      let sock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      try
        Unix.setsockopt sock Unix.SO_REUSEADDR true;
        Unix.bind sock sockaddr;
        Unix.listen sock backlog;
        let port =
          match Unix.getsockname sock with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> addr.Addr.port
        in
        Ok
          {
            lsock = sock;
            port;
            handler;
            max_conns = max 1 max_conns;
            deadline_s;
            max_frame;
            lock = Mutex.create ();
            cond = Condition.create ();
            conns = Hashtbl.create 16;
            next_conn = 0;
            stopping = Atomic.make false;
            server_thread = None;
            m = make_metrics metrics;
          }
      with Unix.Unix_error (e, fn, _) ->
        (try Unix.close sock with _ -> ());
        Error
          (Printf.sprintf "cannot listen on %s: %s (%s)" (Addr.to_string addr)
             (Unix.error_message e) fn))

let port t = t.port

(* full write; sockets may take large frames in pieces *)
let send_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      match Unix.write_substring fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let send_frame t fd payload = send_all fd (Frame.encode ~max_frame:t.max_frame payload)

(* an error response in the serve wire shape, echoing the request "id"
   when the original line parses far enough to have one *)
let error_line ?orig msg =
  let fields = [ ("ok", Jsonl.Bool false); ("error", Jsonl.Str msg) ] in
  let fields =
    match Option.bind orig Jsonl.of_string_opt with
    | Some (Jsonl.Obj _ as o) -> (
        match Jsonl.member "id" o with
        | Some id -> ("id", id) :: fields
        | None -> fields)
    | _ -> fields
  in
  Jsonl.to_string (Jsonl.Obj fields)

let span_parent_of line =
  match Jsonl.of_string_opt line with
  | Some (Jsonl.Obj _ as o) -> Option.bind (Jsonl.member "span_parent" o) Jsonl.to_int_opt
  | _ -> None

let handle_request t line =
  Obs.incr t.m.requests;
  let t0 = Obs.monotonic () in
  (* re-root under the span id the client put on the wire, so a loopback
     trace nests net.client.request -> serve.request across the socket;
     only meaningful (and only looked for) when a sink is live *)
  let parent =
    if Obs.current_sink () = Obs.Null then None else span_parent_of line
  in
  let response =
    try Obs.with_parent parent (fun () -> t.handler line)
    with e -> error_line ~orig:line ("internal error: " ^ Printexc.to_string e)
  in
  let elapsed = Obs.monotonic () -. t0 in
  Obs.observe t.m.request_s elapsed;
  match t.deadline_s with
  | Some d when elapsed > d ->
      (* cooperative: the work already ran, but the contract with the
         client is an error once the deadline has passed *)
      Obs.incr t.m.deadline_exceeded;
      error_line ~orig:line
        (Printf.sprintf "deadline exceeded (%.0f ms limit)" (1000. *. d))
  | _ -> response

let conn_loop t fd =
  let reader = Frame.reader ~max_frame:t.max_frame () in
  let buf = Bytes.create 65536 in
  let rec drain_frames () =
    match Frame.next reader with
    | Some line ->
        let resp = handle_request t line in
        (try send_frame t fd resp
         with Frame.Oversized n ->
           Obs.incr t.m.frame_errors;
           send_frame t fd
             (error_line ~orig:line
                (Printf.sprintf "response too large (%d bytes, max %d)" n
                   t.max_frame)));
        (* draining: finish the in-flight request, then hang up *)
        if not (Atomic.get t.stopping) then drain_frames ()
    | None -> read_more ()
  and read_more () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> if Frame.pending reader > 0 then Obs.incr t.m.torn
    | n -> (
        match Frame.feed reader buf 0 n with
        | () -> drain_frames ()
        | exception Frame.Oversized len ->
            (* the stream is desynced past this point: answer and close *)
            Obs.incr t.m.frame_errors;
            send_frame t fd
              (error_line
                 (Printf.sprintf "frame too large (%d bytes, max %d)" len
                    t.max_frame)))
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_more ()
    | exception Unix.Unix_error (_, _, _) -> ()
  in
  drain_frames ()

let conn_main t id fd =
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with _ -> ());
      Mutex.lock t.lock;
      Hashtbl.remove t.conns id;
      Condition.broadcast t.cond;
      Mutex.unlock t.lock;
      Obs.incr t.m.closed;
      Obs.gauge_add t.m.active (-1.0))
    (fun () -> try conn_loop t fd with _ -> ())

let request_stop t =
  if not (Atomic.exchange t.stopping true) then
    (* aborts a blocked/future accept; everything lock-protected happens
       on the drain path, keeping this safe inside a signal handler *)
    try Unix.shutdown t.lsock Unix.SHUTDOWN_ALL with _ -> ()

let serve t =
  let rec accept_loop () =
    Mutex.lock t.lock;
    while
      Hashtbl.length t.conns >= t.max_conns && not (Atomic.get t.stopping)
    do
      (* stdlib Condition has no timed wait and [request_stop] may run in
         signal context where it cannot take the lock to signal us, so
         wait in short slices, re-checking the stopping flag: a stop with
         max_conns idle peers must still reach the drain path below *)
      Mutex.unlock t.lock;
      Thread.delay 0.05;
      Mutex.lock t.lock
    done;
    Mutex.unlock t.lock;
    if not (Atomic.get t.stopping) then
      match Unix.accept ~cloexec:true t.lsock with
      | fd, _ ->
          (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
          Obs.incr t.m.accepted;
          Obs.gauge_add t.m.active 1.0;
          Mutex.lock t.lock;
          let id = t.next_conn in
          t.next_conn <- id + 1;
          Hashtbl.add t.conns id fd;
          Mutex.unlock t.lock;
          ignore (Thread.create (fun () -> conn_main t id fd) ());
          accept_loop ()
      | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
          accept_loop ()
      | exception Unix.Unix_error _ ->
          (* EMFILE and friends: back off and retry unless stopping
             (shutdown of the listening socket also lands here) *)
          if not (Atomic.get t.stopping) then begin
            (try Thread.delay 0.05 with _ -> ());
            accept_loop ()
          end
  in
  (try accept_loop () with _ -> ());
  (* drain: wake idle connections (their reads return EOF), then wait for
     every handler thread to finish its in-flight request and deregister *)
  Mutex.lock t.lock;
  let fds = Hashtbl.fold (fun _ fd acc -> fd :: acc) t.conns [] in
  Mutex.unlock t.lock;
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with _ -> ())
    fds;
  Mutex.lock t.lock;
  while Hashtbl.length t.conns > 0 do
    Condition.wait t.cond t.lock
  done;
  Mutex.unlock t.lock;
  try Unix.close t.lsock with _ -> ()

let start t = t.server_thread <- Some (Thread.create (fun () -> serve t) ())

let stop t =
  request_stop t;
  match t.server_thread with
  | Some th ->
      Thread.join th;
      t.server_thread <- None
  | None -> ()
