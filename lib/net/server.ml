(* The v2 server: a Reactor front end over the line handler.

   Threading model: the accept loop runs in [serve]'s thread and only
   accepts — each descriptor goes straight to the reactor, whose loop
   threads do all socket I/O.  A decoded frame becomes a job (inline on
   the loop, or on [dispatch]); its response is queued back on the
   connection from whatever thread the job ran on.

   Ordering contract: a connection that has not negotiated pipelining
   gets v1 semantics — responses in request order — even though jobs may
   complete out of order on the dispatch pool.  Each such request takes
   a sequence number at decode time (loop thread, so numbering matches
   arrival order) and [complete] holds finished responses until their
   turn.  Negotiated connections skip the machinery entirely: responses
   carry ids, order is the client's problem (that's the point).

   Stop protocol: [request_stop] must be callable from a SIGINT/SIGTERM
   handler, so it only flips an Atomic and shuts down the listening
   socket (waking a blocked accept).  The drain in [serve] then stops
   reactor reads, waits out in-flight jobs, and lets the reactor flush
   and close every connection. *)

open Psph_obs

type handler = string -> string

type metrics = {
  accepted : Obs.counter;
  closed : Obs.counter;
  requests : Obs.counter;
  frame_errors : Obs.counter;  (** oversized/garbage framing from a peer *)
  torn : Obs.counter;  (** peer died mid-frame *)
  deadline_exceeded : Obs.counter;
  active : Obs.gauge;
  request_s : Obs.histogram;
  hello : Obs.counter;  (** protocol negotiations *)
  binary : Obs.counter;  (** binary-codec requests *)
  dispatched : Obs.counter;  (** jobs run on the dispatch pool *)
}

type codec = Cjson | Cbinary

(* per-connection protocol state, hung on the reactor's user slot *)
type cstate = {
  mutable codec : codec;
  mutable pipelined : bool;  (** negotiated: out-of-order responses allowed *)
  mutable next_seq : int;  (** loop thread only: arrival order *)
  slk : Mutex.t;  (** guards the ordered-emit state and inflight below *)
  mutable next_emit : int;
  held : (int, string) Hashtbl.t;  (** finished early, waiting their turn *)
  mutable cinflight : int;
  mutable eof : bool;  (** close once the last in-flight response is out *)
}

type Reactor.user += Conn of cstate

type t = {
  lsock : Unix.file_descr;
  port : int;
  handler : handler;
  bin_handler : handler option;
  dispatch : ((unit -> unit) -> unit) option;
  max_conns : int;
  deadline_s : float option;
  max_frame : int;
  reactor : Reactor.t;
  stopping : bool Atomic.t;
  inflight : int Atomic.t;
  mutable server_thread : Thread.t option;
  m : metrics;
}

let make_metrics prefix =
  {
    accepted = Obs.counter (prefix ^ ".accepted");
    closed = Obs.counter (prefix ^ ".closed");
    requests = Obs.counter (prefix ^ ".requests");
    frame_errors = Obs.counter (prefix ^ ".frame_errors");
    torn = Obs.counter (prefix ^ ".torn");
    deadline_exceeded = Obs.counter (prefix ^ ".deadline_exceeded");
    active = Obs.gauge (prefix ^ ".active");
    request_s = Obs.histogram (prefix ^ ".request_s");
    hello = Obs.counter (prefix ^ ".hello");
    binary = Obs.counter (prefix ^ ".binary_requests");
    dispatched = Obs.counter (prefix ^ ".dispatched");
  }

(* a response written to a peer that already hung up must fail with
   EPIPE (the reactor drops that connection), not deliver SIGPIPE,
   whose default action kills the whole server *)
let ignore_sigpipe =
  lazy (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())

(* an error response in the serve wire shape, echoing the request "id"
   when the original line parses far enough to have one *)
let error_line ?orig msg =
  let fields = [ ("ok", Jsonl.Bool false); ("error", Jsonl.Str msg) ] in
  let fields =
    match Option.bind orig Jsonl.of_string_opt with
    | Some (Jsonl.Obj _ as o) -> (
        match Jsonl.member "id" o with
        | Some id -> ("id", id) :: fields
        | None -> fields)
    | _ -> fields
  in
  Jsonl.to_string (Jsonl.Obj fields)

let span_parent_of line =
  match Jsonl.of_string_opt line with
  | Some (Jsonl.Obj _ as o) ->
      Option.bind (Jsonl.member "span_parent" o) Jsonl.to_int_opt
  | _ -> None

(* the error shape the connection's codec calls for, addressed to the
   request the [orig] payload holds (binary replies need its id) *)
let error_for st ?orig msg =
  match st.codec with
  | Cjson -> error_line ?orig msg
  | Cbinary -> (
      match Option.bind orig Codec.unescape_json with
      | Some inner -> Codec.escape_json (error_line ~orig:inner msg)
      | None ->
          let id =
            match orig with
            | Some p -> Codec.request_id_of_payload p
            | None -> 0
          in
          Codec.encode_reply (Codec.Failed { id; message = msg }))

(* ------------------------------------------------------------------ *)
(* response completion                                                 *)
(* ------------------------------------------------------------------ *)

let frame_of t st ?orig resp =
  match Frame.encode ~max_frame:t.max_frame resp with
  | bytes -> bytes
  | exception Frame.Oversized n ->
      Obs.incr t.m.frame_errors;
      let msg =
        Printf.sprintf "response too large (%d bytes, max %d)" n t.max_frame
      in
      (try Frame.encode ~max_frame:t.max_frame (error_for st ?orig msg)
       with Frame.Oversized _ -> "" (* max_frame too small even for errors *))

(* emit a response, honoring the ordered contract for pre-negotiation
   connections: [seq < 0] means the connection pipelines and the
   response goes straight out *)
let complete t conn st ?orig seq resp =
  let bytes = frame_of t st ?orig resp in
  if seq < 0 then Reactor.send conn bytes
  else begin
    Mutex.lock st.slk;
    if seq = st.next_emit then begin
      Reactor.send conn bytes;
      st.next_emit <- seq + 1;
      let rec drain () =
        match Hashtbl.find_opt st.held st.next_emit with
        | Some b ->
            Hashtbl.remove st.held st.next_emit;
            Reactor.send conn b;
            st.next_emit <- st.next_emit + 1;
            drain ()
        | None -> ()
      in
      drain ()
    end
    else Hashtbl.add st.held seq bytes;
    Mutex.unlock st.slk
  end

let begin_inflight t st =
  Atomic.incr t.inflight;
  Mutex.lock st.slk;
  st.cinflight <- st.cinflight + 1;
  Mutex.unlock st.slk

let finish_inflight t conn st =
  Atomic.decr t.inflight;
  Mutex.lock st.slk;
  st.cinflight <- st.cinflight - 1;
  let close_now = st.eof && st.cinflight = 0 in
  Mutex.unlock st.slk;
  (* the peer stopped sending while we still owed responses; they are
     queued now, so flush-and-close *)
  if close_now then Reactor.close conn

(* ------------------------------------------------------------------ *)
(* request execution                                                   *)
(* ------------------------------------------------------------------ *)

let deadline_msg d = Printf.sprintf "deadline exceeded (%.0f ms limit)" (1000. *. d)

let json_response t payload =
  let t0 = Obs.monotonic () in
  (* re-root under the span id the client put on the wire, so a loopback
     trace nests net.client.request -> serve.request across the socket;
     only meaningful (and only looked for) when a sink is live *)
  let parent =
    if Obs.current_sink () = Obs.Null then None else span_parent_of payload
  in
  let response =
    try Obs.with_parent parent (fun () -> t.handler payload)
    with e -> error_line ~orig:payload ("internal error: " ^ Printexc.to_string e)
  in
  let elapsed = Obs.monotonic () -. t0 in
  Obs.observe t.m.request_s elapsed;
  match t.deadline_s with
  | Some d when elapsed > d ->
      (* cooperative: the work already ran, but the contract with the
         client is an error once the deadline has passed *)
      Obs.incr t.m.deadline_exceeded;
      error_line ~orig:payload (deadline_msg d)
  | _ -> response

let binary_response t st bin payload =
  Obs.incr t.m.binary;
  let t0 = Obs.monotonic () in
  let response =
    try bin payload
    with e -> error_for st ~orig:payload ("internal error: " ^ Printexc.to_string e)
  in
  let elapsed = Obs.monotonic () -. t0 in
  Obs.observe t.m.request_s elapsed;
  match t.deadline_s with
  | Some d when elapsed > d ->
      Obs.incr t.m.deadline_exceeded;
      error_for st ~orig:payload (deadline_msg d)
  | _ -> response

let run_job t job =
  match t.dispatch with
  | None -> job ()
  | Some d -> (
      Obs.incr t.m.dispatched;
      (* a dispatch pool that is already shut down must not lose the
         request — fall back to inline *)
      try d job with _ -> job ())

(* ------------------------------------------------------------------ *)
(* the hello handshake                                                 *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let hello_req payload =
  if String.length payload <= 512 && contains payload "\"hello\"" then
    match Jsonl.of_string_opt payload with
    | Some (Jsonl.Obj _ as req)
      when Option.bind (Jsonl.member "op" req) Jsonl.to_string_opt
           = Some "hello" ->
        Some req
    | _ -> None
  else None

let handle_hello t conn st req payload =
  Obs.incr t.m.hello;
  let requested =
    Option.value ~default:"json"
      (Option.bind (Jsonl.member "codec" req) Jsonl.to_string_opt)
  in
  let want_pipeline =
    match Jsonl.member "pipeline" req with
    | Some (Jsonl.Bool b) -> b
    | _ -> true
  in
  let codec =
    if requested = "binary" && t.bin_handler <> None then Cbinary else Cjson
  in
  (* the binary codec keys responses by request id, which already makes
     them order-free — binary implies pipelining *)
  let pipelined = want_pipeline || codec = Cbinary in
  let fields =
    [
      ("ok", Jsonl.Bool true);
      ("version", Jsonl.int 2);
      ("codec", Jsonl.Str (match codec with Cbinary -> "binary" | Cjson -> "json"));
      ("pipeline", Jsonl.Bool pipelined);
      ("max_frame", Jsonl.int t.max_frame);
    ]
  in
  let fields =
    match Jsonl.member "id" req with
    | Some id -> ("id", id) :: fields
    | None -> fields
  in
  let resp = Jsonl.to_string (Jsonl.Obj fields) in
  (* the response itself still honors the pre-hello ordering; the mode
     switch applies from the next frame on (the client is required to
     wait for this answer before using what it negotiated) *)
  let seq =
    if st.pipelined then -1
    else begin
      let s = st.next_seq in
      st.next_seq <- s + 1;
      s
    end
  in
  complete t conn st ~orig:payload seq resp;
  st.codec <- codec;
  st.pipelined <- pipelined

(* ------------------------------------------------------------------ *)
(* reactor callbacks                                                   *)
(* ------------------------------------------------------------------ *)

let on_frame t conn payload =
  match Reactor.user conn with
  | Conn st -> (
      match
        match st.codec with Cjson -> hello_req payload | Cbinary -> None
      with
      | Some req -> handle_hello t conn st req payload
      | None ->
          Obs.incr t.m.requests;
          let seq =
            if st.pipelined then -1
            else begin
              let s = st.next_seq in
              st.next_seq <- s + 1;
              s
            end
          in
          begin_inflight t st;
          let codec = st.codec in
          run_job t (fun () ->
              let resp =
                match codec with
                | Cjson -> json_response t payload
                | Cbinary -> (
                    match t.bin_handler with
                    | Some bin -> binary_response t st bin payload
                    | None ->
                        (* unreachable: binary is only granted with a
                           bin_handler installed *)
                        error_for st ~orig:payload "binary codec unavailable")
              in
              complete t conn st ~orig:payload seq resp;
              finish_inflight t conn st))
  | _ -> ()

let on_failure t conn fail =
  match Reactor.user conn with
  | Conn st -> (
      match fail with
      | Reactor.Torn -> Obs.incr t.m.torn
      | Reactor.Oversized len ->
          (* the stream is desynced: answer (the client's reader stays
             coherent — frames survive a poisoned peer) and hang up *)
          Obs.incr t.m.frame_errors;
          let msg =
            Printf.sprintf "frame too large (%d bytes, max %d)" len t.max_frame
          in
          let seq =
            if st.pipelined then -1
            else begin
              let s = st.next_seq in
              st.next_seq <- s + 1;
              s
            end
          in
          complete t conn st seq (error_for st msg);
          Reactor.close conn)
  | _ -> ()

let on_eof _t conn =
  match Reactor.user conn with
  | Conn st ->
      Mutex.lock st.slk;
      st.eof <- true;
      let idle = st.cinflight = 0 in
      Mutex.unlock st.slk;
      (* half-closed peers still read: finish what is in flight, then
         close (the reactor flushes queued output first) *)
      if idle then Reactor.close conn
  | _ -> Reactor.close conn

let on_close t _conn =
  Obs.incr t.m.closed;
  Obs.gauge_add t.m.active (-1.0)

(* ------------------------------------------------------------------ *)
(* lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let listen ?(metrics = "net.server") ?(backlog = 64) ?(max_conns = 64)
    ?deadline_s ?(max_frame = Frame.max_frame_default) ?(reactor_threads = 2)
    ?bin_handler ?dispatch ~handler addr =
  Lazy.force ignore_sigpipe;
  match Addr.resolve addr with
  | Error _ as e -> e
  | Ok sockaddr -> (
      let sock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      try
        Unix.setsockopt sock Unix.SO_REUSEADDR true;
        Unix.bind sock sockaddr;
        Unix.listen sock backlog;
        let port =
          match Unix.getsockname sock with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> addr.Addr.port
        in
        let m = make_metrics metrics in
        let rec t =
          lazy
            {
              lsock = sock;
              port;
              handler;
              bin_handler;
              dispatch;
              max_conns = max 1 max_conns;
              deadline_s;
              max_frame;
              reactor =
                Reactor.create
                  ~metrics:(metrics ^ ".reactor")
                  ~loops:reactor_threads ~max_frame
                  ~on_frame:(fun conn payload ->
                    on_frame (Lazy.force t) conn payload)
                  ~on_failure:(fun conn fail ->
                    on_failure (Lazy.force t) conn fail)
                  ~on_eof:(fun conn -> on_eof (Lazy.force t) conn)
                  ~on_close:(fun conn -> on_close (Lazy.force t) conn)
                  ();
              stopping = Atomic.make false;
              inflight = Atomic.make 0;
              server_thread = None;
              m;
            }
        in
        Ok (Lazy.force t)
      with Unix.Unix_error (e, fn, _) ->
        (try Unix.close sock with _ -> ());
        Error
          (Printf.sprintf "cannot listen on %s: %s (%s)" (Addr.to_string addr)
             (Unix.error_message e) fn))

let port t = t.port

let request_stop t =
  if not (Atomic.exchange t.stopping true) then
    (* aborts a blocked/future accept; everything else happens on the
       normal-context drain path, keeping this safe in a signal handler *)
    try Unix.shutdown t.lsock Unix.SHUTDOWN_ALL with _ -> ()

let fresh_cstate () =
  Conn
    {
      codec = Cjson;
      pipelined = false;
      next_seq = 0;
      slk = Mutex.create ();
      next_emit = 0;
      held = Hashtbl.create 8;
      cinflight = 0;
      eof = false;
    }

let serve t =
  Reactor.start t.reactor;
  let rec accept_loop () =
    while
      Reactor.active t.reactor >= t.max_conns && not (Atomic.get t.stopping)
    do
      (* no timed condvar in stdlib and [request_stop] may run in signal
         context: wait in short slices, re-checking the stopping flag *)
      Thread.delay 0.05
    done;
    if not (Atomic.get t.stopping) then
      match Unix.accept ~cloexec:true t.lsock with
      | fd, _ ->
          Obs.incr t.m.accepted;
          Obs.gauge_add t.m.active 1.0;
          (match Reactor.add t.reactor ~user:(fresh_cstate ()) fd with
          | (_ : Reactor.conn) -> ()
          | exception _ -> ( try Unix.close fd with _ -> ()));
          accept_loop ()
      | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
          accept_loop ()
      | exception Unix.Unix_error _ ->
          (* EMFILE and friends: back off and retry unless stopping
             (shutdown of the listening socket also lands here) *)
          if not (Atomic.get t.stopping) then begin
            (try Thread.delay 0.05 with _ -> ());
            accept_loop ()
          end
  in
  (try accept_loop () with _ -> ());
  (* drain: no new reads, wait out the in-flight jobs (their responses
     queue on the connections), then the reactor flushes and closes *)
  Reactor.stop_reading t.reactor;
  while Atomic.get t.inflight > 0 do
    Thread.delay 0.002
  done;
  Reactor.stop t.reactor;
  try Unix.close t.lsock with _ -> ()

let start t = t.server_thread <- Some (Thread.create (fun () -> serve t) ())

(* a [dispatch] for handlers that block on their own downstream I/O
   (e.g. a Router fanning out to backends): one thread per in-flight
   job up to [max_threads], inline beyond that so overload degrades to
   backpressure instead of unbounded thread creation *)
let threaded_dispatch ?(max_threads = 256) () =
  let active = Atomic.make 0 in
  fun job ->
    if Atomic.fetch_and_add active 1 < max_threads then
      ignore
        (Thread.create
           (fun () -> Fun.protect ~finally:(fun () -> Atomic.decr active) job)
           ())
    else begin
      Atomic.decr active;
      job ()
    end

let stop t =
  request_stop t;
  match t.server_thread with
  | Some th ->
      Thread.join th;
      t.server_thread <- None
  | None -> ()
