(** Consistent-hash routing of serve requests across N backends.

    The router is itself a serve-protocol peer: put {!route} behind a
    {!Server} and clients talk to it exactly as they would to a single
    backend.  Each request is forwarded to a backend chosen by
    consistent hashing on the request's {b shard key}:

    - [betti]/[connectivity]: the content address ({!Psph_engine.Key})
      of the complex the facets denote — the same key the backend's memo
      store will use, so repeats of a shape always land on the backend
      whose cache is warm for it;
    - [psph]/[model-complex]: the normalized-spec encoding (the model's
      own {!Pseudosphere.Model_complex.encode}), which is cheaper than
      building the complex and canonicalizes exactly as the engine's
      spec memo does;
    - everything else ([batch], [stats], ...): no affinity — spread
      round-robin over live backends.

    Hashing is a fixed ring ([replicas] virtual nodes per backend, FNV
    over "host:port#i"), so adding or removing a backend only remaps the
    keys that touched it.  A request tries backends in ring order,
    live ones first: a retryable failure marks the backend dead and
    fails over to the next; a fatal protocol error is request-specific,
    so it is answered as [{"ok":false,"error":...}] without touching
    backend health; when nothing answers, the router degrades to
    [{"ok":false,"error":"no backend"}] (id echoed) instead of crashing.
    A background health checker probes every backend with [{"op":
    "models"}] and revives dead ones.

    Observability ([net.router.*]): request/forwarded/failover/
    no_backend counters, a backends-up gauge, per-request latency, a
    [net.router.request] span per routed request and backend_up/down
    events from the health checker. *)

type t

val create :
  ?metrics:string ->
  ?replicas:int ->
  ?timeout_ms:int ->
  ?retries:int ->
  ?check_period_ms:int ->
  ?max_frame:int ->
  ?codec:[ `Json | `Binary ] ->
  ?pipeline_depth:int ->
  Addr.t list ->
  t
(** No I/O; backends are assumed alive until a probe or request says
    otherwise.  [replicas] (default 64) virtual nodes per backend;
    [timeout_ms]/[retries] configure the per-backend clients (retries
    default 1 — the ring-level failover is the real retry);
    [check_period_ms] (default 1000) spaces health probes.  [codec]
    (default [`Json]) and [pipeline_depth] (default 16) configure the
    backend links: protocol v2 is negotiated per connection, so v1
    backends quietly get sequential JSON either way (see {!Client}).
    @raise Invalid_argument on an empty backend list. *)

val shard_key : string -> string option
(** The shard string of a request line, [None] when the request has no
    key affinity (batch/stats/... or unparseable). *)

val preference : t -> string -> int list
(** Backend indexes in ring (failover) order for a request line.  Pure
    ring arithmetic — exposed for tests; keyless lines rotate. *)

val backends : t -> (Addr.t * bool) list
(** Address and liveness of each backend, in index order. *)

val route : t -> string -> string
(** Forward one request line, failing over as needed; the degraded
    answer if no backend responds.  Never raises — this is the
    {!Server.handler} of [psc route].

    A [batch] whose members are all hot ops ([psph], [betti],
    [connectivity], [model-complex]) {b fans out}: members are grouped
    by their preferred backend (cache affinity preserved per member),
    each group rides that backend's pipelined connection, groups run in
    parallel, and failover happens per member.  The reassembled
    response is byte-identical to a single backend's batch answer;
    members are answered [{"ok":false,"error":"no backend"}] in place
    when nothing will take them.  Batches with other member ops keep
    the forward-whole behavior.  Fanned batches count in
    [net.router.fanout]. *)

val start_health_checks : t -> unit
(** Spawn the background prober (idempotent). *)

val stop : t -> unit
(** Stop the prober and close every backend connection. *)
