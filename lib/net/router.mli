(** Consistent-hash routing of serve requests across N backends, with
    an R-replicated memo tier on top (see docs/NET.md "Replication &
    rebalance").

    The router is itself a serve-protocol peer: put {!route} behind a
    {!Server} and clients talk to it exactly as they would to a single
    backend.  Each request is forwarded to a backend chosen by
    consistent hashing ({!Ring}) on the request's {b shard key}:

    - [betti]/[connectivity]: the content address ({!Psph_engine.Key})
      of the complex the facets denote — the same key the backend's memo
      store will use, so repeats of a shape always land on the backend
      whose cache is warm for it;
    - [psph]/[model-complex]: the normalized-spec encoding (the model's
      own {!Pseudosphere.Model_complex.encode}), which is cheaper than
      building the complex and canonicalizes exactly as the engine's
      spec memo does;
    - everything else ([batch], [stats], ...): no affinity — spread
      round-robin over live backends.

    {b Replication.}  With [replication = R > 1] a key's {e owner set}
    is the first R distinct backends of its ring walk.  A cache miss
    answered by one owner is pushed to the others as an async
    [populate] hint carrying the finished answer, so hot keys converge
    to R warm copies; a dead primary's reads fail over — in ring
    order, which is exactly owner order — onto those warm replicas.
    With [read_fallback] such replica-served reads are counted
    ([net.replica.fallback_read]/[fallback_hit]).

    {b Membership.}  The ring, backend array and an {e epoch} form one
    immutable snapshot; every request captures the snapshot once and
    routes entirely under it, so requests in flight across a [join]
    stay consistent (the ring-epoch handshake).  {!add_backend} — or
    the [{"op":"join","backend":"H:P"}] wire op — publishes the next
    epoch and migrates {e only} the key ranges the new backend takes
    ownership of, streamed from the old backends' snapshots and pushed
    as populate batches.  [{"op":"cluster"}] reports epoch, replication
    factor and per-backend liveness.

    {b Error contract.}  A request tries backends in ring order, live
    ones first: a retryable failure marks the backend dead and fails
    over to the next; a fatal protocol error is request-specific, so it
    is answered as [{"ok":false,"error":...}] without touching backend
    health; when nothing answers, the router degrades to
    [{"ok":false,"error":"no backend"}] (id echoed) — and while the
    health prober is running the degraded answer carries
    ["retry_after_ms"] (the probe period), because the outage is then a
    transient the prober is actively working to clear.  A background
    health checker probes every backend with [{"op":"models"}] and
    revives dead ones.

    Observability ([net.router.*]): request/forwarded/failover/
    no_backend counters, backends-up and epoch gauges, per-request
    latency, a [net.router.request] span per routed request,
    backend_up/down/join and rebalance events, and the
    [net.router.replica.*] family from {!Replica}. *)

type t

val create :
  ?metrics:string ->
  ?vnodes:int ->
  ?replication:int ->
  ?read_fallback:bool ->
  ?timeout_ms:int ->
  ?retries:int ->
  ?check_period_ms:int ->
  ?max_frame:int ->
  ?codec:[ `Json | `Binary ] ->
  ?pipeline_depth:int ->
  Addr.t list ->
  t
(** No I/O; backends are assumed alive until a probe or request says
    otherwise.  [vnodes] (default 64) virtual points per backend on the
    ring; [replication] (default 1, clamped to the backend count per
    request) replicas per key; [read_fallback] (default false) counts
    replica-served reads in the [net.replica.*] family;
    [timeout_ms]/[retries] configure the per-backend clients (retries
    default 1 — the ring-level failover is the real retry);
    [check_period_ms] (default 1000) spaces health probes.  [codec]
    (default [`Json]) and [pipeline_depth] (default 16) configure the
    backend links: protocol v2 is negotiated per connection, so v1
    backends quietly get sequential JSON either way (see {!Client}).
    @raise Invalid_argument on an empty or duplicate backend list. *)

val shard_key : string -> string option
(** The shard string of a request line, [None] when the request has no
    key affinity (batch/stats/... or unparseable). *)

val preference : t -> string -> int list
(** Backend indexes in ring (failover) order for a request line under
    the current epoch — the first {e R} entries are the owner set.
    Pure ring arithmetic — exposed for tests; keyless lines rotate. *)

val backends : t -> (Addr.t * bool) list
(** Address and liveness of each backend, in index order. *)

val epoch : t -> int
(** The current membership epoch (0 at creation, +1 per join). *)

val add_backend :
  ?rebalance:bool -> t -> Addr.t -> (int * Addr.t option, string) result
(** Join a backend: publish the next ring epoch and (unless
    [~rebalance:false]) migrate — on a background thread — the key
    ranges the new backend now owns.  Returns the new epoch and the
    joining node's warm peer (the backend that owned the start of its
    key range; [None] on a one-node ring).  [Error] if the address is
    already a member. *)

val route : t -> string -> string
(** Forward one request line, failing over as needed; the degraded
    answer if no backend responds.  Never raises — this is the
    {!Server.handler} of [psc route].  [cluster]/[join] are answered by
    the router itself (see above).

    A [batch] whose members are all hot ops ([psph], [betti],
    [connectivity], [model-complex]) {b fans out}: members are grouped
    by their preferred backend (cache affinity preserved per member),
    each group rides that backend's pipelined connection, groups run in
    parallel, and failover happens per member.  The reassembled
    response is byte-identical to a single backend's batch answer;
    members are answered [{"ok":false,"error":"no backend"}] in place
    when nothing will take them.  Batches with other member ops keep
    the forward-whole behavior.  Fanned batches count in
    [net.router.fanout]. *)

val start_health_checks : t -> unit
(** Spawn the background prober (idempotent). *)

val stop : t -> unit
(** Stop the prober and the populate worker, and close every backend
    connection. *)
