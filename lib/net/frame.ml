let max_frame_default = 16 * 1024 * 1024

exception Oversized of int

let header_size = 4

let encode ?(max_frame = max_frame_default) payload =
  let len = String.length payload in
  if len > max_frame then raise (Oversized len);
  let b = Bytes.create (header_size + len) in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.blit_string payload 0 b header_size len;
  Bytes.unsafe_to_string b

let encode_into ?(max_frame = max_frame_default) buf payload =
  let len = String.length payload in
  if len > max_frame then raise (Oversized len);
  Buffer.add_int32_be buf (Int32.of_int len);
  Buffer.add_string buf payload

(* [acc] buffers undecoded bytes from [pos] (consumed prefixes are
   compacted away on each decode pass, so the buffer never grows past one
   partial frame plus whatever one [feed] delivered) *)
type reader = {
  max_frame : int;
  mutable acc : Bytes.t;
  mutable pos : int;  (** start of undecoded data in [acc] *)
  mutable fill : int;  (** end of valid data in [acc] *)
  frames : string Queue.t;
  mutable poisoned : int option;  (** the oversized length, once seen *)
}

let reader ?(max_frame = max_frame_default) () =
  {
    max_frame;
    acc = Bytes.create 4096;
    pos = 0;
    fill = 0;
    frames = Queue.create ();
    poisoned = None;
  }

let pending r = r.fill - r.pos

let ensure_room r extra =
  (* compact first, grow only if the live suffix plus [extra] still does
     not fit *)
  let live = pending r in
  if r.pos > 0 then begin
    Bytes.blit r.acc r.pos r.acc 0 live;
    r.pos <- 0;
    r.fill <- live
  end;
  if live + extra > Bytes.length r.acc then begin
    let cap = ref (max 4096 (2 * Bytes.length r.acc)) in
    while live + extra > !cap do
      cap := 2 * !cap
    done;
    let bigger = Bytes.create !cap in
    Bytes.blit r.acc 0 bigger 0 live;
    r.acc <- bigger
  end

let rec decode r =
  let avail = pending r in
  if avail >= header_size then begin
    let len = Int32.to_int (Bytes.get_int32_be r.acc r.pos) in
    if len < 0 || len > r.max_frame then begin
      r.poisoned <- Some len;
      raise (Oversized len)
    end;
    if avail >= header_size + len then begin
      Queue.push (Bytes.sub_string r.acc (r.pos + header_size) len) r.frames;
      r.pos <- r.pos + header_size + len;
      decode r
    end
  end

let feed r buf off len =
  (match r.poisoned with Some n -> raise (Oversized n) | None -> ());
  if len < 0 || off < 0 || off + len > Bytes.length buf then
    invalid_arg "Frame.feed";
  ensure_room r len;
  Bytes.blit buf off r.acc r.fill len;
  r.fill <- r.fill + len;
  decode r

let feed_string r s = feed r (Bytes.unsafe_of_string s) 0 (String.length s)

let next r = Queue.take_opt r.frames
