(* The consistent-hash ring, factored out of Router so that replica
   placement is pure arithmetic shared by Router (routing decisions),
   Replica (rebalance ownership) and the tests (qcheck placement laws).

   A node's virtual points hash only its own name, so membership change
   is local by construction: [add] merges the new node's sorted points
   into the existing array and every pre-existing point keeps its
   position relative to every key. *)

type t = {
  nodes : string array;
  vnodes : int;
  ring : (int * int) array;  (* (point, node index), sorted by point *)
}

(* FNV-1a, folded to a nonnegative OCaml int — deterministic across
   processes and runs, unlike Hashtbl.hash's unspecified evolution *)
let hash s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  Int64.to_int (Int64.shift_right_logical !h 2)

let points vnodes name i =
  Array.init vnodes (fun v -> (hash (Printf.sprintf "%s#%d" name v), i))

let make ?(vnodes = 64) names =
  if names = [] then invalid_arg "Ring.make: no nodes";
  if vnodes < 1 then invalid_arg "Ring.make: vnodes < 1";
  let nodes = Array.of_list names in
  let seen = Hashtbl.create (Array.length nodes) in
  Array.iter
    (fun n ->
      if Hashtbl.mem seen n then
        invalid_arg ("Ring.make: duplicate node " ^ n);
      Hashtbl.add seen n ())
    nodes;
  let ring =
    Array.concat (Array.to_list (Array.mapi (fun i n -> points vnodes n i) nodes))
  in
  Array.sort compare ring;
  { nodes; vnodes; ring }

let size t = Array.length t.nodes

let names t = Array.to_list t.nodes

let name t i = t.nodes.(i)

let index t n =
  let rec go i =
    if i >= Array.length t.nodes then None
    else if t.nodes.(i) = n then Some i
    else go (i + 1)
  in
  go 0

let add t n =
  if index t n <> None then invalid_arg ("Ring.add: duplicate node " ^ n);
  let ring = Array.append t.ring (points t.vnodes n (size t)) in
  Array.sort compare ring;
  { nodes = Array.append t.nodes [| n |]; vnodes = t.vnodes; ring }

(* first ring index with point >= h, wrapping *)
let ring_start t h =
  let n = Array.length t.ring in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.ring.(mid) < h then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let order t key =
  let nb = size t in
  let start = ring_start t (hash key) in
  let seen = Array.make nb false in
  let out = ref [] in
  let found = ref 0 in
  let n = Array.length t.ring in
  let i = ref 0 in
  while !found < nb && !i < n do
    let b = snd t.ring.((start + !i) mod n) in
    if not seen.(b) then begin
      seen.(b) <- true;
      out := b :: !out;
      incr found
    end;
    incr i
  done;
  List.rev !out

let owners t ~r key =
  if r < 1 then invalid_arg "Ring.owners: r < 1";
  List.filteri (fun i _ -> i < r) (order t key)

let successor t i =
  if size t < 2 then None
  else begin
    (* node i's lowest virtual point; the first other node met walking
       clockwise from it owned the start of i's key range before i
       joined (keys map to the first point >= their hash) *)
    let lowest = ref max_int in
    Array.iter
      (fun (p, b) -> if b = i && p < !lowest then lowest := p)
      t.ring;
    let n = Array.length t.ring in
    let start = ring_start t !lowest in
    let rec go k =
      if k >= n then None
      else
        let b = snd t.ring.((start + k) mod n) in
        if b <> i then Some b else go (k + 1)
    in
    go 0
  end
