(* Reconnecting request/response client: exponential backoff with full
   jitter on retryable failures, fail-fast on protocol violations.

   The deadline discipline: each attempt gets [timeout_ms] of budget
   covering connect, send and receive, enforced with a nonblocking
   connect + select, SO_SNDTIMEO on writes and SO_RCVTIMEO on reads.  Any attempt that fails —
   including by timeout — discards the socket, because a response that
   arrives after we stopped waiting for it would be mistaken for the
   answer to the *next* request. *)

open Psph_obs

type error = Timeout | Connection of string | Protocol of string

let is_retryable = function Timeout | Connection _ -> true | Protocol _ -> false

let error_message = function
  | Timeout -> "request timed out"
  | Connection m -> m
  | Protocol m -> "protocol error: " ^ m

exception Err of error

type metrics = {
  requests : Obs.counter;
  errors : Obs.counter;
  retries : Obs.counter;
  reconnects : Obs.counter;
  timeouts : Obs.counter;
  request_s : Obs.histogram;
  span_name : string;
}

type t = {
  addr : Addr.t;
  timeout_s : float;
  max_retries : int;
  backoff_s : float;
  max_backoff_s : float;
  max_frame : int;
  rng : Random.State.t;
  lock : Mutex.t;
  mutable sock : Unix.file_descr option;
  m : metrics;
}

(* a write to a peer-closed socket must fail with EPIPE (handled as a
   retryable Connection error below), not deliver SIGPIPE, whose default
   action kills the whole process *)
let ignore_sigpipe =
  lazy (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())

let create ?(metrics = "net.client") ?(timeout_ms = 5000) ?(retries = 3)
    ?(backoff_ms = 50) ?(max_backoff_ms = 2000)
    ?(max_frame = Frame.max_frame_default) addr =
  Lazy.force ignore_sigpipe;
  {
    addr;
    timeout_s = float_of_int timeout_ms /. 1000.;
    max_retries = max 0 retries;
    backoff_s = float_of_int backoff_ms /. 1000.;
    max_backoff_s = float_of_int max_backoff_ms /. 1000.;
    max_frame;
    rng = Random.State.make_self_init ();
    lock = Mutex.create ();
    sock = None;
    m =
      {
        requests = Obs.counter (metrics ^ ".requests");
        errors = Obs.counter (metrics ^ ".errors");
        retries = Obs.counter (metrics ^ ".retries");
        reconnects = Obs.counter (metrics ^ ".reconnects");
        timeouts = Obs.counter (metrics ^ ".timeouts");
        request_s = Obs.histogram (metrics ^ ".request_s");
        span_name = metrics ^ ".request";
      };
  }

let addr t = t.addr

let disconnect t =
  match t.sock with
  | None -> ()
  | Some fd ->
      t.sock <- None;
      (try Unix.close fd with _ -> ())

let close t =
  Mutex.lock t.lock;
  disconnect t;
  Mutex.unlock t.lock

let connection fmt = Printf.ksprintf (fun m -> raise (Err (Connection m))) fmt

let connect_with_timeout t deadline =
  let sockaddr =
    match Addr.resolve t.addr with
    | Ok sa -> sa
    | Error m -> raise (Err (Connection m))
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.set_nonblock fd;
    (match Unix.connect fd sockaddr with
    | () -> ()
    | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _)
      -> (
        let budget = deadline -. Obs.monotonic () in
        if budget <= 0. then raise (Err Timeout);
        match Unix.select [] [ fd ] [] budget with
        | _, [], _ -> raise (Err Timeout)
        | _ -> (
            match Unix.getsockopt_error fd with
            | None -> ()
            | Some e ->
                connection "connect to %s: %s" (Addr.to_string t.addr)
                  (Unix.error_message e)))
    | exception Unix.Unix_error (e, _, _) ->
        connection "connect to %s: %s" (Addr.to_string t.addr)
          (Unix.error_message e));
    Unix.clear_nonblock fd;
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
    fd
  with e ->
    (try Unix.close fd with _ -> ());
    raise e

let ensure_connected t deadline =
  match t.sock with
  | Some fd -> fd
  | None ->
      Obs.incr t.m.reconnects;
      let fd = connect_with_timeout t deadline in
      t.sock <- Some fd;
      fd

(* setsockopt_float truncates to whole microseconds, and a zero timeout
   means "no timeout": keep a floor so a sub-microsecond residual budget
   can never turn a should-be-timeout into an indefinite block *)
let set_timeout fd opt budget =
  try Unix.setsockopt_float fd opt (Float.max budget 0.001) with _ -> ()

(* the attempt deadline bounds the send too: a peer that accepts the
   connection but stops reading while our socket buffer is full must
   surface as Timeout, not stall past the budget *)
let send_all fd s deadline =
  let len = String.length s in
  let rec go off =
    if off < len then begin
      let budget = deadline -. Obs.monotonic () in
      if budget <= 0. then raise (Err Timeout);
      set_timeout fd Unix.SO_SNDTIMEO budget;
      match Unix.write_substring fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          raise (Err Timeout)
      | exception Unix.Unix_error (e, _, _) ->
          connection "send failed: %s" (Unix.error_message e)
    end
  in
  go 0

(* read whole frames until one payload is complete or the deadline runs
   out; a fresh reader per attempt, so a failed attempt can never leave a
   half-frame behind to corrupt the next one *)
let recv_frame t fd deadline =
  let reader = Frame.reader ~max_frame:t.max_frame () in
  let buf = Bytes.create 65536 in
  let rec go () =
    match Frame.next reader with
    | Some payload -> payload
    | None -> (
        let budget = deadline -. Obs.monotonic () in
        if budget <= 0. then raise (Err Timeout);
        set_timeout fd Unix.SO_RCVTIMEO budget;
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> connection "connection closed by server (torn frame)"
        | n -> (
            match Frame.feed reader buf 0 n with
            | () -> go ()
            | exception Frame.Oversized len ->
                raise
                  (Err
                     (Protocol
                        (Printf.sprintf "oversized frame from server (%d bytes)"
                           len))))
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            raise (Err Timeout)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error (e, _, _) ->
            connection "receive failed: %s" (Unix.error_message e))
  in
  go ()

(* carry the ambient span id across the wire (only while tracing: the
   rewrite costs a parse, and span ids only mean something to a trace) *)
let with_span_parent line =
  match Obs.current_span_id () with
  | Some id when Obs.current_sink () <> Obs.Null -> (
      match Jsonl.of_string_opt line with
      | Some (Jsonl.Obj fields) ->
          Jsonl.to_string (Jsonl.Obj (fields @ [ ("span_parent", Jsonl.int id) ]))
      | _ -> line)
  | _ -> line

let attempt_once t line =
  let deadline = Obs.monotonic () +. t.timeout_s in
  let fd = ensure_connected t deadline in
  send_all fd (Frame.encode ~max_frame:t.max_frame (with_span_parent line)) deadline;
  recv_frame t fd deadline

let backoff_delay t n =
  let cap = Float.min t.max_backoff_s (t.backoff_s *. (2. ** float_of_int n)) in
  Random.State.float t.rng cap

let request t line =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  Obs.incr t.m.requests;
  Obs.with_span t.m.span_name (fun sp ->
      Obs.time t.m.request_s (fun () ->
          let rec go n =
            match attempt_once t line with
            | response ->
                Obs.set_attr sp "attempts" (Jsonl.int (n + 1));
                Ok response
            | exception Err e ->
                disconnect t;
                if e = Timeout then Obs.incr t.m.timeouts;
                if is_retryable e && n < t.max_retries then begin
                  Obs.incr t.m.retries;
                  Thread.delay (backoff_delay t n);
                  go (n + 1)
                end
                else begin
                  Obs.incr t.m.errors;
                  Obs.set_attr sp "attempts" (Jsonl.int (n + 1));
                  Obs.set_attr sp "error" (Jsonl.Str (error_message e));
                  Error e
                end
            | exception e ->
                disconnect t;
                Obs.incr t.m.errors;
                Error (Connection (Printexc.to_string e))
          in
          go 0))
