(* Reconnecting request/response client with optional pipelining and
   binary codec (wire protocol v2).

   The v1 discipline survives intact for plain clients: each attempt
   gets [timeout_ms] of budget covering connect, send and receive
   (nonblocking connect + select, SO_SNDTIMEO / SO_RCVTIMEO), and any
   failed attempt discards the socket, because on an id-less connection
   a late response would be mistaken for the answer to the next request.

   Pipelined connections change exactly that last rule.  The client
   injects a transport request id into every windowed request and keys
   the in-flight window on it, so a late response is identifiable — and
   therefore harmless.  A timed-out request keeps the connection: its id
   moves to the connection's stale set, the retry flies with a fresh id,
   and when the orphaned response eventually lands it is dropped and
   counted ([net.client.stale_response]) instead of poisoning the
   stream.  The stale set is bounded: entries age out after a TTL of a
   few timeouts (a server that never answered by then never will), and
   a hard cap evicts the oldest debt first — safe because correctness
   never depends on stale membership: every windowed id is >= tid_base,
   so a window miss with a transport-range id is a late response by
   construction, whatever the set remembers.  Only transport-level
   failures (torn frames, oversized frames, dead sockets, barrier
   timeouts) tear the connection down.

   The driver below runs every request through one state machine with
   three per-connection modes, negotiated by a hello frame on fresh
   connections: V2 binary (hot ops as {!Codec} bytes, everything else
   escape-tagged JSON), V2 json (hot ops with injected ids), and V1
   (old server: sequential, one in flight, byte-identical to the old
   client).  Requests whose responses carry no id to match on — batch,
   stats, anything not a hot op — are "barriers": the window drains and
   they fly alone, so positional matching is unambiguous. *)

open Psph_obs

type error = Timeout | Connection of string | Protocol of string

let is_retryable = function Timeout | Connection _ -> true | Protocol _ -> false

let error_message = function
  | Timeout -> "request timed out"
  | Connection m -> m
  | Protocol m -> "protocol error: " ^ m

exception Err of error

type metrics = {
  requests : Obs.counter;
  errors : Obs.counter;
  retries : Obs.counter;
  reconnects : Obs.counter;
  timeouts : Obs.counter;
  pipelined : Obs.counter;
  stale : Obs.counter;
  request_s : Obs.histogram;
  span_name : string;
  pipeline_span : string;
}

(* how a fresh connection turned out after the hello exchange *)
type nego = V1 | V2 of { binary : bool }

type conn = {
  fd : Unix.file_descr;
  reader : Frame.reader;  (* persistent: frames can span reads *)
  stale : (int, float) Hashtbl.t;  (* timed-out id -> expiry of the debt *)
  mutable nego : nego option;
}

type t = {
  addr : Addr.t;
  timeout_s : float;
  max_retries : int;
  backoff_s : float;
  max_backoff_s : float;
  max_frame : int;
  codec : [ `Json | `Binary ];
  pipeline_depth : int;
  rng : Random.State.t;
  lock : Mutex.t;
  mutable conn : conn option;
  mutable tid : int;
  m : metrics;
}

(* a write to a peer-closed socket must fail with EPIPE (handled as a
   retryable Connection error below), not deliver SIGPIPE, whose default
   action kills the whole process *)
let ignore_sigpipe =
  lazy (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())

(* transport ids start far above any plausible user-chosen integer id,
   so a barrier response carrying a user id can never be mistaken for a
   late windowed response (see the barrier-matching rule in [pump]).
   A caller who does pick an id >= tid_base gets that response dropped
   as stale and the barrier times out — documented in the mli. *)
let tid_base = 0x40000000

(* bound on timed-out ids still owed a late response: beyond the cap the
   oldest debts are forgotten (their late responses will still be
   dropped by the tid_base rule, just counted without a table hit) *)
let stale_cap = 1024

(* a response this late is never coming; a few timeouts of grace keeps
   slow-but-alive servers from leaking entries under tiny timeouts *)
let stale_ttl t = Float.max (8. *. t.timeout_s) 0.5

let create ?(metrics = "net.client") ?(timeout_ms = 5000) ?(retries = 3)
    ?(backoff_ms = 50) ?(max_backoff_ms = 2000)
    ?(max_frame = Frame.max_frame_default) ?(codec = `Json)
    ?(pipeline_depth = 1) addr =
  Lazy.force ignore_sigpipe;
  {
    addr;
    timeout_s = float_of_int timeout_ms /. 1000.;
    max_retries = max 0 retries;
    backoff_s = float_of_int backoff_ms /. 1000.;
    max_backoff_s = float_of_int max_backoff_ms /. 1000.;
    max_frame;
    codec;
    pipeline_depth = max 1 pipeline_depth;
    rng = Random.State.make_self_init ();
    lock = Mutex.create ();
    conn = None;
    tid = tid_base;
    m =
      {
        requests = Obs.counter (metrics ^ ".requests");
        errors = Obs.counter (metrics ^ ".errors");
        retries = Obs.counter (metrics ^ ".retries");
        reconnects = Obs.counter (metrics ^ ".reconnects");
        timeouts = Obs.counter (metrics ^ ".timeouts");
        pipelined = Obs.counter (metrics ^ ".pipelined");
        stale = Obs.counter (metrics ^ ".stale_response");
        request_s = Obs.histogram (metrics ^ ".request_s");
        span_name = metrics ^ ".request";
        pipeline_span = metrics ^ ".pipeline";
      };
  }

let addr t = t.addr

let pending_stale t =
  Mutex.lock t.lock;
  let n = match t.conn with Some c -> Hashtbl.length c.stale | None -> 0 in
  Mutex.unlock t.lock;
  n

let next_tid t =
  let v = t.tid in
  t.tid <- (if v >= 0x7FFFFFFF then tid_base else v + 1);
  v

let disconnect t =
  match t.conn with
  | None -> ()
  | Some c ->
      t.conn <- None;
      (try Unix.close c.fd with _ -> ())

let close t =
  Mutex.lock t.lock;
  disconnect t;
  Mutex.unlock t.lock

let connection fmt = Printf.ksprintf (fun m -> raise (Err (Connection m))) fmt

(* the peer (or a chaos proxy between us and it) killed the connection
   under us mid-request.  Named explicitly rather than left to the
   catch-all so the taxonomy is stable — these are the errors a reset
   storm surfaces constantly — and kept retryable: a fresh connection
   may well land on a healthy peer. *)
let reset_name = function
  | Unix.ECONNRESET -> Some "ECONNRESET"
  | Unix.EPIPE -> Some "EPIPE"
  | Unix.ECONNABORTED -> Some "ECONNABORTED"
  | _ -> None

let connection_io what e =
  match reset_name e with
  | Some name -> connection "connection reset by peer mid-request (%s)" name
  | None -> connection "%s failed: %s" what (Unix.error_message e)

let connect_with_timeout t deadline =
  let sockaddr =
    match Addr.resolve t.addr with
    | Ok sa -> sa
    | Error m -> raise (Err (Connection m))
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.set_nonblock fd;
    (match Unix.connect fd sockaddr with
    | () -> ()
    | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _)
      -> (
        let budget = deadline -. Obs.monotonic () in
        if budget <= 0. then raise (Err Timeout);
        match Unix.select [] [ fd ] [] budget with
        | _, [], _ -> raise (Err Timeout)
        | _ -> (
            match Unix.getsockopt_error fd with
            | None -> ()
            | Some e ->
                connection "connect to %s: %s" (Addr.to_string t.addr)
                  (Unix.error_message e)))
    | exception Unix.Unix_error (e, _, _) ->
        connection "connect to %s: %s" (Addr.to_string t.addr)
          (Unix.error_message e));
    Unix.clear_nonblock fd;
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
    fd
  with e ->
    (try Unix.close fd with _ -> ());
    raise e

let ensure_connected t deadline =
  match t.conn with
  | Some c -> c
  | None ->
      Obs.incr t.m.reconnects;
      let fd = connect_with_timeout t deadline in
      let c =
        {
          fd;
          reader = Frame.reader ~max_frame:t.max_frame ();
          stale = Hashtbl.create 8;
          nego = None;
        }
      in
      t.conn <- Some c;
      c

(* setsockopt_float truncates to whole microseconds, and a zero timeout
   means "no timeout": keep a floor so a sub-microsecond residual budget
   can never turn a should-be-timeout into an indefinite block *)
let set_timeout fd opt budget =
  try Unix.setsockopt_float fd opt (Float.max budget 0.001) with _ -> ()

(* the attempt deadline bounds the send too: a peer that accepts the
   connection but stops reading while our socket buffer is full must
   surface as Timeout, not stall past the budget *)
let send_all fd s deadline =
  let len = String.length s in
  let rec go off =
    if off < len then begin
      let budget = deadline -. Obs.monotonic () in
      if budget <= 0. then raise (Err Timeout);
      set_timeout fd Unix.SO_SNDTIMEO budget;
      match Unix.write_substring fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          raise (Err Timeout)
      | exception Unix.Unix_error (e, _, _) -> connection_io "send" e
    end
  in
  go 0

(* read whole frames from the connection's reader until one payload is
   complete or the deadline runs out.  Any failure discards the whole
   connection (reader included), so a half-frame can never leak into the
   next exchange. *)
let recv_one c deadline =
  let buf = Bytes.create 65536 in
  let rec go () =
    match Frame.next c.reader with
    | Some payload -> payload
    | None -> (
        let budget = deadline -. Obs.monotonic () in
        if budget <= 0. then raise (Err Timeout);
        set_timeout c.fd Unix.SO_RCVTIMEO budget;
        match Unix.read c.fd buf 0 (Bytes.length buf) with
        | 0 -> connection "connection closed by server (torn frame)"
        | n -> (
            match Frame.feed c.reader buf 0 n with
            | () -> go ()
            | exception Frame.Oversized len ->
                raise
                  (Err
                     (Protocol
                        (Printf.sprintf "oversized frame from server (%d bytes)"
                           len))))
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            raise (Err Timeout)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error (e, _, _) -> connection_io "receive" e)
  in
  go ()

(* carry the ambient span id across the wire (only while tracing: the
   rewrite costs a parse, and span ids only mean something to a trace) *)
let with_span_parent line =
  match Obs.current_span_id () with
  | Some id when Obs.current_sink () <> Obs.Null -> (
      match Jsonl.of_string_opt line with
      | Some (Jsonl.Obj fields) ->
          Jsonl.to_string (Jsonl.Obj (fields @ [ ("span_parent", Jsonl.int id) ]))
      | _ -> line)
  | _ -> line

let backoff_delay t n =
  let cap = Float.min t.max_backoff_s (t.backoff_s *. (2. ** float_of_int n)) in
  Random.State.float t.rng cap

(* ------------------------------------------------------------------ *)
(* negotiation                                                         *)
(* ------------------------------------------------------------------ *)

let hello_line t =
  Printf.sprintf {|{"op":"hello","version":2,"codec":%S,"pipeline":true}|}
    (match t.codec with `Binary -> "binary" | `Json -> "json")

let negotiate t c deadline =
  send_all c.fd (Frame.encode ~max_frame:t.max_frame (hello_line t)) deadline;
  let resp = recv_one c deadline in
  let nego =
    match Jsonl.of_string_opt resp with
    | Some o ->
        let ok = Jsonl.member "ok" o = Some (Jsonl.Bool true) in
        let version = Option.bind (Jsonl.member "version" o) Jsonl.to_int_opt in
        let pipelined = Jsonl.member "pipeline" o = Some (Jsonl.Bool true) in
        if ok && version = Some 2 && pipelined then
          V2
            {
              binary =
                Option.bind (Jsonl.member "codec" o) Jsonl.to_string_opt
                = Some "binary";
            }
        else V1 (* an old server answers hello with an unknown-op error *)
    | None -> V1
  in
  c.nego <- Some nego;
  nego

(* connect if needed, negotiate if the connection is fresh.  Plain
   clients (json codec, depth 1) never send a hello: they stay
   byte-for-byte the v1 client. *)
let ensure_nego t =
  let deadline = Obs.monotonic () +. t.timeout_s in
  let c = ensure_connected t deadline in
  match c.nego with
  | Some n -> (c, n)
  | None ->
      if t.codec = `Json && t.pipeline_depth <= 1 then begin
        c.nego <- Some V1;
        (c, V1)
      end
      else (c, negotiate t c deadline)

(* ------------------------------------------------------------------ *)
(* the pipelined driver                                                *)
(* ------------------------------------------------------------------ *)

(* one request through the driver.  [bin] marks it windowable — a hot
   op whose response is guaranteed to echo the transport id (hot-op
   results and their errors both do) — and holds its pre-encoded binary
   request (id 0, stamped per send), so the per-flight cost on a binary
   connection is a copy, not an encode.  Everything else is a barrier.
   The JSON forms are lazy: a binary connection never builds them. *)
type ditem = {
  jline : string Lazy.t;
  jobj : Jsonl.t option Lazy.t;
  bin : string Lazy.t option;
  mutable attempts : int;  (* failed attempts so far *)
}

(* how a resolved response is represented, so [pipeline] and
   [eval_many] can each convert without an extra round trip through the
   other's format *)
type rv =
  | Rbin of Codec.reply  (* binary reply, ids already transport-level *)
  | Rraw of string  (* verbatim response line (barrier or v1) *)
  | Rinj of string  (* JSON response carrying an injected transport id *)

let drive ?on_latency t (items : ditem array) =
  let n = Array.length items in
  let results : (rv, error) result option array = Array.make n None in
  let unresolved () = Array.exists Option.is_none results in
  let resolve ?latency idx r =
    if results.(idx) = None then begin
      results.(idx) <- Some r;
      match r with
      | Ok _ ->
          Option.iter
            (fun l ->
              Obs.observe t.m.request_s l;
              match on_latency with Some f -> f idx l | None -> ())
            latency
      | Error _ -> Obs.incr t.m.errors
    end
  in
  (* count a failed attempt against an item; resolve it once the retry
     budget is spent or the failure is fatal *)
  let bump e idx =
    let it = items.(idx) in
    it.attempts <- it.attempts + 1;
    if (not (is_retryable e)) || it.attempts > t.max_retries then
      resolve idx (Error e)
    else Obs.incr t.m.retries
  in
  let pending = Queue.create () in
  let rebuild_pending () =
    Queue.clear pending;
    Array.iteri (fun i r -> if r = None then Queue.add i pending) results
  in
  let streak = ref 0 in
  (* could not even get a negotiated connection: everyone unfinished
     pays an attempt, then back off before trying again *)
  let conn_failure e =
    disconnect t;
    if e = Timeout then Obs.incr t.m.timeouts;
    Array.iteri (fun i r -> if r = None then bump e i) results;
    if unresolved () then begin
      Thread.delay (backoff_delay t !streak);
      incr streak
    end
  in
  let buf = Bytes.create 65536 in

  (* -------------------- V1: sequential fallback -------------------- *)
  let v1_drain c =
    let inflight = ref (-1) in
    try
      while not (Queue.is_empty pending) do
        let idx = Queue.pop pending in
        if results.(idx) = None then begin
          let it = items.(idx) in
          inflight := idx;
          let t0 = Obs.monotonic () in
          let deadline = t0 +. t.timeout_s in
          send_all c.fd
            (Frame.encode ~max_frame:t.max_frame
               (with_span_parent (Lazy.force it.jline)))
            deadline;
          let resp = recv_one c deadline in
          inflight := -1;
          resolve ~latency:(Obs.monotonic () -. t0) idx (Ok (Rraw resp))
        end
      done
    with e ->
      let e = match e with Err e -> e | e -> Connection (Printexc.to_string e) in
      disconnect t;
      if e = Timeout then Obs.incr t.m.timeouts;
      if !inflight >= 0 then bump e !inflight;
      if unresolved () then begin
        Thread.delay (backoff_delay t !streak);
        incr streak
      end
  in

  (* ---------------------- V2: windowed pump ------------------------ *)
  let pump c binary =
    (* tid -> (item index, sent_at, deadline) *)
    let window = Hashtbl.create (2 * t.pipeline_depth) in
    let barrier = ref None in
    let out = Buffer.create 4096 in
    let inflight () =
      Hashtbl.length window + match !barrier with Some _ -> 1 | None -> 0
    in
    let encode_windowable it tid =
      match it.bin with
      | Some tpl when binary -> Codec.request_with_id (Lazy.force tpl) tid
      | Some _ -> (
          match Lazy.force it.jobj with
          | Some (Jsonl.Obj fields) ->
              Jsonl.to_string
                (Jsonl.Obj
                   (("id", Jsonl.int tid) :: List.remove_assoc "id" fields))
          | _ ->
              Lazy.force it.jline
              (* unreachable: windowable implies a parsed object *))
      | None -> assert false
    in
    let encode_barrier it =
      if binary then Codec.escape_json (Lazy.force it.jline)
      else Lazy.force it.jline
    in
    let fill () =
      let again = ref true in
      while !again && not (Queue.is_empty pending) do
        let idx = Queue.peek pending in
        if results.(idx) <> None then ignore (Queue.pop pending)
        else begin
          let it = items.(idx) in
          match it.bin with
          | Some _ ->
              if !barrier = None && Hashtbl.length window < t.pipeline_depth
              then begin
                ignore (Queue.pop pending);
                let tid = next_tid t in
                let now = Obs.monotonic () in
                Frame.encode_into ~max_frame:t.max_frame out
                  (encode_windowable it tid);
                Hashtbl.replace window tid (idx, now, now +. t.timeout_s);
                Obs.incr t.m.pipelined
              end
              else again := false
          | None ->
              (* barriers fly alone: their responses carry nothing to
                 match on, so they must be the only frame in flight *)
              if inflight () = 0 then begin
                ignore (Queue.pop pending);
                let now = Obs.monotonic () in
                Frame.encode_into ~max_frame:t.max_frame out
                  (encode_barrier it);
                barrier := Some (idx, now, now +. t.timeout_s)
              end;
              again := false
        end
      done
    in
    let flush () =
      if Buffer.length out > 0 then begin
        let data = Buffer.contents out in
        Buffer.clear out;
        send_all c.fd data (Obs.monotonic () +. t.timeout_s)
      end
    in
    let resolve_window tid idx sent v =
      Hashtbl.remove window tid;
      resolve ~latency:(Obs.monotonic () -. sent) idx (Ok v)
    in
    let drop_stale id_opt =
      (match id_opt with Some i -> Hashtbl.remove c.stale i | None -> ());
      Obs.incr t.m.stale
    in
    let handle_payload payload =
      let cls =
        if binary then
          match Codec.unescape_json payload with
          | Some line -> `Json line
          | None -> (
              match Codec.decode_reply payload with
              | Ok r -> `Bin r
              | Error m -> raise (Err (Protocol ("undecodable reply: " ^ m))))
        else `Json payload
      in
      match cls with
      | `Bin r -> (
          let id =
            match r with
            | Codec.Result { id; _ } | Codec.Failed { id; _ } -> id
          in
          match Hashtbl.find_opt window id with
          | Some (idx, sent, _) -> resolve_window id idx sent (Rbin r)
          | None -> drop_stale (Some id))
      | `Json line -> (
          let id =
            match Jsonl.of_string_opt line with
            | Some o -> Option.bind (Jsonl.member "id" o) Jsonl.to_int_opt
            | None -> None
          in
          match id with
          | Some i when (not binary) && Hashtbl.mem window i ->
              let idx, sent, _ = Hashtbl.find window i in
              resolve_window i idx sent (Rinj line)
          | _ -> (
              (* a frame that matches no window slot answers the barrier
                 — unless its id names a request we timed out, in which
                 case it is that request's late response *)
              match !barrier with
              | Some (idx, sent, _)
                when (match id with Some i -> i < tid_base | None -> true) ->
                  barrier := None;
                  resolve ~latency:(Obs.monotonic () -. sent) idx
                    (Ok (Rraw line))
              | _ -> drop_stale id))
    in
    let nearest_deadline () =
      let d =
        Hashtbl.fold
          (fun _ (_, _, dl) acc -> Float.min dl acc)
          window infinity
      in
      match !barrier with Some (_, _, dl) -> Float.min dl d | None -> d
    in
    (* expire overdue window slots in place: the id goes to the stale
       set (stamped with its own expiry), the retry gets a fresh id, the
       connection lives on.  An overdue barrier can only be resolved by
       tearing the connection down (its response is matched
       positionally). *)
    let expire () =
      let now = Obs.monotonic () in
      (match !barrier with
      | Some (_, _, dl) when now >= dl -> raise (Err Timeout)
      | _ -> ());
      let dead =
        Hashtbl.fold
          (fun tid (idx, _, dl) acc ->
            if now >= dl then (tid, idx) :: acc else acc)
          window []
      in
      List.iter
        (fun (tid, idx) ->
          Hashtbl.remove window tid;
          Hashtbl.replace c.stale tid (now +. stale_ttl t);
          Obs.incr t.m.timeouts;
          bump Timeout idx;
          if results.(idx) = None then Queue.add idx pending)
        dead;
      (* age out debts whose response is never coming... *)
      let expired =
        Hashtbl.fold
          (fun tid dl acc -> if now >= dl then tid :: acc else acc)
          c.stale []
      in
      List.iter (Hashtbl.remove c.stale) expired;
      (* ...and under a pathological server, forget the oldest debts
         rather than tearing down a connection that still works: the
         tid_base rule keeps their late responses harmless anyway *)
      while Hashtbl.length c.stale > stale_cap do
        let oldest =
          Hashtbl.fold
            (fun tid dl acc ->
              match acc with
              | Some (_, best) when best <= dl -> acc
              | _ -> Some (tid, dl))
            c.stale None
        in
        match oldest with
        | Some (tid, _) -> Hashtbl.remove c.stale tid
        | None -> ()
      done
    in
    let rec go () =
      fill ();
      flush ();
      let rec drain () =
        match Frame.next c.reader with
        | Some p ->
            handle_payload p;
            fill ();
            drain ()
        | None -> ()
      in
      drain ();
      flush ();
      if inflight () > 0 then begin
        let now = Obs.monotonic () in
        let dl = nearest_deadline () in
        if dl <= now then expire ()
        else begin
          set_timeout c.fd Unix.SO_RCVTIMEO (dl -. now);
          match Unix.read c.fd buf 0 (Bytes.length buf) with
          | 0 -> connection "connection closed by server (torn frame)"
          | n -> (
              match Frame.feed c.reader buf 0 n with
              | () -> ()
              | exception Frame.Oversized len ->
                  raise
                    (Err
                       (Protocol
                          (Printf.sprintf
                             "oversized frame from server (%d bytes)" len))))
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
              expire ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | exception Unix.Unix_error (e, _, _) -> connection_io "receive" e
        end;
        go ()
      end
      else if not (Queue.is_empty pending) then go ()
    in
    try go ()
    with e ->
      (* transport-level failure: the connection is unusable.  Fatal
         errors resolve every in-flight request; retryable ones cost
         each an attempt and the survivors re-fly on a fresh
         connection. *)
      let e = match e with Err e -> e | e -> Connection (Printexc.to_string e) in
      disconnect t;
      if e = Timeout then Obs.incr t.m.timeouts;
      Hashtbl.iter (fun _ (idx, _, _) -> bump e idx) window;
      (match !barrier with Some (idx, _, _) -> bump e idx | None -> ());
      if unresolved () then begin
        Thread.delay (backoff_delay t !streak);
        incr streak
      end
  in

  let rec session () =
    if unresolved () then begin
      rebuild_pending ();
      (match ensure_nego t with
      | exception e ->
          let e =
            match e with Err e -> e | e -> Connection (Printexc.to_string e)
          in
          conn_failure e
      | c, V1 ->
          streak := 0;
          v1_drain c
      | c, V2 { binary } ->
          streak := 0;
          pump c binary);
      session ()
    end
  in
  session ();
  Array.map
    (function
      | Some r -> r
      | None -> Error (Connection "internal: request left unresolved"))
    results

(* ------------------------------------------------------------------ *)
(* public entry points                                                 *)
(* ------------------------------------------------------------------ *)

let item_of_line line =
  let jobj = Jsonl.of_string_opt line in
  let bin =
    match jobj with
    | Some (Jsonl.Obj _ as o) ->
        Codec.query_of_json o
        |> Option.map (fun (want, query) ->
               lazy (Codec.encode_request { Codec.id = 0; want; query }))
    | _ -> None
  in
  { jline = Lazy.from_val line; jobj = Lazy.from_val jobj; bin; attempts = 0 }

let orig_id it =
  match Lazy.force it.jobj with
  | Some o -> Jsonl.member "id" o
  | None -> None

(* swap the injected transport id back out of a response line.  The
   server always puts the echoed id first, so this preserves the exact
   bytes a v1 exchange would have produced. *)
let restore_id orig line =
  match Jsonl.of_string_opt line with
  | Some (Jsonl.Obj (("id", _) :: rest)) ->
      Jsonl.to_string
        (Jsonl.Obj
           (match orig with Some v -> ("id", v) :: rest | None -> rest))
  | _ -> line

let pipeline_locked ?on_latency t lines =
  let items = Array.of_list (List.map item_of_line lines) in
  Obs.incr ~by:(Array.length items) t.m.requests;
  Obs.with_span t.m.pipeline_span (fun sp ->
      Obs.set_attr sp "count" (Jsonl.int (Array.length items));
      let rs = drive ?on_latency t items in
      Array.to_list
        (Array.mapi
           (fun i r ->
             match r with
             | Error e -> Error e
             | Ok (Rraw s) -> Ok s
             | Ok (Rinj s) -> Ok (restore_id (orig_id items.(i)) s)
             | Ok (Rbin rep) ->
                 Ok (Codec.json_of_reply ~id:(orig_id items.(i)) rep))
           rs))

let pipeline ?on_latency t lines =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  pipeline_locked ?on_latency t lines

let eval_many ?on_latency t specs =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  let items =
    Array.of_list
      (List.map
         (fun (want, query) ->
           let bin =
             (* out-of-range queries can't ride the binary codec; let
                them fall back to plain JSON and the server's answer *)
             match Codec.encode_request { Codec.id = 0; want; query } with
             | tpl -> Some (Lazy.from_val tpl)
             | exception Invalid_argument _ -> None
           in
           let jline = lazy (Codec.json_line_of_query want query) in
           {
             jline;
             jobj = lazy (Jsonl.of_string_opt (Lazy.force jline));
             bin;
             attempts = 0;
           })
         specs)
  in
  Obs.incr ~by:(Array.length items) t.m.requests;
  Obs.with_span t.m.pipeline_span (fun sp ->
      Obs.set_attr sp "count" (Jsonl.int (Array.length items));
      let rs = drive ?on_latency t items in
      Array.to_list
        (Array.map
           (fun r ->
             match r with
             | Error e -> Error e
             | Ok (Rbin rep) -> Ok rep
             | Ok (Rraw s) | Ok (Rinj s) -> (
                 match Codec.reply_of_json s with
                 | Some rep -> Ok rep
                 | None -> Error (Protocol "unparseable response")))
           rs))

(* the classic single-shot path, unchanged from v1 for plain clients *)
let attempt_once t line =
  let deadline = Obs.monotonic () +. t.timeout_s in
  let c = ensure_connected t deadline in
  send_all c.fd
    (Frame.encode ~max_frame:t.max_frame (with_span_parent line))
    deadline;
  recv_one c deadline

let plain_request t line =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  Obs.incr t.m.requests;
  Obs.with_span t.m.span_name (fun sp ->
      Obs.time t.m.request_s (fun () ->
          let rec go n =
            match attempt_once t line with
            | response ->
                Obs.set_attr sp "attempts" (Jsonl.int (n + 1));
                Ok response
            | exception Err e ->
                disconnect t;
                if e = Timeout then Obs.incr t.m.timeouts;
                if is_retryable e && n < t.max_retries then begin
                  Obs.incr t.m.retries;
                  Thread.delay (backoff_delay t n);
                  go (n + 1)
                end
                else begin
                  Obs.incr t.m.errors;
                  Obs.set_attr sp "attempts" (Jsonl.int (n + 1));
                  Obs.set_attr sp "error" (Jsonl.Str (error_message e));
                  Error e
                end
            | exception e ->
                disconnect t;
                Obs.incr t.m.errors;
                Error (Connection (Printexc.to_string e))
          in
          go 0))

let request t line =
  if t.codec = `Binary || t.pipeline_depth > 1 then
    match pipeline t [ line ] with
    | [ r ] -> r
    | _ -> Error (Protocol "pipeline arity") (* unreachable *)
  else plain_request t line
