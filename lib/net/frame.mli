(** Length-prefixed framing for JSONL requests over sockets.

    A frame is a 4-byte big-endian payload length followed by the payload
    (one JSON document, by convention — the framing itself is
    byte-transparent, so payloads may contain newlines or NULs).  The
    length guards both directions: {!encode} refuses to build an
    oversized frame and a {!reader} refuses to buffer one, so a
    misbehaving or garbage-speaking peer costs at most [max_frame] bytes
    of memory, never an unbounded allocation.

    The {!reader} is incremental: {!feed} it whatever byte run [read]
    returned — a torn header, half a payload, three frames and a
    fragment — and {!next} yields each completed payload in order.
    Nothing about a partial read is an error; only an oversized length
    header is. *)

val max_frame_default : int
(** 16 MiB. *)

exception Oversized of int
(** The advertised (or to-be-encoded) payload length, which exceeded the
    reader's/encoder's [max_frame] or had the sign bit set.  A reader
    that raised this has desynced from the byte stream and must be
    discarded along with its connection. *)

val encode : ?max_frame:int -> string -> string
(** The wire bytes of one frame.  @raise Oversized *)

val encode_into : ?max_frame:int -> Buffer.t -> string -> unit
(** {!encode} appended to a buffer without the intermediate string —
    for batching many frames into one write.  @raise Oversized *)

val header_size : int
(** 4. *)

type reader

val reader : ?max_frame:int -> unit -> reader

val feed : reader -> bytes -> int -> int -> unit
(** [feed r buf off len] appends bytes and decodes any frames they
    complete onto the internal queue.  @raise Oversized (the reader is
    then poisoned: subsequent feeds re-raise). *)

val feed_string : reader -> string -> unit

val next : reader -> string option
(** Pop the oldest completed payload. *)

val pending : reader -> int
(** Bytes buffered towards an incomplete frame (0 at a frame boundary) —
    nonzero at connection EOF means the peer died mid-frame. *)
