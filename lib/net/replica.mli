(** The replicated memo tier: populate hints, cache warming, rebalance.

    The router places each key on the first R distinct nodes of the
    {!Ring} (its {b owner set}); this module supplies everything the
    placement needs to actually converge to R warm copies:

    - {b populate hints}: a cache miss answered by one owner is
      asynchronously pushed to the others as a [populate] wire op
      carrying the finished answer in {!Psph_engine.Store} line format,
      so replicas warm without recomputing.  Hints ride a bounded queue
      drained by one background thread; a full queue drops the hint
      (counted) rather than backpressuring the request path.
    - {b cache warming}: {!warm_from} streams a peer's store snapshot
      (the [snapshot] wire op, chunked) into a local engine — how a
      (re)joining backend comes up warm, and how the router migrates a
      key range to a newly joined backend.

    Metrics, under the [metrics] prefix (default [net.replica]):
    [populate] / [populate_drop] / [populate_fail] counters for the
    hint queue, [fallback_read] / [fallback_hit] counters for reads an
    owner other than the primary served (hit = the replica answered
    from cache: the warm-failover criterion), [rebalanced] for entries
    migrated on join, [warm_entries] and the [warm_s] histogram for
    snapshot streaming.  See docs/NET.md "Replication & rebalance". *)

type t

val create : ?metrics:string -> ?queue_cap:int -> unit -> t
(** [queue_cap] (default 1024) bounds the pending populate-hint queue. *)

val start : t -> unit
(** Spawn the populate worker (idempotent). *)

val stop : t -> unit
(** Stop the worker, dropping undelivered hints. *)

val async : t -> (unit -> unit) -> bool
(** Enqueue a populate job for the worker; counts [populate], starts
    the worker on first use.  [false] — and a [populate_drop] count —
    when the queue is full or stopped.  [job] must handle its own
    errors (count failures with {!populate_failed}). *)

val fallback_read : t -> cached:bool -> unit
(** Count a read served by a non-primary owner. *)

val populate_failed : t -> unit

val rebalanced : t -> int -> unit
(** Count entries migrated to a joining backend. *)

val entry_of_response : string -> (Psph_engine.Key.t * Psph_engine.Store.entry) option
(** The store entry carried by a successful serve response line —
    [key] plus [betti] (connectivity taken from the response, or
    derived from the Betti vector when the op didn't ask for it).
    [None] for errors and responses without a Betti vector (a bare
    [connectivity] answer under-determines the entry). *)

val populate_line : (Psph_engine.Key.t * Psph_engine.Store.entry) list -> string
(** The [{"op":"populate","entries":[...]}] request carrying finished
    answers in store-line format. *)

val fetch_entries :
  ?chunk:int ->
  Client.t ->
  ((Psph_engine.Key.t * Psph_engine.Store.entry) list, string) result
(** Drain the peer's [snapshot] op, [chunk] (default 512) entries per
    request.  The snapshot is a best-effort copy of a live cache, not a
    consistent cut — exactly what cache warming wants. *)

val warm_from :
  ?metrics:string ->
  ?chunk:int ->
  ?timeout_ms:int ->
  ?retries:int ->
  Psph_engine.Engine.t ->
  Addr.t ->
  (int, string) result
(** Stream [peer]'s snapshot into the engine's memo cache
    ({!Psph_engine.Engine.warm}), returning the number of entries
    loaded.  Counts [warm_entries] and observes [warm_s] under
    [metrics] (default [net.replica]).  An unreachable peer is an
    [Error], not an exception — a backend should prefer starting cold
    to not starting. *)
