(** A resilient client for the framed serve protocol, with optional
    request pipelining and the compact binary codec (wire protocol v2).

    {!request} keeps the classic contract: one frame out, one frame
    back, over a connection that is (re)established on demand, with
    failures classified:

    - {b retryable} — connect refused/unreachable, request timeout, the
      connection dying mid-frame (torn frame), and the peer resetting
      the connection mid-request ([ECONNRESET]/[EPIPE]/[ECONNABORTED] —
      what a crashed backend or a chaos proxy's reset mode surfaces).
      Retried up to [retries] times with exponential backoff plus full
      jitter.
    - {b fatal} — protocol errors (an oversized or undecodable frame
      from the server).  Never retried: the peer is speaking a different
      language, not having a bad moment.

    Server-side [{"ok":false,...}] responses are successful requests at
    this layer; interpreting them is the caller's business.

    {b Pipelining.}  A client created with [pipeline_depth > 1] or
    [codec `Binary] negotiates protocol v2 on each fresh connection
    (one [hello] frame; an old server answers with an error and the
    client quietly falls back to sequential v1 — negotiated, never
    assumed).  {!pipeline} then keeps up to [pipeline_depth] requests
    in flight per connection, keying the window on transport request
    ids it injects into each outgoing request and strips from each
    response, so callers see exactly the bytes a v1 exchange would
    have produced.  Hot query ops ([psph], [betti], [connectivity],
    [model-complex]) are windowed — and, when the server granted the
    binary codec, translated through {!Codec} so neither side touches
    JSON; other ops act as barriers (the window drains, they fly
    alone) because their responses carry no id to match on.

    A timed-out pipelined request no longer tears down the connection:
    its id is remembered, the late response is dropped when it arrives
    (counted as [net.client.stale_response]) and the retry flies with
    a fresh id — ids make late responses harmless, which is the whole
    point of keying the window on them.  Responses matching no
    in-flight id are likewise dropped and counted, never misdelivered.
    The remembered-id set is {b bounded}: each entry ages out after
    [max (8 * timeout) 0.5s] (a response that late is never coming) and
    a 1024-entry cap evicts oldest-first, so a server that times out
    forever cannot grow client memory without bound.  Eviction is safe
    because barrier matching never trusts the set: transport ids live
    at [0x40000000] and above, and a barrier only accepts a response
    whose id is below that range (or that has none) — a caller who
    picks an id of [0x40000000]+ for a barrier op forfeits that
    response (dropped as stale, the request times out).

    Observability ([net.client.*]): request/error/retry/reconnect/
    timeout/pipelined/stale_response counters and a latency histogram;
    {!request} (un-negotiated) runs in a [net.client.request] span
    whose id is injected into the outgoing JSON as ["span_parent"] —
    the bridge that makes loopback traces nest across the socket
    (injection only happens while a trace sink is live, so production
    requests go out byte-untouched).  {!pipeline} runs in a single
    [net.client.pipeline] span; pipelined requests skip span-parent
    injection. *)

type error =
  | Timeout
  | Connection of string  (** retryable transport failure *)
  | Protocol of string  (** fatal: the peer broke the framing contract *)

val is_retryable : error -> bool

val error_message : error -> string

type t

val create :
  ?metrics:string ->
  ?timeout_ms:int ->
  ?retries:int ->
  ?backoff_ms:int ->
  ?max_backoff_ms:int ->
  ?max_frame:int ->
  ?codec:[ `Json | `Binary ] ->
  ?pipeline_depth:int ->
  Addr.t ->
  t
(** No I/O happens here; the first request connects.  Defaults:
    [timeout_ms] 5000 (per attempt, covering connect + send + receive),
    [retries] 3 (so up to 4 attempts), [backoff_ms] 50 doubling per
    retry up to [max_backoff_ms] 2000 with full jitter, [codec] [`Json],
    [pipeline_depth] 1.  With the defaults the client is byte-for-byte
    the v1 client — no hello, no ids; protocol v2 is only negotiated
    when [codec `Binary] or [pipeline_depth > 1] asks for it. *)

val addr : t -> Addr.t

val pending_stale : t -> int
(** Timed-out request ids still owed a late response on the current
    connection (0 when disconnected).  Bounded by the age-out/cap rules
    above; exposed for tests and monitoring. *)

val request : t -> string -> (string, error) result
(** Send one line, wait for the response line.  Serialized per client
    (one caller at a time).  On a v2-negotiating client this is
    [pipeline t [line]]; responses are byte-identical either way.  The
    returned error is the last attempt's. *)

val pipeline :
  ?on_latency:(int -> float -> unit) ->
  t -> string list -> (string, error) result list
(** Send many request lines keeping up to [pipeline_depth] in flight,
    returning responses in request order (results arrive out of order
    on the wire; the id window reorders them).  Each line is retried
    independently under the client's retry budget; a connection-level
    failure costs every unfinished line one attempt.  [on_latency i s]
    reports each successful line's send-to-receive latency (seconds) —
    the bench uses it for percentiles.  Equivalent to sequential
    {!request}s against a v1 server. *)

val eval_many :
  ?on_latency:(int -> float -> unit) ->
  t ->
  (Codec.want * Codec.query) list ->
  (Codec.reply, error) result list
(** {!pipeline} for structured hot queries, skipping JSON entirely on a
    binary connection: queries are encoded straight through {!Codec}
    and replies decoded back — the no-allocation-waste path the bench
    measures.  On a JSON or v1 connection the queries fall back to
    their {!Codec.json_line_of_query} form transparently. *)

val close : t -> unit
(** Drop the connection, if any.  The client stays usable: the next
    request reconnects (and renegotiates). *)
