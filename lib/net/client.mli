(** A resilient client for the framed JSONL protocol.

    One request = one frame out, one frame back, over a connection that
    is (re)established on demand.  {!request} classifies failures:

    - {b retryable} — connect refused/unreachable, request timeout, the
      connection dying mid-frame (torn frame).  Retried up to [retries]
      times with exponential backoff plus full jitter, reconnecting each
      time (a timed-out connection is always discarded: a late response
      arriving on it would desync request/response pairing).
    - {b fatal} — protocol errors (an oversized or unparseable frame
      from the server).  Never retried: the peer is speaking a different
      language, not having a bad moment.

    Server-side [{"ok":false,...}] responses are successful requests at
    this layer; interpreting them is the caller's business.

    Observability ([net.client.*]): request/error/retry/reconnect
    counters and a latency histogram; each {!request} runs in a
    [net.client.request] span whose id is injected into the outgoing
    JSON as ["span_parent"], which the {!Server} re-roots under — the
    bridge that makes loopback traces nest across the socket (injection
    only happens while a trace sink is live, so production requests go
    out byte-untouched). *)

type error =
  | Timeout
  | Connection of string  (** retryable transport failure *)
  | Protocol of string  (** fatal: the peer broke the framing contract *)

val is_retryable : error -> bool

val error_message : error -> string

type t

val create :
  ?metrics:string ->
  ?timeout_ms:int ->
  ?retries:int ->
  ?backoff_ms:int ->
  ?max_backoff_ms:int ->
  ?max_frame:int ->
  Addr.t ->
  t
(** No I/O happens here; the first {!request} connects.  Defaults:
    [timeout_ms] 5000 (per attempt, covering connect + send + receive),
    [retries] 3 (so up to 4 attempts), [backoff_ms] 50 doubling per
    retry up to [max_backoff_ms] 2000, with full jitter. *)

val addr : t -> Addr.t

val request : t -> string -> (string, error) result
(** Send one line, wait for the response line.  Serialized per client
    (one in-flight request at a time).  The returned error is the last
    attempt's. *)

val close : t -> unit
(** Drop the connection, if any.  The client stays usable: the next
    {!request} reconnects. *)
