(** A TCP front end for a line handler: the accept loop that puts
    {!Psph_engine.Serve.handle_line} behind a socket.

    Each accepted connection gets one handler thread that decodes
    {!Frame}s, hands every payload to the handler, and writes the
    response back as a frame.  The handler threads all feed the one
    engine (whose Domain pool does the parallel work), so a connection
    is cheap: a thread, a reader buffer, a socket.

    Robustness mirrors the stdio serve loop: a connection that sends
    garbage framing, dies mid-frame, or trips the oversized-frame guard
    is answered (when possible) and closed — the server never crashes and
    other connections never notice.  [max_conns] bounds the connection
    pool; excess connections wait in the kernel backlog.  [deadline_s]
    is a cooperative per-request deadline: a request whose handler runs
    past it is answered with [{"ok":false,"error":"deadline exceeded"}]
    instead of its (late) result.

    Shutdown is graceful: {!request_stop} stops accepting and wakes idle
    connections, in-flight requests run to completion and their
    responses are written, then {!serve} returns so the caller can flush
    the engine's store.

    Observability ([net.server.*], catalogued in docs/NET.md): accepted/
    closed/requests/frame_errors/torn/deadline_exceeded counters, an
    active-connections gauge, a per-request latency histogram — and
    every request is handled with its ambient span parent re-rooted to
    the ["span_parent"] field of the request (injected by {!Client}), so
    in-process loopback traces nest [net.client.request ->
    serve.request -> engine.query] across the socket boundary. *)

type handler = string -> string
(** Must never raise ({!Psph_engine.Serve.handle_line} already
    guarantees this); a raise is caught, answered as an internal error,
    and counted, but indicates a handler bug. *)

type t

val listen :
  ?metrics:string ->
  ?backlog:int ->
  ?max_conns:int ->
  ?deadline_s:float ->
  ?max_frame:int ->
  handler:handler ->
  Addr.t ->
  (t, string) result
(** Bind and listen ([SO_REUSEADDR] set; port 0 lets the kernel pick —
    read it back with {!port}).  [metrics] prefixes the metric names
    (default ["net.server"]; the router passes ["net.router"]).
    [max_conns] defaults to 64. *)

val port : t -> int

val serve : t -> unit
(** Run the accept loop in the calling thread until {!request_stop},
    then drain: wait for every live connection to finish its in-flight
    request and close.  Never raises. *)

val start : t -> unit
(** {!serve} on a background thread. *)

val request_stop : t -> unit
(** Flag the server as stopping and wake the accept loop and idle
    connection reads.  Returns immediately; safe to call from a signal
    handler or another thread.  Idempotent. *)

val stop : t -> unit
(** {!request_stop}, then wait until {!serve} has drained and returned. *)
