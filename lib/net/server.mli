(** A TCP front end for a line handler: the {!Reactor}-based server that
    puts {!Psph_engine.Serve.handle_line} behind a socket.

    v2 architecture (PR 6): accepted connections are multiplexed by a
    small fixed pool of event-loop threads ([reactor_threads]) instead
    of one thread per socket.  Each completed {!Frame} becomes a job —
    run inline on the loop when the handler is cheap, or handed to
    [dispatch] (in production {!Psph_engine.Engine.dispatch}, the
    engine's Domain pool) so loops never block on CPU-bound work.

    {b Wire protocol} (full specification in docs/NET.md, "Wire
    protocol v2"): a connection starts in JSON-lines mode with strictly
    ordered responses — byte-compatible with the v1 server, so old
    clients work unchanged.  A client may send
    [{"op":"hello","version":2,"codec":"binary","pipeline":true}] as a
    normal request; the server answers with what it granted, and from
    the next frame on the connection speaks the granted codec with
    responses keyed by request id and allowed out of order.  The binary
    codec ({!Codec}) is only offered when [bin_handler] is installed;
    pipelining and codec are negotiated, never assumed.

    Robustness mirrors v1: garbage framing, death mid-frame and the
    oversized-frame guard are answered (when possible) and closed —
    the server never crashes and other connections never notice.
    [max_conns] bounds the pool; excess connections wait in the kernel
    backlog.  [deadline_s] stays cooperative: a request whose handler
    ran past it is answered with a deadline error instead of its (late)
    result.  Shutdown is graceful: {!request_stop} stops accepting,
    in-flight requests complete and their responses are flushed, then
    {!serve} returns so the caller can flush the engine's store.

    Observability ([net.server.*] plus the reactor's [net.reactor.*],
    catalogued in docs/NET.md): v1's counters and latency histogram,
    plus [hello] (negotiations), [binary_requests] and [dispatched]
    (jobs sent to the dispatch pool).  JSON requests still re-root
    their handler span under the request's ["span_parent"] field, so
    loopback traces keep nesting [net.client.request -> serve.request]
    across the socket. *)

type handler = string -> string
(** Must never raise ({!Psph_engine.Serve.handle_line} already
    guarantees this); a raise is caught, answered as an internal error,
    and counted, but indicates a handler bug. *)

type t

val listen :
  ?metrics:string ->
  ?backlog:int ->
  ?max_conns:int ->
  ?deadline_s:float ->
  ?max_frame:int ->
  ?reactor_threads:int ->
  ?bin_handler:handler ->
  ?dispatch:((unit -> unit) -> unit) ->
  handler:handler ->
  Addr.t ->
  (t, string) result
(** Bind and listen ([SO_REUSEADDR] set; port 0 lets the kernel pick —
    read it back with {!port}).  [metrics] prefixes the metric names
    (default ["net.server"]).  [max_conns] defaults to 64,
    [reactor_threads] to 2.  [bin_handler] (typically
    [Codec.handle ~json:handler engine]) enables the binary codec at
    hello; without it binary requests are refused at negotiation.
    [dispatch] runs request jobs off the event loops (typically
    {!Psph_engine.Engine.dispatch}); omitted, handlers run inline on
    the loop — right for handlers that are fast or that block on their
    own I/O rarely. *)

val port : t -> int

val serve : t -> unit
(** Run the accept loop in the calling thread until {!request_stop},
    then drain: every in-flight request completes, its response is
    flushed, every connection closes.  Never raises. *)

val start : t -> unit
(** {!serve} on a background thread. *)

val request_stop : t -> unit
(** Flag the server as stopping and wake the accept loop.  Returns
    immediately; safe to call from a signal handler or another thread.
    Idempotent. *)

val stop : t -> unit
(** {!request_stop}, then wait until {!serve} has drained and returned. *)

val threaded_dispatch : ?max_threads:int -> unit -> (unit -> unit) -> unit
(** A [dispatch] for handlers that block on downstream I/O of their own
    (e.g. {!Router.route} fanning out to backends): runs each job on a
    fresh thread up to [max_threads] (default 256) concurrently, inline
    beyond that — overload degrades to backpressure on the event loop
    rather than unbounded thread creation. *)
