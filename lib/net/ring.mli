(** The consistent-hash ring, as pure arithmetic.

    A ring is built from an ordered list of node names (for the router:
    backend ["host:port"] strings): each node contributes [vnodes]
    virtual points — the FNV-1a hashes of ["name#i"] — and the sorted
    point array is the ring.  A key hashes to a point and walks
    clockwise; the sequence of {b distinct} nodes met on that walk is
    the key's preference order, so the first node is its primary and
    the next [R-1] are its replicas.

    Everything here is immutable and deterministic (FNV-1a, not
    [Hashtbl.hash], so placement agrees across processes and runs),
    which is what makes replica placement testable as plain arithmetic:
    the qcheck suite checks distinctness, stability under unrelated
    join/leave, and the only-the-new-range-moves law directly against
    {!order}/{!owners} with no sockets involved.

    Because a node's points depend only on its own name, [make names]
    and [add (make names) name] agree point-for-point: joining a node
    inserts its points and moves nothing else — the keys whose walk now
    meets the new node first are exactly the key range it takes
    ownership of. *)

type t

val make : ?vnodes:int -> string list -> t
(** [vnodes] (default 64) virtual points per node.  Node indexes are
    positions in the list.  @raise Invalid_argument on an empty list or
    a duplicate name. *)

val add : t -> string -> t
(** A new ring with the node appended (index [size t]).  Equal, point
    for point, to [make ~vnodes (names t @ [name])].
    @raise Invalid_argument if the name is already a member. *)

val size : t -> int

val names : t -> string list
(** In index order. *)

val name : t -> int -> string

val index : t -> string -> int option

val hash : string -> int
(** FNV-1a folded to a nonnegative OCaml int. *)

val order : t -> string -> int list
(** All node indexes in clockwise-walk order from [hash key]: the
    failover/preference order.  Length [size t]; every node appears
    exactly once. *)

val owners : t -> r:int -> string -> int list
(** The first [min r (size t)] entries of {!order}: the replica set.
    @raise Invalid_argument if [r < 1]. *)

val successor : t -> int -> int option
(** The distinct node met first walking clockwise from node [i]'s
    lowest virtual point — the node that owned the start of [i]'s key
    range before [i] joined, and therefore the natural peer for a
    joining node to warm from.  [None] on a one-node ring. *)
