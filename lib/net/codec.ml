(* Binary codec for the hot query ops.  Layouts are documented in the
   mli and docs/NET.md; everything here is straight byte shuffling with
   the one design rule that decoders never raise — a peer speaking
   garbage gets a decode error (and, via [handle], a well-formed binary
   error reply), not an exception through the event loop. *)

open Psph_obs

type want = Both | Betti | Connectivity

type query =
  | Psph of { n : int; values : int }
  | Facets of string list
  | Model of { model : string; spec : Pseudosphere.Model_complex.spec }

type request = { id : int; want : want; query : query }

type reply =
  | Result of {
      id : int;
      key : string;
      cached : bool;
      betti : int array option;
      connectivity : int option;
      solver : Psph_engine.Engine.provenance option;
    }
  | Failed of { id : int; message : string }

let max_id = 0xFFFFFFFF

(* request tags *)
let tag_json = '\x00'
let tag_psph = '\x01'
let tag_facets = '\x02'
let tag_model = '\x03'

(* a model request whose spec carries a non-empty extension payload; the
   plain [tag_model] layout is still emitted for empty payloads, so
   pre-extension servers keep decoding every request an old client sends *)
let tag_model_ext = '\x04'

(* response tags *)
let tag_result = '\x80'
let tag_error = '\x81'

(* response flag bits *)
let fl_cached = 1
let fl_betti = 2
let fl_conn = 4
let fl_solver = 8

(* solver-block presence bits (second flag byte inside the block) *)
let sp_rule = 1
let sp_steps = 2
let sp_cells = 4
let sp_checked = 8

(* ------------------------------------------------------------------ *)
(* byte writers/readers                                                *)
(* ------------------------------------------------------------------ *)

let u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let u16 b v =
  u8 b (v lsr 8);
  u8 b v

let u32 b v =
  u16 b (v lsr 16);
  u16 b v

let range name v hi =
  if v < 0 || v > hi then
    invalid_arg (Printf.sprintf "Codec: %s %d out of range [0, %d]" name v hi)

(* a decode cursor; [Short] aborts to the decoder's Error return *)
exception Short of string

type cur = { s : string; mutable pos : int }

let need c n what =
  if c.pos + n > String.length c.s then raise (Short ("truncated " ^ what))

let r8 c what =
  need c 1 what;
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let r16 c what =
  let hi = r8 c what in
  (hi lsl 8) lor r8 c what

let r32 c what =
  let hi = r16 c what in
  (hi lsl 16) lor r16 c what

let rstr c n what =
  need c n what;
  let v = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  v

(* ------------------------------------------------------------------ *)
(* requests                                                            *)
(* ------------------------------------------------------------------ *)

let want_code = function Both -> 0 | Betti -> 1 | Connectivity -> 2

(* every binary request carries its id at bytes 1-4, so re-addressing a
   pre-encoded request is a copy and four byte stores, not a re-encode *)
let request_with_id payload id =
  if String.length payload < 5 then payload
  else begin
    let b = Bytes.of_string payload in
    Bytes.set_int32_be b 1 (Int32.of_int id);
    Bytes.unsafe_to_string b
  end

let want_of_code = function
  | 0 -> Some Both
  | 1 -> Some Betti
  | 2 -> Some Connectivity
  | _ -> None

let encode_request { id; want; query } =
  range "id" id max_id;
  let b = Buffer.create 32 in
  (match query with
  | Psph { n; values } ->
      range "psph n" n 0xffff;
      range "psph values" values 0xffff;
      Buffer.add_char b tag_psph;
      u32 b id;
      u8 b (want_code want);
      u16 b n;
      u16 b values
  | Facets facets ->
      range "facet count" (List.length facets) 0xffff;
      Buffer.add_char b tag_facets;
      u32 b id;
      u8 b (want_code want);
      u16 b (List.length facets);
      List.iter
        (fun f ->
          range "facet length" (String.length f) 0xffff;
          u16 b (String.length f);
          Buffer.add_string b f)
        facets
  | Model { model; spec } ->
      range "model name length" (String.length model) 0xff;
      let { Pseudosphere.Model_complex.n; f; k; p; r; ext } = spec in
      List.iter
        (fun (name, v) -> range name v 0xffff)
        [ ("model n", n); ("model f", f); ("model k", k); ("model p", p); ("model r", r) ];
      range "ext count" (List.length ext) 0xff;
      List.iter
        (fun (key, v) ->
          range "ext key length" (String.length key) 0xff;
          range ("ext " ^ key) v 0xffff)
        ext;
      Buffer.add_char b (if ext = [] then tag_model else tag_model_ext);
      u32 b id;
      u8 b (want_code want);
      u8 b (String.length model);
      Buffer.add_string b model;
      u16 b n;
      u16 b f;
      u16 b k;
      u16 b p;
      u16 b r;
      if ext <> [] then begin
        u8 b (List.length ext);
        List.iter
          (fun (key, v) ->
            u8 b (String.length key);
            Buffer.add_string b key;
            u16 b v)
          ext
      end);
  Buffer.contents b

let decode_request payload =
  if payload = "" then Error "empty payload"
  else
    let c = { s = payload; pos = 1 } in
    try
      let head what =
        let id = r32 c "id" in
        match want_of_code (r8 c "want") with
        | Some w -> (id, w)
        | None -> raise (Short ("bad want byte in " ^ what))
      in
      let req =
        match payload.[0] with
        | t when t = tag_psph ->
            let id, want = head "psph" in
            let n = r16 c "psph n" in
            let values = r16 c "psph values" in
            { id; want; query = Psph { n; values } }
        | t when t = tag_facets ->
            let id, want = head "facets" in
            let count = r16 c "facet count" in
            (* explicit loop: the reads must happen in wire order *)
            let facets = ref [] in
            for _ = 1 to count do
              let len = r16 c "facet length" in
              facets := rstr c len "facet" :: !facets
            done;
            { id; want; query = Facets (List.rev !facets) }
        | t when t = tag_model || t = tag_model_ext ->
            let id, want = head "model" in
            let nlen = r8 c "model name length" in
            let model = rstr c nlen "model name" in
            let n = r16 c "model n" in
            let f = r16 c "model f" in
            let k = r16 c "model k" in
            let p = r16 c "model p" in
            let r = r16 c "model r" in
            let ext =
              if t = tag_model then []
              else begin
                let count = r8 c "ext count" in
                let entries = ref [] in
                for _ = 1 to count do
                  let klen = r8 c "ext key length" in
                  let key = rstr c klen "ext key" in
                  entries := (key, r16 c "ext value") :: !entries
                done;
                List.rev !entries
              end
            in
            { id; want; query = Model { model; spec = { n; f; k; p; r; ext } } }
        | t -> raise (Short (Printf.sprintf "unknown request tag 0x%02x" (Char.code t)))
      in
      if c.pos <> String.length payload then Error "trailing bytes after request"
      else Ok req
    with Short m -> Error m

(* ------------------------------------------------------------------ *)
(* replies                                                             *)
(* ------------------------------------------------------------------ *)

let tier_code = function
  | Psph_engine.Engine.Cached -> 0
  | Psph_engine.Engine.Symbolic -> 1
  | Psph_engine.Engine.Numeric -> 2

let tier_of_code = function
  | 0 -> Some Psph_engine.Engine.Cached
  | 1 -> Some Psph_engine.Engine.Symbolic
  | 2 -> Some Psph_engine.Engine.Numeric
  | _ -> None

let encode_reply = function
  | Result { id; key; cached; betti; connectivity; solver } ->
      range "id" id max_id;
      range "key length" (String.length key) 0xff;
      let b = Buffer.create 64 in
      Buffer.add_char b tag_result;
      u32 b id;
      let flags =
        (if cached then fl_cached else 0)
        lor (match betti with Some _ -> fl_betti | None -> 0)
        lor (match connectivity with Some _ -> fl_conn | None -> 0)
        lor (match solver with Some _ -> fl_solver | None -> 0)
      in
      u8 b flags;
      u8 b (String.length key);
      Buffer.add_string b key;
      (match connectivity with
      | Some conn ->
          (* two's-complement i32: connectivity can be negative (-1, -2) *)
          u32 b (conn land 0xFFFFFFFF)
      | None -> ());
      (match betti with
      | Some betti ->
          range "betti length" (Array.length betti) 0xffff;
          u16 b (Array.length betti);
          Array.iter
            (fun v ->
              range "betti entry" v max_id;
              u32 b v)
            betti
      | None -> ());
      (match solver with
      | Some { Psph_engine.Engine.tier; rule; steps; cells_removed; checked } ->
          u8 b (tier_code tier);
          let present =
            (match rule with Some _ -> sp_rule | None -> 0)
            lor (match steps with Some _ -> sp_steps | None -> 0)
            lor (match cells_removed with Some _ -> sp_cells | None -> 0)
            lor (match checked with Some _ -> sp_checked | None -> 0)
          in
          u8 b present;
          (match rule with
          | Some rule ->
              range "solver rule length" (String.length rule) 0xffff;
              u16 b (String.length rule);
              Buffer.add_string b rule
          | None -> ());
          (match steps with
          | Some v ->
              range "solver steps" v max_id;
              u32 b v
          | None -> ());
          (match cells_removed with
          | Some v ->
              range "solver cells_removed" v max_id;
              u32 b v
          | None -> ());
          (match checked with
          (* the checked bound is a connectivity, so it shares the
             two's-complement i32 encoding *)
          | Some v -> u32 b (v land 0xFFFFFFFF)
          | None -> ())
      | None -> ());
      Buffer.contents b
  | Failed { id; message } ->
      range "id" id max_id;
      let message =
        if String.length message > 0xffff then String.sub message 0 0xffff
        else message
      in
      let b = Buffer.create 32 in
      Buffer.add_char b tag_error;
      u32 b id;
      u16 b (String.length message);
      Buffer.add_string b message;
      Buffer.contents b

let decode_reply payload =
  if payload = "" then Error "empty payload"
  else
    let c = { s = payload; pos = 1 } in
    try
      let rep =
        match payload.[0] with
        | t when t = tag_result ->
            let id = r32 c "id" in
            let flags = r8 c "flags" in
            let klen = r8 c "key length" in
            let key = rstr c klen "key" in
            let connectivity =
              if flags land fl_conn <> 0 then begin
                let raw = r32 c "connectivity" in
                (* sign-extend from 32 bits *)
                Some (if raw land 0x80000000 <> 0 then raw - 0x100000000 else raw)
              end
              else None
            in
            let betti =
              if flags land fl_betti <> 0 then begin
                let count = r16 c "betti length" in
                let a = Array.make count 0 in
                for i = 0 to count - 1 do
                  a.(i) <- r32 c "betti entry"
                done;
                Some a
              end
              else None
            in
            let solver =
              if flags land fl_solver <> 0 then begin
                let tier =
                  match tier_of_code (r8 c "solver tier") with
                  | Some t -> t
                  | None -> raise (Short "bad solver tier byte")
                in
                let present = r8 c "solver presence flags" in
                let rule =
                  if present land sp_rule <> 0 then begin
                    let len = r16 c "solver rule length" in
                    Some (rstr c len "solver rule")
                  end
                  else None
                in
                let steps =
                  if present land sp_steps <> 0 then Some (r32 c "solver steps")
                  else None
                in
                let cells_removed =
                  if present land sp_cells <> 0 then
                    Some (r32 c "solver cells_removed")
                  else None
                in
                let checked =
                  if present land sp_checked <> 0 then begin
                    let raw = r32 c "solver checked" in
                    Some (if raw land 0x80000000 <> 0 then raw - 0x100000000 else raw)
                  end
                  else None
                in
                Some { Psph_engine.Engine.tier; rule; steps; cells_removed; checked }
              end
              else None
            in
            Result
              { id; key; cached = flags land fl_cached <> 0; betti; connectivity;
                solver }
        | t when t = tag_error ->
            let id = r32 c "id" in
            let mlen = r16 c "message length" in
            let message = rstr c mlen "message" in
            Failed { id; message }
        | t -> raise (Short (Printf.sprintf "unknown reply tag 0x%02x" (Char.code t)))
      in
      if c.pos <> String.length payload then Error "trailing bytes after reply"
      else Ok rep
    with Short m -> Error m

(* ------------------------------------------------------------------ *)
(* JSON escape hatch                                                   *)
(* ------------------------------------------------------------------ *)

let escape_json line =
  let b = Buffer.create (String.length line + 1) in
  Buffer.add_char b tag_json;
  Buffer.add_string b line;
  Buffer.contents b

let unescape_json payload =
  if payload <> "" && payload.[0] = tag_json then
    Some (String.sub payload 1 (String.length payload - 1))
  else None

let request_id_of_payload payload =
  if String.length payload >= 5 && payload.[0] <> tag_json then
    let c = { s = payload; pos = 1 } in
    try r32 c "id" with Short _ -> 0
  else 0

(* ------------------------------------------------------------------ *)
(* JSON translation                                                    *)
(* ------------------------------------------------------------------ *)

let int_member req name = Option.bind (Jsonl.member name req) Jsonl.to_int_opt

let fits16 v = v >= 0 && v <= 0xffff

let query_of_json req =
  match Option.bind (Jsonl.member "op" req) Jsonl.to_string_opt with
  | Some "psph" -> (
      match (int_member req "n", int_member req "values") with
      | Some n, Some values when fits16 n && fits16 values ->
          Some (Both, Psph { n; values })
      | _ -> None)
  | Some (("betti" | "connectivity") as op) -> (
      match Option.bind (Jsonl.member "facets" req) Jsonl.to_list_opt with
      | Some entries when List.length entries <= 0xffff -> (
          let strs = List.filter_map Jsonl.to_string_opt entries in
          if
            List.length strs = List.length entries
            && List.for_all (fun s -> String.length s <= 0xffff) strs
          then
            Some ((if op = "betti" then Betti else Connectivity), Facets strs)
          else None)
      | _ -> None)
  | Some "model-complex" -> (
      match
        (Option.bind (Jsonl.member "model" req) Jsonl.to_string_opt,
         int_member req "n")
      with
      | Some model, Some n when String.length model <= 0xff && fits16 n -> (
          let d = Pseudosphere.Model_complex.default_spec in
          let field name dflt =
            match Jsonl.member name req with
            | None -> Some dflt
            | Some v -> (
                match Jsonl.to_int_opt v with
                | Some i when fits16 i -> Some i
                | _ -> None)
          in
          (* extension fields by the model's own declaration: ints pack
             directly, enum-name strings go through the declared parser.
             Anything that doesn't fit u16 (or an unregistered model with
             leftover odd fields) keeps exact JSON semantics by falling
             back to the escape hatch. *)
          let ext_fields =
            match Pseudosphere.Model_complex.find model with
            | None -> Some []
            | Some m ->
                List.fold_left
                  (fun acc ep ->
                    match acc with
                    | None -> None
                    | Some entries -> (
                        let name = ep.Pseudosphere.Model_complex.ep_name in
                        match Jsonl.member name req with
                        | None -> Some entries
                        | Some v -> (
                            match Jsonl.to_int_opt v with
                            | Some i when fits16 i -> Some ((name, i) :: entries)
                            | Some _ -> None
                            | None -> (
                                match Jsonl.to_string_opt v with
                                | None -> None
                                | Some s -> (
                                    match ep.ep_parse s with
                                    | Ok i when fits16 i ->
                                        Some ((name, i) :: entries)
                                    | _ -> None)))))
                  (Some [])
                  (Pseudosphere.Model_complex.ext_params_of m)
                |> Option.map List.rev
          in
          match
            ( field "f" d.Pseudosphere.Model_complex.f,
              field "k" d.k,
              field "p" d.p,
              field "r" d.r,
              ext_fields )
          with
          | Some f, Some k, Some p, Some r, Some ext ->
              Some (Both, Model { model; spec = { n; f; k; p; r; ext } })
          | _ -> None)
      | _ -> None)
  | _ -> None

(* the JSON request a binary query corresponds to — the client's fallback
   when a server granted only JSON (or v1).  Covers the image of
   [query_of_json] exactly; the combinations that image never produces
   ([Betti]/[Connectivity] over [Psph]/[Model], [Both] over [Facets]) map
   to the nearest op, which answers a superset/subset of the fields. *)
let json_line_of_query ?id want query =
  let idf = match id with Some v -> [ ("id", v) ] | None -> [] in
  let fields =
    match query with
    | Psph { n; values } ->
        [ ("op", Jsonl.Str "psph"); ("n", Jsonl.int n); ("values", Jsonl.int values) ]
    | Facets facets ->
        let op = match want with Connectivity -> "connectivity" | _ -> "betti" in
        [ ("op", Jsonl.Str op);
          ("facets", Jsonl.Arr (List.map (fun f -> Jsonl.Str f) facets)) ]
    | Model { model; spec = { Pseudosphere.Model_complex.n; f; k; p; r; ext } } ->
        [ ("op", Jsonl.Str "model-complex"); ("model", Jsonl.Str model);
          ("n", Jsonl.int n); ("f", Jsonl.int f); ("k", Jsonl.int k);
          ("p", Jsonl.int p); ("r", Jsonl.int r) ]
        @ List.map (fun (key, v) -> (key, Jsonl.int v)) ext
  in
  Jsonl.to_string (Jsonl.Obj (idf @ fields))

let reply_of_json line =
  match Jsonl.of_string_opt line with
  | Some (Jsonl.Obj _ as o) -> (
      let id =
        match Option.bind (Jsonl.member "id" o) Jsonl.to_int_opt with
        | Some i when i >= 0 && i <= max_id -> i
        | _ -> 0
      in
      match Jsonl.member "ok" o with
      | Some (Jsonl.Bool true) ->
          let key =
            Option.value ~default:""
              (Option.bind (Jsonl.member "key" o) Jsonl.to_string_opt)
          in
          let betti =
            match Option.bind (Jsonl.member "betti" o) Jsonl.to_list_opt with
            | Some entries ->
                let ints = List.filter_map Jsonl.to_int_opt entries in
                if List.length ints = List.length entries then
                  Some (Array.of_list ints)
                else None
            | None -> None
          in
          let connectivity =
            Option.bind (Jsonl.member "connectivity" o) Jsonl.to_int_opt
          in
          let cached = Jsonl.member "cached" o = Some (Jsonl.Bool true) in
          let solver =
            match Jsonl.member "solver" o with
            | Some (Jsonl.Obj _ as s) -> (
                let str name =
                  Option.bind (Jsonl.member name s) Jsonl.to_string_opt
                in
                let num name =
                  Option.bind (Jsonl.member name s) Jsonl.to_int_opt
                in
                match str "tier" with
                | Some tier_s -> (
                    let tier =
                      match tier_s with
                      | "cached" -> Some Psph_engine.Engine.Cached
                      | "symbolic" -> Some Psph_engine.Engine.Symbolic
                      | "numeric" -> Some Psph_engine.Engine.Numeric
                      | _ -> None
                    in
                    match tier with
                    | Some tier ->
                        Some
                          { Psph_engine.Engine.tier; rule = str "rule";
                            steps = num "steps";
                            cells_removed = num "cells_removed";
                            checked = num "checked" }
                    | None -> None)
                | None -> None)
            | _ -> None
          in
          Some (Result { id; key; cached; betti; connectivity; solver })
      | Some (Jsonl.Bool false) ->
          let message =
            Option.value ~default:"unknown error"
              (Option.bind (Jsonl.member "error" o) Jsonl.to_string_opt)
          in
          Some (Failed { id; message })
      | _ -> None)
  | _ -> None

(* serve-shaped response line: field order matches Serve.result_fields /
   Serve.error_response exactly, so a binary round trip prints the very
   bytes the JSON protocol would have sent *)
let json_of_reply ~id reply =
  let with_id fields =
    match id with Some id -> ("id", id) :: fields | None -> fields
  in
  let obj =
    match reply with
    | Result { key; cached; betti; connectivity; solver; _ } ->
        Jsonl.Obj
          (with_id
             ([ ("ok", Jsonl.Bool true); ("key", Jsonl.Str key) ]
             @ (match betti with
               | Some b -> [ ("betti", Jsonl.int_array b) ]
               | None -> [])
             @ (match connectivity with
               | Some c -> [ ("connectivity", Jsonl.int c) ]
               | None -> [])
             @ [ ("cached", Jsonl.Bool cached) ]
             @
             match solver with
             | Some p ->
                 [ ("solver",
                    Jsonl.Obj (Psph_engine.Engine.provenance_fields p)) ]
             | None -> []))
    | Failed { message; _ } ->
        Jsonl.Obj
          (with_id [ ("ok", Jsonl.Bool false); ("error", Jsonl.Str message) ])
  in
  Jsonl.to_string obj

(* ------------------------------------------------------------------ *)
(* the binary server handler                                           *)
(* ------------------------------------------------------------------ *)

let spec_of_query = function
  | Psph { n; values } -> Psph_engine.Engine.Psph { n; values }
  | Facets strs ->
      let simplexes =
        List.map
          (fun s ->
            try Psph_topology.Complex_io.simplex_of_string s
            with Failure m -> failwith ("bad facet: " ^ m))
          strs
      in
      Psph_engine.Engine.Explicit (Psph_topology.Complex.of_facets simplexes)
  | Model { model; spec } -> (
      match Pseudosphere.Model_complex.find model with
      | Some _ -> Psph_engine.Engine.Model { model; params = spec }
      | None ->
          failwith
            (Printf.sprintf "unknown model %S (available: %s)" model
               (String.concat ", " (Pseudosphere.Model_complex.names ()))))

let handle ~json engine payload =
  match unescape_json payload with
  | Some line -> escape_json (json line)
  | None -> (
      match decode_request payload with
      | Error m ->
          encode_reply
            (Failed { id = request_id_of_payload payload; message = "bad request: " ^ m })
      | Ok { id; want; query } -> (
          match
            let spec = spec_of_query query in
            (* connectivity-only queries go through the tiered solver, so
               a recognized spec can be answered symbolically *)
            match want with
            | Connectivity -> Psph_engine.Engine.eval_conn engine spec
            | Both | Betti -> Psph_engine.Engine.eval engine spec
          with
          | r ->
              encode_reply
                (Result
                   {
                     id;
                     key = Psph_engine.Key.to_hex r.Psph_engine.Engine.key;
                     cached = r.cached;
                     betti =
                       (match want with
                       | Connectivity -> None
                       | Both | Betti -> Some r.answer.betti);
                     connectivity =
                       (match want with
                       | Betti -> None
                       | Both | Connectivity -> Some r.answer.connectivity);
                     solver = Some r.solver;
                   })
          | exception (Invalid_argument m | Failure m) ->
              encode_reply (Failed { id; message = m })
          | exception e ->
              encode_reply
                (Failed { id; message = "internal error: " ^ Printexc.to_string e })))
