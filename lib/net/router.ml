(* Consistent-hash request routing with an R-replicated memo tier.

   Placement lives in {!Ring}: a request's shard key walks the ring and
   the distinct backends met are its preference order, so the first is
   its primary and the next R-1 are its replicas (the "owner set").
   Routing tries the preference order live-first — which means a dead
   primary's reads land exactly on the replicas that populate hints
   have been warming.

   Membership is an immutable epoch'd snapshot ({!state}): every
   request captures one snapshot up front and routes entirely under it,
   so a [join] mid-flight can never split a request across two rings —
   that capture IS the ring-epoch handshake's consistency guarantee.
   [add_backend] builds the next snapshot (epoch+1) under a lock,
   publishes it with one field write, and migrates only the key ranges
   the new backend now owns (streamed from the old backends' snapshots,
   pushed as populate batches). *)

open Psph_obs
open Psph_topology

type backend = {
  baddr : Addr.t;
  client : Client.t;
  health : Client.t;  (** separate connection so probes never queue behind requests *)
  mutable alive : bool;
}

type metrics = {
  requests : Obs.counter;
  forwarded : Obs.counter;
  failover : Obs.counter;
  no_backend : Obs.counter;
  fanout : Obs.counter;
  backends_up : Obs.gauge;
  epoch_g : Obs.gauge;
  request_s : Obs.histogram;
  span_name : string;
  prefix : string;
}

(* one immutable membership snapshot; requests capture it once *)
type state = { bks : backend array; ring : Ring.t; epoch : int }

type cfg = {
  metrics : string;
  timeout_ms : int;
  retries : int;
  max_frame : int;
  codec : [ `Json | `Binary ];
  pipeline_depth : int;
}

type t = {
  mutable state : state;  (** swapped whole under [state_lock]; plain reads are safe *)
  state_lock : Mutex.t;
  cfg : cfg;
  replication : int;
  read_fallback : bool;
  rep : Replica.t;
  rr : int Atomic.t;  (** rotation for keyless requests *)
  check_period_s : float;
  mutable health_thread : Thread.t option;
  stopping : bool Atomic.t;
  m : metrics;
}

let mk_backend cfg baddr =
  {
    baddr;
    client =
      Client.create ~metrics:(cfg.metrics ^ ".client") ~timeout_ms:cfg.timeout_ms
        ~retries:cfg.retries ~max_frame:cfg.max_frame ~codec:cfg.codec
        ~pipeline_depth:cfg.pipeline_depth baddr;
    health =
      Client.create ~metrics:(cfg.metrics ^ ".health")
        ~timeout_ms:(min cfg.timeout_ms 1000) ~retries:0 ~max_frame:cfg.max_frame
        baddr;
    alive = true;
  }

let create ?(metrics = "net.router") ?(vnodes = 64) ?(replication = 1)
    ?(read_fallback = false) ?(timeout_ms = 5000) ?(retries = 1)
    ?(check_period_ms = 1000) ?(max_frame = Frame.max_frame_default)
    ?(codec = `Json) ?(pipeline_depth = 16) addrs =
  if addrs = [] then invalid_arg "Router.create: no backends";
  let cfg =
    { metrics; timeout_ms; retries; max_frame; codec; pipeline_depth }
  in
  let bks = Array.of_list (List.map (mk_backend cfg) addrs) in
  let ring = Ring.make ~vnodes (List.map Addr.to_string addrs) in
  let m =
    {
      requests = Obs.counter (metrics ^ ".requests");
      forwarded = Obs.counter (metrics ^ ".forwarded");
      failover = Obs.counter (metrics ^ ".failover");
      no_backend = Obs.counter (metrics ^ ".no_backend");
      fanout = Obs.counter (metrics ^ ".fanout");
      backends_up = Obs.gauge (metrics ^ ".backends_up");
      epoch_g = Obs.gauge (metrics ^ ".epoch");
      request_s = Obs.histogram (metrics ^ ".request_s");
      span_name = metrics ^ ".request";
      prefix = metrics;
    }
  in
  Obs.gauge_set m.backends_up (float_of_int (Array.length bks));
  Obs.gauge_set m.epoch_g 0.;
  {
    state = { bks; ring; epoch = 0 };
    state_lock = Mutex.create ();
    cfg;
    replication = max 1 replication;
    read_fallback;
    rep = Replica.create ~metrics:(metrics ^ ".replica") ();
    rr = Atomic.make 0;
    check_period_s = float_of_int check_period_ms /. 1000.;
    health_thread = None;
    stopping = Atomic.make false;
    m;
  }

(* ------------------------------------------------------------------ *)
(* shard keys                                                          *)
(* ------------------------------------------------------------------ *)

let int_member name j = Option.bind (Jsonl.member name j) Jsonl.to_int_opt

(* mirror of the engine's spec canonicalization (Engine.spec_key_of):
   psph by parameters, models by the registered model's own normalized
   encoding, explicit facets by their content address — so the router
   agrees with the backend caches about which requests are "the same" *)
let shard_key line =
  match Jsonl.of_string_opt line with
  | Some (Jsonl.Obj _ as req) -> (
      match Option.bind (Jsonl.member "op" req) Jsonl.to_string_opt with
      | Some "psph" -> (
          match (int_member "n" req, int_member "values" req) with
          | Some n, Some v -> Some (Printf.sprintf "psph:%d:%d" n v)
          | _ -> None)
      | Some "model-complex" -> (
          match Option.bind (Jsonl.member "model" req) Jsonl.to_string_opt with
          | None -> None
          | Some name -> (
              match
                (Pseudosphere.Model_complex.find name, int_member "n" req)
              with
              | Some model, Some n ->
                  let d = Pseudosphere.Model_complex.default_spec in
                  let get f dflt = Option.value (int_member f req) ~default:dflt in
                  (* extension fields by the model's declaration, int or
                     enum-name string — mirroring Serve's parsing, so two
                     spellings of one request land on one shard *)
                  let ext =
                    List.filter_map
                      (fun ep ->
                        let pn = ep.Pseudosphere.Model_complex.ep_name in
                        match Jsonl.member pn req with
                        | None -> None
                        | Some v -> (
                            match Jsonl.to_int_opt v with
                            | Some i -> Some (pn, i)
                            | None ->
                                Option.bind (Jsonl.to_string_opt v) (fun s ->
                                    match ep.ep_parse s with
                                    | Ok i -> Some (pn, i)
                                    | Error _ -> None)))
                      (Pseudosphere.Model_complex.ext_params_of model)
                  in
                  let spec =
                    {
                      Pseudosphere.Model_complex.n;
                      f = get "f" d.Pseudosphere.Model_complex.f;
                      k = get "k" d.k;
                      p = get "p" d.p;
                      r = get "r" d.r;
                      ext;
                    }
                  in
                  (* encode normalizes via the model; an invalid spec
                     still shards deterministically on the raw encoding *)
                  Some
                    (try Pseudosphere.Model_complex.encode model spec
                     with _ ->
                       Printf.sprintf "%s:%d:%d:%d:%d:%d:%s" name spec.n spec.f
                         spec.k spec.p spec.r
                         (String.concat ","
                            (List.map
                               (fun (kx, v) -> Printf.sprintf "%s=%d" kx v)
                               spec.ext)))
              | _ -> None))
      | Some ("betti" | "connectivity") -> (
          match Option.bind (Jsonl.member "facets" req) Jsonl.to_list_opt with
          | None -> None
          | Some facets -> (
              let strs = List.filter_map Jsonl.to_string_opt facets in
              match
                List.map Complex_io.simplex_of_string strs
                |> Complex.of_facets |> Psph_engine.Key.of_complex
                |> Psph_engine.Key.to_hex
              with
              | hex -> Some ("key:" ^ hex)
              | exception _ ->
                  (* unparseable facets: still pin repeats together *)
                  Some ("facets:" ^ String.concat ";" strs)))
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* placement                                                           *)
(* ------------------------------------------------------------------ *)

let preference_in t st line =
  match shard_key line with
  | Some key -> Ring.order st.ring key
  | None ->
      let nb = Array.length st.bks in
      let c = Atomic.fetch_and_add t.rr 1 in
      List.init nb (fun i -> (c + i) mod nb)

let preference t line = preference_in t t.state line

let backends t =
  Array.to_list (Array.map (fun b -> (b.baddr, b.alive)) t.state.bks)

let epoch t = t.state.epoch

let owners_count t st = min t.replication (Array.length st.bks)

(* ------------------------------------------------------------------ *)
(* routing                                                             *)
(* ------------------------------------------------------------------ *)

let refresh_up_gauge t =
  let st = t.state in
  let up = Array.fold_left (fun n b -> if b.alive then n + 1 else n) 0 st.bks in
  Obs.gauge_set t.m.backends_up (float_of_int up)

let mark t st i alive =
  let b = st.bks.(i) in
  if b.alive <> alive then begin
    b.alive <- alive;
    Obs.event
      (t.m.prefix ^ if alive then ".backend_up" else ".backend_down")
      ~attrs:[ ("backend", Jsonl.Str (Addr.to_string b.baddr)) ];
    refresh_up_gauge t
  end

let error_response ?(extra = []) line msg =
  let fields =
    [ ("ok", Jsonl.Bool false); ("error", Jsonl.Str msg) ] @ extra
  in
  let fields =
    match Jsonl.of_string_opt line with
    | Some (Jsonl.Obj _ as o) -> (
        match Jsonl.member "id" o with
        | Some id -> ("id", id) :: fields
        | None -> fields)
    | _ -> fields
  in
  Jsonl.to_string (Jsonl.Obj fields)

let prober_running t = t.health_thread <> None && not (Atomic.get t.stopping)

(* all backends refused: while the prober runs this is a transient
   state, so the answer carries backpressure — when to come back —
   instead of just a verdict (docs/NET.md "Error contract") *)
let degraded t line =
  let extra =
    if prober_running t then
      [
        ( "retry_after_ms",
          Jsonl.int
            (max 1 (int_of_float (Float.ceil (t.check_period_s *. 1000.)))) );
      ]
    else []
  in
  error_response ~extra line "no backend"

let is_cached resp =
  match Jsonl.of_string_opt resp with
  | Some (Jsonl.Obj _ as o) -> Jsonl.member "cached" o = Some (Jsonl.Bool true)
  | _ -> false

let is_miss resp =
  match Jsonl.of_string_opt resp with
  | Some (Jsonl.Obj _ as o) -> Jsonl.member "cached" o = Some (Jsonl.Bool false)
  | _ -> false

(* rank of backend [i] in the preference order: 0 = primary, 1..R-1 =
   replicas, beyond = off the owner set *)
let rank prefs i =
  let rec go k = function
    | [] -> max_int
    | x :: tl -> if x = i then k else go (k + 1) tl
  in
  go 0 prefs

(* a miss answered by one owner is pushed to the others, so hot keys
   converge to R warm copies without any replica recomputing *)
let populate_hint t st prefs served resp =
  let rc = owners_count t st in
  if rc > 1 && is_miss resp then
    match Replica.entry_of_response resp with
    | None -> ()
    | Some entry ->
        let owners = List.filteri (fun k _ -> k < rc) prefs in
        let line = Replica.populate_line [ entry ] in
        List.iter
          (fun b ->
            if b <> served && st.bks.(b).alive then
              ignore
                (Replica.async t.rep (fun () ->
                     match Client.request st.bks.(b).client line with
                     | Ok _ -> ()
                     | Error _ -> Replica.populate_failed t.rep)))
          owners

let route_single t sp line =
  let st = t.state in
  let prefs = preference_in t st line in
  let keyed = shard_key line <> None in
  (* live backends first, each dead one still gets a last-resort
     try (it may have revived since the prober last looked) *)
  let live, dead = List.partition (fun i -> st.bks.(i).alive) prefs in
  let rec go first = function
    | [] ->
        Obs.incr t.m.no_backend;
        Obs.set_attr sp "degraded" (Jsonl.Bool true);
        degraded t line
    | i :: rest -> (
        match Client.request st.bks.(i).client line with
        | Ok resp ->
            mark t st i true;
            Obs.incr t.m.forwarded;
            Obs.set_attr sp "backend"
              (Jsonl.Str (Addr.to_string st.bks.(i).baddr));
            if keyed then begin
              let r = rank prefs i in
              if t.read_fallback && r > 0 && r < owners_count t st then begin
                Replica.fallback_read t.rep ~cached:(is_cached resp);
                Obs.set_attr sp "fallback" (Jsonl.Bool true)
              end;
              populate_hint t st prefs i resp
            end;
            resp
        | Error e when Client.is_retryable e ->
            (* transport failure: the backend (not the request)
               is the problem — mark it down and fail over *)
            mark t st i false;
            if not first then Obs.incr t.m.failover;
            go false rest
        | Error e ->
            (* fatal Protocol errors are request-specific (e.g.
               a response over the client's max_frame): every
               backend would fail it identically, so answer with
               the error instead of walking the ring marking
               healthy backends dead *)
            Obs.set_attr sp "error" (Jsonl.Str (Client.error_message e));
            error_response line (Client.error_message e))
  in
  go true (live @ dead)

(* ------------------------------------------------------------------ *)
(* batch fan-out                                                       *)
(* ------------------------------------------------------------------ *)

(* A batch of hot-op members fans out: members group by their preferred
   backend (so each still lands on the cache that is warm for it) and
   each group flies down that backend's pipelined connection, groups in
   parallel.  Only hot ops qualify because the fan-out forwards members
   as top-level requests, and for hot ops a member's slot in a backend
   batch response is byte-identical to the backend's top-level response
   — so splicing the group results back together in request order
   reproduces exactly the bytes a single backend would have sent.
   Batches with nested/keyless members keep the v1 whole-batch path. *)

let hot_op = function
  | Jsonl.Obj _ as r -> (
      match Option.bind (Jsonl.member "op" r) Jsonl.to_string_opt with
      | Some ("psph" | "betti" | "connectivity" | "model-complex") -> true
      | _ -> false)
  | _ -> false

let fanout_members line =
  match Jsonl.of_string_opt line with
  | Some (Jsonl.Obj _ as o)
    when Option.bind (Jsonl.member "op" o) Jsonl.to_string_opt = Some "batch"
    -> (
      match Option.bind (Jsonl.member "requests" o) Jsonl.to_list_opt with
      | Some members when List.length members > 1 && List.for_all hot_op members
        ->
          Some (Array.of_list members)
      | _ -> None)
  | _ -> None

let route_batch t sp members =
  let st = t.state in
  Obs.incr t.m.fanout;
  let n = Array.length members in
  Obs.set_attr sp "fanout" (Jsonl.int n);
  let mlines = Array.map Jsonl.to_string members in
  let responses = Array.make n None in
  let all_prefs = Array.map (fun l -> preference_in t st l) mlines in
  let prefs = Array.map (fun p -> ref p) all_prefs in
  (* rounds: every unresolved member tries its best untried backend
     (live first, dead as a last resort), one pipelined flight per
     backend, flights in parallel.  Preferences only shrink, so the
     loop terminates in degraded answers at worst. *)
  let rec round () =
    let groups = Hashtbl.create 8 in
    let progress = ref false in
    for i = n - 1 downto 0 do
      if responses.(i) = None then begin
        let remaining = !(prefs.(i)) in
        let choice =
          match List.find_opt (fun b -> st.bks.(b).alive) remaining with
          | Some b -> Some b
          | None -> ( match remaining with b :: _ -> Some b | [] -> None)
        in
        match choice with
        | None ->
            Obs.incr t.m.no_backend;
            responses.(i) <- Some (degraded t mlines.(i))
        | Some b ->
            prefs.(i) := List.filter (fun x -> x <> b) remaining;
            progress := true;
            Hashtbl.replace groups b
              (i :: (try Hashtbl.find groups b with Not_found -> []))
      end
    done;
    if !progress then begin
      let run (b, idxs) =
        let rs =
          Client.pipeline st.bks.(b).client (List.map (fun i -> mlines.(i)) idxs)
        in
        List.iter2
          (fun i r ->
            match r with
            | Ok resp ->
                mark t st b true;
                Obs.incr t.m.forwarded;
                populate_hint t st all_prefs.(i) b resp;
                responses.(i) <- Some resp
            | Error e when Client.is_retryable e ->
                (* stays unresolved: the next round walks the member's
                   remaining preference *)
                mark t st b false;
                Obs.incr t.m.failover
            | Error e ->
                responses.(i) <-
                  Some (error_response mlines.(i) (Client.error_message e)))
          idxs rs
      in
      (match Hashtbl.fold (fun b idxs acc -> (b, idxs) :: acc) groups [] with
      | [ one ] -> run one
      | work ->
          let threads = List.map (fun w -> Thread.create run w) work in
          List.iter Thread.join threads);
      round ()
    end
  in
  round ();
  (* splice the member responses verbatim: they are already the exact
     bytes of the corresponding batch-result slots *)
  let buf = Buffer.create 256 in
  Buffer.add_string buf {|{"ok":true,"results":[|};
  Array.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Option.value r ~default:(degraded t mlines.(i))))
    responses;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* membership: join + rebalance                                        *)
(* ------------------------------------------------------------------ *)

(* migrate to the joined backend exactly the entries whose owner set
   now includes it: every key keeps R warm copies through the join and
   nothing else moves.  Placement of a raw store entry hashes its
   content address ("key:<hex>"), which is exact for facet queries and
   a safe over-approximation for symbolic ones (an extra copy is
   wasted memory, never a wrong answer). *)
let rebalance_to t st new_idx =
  let target = st.bks.(new_idx) in
  let r = max 1 (owners_count t st) in
  let seen = Hashtbl.create 256 in
  let moved = ref 0 in
  Array.iteri
    (fun i b ->
      if i <> new_idx && b.alive then
        match Replica.fetch_entries b.client with
        | Error _ -> ()
        | Ok entries ->
            let mine =
              List.filter
                (fun (key, _) ->
                  let hex = Psph_engine.Key.to_hex key in
                  (not (Hashtbl.mem seen hex))
                  && List.mem new_idx (Ring.owners st.ring ~r ("key:" ^ hex)))
                entries
            in
            List.iter
              (fun (key, _) ->
                Hashtbl.replace seen (Psph_engine.Key.to_hex key) ())
              mine;
            let rec push = function
              | [] -> ()
              | chunk ->
                  let now, rest =
                    ( List.filteri (fun k _ -> k < 256) chunk,
                      List.filteri (fun k _ -> k >= 256) chunk )
                  in
                  (match
                     Client.request target.client (Replica.populate_line now)
                   with
                  | Ok _ -> moved := !moved + List.length now
                  | Error _ -> Replica.populate_failed t.rep);
                  push rest
            in
            push mine)
    st.bks;
  Replica.rebalanced t.rep !moved;
  Obs.event
    (t.m.prefix ^ ".rebalance")
    ~attrs:
      [
        ("backend", Jsonl.Str (Addr.to_string target.baddr));
        ("moved", Jsonl.int !moved);
        ("epoch", Jsonl.int st.epoch);
      ]

let add_backend ?(rebalance = true) t baddr =
  let name = Addr.to_string baddr in
  Mutex.lock t.state_lock;
  let st = t.state in
  match Ring.index st.ring name with
  | Some _ ->
      Mutex.unlock t.state_lock;
      Error "already a backend"
  | None ->
      let b = mk_backend t.cfg baddr in
      let st' =
        {
          bks = Array.append st.bks [| b |];
          ring = Ring.add st.ring name;
          epoch = st.epoch + 1;
        }
      in
      (* the one-field publish: requests that already captured the old
         snapshot finish under it; new requests see epoch+1.  No request
         ever observes a half-updated ring. *)
      t.state <- st';
      Mutex.unlock t.state_lock;
      Obs.gauge_set t.m.epoch_g (float_of_int st'.epoch);
      refresh_up_gauge t;
      let new_idx = Array.length st'.bks - 1 in
      let pred =
        Option.map (fun i -> st'.bks.(i).baddr) (Ring.successor st'.ring new_idx)
      in
      Obs.event
        (t.m.prefix ^ ".backend_join")
        ~attrs:
          [
            ("backend", Jsonl.Str name);
            ("epoch", Jsonl.int st'.epoch);
          ];
      if rebalance then
        ignore (Thread.create (fun () -> rebalance_to t st' new_idx) ());
      Ok (st'.epoch, pred)

(* ------------------------------------------------------------------ *)
(* admin ops                                                           *)
(* ------------------------------------------------------------------ *)

let with_id_of line fields =
  match Jsonl.of_string_opt line with
  | Some (Jsonl.Obj _ as o) -> (
      match Jsonl.member "id" o with
      | Some id -> ("id", id) :: fields
      | None -> fields)
  | _ -> fields

let cluster_response t line =
  let st = t.state in
  Jsonl.to_string
    (Jsonl.Obj
       (with_id_of line
          [
            ("ok", Jsonl.Bool true);
            ("epoch", Jsonl.int st.epoch);
            ("replication", Jsonl.int t.replication);
            ( "backends",
              Jsonl.Arr
                (Array.to_list
                   (Array.map
                      (fun b ->
                        Jsonl.Obj
                          [
                            ("addr", Jsonl.Str (Addr.to_string b.baddr));
                            ("alive", Jsonl.Bool b.alive);
                          ])
                      st.bks)) );
          ]))

(* the joining side of the ring-epoch handshake: a (re)joining backend
   announces itself and learns the epoch its membership starts at plus
   the peer to stream its warm store from (psc serve --warm-from) *)
let join_response t req line =
  match Option.bind (Jsonl.member "backend" req) Jsonl.to_string_opt with
  | None -> error_response line "join needs a \"backend\" address"
  | Some s -> (
      match Addr.parse s with
      | Error m -> error_response line m
      | Ok baddr -> (
          let ok joined epoch pred =
            Jsonl.to_string
              (Jsonl.Obj
                 (with_id_of line
                    ([
                       ("ok", Jsonl.Bool true);
                       ("joined", Jsonl.Bool joined);
                       ("epoch", Jsonl.int epoch);
                     ]
                    @
                    match pred with
                    | Some a ->
                        [ ("predecessor", Jsonl.Str (Addr.to_string a)) ]
                    | None -> [])))
          in
          match add_backend t baddr with
          | Ok (epoch, pred) -> ok true epoch pred
          | Error _ ->
              (* already a member (e.g. a restarted backend re-asking
                 for its warm peer): answer idempotently *)
              let st = t.state in
              let pred =
                match Ring.index st.ring (Addr.to_string baddr) with
                | Some i ->
                    Option.map
                      (fun j -> st.bks.(j).baddr)
                      (Ring.successor st.ring i)
                | None -> None
              in
              ok false st.epoch pred))

let admin_op line =
  match Jsonl.of_string_opt line with
  | Some (Jsonl.Obj _ as o) -> (
      match Option.bind (Jsonl.member "op" o) Jsonl.to_string_opt with
      | Some "cluster" -> Some (`Cluster o)
      | Some "join" -> Some (`Join o)
      | _ -> None)
  | _ -> None

let route t line =
  Obs.incr t.m.requests;
  Obs.with_span t.m.span_name (fun sp ->
      Obs.time t.m.request_s (fun () ->
          match admin_op line with
          | Some (`Cluster _) -> cluster_response t line
          | Some (`Join req) -> join_response t req line
          | None -> (
              match fanout_members line with
              | Some members -> route_batch t sp members
              | None -> route_single t sp line)))

(* ------------------------------------------------------------------ *)
(* health checks                                                       *)
(* ------------------------------------------------------------------ *)

let probe = {|{"op":"models"}|}

let check_once t =
  let st = t.state in
  Array.iteri
    (fun i b ->
      match Client.request b.health probe with
      | Ok _ -> mark t st i true
      | Error _ -> mark t st i false)
    st.bks

let rec health_loop t =
  if not (Atomic.get t.stopping) then begin
    check_once t;
    (* sleep in small slices so [stop] never waits a full period *)
    let slices = int_of_float (Float.ceil (t.check_period_s /. 0.05)) in
    let rec nap i =
      if i > 0 && not (Atomic.get t.stopping) then begin
        Thread.delay (Float.min 0.05 t.check_period_s);
        nap (i - 1)
      end
    in
    nap (max 1 slices);
    health_loop t
  end

let start_health_checks t =
  if t.health_thread = None then
    t.health_thread <- Some (Thread.create (fun () -> health_loop t) ())

let stop t =
  Atomic.set t.stopping true;
  Option.iter Thread.join t.health_thread;
  t.health_thread <- None;
  Replica.stop t.rep;
  Array.iter
    (fun b ->
      Client.close b.client;
      Client.close b.health)
    t.state.bks
