(* Consistent-hash request routing.

   The ring is fixed at creation: [replicas] points per backend, each the
   FNV-1a hash of "host:port#i", sorted.  A request's shard key hashes to
   a ring position; its failover order is the distinct backends met
   walking clockwise from there.  This is the standard construction —
   removing a backend only remaps keys whose first hit was that backend,
   which is what keeps N-1 warm caches warm when one backend dies. *)

open Psph_obs
open Psph_topology

type backend = {
  baddr : Addr.t;
  client : Client.t;
  health : Client.t;  (** separate connection so probes never queue behind requests *)
  mutable alive : bool;
}

type metrics = {
  requests : Obs.counter;
  forwarded : Obs.counter;
  failover : Obs.counter;
  no_backend : Obs.counter;
  fanout : Obs.counter;
  backends_up : Obs.gauge;
  request_s : Obs.histogram;
  span_name : string;
  prefix : string;
}

type t = {
  bks : backend array;
  ring : (int * int) array;  (** (point, backend index), sorted by point *)
  rr : int Atomic.t;  (** rotation for keyless requests *)
  check_period_s : float;
  mutable health_thread : Thread.t option;
  stopping : bool Atomic.t;
  m : metrics;
}

(* FNV-1a, folded to a nonnegative OCaml int — deterministic across
   processes and runs, unlike Hashtbl.hash's unspecified evolution *)
let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  Int64.to_int (Int64.shift_right_logical !h 2)

let create ?(metrics = "net.router") ?(replicas = 64) ?(timeout_ms = 5000)
    ?(retries = 1) ?(check_period_ms = 1000)
    ?(max_frame = Frame.max_frame_default) ?(codec = `Json)
    ?(pipeline_depth = 16) addrs =
  if addrs = [] then invalid_arg "Router.create: no backends";
  let bks =
    Array.of_list
      (List.map
         (fun baddr ->
           {
             baddr;
             client =
               Client.create ~metrics:(metrics ^ ".client") ~timeout_ms ~retries
                 ~max_frame ~codec ~pipeline_depth baddr;
             health =
               Client.create ~metrics:(metrics ^ ".health")
                 ~timeout_ms:(min timeout_ms 1000) ~retries:0 ~max_frame baddr;
             alive = true;
           })
         addrs)
  in
  let ring =
    Array.init (Array.length bks * replicas) (fun j ->
        let i = j / replicas and v = j mod replicas in
        (fnv1a (Printf.sprintf "%s#%d" (Addr.to_string bks.(i).baddr) v), i))
  in
  Array.sort compare ring;
  let m =
    {
      requests = Obs.counter (metrics ^ ".requests");
      forwarded = Obs.counter (metrics ^ ".forwarded");
      failover = Obs.counter (metrics ^ ".failover");
      no_backend = Obs.counter (metrics ^ ".no_backend");
      fanout = Obs.counter (metrics ^ ".fanout");
      backends_up = Obs.gauge (metrics ^ ".backends_up");
      request_s = Obs.histogram (metrics ^ ".request_s");
      span_name = metrics ^ ".request";
      prefix = metrics;
    }
  in
  Obs.gauge_set m.backends_up (float_of_int (Array.length bks));
  {
    bks;
    ring;
    rr = Atomic.make 0;
    check_period_s = float_of_int check_period_ms /. 1000.;
    health_thread = None;
    stopping = Atomic.make false;
    m;
  }

(* ------------------------------------------------------------------ *)
(* shard keys                                                          *)
(* ------------------------------------------------------------------ *)

let int_member name j = Option.bind (Jsonl.member name j) Jsonl.to_int_opt

(* mirror of the engine's spec canonicalization (Engine.spec_key_of):
   psph by parameters, models by the registered model's own normalized
   encoding, explicit facets by their content address — so the router
   agrees with the backend caches about which requests are "the same" *)
let shard_key line =
  match Jsonl.of_string_opt line with
  | Some (Jsonl.Obj _ as req) -> (
      match Option.bind (Jsonl.member "op" req) Jsonl.to_string_opt with
      | Some "psph" -> (
          match (int_member "n" req, int_member "values" req) with
          | Some n, Some v -> Some (Printf.sprintf "psph:%d:%d" n v)
          | _ -> None)
      | Some "model-complex" -> (
          match Option.bind (Jsonl.member "model" req) Jsonl.to_string_opt with
          | None -> None
          | Some name -> (
              match
                (Pseudosphere.Model_complex.find name, int_member "n" req)
              with
              | Some model, Some n ->
                  let d = Pseudosphere.Model_complex.default_spec in
                  let get f dflt = Option.value (int_member f req) ~default:dflt in
                  let spec =
                    {
                      Pseudosphere.Model_complex.n;
                      f = get "f" d.Pseudosphere.Model_complex.f;
                      k = get "k" d.k;
                      p = get "p" d.p;
                      r = get "r" d.r;
                    }
                  in
                  (* encode normalizes via the model; an invalid spec
                     still shards deterministically on the raw encoding *)
                  Some
                    (try Pseudosphere.Model_complex.encode model spec
                     with _ ->
                       Printf.sprintf "%s:%d:%d:%d:%d:%d" name spec.n spec.f
                         spec.k spec.p spec.r)
              | _ -> None))
      | Some ("betti" | "connectivity") -> (
          match Option.bind (Jsonl.member "facets" req) Jsonl.to_list_opt with
          | None -> None
          | Some facets -> (
              let strs = List.filter_map Jsonl.to_string_opt facets in
              match
                List.map Complex_io.simplex_of_string strs
                |> Complex.of_facets |> Psph_engine.Key.of_complex
                |> Psph_engine.Key.to_hex
              with
              | hex -> Some ("key:" ^ hex)
              | exception _ ->
                  (* unparseable facets: still pin repeats together *)
                  Some ("facets:" ^ String.concat ";" strs)))
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* ring lookup                                                         *)
(* ------------------------------------------------------------------ *)

(* first ring index with point >= h, wrapping *)
let ring_start t h =
  let n = Array.length t.ring in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.ring.(mid) < h then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let preference t line =
  let nb = Array.length t.bks in
  match shard_key line with
  | Some key ->
      let start = ring_start t (fnv1a key) in
      let seen = Array.make nb false in
      let order = ref [] in
      let n = Array.length t.ring in
      let found = ref 0 in
      let i = ref 0 in
      while !found < nb && !i < n do
        let b = snd t.ring.((start + !i) mod n) in
        if not seen.(b) then begin
          seen.(b) <- true;
          order := b :: !order;
          incr found
        end;
        incr i
      done;
      List.rev !order
  | None ->
      let c = Atomic.fetch_and_add t.rr 1 in
      List.init nb (fun i -> (c + i) mod nb)

let backends t = Array.to_list (Array.map (fun b -> (b.baddr, b.alive)) t.bks)

(* ------------------------------------------------------------------ *)
(* routing                                                             *)
(* ------------------------------------------------------------------ *)

let refresh_up_gauge t =
  let up = Array.fold_left (fun n b -> if b.alive then n + 1 else n) 0 t.bks in
  Obs.gauge_set t.m.backends_up (float_of_int up)

let mark t i alive =
  let b = t.bks.(i) in
  if b.alive <> alive then begin
    b.alive <- alive;
    Obs.event
      (t.m.prefix ^ if alive then ".backend_up" else ".backend_down")
      ~attrs:[ ("backend", Jsonl.Str (Addr.to_string b.baddr)) ];
    refresh_up_gauge t
  end

let error_response line msg =
  let fields = [ ("ok", Jsonl.Bool false); ("error", Jsonl.Str msg) ] in
  let fields =
    match Jsonl.of_string_opt line with
    | Some (Jsonl.Obj _ as o) -> (
        match Jsonl.member "id" o with
        | Some id -> ("id", id) :: fields
        | None -> fields)
    | _ -> fields
  in
  Jsonl.to_string (Jsonl.Obj fields)

let degraded line = error_response line "no backend"

let route_single t sp line =
  let prefs = preference t line in
  (* live backends first, each dead one still gets a last-resort
     try (it may have revived since the prober last looked) *)
  let live, dead = List.partition (fun i -> t.bks.(i).alive) prefs in
  let rec go first = function
    | [] ->
        Obs.incr t.m.no_backend;
        Obs.set_attr sp "degraded" (Jsonl.Bool true);
        degraded line
    | i :: rest -> (
        match Client.request t.bks.(i).client line with
        | Ok resp ->
            mark t i true;
            Obs.incr t.m.forwarded;
            Obs.set_attr sp "backend"
              (Jsonl.Str (Addr.to_string t.bks.(i).baddr));
            resp
        | Error e when Client.is_retryable e ->
            (* transport failure: the backend (not the request)
               is the problem — mark it down and fail over *)
            mark t i false;
            if not first then Obs.incr t.m.failover;
            go false rest
        | Error e ->
            (* fatal Protocol errors are request-specific (e.g.
               a response over the client's max_frame): every
               backend would fail it identically, so answer with
               the error instead of walking the ring marking
               healthy backends dead *)
            Obs.set_attr sp "error" (Jsonl.Str (Client.error_message e));
            error_response line (Client.error_message e))
  in
  go true (live @ dead)

(* ------------------------------------------------------------------ *)
(* batch fan-out                                                       *)
(* ------------------------------------------------------------------ *)

(* A batch of hot-op members fans out: members group by their preferred
   backend (so each still lands on the cache that is warm for it) and
   each group flies down that backend's pipelined connection, groups in
   parallel.  Only hot ops qualify because the fan-out forwards members
   as top-level requests, and for hot ops a member's slot in a backend
   batch response is byte-identical to the backend's top-level response
   — so splicing the group results back together in request order
   reproduces exactly the bytes a single backend would have sent.
   Batches with nested/keyless members keep the v1 whole-batch path. *)

let hot_op = function
  | Jsonl.Obj _ as r -> (
      match Option.bind (Jsonl.member "op" r) Jsonl.to_string_opt with
      | Some ("psph" | "betti" | "connectivity" | "model-complex") -> true
      | _ -> false)
  | _ -> false

let fanout_members line =
  match Jsonl.of_string_opt line with
  | Some (Jsonl.Obj _ as o)
    when Option.bind (Jsonl.member "op" o) Jsonl.to_string_opt = Some "batch"
    -> (
      match Option.bind (Jsonl.member "requests" o) Jsonl.to_list_opt with
      | Some members when List.length members > 1 && List.for_all hot_op members
        ->
          Some (Array.of_list members)
      | _ -> None)
  | _ -> None

let route_batch t sp members =
  Obs.incr t.m.fanout;
  let n = Array.length members in
  Obs.set_attr sp "fanout" (Jsonl.int n);
  let mlines = Array.map Jsonl.to_string members in
  let responses = Array.make n None in
  let prefs = Array.map (fun l -> ref (preference t l)) mlines in
  (* rounds: every unresolved member tries its best untried backend
     (live first, dead as a last resort), one pipelined flight per
     backend, flights in parallel.  Preferences only shrink, so the
     loop terminates in degraded answers at worst. *)
  let rec round () =
    let groups = Hashtbl.create 8 in
    let progress = ref false in
    for i = n - 1 downto 0 do
      if responses.(i) = None then begin
        let remaining = !(prefs.(i)) in
        let choice =
          match List.find_opt (fun b -> t.bks.(b).alive) remaining with
          | Some b -> Some b
          | None -> ( match remaining with b :: _ -> Some b | [] -> None)
        in
        match choice with
        | None ->
            Obs.incr t.m.no_backend;
            responses.(i) <- Some (degraded mlines.(i))
        | Some b ->
            prefs.(i) := List.filter (fun x -> x <> b) remaining;
            progress := true;
            Hashtbl.replace groups b
              (i :: (try Hashtbl.find groups b with Not_found -> []))
      end
    done;
    if !progress then begin
      let run (b, idxs) =
        let rs =
          Client.pipeline t.bks.(b).client (List.map (fun i -> mlines.(i)) idxs)
        in
        List.iter2
          (fun i r ->
            match r with
            | Ok resp ->
                mark t b true;
                Obs.incr t.m.forwarded;
                responses.(i) <- Some resp
            | Error e when Client.is_retryable e ->
                (* stays unresolved: the next round walks the member's
                   remaining preference *)
                mark t b false;
                Obs.incr t.m.failover
            | Error e ->
                responses.(i) <-
                  Some (error_response mlines.(i) (Client.error_message e)))
          idxs rs
      in
      (match Hashtbl.fold (fun b idxs acc -> (b, idxs) :: acc) groups [] with
      | [ one ] -> run one
      | work ->
          let threads = List.map (fun w -> Thread.create run w) work in
          List.iter Thread.join threads);
      round ()
    end
  in
  round ();
  (* splice the member responses verbatim: they are already the exact
     bytes of the corresponding batch-result slots *)
  let buf = Buffer.create 256 in
  Buffer.add_string buf {|{"ok":true,"results":[|};
  Array.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Option.value r ~default:(degraded mlines.(i))))
    responses;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let route t line =
  Obs.incr t.m.requests;
  Obs.with_span t.m.span_name (fun sp ->
      Obs.time t.m.request_s (fun () ->
          match fanout_members line with
          | Some members -> route_batch t sp members
          | None -> route_single t sp line))

(* ------------------------------------------------------------------ *)
(* health checks                                                       *)
(* ------------------------------------------------------------------ *)

let probe = {|{"op":"models"}|}

let check_once t =
  Array.iteri
    (fun i b ->
      match Client.request b.health probe with
      | Ok _ -> mark t i true
      | Error _ -> mark t i false)
    t.bks

let rec health_loop t =
  if not (Atomic.get t.stopping) then begin
    check_once t;
    (* sleep in small slices so [stop] never waits a full period *)
    let slices = int_of_float (Float.ceil (t.check_period_s /. 0.05)) in
    let rec nap i =
      if i > 0 && not (Atomic.get t.stopping) then begin
        Thread.delay (Float.min 0.05 t.check_period_s);
        nap (i - 1)
      end
    in
    nap (max 1 slices);
    health_loop t
  end

let start_health_checks t =
  if t.health_thread = None then
    t.health_thread <- Some (Thread.create (fun () -> health_loop t) ())

let stop t =
  Atomic.set t.stopping true;
  Option.iter Thread.join t.health_thread;
  t.health_thread <- None;
  Array.iter
    (fun b ->
      Client.close b.client;
      Client.close b.health)
    t.bks
