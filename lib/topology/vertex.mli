(** Vertices of simplicial complexes.

    The paper's complexes are {e chromatic}: each vertex is a pair
    [(process id, label)] and no simplex contains two vertices with the same
    process id.  We additionally support anonymous vertices (for classical
    test spaces such as the torus) and barycentre vertices (created by
    barycentric subdivision). *)

type t =
  | Proc of Pid.t * Label.t  (** a process with a local state *)
  | Anon of int  (** an unlabelled combinatorial vertex *)
  | Bary of t list
      (** barycentre of the simplex spanned by the (sorted, distinct) listed
          vertices; produced by {!Subdivision.barycentric} *)

val proc : Pid.t -> Label.t -> t

val anon : int -> t

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val pid : t -> Pid.t option
(** The process id of a [Proc] vertex, [None] otherwise. *)

val label : t -> Label.t option
(** The label of a [Proc] vertex, [None] otherwise. *)

val relabel : (Label.t -> Label.t) -> t -> t
(** [relabel f v] applies [f] to the label of a [Proc] vertex; other vertices
    are returned unchanged. *)

module Set : Stdlib.Set.S with type elt = t

module Map : Stdlib.Map.S with type key = t
