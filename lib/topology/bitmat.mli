(** Dense bit-packed matrices over the two-element field Z/2.

    Columns are arrays of [Sys.int_size]-bit words, so the column sum
    (symmetric difference) runs word-at-a-time, and the rank computation
    keeps an O(1) pivot table indexed by row instead of re-scanning column
    lists.  This is the engine behind {!Homology}; the list-based
    {!Z2_matrix} is kept as a reference oracle and the two are
    property-tested against each other. *)

type t

val create : rows:int -> cols:int -> t
(** Zero matrix of the given shape. *)

val dims : t -> int * int
(** [(rows, cols)]. *)

val set : t -> row:int -> col:int -> unit
(** Set an entry to 1.  @raise Invalid_argument if the row is out of range. *)

val get : t -> row:int -> col:int -> bool

val of_columns : rows:int -> Z2_matrix.col list -> t
(** Build from sparse columns (lists of nonzero row indices, as in
    {!Z2_matrix}). *)

val rank : t -> int
(** Rank over Z/2.  The matrix is not modified (reduction works on a
    copy). *)

val rank_of_columns : rows:int -> Z2_matrix.col list -> int
(** [rank_of_columns ~rows cols = rank (of_columns ~rows cols)]. *)

val rank_words : rows:int -> int array -> int
(** Single-word fast path: each array element is one column, encoded as a
    bit mask over at most [Sys.int_size] rows.
    @raise Invalid_argument if [rows > Sys.int_size]. *)
