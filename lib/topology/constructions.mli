(** Classical complex constructions: cones, suspensions, spheres.

    Used throughout the test-suite as reference spaces, and by the
    extension experiments: a cone is contractible (so collapsible to a
    point and with trivial reduced homology), suspension shifts reduced
    homology up by one — handy sanity laws for the homology engines. *)

val cone : apex:Vertex.t -> Complex.t -> Complex.t
(** [cone ~apex c]: the join of [c] with a fresh apex vertex (which must
    not occur in [c]).  The cone over the empty complex is the apex
    point. *)

val suspension : north:Vertex.t -> south:Vertex.t -> Complex.t -> Complex.t
(** Join with two fresh points: [susp X] has
    [H~_{d+1}(susp X) = H~_d(X)]. *)

val sphere : int -> Complex.t
(** [sphere n]: the boundary of an [(n+1)]-simplex on anonymous vertices —
    the minimal triangulation of the [n]-sphere.  [sphere (-1)] is the
    empty complex. *)

val solid : int -> Complex.t
(** [solid n]: a solid [n]-simplex on anonymous vertices. *)
