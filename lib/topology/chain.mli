(** Chains over Z/2.

    A [d]-chain is a formal sum of [d]-simplexes with Z/2 coefficients,
    i.e. a finite set of simplexes under symmetric difference.  The
    boundary operator satisfies the fundamental law [boundary (boundary c)
    = zero], which the property suite checks on random chains; cycles and
    boundaries give a hands-on counterpart to the matrix-based
    {!Homology}. *)

type t
(** A chain; all member simplexes must share one dimension. *)

val zero : t

val of_simplices : Simplex.t list -> t
(** Formal sum (duplicates cancel).  @raise Invalid_argument on mixed
    dimensions. *)

val simplices : t -> Simplex.t list

val is_zero : t -> bool

val dim : t -> int
(** [-1] for the zero chain. *)

val add : t -> t -> t
(** Z/2 sum (symmetric difference).  @raise Invalid_argument on mixed
    nonzero dimensions. *)

val boundary : t -> t
(** The boundary operator. *)

val is_cycle : t -> bool
(** [boundary c = zero]. *)

val is_boundary_in : Complex.t -> t -> bool
(** Is the chain the boundary of some chain of the complex?  (Solves a
    linear system over Z/2.) *)

val fundamental_class : Complex.t -> t
(** The sum of all top-dimensional simplexes — a cycle exactly when the
    complex is a Z/2-cycle (e.g. any closed pseudomanifold, such as a
    pseudosphere realization). *)

val pp : Format.formatter -> t -> unit
