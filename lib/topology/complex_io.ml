(* A hand-rolled recursive-descent reader over a string cursor. *)

type cursor = { text : string; mutable pos : int }

let peek cur = if cur.pos < String.length cur.text then Some cur.text.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let rec loop () =
    match peek cur with
    | Some (' ' | '\t') ->
        advance cur;
        loop ()
    | _ -> ()
  in
  loop ()

let fail cur msg =
  failwith
    (Printf.sprintf "Complex_io: %s at position %d in %S" msg cur.pos cur.text)

let expect cur ch =
  skip_ws cur;
  match peek cur with
  | Some c when c = ch -> advance cur
  | _ -> fail cur (Printf.sprintf "expected '%c'" ch)

let read_int cur =
  skip_ws cur;
  let start = cur.pos in
  if peek cur = Some '-' then advance cur;
  let rec loop () =
    match peek cur with
    | Some ('0' .. '9') ->
        advance cur;
        loop ()
    | _ -> ()
  in
  loop ();
  if cur.pos = start then fail cur "expected an integer";
  int_of_string (String.sub cur.text start (cur.pos - start))

let read_string_literal cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | Some '"' -> advance cur
    | Some '\\' ->
        advance cur;
        (match peek cur with
        | Some c ->
            Buffer.add_char buf c;
            advance cur
        | None -> fail cur "unterminated escape");
        loop ()
    | Some c ->
        Buffer.add_char buf c;
        advance cur;
        loop ()
    | None -> fail cur "unterminated string"
  in
  loop ();
  Buffer.contents buf

let read_int_list cur ~stop =
  let rec loop acc =
    skip_ws cur;
    match peek cur with
    | Some c when c = stop ->
        advance cur;
        List.rev acc
    | Some ',' ->
        advance cur;
        loop acc
    | Some _ -> loop (read_int cur :: acc)
    | None -> fail cur "unterminated list"
  in
  loop []

(* ------------------------------------------------------------------ *)
(* labels                                                              *)
(* ------------------------------------------------------------------ *)

let escape s =
  String.concat ""
    (List.map
       (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let rec label_to_string = function
  | Label.Unit -> "u"
  | Label.Bool b -> "b" ^ string_of_bool b
  | Label.Int i -> "i" ^ string_of_int i
  | Label.Str s -> Printf.sprintf "s\"%s\"" (escape s)
  | Label.Pid p -> "p" ^ string_of_int (Pid.to_int p)
  | Label.Pid_set s ->
      Printf.sprintf "P{%s}"
        (String.concat "," (List.map string_of_int (Pid.Set.elements s)))
  | Label.Vec v ->
      Printf.sprintf "V<%s>"
        (String.concat "," (List.map string_of_int (Array.to_list v)))
  | Label.Pair (a, b) ->
      Printf.sprintf "(%s,%s)" (label_to_string a) (label_to_string b)
  | Label.List ls ->
      Printf.sprintf "[%s]" (String.concat ";" (List.map label_to_string ls))

let rec read_label cur =
  skip_ws cur;
  match peek cur with
  | Some 'u' ->
      advance cur;
      Label.Unit
  | Some 'b' ->
      advance cur;
      skip_ws cur;
      if cur.pos + 4 <= String.length cur.text && String.sub cur.text cur.pos 4 = "true"
      then begin
        cur.pos <- cur.pos + 4;
        Label.Bool true
      end
      else if
        cur.pos + 5 <= String.length cur.text && String.sub cur.text cur.pos 5 = "false"
      then begin
        cur.pos <- cur.pos + 5;
        Label.Bool false
      end
      else fail cur "expected a boolean"
  | Some 'i' ->
      advance cur;
      Label.Int (read_int cur)
  | Some 's' ->
      advance cur;
      Label.Str (read_string_literal cur)
  | Some 'p' ->
      advance cur;
      Label.Pid (Pid.of_int (read_int cur))
  | Some 'P' ->
      advance cur;
      expect cur '{';
      Label.Pid_set (Pid.Set.of_list (read_int_list cur ~stop:'}'))
  | Some 'V' ->
      advance cur;
      expect cur '<';
      Label.Vec (Array.of_list (read_int_list cur ~stop:'>'))
  | Some '(' ->
      advance cur;
      let a = read_label cur in
      expect cur ',';
      let b = read_label cur in
      expect cur ')';
      Label.Pair (a, b)
  | Some '[' ->
      advance cur;
      let rec loop acc =
        skip_ws cur;
        match peek cur with
        | Some ']' ->
            advance cur;
            List.rev acc
        | Some ';' ->
            advance cur;
            loop acc
        | Some _ -> loop (read_label cur :: acc)
        | None -> fail cur "unterminated label list"
      in
      Label.List (loop [])
  | _ -> fail cur "expected a label"

let label_of_string s =
  let cur = { text = s; pos = 0 } in
  let l = read_label cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  l

(* ------------------------------------------------------------------ *)
(* vertices                                                            *)
(* ------------------------------------------------------------------ *)

let rec vertex_to_string = function
  | Vertex.Anon i -> "#" ^ string_of_int i
  | Vertex.Proc (p, l) ->
      Printf.sprintf "%d:%s" (Pid.to_int p) (label_to_string l)
  | Vertex.Bary vs ->
      Printf.sprintf "B(%s)" (String.concat ";" (List.map vertex_to_string vs))

let rec read_vertex cur =
  skip_ws cur;
  match peek cur with
  | Some '#' ->
      advance cur;
      Vertex.Anon (read_int cur)
  | Some 'B' ->
      advance cur;
      expect cur '(';
      let rec loop acc =
        skip_ws cur;
        match peek cur with
        | Some ')' ->
            advance cur;
            List.rev acc
        | Some ';' ->
            advance cur;
            loop acc
        | Some _ -> loop (read_vertex cur :: acc)
        | None -> fail cur "unterminated barycentre"
      in
      Vertex.Bary (loop [])
  | Some ('0' .. '9') ->
      let p = read_int cur in
      expect cur ':';
      Vertex.Proc (Pid.of_int p, read_label cur)
  | _ -> fail cur "expected a vertex"

let vertex_of_string s =
  let cur = { text = s; pos = 0 } in
  let v = read_vertex cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* simplexes and complexes                                             *)
(* ------------------------------------------------------------------ *)

let simplex_to_string s =
  String.concat " ; " (List.map vertex_to_string (Simplex.vertices s))

let simplex_of_string text =
  let cur = { text; pos = 0 } in
  let rec loop acc =
    let v = read_vertex cur in
    skip_ws cur;
    match peek cur with
    | Some ';' ->
        advance cur;
        loop (v :: acc)
    | None -> List.rev (v :: acc)
    | Some _ -> fail cur "expected ';' or end of simplex"
  in
  Simplex.of_list (loop [])

let complex_to_string c =
  Complex.facets c
  |> List.sort Simplex.compare
  |> List.map simplex_to_string
  |> String.concat "\n"

let complex_of_string text =
  String.split_on_char '\n' text
  |> List.filter (fun line -> String.trim line <> "")
  |> List.map simplex_of_string
  |> Complex.of_facets

let save path c =
  let oc = open_out path in
  output_string oc (complex_to_string c);
  output_char oc '\n';
  close_out oc

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  complex_of_string text
