(** Reduced simplicial homology over Z/2, and homological connectivity.

    Connectivity in the paper (Definition 1) is topological
    [k]-connectivity.  We compute the homological counterpart: vanishing of
    the reduced Z/2 homology groups through dimension [k].  For the
    complexes the paper manipulates — pseudospheres and the shellable unions
    built from them, all homotopy equivalent to wedges of spheres — the two
    notions agree, and the Mayer–Vietoris engine ({!Mayer_vietoris})
    independently replays the paper's genuine connectivity proofs. *)

val boundary_matrix : Complex.t -> int -> Z2_matrix.col list
(** [boundary_matrix c d] is the matrix of the boundary operator from
    [d]-chains to [(d-1)]-chains, with columns indexed by [d]-simplexes and
    rows by [(d-1)]-simplexes (both in {!Simplex.compare} order). *)

val rank_jobs :
  ?max_dim:int -> Complex.t -> int array * (int * (unit -> int)) list
(** [rank_jobs c] is [(r, jobs)]: [r] is the boundary-rank array with
    [r.(0)] already filled in (the augmentation rank), and [jobs] is one
    [(d, compute)] pair per remaining dimension, where [compute ()] is the
    rank of the boundary operator from [d]-chains to [(d-1)]-chains.  The
    thunks close over immutable per-dimension key lists built eagerly, so
    they may be evaluated in any order — including concurrently on separate
    domains, which is how the query engine parallelizes one large homology
    computation.  The caller stores [compute ()] into [r.(d)].  Each thunk
    runs in a [homology.rank] span (attr [dim]) in the {!Psph_obs.Obs}
    substrate, so per-dimension elimination cost shows up in traces. *)

val reduced_betti : ?max_dim:int -> Complex.t -> int array
(** [reduced_betti c] is the array of reduced Z/2 Betti numbers
    [b~_0 .. b~_dim].  For the empty complex the result is [[||]].  If
    [max_dim] is given, only dimensions [<= max_dim] are computed (entries
    above are absent). *)

val betti : ?max_dim:int -> Complex.t -> int array
(** Ordinary (unreduced) Betti numbers: [betti.(0)] counts components. *)

val connectivity : ?cap:int -> Complex.t -> int
(** The largest [k] such that the complex is homologically [k]-connected:
    [-2] if empty, otherwise the largest [k] with reduced Betti numbers
    vanishing in dimensions [0..k] (so a nonempty disconnected complex has
    connectivity [-1]).  Searches up to [cap] (default: the complex's
    dimension); a complex whose reduced homology vanishes through its
    dimension is reported with connectivity [cap]. *)

val is_k_connected : Complex.t -> int -> bool
(** [is_k_connected c k]: homologically [k]-connected in the paper's sense —
    [k <= -2] always holds, [k = -1] means nonempty, and [k >= 0] means
    nonempty with vanishing reduced homology through dimension [k]. *)

val ranks_reduced : ?max_dim:int -> Complex.t -> Complex.t * int array
(** [ranks_reduced c] precollapses [c] to its discrete-Morse critical core
    ({!Collapse.reduce}) and returns the core together with its boundary
    ranks ({!ranks} on the core).  Because the core is homotopy equivalent
    to [c], Betti numbers derived from the core's ranks and simplex counts
    equal those of [c] (dimensions above the core's are 0). *)

val betti_reduced : ?max_dim:int -> Complex.t -> int array
(** {!betti} computed via the Morse-reduced core.  Equal to [betti c]
    entry-for-entry; the core's missing top dimensions are padded with
    zeros. *)

val connectivity_reduced : ?cap:int -> Complex.t -> int
(** {!connectivity} computed via the Morse-reduced core.  Equal to
    [connectivity ?cap c]; [cap] still defaults to the {e original}
    complex's dimension. *)

val euler_from_betti : Complex.t -> int
(** Alternating sum of unreduced Betti numbers; equals {!Complex.euler} on
    every complex (a consistency check used by tests). *)
