(** Elementary simplicial collapses and discrete-Morse reduction.

    A nonmaximal simplex [s] is a {e free face} when it is properly
    contained in exactly one other simplex [t] (necessarily of dimension
    [dim s + 1]).  Removing the pair [(s, t)] is an elementary collapse; it
    preserves the homotopy type, hence homology and connectivity.  The
    greedy sequence of such removals is an acyclic (discrete-Morse)
    matching whose unmatched simplices are the {e critical cells}.

    The implementation indexes the complex once into dense integer ids and
    maintains coface counts incrementally under removals, so a full
    collapse costs one pass plus O(1) bookkeeping per removed pair — no
    per-sweep recomputation.  Protocol complexes are highly collapsible, so
    reducing before computing homology ({!Homology}) can shrink them by
    orders of magnitude. *)

val collapse : Complex.t -> Complex.t
(** Greedily performs elementary collapses until none remains.  The result
    is homotopy equivalent to the input. *)

val reduce : Complex.t -> Complex.t * int
(** [reduce c] is [(core, removed)]: the critical-cell core left by the
    greedy Morse matching (equal to [collapse c]) together with the number
    of simplices eliminated.  [core] is homotopy equivalent to [c], so its
    reduced Z/2 homology — and hence connectivity — is identical. *)

val matching : Complex.t -> (Simplex.t * Simplex.t) list * Simplex.t list
(** The discrete-Morse matching the greedy collapse found: the list of
    collapsed pairs [(free face, coface)] in removal order, and the
    critical (unmatched) simplices.  The two partition the simplices of the
    input. *)

val is_collapsible_to_point : Complex.t -> bool
(** Does greedy collapsing end at a single vertex?  (A sufficient but not
    necessary condition for contractibility.) *)

val free_faces : Complex.t -> (Simplex.t * Simplex.t) list
(** The current free-face pairs [(s, t)] with [t] the unique coface. *)
