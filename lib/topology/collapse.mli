(** Elementary simplicial collapses.

    A nonmaximal simplex [s] is a {e free face} when it is properly
    contained in exactly one other simplex [t] (necessarily of dimension
    [dim s + 1]).  Removing the pair [(s, t)] is an elementary collapse; it
    preserves the homotopy type, hence homology and connectivity.  Protocol
    complexes are highly collapsible, so collapsing before computing
    homology ({!Homology}) can shrink them by orders of magnitude. *)

val collapse : Complex.t -> Complex.t
(** Greedily performs elementary collapses until none remains.  The result
    is homotopy equivalent to the input. *)

val is_collapsible_to_point : Complex.t -> bool
(** Does greedy collapsing end at a single vertex?  (A sufficient but not
    necessary condition for contractibility.) *)

val free_faces : Complex.t -> (Simplex.t * Simplex.t) list
(** The current free-face pairs [(s, t)] with [t] the unique coface. *)
