(** Subdivisions.

    Barycentric subdivision replaces every simplex by the complex of chains
    of its faces; vertices of the subdivision are {!Vertex.Bary}
    barycentres.  The chromatic (standard) subdivision of a single simplex
    is the subdivision underlying the one-round immediate-snapshot complex;
    it is included as the classical comparison point for the paper's
    asynchronous construction (Section 2 relates the two). *)

val barycentric : Complex.t -> Complex.t
(** First barycentric subdivision.  Preserves geometric realisation, hence
    Euler characteristic, homology and connectivity. *)

val barycentric_iter : int -> Complex.t -> Complex.t
(** [barycentric_iter r c]: [r]-fold barycentric subdivision. *)

val chromatic_of_simplex : Simplex.t -> Complex.t
(** Standard chromatic subdivision of one chromatic simplex [S]: vertices
    are pairs [(P, sigma)] with [sigma] a face of [S] containing [P]'s
    vertex; simplexes are compatible sets of such pairs (faces ordered by
    containment, and [P in ids(sigma_Q)] implies [sigma_P subset sigma_Q]).
    For an [n]-simplex this is the one-round wait-free immediate-snapshot
    complex.  Vertex labels are [Pair (original label, Pid_set (ids sigma))].
    @raise Invalid_argument if the simplex is not chromatic. *)

val ordered_partitions : 'a list -> 'a list list list
(** All ordered partitions of a list into nonempty blocks (the
    immediate-snapshot schedules); the empty list has the single empty
    partition. *)

val facet_count_chromatic : int -> int
(** Number of facets of the chromatic subdivision of an [n]-simplex,
    computed recursively (OEIS A000670-style ordered-partition sum over
    immediate-snapshot schedules). *)
