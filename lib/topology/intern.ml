(* Hash-consing of vertices and simplexes to dense integer ids.

   Polymorphic [Hashtbl.hash]/[(=)] are not usable on [Vertex.t]: labels may
   contain [Pid.Set.t] values whose balanced-tree shape depends on
   construction order.  We therefore hash by structure-aware recursion (sets
   are folded over their canonical element order) and compare with
   [Vertex.equal].

   Tables are global and grow monotonically; ids are stable within a
   process.  This is safe because vertices and simplexes are immutable.

   All table accesses are serialized by a single mutex so that the query
   engine's worker domains can intern concurrently: OCaml hashtables are
   not safe under parallel mutation (a resize racing a find can loop), and
   ids must be assigned exactly once per structural value.  The lock is a
   plain futex; uncontended it costs a few tens of nanoseconds, which is
   noise next to the structural hash it protects. *)

let lock = Mutex.create ()

let mix h x = (h * 0x01000193) lxor (x land max_int)

let rec label_hash h l =
  match (l : Label.t) with
  | Unit -> mix h 1
  | Bool b -> mix (mix h 2) (Bool.to_int b)
  | Int i -> mix (mix h 3) i
  | Str s -> mix (mix h 4) (Hashtbl.hash s)
  | Pid p -> mix (mix h 5) (Pid.to_int p)
  | Pid_set s -> Pid.Set.fold (fun p h -> mix h (Pid.to_int p)) s (mix h 6)
  | Vec v -> Array.fold_left mix (mix h 7) v
  | Pair (a, b) -> label_hash (label_hash (mix h 8) a) b
  | List xs -> List.fold_left label_hash (mix h 9) xs

let rec vertex_hash h v =
  match (v : Vertex.t) with
  | Proc (p, l) -> label_hash (mix (mix h 17) (Pid.to_int p)) l
  | Anon i -> mix (mix h 18) i
  | Bary vs -> List.fold_left vertex_hash (mix h 19) vs

module VH = Hashtbl.Make (struct
  type t = Vertex.t

  let equal = Vertex.equal

  let hash v = vertex_hash 0x811c9dc5 v
end)

let vertex_tbl : int VH.t = VH.create 1024

let vertex_store : Vertex.t array ref = ref (Array.make 1024 (Vertex.anon 0))

let vertex_count = ref 0

let vertex_id v =
  Mutex.lock lock;
  (* VH.find rather than find_opt: the hit path allocates nothing *)
  let id =
    match VH.find vertex_tbl v with
    | i -> i
    | exception Not_found ->
        let i = !vertex_count in
        incr vertex_count;
        if i >= Array.length !vertex_store then begin
          let bigger = Array.make (2 * Array.length !vertex_store) v in
          Array.blit !vertex_store 0 bigger 0 i;
          vertex_store := bigger
        end;
        !vertex_store.(i) <- v;
        VH.add vertex_tbl v i;
        i
  in
  Mutex.unlock lock;
  id

let vertex_of_id i =
  Mutex.lock lock;
  let v =
    if i < 0 || i >= !vertex_count then begin
      Mutex.unlock lock;
      invalid_arg "Intern.vertex_of_id"
    end
    else !vertex_store.(i)
  in
  Mutex.unlock lock;
  v

let key s = Array.map vertex_id (Simplex.vertex_array s)

(* int-array keys are safe for the polymorphic hashtable: hashing and
   equality on immediate ints are structural *)
let simplex_tbl : (int array, int) Hashtbl.t = Hashtbl.create 1024

let simplex_count = ref 0

let simplex_id s =
  let k = key s in
  Mutex.lock lock;
  let id =
    match Hashtbl.find_opt simplex_tbl k with
    | Some i -> i
    | None ->
        let i = !simplex_count in
        incr simplex_count;
        Hashtbl.add simplex_tbl k i;
        i
  in
  Mutex.unlock lock;
  id
