(** SVG rendering of small complexes.

    The paper's figures are drawings of low-dimensional complexes; this
    module regenerates them as standalone SVG files.  Vertices are placed
    with a deterministic force-directed layout (circle start, spring
    iterations), triangles are drawn translucent, edges solid, vertices
    labelled.  Intended for complexes with at most a few hundred
    simplexes. *)

val layout :
  ?iterations:int -> ?seed:int -> Complex.t -> (Vertex.t * (float * float)) list
(** Deterministic 2-D positions for the vertices (unit-box coordinates). *)

val svg : ?width:int -> ?height:int -> ?iterations:int -> Complex.t -> string
(** A complete SVG document: 2-simplexes as translucent triangles, edges as
    lines, vertices as labelled dots. *)

val save_svg : string -> ?width:int -> ?height:int -> Complex.t -> unit

val dot : Complex.t -> string
(** A Graphviz [graph] document of the 1-skeleton: vertices numbered in
    canonical {!Complex.vertices} order and labelled with {!Vertex.pp},
    edges from the 1-simplexes. *)

val save_dot : string -> Complex.t -> unit
