module SSet = Simplex_sets.SSet

(* A complex value is immutable once built (the simplex set never changes),
   so the derived quantities dim, f-vector and facets can be memoized in
   mutable fields without observable effect.  Every operation that produces
   a new simplex set wraps it with cold caches. *)
type t = {
  set : SSet.t;  (* invariant: nonempty simplexes, closed under faces *)
  mutable fvec : int array option;
  mutable facets_memo : Simplex.t list option;
}

let wrap set = { set; fvec = None; facets_memo = None }

let empty = wrap SSet.empty

let is_empty c = SSet.is_empty c.set

(* Insert a simplex and its face closure, pruning descent at any simplex
   already present: the closure invariant guarantees all of its faces are
   present too.  This is what lets [of_facets] skip re-enumerating the 2^d
   faces of facets that share large boundaries. *)
let rec add_closure s set =
  if SSet.mem s set then set
  else
    List.fold_left
      (fun set f -> if Simplex.is_empty f then set else add_closure f set)
      (SSet.add s set) (Simplex.facets s)

let add_facet s c =
  if Simplex.is_empty s then c
  else
    let set = add_closure s c.set in
    if set == c.set then c else wrap set

let of_facets fs =
  wrap
    (List.fold_left
       (fun acc s -> if Simplex.is_empty s then acc else add_closure s acc)
       SSet.empty fs)

let of_simplex s = add_facet s empty

let of_closure ss =
  (* trusted bulk constructor: [ss] already contains every nonempty face of
     each member, so no closure enumeration is needed; SSet.of_list
     sort_uniq-s and builds the balanced tree in linear time *)
  wrap (SSet.of_list (List.filter (fun s -> not (Simplex.is_empty s)) ss))

let boundary_complex s = of_facets (Simplex.facets s)

let mem s c = SSet.mem s c.set

let mem_vertex v c = SSet.mem (Simplex.of_list [ v ]) c.set

let simplices c = SSet.elements c.set

let fold f c init = SSet.fold f c.set init

let iter f c = SSet.iter f c.set

let num_simplices c = SSet.cardinal c.set

let f_vector c =
  match c.fvec with
  | Some f -> f
  | None ->
      let d = SSet.fold (fun s acc -> max acc (Simplex.dim s)) c.set (-1) in
      let f = if d < 0 then [||] else Array.make (d + 1) 0 in
      SSet.iter (fun s -> f.(Simplex.dim s) <- f.(Simplex.dim s) + 1) c.set;
      c.fvec <- Some f;
      f

let dim c = Array.length (f_vector c) - 1

let facets c =
  match c.facets_memo with
  | Some fs -> fs
  | None ->
      (* s is a facet iff no coface of dimension dim+1 is present; closure
         makes this equivalent to maximality *)
      let covered =
        SSet.fold
          (fun s acc ->
            if Simplex.dim s = 0 then acc
            else
              List.fold_left (fun acc f -> SSet.add f acc) acc (Simplex.facets s))
          c.set SSet.empty
      in
      let fs = SSet.elements (SSet.diff c.set covered) in
      c.facets_memo <- Some fs;
      fs

let simplices_of_dim c d =
  SSet.fold (fun s acc -> if Simplex.dim s = d then s :: acc else acc) c.set []
  |> List.rev

let count_of_dim c d =
  let f = f_vector c in
  if d < 0 || d >= Array.length f then 0 else f.(d)

let euler c =
  let f = f_vector c in
  let acc = ref 0 in
  Array.iteri (fun d n -> acc := !acc + if d mod 2 = 0 then n else -n) f;
  !acc

let vertices c =
  simplices_of_dim c 0
  |> List.map (fun s ->
         match Simplex.vertices s with
         | [ v ] -> v
         | [] | _ :: _ :: _ -> assert false)

let num_vertices c = count_of_dim c 0

let union a b =
  let set = SSet.union a.set b.set in
  if set == a.set then a else if set == b.set then b else wrap set

let inter a b =
  let set = SSet.inter a.set b.set in
  if set == a.set then a else if set == b.set then b else wrap set

let diff_facets a b = of_facets (List.filter (fun s -> not (SSet.mem s b.set)) (facets a))

let equal a b = SSet.equal a.set b.set

let subcomplex a b = SSet.subset a.set b.set

let skeleton k c = wrap (SSet.filter (fun s -> Simplex.dim s <= k) c.set)

let star v c =
  wrap
    (SSet.fold
       (fun s acc -> if Simplex.mem v s then add_closure s acc else acc)
       c.set SSet.empty)

let link v c =
  wrap
    (SSet.fold
       (fun s acc ->
         if Simplex.mem v s then
           let f = Simplex.remove v s in
           if Simplex.is_empty f then acc else SSet.add f acc
         else acc)
       c.set SSet.empty)

let join a b =
  let va = Vertex.Set.of_list (vertices a)
  and vb = Vertex.Set.of_list (vertices b) in
  if not (Vertex.Set.is_empty (Vertex.Set.inter va vb)) then
    invalid_arg "Complex.join: vertex sets not disjoint";
  if is_empty a then b
  else if is_empty b then a
  else
    let pieces =
      SSet.fold
        (fun s acc ->
          SSet.fold (fun t acc -> SSet.add (Simplex.union s t) acc) b.set acc)
        a.set SSet.empty
    in
    wrap (SSet.union a.set (SSet.union b.set pieces))

let map f c =
  (* the image of a closed set is closed: the image of a face is a face of
     the image *)
  wrap (SSet.fold (fun s acc -> SSet.add (Simplex.map f s) acc) c.set SSet.empty)

let filter_vertices p c =
  wrap (SSet.filter (fun s -> List.for_all p (Simplex.vertices s)) c.set)

let restrict_ids k c =
  filter_vertices
    (fun v -> match Vertex.pid v with Some p -> Pid.Set.mem p k | None -> false)
    c

let connected_components c =
  (* union-find keyed by Vertex.compare: vertex labels may contain sets with
     distinct internal shapes, so polymorphic equality is not usable *)
  let verts = vertices c in
  let parent =
    ref (List.fold_left (fun m v -> Vertex.Map.add v v m) Vertex.Map.empty verts)
  in
  let rec find v =
    let p = Vertex.Map.find v !parent in
    if Vertex.equal p v then v
    else begin
      let r = find p in
      parent := Vertex.Map.add v r !parent;
      r
    end
  in
  let union_vv u v =
    let ru = find u and rv = find v in
    if not (Vertex.equal ru rv) then parent := Vertex.Map.add ru rv !parent
  in
  List.iter
    (fun s ->
      match Simplex.vertices s with
      | [ u; v ] -> union_vv u v
      | [] | [ _ ] | _ :: _ :: _ -> assert false)
    (simplices_of_dim c 1);
  let comps =
    List.fold_left
      (fun m v ->
        let r = find v in
        let cur = Option.value ~default:Vertex.Set.empty (Vertex.Map.find_opt r m) in
        Vertex.Map.add r (Vertex.Set.add v cur) m)
      Vertex.Map.empty verts
  in
  Vertex.Map.fold (fun _ vs acc -> vs :: acc) comps []

let is_connected c =
  match connected_components c with [ _ ] -> true | [] | _ :: _ :: _ -> false

let is_pure c =
  match facets c with
  | [] -> true
  | f :: fs ->
      let d = Simplex.dim f in
      List.for_all (fun s -> Simplex.dim s = d) fs

let ids c =
  SSet.fold (fun s acc -> Pid.Set.union (Simplex.ids s) acc) c.set Pid.Set.empty

let pp_summary ppf c =
  Format.fprintf ppf "dim=%d f=(%a) chi=%d" (dim c)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (Array.to_list (f_vector c))
    (euler c)

let pp ppf c =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Simplex.pp)
    (facets c)
