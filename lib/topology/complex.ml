module SSet = Set.Make (Simplex)

type t = SSet.t
(* invariant: all elements nonempty; closed under taking nonempty faces *)

let empty = SSet.empty

let is_empty = SSet.is_empty

let add_facet s c =
  if Simplex.is_empty s then c
  else
    List.fold_left
      (fun acc f -> if Simplex.is_empty f then acc else SSet.add f acc)
      c (Simplex.faces s)

let of_facets fs = List.fold_left (fun acc s -> add_facet s acc) SSet.empty fs

let of_simplex s = add_facet s SSet.empty

let boundary_complex s = of_facets (Simplex.facets s)

let mem s c = SSet.mem s c

let mem_vertex v c = SSet.mem (Simplex.of_list [ v ]) c

let simplices c = SSet.elements c

let fold f c init = SSet.fold f c init

let iter f c = SSet.iter f c

let num_simplices = SSet.cardinal

let dim c = SSet.fold (fun s acc -> max acc (Simplex.dim s)) c (-1)

let facets c =
  (* s is a facet iff no coface of dimension dim+1 is present; closure makes
     this equivalent to maximality *)
  let covered =
    SSet.fold
      (fun s acc ->
        if Simplex.dim s = 0 then acc
        else List.fold_left (fun acc f -> SSet.add f acc) acc (Simplex.facets s))
      c SSet.empty
  in
  SSet.elements (SSet.diff c covered)

let simplices_of_dim c d =
  SSet.fold (fun s acc -> if Simplex.dim s = d then s :: acc else acc) c []
  |> List.rev

let count_of_dim c d =
  SSet.fold (fun s acc -> if Simplex.dim s = d then acc + 1 else acc) c 0

let f_vector c =
  let d = dim c in
  if d < 0 then [||]
  else begin
    let f = Array.make (d + 1) 0 in
    SSet.iter (fun s -> f.(Simplex.dim s) <- f.(Simplex.dim s) + 1) c;
    f
  end

let euler c =
  let f = f_vector c in
  let acc = ref 0 in
  Array.iteri (fun d n -> acc := !acc + if d mod 2 = 0 then n else -n) f;
  !acc

let vertices c =
  simplices_of_dim c 0
  |> List.map (fun s ->
         match Simplex.vertices s with
         | [ v ] -> v
         | [] | _ :: _ :: _ -> assert false)

let num_vertices c = count_of_dim c 0

let union = SSet.union

let inter = SSet.inter

let diff_facets a b = of_facets (List.filter (fun s -> not (SSet.mem s b)) (facets a))

let equal = SSet.equal

let subcomplex = SSet.subset

let skeleton k c = SSet.filter (fun s -> Simplex.dim s <= k) c

let star v c =
  SSet.fold
    (fun s acc -> if Simplex.mem v s then add_facet s acc else acc)
    c SSet.empty

let link v c =
  SSet.fold
    (fun s acc ->
      if Simplex.mem v s then
        let f = Simplex.remove v s in
        if Simplex.is_empty f then acc else SSet.add f acc
      else acc)
    c SSet.empty

let join a b =
  let va = Vertex.Set.of_list (vertices a)
  and vb = Vertex.Set.of_list (vertices b) in
  if not (Vertex.Set.is_empty (Vertex.Set.inter va vb)) then
    invalid_arg "Complex.join: vertex sets not disjoint";
  if is_empty a then b
  else if is_empty b then a
  else
    let pieces =
      SSet.fold
        (fun s acc ->
          SSet.fold (fun t acc -> SSet.add (Simplex.union s t) acc) b acc)
        a SSet.empty
    in
    SSet.union a (SSet.union b pieces)

let map f c =
  (* the image of a closed set is closed: the image of a face is a face of
     the image *)
  SSet.fold (fun s acc -> SSet.add (Simplex.map f s) acc) c SSet.empty

let filter_vertices p c =
  SSet.filter (fun s -> List.for_all p (Simplex.vertices s)) c

let restrict_ids k c =
  filter_vertices
    (fun v -> match Vertex.pid v with Some p -> Pid.Set.mem p k | None -> false)
    c

let connected_components c =
  (* union-find keyed by Vertex.compare: vertex labels may contain sets with
     distinct internal shapes, so polymorphic equality is not usable *)
  let verts = vertices c in
  let parent =
    ref (List.fold_left (fun m v -> Vertex.Map.add v v m) Vertex.Map.empty verts)
  in
  let rec find v =
    let p = Vertex.Map.find v !parent in
    if Vertex.equal p v then v
    else begin
      let r = find p in
      parent := Vertex.Map.add v r !parent;
      r
    end
  in
  let union_vv u v =
    let ru = find u and rv = find v in
    if not (Vertex.equal ru rv) then parent := Vertex.Map.add ru rv !parent
  in
  List.iter
    (fun s ->
      match Simplex.vertices s with
      | [ u; v ] -> union_vv u v
      | [] | [ _ ] | _ :: _ :: _ -> assert false)
    (simplices_of_dim c 1);
  let comps =
    List.fold_left
      (fun m v ->
        let r = find v in
        let cur = Option.value ~default:Vertex.Set.empty (Vertex.Map.find_opt r m) in
        Vertex.Map.add r (Vertex.Set.add v cur) m)
      Vertex.Map.empty verts
  in
  Vertex.Map.fold (fun _ vs acc -> vs :: acc) comps []

let is_connected c =
  match connected_components c with [ _ ] -> true | [] | _ :: _ :: _ -> false

let is_pure c =
  match facets c with
  | [] -> true
  | f :: fs ->
      let d = Simplex.dim f in
      List.for_all (fun s -> Simplex.dim s = d) fs

let ids c =
  SSet.fold (fun s acc -> Pid.Set.union (Simplex.ids s) acc) c Pid.Set.empty

let pp_summary ppf c =
  Format.fprintf ppf "dim=%d f=(%a) chi=%d" (dim c)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (Array.to_list (f_vector c))
    (euler c)

let pp ppf c =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Simplex.pp)
    (facets c)
