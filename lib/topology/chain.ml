module SSet = Simplex_sets.SSet

type t = SSet.t

let zero = SSet.empty

let check_same_dim set =
  match SSet.elements set with
  | [] -> ()
  | s :: rest ->
      let d = Simplex.dim s in
      if not (List.for_all (fun x -> Simplex.dim x = d) rest) then
        invalid_arg "Chain: mixed dimensions"

let of_simplices ss =
  (* duplicates cancel over Z/2 *)
  let set =
    List.fold_left
      (fun acc s -> if SSet.mem s acc then SSet.remove s acc else SSet.add s acc)
      SSet.empty ss
  in
  check_same_dim set;
  set

let simplices = SSet.elements

let is_zero = SSet.is_empty

let dim c = match SSet.min_elt_opt c with None -> -1 | Some s -> Simplex.dim s

let add a b =
  let sum = SSet.union (SSet.diff a b) (SSet.diff b a) in
  check_same_dim sum;
  sum

let boundary c =
  SSet.fold
    (fun s acc ->
      List.fold_left
        (fun acc f ->
          if Simplex.is_empty f then acc
          else if SSet.mem f acc then SSet.remove f acc
          else SSet.add f acc)
        acc (Simplex.facets s))
    c SSet.empty

let is_cycle c = is_zero (boundary c)

let is_boundary_in complex c =
  if is_zero c then true
  else begin
    let d = dim c in
    (* solve boundary(x) = c with x a (d+1)-chain of the complex: gaussian
       elimination on the columns of boundary_{d+1} augmented with c *)
    let rows =
      List.sort Simplex.compare (Complex.simplices_of_dim complex d)
      |> List.mapi (fun i s -> (s, i))
    in
    let index s =
      match List.find_opt (fun (x, _) -> Simplex.equal x s) rows with
      | Some (_, i) -> Some i
      | None -> None
    in
    let cols =
      Complex.simplices_of_dim complex (d + 1)
      |> List.map (fun s ->
             Simplex.facets s
             |> List.filter_map index
             |> List.sort_uniq Int.compare)
    in
    let target =
      SSet.elements c |> List.filter_map index |> List.sort_uniq Int.compare
    in
    if List.length target <> SSet.cardinal c then false
    else begin
      (* c is a boundary iff adding it to the column space does not raise
         the rank *)
      let rank_without = Z2_matrix.rank cols in
      let rank_with = Z2_matrix.rank (cols @ [ target ]) in
      rank_with = rank_without
    end
  end

let fundamental_class complex =
  let d = Complex.dim complex in
  of_simplices (Complex.simplices_of_dim complex d)

let pp ppf c =
  if is_zero c then Format.pp_print_string ppf "0"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " + ")
      Simplex.pp ppf (simplices c)
