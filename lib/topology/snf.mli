(** Smith normal form of integer matrices.

    Used by {!Homology_z} for integral simplicial homology: the diagonal of
    the Smith form of a boundary matrix gives its rank and the torsion
    coefficients of the homology group below it.  Matrices here are small
    and dense; entries use native [int]s with minimal-pivot selection to
    keep growth tame. *)

type t = int array array
(** Row-major matrix (possibly empty). *)

val smith_diagonal : t -> int list
(** The nonzero diagonal entries [d_1 | d_2 | ... | d_r] of the Smith
    normal form, each positive, each dividing the next.  The length is the
    rank. *)

val rank : t -> int

val pp : Format.formatter -> t -> unit
