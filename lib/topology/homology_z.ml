type group = { rank : int; torsion : int list }

let group_to_string g =
  let free =
    match g.rank with 0 -> [] | 1 -> [ "Z" ] | r -> [ Printf.sprintf "Z^%d" r ]
  in
  let tors = List.map (Printf.sprintf "Z/%d") g.torsion in
  match free @ tors with [] -> "0" | parts -> String.concat " + " parts

(* Row index keyed by interned vertex-id arrays (Hashtbl, not
   Map.Make(Simplex)): rank and torsion are invariant under row order, so
   any fixed enumeration of the (d-1)-simplexes works. *)
let index_of_dim c d =
  let idx : (int array, int) Hashtbl.t = Hashtbl.create 256 in
  let n = ref 0 in
  Complex.iter
    (fun s ->
      if Simplex.dim s = d then begin
        Hashtbl.replace idx (Intern.key s) !n;
        incr n
      end)
    c;
  (idx, !n)

let boundary_matrix_z c d =
  if d <= 0 then invalid_arg "Homology_z.boundary_matrix_z: dimension must be >= 1";
  let rows_idx, nrows = index_of_dim c (d - 1) in
  let cols = Complex.simplices_of_dim c d in
  let ncols = List.length cols in
  let m = Array.make_matrix nrows ncols 0 in
  List.iteri
    (fun j s ->
      let a = Intern.key s in
      let n = Array.length a in
      (* facets in vertex-deletion order, so the i-th facet carries sign
         (-1)^i *)
      for i = 0 to n - 1 do
        let f = Array.make (n - 1) 0 in
        Array.blit a 0 f 0 i;
        Array.blit a (i + 1) f i (n - 1 - i);
        let r = Hashtbl.find rows_idx f in
        m.(r).(j) <- (if i mod 2 = 0 then 1 else -1)
      done)
    cols;
  m

(* diag_d = smith diagonal of boundary_d (with boundary_0 = augmentation of
   rank 1 on nonempty complexes, torsion-free).  Then
   H_d = Z^{n_d - rank_d - rank_{d+1}} + torsion(boundary_{d+1}). *)
let homology_gen ~reduced ?max_dim c =
  let dim = Complex.dim c in
  let top = match max_dim with None -> dim | Some m -> min m dim in
  if dim < 0 then [||]
  else begin
    let upper = min (top + 1) dim in
    let diag = Array.make (upper + 1) [] in
    for d = 1 to upper do
      diag.(d) <- Snf.smith_diagonal (boundary_matrix_z c d)
    done;
    let rank_of d =
      if d = 0 then if reduced && not (Complex.is_empty c) then 1 else 0
      else if d <= upper then List.length diag.(d)
      else 0
    in
    Array.init (top + 1) (fun d ->
        let chains = Complex.count_of_dim c d in
        let rank_above = if d + 1 <= dim then rank_of (d + 1) else 0 in
        let free = chains - rank_of d - rank_above in
        let torsion =
          if d + 1 <= upper then List.filter (fun x -> x > 1) diag.(d + 1)
          else []
        in
        { rank = free; torsion })
  end

let homology ?max_dim c = homology_gen ~reduced:false ?max_dim c

let reduced_homology ?max_dim c = homology_gen ~reduced:true ?max_dim c

let is_torsion_free ?max_dim c =
  Array.for_all (fun g -> g.torsion = []) (homology ?max_dim c)

let betti_z ?max_dim c = Array.map (fun g -> g.rank) (homology ?max_dim c)
