type t = Proc of Pid.t * Label.t | Anon of int | Bary of t list

let proc p l = Proc (p, l)

let anon i = Anon i

let rank = function Proc _ -> 0 | Anon _ -> 1 | Bary _ -> 2

let rec compare a b =
  match (a, b) with
  | Proc (p, l), Proc (q, m) ->
      let c = Pid.compare p q in
      if c <> 0 then c else Label.compare l m
  | Anon i, Anon j -> Int.compare i j
  | Bary x, Bary y -> compare_list x y
  | (Proc _ | Anon _ | Bary _), _ -> Int.compare (rank a) (rank b)

and compare_list x y =
  match (x, y) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | a :: x', b :: y' ->
      let c = compare a b in
      if c <> 0 then c else compare_list x' y'

let equal a b = compare a b = 0

let rec pp ppf = function
  | Proc (p, Label.Unit) -> Pid.pp ppf p
  | Proc (p, l) -> Format.fprintf ppf "%a:%a" Pid.pp p Label.pp l
  | Anon i -> Format.fprintf ppf "v%d" i
  | Bary vs ->
      Format.fprintf ppf "b(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
           pp)
        vs

let pid = function Proc (p, _) -> Some p | Anon _ | Bary _ -> None

let label = function Proc (_, l) -> Some l | Anon _ | Bary _ -> None

let relabel f = function
  | Proc (p, l) -> Proc (p, f l)
  | (Anon _ | Bary _) as v -> v

module Self = struct
  type nonrec t = t

  let compare = compare
end

module Set = Stdlib.Set.Make (Self)
module Map = Stdlib.Map.Make (Self)
