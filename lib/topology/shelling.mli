(** Shellability.

    A pure [d]-complex is {e shellable} if its facets can be ordered
    [F_1, ..., F_t] such that each [F_j] (for [j >= 2]) meets the union of
    its predecessors in a nonempty union of codimension-1 faces of [F_j].
    Shellable complexes are homotopy equivalent to wedges of [d]-spheres —
    precisely the class for which homological and topological connectivity
    agree, which is why the test-suite checks shellability of the paper's
    pseudospheres and one-round complexes. *)

val is_shelling_order : Simplex.t list -> bool
(** Is the given facet sequence a shelling?  (Uses the standard pairwise
    criterion: for every [i < j] there is [l < j] with
    [F_i /\ F_j <= F_l /\ F_j] and [dim (F_l /\ F_j) = dim F_j - 1].) *)

val find_shelling : ?budget:int -> Complex.t -> Simplex.t list option
(** Backtracking search for a shelling order of a pure complex.  Returns
    [None] if the complex is not pure, no shelling exists, or the node
    budget (default 2 million) is exhausted. *)

val is_shellable : ?budget:int -> Complex.t -> bool
(** [find_shelling] succeeds. *)
