let layout ?(iterations = 300) ?(seed = 1) c =
  let vertices = Array.of_list (Complex.vertices c) in
  let n = Array.length vertices in
  if n = 0 then []
  else begin
    let index =
      let m = ref Vertex.Map.empty in
      Array.iteri (fun i v -> m := Vertex.Map.add v i !m) vertices;
      !m
    in
    let edges =
      Complex.simplices_of_dim c 1
      |> List.filter_map (fun s ->
             match Simplex.vertices s with
             | [ u; v ] ->
                 Some (Vertex.Map.find u index, Vertex.Map.find v index)
             | _ -> None)
    in
    (* deterministic jittered circle start *)
    let pos =
      Array.init n (fun i ->
          let angle = 2.0 *. Float.pi *. float_of_int i /. float_of_int n in
          let jitter = float_of_int ((Hashtbl.hash (seed, i) mod 100) - 50) /. 2000.0 in
          (cos angle +. jitter, sin angle -. jitter))
    in
    let k = 1.6 /. sqrt (float_of_int n) in
    for _ = 1 to iterations do
      let disp = Array.make n (0.0, 0.0) in
      (* repulsion between all pairs *)
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let xi, yi = pos.(i) and xj, yj = pos.(j) in
          let dx = xi -. xj and dy = yi -. yj in
          let d2 = max 1e-6 ((dx *. dx) +. (dy *. dy)) in
          let f = k *. k /. d2 in
          let fx = dx *. f and fy = dy *. f in
          let dxi, dyi = disp.(i) in
          disp.(i) <- (dxi +. fx, dyi +. fy);
          let dxj, dyj = disp.(j) in
          disp.(j) <- (dxj -. fx, dyj -. fy)
        done
      done;
      (* attraction along edges *)
      List.iter
        (fun (i, j) ->
          let xi, yi = pos.(i) and xj, yj = pos.(j) in
          let dx = xi -. xj and dy = yi -. yj in
          let d = max 1e-6 (sqrt ((dx *. dx) +. (dy *. dy))) in
          let f = d /. k *. 0.05 in
          let fx = dx *. f and fy = dy *. f in
          let dxi, dyi = disp.(i) in
          disp.(i) <- (dxi -. fx, dyi -. fy);
          let dxj, dyj = disp.(j) in
          disp.(j) <- (dxj +. fx, dyj +. fy))
        edges;
      (* apply with cooling *)
      Array.iteri
        (fun i (dx, dy) ->
          let x, y = pos.(i) in
          let limit = 0.05 in
          let d = max 1e-6 (sqrt ((dx *. dx) +. (dy *. dy))) in
          let scale = Float.min limit d /. d in
          pos.(i) <- (x +. (dx *. scale), y +. (dy *. scale)))
        disp
    done;
    (* normalize to the unit box *)
    let xs = Array.map fst pos and ys = Array.map snd pos in
    let minx = Array.fold_left min xs.(0) xs and maxx = Array.fold_left max xs.(0) xs in
    let miny = Array.fold_left min ys.(0) ys and maxy = Array.fold_left max ys.(0) ys in
    let spanx = max 1e-6 (maxx -. minx) and spany = max 1e-6 (maxy -. miny) in
    Array.to_list
      (Array.mapi
         (fun i v ->
           let x, y = pos.(i) in
           (v, ((x -. minx) /. spanx, (y -. miny) /. spany)))
         vertices)
  end

let svg ?(width = 640) ?(height = 640) ?iterations c =
  let positions = layout ?iterations c in
  let coords =
    List.fold_left
      (fun m (v, (x, y)) ->
        let margin = 60.0 in
        let px = margin +. (x *. (float_of_int width -. (2.0 *. margin))) in
        let py = margin +. (y *. (float_of_int height -. (2.0 *. margin))) in
        Vertex.Map.add v (px, py) m)
      Vertex.Map.empty positions
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        viewBox=\"0 0 %d %d\">\n"
       width height width height);
  Buffer.add_string buf
    "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  (* triangles *)
  List.iter
    (fun s ->
      match Simplex.vertices s with
      | [ a; b; c3 ] ->
          let xa, ya = Vertex.Map.find a coords in
          let xb, yb = Vertex.Map.find b coords in
          let xc, yc = Vertex.Map.find c3 coords in
          Buffer.add_string buf
            (Printf.sprintf
               "<polygon points=\"%.1f,%.1f %.1f,%.1f %.1f,%.1f\" \
                fill=\"#4a90d9\" fill-opacity=\"0.18\" stroke=\"none\"/>\n"
               xa ya xb yb xc yc)
      | _ -> ())
    (Complex.simplices_of_dim c 2);
  (* edges *)
  List.iter
    (fun s ->
      match Simplex.vertices s with
      | [ a; b ] ->
          let xa, ya = Vertex.Map.find a coords in
          let xb, yb = Vertex.Map.find b coords in
          Buffer.add_string buf
            (Printf.sprintf
               "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
                stroke=\"#2c3e50\" stroke-width=\"1.2\"/>\n"
               xa ya xb yb)
      | _ -> ())
    (Complex.simplices_of_dim c 1);
  (* vertices with labels *)
  List.iter
    (fun (v, _) ->
      let x, y = Vertex.Map.find v coords in
      Buffer.add_string buf
        (Printf.sprintf
           "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"4.5\" fill=\"#e74c3c\"/>\n" x y);
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" \
            font-family=\"monospace\" fill=\"#333\">%s</text>\n"
           (x +. 6.0) (y -. 6.0)
           (Format.asprintf "%a" Vertex.pp v)))
    positions;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let save_svg path ?width ?height c =
  let oc = open_out path in
  output_string oc (svg ?width ?height c);
  close_out oc

(* Graphviz export of the 1-skeleton.  Vertices are numbered by their
   position in [Complex.vertices] (the canonical order), the same
   bookkeeping the SVG path uses for its coordinate map. *)
let dot c =
  let index =
    let m = ref Vertex.Map.empty in
    List.iteri (fun i v -> m := Vertex.Map.add v i !m) (Complex.vertices c);
    !m
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph complex {\n";
  Vertex.Map.iter
    (fun v i ->
      Buffer.add_string buf
        (Printf.sprintf "  v%d [label=%S];\n" i (Format.asprintf "%a" Vertex.pp v)))
    index;
  List.iter
    (fun s ->
      match Simplex.vertices s with
      | [ u; v ] ->
          Buffer.add_string buf
            (Printf.sprintf "  v%d -- v%d;\n" (Vertex.Map.find u index)
               (Vertex.Map.find v index))
      | _ -> ())
    (Complex.simplices_of_dim c 1);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let save_dot path c =
  let oc = open_out path in
  output_string oc (dot c);
  close_out oc
