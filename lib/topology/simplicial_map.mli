(** Simplicial maps and isomorphisms.

    A vertex map [mu] between complexes is {e simplicial} when the image of
    every simplex is a simplex of the codomain.  Lemmas 11, 14 and 19 of the
    paper exhibit explicit vertex maps and argue that they are simplicial,
    one-to-one and onto; {!is_isomorphism_via} checks exactly that.  A
    generic backtracking isomorphism search is provided for cross-checking
    complexes whose vertex labels differ (e.g. enumerated-execution
    complexes vs pseudosphere formulas). *)

type vertex_map = Vertex.t -> Vertex.t

val is_simplicial : vertex_map -> Complex.t -> Complex.t -> bool
(** [is_simplicial mu dom cod]: does [mu] send every simplex of [dom] to a
    simplex of [cod]? *)

val image : vertex_map -> Complex.t -> Complex.t
(** The image complex (same as {!Complex.map}). *)

val is_injective_on : vertex_map -> Complex.t -> bool
(** Is [mu] injective on the vertices of the complex? *)

val is_isomorphism_via : vertex_map -> Complex.t -> Complex.t -> bool
(** [is_isomorphism_via mu dom cod]: [mu] is simplicial, injective on
    vertices, and its image is exactly [cod] — witnessing [dom ~= cod]
    through [mu]. *)

val find_isomorphism :
  ?respect_pids:bool -> Complex.t -> Complex.t -> vertex_map option
(** Backtracking search for a simplicial isomorphism.  With
    [respect_pids] (default [true]) only maps preserving the process id of
    [Proc] vertices are considered — the right notion for chromatic
    (coloured) complexes, and a large pruning win.  Returns a total map on
    the domain's vertices. *)

val are_isomorphic : ?respect_pids:bool -> Complex.t -> Complex.t -> bool
