(** Universal vertex labels.

    The paper decorates simplex vertices with values "taken from an arbitrary
    domain": input values, sets of processes heard from (Lemmas 11 and 14),
    microround view vectors (Lemma 19), and — for iterated multi-round
    complexes — full-information views nesting all of the above.  A single
    ordered, printable universal type keeps every complex in one concrete
    representation that all libraries can share. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pid of Pid.t
  | Pid_set of Pid.Set.t
  | Vec of int array  (** e.g. the semi-synchronous views (mu_0, ..., mu_n) *)
  | Pair of t * t
  | List of t list

val compare : t -> t -> int
(** Total structural order.  Constructors are ranked in declaration order;
    equal constructors compare componentwise. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val pid_set : Pid.t list -> t
(** [pid_set ps] is [Pid_set] of the given pids. *)

val ints : int list -> t
(** [ints xs] is [List [Int x; ...]]. *)
