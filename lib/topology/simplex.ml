type t = Vertex.t array
(* invariant: strictly sorted by Vertex.compare *)

let empty = [||]

let of_list vs =
  let arr = Array.of_list (List.sort_uniq Vertex.compare vs) in
  arr

let of_sorted_list vs = Array.of_list vs

let of_procs ps = of_list (List.map (fun (p, l) -> Vertex.proc p l) ps)

let proc_simplex n =
  of_list (List.init (n + 1) (fun i -> Vertex.proc i Label.Unit))

let dim s = Array.length s - 1

let cardinal = Array.length

let is_empty s = Array.length s = 0

let vertices = Array.to_list

let vertex_array s = s

let mem v s =
  (* binary search *)
  let lo = ref 0 and hi = ref (Array.length s) in
  let found = ref false in
  while (not !found) && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let c = Vertex.compare v s.(mid) in
    if c = 0 then found := true
    else if c < 0 then hi := mid
    else lo := mid + 1
  done;
  !found

let subset a b =
  let la = Array.length a and lb = Array.length b in
  if la > lb then false
  else
    let rec loop i j =
      if i >= la then true
      else if j >= lb then false
      else
        let c = Vertex.compare a.(i) b.(j) in
        if c = 0 then loop (i + 1) (j + 1)
        else if c > 0 then loop i (j + 1)
        else false
    in
    loop 0 0

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let c = Int.compare la lb in
  if c <> 0 then c
  else
    let rec loop i =
      if i >= la then 0
      else
        let c = Vertex.compare a.(i) b.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let equal a b = compare a b = 0

let proper_subset a b = subset a b && not (equal a b)

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       Vertex.pp)
    (vertices s)

let add v s =
  (* single sorted insert: binary-search the unique position of [v] and
     splice it in, which preserves the strictly-sorted invariant without
     the O(n log n) re-sort that [of_list] would pay *)
  let n = Array.length s in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Vertex.compare v s.(mid) <= 0 then hi := mid else lo := mid + 1
  done;
  let i = !lo in
  if i < n && Vertex.compare v s.(i) = 0 then s
  else begin
    let out = Array.make (n + 1) v in
    Array.blit s 0 out 0 i;
    Array.blit s i out (i + 1) (n - i);
    out
  end

let remove v s = Array.of_seq (Seq.filter (fun u -> not (Vertex.equal u v)) (Array.to_seq s))

let union a b =
  (* merge of two sorted arrays *)
  let la = Array.length a and lb = Array.length b in
  let out = ref [] in
  let i = ref 0 and j = ref 0 in
  while !i < la && !j < lb do
    let c = Vertex.compare a.(!i) b.(!j) in
    if c = 0 then begin
      out := a.(!i) :: !out;
      incr i;
      incr j
    end
    else if c < 0 then begin
      out := a.(!i) :: !out;
      incr i
    end
    else begin
      out := b.(!j) :: !out;
      incr j
    end
  done;
  while !i < la do
    out := a.(!i) :: !out;
    incr i
  done;
  while !j < lb do
    out := b.(!j) :: !out;
    incr j
  done;
  Array.of_list (List.rev !out)

let inter a b = Array.of_seq (Seq.filter (fun v -> mem v b) (Array.to_seq a))

let diff a b = Array.of_seq (Seq.filter (fun v -> not (mem v b)) (Array.to_seq a))

let facets s =
  let n = Array.length s in
  if n = 0 then []
  else
    List.init n (fun i ->
        Array.init (n - 1) (fun j -> if j < i then s.(j) else s.(j + 1)))

let faces s =
  (* all 2^n subsets, preserving sortedness *)
  let n = Array.length s in
  let rec loop i =
    if i >= n then [ [] ]
    else
      let rest = loop (i + 1) in
      List.rev_append (List.rev_map (fun f -> s.(i) :: f) rest) rest
  in
  List.map Array.of_list (loop 0)

let proper_faces s =
  List.filter (fun f -> Array.length f > 0 && Array.length f < Array.length s) (faces s)

let map f s = of_list (List.map f (vertices s))

let ids s =
  Array.fold_left
    (fun acc v -> match Vertex.pid v with Some p -> Pid.Set.add p acc | None -> acc)
    Pid.Set.empty s

let labels s =
  Array.fold_left
    (fun acc v -> match Vertex.label v with Some l -> l :: acc | None -> acc)
    [] s
  |> List.rev

let label_of p s =
  Array.fold_left
    (fun acc v ->
      match acc with
      | Some _ -> acc
      | None -> (
          match v with
          | Vertex.Proc (q, l) when Pid.equal p q -> Some l
          | Vertex.Proc _ | Vertex.Anon _ | Vertex.Bary _ -> None))
    None s

let is_chromatic s =
  let n = Array.length s in
  Pid.Set.cardinal (ids s) = n
  && Array.for_all
       (function Vertex.Proc _ -> true | Vertex.Anon _ | Vertex.Bary _ -> false)
       s

let without_ids k s =
  Array.of_seq
    (Seq.filter
       (fun v ->
         match Vertex.pid v with Some p -> not (Pid.Set.mem p k) | None -> true)
       (Array.to_seq s))

let restrict_ids k s =
  Array.of_seq
    (Seq.filter
       (fun v ->
         match Vertex.pid v with Some p -> Pid.Set.mem p k | None -> false)
       (Array.to_seq s))
