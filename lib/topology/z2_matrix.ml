type col = int list

let rec sym_diff a b =
  match (a, b) with
  | [], c | c, [] -> c
  | x :: a', y :: b' ->
      if x < y then x :: sym_diff a' b
      else if y < x then y :: sym_diff a b'
      else sym_diff a' b'

let rec low = function
  | [] -> None
  | [ x ] -> Some x
  | _ :: rest -> low rest

let is_zero c = c = []

let reduce cols =
  let pivot : (int, col) Hashtbl.t = Hashtbl.create 64 in
  let reduce_one col =
    let rec loop col =
      match low col with
      | None -> col
      | Some l -> (
          match Hashtbl.find_opt pivot l with
          | None ->
              Hashtbl.replace pivot l col;
              col
          | Some other -> loop (sym_diff col other))
    in
    loop col
  in
  List.map reduce_one cols

let rank cols =
  List.fold_left
    (fun acc col -> if is_zero col then acc else acc + 1)
    0 (reduce cols)
