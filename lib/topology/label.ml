type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pid of Pid.t
  | Pid_set of Pid.Set.t
  | Vec of int array
  | Pair of t * t
  | List of t list

let rank = function
  | Unit -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Str _ -> 3
  | Pid _ -> 4
  | Pid_set _ -> 5
  | Vec _ -> 6
  | Pair _ -> 7
  | List _ -> 8

let compare_array a b =
  let la = Array.length a and lb = Array.length b in
  let c = Int.compare la lb in
  if c <> 0 then c
  else
    let rec loop i =
      if i >= la then 0
      else
        let c = Int.compare a.(i) b.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let rec compare a b =
  match (a, b) with
  | Unit, Unit -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Pid x, Pid y -> Pid.compare x y
  | Pid_set x, Pid_set y -> Pid.Set.compare x y
  | Vec x, Vec y -> compare_array x y
  | Pair (x1, x2), Pair (y1, y2) ->
      let c = compare x1 y1 in
      if c <> 0 then c else compare x2 y2
  | List x, List y -> compare_list x y
  | ( (Unit | Bool _ | Int _ | Str _ | Pid _ | Pid_set _ | Vec _ | Pair _ | List _),
      _ ) ->
      Int.compare (rank a) (rank b)

and compare_list x y =
  match (x, y) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | a :: x', b :: y' ->
      let c = compare a b in
      if c <> 0 then c else compare_list x' y'

let equal a b = compare a b = 0

let rec pp ppf = function
  | Unit -> Format.pp_print_string ppf "()"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Str s -> Format.fprintf ppf "%S" s
  | Pid p -> Pid.pp ppf p
  | Pid_set s -> Pid.Set.pp ppf s
  | Vec v ->
      Format.fprintf ppf "<%a>"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        (Array.to_list v)
  | Pair (a, b) -> Format.fprintf ppf "(%a,%a)" pp a pp b
  | List xs ->
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
           pp)
        xs

let to_string l = Format.asprintf "%a" pp l

let pid_set ps = Pid_set (Pid.Set.of_list ps)

let ints xs = List (Stdlib.List.map (fun x -> Int x) xs)
