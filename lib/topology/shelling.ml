let meets_previous_properly prefix f =
  (* every earlier facet's intersection with f must sit inside some
     codimension-1 earlier intersection *)
  let d = Simplex.dim f in
  let inters = List.map (fun g -> Simplex.inter g f) prefix in
  List.for_all
    (fun i ->
      Simplex.dim i = d - 1
      || List.exists
           (fun l -> Simplex.dim l = d - 1 && Simplex.subset i l)
           inters)
    inters
  && List.exists (fun i -> Simplex.dim i = d - 1) inters

let is_shelling_order = function
  | [] -> true
  | first :: rest ->
      let d = Simplex.dim first in
      List.for_all (fun f -> Simplex.dim f = d) rest
      &&
      let rec loop prefix = function
        | [] -> true
        | f :: later ->
            meets_previous_properly prefix f && loop (f :: prefix) later
      in
      (match rest with [] -> true | _ -> loop [ first ] rest)

exception Out_of_budget

let find_shelling ?(budget = 2_000_000) c =
  if not (Complex.is_pure c) then None
  else
    match Complex.facets c with
    | [] -> Some []
    | [ f ] -> Some [ f ]
    | facets ->
        let nodes = ref 0 in
        let rec go prefix remaining =
          incr nodes;
          if !nodes > budget then raise Out_of_budget;
          match remaining with
          | [] -> Some (List.rev prefix)
          | _ ->
              let rec try_each seen = function
                | [] -> None
                | f :: rest -> (
                    let candidate_ok =
                      prefix = [] || meets_previous_properly prefix f
                    in
                    if candidate_ok then
                      match go (f :: prefix) (List.rev_append seen rest) with
                      | Some order -> Some order
                      | None -> try_each (f :: seen) rest
                    else try_each (f :: seen) rest)
              in
              try_each [] remaining
        in
        (try go [] facets with Out_of_budget -> None)

let is_shellable ?budget c = Option.is_some (find_shelling ?budget c)
