module SSet = Set.Make (Simplex)
module SMap = Map.Make (Simplex)
