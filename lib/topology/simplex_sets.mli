(** The shared [Set]/[Map] instantiations over {!Simplex}.

    Several modules need simplex-keyed sets and maps; instantiating the
    functors once here keeps the element/key types visibly identical across
    the library and avoids paying functor elaboration per module. *)

module SSet : Set.S with type elt = Simplex.t
module SMap : Map.S with type key = Simplex.t
