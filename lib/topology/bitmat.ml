(* Dense bit-packed Z/2 matrices.  A column is an [int array] of
   [Sys.int_size]-bit words; word [w] bit [b] encodes row [w * bits + b].
   Rank uses the same low-based column reduction as {!Z2_matrix}, but with
   word-level XOR and an O(1) pivot table indexed by row. *)

let bits = Sys.int_size

type t = { rows : int; cols : int array array }

let words_for rows = (rows + bits - 1) / bits

let create ~rows ~cols =
  { rows; cols = Array.init cols (fun _ -> Array.make (words_for rows) 0) }

let dims t = (t.rows, Array.length t.cols)

let set t ~row ~col =
  if row < 0 || row >= t.rows then invalid_arg "Bitmat.set: row out of range";
  let c = t.cols.(col) in
  c.(row / bits) <- c.(row / bits) lor (1 lsl (row mod bits))

let get t ~row ~col = t.cols.(col).(row / bits) land (1 lsl (row mod bits)) <> 0

let of_columns ~rows cols =
  let t = create ~rows ~cols:(List.length cols) in
  List.iteri (fun j col -> List.iter (fun row -> set t ~row ~col:j) col) cols;
  t

(* Index of the highest set bit of [w]; [w] must be nonzero. *)
let top_bit w =
  let r = ref 0 and w = ref w in
  if !w lsr 32 <> 0 then begin r := !r + 32; w := !w lsr 32 end;
  if !w lsr 16 <> 0 then begin r := !r + 16; w := !w lsr 16 end;
  if !w lsr 8 <> 0 then begin r := !r + 8; w := !w lsr 8 end;
  if !w lsr 4 <> 0 then begin r := !r + 4; w := !w lsr 4 end;
  if !w lsr 2 <> 0 then begin r := !r + 2; w := !w lsr 2 end;
  if !w lsr 1 <> 0 then incr r;
  !r

(* Highest set bit of [col], scanning no higher than word [hint] (the
   caller guarantees all words above [hint] are zero).  Returns -1 on the
   zero column. *)
let low_from col hint =
  let i = ref hint in
  while !i >= 0 && col.(!i) = 0 do decr i done;
  if !i < 0 then -1 else (!i * bits) + top_bit col.(!i)

let rank t =
  let nwords = words_for t.rows in
  (* pivot.(r) = index of the column whose low is row r, or -1 *)
  let pivot = Array.make (max t.rows 1) (-1) in
  let cols = Array.map Array.copy t.cols in
  let rank = ref 0 in
  Array.iteri
    (fun j col ->
      let hint = ref (nwords - 1) in
      let rec reduce () =
        let l = low_from col !hint in
        if l >= 0 then begin
          hint := l / bits;
          match pivot.(l) with
          | -1 ->
              pivot.(l) <- j;
              incr rank
          | p ->
              (* the pivot column's low is also l, so it is zero above
                 word l/bits and the XOR can stop there *)
              let other = cols.(p) in
              for w = 0 to !hint do
                col.(w) <- col.(w) lxor other.(w)
              done;
              reduce ()
        end
      in
      reduce ())
    cols;
  !rank

let rank_of_columns ~rows cols = rank (of_columns ~rows cols)

(* Single-word fast path: when the matrix has at most [bits] rows each
   column is one int mask, the pivot table stores reduced masks directly
   (0 = no pivot yet: a zero mask never owns a pivot), and the whole
   reduction runs on registers. *)
let rank_words ~rows cols =
  if rows > bits then invalid_arg "Bitmat.rank_words: too many rows";
  let pivot = Array.make (max rows 1) 0 in
  let rank = ref 0 in
  let rec reduce m =
    if m <> 0 then begin
      let l = top_bit m in
      let p = Array.unsafe_get pivot l in
      if p = 0 then begin
        Array.unsafe_set pivot l m;
        incr rank
      end
      else reduce (m lxor p)
    end
  in
  Array.iter reduce cols;
  !rank
