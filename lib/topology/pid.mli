(** Process identities.

    Processes are named [P0, P1, ..., Pn] following the paper's convention of
    [n + 1] processes.  A pid is a small non-negative integer. *)

type t = int

val of_int : int -> t
(** [of_int i] is the pid of process [Pi].  @raise Invalid_argument if
    [i < 0]. *)

val to_int : t -> int

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints as [P0], [P1], ... *)

(** Finite sets of pids, ordered lexicographically when compared as sets
    (smallest-element-first), as used for the failure-set orderings of
    Sections 7 and 8. *)
module Set : sig
  include Stdlib.Set.S with type elt = t

  val pp : Format.formatter -> t -> unit

  val of_range : int -> int -> t
  (** [of_range lo hi] is [{lo, ..., hi}] ([empty] if [hi < lo]). *)

  val compare_lex : t -> t -> int
  (** Lexicographic order on the sorted element sequences: the empty set
      first, then by first element, etc.  This is a total order distinct
      from the structural {!compare}. *)

  val compare_size_lex : t -> t -> int
  (** The order used by Lemma 15: sets ordered first by cardinality, then
      lexicographically ({!compare_lex}).  The empty set comes first,
      followed by singletons, then two-element sets, and so on. *)
end

module Map : Stdlib.Map.S with type key = t

val universe : int -> Set.t
(** [universe n] is the pid set [{0, ..., n}] of all [n + 1] processes. *)

val all : int -> t list
(** [all n] is the list [[0; ...; n]] of all [n + 1] pids. *)
