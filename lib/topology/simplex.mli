(** Abstract simplexes.

    A simplex is a finite set of distinct vertices; an [n]-simplex has
    [n + 1] vertices.  Following the paper's convention, a simplex of
    dimension [d < 0] is the empty simplex.  The representation is a strictly
    sorted vertex array, so structural equality coincides with set
    equality. *)

type t

val empty : t

val of_list : Vertex.t list -> t
(** Sorts and deduplicates. *)

val of_sorted_list : Vertex.t list -> t
(** Unchecked fast path: the list must already be strictly sorted by
    {!Vertex.compare}.  Used by bulk constructors (e.g. pseudosphere
    realization) that produce vertices in order by construction. *)

val of_procs : (Pid.t * Label.t) list -> t
(** Convenience: a chromatic simplex from (pid, label) pairs. *)

val proc_simplex : int -> t
(** [proc_simplex n] is the paper's base simplex [P^n]: [n + 1] vertices
    labelled [P0 ... Pn], each with the [Unit] label. *)

val dim : t -> int
(** [-1] for the empty simplex. *)

val cardinal : t -> int

val is_empty : t -> bool

val vertices : t -> Vertex.t list

val vertex_array : t -> Vertex.t array
(** The underlying sorted array (do not mutate). *)

val mem : Vertex.t -> t -> bool

val subset : t -> t -> bool
(** [subset s t]: is [s] a (not necessarily proper) face of [t]? *)

val proper_subset : t -> t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val add : Vertex.t -> t -> t

val remove : Vertex.t -> t -> t

val union : t -> t -> t
(** Vertex-set union (the join's vertex set). *)

val inter : t -> t -> t

val diff : t -> t -> t

val facets : t -> t list
(** All codimension-1 faces (empty list for the empty simplex). *)

val faces : t -> t list
(** All faces, proper and improper, {e including} the empty simplex. *)

val proper_faces : t -> t list
(** All nonempty proper faces. *)

val map : (Vertex.t -> Vertex.t) -> t -> t
(** Image under a vertex map; collapsing (non-injective) maps shrink the
    simplex. *)

val ids : t -> Pid.Set.t
(** Process ids of the [Proc] vertices — the paper's [ids(S)]. *)

val labels : t -> Label.t list
(** Labels of the [Proc] vertices — the paper's [vals(S)]. *)

val label_of : Pid.t -> t -> Label.t option
(** The label of the vertex coloured by the given pid, if present. *)

val is_chromatic : t -> bool
(** All vertices are [Proc] vertices with pairwise distinct pids. *)

val without_ids : Pid.Set.t -> t -> t
(** [without_ids k s] is the paper's [S \ K]: the face of [s] spanned by the
    [Proc] vertices whose pid is not in [k]. *)

val restrict_ids : Pid.Set.t -> t -> t
(** The face spanned by the [Proc] vertices whose pid {e is} in the set. *)
