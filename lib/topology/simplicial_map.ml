type vertex_map = Vertex.t -> Vertex.t

let is_simplicial mu dom cod =
  List.for_all
    (fun s -> Complex.mem (Simplex.map mu s) cod)
    (Complex.facets dom)

let image = Complex.map

let is_injective_on mu dom =
  let vs = Complex.vertices dom in
  let images = List.map mu vs in
  Vertex.Set.cardinal (Vertex.Set.of_list images) = List.length vs

let is_isomorphism_via mu dom cod =
  is_simplicial mu dom cod
  && is_injective_on mu dom
  && Complex.equal (image mu dom) cod

(* Backtracking isomorphism search.  Vertices of the domain are processed in
   a fixed order; candidate images must match on (degree profile, pid when
   [respect_pids]); a partial assignment is extended only if every
   fully-assigned domain simplex maps to a codomain simplex and the map
   stays injective.  Finally the full map must be an isomorphism (checked by
   facet counts + image equality). *)
let find_isomorphism ?(respect_pids = true) dom cod =
  let fd = Complex.f_vector dom and fc = Complex.f_vector cod in
  if fd <> fc then None
  else begin
    let dom_vertices = Complex.vertices dom in
    let cod_vertices = Complex.vertices cod in
    (* degree profile: for each vertex, number of simplices containing it,
       bucketed by dimension *)
    let profile cx v =
      let st = Complex.star v cx in
      (Array.to_list (Complex.f_vector st), if respect_pids then Vertex.pid v else None)
    in
    let dom_prof = List.map (fun v -> (v, profile dom v)) dom_vertices in
    let cod_prof = List.map (fun v -> (v, profile cod v)) cod_vertices in
    (* order domain vertices by decreasing constraint (rarest profile
       first) *)
    let count_prof p l = List.length (List.filter (fun (_, q) -> q = p) l) in
    let ordered =
      List.sort
        (fun (_, p1) (_, p2) ->
          Int.compare (count_prof p1 cod_prof) (count_prof p2 cod_prof))
        dom_prof
    in
    let edges = Complex.simplices_of_dim dom 1 in
    let assignment : Vertex.t Vertex.Map.t ref = ref Vertex.Map.empty in
    let used = ref Vertex.Set.empty in
    let consistent v img =
      (* every domain edge {v, u} with u already assigned must map to a
         codomain edge *)
      List.for_all
        (fun e ->
          if not (Simplex.mem v e) then true
          else
            match List.filter (fun u -> not (Vertex.equal u v)) (Simplex.vertices e) with
            | [ u ] -> (
                match Vertex.Map.find_opt u !assignment with
                | None -> true
                | Some iu -> Complex.mem (Simplex.of_list [ img; iu ]) cod)
            | [] | _ :: _ :: _ -> true)
        edges
    in
    let rec go = function
      | [] ->
          let mu v =
            match Vertex.Map.find_opt v !assignment with
            | Some w -> w
            | None -> v
          in
          if is_isomorphism_via mu dom cod then Some mu else None
      | (v, p) :: rest ->
          let candidates =
            List.filter_map
              (fun (w, q) ->
                if q = p && (not (Vertex.Set.mem w !used)) && consistent v w then
                  Some w
                else None)
              cod_prof
          in
          let rec try_candidates = function
            | [] -> None
            | w :: ws -> (
                assignment := Vertex.Map.add v w !assignment;
                used := Vertex.Set.add w !used;
                match go rest with
                | Some mu -> Some mu
                | None ->
                    assignment := Vertex.Map.remove v !assignment;
                    used := Vertex.Set.remove w !used;
                    try_candidates ws)
          in
          try_candidates candidates
    in
    go ordered
  end

let are_isomorphic ?respect_pids dom cod =
  Option.is_some (find_isomorphism ?respect_pids dom cod)
