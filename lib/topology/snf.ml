type t = int array array

let pp ppf m =
  Array.iter
    (fun r ->
      Format.fprintf ppf "[%s]@."
        (String.concat " " (Array.to_list (Array.map string_of_int r))))
    m

(* Standard Smith reduction: repeatedly bring the minimal-magnitude nonzero
   entry of the remaining block to the pivot, clear its row and column with
   Euclidean steps, ensure divisibility, recurse on the sub-block. *)
let smith_diagonal m =
  let m = Array.map Array.copy m in
  let rows = Array.length m in
  let cols = if rows = 0 then 0 else Array.length m.(0) in
  let swap_rows i j =
    let tmp = m.(i) in
    m.(i) <- m.(j);
    m.(j) <- tmp
  in
  let swap_cols i j =
    for r = 0 to rows - 1 do
      let tmp = m.(r).(i) in
      m.(r).(i) <- m.(r).(j);
      m.(r).(j) <- tmp
    done
  in
  let add_row_multiple dst src q =
    (* row dst <- row dst - q * row src *)
    for c = 0 to cols - 1 do
      m.(dst).(c) <- m.(dst).(c) - (q * m.(src).(c))
    done
  in
  let add_col_multiple dst src q =
    for r = 0 to rows - 1 do
      m.(r).(dst) <- m.(r).(dst) - (q * m.(r).(src))
    done
  in
  let find_min_pivot t =
    (* minimal |entry| <> 0 in the block starting at (t, t) *)
    let best = ref None in
    for r = t to rows - 1 do
      for c = t to cols - 1 do
        let v = abs m.(r).(c) in
        if v <> 0 then
          match !best with
          | Some (bv, _, _) when bv <= v -> ()
          | _ -> best := Some (v, r, c)
      done
    done;
    !best
  in
  let diagonal = ref [] in
  let t = ref 0 in
  let continue = ref true in
  while !continue && !t < min rows cols do
    match find_min_pivot !t with
    | None -> continue := false
    | Some (_, pr, pc) ->
        swap_rows !t pr;
        swap_cols !t pc;
        (* clear column and row; pivot may need several Euclid rounds *)
        let clean = ref false in
        while not !clean do
          clean := true;
          for r = !t + 1 to rows - 1 do
            if m.(r).(!t) <> 0 then begin
              let q = m.(r).(!t) / m.(!t).(!t) in
              add_row_multiple r !t q;
              if m.(r).(!t) <> 0 then begin
                (* remainder smaller than pivot: swap it up and restart *)
                swap_rows r !t;
                clean := false
              end
            end
          done;
          for c = !t + 1 to cols - 1 do
            if m.(!t).(c) <> 0 then begin
              let q = m.(!t).(c) / m.(!t).(!t) in
              add_col_multiple c !t q;
              if m.(!t).(c) <> 0 then begin
                swap_cols c !t;
                clean := false
              end
            end
          done
        done;
        (* divisibility: if some entry of the remaining block is not
           divisible by the pivot, fold its row in and redo this step *)
        let pivot = abs m.(!t).(!t) in
        let offender = ref None in
        (try
           for r = !t + 1 to rows - 1 do
             for c = !t + 1 to cols - 1 do
               if m.(r).(c) mod pivot <> 0 then begin
                 offender := Some r;
                 raise Exit
               end
             done
           done
         with Exit -> ());
        (match !offender with
        | Some r ->
            (* add row r to row t, creating a smaller minimum; redo *)
            for c = 0 to cols - 1 do
              m.(!t).(c) <- m.(!t).(c) + m.(r).(c)
            done
        | None -> begin
            diagonal := pivot :: !diagonal;
            incr t
          end)
  done;
  List.rev !diagonal

let rank m = List.length (smith_diagonal m)
