let cone ~apex c =
  if Complex.mem_vertex apex c then
    invalid_arg "Constructions.cone: apex already occurs in the complex";
  let apex_cx = Complex.of_facets [ Simplex.of_list [ apex ] ] in
  if Complex.is_empty c then apex_cx else Complex.join apex_cx c

let suspension ~north ~south c =
  if Vertex.equal north south then
    invalid_arg "Constructions.suspension: poles must differ";
  Complex.union (cone ~apex:north c) (cone ~apex:south c)

let solid n =
  Complex.of_simplex (Simplex.of_list (List.init (n + 1) Vertex.anon))

let sphere n =
  if n < 0 then Complex.empty
  else Complex.boundary_complex (Simplex.of_list (List.init (n + 2) Vertex.anon))
