(** Simplicial complexes.

    A complex is a set of nonempty simplexes closed under containment (every
    nonempty face of a member is a member).  Intersection-closure is
    automatic for vertex-set representations.  The empty complex has
    dimension [-1] by convention. *)

type t

val empty : t

val is_empty : t -> bool

val of_facets : Simplex.t list -> t
(** The closure of the given simplexes (their faces are added). *)

val of_simplex : Simplex.t -> t
(** The closure of a single simplex: the "solid" simplex as a complex. *)

val of_closure : Simplex.t list -> t
(** Unchecked fast path: build directly from a list that is already closed
    under taking nonempty faces (duplicates and empty simplexes are
    dropped).  The caller is trusted; feeding a non-closed list breaks the
    complex invariant.  Used by constructors that enumerate full closures
    by structure, e.g. pseudosphere realization. *)

val boundary_complex : Simplex.t -> t
(** The boundary of a simplex: the closure of its codimension-1 faces, e.g.
    [boundary_complex (Simplex.proc_simplex n)] is an [(n-1)]-sphere. *)

val add_facet : Simplex.t -> t -> t

val mem : Simplex.t -> t -> bool

val mem_vertex : Vertex.t -> t -> bool

val simplices : t -> Simplex.t list
(** All simplexes, in increasing {!Simplex.compare} order. *)

val fold : (Simplex.t -> 'a -> 'a) -> t -> 'a -> 'a

val iter : (Simplex.t -> unit) -> t -> unit

val num_simplices : t -> int

val dim : t -> int

val facets : t -> Simplex.t list
(** Maximal simplexes. *)

val simplices_of_dim : t -> int -> Simplex.t list

val count_of_dim : t -> int -> int

val f_vector : t -> int array
(** [f_vector c].(d) is the number of [d]-simplexes, for [0 <= d <= dim c].
    The empty complex has f-vector [[||]]. *)

val euler : t -> int
(** Euler characteristic: the alternating sum of the f-vector. *)

val vertices : t -> Vertex.t list

val num_vertices : t -> int

val union : t -> t -> t

val inter : t -> t -> t

val diff_facets : t -> t -> t
(** Closure of the facets of the first complex not present in the second. *)

val equal : t -> t -> bool

val subcomplex : t -> t -> bool
(** [subcomplex a b]: is every simplex of [a] a simplex of [b]? *)

val skeleton : int -> t -> t
(** [skeleton k c] keeps the simplexes of dimension [<= k]. *)

val star : Vertex.t -> t -> t
(** Closed star: closure of all simplexes containing the vertex. *)

val link : Vertex.t -> t -> t
(** [link v c]: simplexes [s] with [v] not in [s] and [s + v] in [c]. *)

val join : t -> t -> t
(** Simplicial join; vertex sets must be disjoint.
    @raise Invalid_argument otherwise. *)

val map : (Vertex.t -> Vertex.t) -> t -> t
(** Image under a vertex map (always a complex; simplexes may collapse). *)

val filter_vertices : (Vertex.t -> bool) -> t -> t
(** Induced subcomplex on the vertices satisfying the predicate. *)

val restrict_ids : Pid.Set.t -> t -> t
(** Induced subcomplex on [Proc] vertices whose pid is in the set. *)

val connected_components : t -> Vertex.Set.t list
(** Vertex sets of the graph-theoretic (0-dimensional) components. *)

val is_connected : t -> bool
(** 0-connected: nonempty and one component. *)

val is_pure : t -> bool
(** All facets have the same dimension. *)

val ids : t -> Pid.Set.t
(** Union of pids over all [Proc] vertices. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line summary: dimension, f-vector, Euler characteristic. *)

val pp : Format.formatter -> t -> unit
(** Facet listing (for small complexes). *)
