open Psph_obs

module SMap = Simplex_sets.SMap

(* Reference (slow-path) index and boundary-matrix construction, kept for
   the public [boundary_matrix] API and as the oracle the fast engine is
   tested against. *)
let index_of_dim c d =
  List.sort Simplex.compare (Complex.simplices_of_dim c d)
  |> List.mapi (fun i s -> (s, i))
  |> List.to_seq |> SMap.of_seq

let boundary_matrix c d =
  if d <= 0 then
    (* d = 0: the augmentation map handles this case in [ranks] *)
    invalid_arg "Homology.boundary_matrix: dimension must be >= 1"
  else
    let rows = index_of_dim c (d - 1) in
    let cols = List.sort Simplex.compare (Complex.simplices_of_dim c d) in
    List.map
      (fun s ->
        Simplex.facets s
        |> List.map (fun f -> SMap.find f rows)
        |> List.sort Int.compare)
      cols

(* ranks.(d) = rank of the boundary operator from d-chains to (d-1)-chains,
   where the operator at d = 0 is the augmentation (so its rank is 1 on any
   nonempty complex).

   Fast path: one traversal of the complex buckets the interned vertex-id
   key of every simplex by dimension; each boundary matrix is then built
   with an int-array-keyed Hashtbl row index (no Simplex.compare on the hot
   path) and eliminated by the bit-packed {!Bitmat} engine.  Row order
   within a dimension is arbitrary but fixed, which is all rank needs.

   [rank_jobs] exposes the per-dimension eliminations as independent
   thunks: the bucketing pass (which interns, hence locks) happens once in
   the calling domain, and each returned closure reads only its own
   dimension's immutable key lists — safe to run on any domain.  The query
   engine schedules these on its worker pool for large complexes; [ranks]
   just runs them in order. *)
let rank_jobs ?max_dim c =
  let dim = Complex.dim c in
  let top = match max_dim with None -> dim | Some m -> min m dim in
  if dim < 0 then ([||], [])
  else begin
    (* rank of boundary_{top+1} is needed for betti at top *)
    let upper = min (top + 1) dim in
    let r = Array.make (upper + 1) 0 in
    r.(0) <- (if Complex.is_empty c then 0 else 1);
    if upper < 1 then (r, [])
    else begin
      let keys = Array.make (upper + 1) [] in
      let max_id = ref 0 in
      Complex.iter
        (fun s ->
          let d = Simplex.dim s in
          if d <= upper then begin
            let k = Intern.key s in
            Array.iter (fun i -> if i > !max_id then max_id := i) k;
            keys.(d) <- k :: keys.(d)
          end)
        c;
      (* bits needed to hold any vertex id *)
      let id_bits =
        let rec loop b = if !max_id lsr b = 0 then b else loop (b + 1) in
        max 1 (loop 1)
      in
      let rank_of_dim d =
        let cols = keys.(d) in
        let ncols = List.length cols in
        if d * id_bits <= Sys.int_size - 1 then begin
          (* a whole (d-1)-simplex key fits in one int: pack ids into
             bit-fields, sort the packed row keys once, and resolve each
             facet with a binary search — the row number is just the key's
             position in sorted order *)
          let pack_skip a skip =
            let n = Array.length a in
            let rec go i acc =
              if i >= n then acc
              else if i = skip then go (i + 1) acc
              else go (i + 1) ((acc lsl id_bits) lor Array.unsafe_get a i)
            in
            go 0 0
          in
          let rows =
            Array.of_list (List.map (fun k -> pack_skip k (-1)) keys.(d - 1))
          in
          let nrows = Array.length rows in
          (* small arrays: insertion sort avoids compare-closure calls *)
          if nrows <= 64 then
            for i = 1 to nrows - 1 do
              let x = rows.(i) in
              let j = ref (i - 1) in
              while !j >= 0 && rows.(!j) > x do
                rows.(!j + 1) <- rows.(!j);
                decr j
              done;
              rows.(!j + 1) <- x
            done
          else Array.sort Int.compare rows;
          let find key =
            let lo = ref 0 and hi = ref nrows in
            while !hi - !lo > 1 do
              let mid = (!lo + !hi) / 2 in
              if Array.unsafe_get rows mid <= key then lo := mid else hi := mid
            done;
            !lo
          in
          if nrows <= Sys.int_size then begin
            (* columns fit in single words: build int masks directly *)
            let masks = Array.make ncols 0 in
            List.iteri
              (fun j a ->
                let m = ref 0 in
                for i = 0 to Array.length a - 1 do
                  m := !m lor (1 lsl find (pack_skip a i))
                done;
                masks.(j) <- !m)
              cols;
            Bitmat.rank_words ~rows:nrows masks
          end
          else begin
            let mat = Bitmat.create ~rows:nrows ~cols:ncols in
            List.iteri
              (fun j a ->
                for i = 0 to Array.length a - 1 do
                  Bitmat.set mat ~row:(find (pack_skip a i)) ~col:j
                done)
              cols;
            Bitmat.rank mat
          end
        end
        else begin
          (* fallback: int-array keys (canonical, safe for structural
             hashing since entries are immediate ints) *)
          let row_index : (int array, int) Hashtbl.t = Hashtbl.create (4 * ncols) in
          let nrows = ref 0 in
          List.iter
            (fun k ->
              Hashtbl.replace row_index k !nrows;
              incr nrows)
            keys.(d - 1);
          let mat = Bitmat.create ~rows:!nrows ~cols:ncols in
          List.iteri
            (fun j a ->
              let n = Array.length a in
              for i = 0 to n - 1 do
                let f = Array.make (n - 1) 0 in
                Array.blit a 0 f 0 i;
                Array.blit a (i + 1) f i (n - 1 - i);
                Bitmat.set mat ~row:(Hashtbl.find row_index f) ~col:j
              done)
            cols;
          Bitmat.rank mat
        end
      in
      ( r,
        List.init upper (fun i ->
            let d = i + 1 in
            ( d,
              fun () ->
                (* each elimination is a [homology.rank] span so traces
                   show where a query's compute time went, per dimension *)
                Obs.with_span "homology.rank"
                  ~attrs:[ ("dim", Jsonl.int d) ]
                  (fun _ -> rank_of_dim d) )) )
    end
  end

let ranks ?max_dim c =
  let r, jobs = rank_jobs ?max_dim c in
  List.iter (fun (d, job) -> r.(d) <- job ()) jobs;
  r

let reduced_betti ?max_dim c =
  let dim = Complex.dim c in
  let top = match max_dim with None -> dim | Some m -> min m dim in
  if dim < 0 then [||]
  else begin
    let r = ranks ?max_dim c in
    let betti = Array.make (top + 1) 0 in
    for d = 0 to top do
      let chains = Complex.count_of_dim c d in
      let rank_d = r.(d) in
      let rank_above = if d + 1 <= Complex.dim c then r.(d + 1) else 0 in
      betti.(d) <- chains - rank_d - rank_above
    done;
    betti
  end

let betti ?max_dim c =
  let b = reduced_betti ?max_dim c in
  if Array.length b > 0 then b.(0) <- b.(0) + 1;
  b

let is_k_connected c k =
  if k <= -2 then true
  else if Complex.is_empty c then false
  else if k = -1 then true
  else begin
    let b = reduced_betti ~max_dim:k c in
    let ok = ref true in
    for d = 0 to min k (Array.length b - 1) do
      if b.(d) <> 0 then ok := false
    done;
    !ok
  end

let connectivity ?cap c =
  if Complex.is_empty c then -2
  else begin
    let cap = match cap with None -> Complex.dim c | Some k -> k in
    let b = reduced_betti ~max_dim:cap c in
    let rec loop k =
      if k > cap then cap
      else if k <= Array.length b - 1 && b.(k) <> 0 then k - 1
      else loop (k + 1)
    in
    loop 0
  end

(* Morse-reduced entry points: collapse to the critical-cell core first
   ({!Collapse.reduce}), then eliminate.  The core is homotopy equivalent
   to the input, so these agree exactly with the direct versions while the
   boundary matrices are built over (often far) fewer cells. *)

let ranks_reduced ?max_dim c =
  let core, _removed = Collapse.reduce c in
  (core, ranks ?max_dim core)

let betti_reduced ?max_dim c =
  let dim = Complex.dim c in
  if dim < 0 then [||]
  else begin
    let top = match max_dim with None -> dim | Some m -> min m dim in
    let core, _ = Collapse.reduce c in
    let b = betti ?max_dim core in
    let n = Array.length b in
    (* the core may have lower dimension; its missing Betti numbers are 0 *)
    if n >= top + 1 then b
    else begin
      let out = Array.make (top + 1) 0 in
      Array.blit b 0 out 0 n;
      out
    end
  end

let connectivity_reduced ?cap c =
  if Complex.is_empty c then -2
  else begin
    let cap = match cap with None -> Complex.dim c | Some k -> k in
    let core, _ = Collapse.reduce c in
    connectivity ~cap core
  end

let euler_from_betti c =
  let b = betti c in
  let acc = ref 0 in
  Array.iteri (fun d n -> acc := !acc + if d mod 2 = 0 then n else -n) b;
  !acc
