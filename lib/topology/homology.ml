module SMap = Map.Make (Simplex)

let index_of_dim c d =
  List.sort Simplex.compare (Complex.simplices_of_dim c d)
  |> List.mapi (fun i s -> (s, i))
  |> List.to_seq |> SMap.of_seq

let boundary_matrix c d =
  if d <= 0 then
    (* d = 0: the augmentation map handles this case in [ranks] *)
    invalid_arg "Homology.boundary_matrix: dimension must be >= 1"
  else
    let rows = index_of_dim c (d - 1) in
    let cols = List.sort Simplex.compare (Complex.simplices_of_dim c d) in
    List.map
      (fun s ->
        Simplex.facets s
        |> List.map (fun f -> SMap.find f rows)
        |> List.sort Int.compare)
      cols

(* ranks.(d) = rank of the boundary operator from d-chains to (d-1)-chains,
   where the operator at d = 0 is the augmentation (so its rank is 1 on any
   nonempty complex). *)
let ranks ?max_dim c =
  let dim = Complex.dim c in
  let top = match max_dim with None -> dim | Some m -> min m dim in
  if dim < 0 then [||]
  else begin
    (* rank of boundary_{top+1} is needed for betti at top *)
    let upper = min (top + 1) dim in
    let r = Array.make (upper + 1) 0 in
    r.(0) <- (if Complex.is_empty c then 0 else 1);
    for d = 1 to upper do
      r.(d) <- Z2_matrix.rank (boundary_matrix c d)
    done;
    r
  end

let reduced_betti ?max_dim c =
  let dim = Complex.dim c in
  let top = match max_dim with None -> dim | Some m -> min m dim in
  if dim < 0 then [||]
  else begin
    let r = ranks ?max_dim c in
    let betti = Array.make (top + 1) 0 in
    for d = 0 to top do
      let chains = Complex.count_of_dim c d in
      let rank_d = r.(d) in
      let rank_above = if d + 1 <= Complex.dim c then r.(d + 1) else 0 in
      betti.(d) <- chains - rank_d - rank_above
    done;
    betti
  end

let betti ?max_dim c =
  let b = reduced_betti ?max_dim c in
  if Array.length b > 0 then b.(0) <- b.(0) + 1;
  b

let is_k_connected c k =
  if k <= -2 then true
  else if Complex.is_empty c then false
  else if k = -1 then true
  else begin
    let b = reduced_betti ~max_dim:k c in
    let ok = ref true in
    for d = 0 to min k (Array.length b - 1) do
      if b.(d) <> 0 then ok := false
    done;
    !ok
  end

let connectivity ?cap c =
  if Complex.is_empty c then -2
  else begin
    let cap = match cap with None -> Complex.dim c | Some k -> k in
    let b = reduced_betti ~max_dim:cap c in
    let rec loop k =
      if k > cap then cap
      else if k <= Array.length b - 1 && b.(k) <> 0 then k - 1
      else loop (k + 1)
    in
    loop 0
  end

let euler_from_betti c =
  let b = betti c in
  let acc = ref 0 in
  Array.iteri (fun d n -> acc := !acc + if d mod 2 = 0 then n else -n) b;
  !acc
