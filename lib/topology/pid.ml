type t = int

let of_int i =
  if i < 0 then invalid_arg "Pid.of_int: negative pid" else i

let to_int i = i

let compare = Int.compare

let equal = Int.equal

let pp ppf i = Format.fprintf ppf "P%d" i

module Set = struct
  include Stdlib.Set.Make (Int)

  let pp ppf s =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         pp)
      (elements s)

  let of_range lo hi =
    let rec loop acc i = if i < lo then acc else loop (add i acc) (i - 1) in
    loop empty hi

  let compare_lex a b =
    let rec loop a b =
      match (a, b) with
      | [], [] -> 0
      | [], _ :: _ -> -1
      | _ :: _, [] -> 1
      | x :: a', y :: b' ->
          let c = Int.compare x y in
          if c <> 0 then c else loop a' b'
    in
    loop (elements a) (elements b)

  let compare_size_lex a b =
    let c = Int.compare (cardinal a) (cardinal b) in
    if c <> 0 then c else compare_lex a b
end

module Map = Stdlib.Map.Make (Int)

let universe n = Set.of_range 0 n

let all n = List.init (n + 1) (fun i -> i)
