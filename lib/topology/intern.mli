(** Hash-consing of vertices and simplexes to dense integer ids.

    Vertex labels can contain [Pid.Set.t] values, so polymorphic hashing
    and equality are unsound on {!Vertex.t}; this module hashes by
    structure-aware recursion and compares with {!Vertex.equal}.  Ids are
    assigned in first-seen order from global tables, so they are dense,
    stable within a process, and identical for structurally equal values.

    Hot paths use these ids to replace deep structural comparison:
    {!Homology} keys its boundary-row index by interned vertex ids, and the
    round-recursion memo tables in the protocol-complex modules key on
    {!simplex_id}.

    The tables are guarded by a mutex, so interning is safe to call from
    multiple domains (the query engine's worker pool relies on this).  Ids
    remain process-local: anything persisted across processes must use the
    pure structural hashes instead. *)

val vertex_id : Vertex.t -> int
(** The dense id of a vertex (allocating one on first sight). *)

val vertex_of_id : int -> Vertex.t
(** Inverse of {!vertex_id}.  @raise Invalid_argument on unknown ids. *)

val key : Simplex.t -> int array
(** The vertex ids of a simplex, in the simplex's canonical (sorted) vertex
    order — a canonical key: two simplexes are equal iff their keys are
    structurally equal int arrays. *)

val simplex_id : Simplex.t -> int
(** A dense id for the whole simplex (via {!key}). *)

val label_hash : int -> Label.t -> int
(** [label_hash seed l]: pure structural hash of a label, folding [Pid.Set]
    values in canonical element order.  Equal labels hash equally for every
    seed; no global state is touched. *)

val vertex_hash : int -> Vertex.t -> int
(** [vertex_hash seed v]: pure structural hash of a vertex (via
    {!label_hash}).  Process-independent, hence usable for content
    addressing that must survive serialization (see [Psph_engine.Key]). *)
