type certificate =
  | Empty_complex
  | Contractible_by_collapse
  | Shellable_wedge of { spheres : int; dim : int }
  | Homological of { betti_z2 : int array; torsion_free : bool }

let pp_certificate ppf = function
  | Empty_complex -> Format.pp_print_string ppf "empty"
  | Contractible_by_collapse -> Format.pp_print_string ppf "contractible (collapse)"
  | Shellable_wedge { spheres; dim } ->
      Format.fprintf ppf "shellable: wedge of %d %d-spheres" spheres dim
  | Homological { betti_z2; torsion_free } ->
      Format.fprintf ppf "homological: reduced Z/2 betti (%s)%s"
        (String.concat ","
           (List.map string_of_int (Array.to_list betti_z2)))
        (if torsion_free then ", torsion-free" else "")

let certify ?level c =
  if Complex.is_empty c then Empty_complex
  else begin
    let dim = Complex.dim c in
    let level = match level with None -> dim | Some l -> min l dim in
    if Collapse.is_collapsible_to_point c then Contractible_by_collapse
    else begin
      let try_shelling =
        Complex.is_pure c && List.length (Complex.facets c) <= 64
      in
      match
        if try_shelling then Shelling.find_shelling ~budget:200_000 c else None
      with
      | Some _ ->
          (* a shellable pure d-complex is a wedge of b~_d d-spheres *)
          let b = Homology.reduced_betti c in
          Shellable_wedge { spheres = b.(dim); dim }
      | None ->
          let betti_z2 = Homology.reduced_betti ~max_dim:(max 0 level) c in
          let torsion_free = Homology_z.is_torsion_free ~max_dim:(max 0 level) c in
          Homological { betti_z2; torsion_free }
    end
  end

let certifies_k_connected cert k =
  if k <= -2 then true
  else
    match cert with
    | Empty_complex -> false
    | Contractible_by_collapse -> true
    | Shellable_wedge { spheres; dim } -> spheres = 0 || k <= dim - 1
    | Homological { betti_z2; _ } ->
        if k = -1 then true
        else if k > Array.length betti_z2 - 1 then
          (* claims beyond the computed range are not certified *)
          false
        else begin
          let ok = ref true in
          for d = 0 to k do
            if betti_z2.(d) <> 0 then ok := false
          done;
          !ok
        end
