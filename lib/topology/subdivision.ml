(* Barycentric subdivision: simplexes of sd(C) are chains
   s_0 < s_1 < ... < s_k of simplexes of C ordered by proper inclusion. *)

let bary_vertex s = Vertex.Bary (Simplex.vertices s)

let barycentric c =
  let simplices = Complex.simplices c in
  (* chains ending at s: extend chains of proper faces of s *)
  let module SMap = Simplex_sets.SMap in
  let sorted = List.sort (fun a b -> Int.compare (Simplex.dim a) (Simplex.dim b)) simplices in
  let chains_ending =
    List.fold_left
      (fun acc s ->
        let sub_chains =
          List.concat_map
            (fun f ->
              match SMap.find_opt f acc with None -> [] | Some cs -> cs)
            (Simplex.proper_faces s)
        in
        let here = [ s ] :: List.map (fun ch -> s :: ch) sub_chains in
        SMap.add s here acc)
      SMap.empty sorted
  in
  let all_chains = SMap.fold (fun _ cs acc -> List.rev_append cs acc) chains_ending [] in
  Complex.of_facets
    (List.map (fun ch -> Simplex.of_list (List.map bary_vertex ch)) all_chains)

let barycentric_iter r c =
  let rec loop i acc = if i >= r then acc else loop (i + 1) (barycentric acc) in
  loop 0 c

(* Chromatic (standard) subdivision of a single chromatic simplex, built by
   enumerating ordered partitions (immediate-snapshot schedules): a schedule
   is an ordered partition (B_1, ..., B_t) of ids(S); process P in block B_i
   sees sigma_P = union of B_1..B_i.  Facets of the subdivision are exactly
   the schedules' vertex sets. *)
let ordered_partitions (xs : 'a list) : 'a list list list =
  let rec parts = function
    | [] -> [ [] ]
    | xs ->
        (* choose a nonempty first block, recurse on the rest *)
        let rec nonempty_subsets = function
          | [] -> [ ([], []) ]
          | y :: ys ->
              let rest = nonempty_subsets ys in
              List.concat_map
                (fun (chosen, left) -> [ (y :: chosen, left); (chosen, y :: left) ])
                rest
        in
        List.concat_map
          (fun (block, rest) ->
            if block = [] then []
            else List.map (fun p -> block :: p) (parts rest))
          (nonempty_subsets xs)
  in
  List.filter (fun p -> p <> [ [] ]) (parts xs)

let chromatic_of_simplex s =
  if not (Simplex.is_chromatic s) then
    invalid_arg "Subdivision.chromatic_of_simplex: simplex is not chromatic";
  let pids = Pid.Set.elements (Simplex.ids s) in
  let label_of p =
    match Simplex.label_of p s with Some l -> l | None -> assert false
  in
  let facet_of_schedule blocks =
    let rec loop seen acc = function
      | [] -> acc
      | block :: rest ->
          let seen = Pid.Set.union seen (Pid.Set.of_list block) in
          let vs =
            List.map
              (fun p ->
                Vertex.proc p (Label.Pair (label_of p, Label.Pid_set seen)))
              block
          in
          loop seen (List.rev_append vs acc) rest
    in
    Simplex.of_list (loop Pid.Set.empty [] blocks)
  in
  Complex.of_facets (List.map facet_of_schedule (ordered_partitions pids))

let rec facet_count_chromatic n =
  (* number of immediate-snapshot schedules of n+1 processes: ordered
     partitions of an (n+1)-set = Fubini number a(n+1);
     a(m) = sum_{j=1..m} C(m,j) a(m-j), a(0) = 1. *)
  let m = n + 1 in
  if m <= 0 then 1
  else begin
    let binom m j =
      let rec loop acc i = if i > j then acc else loop (acc * (m - i + 1) / i) (i + 1) in
      loop 1 1
    in
    let total = ref 0 in
    for j = 1 to m do
      total := !total + (binom m j * facet_count_chromatic (m - j - 1))
    done;
    !total
  end
