(* Discrete-Morse collapse over dense integer ids.

   The complex is indexed once: every simplex gets a dense id (via its
   canonical interned vertex-id key), and one pass over the simplices
   records, for each simplex, the ids of its (dim+1)-cofaces and of its
   facets.  Because a complex is closed under containment, a simplex with
   exactly one (dim+1)-coface has exactly one proper coface overall — it is
   a free face, and its unique coface is maximal.  Removing such a pair
   keeps the survivor set a complex, so the same criterion stays valid
   throughout; the coface counts are maintained incrementally (each removal
   decrements the counts of the facets of both removed simplices), and a
   worklist of count-1 candidates drives the collapse to a fixpoint with no
   per-sweep recomputation. *)

type state = {
  sx : Simplex.t array;  (* id -> simplex *)
  cofaces : int list array;  (* ids of (dim+1)-cofaces *)
  facet_ids : int list array;  (* ids of facets; [] for vertices *)
  count : int array;  (* live (dim+1)-coface count *)
  alive : bool array;
}

let index c =
  let n = Complex.num_simplices c in
  let sx = Array.make n Simplex.empty in
  let ids : (int array, int) Hashtbl.t = Hashtbl.create (2 * n) in
  let i = ref 0 in
  Complex.iter
    (fun s ->
      sx.(!i) <- s;
      Hashtbl.replace ids (Intern.key s) !i;
      incr i)
    c;
  let cofaces = Array.make n [] in
  let facet_ids = Array.make n [] in
  let count = Array.make n 0 in
  Array.iteri
    (fun t s ->
      if Simplex.dim s > 0 then
        List.iter
          (fun face ->
            let f = Hashtbl.find ids (Intern.key face) in
            cofaces.(f) <- t :: cofaces.(f);
            count.(f) <- count.(f) + 1;
            facet_ids.(t) <- f :: facet_ids.(t))
          (Simplex.facets s))
    sx;
  { sx; cofaces; facet_ids; count; alive = Array.make n true }

(* Run the worklist to a fixpoint; returns the Morse matching as id pairs
   (free face, coface), most recent first. *)
let run st =
  let q = Queue.create () in
  Array.iteri (fun f c -> if c = 1 then Queue.add f q) st.count;
  let pairs = ref [] in
  let release f =
    if st.alive.(f) then begin
      st.count.(f) <- st.count.(f) - 1;
      if st.count.(f) = 1 then Queue.add f q
    end
  in
  while not (Queue.is_empty q) do
    let f = Queue.pop q in
    if st.alive.(f) && st.count.(f) = 1 then begin
      let t = List.find (fun t -> st.alive.(t)) st.cofaces.(f) in
      st.alive.(f) <- false;
      st.alive.(t) <- false;
      pairs := (f, t) :: !pairs;
      List.iter release st.facet_ids.(f);
      List.iter release st.facet_ids.(t)
    end
  done;
  !pairs

let critical st =
  let acc = ref [] in
  for i = Array.length st.sx - 1 downto 0 do
    if st.alive.(i) then acc := st.sx.(i) :: !acc
  done;
  !acc

let matching c =
  let st = index c in
  let pairs = run st in
  (List.rev_map (fun (f, t) -> (st.sx.(f), st.sx.(t))) pairs, critical st)

let reduce c =
  if Complex.is_empty c then (c, 0)
  else begin
    let st = index c in
    let removed = 2 * List.length (run st) in
    if removed = 0 then (c, 0) else (Complex.of_closure (critical st), removed)
  end

let collapse c = fst (reduce c)

let free_faces c =
  if Complex.is_empty c then []
  else begin
    let st = index c in
    let acc = ref [] in
    Array.iteri
      (fun f n ->
        if n = 1 then
          acc := (st.sx.(f), st.sx.(List.hd st.cofaces.(f))) :: !acc)
      st.count;
    !acc
  end

let is_collapsible_to_point c =
  let r = collapse c in
  Complex.num_simplices r = 1 && Complex.dim r = 0
