module SSet = Set.Make (Simplex)
module SMap = Map.Make (Simplex)

(* Count, for every simplex, its cofaces of dimension dim+1.  Because the
   complex is closed under containment, a simplex with exactly one such
   coface has exactly one proper coface overall, i.e. it is a free face. *)
let coface_map simplices =
  List.fold_left
    (fun acc t ->
      if Simplex.dim t = 0 then acc
      else
        List.fold_left
          (fun acc f ->
            SMap.update f
              (function None -> Some [ t ] | Some ts -> Some (t :: ts))
              acc)
          acc (Simplex.facets t))
    SMap.empty simplices

let free_faces_of_set set =
  let cofaces = coface_map (SSet.elements set) in
  SSet.fold
    (fun s acc ->
      match SMap.find_opt s cofaces with
      | Some [ t ] -> (s, t) :: acc
      | None | Some _ -> acc)
    set []

let free_faces c = free_faces_of_set (SSet.of_list (Complex.simplices c))

let collapse c =
  let set = ref (SSet.of_list (Complex.simplices c)) in
  let progress = ref true in
  while !progress do
    progress := false;
    (* recompute cofaces, then greedily remove non-overlapping free pairs *)
    let cofaces = coface_map (SSet.elements !set) in
    let removed = ref SSet.empty in
    SSet.iter
      (fun s ->
        if not (SSet.mem s !removed) then
          match SMap.find_opt s cofaces with
          | Some [ t ] when not (SSet.mem t !removed) ->
              (* check [t] is still the unique coface after this sweep's
                 removals: t itself intact is enough because removals only
                 delete pairs, never add cofaces *)
              removed := SSet.add s (SSet.add t !removed);
              progress := true
          | None | Some _ -> ())
      !set;
    set := SSet.diff !set !removed
  done;
  Complex.of_facets (SSet.elements !set)

let is_collapsible_to_point c =
  let r = collapse c in
  Complex.num_simplices r = 1 && Complex.dim r = 0
