(** Sperner colourings and Sperner's lemma.

    Theorem 9 of the paper is proved with Sperner's Lemma
    [Lef49, Lemma 5.5]: if the vertices of a subdivided [n]-simplex are
    coloured with [n + 1] colours such that each vertex only receives a
    colour of a corner of its carrier, then an odd number of [n]-simplexes
    of the subdivision are panchromatic.  This module provides the checker
    used by the Theorem-9 experiments: decision maps on highly connected
    complexes induce Sperner-like colourings, which forces a simplex with
    [k + 1] distinct decisions. *)

type colouring = Vertex.t -> int

val is_sperner_colouring :
  allowed:(Vertex.t -> int list) -> colouring -> Complex.t -> bool
(** Every vertex receives one of its allowed (carrier-corner) colours. *)

val panchromatic : colouring -> int -> Complex.t -> Simplex.t list
(** [panchromatic chi n c]: the [n]-simplexes whose vertices carry all of
    the colours [0..n]. *)

val count_panchromatic : colouring -> int -> Complex.t -> int

val lemma_holds : allowed:(Vertex.t -> int list) -> colouring -> int -> Complex.t -> bool
(** Sperner's conclusion: a valid colouring of a subdivided [n]-simplex has
    an odd number of panchromatic [n]-simplexes (in particular at least
    one). *)

val barycentric_allowed : Simplex.t -> Vertex.t -> int list
(** Carrier colours for vertices of (iterated) barycentric subdivisions of
    the given base simplex, where the base vertex of index [i] (in
    {!Simplex.vertices} order) has colour [i]: a [Bary] vertex may use the
    colours of the base vertices spanning its carrier. *)

val distinct_colours : colouring -> Simplex.t -> int
(** Number of distinct colours on a simplex (used by the k-set agreement
    experiments: a decision map is a colouring and a simplex with more than
    [k] colours violates the task). *)
