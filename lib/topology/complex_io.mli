(** Textual serialization of labels, vertices, simplexes and complexes.

    Protocol complexes can take a while to build; this module round-trips
    them through a compact, stable, human-greppable text format, one facet
    per line, so computed complexes can be cached, diffed and shipped.

    Grammar (whitespace-insensitive inside a line):
    {v
      label   ::= 'u' | 'b' bool | 'i' int | 's' string-literal
                | 'p' int | 'P{' ints '}' | 'V<' ints '>'
                | '(' label ',' label ')' | '[' labels ']'
      vertex  ::= '#' int                (anonymous)
                | int ':' label          (process)
                | 'B(' vertices ')'      (barycentre)
      simplex ::= vertex (';' vertex)*
      complex ::= one simplex per nonempty line
    v} *)

val label_to_string : Label.t -> string

val label_of_string : string -> Label.t
(** @raise Failure on malformed input. *)

val vertex_to_string : Vertex.t -> string

val vertex_of_string : string -> Vertex.t

val simplex_to_string : Simplex.t -> string

val simplex_of_string : string -> Simplex.t

val complex_to_string : Complex.t -> string
(** Facets only (the closure is implied), sorted, one per line. *)

val complex_of_string : string -> Complex.t

val save : string -> Complex.t -> unit
(** Write to a file. *)

val load : string -> Complex.t
(** Read from a file.  @raise Sys_error / Failure. *)
