(** Integral simplicial homology.

    Computes [H_d(K; Z) = Z^{b_d} + Z/t_1 + ... + Z/t_s] via Smith normal
    forms of the (signed) boundary matrices.  Strictly stronger than
    {!Homology}'s Z/2 computation: it separates free rank from torsion
    (e.g. the projective plane has [H_1 = Z/2] — Z/2 Betti 1, integral
    Betti 0 with torsion [2]).

    For the paper's connectivity checks the {!Homology} module is the
    workhorse (faster, and equivalent on wedge-of-spheres complexes); this
    module certifies that the complexes involved are in fact
    torsion-free, closing the gap between homological and topological
    connectivity evidence. *)

type group = { rank : int; torsion : int list }
(** [Z^rank + sum Z/t], torsion coefficients sorted, each dividing the
    next. *)

val group_to_string : group -> string
(** e.g. ["Z^2"], ["Z + Z/2"], ["0"]. *)

val boundary_matrix_z : Complex.t -> int -> Snf.t
(** Signed boundary operator from [d]-chains to [(d-1)]-chains (rows =
    [(d-1)]-simplexes, columns = [d]-simplexes, entries [+-1]).
    @raise Invalid_argument for [d <= 0]. *)

val homology : ?max_dim:int -> Complex.t -> group array
(** Unreduced integral homology groups [H_0 .. H_dim]. *)

val reduced_homology : ?max_dim:int -> Complex.t -> group array
(** Reduced: [H~_0] has one less free generator. *)

val is_torsion_free : ?max_dim:int -> Complex.t -> bool

val betti_z : ?max_dim:int -> Complex.t -> int array
(** Free ranks only (rational Betti numbers). *)
