type colouring = Vertex.t -> int

let is_sperner_colouring ~allowed chi c =
  List.for_all (fun v -> List.mem (chi v) (allowed v)) (Complex.vertices c)

module ISet = Set.Make (Int)

let colours_of chi s =
  List.fold_left (fun acc v -> ISet.add (chi v) acc) ISet.empty (Simplex.vertices s)

let panchromatic chi n c =
  let full = ISet.of_list (List.init (n + 1) (fun i -> i)) in
  List.filter
    (fun s -> ISet.equal (colours_of chi s) full)
    (Complex.simplices_of_dim c n)

let count_panchromatic chi n c = List.length (panchromatic chi n c)

let lemma_holds ~allowed chi n c =
  is_sperner_colouring ~allowed chi c
  && count_panchromatic chi n c mod 2 = 1

let barycentric_allowed base =
  let base_vertices = Simplex.vertices base in
  let colour_of_base v =
    let rec idx i = function
      | [] -> None
      | u :: us -> if Vertex.equal u v then Some i else idx (i + 1) us
    in
    idx 0 base_vertices
  in
  let rec allowed v =
    match v with
    | Vertex.Bary vs -> List.concat_map allowed vs
    | Vertex.Proc _ | Vertex.Anon _ -> (
        match colour_of_base v with Some i -> [ i ] | None -> [])
  in
  fun v -> List.sort_uniq Int.compare (allowed v)

let distinct_colours chi s = ISet.cardinal (colours_of chi s)
