(** Connectivity certificates.

    Different tools give different strengths of evidence that a complex is
    k-connected (Definition 1 of the paper):

    - a collapse to a point proves contractibility, hence k-connectivity
      for every k;
    - a shelling order proves the complex is homotopy equivalent to a
      wedge of top-dimensional spheres, so vanishing reduced homology
      below the top dimension is genuine connectivity;
    - torsion-free vanishing integral homology through dimension k is
      strong numerical evidence (and exact for the wedge-of-spheres
      complexes of this paper);
    - vanishing reduced Z/2 homology is the fast check.

    [certify] returns the strongest certificate it can find, cheapest
    first; every constructor records which notion backs the claim. *)

type certificate =
  | Empty_complex  (** not even (-1)-connected *)
  | Contractible_by_collapse
      (** collapses to a point: k-connected for every k *)
  | Shellable_wedge of { spheres : int; dim : int }
      (** shelling found: homotopy-wedge of [spheres] [dim]-spheres
          ([spheres = 0] means contractible); k-connected for
          [k <= dim - 1] *)
  | Homological of { betti_z2 : int array; torsion_free : bool }
      (** reduced Z/2 Betti numbers (and whether integral homology is
          torsion-free in the checked range) *)

val pp_certificate : Format.formatter -> certificate -> unit

val certify : ?level:int -> Complex.t -> certificate
(** Produce the strongest certificate for connectivity claims up to
    [level] (default: the complex's dimension).  Tries collapse, then
    shelling (on pure complexes of modest size), then homology. *)

val certifies_k_connected : certificate -> int -> bool
(** Does the certificate establish k-connectivity? *)
