(** Sparse matrices over the two-element field Z/2.

    A matrix is a list of columns; a column is the strictly increasing list
    of its nonzero row indices.  Rank is computed with the standard
    column-reduction algorithm from persistent homology: repeatedly cancel a
    column's lowest nonzero entry against the recorded column with the same
    low. *)

type col = int list
(** Strictly increasing row indices of the nonzero entries. *)

val sym_diff : col -> col -> col
(** Sum over Z/2 (symmetric difference of index sets). *)

val low : col -> int option
(** The largest nonzero row index, if any. *)

val rank : col list -> int
(** Rank of the matrix with the given columns. *)

val reduce : col list -> col list
(** The reduced columns, in input order (possibly empty columns). *)

val is_zero : col -> bool
