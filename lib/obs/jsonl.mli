(** Minimal JSON values for the serve wire protocol.

    Hand-rolled reader/writer in the {!Psph_topology.Complex_io} style; the
    container image ships no JSON package.  Covers everything the protocol
    uses: objects, arrays, strings (with escapes, BMP [\u] only), numbers,
    booleans, null.  One JSON document per line — the caller handles line
    framing. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val of_string : string -> t
(** @raise Parse_error on malformed input or trailing garbage. *)

val of_string_opt : string -> t option

val to_string : t -> string
(** Compact single-line rendering (never emits a raw newline). *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on anything else. *)

val to_int_opt : t -> int option

val to_string_opt : t -> string option

val to_list_opt : t -> t list option

val int : int -> t

val int_array : int array -> t

val write_atomic : string -> (out_channel -> unit) -> unit
(** [write_atomic path f] runs [f] on a channel for [path ^ ".tmp"] and
    renames the result over [path] — readers never observe a partial
    file.  On exception the temp file is removed and the exception
    re-raised.  Used for the [BENCH_*.json] artifacts. *)
