(* A minimal JSON reader/writer for the serve wire protocol, in the same
   hand-rolled recursive-descent style as [Complex_io] (the toolchain has
   no JSON package baked in, and the protocol needs only the basics). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

type cursor = { text : string; mutable pos : int }

let peek cur = if cur.pos < String.length cur.text then Some cur.text.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let fail cur msg =
  raise (Parse_error (Printf.sprintf "%s at position %d" msg cur.pos))

let skip_ws cur =
  let rec loop () =
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance cur;
        loop ()
    | _ -> ()
  in
  loop ()

let expect cur ch =
  skip_ws cur;
  match peek cur with
  | Some c when c = ch -> advance cur
  | _ -> fail cur (Printf.sprintf "expected '%c'" ch)

let literal cur word value =
  if
    cur.pos + String.length word <= String.length cur.text
    && String.sub cur.text cur.pos (String.length word) = word
  then begin
    cur.pos <- cur.pos + String.length word;
    value
  end
  else fail cur (Printf.sprintf "expected '%s'" word)

let utf8_of_code buf u =
  (* BMP only; the protocol never needs surrogate pairs *)
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xe0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end

let read_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | Some '"' -> advance cur
    | Some '\\' ->
        advance cur;
        (match peek cur with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '/' -> Buffer.add_char buf '/'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some 'b' -> Buffer.add_char buf '\b'
        | Some 'f' -> Buffer.add_char buf '\012'
        | Some 'u' ->
            if cur.pos + 5 > String.length cur.text then fail cur "bad \\u escape";
            let hex = String.sub cur.text (cur.pos + 1) 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some u -> utf8_of_code buf u
            | None -> fail cur "bad \\u escape");
            cur.pos <- cur.pos + 4
        | _ -> fail cur "bad escape");
        advance cur;
        loop ()
    | Some c ->
        Buffer.add_char buf c;
        advance cur;
        loop ()
    | None -> fail cur "unterminated string"
  in
  loop ();
  Buffer.contents buf

let read_number cur =
  let start = cur.pos in
  let consume () = advance cur in
  if peek cur = Some '-' then consume ();
  let rec digits () =
    match peek cur with
    | Some '0' .. '9' ->
        consume ();
        digits ()
    | _ -> ()
  in
  digits ();
  if peek cur = Some '.' then begin
    consume ();
    digits ()
  end;
  (match peek cur with
  | Some ('e' | 'E') ->
      consume ();
      (match peek cur with Some ('+' | '-') -> consume () | _ -> ());
      digits ()
  | _ -> ());
  if cur.pos = start then fail cur "expected a number";
  match float_of_string_opt (String.sub cur.text start (cur.pos - start)) with
  | Some f -> f
  | None -> fail cur "malformed number"

let rec read_value cur =
  skip_ws cur;
  match peek cur with
  | Some 'n' -> literal cur "null" Null
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some '"' -> Str (read_string cur)
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin
        advance cur;
        Arr []
      end
      else begin
        let rec items acc =
          let v = read_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              items (v :: acc)
          | Some ']' ->
              advance cur;
              List.rev (v :: acc)
          | _ -> fail cur "expected ',' or ']'"
        in
        Arr (items [])
      end
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin
        advance cur;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws cur;
          let k = read_string cur in
          expect cur ':';
          let v = read_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance cur;
              List.rev ((k, v) :: acc)
          | _ -> fail cur "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some ('-' | '0' .. '9') -> Num (read_number cur)
  | _ -> fail cur "expected a JSON value"

let of_string text =
  let cur = { text; pos = 0 } in
  let v = read_value cur in
  skip_ws cur;
  if cur.pos <> String.length text then fail cur "trailing garbage";
  v

let of_string_opt text = try Some (of_string text) with Parse_error _ -> None

(* ------------------------------------------------------------------ *)
(* printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_num buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.12g" f)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Num f -> add_num buf f
  | Str s ->
      Buffer.add_char buf '"';
      escape_to buf s;
      Buffer.add_char buf '"'
  | Arr vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          add buf v)
        vs;
      Buffer.add_char buf ']'
  | Obj fs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape_to buf k;
          Buffer.add_string buf "\":";
          add buf v)
        fs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  add buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj fs -> List.assoc_opt k fs | _ -> None

let to_int_opt = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None

let to_list_opt = function Arr vs -> Some vs | _ -> None

let int i = Num (float_of_int i)

let int_array a = Arr (Array.to_list (Array.map int a))

(* ------------------------------------------------------------------ *)
(* atomic file output                                                  *)
(* ------------------------------------------------------------------ *)

let write_atomic path f =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try f oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp path
