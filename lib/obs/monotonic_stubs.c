/* CLOCK_MONOTONIC for the observability substrate: durations must not go
   negative (or jump) when the wall clock steps, so spans and histograms
   time themselves against this clock and keep gettimeofday only for trace
   timestamps.  No OCaml package in the image exposes a monotonic clock,
   hence the one-function stub. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value psph_obs_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}
