(* The one observability substrate: a global metric registry (get-or-create
   by name), ambient per-domain span nesting, and a single pluggable sink.

   Concurrency: counters and gauges are Atomics, histograms take a
   per-histogram mutex, the registry and the sink each take a global mutex.
   Everything on the hot path with the Null sink is a handful of atomic ops
   and two clock reads per span — cheap enough to leave on everywhere (the
   bench suite runs with instrumentation live and its numbers are within
   noise of the uninstrumented build). *)

type attrs = (string * Jsonl.t) list

let now () = Unix.gettimeofday ()

external monotonic_ns : unit -> int64 = "psph_obs_monotonic_ns"

(* durations are measured on this clock so a wall-clock step (NTP, VM
   migration) can never produce a negative span or histogram entry; [now]
   stays wall-clock and is used only for trace timestamps *)
let monotonic () = Int64.to_float (monotonic_ns ()) *. 1e-9

(* ------------------------------------------------------------------ *)
(* metric registry                                                     *)
(* ------------------------------------------------------------------ *)

type counter = { ticks : int Atomic.t }

type gauge = { level : float Atomic.t }

type histogram = {
  hlock : Mutex.t;
  mutable hcount : int;
  mutable hsum : float;
  mutable hmin : float;
  mutable hmax : float;
}

type histogram_stats = { count : int; sum : float; min : float; max : float }

type span_agg = { mutable scount : int; mutable stotal : float }

type span_stats = { spans : int; total_s : float }

let registry_lock = Mutex.create ()

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64

let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16

let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 64

let span_aggs : (string, span_agg) Hashtbl.t = Hashtbl.create 64

let registered tbl name make =
  Mutex.lock registry_lock;
  let m =
    match Hashtbl.find_opt tbl name with
    | Some m -> m
    | None ->
        let m = make name in
        Hashtbl.add tbl name m;
        m
  in
  Mutex.unlock registry_lock;
  m

let counter name =
  registered counters name (fun _ -> { ticks = Atomic.make 0 })

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.ticks by)

let counter_value c = Atomic.get c.ticks

let gauge name =
  registered gauges name (fun _ -> { level = Atomic.make 0.0 })

let gauge_set g v = Atomic.set g.level v

let rec gauge_add g delta =
  let seen = Atomic.get g.level in
  if not (Atomic.compare_and_set g.level seen (seen +. delta)) then
    gauge_add g delta

let gauge_value g = Atomic.get g.level

let histogram name =
  registered histograms name (fun _ ->
      {
        hlock = Mutex.create ();
        hcount = 0;
        hsum = 0.0;
        hmin = infinity;
        hmax = neg_infinity;
      })

let observe h v =
  Mutex.lock h.hlock;
  h.hcount <- h.hcount + 1;
  h.hsum <- h.hsum +. v;
  if v < h.hmin then h.hmin <- v;
  if v > h.hmax then h.hmax <- v;
  Mutex.unlock h.hlock

let time h f =
  let t0 = monotonic () in
  Fun.protect ~finally:(fun () -> observe h (monotonic () -. t0)) f

let histogram_stats h =
  Mutex.lock h.hlock;
  let s = { count = h.hcount; sum = h.hsum; min = h.hmin; max = h.hmax } in
  Mutex.unlock h.hlock;
  s

let record_span_agg name dur =
  let agg =
    registered span_aggs name (fun _ -> { scount = 0; stotal = 0.0 })
  in
  (* the registry mutex also serializes aggregate updates: span closes are
     rare next to the work they measure *)
  Mutex.lock registry_lock;
  agg.scount <- agg.scount + 1;
  agg.stotal <- agg.stotal +. dur;
  Mutex.unlock registry_lock

let span_stats name =
  Mutex.lock registry_lock;
  let s =
    match Hashtbl.find_opt span_aggs name with
    | Some a -> { spans = a.scount; total_s = a.stotal }
    | None -> { spans = 0; total_s = 0.0 }
  in
  Mutex.unlock registry_lock;
  s

(* ------------------------------------------------------------------ *)
(* sink                                                                *)
(* ------------------------------------------------------------------ *)

type record =
  | Span_record of {
      name : string;
      id : int;
      parent : int option;
      start : float;
      stop : float;
      attrs : attrs;
    }
  | Event_record of {
      name : string;
      time : float;
      span : int option;
      attrs : attrs;
    }

type sink = Null | Memory | Channel of out_channel

let sink_lock = Mutex.create ()

let the_sink = ref Null

let memory : record list ref = ref []

let set_sink s =
  Mutex.lock sink_lock;
  the_sink := s;
  Mutex.unlock sink_lock

let current_sink () = !the_sink

let records () = List.rev !memory

let clear_records () =
  Mutex.lock sink_lock;
  memory := [];
  Mutex.unlock sink_lock

let json_of_attrs attrs = Jsonl.Obj (List.rev attrs)

let opt_int = function None -> Jsonl.Null | Some i -> Jsonl.int i

let record_to_json = function
  | Span_record { name; id; parent; start; stop; attrs } ->
      Jsonl.Obj
        [
          ("t", Jsonl.Str "span");
          ("name", Jsonl.Str name);
          ("id", Jsonl.int id);
          ("parent", opt_int parent);
          ("start_s", Jsonl.Num start);
          ("dur_s", Jsonl.Num (stop -. start));
          ("attrs", json_of_attrs attrs);
        ]
  | Event_record { name; time; span; attrs } ->
      Jsonl.Obj
        [
          ("t", Jsonl.Str "event");
          ("name", Jsonl.Str name);
          ("time_s", Jsonl.Num time);
          ("span", opt_int span);
          ("attrs", json_of_attrs attrs);
        ]

let emit r =
  match !the_sink with
  | Null -> ()
  | _ ->
      Mutex.lock sink_lock;
      (match !the_sink with
      | Null -> ()
      | Memory -> memory := r :: !memory
      | Channel oc ->
          output_string oc (Jsonl.to_string (record_to_json r));
          output_char oc '\n');
      Mutex.unlock sink_lock

let with_trace_file path f =
  let oc = open_out path in
  let previous = !the_sink in
  set_sink (Channel oc);
  Fun.protect
    ~finally:(fun () ->
      set_sink previous;
      close_out oc)
    f

(* ------------------------------------------------------------------ *)
(* spans and events                                                    *)
(* ------------------------------------------------------------------ *)

type span = {
  id : int;
  parent : int option;
  start : float;  (** wall clock, for the trace timestamp *)
  start_mono : float;  (** monotonic, for the duration *)
  mutable sattrs : attrs;
}

(* the ambient context of a thread: the current live span, or a bare
   parent id carried across a queue/domain boundary by [with_parent] *)
type frame = Live of span | Ctx of int

let next_id = Atomic.make 1

(* Ambient state is per-thread, not just per-domain: the TCP server runs
   one handler systhread per connection inside one domain, and those
   threads must not trample each other's span nesting.  Each domain keeps
   its own table keyed by thread id (only its own threads touch it), under
   a domain-local mutex because systhread preemption can land mid-update. *)
let ambient_tbl : (int, frame) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let ambient_lock : Mutex.t Domain.DLS.key = Domain.DLS.new_key Mutex.create

let with_ambient f =
  let lock = Domain.DLS.get ambient_lock in
  let tbl = Domain.DLS.get ambient_tbl in
  Mutex.lock lock;
  let r = f tbl (Thread.id (Thread.self ())) in
  Mutex.unlock lock;
  r

let current_frame () = with_ambient (fun tbl tid -> Hashtbl.find_opt tbl tid)

let set_frame frame =
  with_ambient (fun tbl tid ->
      match frame with
      | Some fr -> Hashtbl.replace tbl tid fr
      | None -> Hashtbl.remove tbl tid)

let current_span_id () =
  match current_frame () with
  | Some (Live s) -> Some s.id
  | Some (Ctx id) -> Some id
  | None -> None

let with_frame frame f =
  let saved = current_frame () in
  set_frame frame;
  Fun.protect ~finally:(fun () -> set_frame saved) f

let with_parent parent f =
  with_frame (Option.map (fun id -> Ctx id) parent) f

let set_attr s k v = s.sattrs <- (k, v) :: s.sattrs

let with_span ?(attrs = []) name f =
  if !the_sink == Null then
    (* no sink: parent tracking and attrs are unobservable, so skip the
       ambient-frame bookkeeping (three mutexed table rounds) and keep
       only the aggregate — spans open on every cache-hit query, where
       that bookkeeping dominates the measured work *)
    let start_mono = monotonic () in
    let s =
      { id = 0; parent = None; start = 0.0; start_mono; sattrs = List.rev attrs }
    in
    Fun.protect
      ~finally:(fun () -> record_span_agg name (monotonic () -. start_mono))
      (fun () -> f s)
  else
  let parent = current_span_id () in
  let s =
    {
      id = Atomic.fetch_and_add next_id 1;
      parent;
      start = now ();
      start_mono = monotonic ();
      sattrs = List.rev attrs;
    }
  in
  let close () =
    (* duration on the monotonic clock; the trace [stop] is derived from
       it so [dur_s = stop - start] stays non-negative under clock steps *)
    let dur = monotonic () -. s.start_mono in
    record_span_agg name dur;
    if !the_sink != Null then
      emit
        (Span_record
           {
             name;
             id = s.id;
             parent = s.parent;
             start = s.start;
             stop = s.start +. dur;
             attrs = s.sattrs;
           })
  in
  Fun.protect ~finally:close (fun () -> with_frame (Some (Live s)) (fun () -> f s))

let event ?(attrs = []) name =
  if !the_sink != Null then
    emit
      (Event_record
         { name; time = now (); span = current_span_id (); attrs = List.rev attrs })

(* ------------------------------------------------------------------ *)
(* snapshot                                                            *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_stats) list;
  span_totals : (string * span_stats) list;
}

let sorted_bindings tbl value =
  Hashtbl.fold (fun name m acc -> (name, value m) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot () =
  (* histogram reads take per-histogram locks; do them outside the
     registry lock to keep the lock order one-way *)
  let counters, gauges, hs, span_totals =
    Mutex.lock registry_lock;
    let c = sorted_bindings counters (fun c -> Atomic.get c.ticks) in
    let g = sorted_bindings gauges (fun g -> Atomic.get g.level) in
    let h = sorted_bindings histograms Fun.id in
    let s =
      sorted_bindings span_aggs (fun a ->
          { spans = a.scount; total_s = a.stotal })
    in
    Mutex.unlock registry_lock;
    (c, g, h, s)
  in
  {
    counters;
    gauges;
    histograms = List.map (fun (n, h) -> (n, histogram_stats h)) hs;
    span_totals;
  }

let finite f = if Float.is_finite f then Jsonl.Num f else Jsonl.Null

let snapshot_json () =
  let s = snapshot () in
  Jsonl.Obj
    [
      ( "counters",
        Jsonl.Obj (List.map (fun (n, v) -> (n, Jsonl.int v)) s.counters) );
      ( "gauges",
        Jsonl.Obj (List.map (fun (n, v) -> (n, Jsonl.Num v)) s.gauges) );
      ( "histograms",
        Jsonl.Obj
          (List.map
             (fun (n, (h : histogram_stats)) ->
               ( n,
                 Jsonl.Obj
                   [
                     ("count", Jsonl.int h.count);
                     ("sum_s", Jsonl.Num h.sum);
                     ("min_s", finite h.min);
                     ("max_s", finite h.max);
                   ] ))
             s.histograms) );
      ( "spans",
        Jsonl.Obj
          (List.map
             (fun (n, (a : span_stats)) ->
               ( n,
                 Jsonl.Obj
                   [
                     ("count", Jsonl.int a.spans);
                     ("total_s", Jsonl.Num a.total_s);
                   ] ))
             s.span_totals) );
    ]

let reset () =
  Mutex.lock registry_lock;
  Hashtbl.iter (fun _ c -> Atomic.set c.ticks 0) counters;
  Hashtbl.iter (fun _ g -> Atomic.set g.level 0.0) gauges;
  Hashtbl.iter
    (fun _ h ->
      Mutex.lock h.hlock;
      h.hcount <- 0;
      h.hsum <- 0.0;
      h.hmin <- infinity;
      h.hmax <- neg_infinity;
      Mutex.unlock h.hlock)
    histograms;
  Hashtbl.iter
    (fun _ a ->
      a.scount <- 0;
      a.stotal <- 0.0)
    span_aggs;
  Mutex.unlock registry_lock;
  clear_records ()
