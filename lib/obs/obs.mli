(** One observability substrate for every layer of the system.

    Before this module existed each layer measured itself differently:
    the LRU kept private hit/miss counters, the worker pool had none, the
    benches hand-rolled wall-clock timing, and a serve request fanning
    rank jobs across domains was opaque.  [Obs] replaces all of that with
    three primitives:

    - {b Metrics}: named counters, gauges and histograms in one global
      registry.  Getting a metric by name is get-or-create, so two
      modules naming the same metric share it; a name is the identity.
      Counters and gauges are atomic (safe to touch from worker domains);
      histograms serialize under a tiny per-histogram lock.

    - {b Spans}: named time intervals with parent/child nesting (wall
      clock for the trace timestamp, monotonic clock for the duration).
      The current span is ambient, per-thread state; {!with_span} opens a
      child of whatever span is current, and {!with_parent} re-roots a
      computation under an explicit parent id so a job submitted to a
      worker pool stays attached to the span that enqueued it.  Every
      span updates a per-name aggregate (count + total seconds)
      regardless of sink, so snapshots can report span activity even
      when no trace is being written.

    - {b Events}: point-in-time marks attached to the current span.
      Events are trace-only: with the {!Null} sink they cost one branch.

    Completed spans and events stream to one pluggable {b sink}: [Null]
    (drop; the default), [Memory] (in-process buffer for tests), or
    [Channel] (a JSONL writer — one {!Jsonl} document per record).
    The metric names used by the library layers are catalogued in
    docs/OBSERVABILITY.md. *)

type attrs = (string * Jsonl.t) list
(** Span/event attributes: JSON-valued, so they serialize to the trace
    without further encoding. *)

val now : unit -> float
(** The wall clock ({!Unix.gettimeofday}), in seconds.  Used only for
    trace timestamps; durations are measured with {!monotonic} so a
    wall-clock step can never produce a negative span or histogram
    observation. *)

val monotonic : unit -> float
(** [CLOCK_MONOTONIC], in seconds since an arbitrary origin.  The clock
    every duration in this module is measured on; comparable only within
    one process. *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Get or create the counter registered under this name. *)

val incr : ?by:int -> counter -> unit
(** Atomic increment ([by] defaults to 1). *)

val counter_value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : string -> gauge

val gauge_set : gauge -> float -> unit

val gauge_add : gauge -> float -> unit
(** Atomic add (CAS loop); use negative deltas to decrement. *)

val gauge_value : gauge -> float

(** {1 Histograms} *)

type histogram

type histogram_stats = {
  count : int;
  sum : float;
  min : float;  (** [infinity] when empty *)
  max : float;  (** [neg_infinity] when empty *)
}

val histogram : string -> histogram

val observe : histogram -> float -> unit

val time : histogram -> (unit -> 'a) -> 'a
(** Run the thunk and observe its wall-clock duration in seconds (also
    on exception). *)

val histogram_stats : histogram -> histogram_stats

(** {1 Spans} *)

type span

val with_span : ?attrs:attrs -> string -> (span -> 'a) -> 'a
(** [with_span name f] opens a span as a child of the current one (if
    any), makes it current for the extent of [f], then closes it:
    updates the per-name aggregate and emits a record to the sink.  The
    span is closed (and the previous current span restored) even when
    [f] raises. *)

val set_attr : span -> string -> Jsonl.t -> unit
(** Attach an attribute to a live span (e.g. a cache key discovered
    mid-flight). *)

val current_span_id : unit -> int option
(** The ambient span id on this domain, for handing to {!with_parent}
    across a domain or queue boundary. *)

val with_parent : int option -> (unit -> 'a) -> 'a
(** Run the thunk with the ambient parent re-rooted to the given span
    id: the bridge that keeps pool jobs nested under the request span
    that submitted them. *)

type span_stats = { spans : int; total_s : float }

val span_stats : string -> span_stats
(** Aggregate for a span name; zeros if the name was never opened. *)

(** {1 Events} *)

val event : ?attrs:attrs -> string -> unit
(** Emit a point-in-time record attached to the current span.  A no-op
    (one branch) under the [Null] sink. *)

(** {1 Sinks} *)

type record =
  | Span_record of {
      name : string;
      id : int;
      parent : int option;
      start : float;
      stop : float;
      attrs : attrs;
    }
  | Event_record of {
      name : string;
      time : float;
      span : int option;
      attrs : attrs;
    }

type sink = Null | Memory | Channel of out_channel

val set_sink : sink -> unit

val current_sink : unit -> sink

val records : unit -> record list
(** Records captured while the [Memory] sink was active, oldest first. *)

val clear_records : unit -> unit

val record_to_json : record -> Jsonl.t
(** The JSONL trace schema (see docs/OBSERVABILITY.md): spans are
    [{"t":"span","name":..,"id":..,"parent":..,"start_s":..,"dur_s":..,
    "attrs":{..}}], events [{"t":"event","name":..,"time_s":..,
    "span":..,"attrs":{..}}]. *)

val with_trace_file : string -> (unit -> 'a) -> 'a
(** Write a JSONL trace of the thunk to the given path: installs a
    [Channel] sink for its extent, then restores the previous sink and
    closes the file (also on exception).  Backs [psc --trace FILE]. *)

(** {1 Snapshot} *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_stats) list;
  span_totals : (string * span_stats) list;
}
(** Everything the registry knows, each section sorted by name. *)

val snapshot : unit -> snapshot

val snapshot_json : unit -> Jsonl.t
(** The snapshot as one JSON object
    [{"counters":{..},"gauges":{..},"histograms":{..},"spans":{..}}] —
    the payload of the serve [metrics] wire op and of
    [psc serve --metrics]. *)

val reset : unit -> unit
(** Zero every registered metric and span aggregate and clear the memory
    buffer.  Registrations (and handles already held by callers) stay
    valid. *)
