(* Oracle tests for the fast homology engine: the bit-packed Bitmat rank
   must agree with the list-based Z2_matrix reference on random sparse
   matrices, and Homology's interned/bit-packed Betti pipeline must agree
   with the rank formula computed through the reference oracle on random
   pseudospheres. *)

open Psph_topology
open Pseudosphere

(* ------------------------------------------------------------------ *)
(* unit tests                                                          *)
(* ------------------------------------------------------------------ *)

let unit_tests =
  [
    Alcotest.test_case "rank of empty matrix" `Quick (fun () ->
        Alcotest.(check int) "rank" 0 (Bitmat.rank_of_columns ~rows:0 []);
        Alcotest.(check int) "rank" 0 (Bitmat.rank_of_columns ~rows:5 []));
    Alcotest.test_case "rank of zero columns" `Quick (fun () ->
        Alcotest.(check int) "rank" 0 (Bitmat.rank_of_columns ~rows:5 [ []; []; [] ]));
    Alcotest.test_case "rank of identity" `Quick (fun () ->
        Alcotest.(check int)
          "rank" 4
          (Bitmat.rank_of_columns ~rows:4 [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ]));
    Alcotest.test_case "dependent columns collapse" `Quick (fun () ->
        (* third column is the sum of the first two *)
        Alcotest.(check int)
          "rank" 2
          (Bitmat.rank_of_columns ~rows:3 [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ]));
    Alcotest.test_case "set/get round-trip across word boundaries" `Quick (fun () ->
        let m = Bitmat.create ~rows:130 ~cols:2 in
        List.iter (fun r -> Bitmat.set m ~row:r ~col:0) [ 0; 62; 63; 64; 126; 129 ];
        List.iter
          (fun r ->
            Alcotest.(check bool)
              (Printf.sprintf "bit %d" r)
              true
              (Bitmat.get m ~row:r ~col:0))
          [ 0; 62; 63; 64; 126; 129 ];
        Alcotest.(check bool) "unset" false (Bitmat.get m ~row:1 ~col:0);
        Alcotest.(check bool) "other col" false (Bitmat.get m ~row:63 ~col:1));
    Alcotest.test_case "multi-word rank equals reference" `Quick (fun () ->
        (* a shifted staircase spanning three words *)
        let cols = List.init 100 (fun i -> [ i; i + 30; i + 90 ]) in
        Alcotest.(check int)
          "rank"
          (Z2_matrix.rank cols)
          (Bitmat.rank_of_columns ~rows:190 cols));
  ]

(* ------------------------------------------------------------------ *)
(* random-matrix oracle: Bitmat.rank = Z2_matrix.rank                  *)
(* ------------------------------------------------------------------ *)

(* a sparse column over [rows] rows: a strictly increasing index list *)
let gen_matrix ~max_rows =
  QCheck2.Gen.(
    int_range 1 max_rows >>= fun rows ->
    let col =
      list_size (int_range 0 (min rows 8)) (int_range 0 (rows - 1))
      |> map (List.sort_uniq Int.compare)
    in
    list_size (int_range 0 12) col |> map (fun cols -> (rows, cols)))

let masks_of_columns ~rows cols =
  ignore rows;
  Array.of_list
    (List.map (List.fold_left (fun m r -> m lor (1 lsl r)) 0) cols)

let matrix_props =
  let open QCheck2 in
  [
    Test.make ~count:300 ~name:"Bitmat.rank = Z2_matrix.rank (single word)"
      (gen_matrix ~max_rows:60)
      (fun (rows, cols) ->
        Bitmat.rank_of_columns ~rows cols = Z2_matrix.rank cols);
    Test.make ~count:200 ~name:"Bitmat.rank = Z2_matrix.rank (multi word)"
      (gen_matrix ~max_rows:200)
      (fun (rows, cols) ->
        Bitmat.rank_of_columns ~rows cols = Z2_matrix.rank cols);
    Test.make ~count:300 ~name:"Bitmat.rank_words = Z2_matrix.rank"
      (gen_matrix ~max_rows:60)
      (fun (rows, cols) ->
        Bitmat.rank_words ~rows (masks_of_columns ~rows cols)
        = Z2_matrix.rank cols);
  ]
  |> List.map QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* random-pseudosphere oracle: new engine = reference rank formula     *)
(* ------------------------------------------------------------------ *)

(* reduced Betti numbers computed through the exported boundary_matrix and
   the list-based Z2_matrix elimination — the pre-Bitmat engine *)
let oracle_reduced_betti c =
  let dim = Complex.dim c in
  if dim < 0 then [||]
  else begin
    let r = Array.make (dim + 2) 0 in
    r.(0) <- (if Complex.is_empty c then 0 else 1);
    for d = 1 to dim do
      r.(d) <- Z2_matrix.rank (Homology.boundary_matrix c d)
    done;
    Array.init (dim + 1) (fun d ->
        Complex.count_of_dim c d - r.(d) - r.(d + 1))
  end

(* psi(P^n; U) with independently chosen nonempty value sets per process,
   n <= 3 *)
let gen_psph =
  QCheck2.Gen.(
    int_range 0 3 >>= fun n ->
    let values = list_size (int_range 1 3) (int_range 0 3) in
    list_repeat (n + 1) values
    |> map (fun vss ->
           let vss = Array.of_list vss in
           Psph.create
             ~base:(Simplex.proc_simplex n)
             ~values:(fun p -> List.map (fun v -> Label.Int v) vss.(Pid.to_int p))))

let psph_props =
  let open QCheck2 in
  [
    Test.make ~count:120 ~name:"Homology.betti unchanged on random psi(P^n;U)"
      gen_psph
      (fun ps ->
        let c = Psph.realize ~vertex:Psph.default_vertex ps in
        Homology.reduced_betti c = oracle_reduced_betti c);
    Test.make ~count:120 ~name:"realize closure matches of_facets closure"
      gen_psph
      (fun ps ->
        (* the product-closure fast path must produce exactly the closure
           of the facet list *)
        let c = Psph.realize ~vertex:Psph.default_vertex ps in
        Complex.equal c (Complex.of_facets (Complex.facets c)));
  ]
  |> List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ("bitmat.unit", unit_tests);
    ("bitmat.matrix_oracle", matrix_props);
    ("bitmat.psph_oracle", psph_props);
  ]
