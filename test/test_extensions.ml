(* Tests for the extension layer: trace validation, the synchronizer, the
   round-by-round suspicion structures, early-deciding consensus, and the
   ablation flags. *)

open Psph_topology
open Psph_model
open Pseudosphere
open Psph_agreement

let inputs n = List.init (n + 1) (fun i -> (i, i))

let input_simplex n =
  Input_complex.simplex_of_inputs (List.init (n + 1) (fun i -> (i, i mod 2)))

(* ------------------------------------------------------------------ *)
(* Trace validation                                                    *)
(* ------------------------------------------------------------------ *)

let trace_tests =
  let cfg = { Sim.c1 = 1; c2 = 3; d = 3 } in
  [
    Alcotest.test_case "lockstep traces satisfy the model" `Quick (fun () ->
        let t = Sim.run cfg ~n:2 (Sim.lockstep cfg) ~until:20 in
        Alcotest.(check int) "no violations" 0 (List.length (Trace_check.validate cfg t)));
    Alcotest.test_case "slow-solo traces satisfy the model" `Quick (fun () ->
        let t = Sim.run cfg ~n:2 (Sim.slow_solo cfg ~survivor:0 ~after_step:3) ~until:30 in
        Alcotest.(check int) "no violations" 0 (List.length (Trace_check.validate cfg t)));
    Alcotest.test_case "crash traces satisfy the model" `Quick (fun () ->
        let crash = { Sim.at_step = 2; deliver_final_to = Pid.Set.singleton 0 } in
        let t = Sim.run cfg ~n:2 (Sim.lockstep_with_crashes cfg [ (1, crash) ]) ~until:20 in
        Alcotest.(check int) "no violations" 0 (List.length (Trace_check.validate cfg t)));
    Alcotest.test_case "clamping defeats a cheating adversary" `Quick (fun () ->
        (* an adversary asking for absurd intervals/delays is clamped by
           the engine, so the trace still validates *)
        let adv =
          {
            (Sim.lockstep cfg) with
            Sim.step_interval = (fun _ _ -> 1000);
            delay = (fun ~src:_ ~dst:_ ~step:_ -> -50);
          }
        in
        let t = Sim.run cfg ~n:1 adv ~until:20 in
        Alcotest.(check int) "no violations" 0 (List.length (Trace_check.validate cfg t)));
    Alcotest.test_case "a manufactured bad trace is rejected" `Quick (fun () ->
        let bad =
          Pid.Map.of_seq
            (List.to_seq
               [ (0, [ Sim.Stepped { time = 100; step = 1 } ]);
                 (1, [ Sim.Received { time = 1; src = 0; sent_step = 9 } ]) ])
        in
        let violations = Trace_check.validate cfg bad in
        Alcotest.(check bool) "bad interval caught" true
          (List.exists (fun v -> v.Trace_check.process = 0) violations);
        Alcotest.(check bool) "spoofed message caught" true
          (List.exists (fun v -> v.Trace_check.process = 1) violations));
    Alcotest.test_case "fifo check catches reordering" `Quick (fun () ->
        let bad =
          Pid.Map.of_seq
            (List.to_seq
               [ ( 0,
                   [ Sim.Stepped { time = 1; step = 1 };
                     Sim.Stepped { time = 2; step = 2 } ] );
                 ( 1,
                   [ Sim.Received { time = 3; src = 0; sent_step = 2 };
                     Sim.Received { time = 4; src = 0; sent_step = 1 } ] ) ])
        in
        Alcotest.(check bool) "caught" true (Trace_check.check_fifo bad <> []));
  ]

(* ------------------------------------------------------------------ *)
(* Synchronizer                                                        *)
(* ------------------------------------------------------------------ *)

let synchronizer_tests =
  [
    Alcotest.test_case "uniform delays reproduce synchronous views" `Quick (fun () ->
        let result =
          Synchronizer.run ~n:2 ~rounds:2 ~max_delay:5
            ~delays:(fun ~src:_ ~dst:_ ~round:_ -> 3)
            ~inputs:(inputs 2)
        in
        let reference = Synchronizer.synchronous_reference ~n:2 ~rounds:2 ~inputs:(inputs 2) in
        Alcotest.(check bool) "correct" true (Synchronizer.correct result ~reference);
        Alcotest.(check bool) "in time" true
          (Synchronizer.within_time_bound result ~max_delay:5));
    Alcotest.test_case "skewed delays still reproduce synchronous views" `Quick
      (fun () ->
        (* asymmetric, round-dependent delays: the synchronizer's whole
           point *)
        let delays ~src ~dst ~round = 1 + ((src + (2 * dst) + (3 * round)) mod 5) in
        let result = Synchronizer.run ~n:3 ~rounds:3 ~max_delay:5 ~delays ~inputs:(inputs 3) in
        let reference = Synchronizer.synchronous_reference ~n:3 ~rounds:3 ~inputs:(inputs 3) in
        Alcotest.(check bool) "correct" true (Synchronizer.correct result ~reference);
        Alcotest.(check bool) "in time" true
          (Synchronizer.within_time_bound result ~max_delay:5));
    Alcotest.test_case "finish times are monotone per process" `Quick (fun () ->
        let result =
          Synchronizer.run ~n:2 ~rounds:3 ~max_delay:4
            ~delays:(fun ~src:_ ~dst ~round -> 1 + ((dst + round) mod 4))
            ~inputs:(inputs 2)
        in
        Pid.Map.iter
          (fun _ times ->
            Alcotest.(check int) "three rounds" 3 (List.length times);
            let rec mono = function
              | a :: (b :: _ as rest) ->
                  Alcotest.(check bool) "increasing" true (a < b);
                  mono rest
              | _ -> ()
            in
            mono times)
          result.Synchronizer.finish_times);
    Alcotest.test_case "all-minimal delays finish in r rounds of time" `Quick
      (fun () ->
        let result =
          Synchronizer.run ~n:2 ~rounds:2 ~max_delay:7
            ~delays:(fun ~src:_ ~dst:_ ~round:_ -> 1)
            ~inputs:(inputs 2)
        in
        Pid.Map.iter
          (fun _ times -> Alcotest.(check (list int)) "times" [ 1; 2 ] times)
          result.Synchronizer.finish_times);
  ]

(* ------------------------------------------------------------------ *)
(* Round-by-round suspicion (RRFD)                                     *)
(* ------------------------------------------------------------------ *)

let rrfd_tests =
  [
    Alcotest.test_case "async structures recover A^1 (grid)" `Quick (fun () ->
        List.iter
          (fun (n, f) ->
            Alcotest.(check bool)
              (Printf.sprintf "n=%d f=%d" n f)
              true
              (Rrfd.agrees_with_async ~n ~f (input_simplex n)))
          [ (1, 1); (2, 1); (2, 2); (3, 1) ]);
    Alcotest.test_case "sync structures recover S^1_K (grid)" `Quick (fun () ->
        List.iter
          (fun (n, k) ->
            Alcotest.(check bool)
              (Printf.sprintf "n=%d |K|=%d" n (Pid.Set.cardinal k))
              true
              (Rrfd.agrees_with_sync (input_simplex n) k))
          [
            (2, Pid.Set.empty);
            (2, Pid.Set.singleton 0);
            (2, Pid.Set.of_list [ 0; 1 ]);
            (3, Pid.Set.singleton 2);
          ]);
    Alcotest.test_case "structure = value assignment: facet counts" `Quick (fun () ->
        let s = input_simplex 2 in
        let alive = Simplex.ids s in
        let c = Rrfd.one_round s (Rrfd.async_structure ~n:2 ~f:1 ~alive) in
        (* |allowed suspect sets| = 1 + 2 per process -> 27 facets *)
        Alcotest.(check int) "facets" 27 (List.length (Complex.facets c)));
    Alcotest.test_case "full participation requirement" `Quick (fun () ->
        let face = Input_complex.simplex_of_inputs [ (0, 0); (1, 1) ] in
        Alcotest.check_raises "raises"
          (Invalid_argument "Rrfd.agrees_with_async: requires full participation")
          (fun () -> ignore (Rrfd.agrees_with_async ~n:2 ~f:1 face)));
  ]

(* ------------------------------------------------------------------ *)
(* Early-deciding consensus                                            *)
(* ------------------------------------------------------------------ *)

let early_tests =
  [
    Alcotest.test_case "failure-free: decides in 2 rounds" `Quick (fun () ->
        let protocol = Protocols.early_deciding_consensus ~n:2 ~f:2 in
        let report =
          Runner.run_sync ~protocol ~inputs:(inputs 2)
            ~schedule:(Runner.crash_schedule ~plan:[]) ~max_rounds:5
        in
        Alcotest.(check int) "all decide" 3 (List.length report.Runner.decisions);
        List.iter
          (fun (_, r, v) ->
            Alcotest.(check bool) "early" true (r <= 2);
            Alcotest.(check int) "min" 0 v)
          report.Runner.decisions);
    Alcotest.test_case "exhaustively safe (n=2 f=1)" `Quick (fun () ->
        let protocol = Protocols.early_deciding_consensus ~n:2 ~f:1 in
        Alcotest.(check int) "no violations" 0
          (List.length
             (Runner.check_sync_exhaustive ~protocol ~k_task:1 ~total_crashes:1
                ~inputs:(inputs 2) ~max_rounds:4)));
    Alcotest.test_case "exhaustively safe (n=2 f=2)" `Quick (fun () ->
        let protocol = Protocols.early_deciding_consensus ~n:2 ~f:2 in
        Alcotest.(check int) "no violations" 0
          (List.length
             (Runner.check_sync_exhaustive ~protocol ~k_task:1 ~total_crashes:2
                ~inputs:(inputs 2) ~max_rounds:5)));
    Alcotest.test_case "exhaustively safe (n=3 f=1)" `Quick (fun () ->
        let protocol = Protocols.early_deciding_consensus ~n:3 ~f:1 in
        Alcotest.(check int) "no violations" 0
          (List.length
             (Runner.check_sync_exhaustive ~protocol ~k_task:1 ~total_crashes:1
                ~inputs:(inputs 3) ~max_rounds:4)));
    Alcotest.test_case "never later than plain flooding" `Quick (fun () ->
        let early = Protocols.early_deciding_consensus ~n:2 ~f:2 in
        let plan = [ (1, 1, Pid.Set.singleton 0) ] in
        let report =
          Runner.run_sync ~protocol:early ~inputs:(inputs 2)
            ~schedule:(Runner.crash_schedule ~plan) ~max_rounds:6
        in
        List.iter
          (fun (_, r, _) -> Alcotest.(check bool) "within f+1" true (r <= 3))
          report.Runner.decisions);
  ]

(* ------------------------------------------------------------------ *)
(* Ablation flags agree with the defaults                              *)
(* ------------------------------------------------------------------ *)

let ablation_tests =
  [
    Alcotest.test_case "decision search: forward checking changes nothing" `Quick
      (fun () ->
        let cases =
          [ (Async_complex.over_inputs ~n:2 ~f:1 ~r:1 (Input_complex.make ~n:2 ~values:[ 0; 1 ]), 1);
            (Sync_complex.over_inputs ~k:1 ~r:2 (Input_complex.make ~n:2 ~values:[ 0; 1 ]), 1);
            (Async_complex.over_inputs ~n:2 ~f:1 ~r:1 (Input_complex.make ~n:2 ~values:[ 0; 1; 2 ]), 2) ]
        in
        List.iter
          (fun (complex, k) ->
            let a = Decision.solvable ~complex ~allowed:Task.allowed ~k () in
            let b =
              Decision.solvable ~forward_check:false ~complex ~allowed:Task.allowed ~k ()
            in
            Alcotest.(check bool) "same verdict" true (a = b))
          cases);
    Alcotest.test_case "MV: pruning changes the proof, not the bound" `Quick
      (fun () ->
        let pss = List.map snd (Sync_complex.pseudospheres ~k:1 (input_simplex 2)) in
        let fast = Mayer_vietoris.union_connectivity pss in
        let slow = Mayer_vietoris.union_connectivity ~prune_subsumed:false pss in
        Alcotest.(check int) "same conclusion" (Mayer_vietoris.conn fast)
          (Mayer_vietoris.conn slow);
        Alcotest.(check bool) "both valid" true
          (Mayer_vietoris.validate pss fast && Mayer_vietoris.validate pss slow));
  ]

let suites =
  [
    ("ext.trace_check", trace_tests);
    ("ext.synchronizer", synchronizer_tests);
    ("ext.rrfd", rrfd_tests);
    ("ext.early_deciding", early_tests);
    ("ext.ablation", ablation_tests);
  ]
