(* The observability substrate on its own: metric registry semantics
   (get-or-create by name, cross-instance sharing), histogram statistics,
   span nesting through the ambient per-domain context — including the
   [with_parent] bridge used to carry a parent across a queue or domain
   boundary — events, sinks, and the JSON snapshot/trace encodings.

   These tests mutate the global registry and sink; every case that
   installs a sink restores Null before returning, and counter assertions
   use test-private metric names so ordering does not matter. *)

module Obs = Psph_obs.Obs
module Jsonl = Psph_obs.Jsonl

let with_memory_sink f =
  Obs.set_sink Obs.Memory;
  Obs.clear_records ();
  Fun.protect
    ~finally:(fun () ->
      Obs.set_sink Obs.Null;
      Obs.clear_records ())
    f

let counter_tests =
  [
    Alcotest.test_case "counters are shared by name" `Quick (fun () ->
        let a = Obs.counter "test.obs.shared" in
        let b = Obs.counter "test.obs.shared" in
        Obs.incr a;
        Obs.incr b ~by:2;
        Alcotest.(check int) "one cell" 3 (Obs.counter_value a));
    Alcotest.test_case "gauges add and set" `Quick (fun () ->
        let g = Obs.gauge "test.obs.gauge" in
        Obs.gauge_set g 4.0;
        Obs.gauge_add g (-1.5);
        Alcotest.(check (float 1e-9)) "value" 2.5 (Obs.gauge_value g));
    Alcotest.test_case "histograms track count/sum/min/max" `Quick (fun () ->
        let h = Obs.histogram "test.obs.hist" in
        Obs.observe h 0.25;
        Obs.observe h 0.75;
        let s = Obs.histogram_stats h in
        Alcotest.(check int) "count" 2 s.Obs.count;
        Alcotest.(check (float 1e-9)) "sum" 1.0 s.Obs.sum;
        Alcotest.(check (float 1e-9)) "min" 0.25 s.Obs.min;
        Alcotest.(check (float 1e-9)) "max" 0.75 s.Obs.max);
    Alcotest.test_case "time observes wall clock and passes the value through"
      `Quick (fun () ->
        let h = Obs.histogram "test.obs.timed" in
        Alcotest.(check int) "result" 5 (Obs.time h (fun () -> 5));
        Alcotest.(check int) "observed once" 1 (Obs.histogram_stats h).Obs.count);
    Alcotest.test_case "time observes even when the thunk raises" `Quick
      (fun () ->
        let h = Obs.histogram "test.obs.raises" in
        (try Obs.time h (fun () -> failwith "x") with Failure _ -> ());
        Alcotest.(check int) "observed" 1 (Obs.histogram_stats h).Obs.count);
  ]

let span_tests =
  [
    Alcotest.test_case "spans nest through the ambient context" `Quick
      (fun () ->
        with_memory_sink (fun () ->
            Obs.with_span "outer" (fun _ ->
                let outer_id = Obs.current_span_id () in
                Alcotest.(check bool) "outer has an id" true (outer_id <> None);
                Obs.with_span "inner" (fun _ ->
                    Alcotest.(check bool)
                      "inner shadows outer" true
                      (Obs.current_span_id () <> outer_id));
                Alcotest.(check (option int))
                  "outer restored after inner" outer_id
                  (Obs.current_span_id ()));
            let spans =
              List.filter_map
                (function
                  | Obs.Span_record { name; parent; _ } -> Some (name, parent)
                  | Obs.Event_record _ -> None)
                (Obs.records ())
            in
            (* inner closes (and records) first *)
            match spans with
            | [ ("inner", Some _); ("outer", None) ] -> ()
            | _ -> Alcotest.fail "unexpected span records"));
    Alcotest.test_case "with_parent re-roots across a context break" `Quick
      (fun () ->
        with_memory_sink (fun () ->
            let captured = ref None in
            Obs.with_span "submitter" (fun _ ->
                captured := Obs.current_span_id ());
            Alcotest.(check bool) "captured the live span" true
              (!captured <> None);
            (* later, "on another domain": no ambient span here *)
            Alcotest.(check (option int)) "no ambient" None (Obs.current_span_id ());
            Obs.with_parent !captured (fun () ->
                Obs.with_span "job" (fun _ -> ()));
            let job_parent =
              List.find_map
                (function
                  | Obs.Span_record { name = "job"; parent; _ } -> Some parent
                  | _ -> None)
                (Obs.records ())
            in
            Alcotest.(check (option (option int)))
              "job hangs off the submitter" (Some !captured) job_parent));
    Alcotest.test_case "span aggregates accumulate without a sink" `Quick
      (fun () ->
        let before = (Obs.span_stats "test.obs.span").Obs.spans in
        Obs.with_span "test.obs.span" (fun _ -> ());
        Obs.with_span "test.obs.span" (fun _ -> ());
        let after = Obs.span_stats "test.obs.span" in
        Alcotest.(check int) "two more spans" (before + 2) after.Obs.spans;
        Alcotest.(check bool) "time accrued" true (after.Obs.total_s >= 0.0));
    Alcotest.test_case "attrs set mid-span are recorded" `Quick (fun () ->
        with_memory_sink (fun () ->
            Obs.with_span "attributed" ~attrs:[ ("a", Jsonl.int 1) ] (fun sp ->
                Obs.set_attr sp "b" (Jsonl.Str "two"));
            match Obs.records () with
            | [ Obs.Span_record { attrs; _ } ] ->
                Alcotest.(check int) "both attrs" 2 (List.length attrs)
            | _ -> Alcotest.fail "expected one span record"));
    Alcotest.test_case "events attach to the current span" `Quick (fun () ->
        with_memory_sink (fun () ->
            Obs.with_span "holder" (fun _ ->
                let holder_id = Obs.current_span_id () in
                Obs.event "ping" ~attrs:[ ("k", Jsonl.int 7) ];
                let ev =
                  List.find_map
                    (function
                      | Obs.Event_record { name = "ping"; span; _ } -> Some span
                      | _ -> None)
                    (Obs.records ())
                in
                Alcotest.(check (option (option int)))
                  "event parented" (Some holder_id) ev)));
    Alcotest.test_case "events are dropped under the Null sink" `Quick
      (fun () ->
        Obs.event "nobody-listening";
        Alcotest.(check int) "no records" 0 (List.length (Obs.records ())));
  ]

let sink_tests =
  [
    Alcotest.test_case "channel sink writes parseable JSONL" `Quick (fun () ->
        let path = Filename.temp_file "psph_obs" ".jsonl" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Obs.with_trace_file path (fun () ->
                Obs.with_span "traced" (fun _ -> Obs.event "mark"));
            Alcotest.(check bool)
              "sink restored" true
              (Obs.current_sink () = Obs.Null);
            let ic = open_in path in
            let rec lines acc =
              match input_line ic with
              | l -> lines (l :: acc)
              | exception End_of_file -> List.rev acc
            in
            let ls = lines [] in
            close_in ic;
            Alcotest.(check int) "one event + one span" 2 (List.length ls);
            List.iter
              (fun l ->
                match Jsonl.of_string l with
                | Jsonl.Obj fields ->
                    Alcotest.(check bool) "tagged" true
                      (List.mem_assoc "t" fields)
                | _ -> Alcotest.fail "not an object")
              ls));
    Alcotest.test_case "snapshot_json carries all four sections" `Quick
      (fun () ->
        ignore (Obs.counter "test.obs.snap");
        match Obs.snapshot_json () with
        | Jsonl.Obj fields ->
            List.iter
              (fun k ->
                Alcotest.(check bool) k true (List.mem_assoc k fields))
              [ "counters"; "gauges"; "histograms"; "spans" ]
        | _ -> Alcotest.fail "snapshot is not an object");
    Alcotest.test_case "snapshot sees registered metrics" `Quick (fun () ->
        let c = Obs.counter "test.obs.visible" in
        Obs.incr c ~by:41;
        let s = Obs.snapshot () in
        match List.assoc_opt "test.obs.visible" s.Obs.counters with
        | Some v -> Alcotest.(check bool) "counted" true (v >= 41)
        | None -> Alcotest.fail "metric missing from snapshot");
  ]

(* Satellite: corrupted traces must report the *right* violation kind,
   not just a non-empty list — one hand-built bad trace per checker,
   matched on the diagnostic text that [pp_violation] prints. *)

open Psph_topology
open Psph_model

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

let cfg = { Sim.c1 = 2; c2 = 3; d = 4 }

let trace_of bindings = Pid.Map.of_seq (List.to_seq bindings)

let kind name checker trace ~pid ~sub =
  Alcotest.test_case name `Quick (fun () ->
      match checker trace with
      | [] -> Alcotest.fail "corruption not detected"
      | vs ->
          Alcotest.(check bool)
            "blames the right process" true
            (List.exists (fun v -> v.Trace_check.process = pid) vs);
          Alcotest.(check bool)
            (Printf.sprintf "diagnostic mentions %S" sub)
            true
            (List.exists
               (fun v ->
                 contains ~sub
                   (Format.asprintf "%a" Trace_check.pp_violation v))
               vs))

let violation_tests =
  [
    kind "step interval outside [c1, c2]"
      (Trace_check.check_step_intervals cfg)
      (trace_of
         [ (0, [ Sim.Stepped { time = 2; step = 1 };
                 Sim.Stepped { time = 12; step = 2 } ]) ])
      ~pid:0 ~sub:"interval";
    kind "delivery later than d"
      (Trace_check.check_delivery_bound cfg)
      (trace_of
         [ (0, [ Sim.Stepped { time = 2; step = 1 } ]);
           (1, [ Sim.Received { time = 20; src = 0; sent_step = 1 } ]) ])
      ~pid:1 ~sub:"delivered after";
    kind "out-of-order channel"
      Trace_check.check_fifo
      (trace_of
         [ (1, [ Sim.Received { time = 5; src = 0; sent_step = 2 };
                 Sim.Received { time = 6; src = 0; sent_step = 1 } ]) ])
      ~pid:1 ~sub:"FIFO";
    kind "message its sender never sent"
      Trace_check.check_no_spoofing
      (trace_of
         [ (0, [ Sim.Stepped { time = 2; step = 1 } ]);
           (1, [ Sim.Received { time = 3; src = 0; sent_step = 7 } ]) ])
      ~pid:1 ~sub:"never sent";
    Alcotest.test_case "validate aggregates every checker" `Quick (fun () ->
        let bad =
          trace_of
            [ (0, [ Sim.Stepped { time = 2; step = 1 };
                    Sim.Stepped { time = 12; step = 2 } ]);
              (1, [ Sim.Received { time = 5; src = 0; sent_step = 2 };
                    Sim.Received { time = 6; src = 0; sent_step = 1 };
                    Sim.Received { time = 20; src = 0; sent_step = 1 };
                    Sim.Received { time = 21; src = 0; sent_step = 9 } ]) ]
        in
        let texts =
          List.map
            (fun v -> Format.asprintf "%a" Trace_check.pp_violation v)
            (Trace_check.validate cfg bad)
        in
        List.iter
          (fun sub ->
            Alcotest.(check bool)
              (Printf.sprintf "reports %S" sub)
              true
              (List.exists (contains ~sub) texts))
          [ "interval"; "delivered after"; "FIFO"; "never sent" ]);
    Alcotest.test_case "a lockstep run is clean" `Quick (fun () ->
        let t = Sim.run cfg ~n:2 (Sim.lockstep cfg) ~until:24 in
        Alcotest.(check int) "no violations" 0
          (List.length (Trace_check.validate cfg t)));
  ]

let suites =
  [
    ("obs metrics", counter_tests);
    ("obs spans", span_tests);
    ("obs sinks", sink_tests);
    ("trace violation kinds", violation_tests);
  ]
