(* The query engine against the ground truth: results must equal direct
   Homology computations on random complexes — including the cache-hit
   path, where the second query must return the identical answer — and the
   substrate pieces (canonical keys, LRU, worker pool, store, wire
   protocol) get their own units. *)

open Psph_topology
open Pseudosphere
module E = Psph_engine.Engine
module Key = Psph_engine.Key
module Lru = Psph_engine.Lru
module Pool = Psph_engine.Pool
module Store = Psph_engine.Store
module Jsonl = Psph_obs.Jsonl
module Obs = Psph_obs.Obs
module Serve = Psph_engine.Serve

let v = Vertex.anon

let sx l = Simplex.of_list (List.map v l)

let cx ls = Complex.of_facets (List.map sx ls)

(* one shared engine with real worker domains; shut down by the last case *)
let engine =
  lazy (E.create ~domains:2 ~capacity:256 ~par_threshold:64 ())

(* ------------------------------------------------------------------ *)
(* canonical keys                                                      *)
(* ------------------------------------------------------------------ *)

let key_tests =
  [
    Alcotest.test_case "equal complexes, different build orders, same key" `Quick
      (fun () ->
        let a = cx [ [ 0; 1; 2 ]; [ 2; 3 ] ] in
        let b = cx [ [ 2; 3 ]; [ 0; 1; 2 ] ] in
        Alcotest.(check bool)
          "keys equal" true
          (Key.equal (Key.of_complex a) (Key.of_complex b)));
    Alcotest.test_case "facet split changes the key" `Quick (fun () ->
        (* same 1-skeleton, different facet structure *)
        let solid = cx [ [ 0; 1; 2 ] ] in
        let hollow = cx [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ] in
        Alcotest.(check bool)
          "keys differ" false
          (Key.equal (Key.of_complex solid) (Key.of_complex hollow)));
    Alcotest.test_case "hex round-trip" `Quick (fun () ->
        let k = Key.of_complex (cx [ [ 0; 1 ]; [ 2 ] ]) in
        match Key.of_hex_opt (Key.to_hex k) with
        | Some k' -> Alcotest.(check bool) "equal" true (Key.equal k k')
        | None -> Alcotest.fail "hex did not parse");
    Alcotest.test_case "bad hex rejected" `Quick (fun () ->
        Alcotest.(check bool) "short" true (Key.of_hex_opt "abc" = None);
        Alcotest.(check bool)
          "nonhex" true
          (Key.of_hex_opt (String.make 32 'z') = None));
  ]

(* ------------------------------------------------------------------ *)
(* LRU                                                                 *)
(* ------------------------------------------------------------------ *)

let lru_tests =
  [
    (* exact-count assertions need per-test metric prefixes: the Obs
       registry is process-global, so two Lrus sharing a prefix share
       counters *)
    Alcotest.test_case "eviction order is least-recently-used" `Quick (fun () ->
        let l = Lru.create ~metrics:"test.lru.evict" ~capacity:2 () in
        Lru.add l "a" 1;
        Lru.add l "b" 2;
        ignore (Lru.find_opt l "a");
        (* touches a, so b is now LRU *)
        Lru.add l "c" 3;
        Alcotest.(check (option int)) "a kept" (Some 1) (Lru.find_opt l "a");
        Alcotest.(check (option int)) "b evicted" None (Lru.find_opt l "b");
        Alcotest.(check (option int)) "c kept" (Some 3) (Lru.find_opt l "c");
        Alcotest.(check int) "one eviction" 1 (Lru.evictions l));
    Alcotest.test_case "counters track hits and misses" `Quick (fun () ->
        let l = Lru.create ~metrics:"test.lru.counts" ~capacity:4 () in
        Lru.add l 1 "x";
        ignore (Lru.find_opt l 1);
        ignore (Lru.find_opt l 2);
        Alcotest.(check int) "hits" 1 (Lru.hits l);
        Alcotest.(check int) "misses" 1 (Lru.misses l));
    Alcotest.test_case "overwrite keeps length" `Quick (fun () ->
        let l = Lru.create ~capacity:4 () in
        Lru.add l 1 "x";
        Lru.add l 1 "y";
        Alcotest.(check int) "length" 1 (Lru.length l);
        Alcotest.(check (option string)) "newest" (Some "y") (Lru.find_opt l 1));
    Alcotest.test_case "to_list is MRU first" `Quick (fun () ->
        let l = Lru.create ~capacity:4 () in
        Lru.add l 1 ();
        Lru.add l 2 ();
        Lru.add l 3 ();
        Alcotest.(check (list int))
          "order" [ 3; 2; 1 ]
          (List.map fst (Lru.to_list l)));
  ]

(* ------------------------------------------------------------------ *)
(* worker pool                                                         *)
(* ------------------------------------------------------------------ *)

let pool_tests =
  [
    Alcotest.test_case "run_all preserves order across domains" `Quick (fun () ->
        let p = Pool.create ~domains:2 () in
        let results = Pool.run_all p (List.init 20 (fun i () -> i * i)) in
        Pool.shutdown p;
        Alcotest.(check (list int)) "squares" (List.init 20 (fun i -> i * i)) results);
    Alcotest.test_case "exceptions propagate through await" `Quick (fun () ->
        let p = Pool.create ~domains:1 () in
        let fut = Pool.submit p (fun () -> failwith "boom") in
        Alcotest.check_raises "boom" (Failure "boom") (fun () -> Pool.await fut);
        Pool.shutdown p);
    Alcotest.test_case "zero domains runs inline" `Quick (fun () ->
        let p = Pool.create ~domains:0 () in
        Alcotest.(check int) "inline" 7 (Pool.await (Pool.submit p (fun () -> 7)));
        Pool.shutdown p);
    Alcotest.test_case "nested submit from a worker does not deadlock" `Quick
      (fun () ->
        let p = Pool.create ~domains:1 () in
        let outer =
          Pool.submit p (fun () ->
              (* the single worker is busy with us; inner must run inline *)
              Pool.await (Pool.submit p (fun () -> 41)) + 1)
        in
        Alcotest.(check int) "nested" 42 (Pool.await outer);
        Pool.shutdown p);
  ]

(* ------------------------------------------------------------------ *)
(* store persistence                                                   *)
(* ------------------------------------------------------------------ *)

let store_tests =
  [
    Alcotest.test_case "save/load round-trips entries" `Quick (fun () ->
        let entries =
          [
            (Key.of_complex (cx [ [ 0; 1; 2 ] ]),
             { Store.betti = [| 1; 0; 0 |]; connectivity = 2 });
            (Key.of_complex Complex.empty,
             { Store.betti = [||]; connectivity = -2 });
          ]
        in
        let path = Filename.temp_file "psph_store" ".txt" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Store.save path entries;
            let loaded = Store.load path in
            Alcotest.(check int) "count" 2 (List.length loaded);
            List.iter2
              (fun (k, (e : Store.entry)) (k', (e' : Store.entry)) ->
                Alcotest.(check bool) "key" true (Key.equal k k');
                Alcotest.(check (array int)) "betti" e.betti e'.betti;
                Alcotest.(check int) "conn" e.connectivity e'.connectivity)
              entries loaded));
    Alcotest.test_case "malformed lines are skipped" `Quick (fun () ->
        Alcotest.(check bool) "garbage" true (Store.entry_of_line "zzz" = None);
        Alcotest.(check bool)
          "bad betti" true
          (Store.entry_of_line (String.make 32 '0' ^ " 1 a,b") = None));
    Alcotest.test_case "tolerant loader: truncated final line" `Quick (fun () ->
        let good1 =
          Store.entry_to_line
            (Key.of_complex (cx [ [ 0; 1 ] ]))
            { Store.betti = [| 1; 0 |]; connectivity = 0 }
        in
        let good2 =
          Store.entry_to_line
            (Key.of_complex (cx [ [ 1; 2 ] ]))
            { Store.betti = [| 1; 0 |]; connectivity = 0 }
        in
        let path = Filename.temp_file "psph_trunc" ".txt" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out path in
            (* crash mid-flush: the third entry is cut off mid-key, no
               trailing newline *)
            output_string oc (good1 ^ "\n" ^ good2 ^ "\n");
            output_string oc (String.sub good1 0 17);
            close_out oc;
            Alcotest.(check int)
              "both whole entries survive" 2
              (List.length (Store.load path))));
    Alcotest.test_case "tolerant loader: garbage mid-file" `Quick (fun () ->
        let good k =
          Store.entry_to_line
            (Key.of_complex (cx [ [ 0; k ] ]))
            { Store.betti = [| 1; 0 |]; connectivity = 0 }
        in
        let path = Filename.temp_file "psph_garbage" ".txt" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out path in
            output_string oc
              (good 1 ^ "\n\x00\x01 not a line at all\n" ^ good 2 ^ "\n");
            close_out oc;
            let loaded = Store.load path in
            Alcotest.(check int) "entries around the garbage" 2
              (List.length loaded)));
    Alcotest.test_case "tolerant loader: empty file" `Quick (fun () ->
        let path = Filename.temp_file "psph_empty" ".txt" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () -> Alcotest.(check int) "no entries" 0 (List.length (Store.load path))));
    Alcotest.test_case "flush after corrupt load rewrites a clean store" `Quick
      (fun () ->
        let path = Filename.temp_file "psph_rewrite" ".txt" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let good =
              Store.entry_to_line
                (Key.of_complex (cx [ [ 0; 1 ] ]))
                { Store.betti = [| 1; 0 |]; connectivity = 0 }
            in
            let oc = open_out path in
            output_string oc (good ^ "\nbroken line\n" ^ String.sub good 0 9);
            close_out oc;
            let e = E.create ~domains:0 ~persist:path () in
            ignore (E.eval e (E.Psph { n = 1; values = 2 }));
            E.shutdown e;
            (* after the rewrite every line must parse again *)
            let ic = open_in path in
            let rec lines acc =
              match input_line ic with
              | l -> lines (l :: acc)
              | exception End_of_file -> List.rev acc
            in
            let ls = lines [] in
            close_in ic;
            Alcotest.(check bool) "store grew" true (List.length ls >= 2);
            List.iter
              (fun l ->
                Alcotest.(check bool) "line parses" true
                  (Store.entry_of_line l <> None))
              ls));
    Alcotest.test_case "engine reloads a persisted cache" `Quick (fun () ->
        let path = Filename.temp_file "psph_persist" ".txt" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let spec = E.Psph { n = 2; values = 2 } in
            let e1 = E.create ~domains:0 ~persist:path () in
            let r1 = E.eval e1 spec in
            E.shutdown e1;
            let e2 = E.create ~domains:0 ~persist:path () in
            let r2 = E.eval e2 spec in
            E.shutdown e2;
            Alcotest.(check bool) "fresh engine, warm cache" true r2.E.cached;
            Alcotest.(check (array int))
              "same betti" r1.E.answer.E.betti r2.E.answer.E.betti));
  ]

(* ------------------------------------------------------------------ *)
(* engine vs direct Homology, including the cache-hit path             *)
(* ------------------------------------------------------------------ *)

let gen_psph =
  QCheck2.Gen.(
    int_range 0 3 >>= fun n ->
    let values = list_size (int_range 1 3) (int_range 0 3) in
    list_repeat (n + 1) values
    |> map (fun vss ->
           let vss = Array.of_list vss in
           Psph.create
             ~base:(Simplex.proc_simplex n)
             ~values:(fun p -> List.map (fun v -> Label.Int v) vss.(Pid.to_int p))))

(* random small facet lists over anonymous vertices: not pseudospheres, so
   the engine sees arbitrary complexes too *)
let gen_facets =
  QCheck2.Gen.(
    list_size (int_range 0 6)
      (list_size (int_range 1 4) (int_range 0 7) |> map (List.sort_uniq Int.compare))
    |> map (fun ls -> cx ls))

let agrees c =
  let e = Lazy.force engine in
  let direct_betti = Homology.betti c in
  let direct_conn = Homology.connectivity c in
  let r1 = E.eval e (E.Explicit c) in
  let r2 = E.eval e (E.Explicit c) in
  r1.E.answer.E.betti = direct_betti
  && r1.E.answer.E.connectivity = direct_conn
  && r2.E.cached
  && r2.E.answer.E.betti = direct_betti
  && r2.E.answer.E.connectivity = direct_conn

let engine_props =
  let open QCheck2 in
  [
    Test.make ~count:100
      ~name:"engine = Homology on random psi(P^n;U), twice (cache hit)" gen_psph
      (fun ps -> agrees (Psph.realize ~vertex:Psph.default_vertex ps));
    Test.make ~count:100
      ~name:"engine = Homology on random facet complexes, twice" gen_facets
      agrees;
  ]
  |> List.map QCheck_alcotest.to_alcotest

let engine_unit_tests =
  [
    Alcotest.test_case "model spec matches direct construction" `Quick (fun () ->
        let e = Lazy.force engine in
        let r =
          E.eval e
            (E.Model
               {
                 model = "sync";
                 params = { Model_complex.default_spec with n = 2 };
               })
        in
        let direct =
          Sync_complex.rounds ~k:1 ~r:1
            (Input_complex.simplex_of_inputs [ (0, 0); (1, 1); (2, 0) ])
        in
        Alcotest.(check (array int)) "betti" (Homology.betti direct) r.E.answer.E.betti;
        Alcotest.(check int)
          "connectivity" (Homology.connectivity direct)
          r.E.answer.E.connectivity);
    Alcotest.test_case "batch answers match solo answers, in order" `Quick
      (fun () ->
        let e = Lazy.force engine in
        let specs =
          [
            E.Psph { n = 2; values = 2 };
            E.Psph { n = 3; values = 2 };
            E.Psph { n = 2; values = 2 };
            E.Explicit (cx [ [ 0; 1 ]; [ 1; 2 ] ]);
          ]
        in
        let batch = E.eval_batch e specs in
        Alcotest.(check int) "length" 4 (List.length batch);
        List.iter2
          (fun spec (br : E.result) ->
            let solo = E.eval e spec in
            Alcotest.(check (array int)) "betti" solo.E.answer.E.betti br.E.answer.E.betti;
            Alcotest.(check bool) "key" true (Key.equal solo.E.key br.E.key))
          specs batch);
    Alcotest.test_case "parallel rank fan-out agrees on a large complex" `Quick
      (fun () ->
        (* par_threshold is 64 here, so this goes through the pool path *)
        let c = Psph.realize ~vertex:Psph.default_vertex (Psph.binary 4) in
        let e = Lazy.force engine in
        let r = E.eval e (E.Explicit c) in
        Alcotest.(check (array int)) "betti" (Homology.betti c) r.E.answer.E.betti);
    Alcotest.test_case "stats counters move" `Quick (fun () ->
        let s = E.stats (Lazy.force engine) in
        Alcotest.(check bool) "queries > 0" true (s.E.queries > 0);
        Alcotest.(check bool) "hits > 0" true (s.E.hits > 0);
        Alcotest.(check bool) "misses > 0" true (s.E.misses > 0);
        Alcotest.(check int) "domains" 2 s.E.domains);
  ]

(* ------------------------------------------------------------------ *)
(* tiered solver: eval_conn, modes, provenance                         *)
(* ------------------------------------------------------------------ *)

let tier_name = function
  | E.Cached -> "cached"
  | E.Symbolic -> "symbolic"
  | E.Numeric -> "numeric"

let async2 =
  E.Model
    {
      model = "async";
      params = { Model_complex.n = 2; f = 1; k = 1; p = 2; r = 1; ext = [] };
    }

(* sequential engines: these cases assert exact cache/tier transitions *)
let with_solver_engine f =
  let e = E.create ~domains:0 ~capacity:64 () in
  Fun.protect ~finally:(fun () -> E.shutdown e) (fun () -> f e)

let solver_tier_tests =
  [
    Alcotest.test_case "auto answers a model query symbolically, never cached"
      `Quick (fun () ->
        with_solver_engine @@ fun e ->
        let r1 = E.eval_conn e async2 in
        Alcotest.(check string) "tier" "symbolic" (tier_name r1.E.solver.E.tier);
        Alcotest.(check bool) "has a rule" true (r1.E.solver.E.rule <> None);
        Alcotest.(check bool) "no betti realized" true (r1.E.answer.E.betti = [||]);
        Alcotest.(check bool) "not cached" false r1.E.cached;
        (* symbolic answers are free to rederive; the cache stays numeric *)
        let r2 = E.eval_conn e async2 in
        Alcotest.(check string) "still symbolic" "symbolic"
          (tier_name r2.E.solver.E.tier);
        Alcotest.(check bool) "stable key" true (Key.equal r1.E.key r2.E.key));
    Alcotest.test_case "numeric tier records Morse provenance, then the cache"
      `Quick (fun () ->
        with_solver_engine @@ fun e ->
        let r1 = E.eval_conn ~mode:E.Numeric_only e async2 in
        Alcotest.(check string) "tier" "numeric" (tier_name r1.E.solver.E.tier);
        Alcotest.(check bool) "cells_removed recorded" true
          (r1.E.solver.E.cells_removed <> None);
        let r2 = E.eval_conn ~mode:E.Numeric_only e async2 in
        Alcotest.(check string) "warm tier" "cached" (tier_name r2.E.solver.E.tier);
        Alcotest.(check bool) "cached" true r2.E.cached;
        (* auto prefers the exact warm slot over rederiving the bound *)
        let r3 = E.eval_conn e async2 in
        Alcotest.(check string) "auto hits cache" "cached"
          (tier_name r3.E.solver.E.tier));
    Alcotest.test_case "check mode agrees for every registered model, small n"
      `Quick (fun () ->
        with_solver_engine @@ fun e ->
        let checked = ref 0 in
        List.iter
          (fun (module M : Model_complex.MODEL) ->
            if not (String.length M.name >= 5 && String.sub M.name 0 5 = "test-")
            then
              List.iter
                (fun r ->
                  let params =
                    { Model_complex.n = 2; f = 1; k = 1; p = 2; r; ext = [] }
                  in
                  match M.validate params with
                  | Error _ -> ()
                  | Ok _ -> (
                      let res =
                        E.eval_conn ~mode:E.Check e
                          (E.Model { model = M.name; params })
                      in
                      match res.E.solver.E.checked with
                      | Some bound ->
                          incr checked;
                          Alcotest.(check bool)
                            (Printf.sprintf "%s r=%d bound holds" M.name r)
                            true
                            (res.E.answer.E.connectivity >= bound)
                      | None -> ()))
                [ 0; 1; 2 ])
          (Model_complex.all ());
        Alcotest.(check bool) "some checks ran" true (!checked > 0));
    Alcotest.test_case "symbolic-only fails when no derivation applies" `Quick
      (fun () ->
        with_solver_engine @@ fun e ->
        match
          E.eval_conn ~mode:E.Symbolic_only e (E.Explicit (cx [ [ 0; 1 ] ]))
        with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail "expected Failure for an explicit complex");
    Alcotest.test_case "eval (betti) rejects symbolic-only mode" `Quick
      (fun () ->
        with_solver_engine @@ fun e ->
        match E.eval ~mode:E.Symbolic_only e (E.Psph { n = 1; values = 2 }) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "n=7 r=3 sync query answers in O(formula)" `Quick
      (fun () ->
        (* the realized complex would be astronomically large; the solver
           must answer from the round lemma without building anything *)
        with_solver_engine @@ fun e ->
        let params =
          { Model_complex.n = 7; f = 3; k = 1; p = 2; r = 3; ext = [] }
        in
        let r = E.eval_conn e (E.Model { model = "sync"; params }) in
        Alcotest.(check string) "tier" "symbolic" (tier_name r.E.solver.E.tier);
        let (module Sync : Model_complex.MODEL) = Model_complex.get "sync" in
        Alcotest.(check (option string))
          "rule is the model's lemma" (Some Sync.connectivity_lemma)
          r.E.solver.E.rule;
        match Sync.expected_connectivity params ~m:7 with
        | Some c ->
            Alcotest.(check int) "lemma value" c r.E.answer.E.connectivity
        | None -> Alcotest.fail "sync lemma did not apply at n=7 r=3");
    Alcotest.test_case "psph query answers by Corollary 6" `Quick (fun () ->
        with_solver_engine @@ fun e ->
        let r = E.eval_conn e (E.Psph { n = 5; values = 3 }) in
        Alcotest.(check string) "tier" "symbolic" (tier_name r.E.solver.E.tier);
        Alcotest.(check (option string)) "rule" (Some "Corollary 6")
          r.E.solver.E.rule;
        Alcotest.(check int) "bound" 4 r.E.answer.E.connectivity);
    Alcotest.test_case "provenance renders tier-first, options in order" `Quick
      (fun () ->
        let p =
          {
            E.tier = E.Numeric;
            rule = Some "Lemma 12";
            steps = Some 3;
            cells_removed = Some 7;
            checked = Some 1;
          }
        in
        Alcotest.(check (list string))
          "field order"
          [ "tier"; "rule"; "steps"; "cells_removed"; "checked" ]
          (List.map fst (E.provenance_fields p)));
  ]

(* ------------------------------------------------------------------ *)
(* wire protocol                                                       *)
(* ------------------------------------------------------------------ *)

let obj_field name line =
  match Jsonl.of_string line with
  | Jsonl.Obj _ as o -> Jsonl.member name o
  | _ -> None

let serve_tests =
  [
    Alcotest.test_case "psph request answers with betti + connectivity" `Quick
      (fun () ->
        let e = Lazy.force engine in
        let resp = Serve.handle_line e {|{"id":9,"op":"psph","n":2,"values":2}|} in
        Alcotest.(check (option bool))
          "ok" (Some true)
          (Option.map (fun v -> v = Jsonl.Bool true) (obj_field "ok" resp));
        Alcotest.(check (option int)) "id" (Some 9)
          (Option.bind (obj_field "id" resp) Jsonl.to_int_opt);
        Alcotest.(check (option int)) "connectivity" (Some 1)
          (Option.bind (obj_field "connectivity" resp) Jsonl.to_int_opt);
        match Option.bind (obj_field "betti" resp) Jsonl.to_list_opt with
        | Some l ->
            Alcotest.(check (list int)) "betti" [ 1; 0; 1 ]
              (List.filter_map Jsonl.to_int_opt l)
        | None -> Alcotest.fail "no betti field");
    Alcotest.test_case "malformed line keeps serving" `Quick (fun () ->
        let e = Lazy.force engine in
        let resp = Serve.handle_line e "][ nope" in
        Alcotest.(check (option bool))
          "not ok" (Some true)
          (Option.map (fun v -> v = Jsonl.Bool false) (obj_field "ok" resp)));
    Alcotest.test_case "unknown op reports an error with id" `Quick (fun () ->
        let e = Lazy.force engine in
        let resp = Serve.handle_line e {|{"id":3,"op":"frobnicate"}|} in
        Alcotest.(check (option int)) "id" (Some 3)
          (Option.bind (obj_field "id" resp) Jsonl.to_int_opt);
        Alcotest.(check bool) "error present" true (obj_field "error" resp <> None));
    Alcotest.test_case "batch mixes successes and per-slot errors" `Quick
      (fun () ->
        let e = Lazy.force engine in
        let resp =
          Serve.handle_line e
            {|{"op":"batch","requests":[{"op":"psph","n":1,"values":2},{"op":"nope"}]}|}
        in
        match Option.bind (obj_field "results" resp) Jsonl.to_list_opt with
        | Some [ first; second ] ->
            Alcotest.(check bool) "first ok" true
              (Jsonl.member "ok" first = Some (Jsonl.Bool true));
            Alcotest.(check bool) "second failed" true
              (Jsonl.member "ok" second = Some (Jsonl.Bool false))
        | _ -> Alcotest.fail "expected two results");
    Alcotest.test_case "models op lists the registry in order" `Quick (fun () ->
        let e = Lazy.force engine in
        let resp = Serve.handle_line e {|{"op":"models"}|} in
        match Option.bind (obj_field "models" resp) Jsonl.to_list_opt with
        | Some l ->
            Alcotest.(check (list string))
              "names"
              (Model_complex.names ())
              (List.filter_map Jsonl.to_string_opt l)
        | None -> Alcotest.fail "no models field");
    Alcotest.test_case "model-complex reaches every registered model" `Quick
      (fun () ->
        let e = Lazy.force engine in
        List.iter
          (fun name ->
            let resp =
              Serve.handle_line e
                (Printf.sprintf {|{"op":"model-complex","model":%S,"n":2}|} name)
            in
            Alcotest.(check (option bool))
              (name ^ " ok") (Some true)
              (Option.map (fun v -> v = Jsonl.Bool true) (obj_field "ok" resp)))
          (Model_complex.names ());
        let resp =
          Serve.handle_line e {|{"op":"model-complex","model":"nope","n":2}|}
        in
        match Option.bind (obj_field "error" resp) Jsonl.to_string_opt with
        | Some msg ->
            (* the error names the alternatives *)
            List.iter
              (fun name ->
                let found =
                  let n = String.length name and m = String.length msg in
                  let rec go i =
                    i + n <= m && (String.sub msg i n = name || go (i + 1))
                  in
                  go 0
                in
                Alcotest.(check bool) ("lists " ^ name) true found)
              (Model_complex.names ())
        | None -> Alcotest.fail "no error for unknown model");
    Alcotest.test_case "model-complex reads model-owned ext fields" `Quick
      (fun () ->
        let e = Lazy.force engine in
        let key_of line =
          let resp = Serve.handle_line e line in
          match Option.bind (obj_field "key" resp) Jsonl.to_string_opt with
          | Some k -> k
          | None -> Alcotest.fail ("no key in response to " ^ line)
        in
        (* enum name and integer code spellings land on one cache key *)
        let by_name =
          key_of {|{"op":"model-complex","model":"byz","n":2,"t":2,"equiv":"none"}|}
        in
        let by_code =
          key_of {|{"op":"model-complex","model":"byz","n":2,"t":2,"equiv":0}|}
        in
        Alcotest.(check string) "byz spellings converge" by_name by_code;
        let default_key = key_of {|{"op":"model-complex","model":"byz","n":2}|} in
        Alcotest.(check bool) "t=2 is a different complex" true
          (by_name <> default_key);
        let dyn_name =
          key_of {|{"op":"model-complex","model":"dyn","n":2,"adv":"strong"}|}
        in
        let dyn_code = key_of {|{"op":"model-complex","model":"dyn","n":2,"adv":1}|} in
        Alcotest.(check string) "dyn spellings converge" dyn_name dyn_code;
        (* a value the model's parser rejects answers an error, not a 500 *)
        let resp =
          Serve.handle_line e
            {|{"op":"model-complex","model":"byz","n":2,"equiv":"maybe"}|}
        in
        Alcotest.(check (option bool))
          "bad enum value rejected" (Some true)
          (Option.map (fun v -> v = Jsonl.Bool false) (obj_field "ok" resp)));
    Alcotest.test_case "models op advertises ext parameter metadata" `Quick
      (fun () ->
        let e = Lazy.force engine in
        let resp = Serve.handle_line e {|{"op":"models"}|} in
        match obj_field "params" resp with
        | None -> Alcotest.fail "no params field"
        | Some params ->
            let byz =
              match Jsonl.member "byz" params with
              | Some v -> v
              | None -> Alcotest.fail "no byz entry"
            in
            Alcotest.(check bool) "byz declares t" true
              (Jsonl.member "t" byz <> None);
            Alcotest.(check bool) "byz declares equiv" true
              (Jsonl.member "equiv" byz <> None);
            (* extension-free models advertise nothing *)
            Alcotest.(check bool) "async has no entry" true
              (Jsonl.member "async" params = None));
    Alcotest.test_case "connectivity answers a model query with provenance"
      `Quick (fun () ->
        let e = Lazy.force engine in
        let resp =
          Serve.handle_line e
            {|{"op":"connectivity","model":"async","n":2,"r":1,"solver":"symbolic"}|}
        in
        Alcotest.(check (option bool))
          "ok" (Some true)
          (Option.map (fun v -> v = Jsonl.Bool true) (obj_field "ok" resp));
        Alcotest.(check bool) "no betti member" true (obj_field "betti" resp = None);
        Alcotest.(check bool) "connectivity present" true
          (obj_field "connectivity" resp <> None);
        match obj_field "solver" resp with
        | Some solver ->
            Alcotest.(check (option string))
              "tier" (Some "symbolic")
              (Option.bind (Jsonl.member "tier" solver) Jsonl.to_string_opt);
            Alcotest.(check bool) "rule present" true
              (Jsonl.member "rule" solver <> None)
        | None -> Alcotest.fail "no solver field");
    Alcotest.test_case "connectivity psph form honors --solver numeric" `Quick
      (fun () ->
        let e = Lazy.force engine in
        let resp =
          Serve.handle_line e
            {|{"op":"connectivity","n":2,"values":2,"solver":"numeric"}|}
        in
        match obj_field "solver" resp with
        | Some solver ->
            let tier =
              Option.bind (Jsonl.member "tier" solver) Jsonl.to_string_opt
            in
            (* numeric on a cold slot, cached once another case warmed it *)
            Alcotest.(check bool) "numeric or cached" true
              (tier = Some "numeric" || tier = Some "cached")
        | None -> Alcotest.fail "no solver field");
    Alcotest.test_case "connectivity solver=check reports the verified bound"
      `Quick (fun () ->
        let e = Lazy.force engine in
        let resp =
          Serve.handle_line e
            {|{"op":"connectivity","model":"iis","n":2,"r":1,"solver":"check"}|}
        in
        Alcotest.(check (option bool))
          "ok" (Some true)
          (Option.map (fun v -> v = Jsonl.Bool true) (obj_field "ok" resp));
        match obj_field "solver" resp with
        | Some solver ->
            Alcotest.(check bool) "checked present" true
              (Jsonl.member "checked" solver <> None)
        | None -> Alcotest.fail "no solver field");
    Alcotest.test_case "bad solver value answers an error" `Quick (fun () ->
        let e = Lazy.force engine in
        let resp =
          Serve.handle_line e
            {|{"op":"connectivity","n":1,"values":2,"solver":"bogus"}|}
        in
        Alcotest.(check (option bool))
          "not ok" (Some true)
          (Option.map (fun v -> v = Jsonl.Bool false) (obj_field "ok" resp)));
    Alcotest.test_case "betti op rejects solver=symbolic" `Quick (fun () ->
        let e = Lazy.force engine in
        let resp =
          Serve.handle_line e
            {|{"op":"psph","n":1,"values":2,"solver":"symbolic"}|}
        in
        Alcotest.(check (option bool))
          "not ok" (Some true)
          (Option.map (fun v -> v = Jsonl.Bool false) (obj_field "ok" resp)));
    Alcotest.test_case "batch members carry their own solver modes" `Quick
      (fun () ->
        let e = Lazy.force engine in
        let resp =
          Serve.handle_line e
            {|{"op":"batch","requests":[{"op":"connectivity","model":"async","n":2,"r":1,"solver":"symbolic"},{"op":"connectivity","n":1,"values":2,"solver":"bogus"}]}|}
        in
        match Option.bind (obj_field "results" resp) Jsonl.to_list_opt with
        | Some [ first; second ] ->
            Alcotest.(check bool) "first ok" true
              (Jsonl.member "ok" first = Some (Jsonl.Bool true));
            (match Jsonl.member "solver" first with
            | Some solver ->
                Alcotest.(check (option string))
                  "first tier" (Some "symbolic")
                  (Option.bind (Jsonl.member "tier" solver) Jsonl.to_string_opt)
            | None -> Alcotest.fail "first result has no solver field");
            Alcotest.(check bool) "second failed" true
              (Jsonl.member "ok" second = Some (Jsonl.Bool false))
        | _ -> Alcotest.fail "expected two results");
    Alcotest.test_case "stats op reports engine counters" `Quick (fun () ->
        let e = Lazy.force engine in
        let resp = Serve.handle_line e {|{"op":"stats"}|} in
        match obj_field "stats" resp with
        | Some stats ->
            Alcotest.(check bool) "has hits" true
              (Option.bind (Jsonl.member "hits" stats) Jsonl.to_int_opt <> None);
            Alcotest.(check bool) "stats carries metrics snapshot" true
              (obj_field "metrics" resp <> None)
        | None -> Alcotest.fail "no stats field");
    Alcotest.test_case "metrics op returns the registry snapshot" `Quick
      (fun () ->
        let e = Lazy.force engine in
        (* at least one query first, so engine spans exist *)
        ignore (Serve.handle_line e {|{"op":"psph","n":1,"values":2}|});
        let resp = Serve.handle_line e {|{"op":"metrics"}|} in
        match obj_field "metrics" resp with
        | None -> Alcotest.fail "no metrics field"
        | Some m -> (
            Alcotest.(check bool) "has counters" true
              (Jsonl.member "counters" m <> None);
            match Jsonl.member "spans" m with
            | None -> Alcotest.fail "no spans section"
            | Some spans -> (
                match Jsonl.member "engine.query" spans with
                | None -> Alcotest.fail "no engine.query span totals"
                | Some agg ->
                    let count =
                      Option.value ~default:0
                        (Option.bind (Jsonl.member "count" agg) Jsonl.to_int_opt)
                    in
                    Alcotest.(check bool) "engine spans recorded" true (count > 0))));
    ( (* satellite: any unexpected handler exception must answer the
         request (with its id) and leave the loop alive *)
      let module Poison : Model_complex.MODEL = struct
        let name = "test-poison"
        let doc = "test-only model whose construction raises"
        let ext_params = []
        let normalize spec = spec
        let validate spec = Ok spec
        let one_round _ _ = raise Not_found
        let rounds _ _ = raise Not_found
        let over_inputs _ _ = raise Not_found
        let pseudosphere_decomposition = None
        let expected_connectivity _ ~m:_ = None
        let connectivity_lemma = "none"
      end in
      Alcotest.test_case "handler exceptions answer instead of killing serve"
        `Quick (fun () ->
          (* registered at run time, after every registry-listing test has
             already executed *)
          Model_complex.register (module Poison);
          let e = Lazy.force engine in
          let resp =
            Serve.handle_line e
              {|{"id":77,"op":"model-complex","model":"test-poison","n":2}|}
          in
          Alcotest.(check (option bool))
            "not ok" (Some true)
            (Option.map (fun v -> v = Jsonl.Bool false) (obj_field "ok" resp));
          Alcotest.(check (option int))
            "id echoed" (Some 77)
            (Option.bind (obj_field "id" resp) Jsonl.to_int_opt);
          (match Option.bind (obj_field "error" resp) Jsonl.to_string_opt with
          | Some msg ->
              Alcotest.(check bool) "internal error reported" true
                (String.length msg > 0)
          | None -> Alcotest.fail "no error field");
          (* the loop must keep serving after the blow-up *)
          let next = Serve.handle_line e {|{"op":"psph","n":1,"values":2}|} in
          Alcotest.(check (option bool))
            "still serving" (Some true)
            (Option.map (fun v -> v = Jsonl.Bool true) (obj_field "ok" next))) );
    Alcotest.test_case "pathologically nested input answers an error" `Quick
      (fun () ->
        let e = Lazy.force engine in
        let bomb = String.concat "" (List.init 400_000 (fun _ -> "[")) in
        let resp = Serve.handle_line e bomb in
        Alcotest.(check (option bool))
          "not ok" (Some true)
          (Option.map (fun v -> v = Jsonl.Bool false) (obj_field "ok" resp)));
    Alcotest.test_case "trace nests serve -> engine -> pool -> homology" `Quick
      (fun () ->
        (* dedicated engine with real workers and a zero-ish parallel
           threshold, so a cold query must fan rank jobs to the pool *)
        let e = E.create ~domains:2 ~capacity:16 ~par_threshold:1 () in
        Obs.set_sink Obs.Memory;
        Obs.clear_records ();
        Fun.protect
          ~finally:(fun () ->
            Obs.set_sink Obs.Null;
            Obs.clear_records ();
            E.shutdown e)
          (fun () ->
            let resp = Serve.handle_line e {|{"op":"psph","n":3,"values":2}|} in
            Alcotest.(check (option bool))
              "ok" (Some true)
              (Option.map (fun v -> v = Jsonl.Bool true) (obj_field "ok" resp));
            let spans =
              List.filter_map
                (function
                  | Obs.Span_record { name; id; parent; _ } ->
                      Some (id, (name, parent))
                  | Obs.Event_record _ -> None)
                (Obs.records ())
            in
            let rec chain id =
              match List.assoc_opt id spans with
              | None -> []
              | Some (name, parent) -> (
                  name :: (match parent with None -> [] | Some p -> chain p))
            in
            let rank_chains =
              List.filter_map
                (fun (id, (name, _)) ->
                  if name = "homology.rank" then Some (chain id) else None)
                spans
            in
            Alcotest.(check bool) "some rank spans" true (rank_chains <> []);
            List.iter
              (fun c ->
                Alcotest.(check (list string))
                  "nesting"
                  [
                    "homology.rank"; "engine.pool.job"; "engine.query";
                    "serve.request";
                  ]
                  c)
              rank_chains));
    (* must stay last in the last suite: stops the shared engine's domains *)
    Alcotest.test_case "shutdown" `Quick (fun () ->
        E.shutdown (Lazy.force engine));
  ]

let suites =
  [
    ("engine keys", key_tests);
    ("engine lru", lru_tests);
    ("engine pool", pool_tests);
    ("engine store", store_tests);
    ("engine vs homology", engine_unit_tests @ engine_props);
    ("engine solver", solver_tier_tests);
    ("engine serve", serve_tests);
  ]
