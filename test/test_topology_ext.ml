(* Tests for the extended topology substrate: integral homology (Smith
   normal form), cones/suspensions, and shellability. *)

open Psph_topology

let v = Vertex.anon

let sx l = Simplex.of_list (List.map v l)

let cx ls = Complex.of_facets (List.map sx ls)

let circle = cx [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ]

let torus =
  cx
    (List.concat_map
       (fun i -> [ [ i; (i + 1) mod 7; (i + 3) mod 7 ]; [ i; (i + 2) mod 7; (i + 3) mod 7 ] ])
       [ 0; 1; 2; 3; 4; 5; 6 ])

let rp2 =
  cx
    [ [ 0; 1; 2 ]; [ 0; 2; 3 ]; [ 0; 3; 4 ]; [ 0; 4; 5 ]; [ 0; 1; 5 ];
      [ 1; 2; 4 ]; [ 2; 4; 5 ]; [ 2; 3; 5 ]; [ 1; 3; 5 ]; [ 1; 3; 4 ] ]

let groups_to_strings gs = Array.to_list (Array.map Homology_z.group_to_string gs)

(* ------------------------------------------------------------------ *)
(* Smith normal form                                                   *)
(* ------------------------------------------------------------------ *)

let snf_tests =
  [
    Alcotest.test_case "empty matrix" `Quick (fun () ->
        Alcotest.(check (list int)) "diag" [] (Snf.smith_diagonal [||]);
        Alcotest.(check int) "rank" 0 (Snf.rank [||]));
    Alcotest.test_case "identity" `Quick (fun () ->
        Alcotest.(check (list int)) "diag" [ 1; 1 ]
          (Snf.smith_diagonal [| [| 1; 0 |]; [| 0; 1 |] |]));
    Alcotest.test_case "diag (2,6) normalizes divisibility" `Quick (fun () ->
        (* SNF of diag(2,6) is diag(2,6); of diag(4,6) is diag(2,12) *)
        Alcotest.(check (list int)) "2,6" [ 2; 6 ]
          (Snf.smith_diagonal [| [| 2; 0 |]; [| 0; 6 |] |]);
        Alcotest.(check (list int)) "4,6 -> 2,12" [ 2; 12 ]
          (Snf.smith_diagonal [| [| 4; 0 |]; [| 0; 6 |] |]));
    Alcotest.test_case "rank-deficient" `Quick (fun () ->
        Alcotest.(check int) "rank 1" 1 (Snf.rank [| [| 1; 2 |]; [| 2; 4 |] |]));
    Alcotest.test_case "classic torsion example" `Quick (fun () ->
        (* [[2, 4], [6, 8]]: det = -8, SNF = diag(2, 4) *)
        Alcotest.(check (list int)) "2,4" [ 2; 4 ]
          (Snf.smith_diagonal [| [| 2; 4 |]; [| 6; 8 |] |]));
    Alcotest.test_case "negative entries" `Quick (fun () ->
        Alcotest.(check (list int)) "diag" [ 1 ]
          (Snf.smith_diagonal [| [| -1; 3 |] |]));
    Alcotest.test_case "divisibility invariant on random-ish matrices" `Quick
      (fun () ->
        let samples =
          [ [| [| 3; 1; 2 |]; [| 1; 4; 1 |]; [| 2; 1; 5 |] |];
            [| [| 2; 0; 0 |]; [| 0; 3; 0 |]; [| 0; 0; 5 |] |];
            [| [| 0; 2 |]; [| 3; 0 |] |] ]
        in
        List.iter
          (fun m ->
            let d = Snf.smith_diagonal m in
            let rec chain = function
              | a :: (b :: _ as rest) ->
                  Alcotest.(check int) "divides" 0 (b mod a);
                  chain rest
              | _ -> ()
            in
            chain d;
            List.iter (fun x -> Alcotest.(check bool) "positive" true (x > 0)) d)
          samples);
  ]

(* ------------------------------------------------------------------ *)
(* Integral homology                                                   *)
(* ------------------------------------------------------------------ *)

let homology_z_tests =
  [
    Alcotest.test_case "circle: H = (Z, Z)" `Quick (fun () ->
        Alcotest.(check (list string)) "groups" [ "Z"; "Z" ]
          (groups_to_strings (Homology_z.homology circle)));
    Alcotest.test_case "2-sphere: H = (Z, 0, Z)" `Quick (fun () ->
        Alcotest.(check (list string)) "groups" [ "Z"; "0"; "Z" ]
          (groups_to_strings (Homology_z.homology (Constructions.sphere 2))));
    Alcotest.test_case "torus: H = (Z, Z^2, Z)" `Quick (fun () ->
        Alcotest.(check (list string)) "groups" [ "Z"; "Z^2"; "Z" ]
          (groups_to_strings (Homology_z.homology torus)));
    Alcotest.test_case "projective plane: H_1 = Z/2 (torsion!)" `Quick (fun () ->
        Alcotest.(check (list string)) "groups" [ "Z"; "Z/2"; "0" ]
          (groups_to_strings (Homology_z.homology rp2));
        Alcotest.(check bool) "has torsion" false (Homology_z.is_torsion_free rp2));
    Alcotest.test_case "integral vs Z/2 on torsion-free spaces" `Quick (fun () ->
        List.iter
          (fun c ->
            Alcotest.(check bool) "torsion-free" true (Homology_z.is_torsion_free c);
            Alcotest.(check (list int))
              "betti agree"
              (Array.to_list (Homology.betti c))
              (Array.to_list (Homology_z.betti_z c)))
          [ circle; Constructions.sphere 2; torus; Constructions.solid 3 ]);
    Alcotest.test_case "RP2: Z/2 betti differ from integral betti" `Quick (fun () ->
        Alcotest.(check (list int)) "Z/2" [ 1; 1; 1 ] (Array.to_list (Homology.betti rp2));
        Alcotest.(check (list int)) "Z" [ 1; 0; 0 ] (Array.to_list (Homology_z.betti_z rp2)));
    Alcotest.test_case "reduced homology of a point" `Quick (fun () ->
        Alcotest.(check (list string)) "trivial" [ "0" ]
          (groups_to_strings (Homology_z.reduced_homology (Constructions.solid 0))));
    Alcotest.test_case "group printing" `Quick (fun () ->
        Alcotest.(check string) "mixed" "Z + Z/2"
          (Homology_z.group_to_string { Homology_z.rank = 1; torsion = [ 2 ] });
        Alcotest.(check string) "zero" "0"
          (Homology_z.group_to_string { Homology_z.rank = 0; torsion = [] }));
    Alcotest.test_case "protocol complexes are torsion-free" `Quick (fun () ->
        (* closes the Z/2-vs-topological connectivity gap on real instances *)
        let s =
          Pseudosphere.Input_complex.simplex_of_inputs [ (0, 0); (1, 1); (2, 0) ]
        in
        List.iter
          (fun c -> Alcotest.(check bool) "torsion-free" true (Homology_z.is_torsion_free c))
          [
            Pseudosphere.Async_complex.one_round ~n:2 ~f:1 s;
            Pseudosphere.Sync_complex.one_round ~k:1 s;
            Pseudosphere.Semi_sync_complex.one_round ~k:1 ~p:2 ~n:2 s;
          ]);
  ]

(* ------------------------------------------------------------------ *)
(* Cones and suspensions                                               *)
(* ------------------------------------------------------------------ *)

let construction_tests =
  [
    Alcotest.test_case "cone over a circle is contractible" `Quick (fun () ->
        let c = Constructions.cone ~apex:(v 99) circle in
        Alcotest.(check (list int)) "betti" [ 1; 0; 0 ] (Array.to_list (Homology.betti c));
        Alcotest.(check bool) "collapsible" true (Collapse.is_collapsible_to_point c));
    Alcotest.test_case "cone over empty is a point" `Quick (fun () ->
        let c = Constructions.cone ~apex:(v 0) Complex.empty in
        Alcotest.(check int) "one simplex" 1 (Complex.num_simplices c));
    Alcotest.test_case "cone rejects clashing apex" `Quick (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Constructions.cone: apex already occurs in the complex")
          (fun () -> ignore (Constructions.cone ~apex:(v 0) circle)));
    Alcotest.test_case "suspension of a circle is a 2-sphere" `Quick (fun () ->
        let s = Constructions.suspension ~north:(v 90) ~south:(v 91) circle in
        Alcotest.(check (list int)) "betti" [ 1; 0; 1 ] (Array.to_list (Homology.betti s)));
    Alcotest.test_case "suspension shifts reduced homology" `Quick (fun () ->
        List.iter
          (fun c ->
            let s = Constructions.suspension ~north:(v 90) ~south:(v 91) c in
            let rb = Homology.reduced_betti c and rs = Homology.reduced_betti s in
            Array.iteri
              (fun d b ->
                if d + 1 <= Array.length rs - 1 then
                  Alcotest.(check int) (Printf.sprintf "dim %d" d) b rs.(d + 1))
              rb)
          [ circle; Constructions.sphere 0; cx [ [ 0 ]; [ 1 ]; [ 2 ] ] ]);
    Alcotest.test_case "sphere n has the right homology" `Quick (fun () ->
        List.iter
          (fun n ->
            let b = Homology.reduced_betti (Constructions.sphere n) in
            Array.iteri
              (fun d x -> Alcotest.(check int) "reduced" (if d = n then 1 else 0) x)
              b)
          [ 0; 1; 2; 3 ]);
    Alcotest.test_case "sphere (-1) is empty" `Quick (fun () ->
        Alcotest.(check bool) "empty" true (Complex.is_empty (Constructions.sphere (-1))));
  ]

(* ------------------------------------------------------------------ *)
(* Shellability                                                        *)
(* ------------------------------------------------------------------ *)

let shelling_tests =
  [
    Alcotest.test_case "boundary of a simplex is shellable" `Quick (fun () ->
        Alcotest.(check bool) "sphere 1" true (Shelling.is_shellable (Constructions.sphere 1));
        Alcotest.(check bool) "sphere 2" true (Shelling.is_shellable (Constructions.sphere 2)));
    Alcotest.test_case "solid simplices are shellable" `Quick (fun () ->
        Alcotest.(check bool) "solid 3" true (Shelling.is_shellable (Constructions.solid 3)));
    Alcotest.test_case "disjoint edges are not shellable" `Quick (fun () ->
        Alcotest.(check bool) "not" false (Shelling.is_shellable (cx [ [ 0; 1 ]; [ 2; 3 ] ])));
    Alcotest.test_case "non-pure complexes are rejected" `Quick (fun () ->
        Alcotest.(check bool) "none" true
          (Shelling.find_shelling (cx [ [ 0; 1; 2 ]; [ 3; 4 ] ]) = None));
    Alcotest.test_case "is_shelling_order detects bad orders" `Quick (fun () ->
        (* two triangles meeting at one vertex: any order fails the
           codimension-1 condition *)
        let f1 = sx [ 0; 1; 2 ] and f2 = sx [ 2; 3; 4 ] in
        Alcotest.(check bool) "bad" false (Shelling.is_shelling_order [ f1; f2 ]));
    Alcotest.test_case "octahedron (binary pseudosphere) is shellable" `Quick
      (fun () ->
        let oct =
          Pseudosphere.Psph.realize ~vertex:Pseudosphere.Psph.default_vertex
            (Pseudosphere.Psph.binary 2)
        in
        match Shelling.find_shelling oct with
        | Some order ->
            Alcotest.(check int) "all facets" 8 (List.length order);
            Alcotest.(check bool) "valid" true (Shelling.is_shelling_order order)
        | None -> Alcotest.fail "expected a shelling");
    Alcotest.test_case "Figure 3 one-round sync complex is not pure" `Quick
      (fun () ->
        (* the union mixes a triangle with squares: shellability in the
           classical pure sense does not apply, find_shelling refuses *)
        let s =
          Pseudosphere.Input_complex.simplex_of_inputs [ (0, 0); (1, 1); (2, 0) ]
        in
        let c = Pseudosphere.Sync_complex.one_round ~k:1 s in
        Alcotest.(check bool) "not pure" false (Complex.is_pure c);
        Alcotest.(check bool) "refused" true (Shelling.find_shelling c = None));
    Alcotest.test_case "async one-round complex is shellable" `Quick (fun () ->
        let s =
          Pseudosphere.Input_complex.simplex_of_inputs [ (0, 0); (1, 1) ]
        in
        let c = Pseudosphere.Async_complex.one_round ~n:1 ~f:1 s in
        Alcotest.(check bool) "shellable" true (Shelling.is_shellable c));
    Alcotest.test_case "empty and singleton shellings" `Quick (fun () ->
        Alcotest.(check bool) "empty" true (Shelling.is_shellable Complex.empty);
        Alcotest.(check bool) "point" true (Shelling.is_shellable (Constructions.solid 0)));
  ]

let suites =
  [
    ("topology.snf", snf_tests);
    ("topology.homology_z", homology_z_tests);
    ("topology.constructions", construction_tests);
    ("topology.shelling", shelling_tests);
  ]
