(* Tests for the second extension wave: Theorem 5/7 checkers, the knowledge
   layer, the generalized decision search, and complex serialization. *)

open Psph_topology
open Psph_model
open Pseudosphere
open Psph_agreement

let input_simplex n =
  Input_complex.simplex_of_inputs (List.init (n + 1) (fun i -> (i, i mod 2)))

let init_label v = View.to_label (View.init v)

(* ------------------------------------------------------------------ *)
(* Theorems 5 and 7                                                    *)
(* ------------------------------------------------------------------ *)

let theorem_tests =
  [
    Alcotest.test_case "Theorem 5 on the async operator (n=2 f=1, c=1)" `Quick
      (fun () ->
        (* A^1 sends S^l to an (l - (n - f) - 1)-connected complex, so
           c = n - f = 1 *)
        let inst =
          Connectivity_theorems.check_theorem5
            ~op:(Async_complex.one_round ~n:2 ~f:1)
            ~c:1 ~base:(input_simplex 2)
            ~values:(fun _ -> [ init_label 0; init_label 1 ])
        in
        Alcotest.(check bool) "hypothesis" true inst.Connectivity_theorems.hypothesis_holds;
        Alcotest.(check bool) "conclusion" true inst.Connectivity_theorems.conclusion_holds;
        Alcotest.(check int) "faces" 7 inst.Connectivity_theorems.faces_checked);
    Alcotest.test_case "Theorem 5 on the async operator (n=2 f=2, c=0)" `Quick
      (fun () ->
        let inst =
          Connectivity_theorems.check_theorem5
            ~op:(Async_complex.one_round ~n:2 ~f:2)
            ~c:0 ~base:(input_simplex 2)
            ~values:(fun _ -> [ init_label 0; init_label 1 ])
        in
        Alcotest.(check bool) "holds" true (Connectivity_theorems.holds inst);
        Alcotest.(check bool) "hypothesis" true inst.Connectivity_theorems.hypothesis_holds);
    Alcotest.test_case "Theorem 5 with the identity operator is Corollary 6" `Quick
      (fun () ->
        let identity s = Complex.of_simplex s in
        let inst =
          Connectivity_theorems.check_theorem5 ~op:identity ~c:0
            ~base:(input_simplex 2)
            ~values:(fun _ -> [ init_label 0; init_label 1; init_label 2 ])
        in
        Alcotest.(check bool) "hypothesis" true inst.Connectivity_theorems.hypothesis_holds;
        Alcotest.(check bool) "conclusion" true inst.Connectivity_theorems.conclusion_holds);
    Alcotest.test_case "Theorem 7 on unions with common intersection" `Quick
      (fun () ->
        let identity s = Complex.of_simplex s in
        let inst =
          Connectivity_theorems.check_theorem7 ~op:identity ~c:0
            ~base:(input_simplex 2)
            ~families:
              [ [ init_label 0; init_label 1 ]; [ init_label 0; init_label 2 ] ]
        in
        Alcotest.(check bool) "holds" true (Connectivity_theorems.holds inst));
    Alcotest.test_case "Theorem 7 rejects empty intersections" `Quick (fun () ->
        let identity s = Complex.of_simplex s in
        Alcotest.check_raises "raises"
          (Invalid_argument "Connectivity_theorems.check_theorem7: empty common intersection")
          (fun () ->
            ignore
              (Connectivity_theorems.check_theorem7 ~op:identity ~c:0
                 ~base:(input_simplex 1)
                 ~families:[ [ init_label 0 ]; [ init_label 1 ] ])));
    Alcotest.test_case "implication is vacuous when the hypothesis fails" `Quick
      (fun () ->
        (* an operator returning a disconnected complex on edges *)
        let bad s =
          if Simplex.dim s >= 1 then
            Complex.of_facets
              (List.map (fun v -> Simplex.of_list [ v ]) (Simplex.vertices s))
          else Complex.of_simplex s
        in
        let inst =
          Connectivity_theorems.check_theorem5 ~op:bad ~c:0 ~base:(input_simplex 1)
            ~values:(fun _ -> [ init_label 0; init_label 1 ])
        in
        Alcotest.(check bool) "hypothesis fails" false
          inst.Connectivity_theorems.hypothesis_holds;
        Alcotest.(check bool) "holds vacuously" true (Connectivity_theorems.holds inst));
  ]

(* ------------------------------------------------------------------ *)
(* Knowledge                                                           *)
(* ------------------------------------------------------------------ *)

let knowledge_tests =
  let inputs = [ (0, 0); (1, 1); (2, 1) ] in
  let s = Input_complex.simplex_of_inputs inputs in
  let c1 = Sync_complex.one_round ~k:1 s in
  [
    Alcotest.test_case "after hearing everyone, P0's value is known" `Quick
      (fun () ->
        (* the all-heard vertex of P1 knows value 0 is present *)
        let all_heard_p1 =
          List.find
            (fun v ->
              Vertex.pid v = Some 1
              && match v with
                 | Vertex.Proc (_, l) ->
                     Pid.Set.cardinal (View.heard_pids (View.of_label l)) = 3
                 | _ -> false)
            (Complex.vertices c1)
        in
        Alcotest.(check bool) "knows" true
          (Knowledge.knows c1 all_heard_p1 (Knowledge.fact_value_present 0)));
    Alcotest.test_case "a process that missed P0 does not know its value is kept"
      `Quick (fun () ->
        (* P1 hearing only {P1, P2}: in some compatible global states P0's
           value 0 survives only at P0 (failed) -- P1 cannot know that some
           LIVE process has seen it.  Here the weaker fact below is about
           presence in the global state, which P1 does know is possible but
           not guaranteed once P0's vertex is gone. *)
        let p1_missed_p0 =
          List.find
            (fun v ->
              Vertex.pid v = Some 1
              && match v with
                 | Vertex.Proc (_, l) ->
                     let h = View.heard_pids (View.of_label l) in
                     Pid.Set.equal h (Pid.Set.of_list [ 1; 2 ])
                 | _ -> false)
            (Complex.vertices c1)
        in
        Alcotest.(check bool) "does not know" false
          (Knowledge.knows c1 p1_missed_p0 (Knowledge.fact_value_present 0)));
    Alcotest.test_case "everyone_knows is stronger than knows" `Quick (fun () ->
        let fact = Knowledge.fact_value_present 1 in
        List.iter
          (fun facet ->
            if Knowledge.everyone_knows c1 facet fact then
              List.iter
                (fun v -> Alcotest.(check bool) "each knows" true (Knowledge.knows c1 v fact))
                (Simplex.vertices facet))
          (Complex.facets c1));
    Alcotest.test_case "E^k weakens as k grows" `Quick (fun () ->
        let fact = Knowledge.fact_value_present 1 in
        let e1 = Knowledge.iterate_everyone_knows c1 1 fact in
        let e2 = Knowledge.iterate_everyone_knows c1 2 fact in
        List.iter
          (fun facet ->
            if e2 facet then Alcotest.(check bool) "E2 -> E1" true (e1 facet))
          (Complex.facets c1));
    Alcotest.test_case "common knowledge on a connected complex needs global truth"
      `Quick (fun () ->
        (* value 0 is absent from some global states (P0 crashed unheard),
           and S^1 is connected: so value-0-presence is nowhere common
           knowledge *)
        Alcotest.(check bool) "connected" true (Complex.is_connected c1);
        let fact = Knowledge.fact_value_present 0 in
        List.iter
          (fun facet ->
            Alcotest.(check bool) "not common" false
              (Knowledge.common_knowledge_at c1 facet fact))
          (Complex.facets c1));
    Alcotest.test_case "a universally true fact is common knowledge" `Quick
      (fun () ->
        (* value 1 is held by both P1 and P2; one crash cannot erase it *)
        let fact = Knowledge.fact_value_present 1 in
        List.iter
          (fun facet ->
            Alcotest.(check bool) "common" true
              (Knowledge.common_knowledge_at c1 facet fact))
          (Complex.facets c1));
    Alcotest.test_case "component_facets spans the whole connected complex" `Quick
      (fun () ->
        match Complex.facets c1 with
        | facet :: _ ->
            Alcotest.(check int) "all facets" (List.length (Complex.facets c1))
              (List.length (Knowledge.component_facets c1 facet))
        | [] -> Alcotest.fail "no facets");
  ]

(* ------------------------------------------------------------------ *)
(* Generalized decision search                                         *)
(* ------------------------------------------------------------------ *)

let general_search_tests =
  [
    Alcotest.test_case "kset_constraint reproduces solve's verdicts" `Quick
      (fun () ->
        List.iter
          (fun (complex, k) ->
            let a =
              match Decision.solve ~complex ~allowed:Task.allowed ~k () with
              | Decision.Solution _ -> `S
              | Decision.Impossible -> `I
              | Decision.Unknown -> `U
            in
            let b =
              match
                Decision.solve_general ~complex ~domains:Task.allowed
                  ~partial_ok:(Decision.kset_constraint k) ()
              with
              | Decision.Solution _ -> `S
              | Decision.Impossible -> `I
              | Decision.Unknown -> `U
            in
            Alcotest.(check bool) "same" true (a = b))
          [
            (Async_complex.over_inputs ~n:2 ~f:1 ~r:1 (Input_complex.make ~n:2 ~values:[ 0; 1 ]), 1);
            (Sync_complex.over_inputs ~k:1 ~r:2 (Input_complex.make ~n:2 ~values:[ 0; 1 ]), 1);
            (Async_complex.over_inputs ~n:2 ~f:1 ~r:1 (Input_complex.make ~n:2 ~values:[ 0; 1; 2 ]), 2);
          ]);
    Alcotest.test_case "distinct_constraint: enough names succeed" `Quick (fun () ->
        (* assign pairwise distinct names per facet with a large namespace:
           trivially solvable by pid *)
        let c = Sync_complex.one_round ~k:1 (input_simplex 2) in
        let domains _ = [ 0; 1; 2 ] in
        match
          Decision.solve_general ~complex:c ~domains
            ~partial_ok:Decision.distinct_constraint ()
        with
        | Decision.Solution m ->
            (* verify distinctness on every facet *)
            List.iter
              (fun facet ->
                let names =
                  List.map (fun v -> Vertex.Map.find v m) (Simplex.vertices facet)
                in
                Alcotest.(check bool) "distinct" true
                  (List.length (List.sort_uniq Int.compare names) = List.length names))
              (Complex.facets c)
        | _ -> Alcotest.fail "expected solution");
    Alcotest.test_case "distinct_constraint: too few names fail" `Quick (fun () ->
        let c = Sync_complex.one_round ~k:1 (input_simplex 2) in
        let domains _ = [ 0; 1 ] in
        Alcotest.(check bool) "impossible" true
          (Decision.solve_general ~complex:c ~domains
             ~partial_ok:Decision.distinct_constraint ()
          = Decision.Impossible));
    Alcotest.test_case "leader election = consensus on seen pids" `Quick (fun () ->
        (* decide a participating pid, all agree: impossible on the 1-round
           async complex for the same connectivity reason as consensus *)
        let c =
          Async_complex.over_inputs ~n:2 ~f:1 ~r:1
            (Input_complex.make ~n:2 ~values:[ 0; 1 ])
        in
        let domains v =
          match v with
          | Vertex.Proc (_, l) ->
              Pid.Set.elements (View.seen_pids (View.of_label l))
          | _ -> []
        in
        Alcotest.(check bool) "impossible" true
          (Decision.solve_general ~complex:c ~domains
             ~partial_ok:(Decision.kset_constraint 1) ()
          = Decision.Impossible));
    Alcotest.test_case "budget exhaustion reports Unknown" `Quick (fun () ->
        let c = Sync_complex.one_round ~k:1 (input_simplex 2) in
        Alcotest.(check bool) "unknown" true
          (Decision.solve_general ~budget:2 ~complex:c ~domains:(fun _ -> [ 0; 1 ])
             ~partial_ok:(Decision.kset_constraint 1) ()
          = Decision.Unknown));
  ]

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let io_tests =
  let roundtrip_label l =
    Label.equal l (Complex_io.label_of_string (Complex_io.label_to_string l))
  in
  [
    Alcotest.test_case "label round-trips" `Quick (fun () ->
        List.iter
          (fun l -> Alcotest.(check bool) (Complex_io.label_to_string l) true (roundtrip_label l))
          [
            Label.Unit; Label.Bool true; Label.Bool false; Label.Int 42;
            Label.Int (-3); Label.Str "hello world"; Label.Str "with \"quotes\"";
            Label.Pid 5; Label.pid_set [ 0; 2; 4 ]; Label.Pid_set Pid.Set.empty;
            Label.Vec [| 1; 0; 2 |]; Label.Vec [||];
            Label.Pair (Label.Int 1, Label.pid_set [ 1 ]);
            Label.List [ Label.Unit; Label.Pair (Label.Pid 0, Label.Int 9) ];
            Label.List [];
          ]);
    Alcotest.test_case "vertex round-trips" `Quick (fun () ->
        List.iter
          (fun v ->
            Alcotest.(check bool) (Complex_io.vertex_to_string v) true
              (Vertex.equal v (Complex_io.vertex_of_string (Complex_io.vertex_to_string v))))
          [
            Vertex.anon 7;
            Vertex.proc 2 (Label.Int 5);
            Vertex.Bary [ Vertex.anon 0; Vertex.anon 1 ];
            Vertex.proc 0 (View.to_label (View.init 3));
          ]);
    Alcotest.test_case "simplex round-trips" `Quick (fun () ->
        let s = Simplex.of_procs [ (0, Label.Int 1); (1, Label.pid_set [ 0; 1 ]) ] in
        Alcotest.(check bool) "eq" true
          (Simplex.equal s (Complex_io.simplex_of_string (Complex_io.simplex_to_string s))));
    Alcotest.test_case "complexes round-trip (figures)" `Quick (fun () ->
        List.iter
          (fun c ->
            Alcotest.(check bool) "eq" true
              (Complex.equal c (Complex_io.complex_of_string (Complex_io.complex_to_string c))))
          [
            Psph.realize ~vertex:Psph.default_vertex (Psph.binary 2);
            Sync_complex.one_round ~k:1 (input_simplex 2);
            Constructions.sphere 2;
          ]);
    Alcotest.test_case "protocol complex with full views round-trips" `Quick
      (fun () ->
        let c = Async_complex.rounds ~n:1 ~f:1 ~r:2 (input_simplex 1) in
        Alcotest.(check bool) "eq" true
          (Complex.equal c (Complex_io.complex_of_string (Complex_io.complex_to_string c))));
    Alcotest.test_case "save and load" `Quick (fun () ->
        let c = Sync_complex.one_round ~k:1 (input_simplex 2) in
        let path = Filename.temp_file "psph" ".cx" in
        Complex_io.save path c;
        let c' = Complex_io.load path in
        Sys.remove path;
        Alcotest.(check bool) "eq" true (Complex.equal c c'));
    Alcotest.test_case "malformed input rejected" `Quick (fun () ->
        List.iter
          (fun text ->
            match Complex_io.label_of_string text with
            | exception Failure _ -> ()
            | _ -> Alcotest.fail ("accepted: " ^ text))
          [ "x"; "(i1"; "i1 extra"; "P{1,"; "b:maybe" ]);
  ]

let suites =
  [
    ("ext2.theorems_5_7", theorem_tests);
    ("ext2.knowledge", knowledge_tests);
    ("ext2.general_search", general_search_tests);
    ("ext2.serialization", io_tests);
  ]
