(* Unit and property tests for the simplicial-topology substrate. *)

open Psph_topology

let v = Vertex.anon

let sx l = Simplex.of_list (List.map v l)

let cx ls = Complex.of_facets (List.map sx ls)

(* ------------------------------------------------------------------ *)
(* Classical test spaces                                               *)
(* ------------------------------------------------------------------ *)

let point = cx [ [ 0 ] ]

let two_points = cx [ [ 0 ]; [ 1 ] ]

let interval = cx [ [ 0; 1 ] ]

let circle = cx [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ]

let solid_triangle = cx [ [ 0; 1; 2 ] ]

let sphere2 = Complex.boundary_complex (Simplex.of_list (List.map v [ 0; 1; 2; 3 ]))

let wedge_two_circles = cx [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ]; [ 0; 3 ]; [ 3; 4 ]; [ 0; 4 ] ]

(* The Moebius 7-vertex minimal triangulation of the torus: triangles
   {i, i+1, i+3} and {i, i+2, i+3} mod 7. *)
let torus =
  cx
    (List.concat_map
       (fun i -> [ [ i; (i + 1) mod 7; (i + 3) mod 7 ]; [ i; (i + 2) mod 7; (i + 3) mod 7 ] ])
       [ 0; 1; 2; 3; 4; 5; 6 ])

(* The antipodal quotient of the icosahedron: a 6-vertex RP^2. *)
let rp2 =
  cx
    [ [ 0; 1; 2 ]; [ 0; 2; 3 ]; [ 0; 3; 4 ]; [ 0; 4; 5 ]; [ 0; 1; 5 ];
      [ 1; 2; 4 ]; [ 2; 4; 5 ]; [ 2; 3; 5 ]; [ 1; 3; 5 ]; [ 1; 3; 4 ] ]

(* Betti vectors are compared up to trailing zeros: a collapsed complex can
   have a lower dimension than the original while representing the same
   homology. *)
let rec strip_trailing_zeros = function
  | [] -> []
  | x :: rest -> (
      match strip_trailing_zeros rest with
      | [] when x = 0 -> []
      | rest' -> x :: rest')

let same_betti a b =
  strip_trailing_zeros (Array.to_list a) = strip_trailing_zeros (Array.to_list b)

let check_betti name complex expected () =
  let b = Array.to_list (Homology.betti complex) in
  Alcotest.(check (list int)) name expected b

let check_reduced name complex expected () =
  let b = Array.to_list (Homology.reduced_betti complex) in
  Alcotest.(check (list int)) name expected b

(* ------------------------------------------------------------------ *)
(* Simplex tests                                                       *)
(* ------------------------------------------------------------------ *)

let simplex_tests =
  [
    Alcotest.test_case "dim of empty is -1" `Quick (fun () ->
        Alcotest.(check int) "dim" (-1) (Simplex.dim Simplex.empty));
    Alcotest.test_case "of_list sorts and dedupes" `Quick (fun () ->
        let s = sx [ 2; 0; 1; 2; 0 ] in
        Alcotest.(check int) "dim" 2 (Simplex.dim s);
        Alcotest.(check bool) "eq" true (Simplex.equal s (sx [ 0; 1; 2 ])));
    Alcotest.test_case "mem by binary search" `Quick (fun () ->
        let s = sx [ 0; 2; 4; 6; 8 ] in
        List.iter
          (fun i ->
            Alcotest.(check bool)
              (Printf.sprintf "mem %d" i)
              (i mod 2 = 0) (Simplex.mem (v i) s))
          [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ]);
    Alcotest.test_case "subset / proper_subset" `Quick (fun () ->
        Alcotest.(check bool) "sub" true (Simplex.subset (sx [ 0; 2 ]) (sx [ 0; 1; 2 ]));
        Alcotest.(check bool) "not sub" false (Simplex.subset (sx [ 0; 3 ]) (sx [ 0; 1; 2 ]));
        Alcotest.(check bool) "self" true (Simplex.subset (sx [ 0; 1 ]) (sx [ 0; 1 ]));
        Alcotest.(check bool) "proper" false (Simplex.proper_subset (sx [ 0; 1 ]) (sx [ 0; 1 ])));
    Alcotest.test_case "facets of a 2-simplex" `Quick (fun () ->
        let fs = Simplex.facets (sx [ 0; 1; 2 ]) in
        Alcotest.(check int) "count" 3 (List.length fs);
        List.iter (fun f -> Alcotest.(check int) "dim" 1 (Simplex.dim f)) fs);
    Alcotest.test_case "faces include empty and self" `Quick (fun () ->
        let fs = Simplex.faces (sx [ 0; 1 ]) in
        Alcotest.(check int) "count" 4 (List.length fs));
    Alcotest.test_case "proper_faces of a 2-simplex" `Quick (fun () ->
        Alcotest.(check int) "count" 6 (List.length (Simplex.proper_faces (sx [ 0; 1; 2 ]))));
    Alcotest.test_case "union inter diff" `Quick (fun () ->
        let a = sx [ 0; 1; 2 ] and b = sx [ 1; 2; 3 ] in
        Alcotest.(check bool) "union" true (Simplex.equal (Simplex.union a b) (sx [ 0; 1; 2; 3 ]));
        Alcotest.(check bool) "inter" true (Simplex.equal (Simplex.inter a b) (sx [ 1; 2 ]));
        Alcotest.(check bool) "diff" true (Simplex.equal (Simplex.diff a b) (sx [ 0 ])));
    Alcotest.test_case "proc_simplex is chromatic" `Quick (fun () ->
        let s = Simplex.proc_simplex 3 in
        Alcotest.(check bool) "chromatic" true (Simplex.is_chromatic s);
        Alcotest.(check int) "dim" 3 (Simplex.dim s);
        Alcotest.(check int) "ids" 4 (Pid.Set.cardinal (Simplex.ids s)));
    Alcotest.test_case "without_ids removes K" `Quick (fun () ->
        let s = Simplex.proc_simplex 3 in
        let s' = Simplex.without_ids (Pid.Set.of_list [ 1; 3 ]) s in
        Alcotest.(check int) "dim" 1 (Simplex.dim s');
        Alcotest.(check bool) "ids" true
          (Pid.Set.equal (Simplex.ids s') (Pid.Set.of_list [ 0; 2 ])));
    Alcotest.test_case "label_of finds labels" `Quick (fun () ->
        let s = Simplex.of_procs [ (0, Label.Int 7); (1, Label.Int 9) ] in
        Alcotest.(check bool) "P0" true (Simplex.label_of 0 s = Some (Label.Int 7));
        Alcotest.(check bool) "P2" true (Simplex.label_of 2 s = None));
    Alcotest.test_case "anon simplex is not chromatic" `Quick (fun () ->
        Alcotest.(check bool) "chromatic" false (Simplex.is_chromatic (sx [ 0; 1 ])));
    Alcotest.test_case "map collapses" `Quick (fun () ->
        let s = sx [ 0; 1; 2 ] in
        let f _ = v 0 in
        Alcotest.(check int) "dim" 0 (Simplex.dim (Simplex.map f s)));
  ]

(* ------------------------------------------------------------------ *)
(* Complex tests                                                       *)
(* ------------------------------------------------------------------ *)

let complex_tests =
  [
    Alcotest.test_case "closure under faces" `Quick (fun () ->
        let c = solid_triangle in
        Alcotest.(check int) "count" 7 (Complex.num_simplices c);
        Alcotest.(check bool) "edge" true (Complex.mem (sx [ 0; 2 ]) c);
        Alcotest.(check bool) "vertex" true (Complex.mem (sx [ 1 ]) c));
    Alcotest.test_case "f-vector of solid triangle" `Quick (fun () ->
        Alcotest.(check (list int)) "f" [ 3; 3; 1 ]
          (Array.to_list (Complex.f_vector solid_triangle)));
    Alcotest.test_case "euler: sphere is 2, torus is 0" `Quick (fun () ->
        Alcotest.(check int) "sphere" 2 (Complex.euler sphere2);
        Alcotest.(check int) "torus" 0 (Complex.euler torus);
        Alcotest.(check int) "circle" 0 (Complex.euler circle);
        Alcotest.(check int) "rp2" 1 (Complex.euler rp2));
    Alcotest.test_case "facets" `Quick (fun () ->
        let c = cx [ [ 0; 1; 2 ]; [ 2; 3 ]; [ 4 ] ] in
        let fs = Complex.facets c in
        Alcotest.(check int) "count" 3 (List.length fs);
        Alcotest.(check bool) "pure" false (Complex.is_pure c));
    Alcotest.test_case "sphere2 is pure" `Quick (fun () ->
        Alcotest.(check bool) "pure" true (Complex.is_pure sphere2));
    Alcotest.test_case "union and inter" `Quick (fun () ->
        let a = cx [ [ 0; 1 ]; [ 1; 2 ] ] and b = cx [ [ 1; 2 ]; [ 2; 3 ] ] in
        let u = Complex.union a b and i = Complex.inter a b in
        Alcotest.(check int) "u edges" 3 (Complex.count_of_dim u 1);
        Alcotest.(check int) "i edges" 1 (Complex.count_of_dim i 1);
        Alcotest.(check bool) "i is complex" true (Complex.mem (sx [ 1 ]) i));
    Alcotest.test_case "skeleton" `Quick (fun () ->
        let sk = Complex.skeleton 1 solid_triangle in
        Alcotest.(check int) "dim" 1 (Complex.dim sk);
        Alcotest.(check bool) "eq circle shape" true
          (Complex.equal sk (cx [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ])));
    Alcotest.test_case "star and link" `Quick (fun () ->
        let st = Complex.star (v 0) sphere2 in
        let lk = Complex.link (v 0) sphere2 in
        Alcotest.(check int) "star dim" 2 (Complex.dim st);
        Alcotest.(check bool) "link is circle" true
          (Complex.equal lk (cx [ [ 1; 2 ]; [ 2; 3 ]; [ 1; 3 ] ])));
    Alcotest.test_case "join of point pairs is a 4-cycle" `Quick (fun () ->
        let a = cx [ [ 0 ]; [ 1 ] ] and b = cx [ [ 2 ]; [ 3 ] ] in
        let j = Complex.join a b in
        Alcotest.(check (list int)) "f" [ 4; 4 ] (Array.to_list (Complex.f_vector j));
        Alcotest.(check (list int)) "betti" [ 1; 1 ] (Array.to_list (Homology.betti j)));
    Alcotest.test_case "join disjointness enforced" `Quick (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Complex.join: vertex sets not disjoint") (fun () ->
            ignore (Complex.join point point)));
    Alcotest.test_case "connected components" `Quick (fun () ->
        Alcotest.(check int) "two points" 2
          (List.length (Complex.connected_components two_points));
        Alcotest.(check int) "circle" 1 (List.length (Complex.connected_components circle));
        Alcotest.(check bool) "connected" true (Complex.is_connected circle);
        Alcotest.(check bool) "empty not connected" false (Complex.is_connected Complex.empty));
    Alcotest.test_case "map quotient" `Quick (fun () ->
        let q = Complex.map (fun _ -> v 0) circle in
        Alcotest.(check int) "dim" 0 (Complex.dim q);
        Alcotest.(check int) "count" 1 (Complex.num_simplices q));
    Alcotest.test_case "diff_facets" `Quick (fun () ->
        let c = cx [ [ 0; 1 ]; [ 1; 2 ] ] in
        let d = Complex.diff_facets c (cx [ [ 1; 2 ] ]) in
        Alcotest.(check int) "edges" 1 (Complex.count_of_dim d 1));
    Alcotest.test_case "restrict_ids" `Quick (fun () ->
        let s = Simplex.proc_simplex 2 in
        let c = Complex.of_simplex s in
        let r = Complex.restrict_ids (Pid.Set.of_list [ 0; 1 ]) c in
        Alcotest.(check int) "dim" 1 (Complex.dim r));
    Alcotest.test_case "empty complex conventions" `Quick (fun () ->
        Alcotest.(check int) "dim" (-1) (Complex.dim Complex.empty);
        Alcotest.(check int) "euler" 0 (Complex.euler Complex.empty);
        Alcotest.(check int) "simplices" 0 (Complex.num_simplices Complex.empty));
  ]

(* ------------------------------------------------------------------ *)
(* Homology tests                                                      *)
(* ------------------------------------------------------------------ *)

let homology_tests =
  [
    Alcotest.test_case "point" `Quick (check_betti "betti" point [ 1 ]);
    Alcotest.test_case "two points" `Quick (check_betti "betti" two_points [ 2 ]);
    Alcotest.test_case "interval" `Quick (check_betti "betti" interval [ 1; 0 ]);
    Alcotest.test_case "circle" `Quick (check_betti "betti" circle [ 1; 1 ]);
    Alcotest.test_case "solid triangle" `Quick (check_betti "betti" solid_triangle [ 1; 0; 0 ]);
    Alcotest.test_case "2-sphere" `Quick (check_betti "betti" sphere2 [ 1; 0; 1 ]);
    Alcotest.test_case "torus (Z/2)" `Quick (check_betti "betti" torus [ 1; 2; 1 ]);
    Alcotest.test_case "RP2 (Z/2)" `Quick (check_betti "betti" rp2 [ 1; 1; 1 ]);
    Alcotest.test_case "wedge of two circles" `Quick
      (check_betti "betti" wedge_two_circles [ 1; 2 ]);
    Alcotest.test_case "reduced: two points" `Quick
      (check_reduced "reduced" two_points [ 1 ]);
    Alcotest.test_case "reduced: sphere" `Quick (check_reduced "reduced" sphere2 [ 0; 0; 1 ]);
    Alcotest.test_case "boundary of 4-simplex is 3-sphere" `Quick (fun () ->
        let s3 = Complex.boundary_complex (Simplex.of_list (List.map v [ 0; 1; 2; 3; 4 ])) in
        check_betti "betti" s3 [ 1; 0; 0; 1 ] ());
    Alcotest.test_case "connectivity values" `Quick (fun () ->
        Alcotest.(check int) "empty" (-2) (Homology.connectivity Complex.empty);
        Alcotest.(check int) "two points" (-1) (Homology.connectivity two_points);
        Alcotest.(check int) "circle" 0 (Homology.connectivity circle);
        Alcotest.(check int) "sphere2" 1 (Homology.connectivity sphere2);
        Alcotest.(check int) "solid" 2 (Homology.connectivity solid_triangle));
    Alcotest.test_case "is_k_connected conventions" `Quick (fun () ->
        Alcotest.(check bool) "k<=-2 always" true (Homology.is_k_connected Complex.empty (-2));
        Alcotest.(check bool) "empty not (-1)" false (Homology.is_k_connected Complex.empty (-1));
        Alcotest.(check bool) "2pts (-1)" true (Homology.is_k_connected two_points (-1));
        Alcotest.(check bool) "2pts not 0" false (Homology.is_k_connected two_points 0);
        Alcotest.(check bool) "sphere 1" true (Homology.is_k_connected sphere2 1);
        Alcotest.(check bool) "sphere not 2" false (Homology.is_k_connected sphere2 2));
    Alcotest.test_case "euler consistency on spaces" `Quick (fun () ->
        List.iter
          (fun c ->
            Alcotest.(check int) "chi" (Complex.euler c) (Homology.euler_from_betti c))
          [ point; two_points; interval; circle; sphere2; torus; rp2;
            wedge_two_circles; solid_triangle ]);
    Alcotest.test_case "max_dim truncation" `Quick (fun () ->
        let b = Homology.reduced_betti ~max_dim:0 torus in
        Alcotest.(check int) "len" 1 (Array.length b);
        Alcotest.(check int) "b0" 0 b.(0));
  ]

(* ------------------------------------------------------------------ *)
(* Z2 matrix tests                                                     *)
(* ------------------------------------------------------------------ *)

let z2_tests =
  [
    Alcotest.test_case "sym_diff" `Quick (fun () ->
        Alcotest.(check (list int)) "xor" [ 1; 4 ] (Z2_matrix.sym_diff [ 1; 2; 3 ] [ 2; 3; 4 ]);
        Alcotest.(check (list int)) "self" [] (Z2_matrix.sym_diff [ 1; 2 ] [ 1; 2 ]));
    Alcotest.test_case "rank identity" `Quick (fun () ->
        Alcotest.(check int) "rank" 3 (Z2_matrix.rank [ [ 0 ]; [ 1 ]; [ 2 ] ]));
    Alcotest.test_case "rank dependent columns" `Quick (fun () ->
        Alcotest.(check int) "rank" 2 (Z2_matrix.rank [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ]));
    Alcotest.test_case "rank zero matrix" `Quick (fun () ->
        Alcotest.(check int) "rank" 0 (Z2_matrix.rank [ []; [] ]));
    Alcotest.test_case "low" `Quick (fun () ->
        Alcotest.(check (option int)) "low" (Some 9) (Z2_matrix.low [ 1; 5; 9 ]);
        Alcotest.(check (option int)) "low empty" None (Z2_matrix.low []));
  ]

(* ------------------------------------------------------------------ *)
(* Collapse tests                                                      *)
(* ------------------------------------------------------------------ *)

let collapse_tests =
  [
    Alcotest.test_case "solid triangle collapses to a point" `Quick (fun () ->
        Alcotest.(check bool) "collapsible" true (Collapse.is_collapsible_to_point solid_triangle));
    Alcotest.test_case "solid 3-simplex collapses to a point" `Quick (fun () ->
        let c = Complex.of_simplex (Simplex.of_list (List.map v [ 0; 1; 2; 3 ])) in
        Alcotest.(check bool) "collapsible" true (Collapse.is_collapsible_to_point c));
    Alcotest.test_case "circle has no free faces" `Quick (fun () ->
        Alcotest.(check int) "free" 0 (List.length (Collapse.free_faces circle));
        Alcotest.(check bool) "not collapsible" false (Collapse.is_collapsible_to_point circle));
    Alcotest.test_case "sphere does not collapse" `Quick (fun () ->
        let r = Collapse.collapse sphere2 in
        Alcotest.(check bool) "unchanged" true (Complex.equal r sphere2));
    Alcotest.test_case "collapse preserves homology" `Quick (fun () ->
        List.iter
          (fun c ->
            let r = Collapse.collapse c in
            Alcotest.(check bool) "betti" true
              (same_betti (Homology.betti c) (Homology.betti r)))
          [ solid_triangle; circle; sphere2; torus; wedge_two_circles ]);
    Alcotest.test_case "free face detection on interval" `Quick (fun () ->
        let ff = Collapse.free_faces interval in
        Alcotest.(check int) "count" 2 (List.length ff));
    Alcotest.test_case "reduce collapses a solid 3-simplex to one vertex" `Quick
      (fun () ->
        let c = Complex.of_simplex (Simplex.of_list (List.map v [ 0; 1; 2; 3 ])) in
        let core, removed = Collapse.reduce c in
        Alcotest.(check int) "critical cells" 1 (Complex.num_simplices core);
        Alcotest.(check int) "removed" (Complex.num_simplices c - 1) removed);
    Alcotest.test_case "reduce leaves a sphere untouched" `Quick (fun () ->
        let core, removed = Collapse.reduce sphere2 in
        Alcotest.(check int) "removed" 0 removed;
        Alcotest.(check bool) "unchanged" true (Complex.equal core sphere2));
    Alcotest.test_case "matching pairs are facet/coface pairs" `Quick (fun () ->
        List.iter
          (fun c ->
            let pairs, critical = Collapse.matching c in
            Alcotest.(check int) "accounts every simplex"
              (Complex.num_simplices c)
              ((2 * List.length pairs) + List.length critical);
            List.iter
              (fun (f, t) ->
                Alcotest.(check int) "dims" (Simplex.dim f + 1) (Simplex.dim t);
                Alcotest.(check bool) "face" true (Simplex.subset f t))
              pairs)
          [ solid_triangle; circle; sphere2; torus; wedge_two_circles; interval ]);
  ]

(* ------------------------------------------------------------------ *)
(* Subdivision tests                                                   *)
(* ------------------------------------------------------------------ *)

let subdivision_tests =
  [
    Alcotest.test_case "barycentric of an interval" `Quick (fun () ->
        let b = Subdivision.barycentric interval in
        Alcotest.(check (list int)) "f" [ 3; 2 ] (Array.to_list (Complex.f_vector b)));
    Alcotest.test_case "barycentric of a triangle" `Quick (fun () ->
        let b = Subdivision.barycentric solid_triangle in
        Alcotest.(check (list int)) "f" [ 7; 12; 6 ] (Array.to_list (Complex.f_vector b)));
    Alcotest.test_case "barycentric preserves euler" `Quick (fun () ->
        List.iter
          (fun c ->
            Alcotest.(check int) "chi" (Complex.euler c)
              (Complex.euler (Subdivision.barycentric c)))
          [ interval; circle; solid_triangle; sphere2; torus ]);
    Alcotest.test_case "barycentric preserves homology" `Quick (fun () ->
        List.iter
          (fun c ->
            Alcotest.(check (list int))
              "betti"
              (Array.to_list (Homology.betti c))
              (Array.to_list (Homology.betti (Subdivision.barycentric c))))
          [ circle; sphere2; wedge_two_circles ]);
    Alcotest.test_case "iterated barycentric" `Quick (fun () ->
        let b2 = Subdivision.barycentric_iter 2 interval in
        Alcotest.(check (list int)) "f" [ 5; 4 ] (Array.to_list (Complex.f_vector b2)));
    Alcotest.test_case "chromatic subdivision of an edge" `Quick (fun () ->
        let c = Subdivision.chromatic_of_simplex (Simplex.proc_simplex 1) in
        Alcotest.(check int) "facets" 3 (List.length (Complex.facets c));
        Alcotest.(check (list int)) "betti" [ 1; 0 ] (Array.to_list (Homology.betti c)));
    Alcotest.test_case "chromatic subdivision of a triangle" `Quick (fun () ->
        let c = Subdivision.chromatic_of_simplex (Simplex.proc_simplex 2) in
        Alcotest.(check int) "facets" 13 (List.length (Complex.facets c));
        Alcotest.(check (list int)) "betti" [ 1; 0; 0 ] (Array.to_list (Homology.betti c));
        Alcotest.(check bool) "pure" true (Complex.is_pure c));
    Alcotest.test_case "chromatic facet count formula" `Quick (fun () ->
        Alcotest.(check int) "n=0" 1 (Subdivision.facet_count_chromatic 0);
        Alcotest.(check int) "n=1" 3 (Subdivision.facet_count_chromatic 1);
        Alcotest.(check int) "n=2" 13 (Subdivision.facet_count_chromatic 2);
        Alcotest.(check int) "n=3" 75 (Subdivision.facet_count_chromatic 3));
    Alcotest.test_case "chromatic rejects non-chromatic" `Quick (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Subdivision.chromatic_of_simplex: simplex is not chromatic")
          (fun () -> ignore (Subdivision.chromatic_of_simplex (sx [ 0; 1 ]))));
    Alcotest.test_case "chromatic subdivision is chromatic" `Quick (fun () ->
        let c = Subdivision.chromatic_of_simplex (Simplex.proc_simplex 2) in
        List.iter
          (fun s -> Alcotest.(check bool) "chromatic" true (Simplex.is_chromatic s))
          (Complex.facets c));
  ]

(* ------------------------------------------------------------------ *)
(* Sperner tests                                                       *)
(* ------------------------------------------------------------------ *)

let sperner_tests =
  let base = sx [ 0; 1; 2 ] in
  let allowed = Sperner.barycentric_allowed base in
  (* colour each barycentre by the minimum allowed colour: a canonical
     Sperner colouring *)
  let chi w = List.fold_left min max_int (allowed w) in
  [
    Alcotest.test_case "canonical colouring is Sperner" `Quick (fun () ->
        let b = Subdivision.barycentric (Complex.of_simplex base) in
        Alcotest.(check bool) "sperner" true (Sperner.is_sperner_colouring ~allowed chi b));
    Alcotest.test_case "Sperner's lemma on sd(triangle)" `Quick (fun () ->
        let b = Subdivision.barycentric (Complex.of_simplex base) in
        Alcotest.(check bool) "odd panchromatic" true (Sperner.lemma_holds ~allowed chi 2 b));
    Alcotest.test_case "Sperner's lemma on sd^2(triangle)" `Quick (fun () ->
        let b = Subdivision.barycentric_iter 2 (Complex.of_simplex base) in
        Alcotest.(check bool) "odd panchromatic" true (Sperner.lemma_holds ~allowed chi 2 b));
    Alcotest.test_case "Sperner's lemma on sd(tetrahedron)" `Quick (fun () ->
        let base = sx [ 0; 1; 2; 3 ] in
        let allowed = Sperner.barycentric_allowed base in
        let chi w = List.fold_left min max_int (allowed w) in
        let b = Subdivision.barycentric (Complex.of_simplex base) in
        Alcotest.(check bool) "odd panchromatic" true (Sperner.lemma_holds ~allowed chi 3 b));
    Alcotest.test_case "max-colour variant also works" `Quick (fun () ->
        let chi w = List.fold_left max (-1) (allowed w) in
        let b = Subdivision.barycentric (Complex.of_simplex base) in
        Alcotest.(check bool) "odd panchromatic" true (Sperner.lemma_holds ~allowed chi 2 b));
    Alcotest.test_case "distinct_colours" `Quick (fun () ->
        let chi = function Vertex.Anon i -> i mod 2 | Vertex.Proc _ | Vertex.Bary _ -> 0 in
        Alcotest.(check int) "colours" 2 (Sperner.distinct_colours chi (sx [ 0; 1; 2 ])));
    Alcotest.test_case "non-sperner colouring detected" `Quick (fun () ->
        let b = Subdivision.barycentric (Complex.of_simplex base) in
        let bad _ = 0 in
        Alcotest.(check bool) "not sperner" false
          (Sperner.is_sperner_colouring ~allowed bad b));
  ]

(* ------------------------------------------------------------------ *)
(* Simplicial map tests                                                *)
(* ------------------------------------------------------------------ *)

let map_tests =
  [
    Alcotest.test_case "identity is an isomorphism" `Quick (fun () ->
        Alcotest.(check bool) "iso" true
          (Simplicial_map.is_isomorphism_via (fun x -> x) sphere2 sphere2));
    Alcotest.test_case "relabeling is an isomorphism" `Quick (fun () ->
        let mu = function Vertex.Anon i -> Vertex.Anon (i + 10) | w -> w in
        let cod = Complex.map mu circle in
        Alcotest.(check bool) "iso" true (Simplicial_map.is_isomorphism_via mu circle cod));
    Alcotest.test_case "collapse map is simplicial but not iso" `Quick (fun () ->
        let mu _ = v 0 in
        let cod = Complex.map mu circle in
        Alcotest.(check bool) "simplicial" true (Simplicial_map.is_simplicial mu circle cod);
        Alcotest.(check bool) "not injective" false (Simplicial_map.is_injective_on mu circle));
    Alcotest.test_case "find_isomorphism circle vs relabeled circle" `Quick (fun () ->
        let other = cx [ [ 7; 8 ]; [ 8; 9 ]; [ 7; 9 ] ] in
        Alcotest.(check bool) "iso" true
          (Simplicial_map.are_isomorphic ~respect_pids:false circle other));
    Alcotest.test_case "circle vs 4-cycle not isomorphic" `Quick (fun () ->
        let square = cx [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 0; 3 ] ] in
        Alcotest.(check bool) "not iso" false
          (Simplicial_map.are_isomorphic ~respect_pids:false circle square));
    Alcotest.test_case "pid-respecting isomorphism on proc complexes" `Quick (fun () ->
        let a = Complex.of_facets [ Simplex.of_procs [ (0, Label.Int 1); (1, Label.Int 2) ] ] in
        let b = Complex.of_facets [ Simplex.of_procs [ (0, Label.Int 2); (1, Label.Int 1) ] ] in
        Alcotest.(check bool) "pid-respecting iso exists" true
          (Simplicial_map.are_isomorphic ~respect_pids:true a b);
        Alcotest.(check bool) "free iso exists" true
          (Simplicial_map.are_isomorphic ~respect_pids:false a b));
    Alcotest.test_case "different sizes never isomorphic" `Quick (fun () ->
        Alcotest.(check bool) "not iso" false
          (Simplicial_map.are_isomorphic ~respect_pids:false circle two_points));
  ]

(* ------------------------------------------------------------------ *)
(* Pid / Label / Vertex ordering tests                                 *)
(* ------------------------------------------------------------------ *)

let order_tests =
  [
    Alcotest.test_case "pid basics" `Quick (fun () ->
        Alcotest.(check int) "to_int" 3 (Pid.to_int (Pid.of_int 3));
        Alcotest.check_raises "negative" (Invalid_argument "Pid.of_int: negative pid")
          (fun () -> ignore (Pid.of_int (-1))));
    Alcotest.test_case "pid set lexicographic order" `Quick (fun () ->
        let open Pid.Set in
        Alcotest.(check bool) "empty first" true (compare_lex empty (of_list [ 0 ]) < 0);
        Alcotest.(check bool) "{0} < {1}" true
          (compare_lex (of_list [ 0 ]) (of_list [ 1 ]) < 0);
        Alcotest.(check bool) "{0} < {0;1}" true
          (compare_lex (of_list [ 0 ]) (of_list [ 0; 1 ]) < 0));
    Alcotest.test_case "pid set size-lex order (Lemma 15 ordering)" `Quick (fun () ->
        let open Pid.Set in
        Alcotest.(check bool) "{2} < {0;1}" true
          (compare_size_lex (of_list [ 2 ]) (of_list [ 0; 1 ]) < 0);
        Alcotest.(check bool) "{0;2} < {1;2}" true
          (compare_size_lex (of_list [ 0; 2 ]) (of_list [ 1; 2 ]) < 0));
    Alcotest.test_case "pid universe" `Quick (fun () ->
        Alcotest.(check int) "card" 4 (Pid.Set.cardinal (Pid.universe 3));
        Alcotest.(check (list int)) "all" [ 0; 1; 2 ] (Pid.all 2));
    Alcotest.test_case "label order is antisymmetric on samples" `Quick (fun () ->
        let labels =
          [ Label.Unit; Label.Bool true; Label.Int 0; Label.Int 1; Label.Str "a";
            Label.Pid 0; Label.pid_set [ 0; 1 ]; Label.Vec [| 1; 2 |];
            Label.Pair (Label.Int 1, Label.Unit); Label.List [ Label.Int 1 ] ]
        in
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                let c1 = Label.compare a b and c2 = Label.compare b a in
                Alcotest.(check int) "antisym" 0 (compare c1 (-c2)))
              labels)
          labels);
    Alcotest.test_case "label vec ordering by length then content" `Quick (fun () ->
        Alcotest.(check bool) "shorter first" true
          (Label.compare (Label.Vec [| 9 |]) (Label.Vec [| 0; 0 |]) < 0);
        Alcotest.(check bool) "content" true
          (Label.compare (Label.Vec [| 0; 1 |]) (Label.Vec [| 0; 2 |]) < 0));
    Alcotest.test_case "vertex pid and label projections" `Quick (fun () ->
        let w = Vertex.proc 2 (Label.Int 5) in
        Alcotest.(check (option int)) "pid" (Some 2) (Vertex.pid w);
        Alcotest.(check bool) "label" true (Vertex.label w = Some (Label.Int 5));
        Alcotest.(check (option int)) "anon pid" None (Vertex.pid (v 0)));
    Alcotest.test_case "vertex relabel" `Quick (fun () ->
        let w = Vertex.relabel (fun _ -> Label.Int 9) (Vertex.proc 1 Label.Unit) in
        Alcotest.(check bool) "relabeled" true (Vertex.label w = Some (Label.Int 9));
        Alcotest.(check bool) "anon unchanged" true
          (Vertex.equal (Vertex.relabel (fun _ -> Label.Int 9) (v 3)) (v 3)));
    Alcotest.test_case "label pretty printing" `Quick (fun () ->
        Alcotest.(check string) "pair" "(1,P0)"
          (Label.to_string (Label.Pair (Label.Int 1, Label.Pid 0)));
        Alcotest.(check string) "vec" "<1,2>" (Label.to_string (Label.Vec [| 1; 2 |])));
  ]

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)
(* ------------------------------------------------------------------ *)

let gen_small_complex =
  QCheck2.Gen.(
    let facet = list_size (int_range 1 4) (int_range 0 6) in
    list_size (int_range 1 6) facet |> map (fun fs -> cx fs))

let prop_tests =
  let open QCheck2 in
  let count = 60 in
  [
    Test.make ~count ~name:"euler equals alternating betti sum" gen_small_complex
      (fun c -> Complex.euler c = Homology.euler_from_betti c);
    Test.make ~count ~name:"collapse preserves betti" gen_small_complex (fun c ->
        same_betti (Homology.betti (Collapse.collapse c)) (Homology.betti c));
    Test.make ~count ~name:"morse reduce preserves betti and accounts cells"
      gen_small_complex (fun c ->
        let core, removed = Collapse.reduce c in
        Complex.num_simplices core + removed = Complex.num_simplices c
        && same_betti (Homology.betti core) (Homology.betti c));
    Test.make ~count ~name:"betti_reduced equals betti" gen_small_complex
      (fun c -> Homology.betti_reduced c = Homology.betti c);
    Test.make ~count ~name:"connectivity_reduced equals connectivity"
      gen_small_complex (fun c ->
        Homology.connectivity_reduced c = Homology.connectivity c);
    Test.make ~count ~name:"barycentric preserves betti" gen_small_complex (fun c ->
        Homology.betti (Subdivision.barycentric c) = Homology.betti c);
    Test.make ~count ~name:"facets regenerate the complex" gen_small_complex (fun c ->
        Complex.equal (Complex.of_facets (Complex.facets c)) c);
    Test.make ~count ~name:"skeleton dim bound" gen_small_complex (fun c ->
        Complex.dim (Complex.skeleton 1 c) <= 1);
    Test.make ~count ~name:"union is idempotent" gen_small_complex (fun c ->
        Complex.equal (Complex.union c c) c);
    Test.make ~count ~name:"inter with self is self" gen_small_complex (fun c ->
        Complex.equal (Complex.inter c c) c);
    Test.make ~count ~name:"star is a subcomplex" gen_small_complex (fun c ->
        match Complex.vertices c with
        | [] -> true
        | w :: _ -> Complex.subcomplex (Complex.star w c) c);
    Test.make ~count ~name:"link of v excludes v" gen_small_complex (fun c ->
        match Complex.vertices c with
        | [] -> true
        | w :: _ ->
            List.for_all
              (fun s -> not (Simplex.mem w s))
              (Complex.simplices (Complex.link w c)));
    Test.make ~count ~name:"components partition vertices" gen_small_complex (fun c ->
        let comps = Complex.connected_components c in
        let total = List.fold_left (fun a s -> a + Vertex.Set.cardinal s) 0 comps in
        total = Complex.num_vertices c);
    Test.make ~count ~name:"simplex faces count is 2^(d+1)"
      QCheck2.Gen.(
        int_range 0 5 |> map (fun n -> Simplex.of_list (List.map v (List.init (n + 1) Fun.id))))
      (fun s -> List.length (Simplex.faces s) = 1 lsl Simplex.cardinal s);
    Test.make ~count ~name:"betti.(0) counts components" gen_small_complex (fun c ->
        (Homology.betti c).(0) = List.length (Complex.connected_components c));
  ]
  |> List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ("topology.order", order_tests);
    ("topology.simplex", simplex_tests);
    ("topology.complex", complex_tests);
    ("topology.z2", z2_tests);
    ("topology.homology", homology_tests);
    ("topology.collapse", collapse_tests);
    ("topology.subdivision", subdivision_tests);
    ("topology.sperner", sperner_tests);
    ("topology.simplicial_map", map_tests);
    ("topology.properties", prop_tests);
  ]
