(* Tests for the immediate-snapshot substrate, the IIS protocol complex,
   and the SVG renderer. *)

open Psph_topology
open Psph_model
open Pseudosphere

let inputs n = List.init (n + 1) (fun i -> (i, i mod 2))

let input_simplex n = Input_complex.simplex_of_inputs (inputs n)

(* ------------------------------------------------------------------ *)
(* Snapshot objects                                                    *)
(* ------------------------------------------------------------------ *)

let snapshot_tests =
  [
    Alcotest.test_case "schedule counts are the Fubini numbers" `Quick (fun () ->
        Alcotest.(check int) "1 proc" 1 (Snapshot.schedule_count 1);
        Alcotest.(check int) "2 procs" 3 (Snapshot.schedule_count 2);
        Alcotest.(check int) "3 procs" 13 (Snapshot.schedule_count 3);
        Alcotest.(check int) "4 procs" 75 (Snapshot.schedule_count 4);
        List.iter
          (fun m ->
            Alcotest.(check int)
              (Printf.sprintf "enumerated %d" m)
              (Snapshot.schedule_count m)
              (List.length (Snapshot.schedules (Pid.universe (m - 1)))))
          [ 1; 2; 3; 4 ]);
    Alcotest.test_case "views satisfy the immediate-snapshot axioms" `Quick
      (fun () ->
        List.iter
          (fun schedule ->
            Alcotest.(check bool) "valid" true
              (Snapshot.valid_views (Snapshot.views_of_schedule schedule)))
          (Snapshot.schedules (Pid.universe 3)));
    Alcotest.test_case "sequential schedule gives nested views" `Quick (fun () ->
        let views = Snapshot.views_of_schedule [ [ 0 ]; [ 1 ]; [ 2 ] ] in
        Alcotest.(check int) "P0 sees 1" 1 (Pid.Set.cardinal (Pid.Map.find 0 views));
        Alcotest.(check int) "P1 sees 2" 2 (Pid.Set.cardinal (Pid.Map.find 1 views));
        Alcotest.(check int) "P2 sees 3" 3 (Pid.Set.cardinal (Pid.Map.find 2 views)));
    Alcotest.test_case "simultaneous schedule gives equal views" `Quick (fun () ->
        let views = Snapshot.views_of_schedule [ [ 0; 1; 2 ] ] in
        Pid.Map.iter
          (fun _ s -> Alcotest.(check int) "all" 3 (Pid.Set.cardinal s))
          views);
    Alcotest.test_case "axiom checker rejects bad views" `Quick (fun () ->
        (* two disjoint views violate containment *)
        let bad =
          Pid.Map.of_seq
            (List.to_seq
               [ (0, Pid.Set.singleton 0); (1, Pid.Set.singleton 1) ])
        in
        Alcotest.(check bool) "invalid" false (Snapshot.valid_views bad));
    Alcotest.test_case "run counts multiply per round" `Quick (fun () ->
        let gs = Snapshot.run ~rounds:2 (Execution.initial (inputs 1)) in
        Alcotest.(check int) "3 * 3" 9 (List.length gs));
  ]

(* ------------------------------------------------------------------ *)
(* IIS complexes                                                       *)
(* ------------------------------------------------------------------ *)

let iis_tests =
  [
    Alcotest.test_case "one round is the chromatic subdivision" `Quick (fun () ->
        List.iter
          (fun n ->
            Alcotest.(check bool)
              (Printf.sprintf "n=%d" n)
              true
              (Iis_complex.isomorphic_to_chromatic (input_simplex n)))
          [ 1; 2 ]);
    Alcotest.test_case "facet count is the Fubini number" `Quick (fun () ->
        let c = Iis_complex.one_round (input_simplex 2) in
        Alcotest.(check int) "13" 13 (List.length (Complex.facets c)));
    Alcotest.test_case "equals enumerated shared-memory executions" `Quick
      (fun () ->
        List.iter
          (fun (n, r) ->
            Alcotest.(check bool)
              (Printf.sprintf "n=%d r=%d" n r)
              true
              (Complex.equal
                 (Iis_complex.rounds ~r (input_simplex n))
                 (Iis_complex.enumerated ~r (inputs n))))
          [ (1, 1); (2, 1); (1, 2) ]);
    Alcotest.test_case "wait-free IIS is a subcomplex of wait-free A^1" `Quick
      (fun () ->
        List.iter
          (fun n ->
            Alcotest.(check bool)
              (Printf.sprintf "n=%d" n)
              true
              (Iis_complex.subcomplex_of_async ~n (input_simplex n)))
          [ 1; 2 ]);
    Alcotest.test_case "IIS complexes are contractible (subdivisions)" `Quick
      (fun () ->
        List.iter
          (fun (n, r) ->
            let c = Iis_complex.rounds ~r (input_simplex n) in
            let b = Homology.reduced_betti c in
            Array.iteri
              (fun d x ->
                Alcotest.(check int) (Printf.sprintf "n=%d r=%d dim %d" n r d) 0 x)
              b)
          [ (1, 1); (2, 1); (1, 2) ]);
    Alcotest.test_case "contrast: A^1 wait-free is only (f-1)-connected" `Quick
      (fun () ->
        (* the message-passing analog is NOT contractible: for n = f = 2 it
           is 1-connected with nontrivial H_2, while IIS is contractible *)
        let a1 = Async_complex.one_round ~n:2 ~f:2 (input_simplex 2) in
        let b = Homology.reduced_betti a1 in
        Alcotest.(check bool) "H_2 nontrivial" true (b.(2) > 0));
    Alcotest.test_case "over_inputs covers every input facet" `Quick (fun () ->
        let ic = Input_complex.make ~n:1 ~values:[ 0; 1 ] in
        let c = Iis_complex.over_inputs ~r:1 ic in
        List.iter
          (fun (a, b) ->
            let s = Input_complex.simplex_of_inputs [ (0, a); (1, b) ] in
            Alcotest.(check bool) "contains" true
              (Complex.subcomplex (Iis_complex.one_round s) c))
          [ (0, 0); (0, 1); (1, 0); (1, 1) ]);
    Alcotest.test_case "IIS consensus is impossible, 2-values 2-procs" `Quick
      (fun () ->
        let ic = Input_complex.make ~n:1 ~values:[ 0; 1 ] in
        let c = Iis_complex.over_inputs ~r:1 ic in
        Alcotest.(check bool) "impossible" true
          (Psph_agreement.Decision.solve ~complex:c
             ~allowed:Psph_agreement.Task.allowed ~k:1 ()
          = Psph_agreement.Decision.Impossible));
  ]

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render_tests =
  [
    Alcotest.test_case "layout is deterministic and in the unit box" `Quick
      (fun () ->
        let c = Constructions.sphere 1 in
        let l1 = Render.layout c and l2 = Render.layout c in
        Alcotest.(check bool) "deterministic" true (l1 = l2);
        List.iter
          (fun (_, (x, y)) ->
            Alcotest.(check bool) "in box" true
              (x >= 0.0 && x <= 1.0 && y >= 0.0 && y <= 1.0))
          l1);
    Alcotest.test_case "svg contains all elements" `Quick (fun () ->
        let c =
          Psph.realize ~vertex:Psph.default_vertex (Psph.binary 2)
        in
        let doc = Render.svg c in
        let count needle =
          let n = String.length needle and h = String.length doc in
          let rec loop i acc =
            if i + n > h then acc
            else if String.sub doc i n = needle then loop (i + 1) (acc + 1)
            else loop (i + 1) acc
          in
          loop 0 0
        in
        Alcotest.(check int) "8 triangles" 8 (count "<polygon");
        Alcotest.(check int) "12 edges" 12 (count "<line");
        Alcotest.(check int) "6 vertices" 6 (count "<circle");
        Alcotest.(check bool) "closes" true (count "</svg>" = 1));
    Alcotest.test_case "empty complex renders an empty document" `Quick (fun () ->
        let doc = Render.svg Complex.empty in
        Alcotest.(check bool) "has svg tag" true (String.length doc > 0));
    Alcotest.test_case "save_svg writes a file" `Quick (fun () ->
        let path = Filename.temp_file "psph" ".svg" in
        Render.save_svg path (Constructions.sphere 1);
        let size = (Unix.stat path).Unix.st_size in
        Sys.remove path;
        Alcotest.(check bool) "nonempty" true (size > 100));
  ]

let suites =
  [
    ("model.snapshot", snapshot_tests);
    ("core.iis", iis_tests);
    ("topology.render", render_tests);
  ]
