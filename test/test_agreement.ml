(* Tests for tasks, decision-map search, lower bounds and protocols. *)

open Psph_topology
open Psph_model
open Pseudosphere
open Psph_agreement

let inputs n = List.init (n + 1) (fun i -> (i, i))

(* ------------------------------------------------------------------ *)
(* Task / decision search                                              *)
(* ------------------------------------------------------------------ *)

let task_tests =
  [
    Alcotest.test_case "task constructors" `Quick (fun () ->
        let t = Task.consensus ~n:2 ~values:[ 0; 1 ] in
        Alcotest.(check int) "k" 1 t.Task.k;
        Alcotest.(check string) "name" "consensus" t.Task.name;
        let t2 = Task.kset ~n:3 ~k:2 ~values:[ 0; 1; 2 ] in
        Alcotest.(check int) "k" 2 t2.Task.k);
    Alcotest.test_case "input complex of consensus is a pseudosphere" `Quick (fun () ->
        let t = Task.consensus ~n:2 ~values:[ 0; 1 ] in
        let c = Task.input_complex t in
        Alcotest.(check (list int)) "octahedron" [ 6; 12; 8 ]
          (Array.to_list (Complex.f_vector c)));
    Alcotest.test_case "allowed values are seen inputs" `Quick (fun () ->
        let a = View.init 0 and b = View.init 1 in
        let v = View.round ~prev:a ~heard:[ (0, a); (1, b) ] in
        let vertex = Vertex.proc 0 (View.to_label v) in
        Alcotest.(check (list int)) "allowed" [ 0; 1 ] (Task.allowed vertex));
    Alcotest.test_case "valid_decision_map accepts a constant map" `Quick (fun () ->
        let t = Task.consensus ~n:1 ~values:[ 0 ] in
        let ic = Task.input_complex t in
        let c = Async_complex.over_inputs ~n:1 ~f:1 ~r:1 ic in
        Alcotest.(check bool) "valid" true (Task.valid_decision_map t c (fun _ -> 0)));
    Alcotest.test_case "valid_decision_map rejects invalid value" `Quick (fun () ->
        let t = Task.consensus ~n:1 ~values:[ 0 ] in
        let ic = Task.input_complex t in
        let c = Async_complex.over_inputs ~n:1 ~f:1 ~r:1 ic in
        Alcotest.(check bool) "invalid" false (Task.valid_decision_map t c (fun _ -> 7)));
  ]

let decision_tests =
  [
    Alcotest.test_case "empty complex trivially solvable" `Quick (fun () ->
        match Decision.solve ~complex:Complex.empty ~allowed:(fun _ -> []) ~k:1 () with
        | Decision.Solution _ -> ()
        | _ -> Alcotest.fail "expected solution");
    Alcotest.test_case "k >= number of values is always solvable" `Quick (fun () ->
        let ic = Input_complex.make ~n:2 ~values:[ 0; 1 ] in
        let c = Async_complex.over_inputs ~n:2 ~f:1 ~r:1 ic in
        match Decision.solve ~complex:c ~allowed:Task.allowed ~k:2 () with
        | Decision.Solution m ->
            (* verify the witness *)
            let t = Task.kset ~n:2 ~k:2 ~values:[ 0; 1 ] in
            Alcotest.(check bool) "witness valid" true
              (Task.valid_decision_map t c (fun v -> Vertex.Map.find v m))
        | _ -> Alcotest.fail "expected solution");
    Alcotest.test_case "solution witnesses are checked (k=1, single value)" `Quick
      (fun () ->
        let ic = Input_complex.make ~n:2 ~values:[ 0 ] in
        let c = Async_complex.over_inputs ~n:2 ~f:2 ~r:1 ic in
        match Decision.solve ~complex:c ~allowed:Task.allowed ~k:1 () with
        | Decision.Solution m ->
            Vertex.Map.iter (fun _ v -> Alcotest.(check int) "all 0" 0 v) m
        | _ -> Alcotest.fail "expected solution");
    Alcotest.test_case "impossible: 1-round async consensus (FLP/Cor 13)" `Quick
      (fun () ->
        let ic = Input_complex.make ~n:2 ~values:[ 0; 1 ] in
        let c = Async_complex.over_inputs ~n:2 ~f:1 ~r:1 ic in
        Alcotest.(check bool) "impossible" true
          (Decision.solve ~complex:c ~allowed:Task.allowed ~k:1 () = Decision.Impossible));
    Alcotest.test_case "search agrees with component analysis on consensus" `Quick
      (fun () ->
        let cases =
          [ Async_complex.over_inputs ~n:2 ~f:1 ~r:1 (Input_complex.make ~n:2 ~values:[ 0; 1 ]);
            Sync_complex.over_inputs ~k:1 ~r:1 (Input_complex.make ~n:2 ~values:[ 0; 1 ]);
            Sync_complex.over_inputs ~k:1 ~r:2 (Input_complex.make ~n:2 ~values:[ 0; 1 ]) ]
        in
        List.iter
          (fun c ->
            let fast = Decision.consensus_components_solvable ~complex:c ~allowed:Task.allowed in
            let slow =
              match Decision.solve ~complex:c ~allowed:Task.allowed ~k:1 () with
              | Decision.Solution _ -> true
              | Decision.Impossible -> false
              | Decision.Unknown -> Alcotest.fail "unknown"
            in
            Alcotest.(check bool) "agree" fast slow)
          cases);
    Alcotest.test_case "tiny budget yields Unknown" `Quick (fun () ->
        let ic = Input_complex.make ~n:2 ~values:[ 0; 1 ] in
        let c = Async_complex.over_inputs ~n:2 ~f:1 ~r:1 ic in
        Alcotest.(check bool) "unknown" true
          (Decision.solve ~budget:3 ~complex:c ~allowed:Task.allowed ~k:1 ()
          = Decision.Unknown));
  ]

(* ------------------------------------------------------------------ *)
(* Lower bounds (Cor 13, Thm 18, Cor 22)                               *)
(* ------------------------------------------------------------------ *)

let lower_bound_tests =
  [
    Alcotest.test_case "Corollary 13 predicate" `Quick (fun () ->
        Alcotest.(check bool) "k<=f impossible" true
          (Lower_bound.corollary13_impossible ~f:2 ~k:2);
        Alcotest.(check bool) "k>f possible" false
          (Lower_bound.corollary13_impossible ~f:1 ~k:2));
    Alcotest.test_case "async check: 1-round consensus impossible" `Quick (fun () ->
        let c = Lower_bound.async_check ~n:2 ~f:1 ~k:1 ~r:1 ~values:[ 0; 1 ] in
        Alcotest.(check bool) "holds" true (Lower_bound.holds c);
        Alcotest.(check bool) "impossible" true (c.Lower_bound.decision = Decision.Impossible));
    Alcotest.test_case "async check: 2 rounds still impossible" `Quick (fun () ->
        let c = Lower_bound.async_check ~n:2 ~f:1 ~k:1 ~r:2 ~values:[ 0; 1 ] in
        Alcotest.(check bool) "holds" true (Lower_bound.holds c));
    Alcotest.test_case "async check: 2-set with f=1 is solvable" `Quick (fun () ->
        let c = Lower_bound.async_check ~n:2 ~f:1 ~k:2 ~r:1 ~values:[ 0; 1; 2 ] in
        Alcotest.(check bool) "holds" true (Lower_bound.holds c);
        match c.Lower_bound.decision with
        | Decision.Solution _ -> ()
        | _ -> Alcotest.fail "expected solvable");
    Alcotest.test_case "sync check: consensus needs f+1 rounds" `Quick (fun () ->
        (* n=3, k_round=1: r=1,2,3 — impossible while n >= rk+k i.e. r <= 2 *)
        let r1 = Lower_bound.sync_check ~n:3 ~k_round:1 ~k_task:1 ~r:1 ~values:[ 0; 1 ] in
        Alcotest.(check bool) "r=1 holds" true (Lower_bound.holds r1);
        Alcotest.(check bool) "r=1 impossible" true
          (r1.Lower_bound.decision = Decision.Impossible));
    Alcotest.test_case "sync check: one round past the bound is solvable" `Quick
      (fun () ->
        let c = Lower_bound.sync_check ~n:2 ~k_round:1 ~k_task:1 ~r:2 ~values:[ 0; 1 ] in
        Alcotest.(check bool) "holds" true (Lower_bound.holds c));
    Alcotest.test_case "semi check r=1" `Quick (fun () ->
        let c = Lower_bound.semi_check ~n:2 ~k_round:1 ~k_task:1 ~p:2 ~r:1 ~values:[ 0; 1 ] in
        Alcotest.(check bool) "holds" true (Lower_bound.holds c);
        Alcotest.(check bool) "impossible" true
          (c.Lower_bound.decision = Decision.Impossible));
    Alcotest.test_case "Theorem 18 formula table" `Quick (fun () ->
        List.iter
          (fun (n, f, k, expect) ->
            Alcotest.(check int)
              (Printf.sprintf "n=%d f=%d k=%d" n f k)
              expect
              (Lower_bound.theorem18_rounds ~n ~f ~k))
          [ (3, 1, 1, 2); (4, 2, 1, 3); (5, 4, 2, 2); (2, 1, 1, 1); (6, 4, 2, 2); (7, 4, 2, 3) ]);
    Alcotest.test_case "Corollary 22 formula values" `Quick (fun () ->
        Alcotest.(check (float 0.001)) "f=3 k=1 C=2 d=1" 4.0
          (Lower_bound.corollary22_time ~f:3 ~k:1 ~c1:1 ~c2:2 ~d:1));
  ]

(* ------------------------------------------------------------------ *)
(* Protocols under failure injection                                   *)
(* ------------------------------------------------------------------ *)

let protocol_tests =
  [
    Alcotest.test_case "flooding consensus: failure-free run" `Quick (fun () ->
        let protocol = Protocols.flood_consensus ~f:1 in
        let report =
          Runner.run_sync ~protocol ~inputs:(inputs 2)
            ~schedule:(Runner.crash_schedule ~plan:[]) ~max_rounds:5
        in
        Alcotest.(check int) "rounds" 2 report.Runner.rounds_used;
        Alcotest.(check int) "all decide" 3 (List.length report.Runner.decisions);
        List.iter
          (fun (_, _, v) -> Alcotest.(check int) "min input" 0 v)
          report.Runner.decisions);
    Alcotest.test_case "flooding consensus: crash mid-protocol" `Quick (fun () ->
        let protocol = Protocols.flood_consensus ~f:1 in
        (* P0 (holding the minimum) crashes in round 1, heard by nobody *)
        let plan = [ (1, 0, Pid.Set.empty) ] in
        let report =
          Runner.run_sync ~protocol ~inputs:(inputs 2)
            ~schedule:(Runner.crash_schedule ~plan) ~max_rounds:5
        in
        Alcotest.(check int) "two survivors decide" 2 (List.length report.Runner.decisions);
        List.iter
          (fun (_, _, v) -> Alcotest.(check int) "agree on 1" 1 v)
          report.Runner.decisions);
    Alcotest.test_case "flooding consensus: split delivery still agrees" `Quick
      (fun () ->
        let protocol = Protocols.flood_consensus ~f:1 in
        (* P0 crashes in round 1 and only P1 hears it: the classic
           dangerous scenario, resolved by round 2 *)
        let plan = [ (1, 0, Pid.Set.singleton 1) ] in
        let report =
          Runner.run_sync ~protocol ~inputs:(inputs 2)
            ~schedule:(Runner.crash_schedule ~plan) ~max_rounds:5
        in
        let values = List.map (fun (_, _, v) -> v) report.Runner.decisions in
        Alcotest.(check int) "two decide" 2 (List.length values);
        Alcotest.(check bool) "agreement" true
          (match values with [ a; b ] -> a = b | _ -> false));
    Alcotest.test_case "flooding consensus: exhaustive verification (n=2, f=1)" `Quick
      (fun () ->
        let protocol = Protocols.flood_consensus ~f:1 in
        let violations =
          Runner.check_sync_exhaustive ~protocol ~k_task:1 ~total_crashes:1
            ~inputs:(inputs 2) ~max_rounds:3
        in
        Alcotest.(check int) "no violations" 0 (List.length violations));
    Alcotest.test_case "flooding consensus with too few rounds breaks" `Quick
      (fun () ->
        (* decide after 1 round with f=1: agreement must fail somewhere *)
        let protocol = Protocol.decide_after_rounds 1 in
        let violations =
          Runner.check_sync_exhaustive ~protocol ~k_task:1 ~total_crashes:1
            ~inputs:(inputs 2) ~max_rounds:3
        in
        Alcotest.(check bool) "agreement violated" true
          (List.mem Runner.Agreement_violated violations));
    Alcotest.test_case "sync k-set: floor(f/k)+1 rounds suffice (exhaustive)" `Quick
      (fun () ->
        (* n=2 (3 processes), f=2, k=2: 2 rounds *)
        let protocol = Protocols.sync_kset ~f:2 ~k:2 in
        Alcotest.(check int) "rounds" 2 (Protocols.sync_kset_rounds ~f:2 ~k:2);
        let violations =
          Runner.check_sync_exhaustive ~protocol ~k_task:2 ~total_crashes:2
            ~inputs:(inputs 2) ~max_rounds:4
        in
        Alcotest.(check int) "no violations" 0 (List.length violations));
    Alcotest.test_case "sync k-set at the n <= f+k edge: 1 round tight" `Quick
      (fun () ->
        (* n=2, f=2, k=2: Theorem 18's bound is floor(f/k) = 1 round; the
           min-flooding protocol with 1 round is exhaustively safe, while
           deciding immediately (0 rounds) violates 2-agreement *)
        let one_round = Protocol.decide_after_rounds 1 in
        Alcotest.(check int) "1 round safe" 0
          (List.length
             (Runner.check_sync_exhaustive ~protocol:one_round ~k_task:2
                ~total_crashes:2 ~inputs:(inputs 2) ~max_rounds:3));
        let zero_rounds = Protocol.decide_after_rounds 0 in
        Alcotest.(check bool) "0 rounds violated" true
          (List.mem Runner.Agreement_violated
             (Runner.check_sync_exhaustive ~protocol:zero_rounds ~k_task:2
                ~total_crashes:2 ~inputs:(inputs 2) ~max_rounds:2)));
    Alcotest.test_case "async certainty protocol starves under the adversary" `Quick
      (fun () ->
        let protocol = Protocols.certainty_consensus ~n:2 in
        let schedule ~round:_ =
          Protocols.async_never_terminating_adversary ~n:2 ~victim:2
        in
        let report =
          Runner.run_async_with ~protocol ~inputs:(inputs 2) ~schedule ~rounds:8
        in
        (* P2's input never propagates: only P2 itself ever reaches
           certainty *)
        Alcotest.(check bool) "P0 and P1 never decide" true
          (List.for_all (fun (q, _, _) -> q = 2) report.Runner.decisions));
    Alcotest.test_case "async certainty protocol decides without adversary" `Quick
      (fun () ->
        let protocol = Protocols.certainty_consensus ~n:2 in
        let all = Pid.universe 2 in
        let schedule ~round:_ =
          List.fold_left (fun m q -> Pid.Map.add q all m) Pid.Map.empty (Pid.all 2)
        in
        let report =
          Runner.run_async_with ~protocol ~inputs:(inputs 2) ~schedule ~rounds:3
        in
        Alcotest.(check int) "all decide" 3 (List.length report.Runner.decisions);
        List.iter
          (fun (_, r, v) ->
            Alcotest.(check int) "round 1" 1 r;
            Alcotest.(check int) "value 0" 0 v)
          report.Runner.decisions);
    Alcotest.test_case "semi-sync consensus in the timed simulator" `Quick (fun () ->
        let cfg = { Sim.c1 = 1; c2 = 2; d = 2 } in
        let f = 1 in
        let protocol = Protocols.semi_sync_consensus ~f in
        let ds =
          Sim.decision_time cfg ~n:2 (Sim.lockstep cfg) ~protocol
            ~inputs:(inputs 2) ~horizon:20
        in
        Alcotest.(check int) "three decide" 3 (List.length ds);
        List.iter
          (fun (_, t, v) ->
            Alcotest.(check int) "time (f+1)d" ((f + 1) * cfg.Sim.d) t;
            Alcotest.(check int) "value" 0 v)
          ds;
        (* decision time respects the Corollary 22 lower bound *)
        let bound =
          Lower_bound.corollary22_time ~f ~k:1 ~c1:cfg.Sim.c1 ~c2:cfg.Sim.c2 ~d:cfg.Sim.d
        in
        List.iter
          (fun (_, t, _) ->
            Alcotest.(check bool) "above bound" true (float_of_int t >= bound))
          ds);
    Alcotest.test_case "Corollary 22 stretch: indistinguishability in the simulator"
      `Quick (fun () ->
        (* After the crash at the round boundary, the slow-solo survivor's
           observations up to r*d + C*d are exactly its lockstep
           observations up to (r+1)*d: it cannot tell the stretched run
           from the fast one, so it cannot decide before r*d + C*d. *)
        let cfg = { Sim.c1 = 1; c2 = 3; d = 3 } in
        let r = 1 in
        let after_step = r * Sim.microrounds cfg in
        let solo = Sim.run cfg ~n:2 (Sim.slow_solo cfg ~survivor:0 ~after_step) ~until:30 in
        let fast = Sim.run cfg ~n:2 (Sim.lockstep cfg) ~until:30 in
        let c = cfg.Sim.c2 / cfg.Sim.c1 in
        let t_solo = (r * cfg.Sim.d) + (c * cfg.Sim.d) in
        let t_fast = (r + 1) * cfg.Sim.d in
        Alcotest.(check bool) "indistinguishable" true
          (Sim.indistinguishable_to 0 (solo, t_solo) (fast, t_fast)));
  ]

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)
(* ------------------------------------------------------------------ *)

let prop_tests =
  let open QCheck2 in
  [
    Test.make ~count:30 ~name:"flooding consensus safe under random crash plans"
      Gen.(
        let victim = int_range 0 2 in
        let round = int_range 1 2 in
        let dsts = list_size (int_range 0 2) (int_range 0 2) in
        triple victim round dsts)
      (fun (victim, round, dsts) ->
        let protocol = Protocols.flood_consensus ~f:1 in
        let plan = [ (round, victim, Pid.Set.of_list dsts) ] in
        let report =
          Runner.run_sync ~protocol ~inputs:(inputs 2)
            ~schedule:(Runner.crash_schedule ~plan) ~max_rounds:4
        in
        let values =
          List.sort_uniq Int.compare (List.map (fun (_, _, v) -> v) report.Runner.decisions)
        in
        List.length values <= 1);
    Test.make ~count:20 ~name:"theorem 18 bound is monotone in f"
      Gen.(pair (int_range 1 4) (int_range 1 2))
      (fun (f, k) ->
        let n = 8 in
        Lower_bound.theorem18_rounds ~n ~f ~k
        <= Lower_bound.theorem18_rounds ~n ~f:(f + 1) ~k);
    Test.make ~count:20 ~name:"corollary 22 time increases with C"
      Gen.(pair (int_range 1 4) (int_range 1 3))
      (fun (f, c2) ->
        Lower_bound.corollary22_time ~f ~k:1 ~c1:1 ~c2 ~d:10
        <= Lower_bound.corollary22_time ~f ~k:1 ~c1:1 ~c2:(c2 + 1) ~d:10);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ("agreement.task", task_tests);
    ("agreement.decision", decision_tests);
    ("agreement.lower_bound", lower_bound_tests);
    ("agreement.protocols", protocol_tests);
    ("agreement.properties", prop_tests);
  ]
