(* Heavier integration tests crossing all layers: multi-round formula vs
   operational semantics, random execution spot-checks, and multi-round
   impossibility. *)

open Psph_topology
open Psph_model
open Pseudosphere
open Psph_agreement

let inputs n = List.init (n + 1) (fun i -> (i, i mod 2))

let input_simplex n = Input_complex.simplex_of_inputs (inputs n)

let facet_of_global g =
  Simplex.of_procs
    (List.map (fun (q, view) -> (q, View.to_label view)) (Pid.Map.bindings g))

let multi_round_tests =
  [
    Alcotest.test_case "A^2 wait-free (n=2 f=2) equals enumeration" `Quick
      (fun () ->
        let formula = Async_complex.rounds ~n:2 ~f:2 ~r:2 (input_simplex 2) in
        let enumerated = Enumerated.async ~n:2 ~f:2 ~r:2 (inputs 2) in
        Alcotest.(check bool) "equal" true (Complex.equal formula enumerated);
        (* Lemma 12 at r=2, f=2: 1-connected *)
        Alcotest.(check bool) "1-connected" true (Homology.is_k_connected formula 1));
    Alcotest.test_case "S^3 (n=2 k=1) equals enumeration" `Quick (fun () ->
        let formula = Sync_complex.rounds ~k:1 ~r:3 (input_simplex 2) in
        let enumerated = Enumerated.sync ~k:1 ~r:3 (inputs 2) in
        Alcotest.(check bool) "equal" true (Complex.equal formula enumerated));
    Alcotest.test_case "M^2 (n=2 k=1 p=2) equals enumeration" `Quick (fun () ->
        let formula = Semi_sync_complex.rounds ~k:1 ~p:2 ~n:2 ~r:2 (input_simplex 2) in
        let enumerated = Enumerated.semi ~k:1 ~p:2 ~n:2 ~r:2 (inputs 2) in
        Alcotest.(check bool) "equal" true (Complex.equal formula enumerated));
    Alcotest.test_case "async consensus stays impossible at r = 3" `Quick
      (fun () ->
        (* connectivity persists round after round (Lemma 12): use the fast
           component-based consensus check on the big complex *)
        let ic = Input_complex.make ~n:2 ~values:[ 0; 1 ] in
        let c = Async_complex.over_inputs ~n:2 ~f:1 ~r:3 ic in
        Alcotest.(check bool) "no consensus map" false
          (Decision.consensus_components_solvable ~complex:c ~allowed:Task.allowed));
    Alcotest.test_case "sync consensus flips exactly at the bound (n=2)" `Quick
      (fun () ->
        let ic = Input_complex.make ~n:2 ~values:[ 0; 1 ] in
        let solvable r =
          Decision.consensus_components_solvable
            ~complex:(Sync_complex.over_inputs ~k:1 ~r ic)
            ~allowed:Task.allowed
        in
        (* Theorem 18: bound is 2 rounds for n=2 > f+k=2? n=2 = f+k -> 1
           round bound... empirically: r=1 impossible, r=2 solvable *)
        Alcotest.(check bool) "r=1" false (solvable 1);
        Alcotest.(check bool) "r=2" true (solvable 2));
  ]

let random_spot_tests =
  [
    Alcotest.test_case "random 2-round sync executions land in S^2" `Quick
      (fun () ->
        let formula = Sync_complex.rounds ~k:1 ~r:2 (input_simplex 2) in
        List.iter
          (fun seed ->
            let g0 = Execution.initial (inputs 2) in
            let s1 =
              Random_adversary.schedules_sync ~seed ~k:1 ~alive:(Execution.alive g0)
            in
            let g1 = Execution.apply_sync g0 s1 in
            let s2 =
              Random_adversary.schedules_sync ~seed:(seed + 1000) ~k:1
                ~alive:(Execution.alive g1)
            in
            let g2 = Execution.apply_sync g1 s2 in
            Alcotest.(check bool)
              (Printf.sprintf "seed %d" seed)
              true
              (Complex.mem (facet_of_global g2) formula))
          (List.init 20 (fun i -> i)));
    Alcotest.test_case "random 2-round semi executions land in M^2" `Quick
      (fun () ->
        let formula = Semi_sync_complex.rounds ~k:1 ~p:2 ~n:2 ~r:2 (input_simplex 2) in
        List.iter
          (fun seed ->
            let g0 = Execution.initial (inputs 2) in
            let s1 =
              Random_adversary.schedules_semi ~seed ~k:1 ~p:2 ~n:2
                ~alive:(Execution.alive g0)
            in
            let g1 = Execution.apply_semi ~p:2 ~n:2 g0 s1 in
            let s2 =
              Random_adversary.schedules_semi ~seed:(seed + 1000) ~k:1 ~p:2 ~n:2
                ~alive:(Execution.alive g1)
            in
            let g2 = Execution.apply_semi ~p:2 ~n:2 g1 s2 in
            Alcotest.(check bool)
              (Printf.sprintf "seed %d" seed)
              true
              (Complex.mem (facet_of_global g2) formula))
          (List.init 20 (fun i -> i)));
    Alcotest.test_case "random IIS executions land in the IIS complex" `Quick
      (fun () ->
        let formula = Iis_complex.rounds ~r:2 (input_simplex 1) in
        let all = Snapshot.run ~rounds:2 (Execution.initial (inputs 1)) in
        List.iter
          (fun g ->
            Alcotest.(check bool) "member" true
              (Complex.mem (facet_of_global g) formula))
          all);
  ]

let cross_layer_tests =
  [
    Alcotest.test_case "MV bound matches homology on every sync grid point" `Quick
      (fun () ->
        List.iter
          (fun (n, k) ->
            let s = input_simplex n in
            let pss = List.map snd (Sync_complex.pseudospheres ~k s) in
            let proof = Mayer_vietoris.union_connectivity pss in
            let realized = Mayer_vietoris.union_realize pss in
            Alcotest.(check bool)
              (Printf.sprintf "n=%d k=%d" n k)
              true
              (Homology.is_k_connected realized (Mayer_vietoris.conn proof)))
          [ (1, 1); (2, 1); (3, 1); (2, 2); (3, 2) ]);
    Alcotest.test_case "certificate agrees with homology on protocol complexes"
      `Quick (fun () ->
        List.iter
          (fun c ->
            let cert = Connectivity.certify c in
            let conn = Homology.connectivity c in
            (* whatever the certificate claims must be sound *)
            List.iter
              (fun k ->
                if Connectivity.certifies_k_connected cert k then
                  Alcotest.(check bool)
                    (Printf.sprintf "k=%d sound" k)
                    true
                    (Homology.is_k_connected c k || k > Complex.dim c))
              [ -1; 0; 1 ];
            ignore conn)
          [
            Async_complex.one_round ~n:2 ~f:1 (input_simplex 2);
            Sync_complex.one_round ~k:1 (input_simplex 2);
            Semi_sync_complex.one_round ~k:1 ~p:2 ~n:2 (input_simplex 2);
            Iis_complex.one_round (input_simplex 2);
          ]);
    Alcotest.test_case "serialized protocol complexes reload with equal homology"
      `Quick (fun () ->
        let c = Semi_sync_complex.one_round ~k:1 ~p:2 ~n:2 (input_simplex 2) in
        let c' = Complex_io.complex_of_string (Complex_io.complex_to_string c) in
        Alcotest.(check (list int))
          "betti"
          (Array.to_list (Homology.betti c))
          (Array.to_list (Homology.betti c')));
    Alcotest.test_case "knowledge vs decision: common knowledge iff solvable"
      `Quick (fun () ->
        (* single-value inputs: consensus trivially solvable AND value
           presence is common knowledge *)
        let ic = Input_complex.make ~n:2 ~values:[ 0 ] in
        let c = Async_complex.over_inputs ~n:2 ~f:1 ~r:1 ic in
        let solvable =
          Decision.consensus_components_solvable ~complex:c ~allowed:Task.allowed
        in
        Alcotest.(check bool) "solvable" true solvable;
        match Complex.facets c with
        | facet :: _ ->
            Alcotest.(check bool) "common knowledge" true
              (Knowledge.common_knowledge_at c facet (Knowledge.fact_value_present 0))
        | [] -> Alcotest.fail "no facets");
  ]

let suites =
  [
    ("integration.multi_round", multi_round_tests);
    ("integration.random_spot", random_spot_tests);
    ("integration.cross_layer", cross_layer_tests);
  ]
