(* Tests for the first-class model registry: registration invariants, the
   model-owned spec normalization and its engine cache-keying consequences
   (two specs differing only in an irrelevant parameter must share a cache
   slot), and the paper's Lemma 11/14/19 pseudosphere decompositions
   checked generically — one qcheck property instantiated per registered
   model, no per-model match anywhere. *)

open Psph_topology
open Pseudosphere
module MC = Model_complex
module E = Psph_engine.Engine
module Key = Psph_engine.Key

let inputs n = List.init (n + 1) (fun i -> (i, i mod 2))

let input_simplex n = Input_complex.simplex_of_inputs (inputs n)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* a spec with every parameter conspicuously nonzero: after [normalize],
   the fields a model zeroes are exactly the ones it ignores *)
let nines = { MC.n = 9; f = 9; k = 9; p = 9; r = 9; ext = [] }

(* ------------------------------------------------------------------ *)
(* registry                                                            *)
(* ------------------------------------------------------------------ *)

let registry_tests =
  [
    Alcotest.test_case "six models, in registration order" `Quick (fun () ->
        Alcotest.(check (list string))
          "names"
          [ "async"; "sync"; "semi"; "iis"; "byz"; "dyn" ]
          (MC.names ()));
    Alcotest.test_case "find/get/all agree on every name" `Quick (fun () ->
        List.iter
          (fun name ->
            Alcotest.(check string) "get" name (MC.name_of (MC.get name));
            match MC.find name with
            | Some m -> Alcotest.(check string) "find" name (MC.name_of m)
            | None -> Alcotest.fail ("find lost " ^ name))
          (MC.names ());
        Alcotest.(check (list string))
          "all in order" (MC.names ())
          (List.map MC.name_of (MC.all ())));
    Alcotest.test_case "unknown model errors with the available list" `Quick
      (fun () ->
        match MC.get "bogus" with
        | _ -> Alcotest.fail "get accepted an unknown model"
        | exception Invalid_argument msg ->
            List.iter
              (fun sub ->
                Alcotest.(check bool) ("mentions " ^ sub) true
                  (contains ~sub msg))
              ("bogus" :: MC.names ()));
    Alcotest.test_case "duplicate registration rejected" `Quick (fun () ->
        let dup : MC.model =
          (module struct
            let name = "async"
            let doc = "impostor"
            let ext_params = []
            let normalize s = s
            let validate s = Ok s
            let one_round _ _ = Complex.empty
            let rounds _ _ = Complex.empty
            let over_inputs _ c = c
            let pseudosphere_decomposition = None
            let expected_connectivity _ ~m:_ = None
            let connectivity_lemma = "none"
          end)
        in
        (match MC.register dup with
        | () -> Alcotest.fail "duplicate register succeeded"
        | exception Invalid_argument _ -> ());
        (* and the real instance is untouched *)
        Alcotest.(check string) "still the original" "impostor"
          (let (module M : MC.MODEL) = dup in
           M.doc);
        let (module A : MC.MODEL) = MC.get "async" in
        Alcotest.(check bool) "original doc" false (A.doc = "impostor"));
  ]

(* ------------------------------------------------------------------ *)
(* model-owned normalization and canonical encoding                    *)
(* ------------------------------------------------------------------ *)

let zeroed (module M : MC.MODEL) =
  let z = M.normalize nines in
  List.filter_map
    (fun (name, v) -> if v = 0 then Some name else None)
    [ ("n", z.MC.n); ("f", z.MC.f); ("k", z.MC.k); ("p", z.MC.p); ("r", z.MC.r) ]

let normalize_tests =
  [
    Alcotest.test_case "each model zeroes exactly its irrelevant params" `Quick
      (fun () ->
        let expect =
          [
            ("async", [ "k"; "p" ]);
            ("sync", [ "f"; "p" ]);
            ("semi", [ "f" ]);
            ("iis", [ "f"; "k"; "p" ]);
            ("byz", [ "f"; "p" ]);
            ("dyn", [ "f"; "k"; "p" ]);
          ]
        in
        List.iter
          (fun ((module M : MC.MODEL) as m) ->
            Alcotest.(check (list string))
              M.name (List.assoc M.name expect) (zeroed m))
          (MC.all ()));
    Alcotest.test_case "normalize is idempotent; validate normalizes" `Quick
      (fun () ->
        List.iter
          (fun (module M : MC.MODEL) ->
            let z = M.normalize nines in
            Alcotest.(check bool) (M.name ^ " idempotent") true
              (M.normalize z = z);
            match M.validate { MC.default_spec with n = 2 } with
            | Error msg -> Alcotest.fail (M.name ^ ": " ^ msg)
            | Ok spec ->
                Alcotest.(check bool) (M.name ^ " validated normal") true
                  (M.normalize spec = spec))
          (MC.all ()));
    Alcotest.test_case "encode keys on the normalized spec" `Quick (fun () ->
        List.iter
          (fun ((module M : MC.MODEL) as m) ->
            let spec = { MC.default_spec with n = 2 } in
            Alcotest.(check string) M.name
              (MC.encode m (M.normalize spec))
              (MC.encode m spec);
            Alcotest.(check bool) (M.name ^ " prefixed") true
              (contains ~sub:(M.name ^ ":") (MC.encode m spec)))
          (MC.all ());
        (* distinct models never collide, even on identical params *)
        let codes =
          List.map (fun m -> MC.encode m MC.default_spec) (MC.all ())
        in
        Alcotest.(check int) "all distinct"
          (List.length codes)
          (List.length (List.sort_uniq String.compare codes)));
  ]

(* ------------------------------------------------------------------ *)
(* the satellite regression: irrelevant params share a cache slot      *)
(* ------------------------------------------------------------------ *)

let cache_tests =
  [
    Alcotest.test_case
      "specs differing only in irrelevant params hit one cache slot" `Quick
      (fun () ->
        let e = E.create ~domains:0 ~capacity:64 () in
        List.iter
          (fun (module M : MC.MODEL) ->
            let base = { MC.default_spec with n = 2 } in
            let z = M.normalize nines in
            (* bump exactly the parameters this model ignores *)
            let bump v zeroed = if zeroed = 0 then v + 5 else v in
            let perturbed =
              {
                base with
                MC.f = bump base.MC.f z.MC.f;
                k = bump base.MC.k z.MC.k;
                p = bump base.MC.p z.MC.p;
              }
            in
            Alcotest.(check bool) (M.name ^ " specs differ") false
              (perturbed = base);
            let r1 = E.eval e (E.Model { model = M.name; params = base }) in
            let r2 = E.eval e (E.Model { model = M.name; params = perturbed }) in
            Alcotest.(check bool) (M.name ^ " same key") true
              (Key.equal r1.E.key r2.E.key);
            Alcotest.(check bool) (M.name ^ " second eval cached") true
              r2.E.cached;
            (* a relevant parameter must change the slot *)
            let r3 =
              E.eval e
                (E.Model { model = M.name; params = { base with MC.r = 2 } })
            in
            Alcotest.(check bool) (M.name ^ " r matters") false
              (Key.equal r1.E.key r3.E.key))
          (MC.all ());
        E.shutdown e);
    Alcotest.test_case "engine rejects invalid and unknown specs" `Quick
      (fun () ->
        let e = E.create ~domains:0 ~capacity:8 () in
        List.iter
          (fun params ->
            match E.eval e (E.Model { model = "sync"; params }) with
            | _ -> Alcotest.fail "invalid spec accepted"
            | exception Invalid_argument _ -> ())
          [
            { MC.default_spec with n = -1 };
            { MC.default_spec with r = -1 };
            { MC.default_spec with k = -1 };
          ];
        (match E.eval e (E.Model { model = "bogus"; params = MC.default_spec }) with
        | _ -> Alcotest.fail "unknown model accepted"
        | exception Invalid_argument msg ->
            Alcotest.(check bool) "lists models" true
              (contains ~sub:"async" msg));
        E.shutdown e);
  ]

(* ------------------------------------------------------------------ *)
(* Lemma 11/14/19 generically: decomposition union ≅ one round         *)
(* ------------------------------------------------------------------ *)

(* random input simplices with random values, plus random parameters;
   invalid or hypothesis-violating draws are discarded by validate *)
let gen_case =
  QCheck2.Gen.(
    int_range 1 3 >>= fun n ->
    int_range 0 n >>= fun f ->
    int_range 1 2 >>= fun k ->
    int_range 1 2 >>= fun p ->
    list_repeat (n + 1) (int_range 0 2)
    |> map (fun vs -> (n, f, k, p, List.mapi (fun i v -> (i, v)) vs)))

let decomposition_props =
  let open QCheck2 in
  List.map
    (fun ((module M : MC.MODEL) as m) ->
      Test.make ~count:25
        ~name:(M.name ^ ": pseudosphere decomposition = one round (generic)")
        gen_case
        (fun (n, f, k, p, ins) ->
          match M.validate { MC.n; f; k; p; r = 1; ext = [] } with
          | Error _ -> true
          | Ok spec ->
              MC.decomposition_holds m spec
                (Input_complex.simplex_of_inputs ins)))
    (MC.all ())
  |> List.map QCheck_alcotest.to_alcotest

(* one deterministic n=4 instance per decomposable model, per the paper *)
let decomposition_n4 =
  [
    Alcotest.test_case "decomposition holds at n=4 for every model" `Slow
      (fun () ->
        List.iter
          (fun ((module M : MC.MODEL) as m) ->
            match M.validate { MC.n = 4; f = 2; k = 1; p = 2; r = 1; ext = [] } with
            | Error msg -> Alcotest.fail (M.name ^ ": " ^ msg)
            | Ok spec ->
                Alcotest.(check bool) M.name true
                  (MC.decomposition_holds m spec (input_simplex 4)))
          (MC.all ()));
  ]

(* ------------------------------------------------------------------ *)
(* generic rounds semantics + the paper's connectivity claims          *)
(* ------------------------------------------------------------------ *)

let rounds_tests =
  [
    Alcotest.test_case "r=0 is the solid input simplex; r=1 is one_round"
      `Quick (fun () ->
        List.iter
          (fun (module M : MC.MODEL) ->
            let s = input_simplex 2 in
            let spec =
              match M.validate { MC.default_spec with n = 2 } with
              | Ok spec -> spec
              | Error msg -> Alcotest.fail (M.name ^ ": " ^ msg)
            in
            Alcotest.(check bool) (M.name ^ " r=0") true
              (Complex.equal
                 (M.rounds { spec with MC.r = 0 } s)
                 (Complex.of_simplex s));
            Alcotest.(check bool) (M.name ^ " r=1") true
              (Complex.equal (M.rounds { spec with MC.r = 1 } s) (M.one_round spec s)))
          (MC.all ()));
    Alcotest.test_case "expected_connectivity is honoured at r=1,2 (n=2)"
      `Quick (fun () ->
        List.iter
          (fun (module M : MC.MODEL) ->
            List.iter
              (fun r ->
                let spec =
                  match M.validate { MC.default_spec with n = 2; r } with
                  | Ok spec -> spec
                  | Error msg -> Alcotest.fail (M.name ^ ": " ^ msg)
                in
                match M.expected_connectivity spec ~m:2 with
                | None -> ()
                | Some conn ->
                    let c = M.rounds spec (input_simplex 2) in
                    Alcotest.(check bool)
                      (Printf.sprintf "%s r=%d >= %d-connected" M.name r conn)
                      true
                      (Homology.is_k_connected c conn))
              [ 1; 2 ])
          (MC.all ()));
    Alcotest.test_case "over_inputs contains rounds of every input facet"
      `Quick (fun () ->
        let ic = Input_complex.make ~n:1 ~values:[ 0; 1 ] in
        List.iter
          (fun (module M : MC.MODEL) ->
            let spec =
              match M.validate { MC.default_spec with n = 1 } with
              | Ok spec -> spec
              | Error msg -> Alcotest.fail (M.name ^ ": " ^ msg)
            in
            let c = M.over_inputs spec ic in
            List.iter
              (fun s ->
                Alcotest.(check bool) (M.name ^ " facet subcomplex") true
                  (Complex.subcomplex (M.rounds spec s) c))
              (Complex.facets ic))
          (MC.all ()));
  ]

(* ------------------------------------------------------------------ *)
(* symbolic solver tier: every rule is a true lower bound              *)
(* ------------------------------------------------------------------ *)

let spec2 = { MC.n = 2; f = 1; k = 1; p = 2; r = 1; ext = [] }

(* runtime-registered test models (e.g. the serve poison model) don't
   promise solver invariants *)
let real_models () =
  List.filter
    (fun (module M : MC.MODEL) ->
      not (String.length M.name >= 5 && String.sub M.name 0 5 = "test-"))
    (MC.all ())

let solver_tests =
  [
    Alcotest.test_case "r=0 answers the solid input simplex" `Quick (fun () ->
        List.iter
          (fun ((module M : MC.MODEL) as m) ->
            match Solver.symbolic_model m { spec2 with MC.n = 3; r = 0 } with
            | Some s ->
                Alcotest.(check int) (M.name ^ " conn") 3 s.Solver.connectivity;
                Alcotest.(check string)
                  (M.name ^ " rule") "solid input simplex (r=0)" s.Solver.rule
            | None -> Alcotest.fail (M.name ^ ": no symbolic answer at r=0"))
          (real_models ()));
    Alcotest.test_case "invalid specs are rejected, not derived" `Quick
      (fun () ->
        List.iter
          (fun ((module M : MC.MODEL) as m) ->
            match Solver.symbolic_model m { spec2 with MC.n = -1 } with
            | exception Invalid_argument _ -> ()
            | _ -> Alcotest.fail (M.name ^ ": accepted n = -1"))
          (real_models ()));
    Alcotest.test_case "one-round MV derivations validate numerically at n=2"
      `Quick (fun () ->
        List.iter
          (fun ((module M : MC.MODEL) as m) ->
            match Solver.pieces m spec2 with
            | None -> () (* no registered decomposition (iis) *)
            | Some ps -> (
                Alcotest.(check bool)
                  (M.name ^ " within cap") true
                  (List.length ps <= Solver.mv_piece_cap);
                match Solver.symbolic_model m spec2 with
                | Some
                    { Solver.rule = "Theorem 2 + Corollary 6";
                      proof = Some proof; connectivity; steps; _ } ->
                    Alcotest.(check bool) (M.name ^ " steps") true (steps > 0);
                    Alcotest.(check int)
                      (M.name ^ " proof conn") connectivity
                      (Mayer_vietoris.conn proof);
                    Alcotest.(check bool)
                      (M.name ^ " validates") true
                      (Mayer_vietoris.validate ps proof)
                | _ -> Alcotest.fail (M.name ^ ": expected an MV derivation")))
          (real_models ()));
    Alcotest.test_case "symbolic bounds hold numerically, every model, r <= 2"
      `Quick (fun () ->
        let checked = ref 0 in
        List.iter
          (fun ((module M : MC.MODEL) as m) ->
            List.iter
              (fun (n, r) ->
                let spec = { spec2 with MC.n; r } in
                match M.validate spec with
                | Error _ -> ()
                | Ok spec -> (
                    match Solver.symbolic_model m spec with
                    | None -> ()
                    | Some s ->
                        incr checked;
                        let numeric =
                          Homology.connectivity (M.rounds spec (input_simplex n))
                        in
                        if numeric < s.Solver.connectivity then
                          Alcotest.fail
                            (Printf.sprintf
                               "%s n=%d r=%d: numeric %d < symbolic bound %d \
                                (%s)"
                               M.name n r numeric s.Solver.connectivity
                               s.Solver.rule)))
              [ (2, 0); (2, 1); (2, 2); (3, 0); (3, 1) ])
          (real_models ());
        Alcotest.(check bool) "some bounds were checked" true (!checked > 0));
    Alcotest.test_case "Corollary 6 psph bound holds numerically" `Quick
      (fun () ->
        List.iter
          (fun (n, values) ->
            match Solver.symbolic_psph ~n ~values with
            | None -> Alcotest.fail "no psph bound"
            | Some s ->
                let c =
                  Psph.realize ~vertex:Psph.default_vertex
                    (Psph.uniform
                       ~base:(Simplex.proc_simplex n)
                       (List.init values (fun v -> Label.Int v)))
                in
                Alcotest.(check string) "rule" "Corollary 6" s.Solver.rule;
                Alcotest.(check bool)
                  (Printf.sprintf "n=%d values=%d" n values)
                  true
                  (Homology.connectivity c >= s.Solver.connectivity))
          [ (0, 1); (1, 2); (2, 2); (2, 3); (3, 2) ]);
  ]

(* ------------------------------------------------------------------ *)
(* canonical encoding: golden pins + the cache-key regression guard    *)
(* ------------------------------------------------------------------ *)

(* the exact historical byte format for the extension-free models (a
   change here invalidates every on-disk memo store and warmed replica),
   and the canonical extended form for the adversary-parameterized ones *)
let golden_encode_tests =
  [
    Alcotest.test_case "encode emits the pinned canonical bytes" `Quick
      (fun () ->
        List.iter
          (fun (name, expect) ->
            Alcotest.(check string)
              name expect
              (MC.encode (MC.get name) MC.default_spec))
          [
            ("async", "async:n=2,f=1,k=0,p=0,r=1");
            ("sync", "sync:n=2,f=0,k=1,p=0,r=1");
            ("semi", "semi:n=2,f=0,k=1,p=2,r=1");
            ("iis", "iis:n=2,f=0,k=0,p=0,r=1");
            ("byz", "byz:n=2,f=0,k=1,p=0,r=1,t=1,equiv=1");
            ("dyn", "dyn:n=2,f=0,k=0,p=0,r=1,adv=0");
          ]);
    Alcotest.test_case "ext payloads canonicalize: order, defaults, junk" `Quick
      (fun () ->
        let byz = MC.get "byz" in
        (* declared order wins over payload order; unknown keys vanish *)
        Alcotest.(check string)
          "reordered + junk" "byz:n=2,f=0,k=1,p=0,r=1,t=2,equiv=0"
          (MC.encode byz
             {
               MC.default_spec with
               ext = [ ("equiv", 0); ("junk", 7); ("t", 2) ];
             });
        (* a partial payload fills the missing defaults *)
        Alcotest.(check string)
          "partial" "byz:n=2,f=0,k=1,p=0,r=1,t=3,equiv=1"
          (MC.encode byz { MC.default_spec with ext = [ ("t", 3) ] });
        let dyn = MC.get "dyn" in
        Alcotest.(check bool) "adv classes key differently" false
          (MC.encode dyn { MC.default_spec with ext = [ ("adv", 0) ] }
          = MC.encode dyn { MC.default_spec with ext = [ ("adv", 1) ] }));
  ]

(* random ext payload against a model's declaration: each declared key
   present or absent, values small, order possibly reversed, plus an
   occasional undeclared key (which normalize must drop) *)
let gen_ext (module M : MC.MODEL) =
  QCheck2.Gen.(
    list_repeat (List.length M.ext_params) (option (int_range 0 3))
    >>= fun vals ->
    bool >>= fun rev ->
    bool |> map (fun junk ->
        let entries =
          List.concat
            (List.map2
               (fun ep v ->
                 match v with
                 | None -> []
                 | Some v -> [ (ep.MC.ep_name, v) ])
               M.ext_params vals)
        in
        let entries = if rev then List.rev entries else entries in
        if junk then entries @ [ ("zzz-junk", 1) ] else entries))

let gen_spec (module M : MC.MODEL) =
  QCheck2.Gen.(
    int_range 0 3 >>= fun n ->
    int_range 0 3 >>= fun f ->
    int_range 0 3 >>= fun k ->
    int_range 1 3 >>= fun p ->
    int_range 0 2 >>= fun r ->
    gen_ext (module M) |> map (fun ext -> { MC.n; f; k; p; r; ext }))

(* the satellite guard: a silent encode collision poisons the memo store
   and every replica warmed from it, so [encode] must be injective on
   normalized specs — equal strings iff equal normalized specs — and
   deterministic across calls *)
let encode_injective_props =
  let open QCheck2 in
  List.map
    (fun ((module M : MC.MODEL) as m) ->
      Test.make ~count:200
        ~name:(M.name ^ ": encode injective on normalized specs, and stable")
        Gen.(pair (gen_spec (module M)) (gen_spec (module M)))
        (fun (s1, s2) ->
          let e1 = MC.encode m s1 and e2 = MC.encode m s2 in
          String.equal e1 (MC.encode m s1)
          && Bool.equal (String.equal e1 e2) (M.normalize s1 = M.normalize s2)))
    (MC.all ())
  |> List.map QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* the Byzantine model against the Mendes-Herlihy bound                *)
(* ------------------------------------------------------------------ *)

let byz_spec ~n ~t ~k ~r =
  { MC.default_spec with n; k; r; ext = [ ("t", t) ] }

let byz_point (n, t, k, r, expect) =
  let ((module B : MC.MODEL) as byz) = MC.get "byz" in
  let spec =
    match B.validate (byz_spec ~n ~t ~k ~r) with
    | Ok spec -> spec
    | Error msg -> Alcotest.fail msg
  in
  let label = Printf.sprintf "n=%d t=%d k=%d r=%d" n t k r in
  (* the implementation's guard must agree with the paper's closed form:
     the lemma applies exactly for r <= ceil(t/k) rounds (and n >= rk+k) *)
  let closed_form = k >= 1 && r >= 1 && r <= (t + k - 1) / k && n >= (r * k) + k in
  let bound = B.expected_connectivity spec ~m:n in
  Alcotest.(check bool)
    (label ^ " lemma applies iff r <= ceil(t/k) and n >= rk+k")
    closed_form (bound <> None);
  Alcotest.(check (option int)) (label ^ " bound") expect bound;
  match bound with
  | None -> ()
  | Some b ->
      let c = B.rounds spec (input_simplex n) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: numeric >= %d (claimed %s)" label b
           (match expect with Some e -> string_of_int e | None -> "-"))
        true
        (Homology.is_k_connected c b);
      (* and the check-mode invariant end to end: the solver's symbolic
         tier never claims more than the numeric tier delivers *)
      (match Solver.symbolic_model byz spec with
      | Some s ->
          Alcotest.(check bool)
            (label ^ " solver claim within numeric") true
            (s.Solver.connectivity <= Homology.connectivity c)
      | None -> Alcotest.fail (label ^ ": lemma tier missing"))

let byz_grid_tests =
  [
    Alcotest.test_case "ceil(t/k) bound on the quick grid" `Quick (fun () ->
        List.iter byz_point
          [
            (2, 1, 1, 1, Some 0);
            (3, 1, 1, 1, Some 0);
            (2, 1, 1, 2, None) (* budget spent: r > ceil(t/k) *);
            (2, 1, 2, 1, None) (* n < rk + k *);
            (2, 0, 1, 1, None) (* no corruption at all *);
          ]);
    Alcotest.test_case "ceil(t/k) bound on the big grid" `Slow (fun () ->
        List.iter byz_point
          [
            (4, 2, 2, 1, Some 1) (* (k-1)-connected with k=2 exposures *);
            (3, 2, 1, 2, Some 0) (* two rounds into a budget of two *);
          ]);
    Alcotest.test_case "equivocation mode changes the complex and the key"
      `Quick (fun () ->
        let ((module B : MC.MODEL) as byz) = MC.get "byz" in
        let spec equiv =
          match
            B.validate
              { MC.default_spec with ext = [ ("t", 1); ("equiv", equiv) ] }
          with
          | Ok spec -> spec
          | Error msg -> Alcotest.fail msg
        in
        Alcotest.(check bool) "keys differ" false
          (MC.encode byz (spec 0) = MC.encode byz (spec 1));
        let s = input_simplex 2 in
        let c0 = B.one_round (spec 0) s and c1 = B.one_round (spec 1) s in
        (* binary equivocation strictly enlarges the adversary's options *)
        Alcotest.(check bool) "equiv=none subcomplex of equiv=binary" true
          (Complex.subcomplex c0 c1);
        Alcotest.(check bool) "strictly more states under equivocation" true
          (Complex.num_simplices c1 > Complex.num_simplices c0));
    Alcotest.test_case "exposed processes leave; budget shrinks across rounds"
      `Quick (fun () ->
        let (module B : MC.MODEL) = MC.get "byz" in
        let spec =
          match B.validate (byz_spec ~n:2 ~t:1 ~k:1 ~r:2) with
          | Ok spec -> spec
          | Error msg -> Alcotest.fail msg
        in
        let c = B.rounds spec (input_simplex 2) in
        (* t = 1: at most one process is ever exposed, so every facet
           keeps at least 2 of the 3 processes *)
        List.iter
          (fun s ->
            Alcotest.(check bool) "facet cardinality" true
              (Pid.Set.cardinal (Simplex.ids s) >= 2))
          (Complex.facets c));
  ]

(* ------------------------------------------------------------------ *)
(* the dynamic-network model and its adversary classes                 *)
(* ------------------------------------------------------------------ *)

let dyn_spec adv = { MC.default_spec with ext = [ ("adv", adv) ] }

let dyn_validated adv =
  let (module D : MC.MODEL) = MC.get "dyn" in
  match D.validate (dyn_spec adv) with
  | Ok spec -> spec
  | Error msg -> Alcotest.fail msg

let dyn_tests =
  [
    Alcotest.test_case "digraph classes: star is rooted, not strong" `Quick
      (fun () ->
        let open Psph_model in
        let pid = Pid.of_int in
        let alive = Pid.Set.of_list [ pid 0; pid 1; pid 2 ] in
        let star =
          (* everyone hears root 0 (and itself); 0 hears only itself *)
          Pid.Map.of_seq
            (List.to_seq
               [
                 (pid 0, Pid.Set.singleton (pid 0));
                 (pid 1, Pid.Set.of_list [ pid 0; pid 1 ]);
                 (pid 2, Pid.Set.of_list [ pid 0; pid 2 ]);
               ])
        in
        Alcotest.(check bool) "star rooted" true (Round_schedule.rooted star);
        Alcotest.(check bool) "star not strong" false
          (Round_schedule.strongly_connected star);
        let silent =
          Pid.Map.of_seq
            (Seq.map (fun q -> (q, Pid.Set.singleton q)) (Pid.Set.to_seq alive))
        in
        Alcotest.(check bool) "silence not rooted" false
          (Round_schedule.rooted silent);
        let complete =
          Pid.Map.of_seq
            (Seq.map (fun q -> (q, alive)) (Pid.Set.to_seq alive))
        in
        Alcotest.(check bool) "complete strong" true
          (Round_schedule.strongly_connected complete);
        let all = Round_schedule.digraphs ~alive in
        Alcotest.(check int) "closed-form count"
          (Round_schedule.digraph_count ~alive_count:3)
          (List.length all);
        let rooted = List.filter Round_schedule.rooted all in
        let strong = List.filter Round_schedule.strongly_connected all in
        Alcotest.(check bool) "strong < rooted < all" true
          (List.length strong < List.length rooted
          && List.length rooted < List.length all));
    Alcotest.test_case "one facet per allowed digraph" `Quick (fun () ->
        let open Psph_model in
        let (module D : MC.MODEL) = MC.get "dyn" in
        let s = input_simplex 2 in
        let all = Round_schedule.digraphs ~alive:(Simplex.ids s) in
        List.iter
          (fun (adv, keep) ->
            let expected = List.length (List.filter keep all) in
            let c = D.one_round (dyn_validated adv) s in
            Alcotest.(check int)
              (Printf.sprintf "adv=%d facet count" adv)
              expected
              (List.length (Complex.facets c)))
          [
            (0, Round_schedule.rooted);
            (1, Round_schedule.strongly_connected);
            (2, fun _ -> true);
          ]);
    Alcotest.test_case "adversary classes nest as subcomplexes" `Quick
      (fun () ->
        let (module D : MC.MODEL) = MC.get "dyn" in
        let s = input_simplex 2 in
        let c adv = D.rounds (dyn_validated adv) s in
        Alcotest.(check bool) "strong within rooted" true
          (Complex.subcomplex (c 1) (c 0));
        Alcotest.(check bool) "rooted within all" true
          (Complex.subcomplex (c 0) (c 2)));
    Alcotest.test_case "rooted/all claim connectedness and deliver it; \
                        strong stays numeric" `Quick (fun () ->
        let ((module D : MC.MODEL) as dyn) = MC.get "dyn" in
        let s = input_simplex 2 in
        List.iter
          (fun adv ->
            let spec = dyn_validated adv in
            let claim = D.expected_connectivity spec ~m:2 in
            (match adv with
            | 1 -> Alcotest.(check (option int)) "strong: no claim" None claim
            | _ -> Alcotest.(check (option int)) "claimed" (Some 0) claim);
            let c = D.rounds spec s in
            Alcotest.(check bool)
              (Printf.sprintf "adv=%d connected" adv)
              true
              (Homology.is_k_connected c 0);
            match Solver.symbolic_model dyn spec with
            | Some sres ->
                Alcotest.(check bool) "solver claim within numeric" true
                  (sres.Solver.connectivity <= Homology.connectivity c)
            | None ->
                Alcotest.(check bool) "only strong lacks a derivation" true
                  (adv = 1))
          [ 0; 1; 2 ]);
    Alcotest.test_case "two rounds stay connected (rooted, n=2)" `Slow
      (fun () ->
        let (module D : MC.MODEL) = MC.get "dyn" in
        let spec =
          match D.validate { (dyn_spec 0) with r = 2 } with
          | Ok spec -> spec
          | Error msg -> Alcotest.fail msg
        in
        let c = D.rounds spec (input_simplex 2) in
        Alcotest.(check bool) "connected" true (Homology.is_k_connected c 0));
  ]

let suites =
  [
    ("models.registry", registry_tests);
    ("models.normalize", normalize_tests);
    ("models.cache", cache_tests);
    ("models.encode", golden_encode_tests @ encode_injective_props);
    ("models.decomposition", decomposition_props @ decomposition_n4);
    ("models.rounds", rounds_tests);
    ("models.solver", solver_tests);
    ("models.byz", byz_grid_tests);
    ("models.dyn", dyn_tests);
  ]
