(* lib/net tests: framing (unit + qcheck fuzz over random chunking),
   client/server loopback against the real engine (byte-identical with
   the stdio serve loop, deadlines, oversized frames, span nesting
   across the socket), and router hashing + failover with a dying
   backend. *)

open Psph_net
module Obs = Psph_obs.Obs
module Jsonl = Psph_obs.Jsonl
module E = Psph_engine.Engine
module Serve = Psph_engine.Serve

let check = Alcotest.check

let fail = Alcotest.fail

let string, int, bool = Alcotest.(string, int, bool)

let option, list = Alcotest.(option, list)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_contains what line sub =
  if not (contains line sub) then
    fail (Printf.sprintf "%s: %S not found in %S" what sub line)

let loopback port = { Addr.host = "127.0.0.1"; port }

(* ------------------------------------------------------------------ *)
(* Addr                                                                *)
(* ------------------------------------------------------------------ *)

let addr_tests =
  [
    Alcotest.test_case "parse HOST:PORT" `Quick (fun () ->
        (match Addr.parse "127.0.0.1:8080" with
        | Ok a ->
            check string "host" "127.0.0.1" a.Addr.host;
            check int "port" 8080 a.Addr.port
        | Error m -> fail m);
        (match Addr.parse "somehost:0" with
        | Ok a -> check int "port 0 allowed" 0 a.Addr.port
        | Error m -> fail m);
        List.iter
          (fun s ->
            check bool (Printf.sprintf "%S rejected" s) true
              (Result.is_error (Addr.parse s)))
          [ "noport"; "h:"; ":80"; "h:abc"; "h:70000"; "h:-1" ]);
    Alcotest.test_case "to_string round-trips" `Quick (fun () ->
        match Addr.parse "10.0.0.1:443" with
        | Ok a -> check string "round-trip" "10.0.0.1:443" (Addr.to_string a)
        | Error m -> fail m);
  ]

(* ------------------------------------------------------------------ *)
(* Frame: unit                                                         *)
(* ------------------------------------------------------------------ *)

let drain r =
  let rec go acc =
    match Frame.next r with Some p -> go (p :: acc) | None -> List.rev acc
  in
  go []

let frame_tests =
  [
    Alcotest.test_case "encode/decode, byte-transparent" `Quick (fun () ->
        let payloads = [ ""; "{\"op\":\"stats\"}"; "with\nnewline\x00and nul" ] in
        let r = Frame.reader () in
        Frame.feed_string r (String.concat "" (List.map Frame.encode payloads));
        check (list string) "all frames" payloads (drain r);
        check int "clean boundary" 0 (Frame.pending r));
    Alcotest.test_case "byte-at-a-time feed" `Quick (fun () ->
        let wire = Frame.encode "slow" ^ Frame.encode "drip" in
        let r = Frame.reader () in
        String.iter (fun c -> Frame.feed_string r (String.make 1 c)) wire;
        check (list string) "frames" [ "slow"; "drip" ] (drain r));
    Alcotest.test_case "pending counts a torn frame" `Quick (fun () ->
        let wire = Frame.encode "abcdef" in
        let r = Frame.reader () in
        Frame.feed_string r (String.sub wire 0 7);
        check (option string) "incomplete" None (Frame.next r);
        check int "buffered bytes" 7 (Frame.pending r);
        Frame.feed_string r (String.sub wire 7 (String.length wire - 7));
        check (option string) "completed" (Some "abcdef") (Frame.next r);
        check int "boundary again" 0 (Frame.pending r));
    Alcotest.test_case "oversized encode refused" `Quick (fun () ->
        match Frame.encode ~max_frame:8 "123456789" with
        | _ -> fail "encode should have raised"
        | exception Frame.Oversized n -> check int "offending length" 9 n);
    Alcotest.test_case "oversized header poisons the reader" `Quick (fun () ->
        let r = Frame.reader ~max_frame:8 () in
        Frame.feed_string r (Frame.encode ~max_frame:8 "12345678");
        check (option string) "exactly max ok" (Some "12345678") (Frame.next r);
        (match Frame.feed_string r (Frame.encode "123456789") with
        | _ -> fail "oversized header should have raised"
        | exception Frame.Oversized n -> check int "advertised length" 9 n);
        (* the stream is desynced: even a well-formed frame re-raises *)
        match Frame.feed_string r (Frame.encode "ok") with
        | _ -> fail "poisoned reader should keep raising"
        | exception Frame.Oversized n -> check int "original length" 9 n);
    Alcotest.test_case "sign-bit length is oversized" `Quick (fun () ->
        let r = Frame.reader () in
        match Frame.feed_string r "\x80\x00\x00\x01x" with
        | _ -> fail "negative length should have raised"
        | exception Frame.Oversized _ -> ());
  ]

(* ------------------------------------------------------------------ *)
(* Frame: qcheck fuzz                                                  *)
(* ------------------------------------------------------------------ *)

let frame_props =
  let open QCheck2 in
  [
    Test.make ~name:"round-trip survives any chunking" ~count:300
      Gen.(pair (list_size (0 -- 8) (string_size (0 -- 300))) (1 -- 13))
      (fun (payloads, chunk) ->
        let wire = String.concat "" (List.map Frame.encode payloads) in
        let buf = Bytes.of_string wire in
        let r = Frame.reader () in
        let n = Bytes.length buf in
        let i = ref 0 in
        while !i < n do
          let len = min chunk (n - !i) in
          Frame.feed r buf !i len;
          i := !i + len
        done;
        drain r = payloads && Frame.pending r = 0);
    Test.make ~name:"torn frame completes on the next feed" ~count:300
      Gen.(pair (string_size (0 -- 200)) (0 -- 1000))
      (fun (payload, cut) ->
        let wire = Frame.encode payload in
        let k = cut mod String.length wire in
        let r = Frame.reader () in
        Frame.feed_string r (String.sub wire 0 k);
        let torn = Frame.next r = None && Frame.pending r = k in
        Frame.feed_string r (String.sub wire k (String.length wire - k));
        torn && Frame.next r = Some payload && Frame.pending r = 0);
  ]
  |> List.map QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Client/Server loopback                                              *)
(* ------------------------------------------------------------------ *)

let with_server ?deadline_s ?max_frame handler f =
  match Server.listen ?deadline_s ?max_frame ~handler (loopback 0) with
  | Error m -> fail m
  | Ok srv ->
      Server.start srv;
      Fun.protect
        ~finally:(fun () -> Server.stop srv)
        (fun () -> f srv (loopback (Server.port srv)))

let with_client ?(timeout_ms = 5000) ?(retries = 1) ?(backoff_ms = 1) addr f =
  let c = Client.create ~timeout_ms ~retries ~backoff_ms addr in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let with_engine f =
  let engine = E.create ~domains:0 () in
  Fun.protect ~finally:(fun () -> E.shutdown engine) (fun () -> f engine)

let request_ok c line =
  match Client.request c line with
  | Ok resp -> resp
  | Error e -> fail (Client.error_message e)

(* a loopback port with nothing listening: bind to 0, read it back, close *)
let dead_port () =
  let s = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let p =
    match Unix.getsockname s with Unix.ADDR_INET (_, p) -> p | _ -> 0
  in
  Unix.close s;
  p

let loopback_tests =
  [
    Alcotest.test_case "byte-identical with Serve.handle_line" `Quick (fun () ->
        with_engine @@ fun engine ->
        with_server (Serve.handle_line engine) @@ fun _srv addr ->
        with_client addr @@ fun c ->
        let line = {|{"op":"psph","n":2,"values":2,"id":7}|} in
        ignore (Serve.handle_line engine line);
        (* warm: both the direct call and the TCP one must now say cached *)
        let direct = Serve.handle_line engine line in
        let resp = request_ok c line in
        check string "same bytes over TCP" direct resp;
        check_contains "success" resp {|"ok":true|};
        check_contains "warm" resp {|"cached":true|};
        check_contains "id echoed" resp {|"id":7|});
    Alcotest.test_case "keep-alive: many ops on one connection" `Quick
      (fun () ->
        with_engine @@ fun engine ->
        with_server (Serve.handle_line engine) @@ fun _srv addr ->
        with_client addr @@ fun c ->
        check_contains "models op" (request_ok c {|{"op":"models"}|}) "async";
        check_contains "bad op is a response, not an error"
          (request_ok c {|{"op":"nope","id":1}|})
          {|"ok":false|};
        check_contains "betti after an error"
          (request_ok c {|{"op":"betti","facets":["0:i0 ; 1:i1"]}|})
          {|"betti":|});
    Alcotest.test_case "deadline exceeded answers an error" `Quick (fun () ->
        with_server ~deadline_s:0.005
          (fun _ ->
            Thread.delay 0.05;
            {|{"ok":true,"late":true}|})
        @@ fun _srv addr ->
        with_client addr @@ fun c ->
        let resp = request_ok c {|{"op":"x","id":9}|} in
        check_contains "deadline error" resp "deadline exceeded";
        check_contains "id echoed" resp {|"id":9|});
    Alcotest.test_case "oversized request answered, then reconnect" `Quick
      (fun () ->
        with_server ~max_frame:128 (fun _ -> "pong") @@ fun _srv addr ->
        with_client addr @@ fun c ->
        let big = String.make 300 'x' in
        let resp = request_ok c big in
        check_contains "rejected" resp "frame too large";
        (* the server hung up after the framing error; the client must
           reconnect transparently on the next request *)
        check string "back in business" "pong" (request_ok c "ping"));
    Alcotest.test_case "connect refused is retryable, not fatal" `Quick
      (fun () ->
        with_client ~timeout_ms:500 ~retries:2 (loopback (dead_port ()))
        @@ fun c ->
        match Client.request c {|{"op":"stats"}|} with
        | Ok _ -> fail "nothing was listening"
        | Error e ->
            check bool "retryable" true (Client.is_retryable e);
            check bool "protocol errors are fatal" false
              (Client.is_retryable (Client.Protocol "x")));
    Alcotest.test_case "stop drains past a full connection pool" `Quick
      (fun () ->
        (* with max_conns idle peers the accept loop is parked in its
           capacity wait; stop must still reach the drain path and
           return rather than deadlock *)
        match Server.listen ~max_conns:1 ~handler:(fun _ -> "x") (loopback 0)
        with
        | Error m -> fail m
        | Ok srv ->
            Server.start srv;
            let fd =
              Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0
            in
            Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
            @@ fun () ->
            Unix.connect fd
              (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port srv));
            (* give the accept loop time to take the connection and park *)
            Thread.delay 0.2;
            Server.stop srv);
    Alcotest.test_case "spans nest across the socket" `Quick (fun () ->
        with_engine @@ fun engine ->
        with_server (Serve.handle_line engine) @@ fun _srv addr ->
        with_client addr @@ fun c ->
        Fun.protect ~finally:(fun () -> Obs.set_sink Obs.Null) @@ fun () ->
        Obs.set_sink Obs.Memory;
        Obs.clear_records ();
        ignore (request_ok c {|{"op":"psph","n":1,"values":1}|});
        Obs.set_sink Obs.Null;
        let span name =
          List.find_map
            (function
              | Obs.Span_record { name = n; id; parent; _ } when n = name ->
                  Some (id, parent)
              | _ -> None)
            (Obs.records ())
        in
        match
          (span "net.client.request", span "serve.request", span "engine.query")
        with
        | Some (cid, croot), Some (sid, sparent), Some (_, qparent) ->
            check (option int) "client span is the root" None croot;
            check (option int) "serve.request under net.client.request"
              (Some cid) sparent;
            check (option int) "engine.query under serve.request" (Some sid)
              qparent
        | c', s', q' ->
            fail
              (Printf.sprintf "missing spans: client=%b serve=%b query=%b"
                 (c' <> None) (s' <> None) (q' <> None)));
  ]

(* ------------------------------------------------------------------ *)
(* Router                                                              *)
(* ------------------------------------------------------------------ *)

let mk_router ?(retries = 0) ports =
  Router.create ~timeout_ms:2000 ~retries ~check_period_ms:3600_000
    (List.map loopback ports)

let router_tests =
  [
    Alcotest.test_case "shard keys canonicalize like the engine" `Quick
      (fun () ->
        check (option string) "psph by parameters"
          (Some "psph:2:3")
          (Router.shard_key {|{"op":"psph","n":2,"values":3}|});
        (* async normalizes k and p away: requests differing only in
           parameters the model ignores must land on the same backend *)
        check (option string) "model params the model ignores"
          (Router.shard_key {|{"op":"model-complex","model":"async","n":2,"k":1}|})
          (Router.shard_key {|{"op":"model-complex","model":"async","n":2,"k":5,"p":9}|});
        (* explicit complexes shard by content address, so facet order
           and the betti/connectivity split don't matter *)
        let k1 =
          Router.shard_key {|{"op":"betti","facets":["0:i0 ; 1:i1","1:i1 ; 2:i0"]}|}
        in
        check (option string) "facet order irrelevant" k1
          (Router.shard_key
             {|{"op":"connectivity","facets":["1:i1 ; 2:i0","0:i0 ; 1:i1"]}|});
        check bool "content-addressed" true
          (match k1 with Some s -> String.length s > 4 && String.sub s 0 4 = "key:" | None -> false);
        check (option string) "stats has no affinity" None
          (Router.shard_key {|{"op":"stats"}|});
        check (option string) "garbage has no affinity" None
          (Router.shard_key "not json"));
    Alcotest.test_case "preference is deterministic and stable" `Quick
      (fun () ->
        let r3 = mk_router [ 6401; 6402; 6403 ] in
        let r2 = mk_router [ 6401; 6402 ] in
        Fun.protect
          ~finally:(fun () -> Router.stop r3; Router.stop r2)
        @@ fun () ->
        let lines =
          List.init 60 (fun i ->
              Printf.sprintf {|{"op":"psph","n":%d,"values":%d}|} (i mod 6)
                (i / 6))
        in
        List.iter
          (fun line ->
            let p = Router.preference r3 line in
            check (list int) "deterministic" p (Router.preference r3 line);
            check (list int) "a permutation of all backends"
              (List.sort compare p) [ 0; 1; 2 ];
            (* consistent hashing: dropping backend 2 must not move keys
               whose first choice was backend 0 or 1 *)
            let hd3 = List.hd p in
            if hd3 < 2 then
              check int "survivors keep their keys" hd3
                (List.hd (Router.preference r2 line)))
          lines;
        (* keyless requests rotate rather than pile on one backend *)
        let heads =
          List.init 3 (fun _ ->
              List.hd (Router.preference r3 {|{"op":"stats"}|}))
        in
        check (list int) "round-robin" [ 0; 1; 2 ]
          (List.sort compare heads));
    Alcotest.test_case "empty backend list refused" `Quick (fun () ->
        match Router.create [] with
        | _ -> fail "should have raised"
        | exception Invalid_argument _ -> ());
    Alcotest.test_case "protocol error doesn't poison backend health" `Quick
      (fun () ->
        (* a response over the router client's max_frame is a fatal
           Protocol error, but it's the *request* that's bad: the router
           must answer with the error and keep the backend alive *)
        with_server
          (fun line ->
            if contains line "big" then String.make 4096 'x'
            else {|{"ok":true}|})
        @@ fun _srv addr ->
        let r =
          Router.create ~timeout_ms:2000 ~retries:0 ~check_period_ms:3600_000
            ~max_frame:128
            [ loopback addr.Addr.port ]
        in
        Fun.protect ~finally:(fun () -> Router.stop r) @@ fun () ->
        let resp = Router.route r {|{"op":"big","id":4}|} in
        check_contains "answers the protocol error" resp {|"ok":false|};
        check_contains "names the failure" resp "oversized";
        check_contains "id still echoed" resp {|"id":4|};
        check bool "backend still marked alive" true
          (snd (List.hd (Router.backends r)));
        check_contains "well-sized requests keep flowing"
          (Router.route r {|{"op":"ok"}|})
          {|"ok":true|});
    Alcotest.test_case "failover when a backend dies" `Quick (fun () ->
        with_engine @@ fun engine ->
        with_server (Serve.handle_line engine) @@ fun srv1 a1 ->
        with_server (Serve.handle_line engine) @@ fun srv2 a2 ->
        let r = mk_router [ a1.Addr.port; a2.Addr.port ] in
        Fun.protect ~finally:(fun () -> Router.stop r) @@ fun () ->
        let line = {|{"op":"psph","n":1,"values":2,"id":3}|} in
        check_contains "routes while all alive" (Router.route r line)
          {|"ok":true|};
        (* kill exactly the backend this key prefers, so the reroute is a
           real failover and not a lucky hash *)
        let first = List.hd (Router.preference r line) in
        Server.stop (if first = 0 then srv1 else srv2);
        let resp = Router.route r line in
        check_contains "survivor answers" resp {|"ok":true|};
        check bool "dead backend marked down" false
          (snd (List.nth (Router.backends r) first));
        Server.stop (if first = 0 then srv2 else srv1);
        let degraded = Router.route r line in
        check_contains "degrades, never crashes" degraded "no backend";
        check_contains "id still echoed" degraded {|"id":3|});
  ]

let suites =
  [
    ("net addr", addr_tests);
    ("net frame", frame_tests @ frame_props);
    ("net loopback", loopback_tests);
    ("net router", router_tests);
  ]
